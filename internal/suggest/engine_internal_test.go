package suggest

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/master"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// White-box equivalence tests for the pieces the external property tests
// cannot reach: the naive structuralClosure fixpoint vs the compiled
// engine over real rule sets, and the masterSupports scan vs the
// precomputed pattern-support bitmaps.

func randomInternalInstance(rng *rand.Rand) (*rule.Set, *master.Data) {
	nR := 4 + rng.Intn(4)
	nM := 4 + rng.Intn(3)
	rNames := make([]string, nR)
	for i := range rNames {
		rNames[i] = fmt.Sprintf("A%d", i)
	}
	mNames := make([]string, nM)
	for i := range mNames {
		mNames[i] = fmt.Sprintf("M%d", i)
	}
	r := relation.StringSchema("R", rNames...)
	rm := relation.StringSchema("Rm", mNames...)

	vals := []string{"a", "b"}
	rel := relation.NewRelation(rm)
	for i, n := 0, 1+rng.Intn(5); i < n; i++ {
		tup := make(relation.Tuple, nM)
		for j := range tup {
			tup[j] = relation.String(vals[rng.Intn(len(vals))])
		}
		rel.MustAppend(tup)
	}

	sigma := rule.MustNewSet(r, rm)
	for i, n := 0, 2+rng.Intn(6); i < n; i++ {
		xLen := 1 + rng.Intn(2)
		perm := rng.Perm(nR)
		x := perm[:xLen]
		b := perm[xLen]
		xm := make([]int, xLen)
		for j := range xm {
			xm[j] = rng.Intn(nM)
		}
		var pPos []int
		var pCells []pattern.Cell
		for _, p := range rng.Perm(nR)[:rng.Intn(2)] {
			pPos = append(pPos, p)
			pCells = append(pCells, pattern.Eq(relation.String(vals[rng.Intn(len(vals))])))
		}
		ru, err := rule.New(fmt.Sprintf("r%d", i), r, rm, x, xm, b, rng.Intn(nM), pattern.MustTuple(pPos, pCells))
		if err != nil {
			continue
		}
		sigma.Add(ru)
	}
	return sigma, master.MustNewForRules(rel, sigma)
}

// TestStructuralClosureVsCompiledProperty: the compiled Σ program (gated
// by the support map, exactly as the deriver builds it) agrees with the
// naive fixpoint on size and membership for random bases.
func TestStructuralClosureVsCompiledProperty(t *testing.T) {
	sc := rule.NewClosureScratch()
	for seed := 0; seed < 400; seed++ {
		rng := rand.New(rand.NewSource(int64(14_000_000 + seed)))
		sigma, dm := randomInternalInstance(rng)
		sup := computeSupport(sigma, dm)
		prog := sigma.Compile(sup)
		arity := sigma.Schema().Arity()
		for trial := 0; trial < 4; trial++ {
			zSet := relation.NewAttrSet(rng.Perm(arity)[:rng.Intn(arity+1)]...)
			want := structuralClosure(sigma, sup, zSet)
			if got := prog.Closure(zSet, sc); got != want.Len() {
				t.Fatalf("seed %d: compiled closure %d, naive %d (z=%v)", seed, got, want.Len(), zSet.Positions())
			}
			for a := 0; a < arity; a++ {
				if sc.Has(a) != want.Has(a) {
					t.Fatalf("seed %d: membership of %d diverges", seed, a)
				}
			}
		}
	}
}

// TestComputeSupportVsScanProperty: the support map read from the
// pattern-support bitmaps equals the naive masterSupports scan.
func TestComputeSupportVsScanProperty(t *testing.T) {
	for seed := 0; seed < 300; seed++ {
		rng := rand.New(rand.NewSource(int64(15_000_000 + seed)))
		sigma, dm := randomInternalInstance(rng)
		sup := computeSupport(sigma, dm)
		for i, ru := range sigma.Rules() {
			if want := masterSupports(dm, ru); sup[i] != want {
				t.Fatalf("seed %d rule %s: support %v, scan %v", seed, ru.Name(), sup[i], want)
			}
		}
	}
}

// TestMasterCompatibleVsScanProperty: the production condition-(c) path
// (postings) equals the suggest-side naive scan oracle for every rule on
// randomized instances — the suggest-layer twin of the master package's
// TestCompatibleExistsProperty.
func TestMasterCompatibleVsScanProperty(t *testing.T) {
	for seed := 0; seed < 300; seed++ {
		rng := rand.New(rand.NewSource(int64(16_000_000 + seed)))
		sigma, dm := randomInternalInstance(rng)
		d := NewDeriver(sigma, dm)
		arity := sigma.Schema().Arity()
		tup := make(relation.Tuple, arity)
		for i := range tup {
			tup[i] = relation.String([]string{"a", "b", "zz"}[rng.Intn(3)])
		}
		zSet := relation.NewAttrSet(rng.Perm(arity)[:rng.Intn(arity+1)]...)
		for _, ru := range sigma.Rules() {
			got := dm.CompatibleExists(ru, tup, zSet)
			want := d.masterCompatibleScan(ru, tup, zSet)
			if got != want {
				t.Fatalf("seed %d rule %s: postings %v, scan %v", seed, ru.Name(), got, want)
			}
		}
	}
}
