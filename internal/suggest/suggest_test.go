package suggest_test

import (
	"testing"

	"repro/internal/master"
	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/internal/rule"
	"repro/internal/suggest"
)

func parseRules(r, rm *relation.Schema, dsl string) (*rule.Set, error) {
	return rule.ParseRuleSet(r, rm, dsl)
}

func newDeriver(t *testing.T) *suggest.Deriver {
	t.Helper()
	sigma := paperex.Sigma0()
	dm := master.MustNewForRules(paperex.MasterRelation(), sigma)
	return suggest.NewDeriver(sigma, dm)
}

// TestCompCRegionsSigma0: the best region for Σ0 asks the user for
// exactly (phn, type, item, zip) — matching the minimal Z established by
// the exact Z-minimum solver in the analysis tests.
func TestCompCRegionsSigma0(t *testing.T) {
	d := newDeriver(t)
	r := d.Sigma().Schema()
	cands := d.CompCRegions()
	if len(cands) == 0 {
		t.Fatal("CompCRegions returned nothing")
	}
	best := cands[0]
	want := relation.NewAttrSet(r.MustPosList("phn", "type", "item", "zip")...)
	if !best.ZSet.Equal(want) {
		t.Fatalf("best Z = %v, want phn+type+item+zip", best.ZSet.Names(r))
	}
	if best.Support == 0 {
		t.Fatal("best region must have verified master support")
	}
	// Quality sorted descending.
	for i := 1; i < len(cands); i++ {
		if cands[i].Quality > cands[i-1].Quality {
			t.Fatal("candidates must be sorted by quality descending")
		}
	}
}

// TestCertainRowSigma0: the Example 9 row (s1 zip, s1 Mphn, 2, *) is a
// certain row; swapping type to 1 breaks coverage (names unfixable).
func TestCertainRowSigma0(t *testing.T) {
	d := newDeriver(t)
	r := d.Sigma().Schema()
	z := r.MustPosList("zip", "phn", "type", "item")
	good := []relation.Value{
		relation.String("EH7 4AH"), relation.String("079172485"),
		relation.String("2"), relation.String("CD"),
	}
	if !d.CertainRow(z, good) {
		t.Fatal("Example 9 row must be certain")
	}
	bad := append([]relation.Value(nil), good...)
	bad[2] = relation.String("1")
	if d.CertainRow(z, bad) {
		t.Fatal("type=1 with a mobile number covers no names; not certain")
	}
	if !d.ConsistentRow(z, bad) {
		t.Fatal("the type=1 row is still consistent (just not covering)")
	}
}

// TestGRegionLargerThanCompCRegion: on a chained rule set (A fixes B, B
// fixes C, ...) the cascade-aware CompCRegion needs only the chain head
// while the myopic GRegion also picks intermediate attributes — the
// qualitative result of §6 Exp-1(1).
func TestGRegionLargerThanCompCRegion(t *testing.T) {
	r := relation.StringSchema("R", "A", "B", "C", "D")
	rm := relation.StringSchema("Rm", "Am", "Bm", "Cm", "Dm")
	rel := relation.NewRelation(rm)
	rel.MustAppend(relation.StringTuple("a", "b", "c", "d"))
	dsl := `
rule r1: (A ; Am) -> (B ; Bm)
rule r2: (B ; Bm) -> (C ; Cm)
rule r3: (C ; Cm) -> (D ; Dm)
`
	sigma, err := parseRules(r, rm, dsl)
	if err != nil {
		t.Fatal(err)
	}
	d := suggest.NewDeriver(sigma, master.MustNewForRules(rel, sigma))

	comp := d.CompCRegions()
	if len(comp) == 0 {
		t.Fatal("no CompCRegion candidates")
	}
	if got := len(comp[0].Z); got != 1 {
		t.Fatalf("CompCRegion |Z| = %d, want 1 (just A)", got)
	}
	g := d.GRegion()
	if len(g.Z) <= len(comp[0].Z) {
		t.Fatalf("GRegion |Z| = %d must exceed CompCRegion |Z| = %d", len(g.Z), len(comp[0].Z))
	}
}

// TestApplicableRulesExample14: after validating t1[zip, AC, str, city],
// the applicable rules are ϕ4 and ϕ5 (the name-fixing rules); the
// address-fixing rules are excluded because their rhs is validated.
func TestApplicableRulesExample14(t *testing.T) {
	d := newDeriver(t)
	r := d.Sigma().Schema()
	// t1 after Example 12's TransFix run.
	t1 := paperex.InputT1()
	t1[r.MustPos("AC")] = relation.String("131")
	t1[r.MustPos("str")] = relation.String("51 Elm Row")
	zSet := relation.NewAttrSet(r.MustPosList("zip", "AC", "str", "city")...)

	refined := d.ApplicableRules(t1, zSet)
	names := map[string]bool{}
	for _, ru := range refined.Rules() {
		names[ru.Name()] = true
	}
	if !names["phi4"] || !names["phi5"] {
		t.Fatalf("ϕ4, ϕ5 must be applicable; got %v", names)
	}
	for n := range names {
		if n != "phi4" && n != "phi5" {
			t.Errorf("unexpected applicable rule %s (rhs validated or unsupported)", n)
		}
	}
}

// TestApplicableRulesRefinement: a partially validated lhs pins the
// pattern to t's constants (the ϕ+6 refinement of Example 14, shown here
// on ϕ6 with only AC validated).
func TestApplicableRulesRefinement(t *testing.T) {
	d := newDeriver(t)
	r := d.Sigma().Schema()
	t1 := paperex.InputT2() // AC = 131, type = 1
	zSet := relation.NewAttrSet(r.MustPos("AC"))

	refined := d.ApplicableRules(t1, zSet)
	var found bool
	for _, ru := range refined.Rules() {
		if ru.Name() == "phi6+" {
			found = true
			cell, ok := ru.Pattern().CellFor(r.MustPos("AC"))
			if !ok || cell.Val.Str() != "131" {
				t.Fatalf("ϕ6+ must pin AC to 131; cell = %v", cell)
			}
		}
	}
	if !found {
		t.Fatal("ϕ6+ must be derived when AC is validated and master-compatible")
	}
}

// TestApplicableRulesMasterIncompatible: with AC validated to a value no
// master tuple carries, the address rules are filtered by condition (c).
func TestApplicableRulesMasterIncompatible(t *testing.T) {
	d := newDeriver(t)
	r := d.Sigma().Schema()
	tup := paperex.InputT2()
	tup[r.MustPos("AC")] = relation.String("999")
	zSet := relation.NewAttrSet(r.MustPos("AC"))

	refined := d.ApplicableRules(tup, zSet)
	for _, ru := range refined.Rules() {
		switch ru.Name() {
		case "phi6+", "phi7+", "phi8+":
			t.Errorf("%s must be filtered: no master tuple has AC=999", ru.Name())
		}
	}
}

// TestSuggestExample13: for t1 with (zip, AC, str, city) validated, the
// suggestion is exactly {phn, type, item} (Example 13).
func TestSuggestExample13(t *testing.T) {
	d := newDeriver(t)
	r := d.Sigma().Schema()
	t1 := paperex.InputT1()
	t1[r.MustPos("AC")] = relation.String("131")
	t1[r.MustPos("str")] = relation.String("51 Elm Row")
	zSet := relation.NewAttrSet(r.MustPosList("zip", "AC", "str", "city")...)

	sug := d.Suggest(t1, zSet)
	got := relation.NewAttrSet(sug.S...)
	want := relation.NewAttrSet(r.MustPosList("phn", "type", "item")...)
	if !got.Equal(want) {
		t.Fatalf("S = %v, want {phn, type, item}", got.Names(r))
	}
	if !d.IsSuggestion(t1, zSet, sug.S) {
		t.Fatal("Suggest's own output must pass IsSuggestion")
	}
	// A strict subset is not a suggestion (item is unreachable).
	if d.IsSuggestion(t1, zSet, r.MustPosList("phn", "type")) {
		t.Fatal("dropping item must fail IsSuggestion")
	}
}

// TestSuggestAlreadyCovered: when Z plus cascades already cover R the
// suggestion is empty.
func TestSuggestAlreadyCovered(t *testing.T) {
	d := newDeriver(t)
	r := d.Sigma().Schema()
	t1 := paperex.InputT1()
	zSet := relation.NewAttrSet(r.MustPosList("zip", "phn", "type", "item")...)
	sug := d.Suggest(t1, zSet)
	if len(sug.S) != 0 {
		t.Fatalf("S = %v, want empty (closure covers R)", relation.NewAttrSet(sug.S...).Names(r))
	}
}
