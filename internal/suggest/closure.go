// Package suggest implements certain-region derivation and the suggestion
// machinery of §5 of the paper:
//
//   - CompCRegion — the heuristic that derives certain regions from
//     (Σ, Dm) ranked by a quality metric. The paper delegates this to its
//     companion conference paper [20] and omits the algorithm; this is a
//     reconstruction with the published interface, complexity envelope
//     (O(|Σ|²·|Dm|·log|Dm|)) and contract (see DESIGN.md, substitution 2):
//     greedy seed growth over the structural rule closure, reverse-delete
//     minimization, verification through the Theorem-4 checker.
//   - GRegion — the greedy baseline of §6 Exp-1(1): at each stage pick the
//     attribute that directly fixes the most uncovered attributes.
//   - ApplicableRules — the refined rule set Σ_t[Z] of §5.2 (Prop. 20).
//   - Suggest — procedure Suggest of Fig. 6: the next attribute set to ask
//     the users about.
//
// The Z-minimum and S-minimum problems behind these heuristics are
// NP-complete and inapproximable within c·log n (Thms 12, 17, 19), which
// is why the paper itself prescribes heuristics here.
//
// The hot paths run on two compiled engines: the counter-based closure
// programs of internal/rule (rule.Compiled, replacing the naive O(|Σ|²)
// fixpoint) and the inverted master postings of internal/master
// (replacing the per-rule Dm scans). The naive implementations below and
// in naive.go are retained as reference oracles; the property tests
// assert output equivalence on randomized instances.
package suggest

import (
	"repro/internal/master"
	"repro/internal/relation"
	"repro/internal/rule"
)

// supportMap caches, per rule, whether some master tuple satisfies the
// rule's pattern cells on the λϕ-mapped attributes (the structural
// "is there any master evidence this rule can ever fire" test). Reads the
// pattern-support bitmaps precomputed at master build time: O(|Σ|), with
// a Dm-scan fallback per rule the master was not built for.
type supportMap []bool

func computeSupport(sigma *rule.Set, dm *master.Data) supportMap {
	sup := make(supportMap, sigma.Len())
	for i, ru := range sigma.Rules() {
		sup[i] = dm.PatternSupported(ru)
	}
	return sup
}

// masterSupports is the naive O(|Dm|) support test, retained as the oracle
// for Data.PatternSupported.
func masterSupports(dm *master.Data, ru *rule.Rule) bool {
	x, xm := ru.LHSRef(), ru.LHSMRef()
	tp := ru.Pattern()
	for _, tm := range dm.Relation().Tuples() {
		ok := true
		for i := range x {
			if cell, has := tp.CellFor(x[i]); has && !cell.Matches(tm[xm[i]]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// structuralClosure computes the set of attributes validated from zSet by
// cascading rule applications, using only the structure of Σ plus the
// master-support precomputation: a rule fires when its premise is inside
// the closure and some master tuple is pattern-compatible. This
// over-approximates per-tuple coverage (specific values may find no master
// match) and is the engine of region derivation; candidate regions are
// then verified value-by-value with the Theorem-4 checker.
//
// This is the naive O(|Σ|²) fixpoint, retained as the oracle for the
// compiled engine (rule.Compiled) that the production paths run on.
func structuralClosure(sigma *rule.Set, sup supportMap, zSet relation.AttrSet) relation.AttrSet {
	out := zSet.Clone()
	for changed := true; changed; {
		changed = false
		for i, ru := range sigma.Rules() {
			if !sup[i] || out.Has(ru.RHS()) {
				continue
			}
			if out.ContainsSet(ru.PremiseSet()) {
				out.Add(ru.RHS())
				changed = true
			}
		}
	}
	return out
}

// StructuralClosure exposes the naive fixpoint for the compiled-vs-naive
// benchmark and external equivalence tests; supported is aligned with
// sigma.Rules().
func StructuralClosure(sigma *rule.Set, supported []bool, zSet relation.AttrSet) relation.AttrSet {
	return structuralClosure(sigma, supportMap(supported), zSet)
}

// directCover counts the attributes fixable in exactly one step from zSet
// (no cascading) — the myopic objective GRegion maximizes.
func directCover(sigma *rule.Set, sup supportMap, zSet relation.AttrSet) relation.AttrSet {
	out := zSet.Clone()
	for i, ru := range sigma.Rules() {
		if sup[i] && !zSet.Has(ru.RHS()) && zSet.ContainsSet(ru.PremiseSet()) {
			out.Add(ru.RHS())
		}
	}
	return out
}
