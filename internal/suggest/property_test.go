package suggest_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/master"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
	"repro/internal/suggest"
)

// randomSuggestInstance mirrors the analysis package's generator.
func randomSuggestInstance(rng *rand.Rand) (*suggest.Deriver, relation.Tuple, relation.AttrSet) {
	nR := 4 + rng.Intn(3)
	nM := 4 + rng.Intn(3)
	rNames := make([]string, nR)
	for i := range rNames {
		rNames[i] = fmt.Sprintf("A%d", i)
	}
	mNames := make([]string, nM)
	for i := range mNames {
		mNames[i] = fmt.Sprintf("M%d", i)
	}
	r := relation.StringSchema("R", rNames...)
	rm := relation.StringSchema("Rm", mNames...)

	vals := []string{"a", "b"}
	rel := relation.NewRelation(rm)
	for i, n := 0, 2+rng.Intn(3); i < n; i++ {
		tup := make(relation.Tuple, nM)
		for j := range tup {
			tup[j] = relation.String(vals[rng.Intn(len(vals))])
		}
		rel.MustAppend(tup)
	}

	sigma := rule.MustNewSet(r, rm)
	for i, n := 0, 2+rng.Intn(5); i < n; i++ {
		xLen := 1 + rng.Intn(2)
		perm := rng.Perm(nR)
		x := perm[:xLen]
		b := perm[xLen]
		xm := make([]int, xLen)
		for j := range xm {
			xm[j] = rng.Intn(nM)
		}
		var pPos []int
		var pCells []pattern.Cell
		for _, p := range rng.Perm(nR)[:rng.Intn(2)] {
			pPos = append(pPos, p)
			pCells = append(pCells, pattern.Eq(relation.String(vals[rng.Intn(len(vals))])))
		}
		ru, err := rule.New(fmt.Sprintf("r%d", i), r, rm, x, xm, b, rng.Intn(nM), pattern.MustTuple(pPos, pCells))
		if err != nil {
			continue
		}
		sigma.Add(ru)
	}

	t := make(relation.Tuple, nR)
	for i := range t {
		t[i] = relation.String(vals[rng.Intn(len(vals))])
	}
	zSet := relation.NewAttrSet(rng.Perm(nR)[:1+rng.Intn(nR-1)]...)
	dm := master.MustNewForRules(rel, sigma)
	return suggest.NewDeriver(sigma, dm), t, zSet
}

// TestSuggestInvariantsProperty: on random instances, Suggest's output is
// disjoint from Z, passes its own IsSuggestion test, and is minimal under
// single-attribute removal (the reverse-delete guarantee).
func TestSuggestInvariantsProperty(t *testing.T) {
	iterations := 400
	if testing.Short() {
		iterations = 60
	}
	for seed := 0; seed < iterations; seed++ {
		rng := rand.New(rand.NewSource(int64(3_000_000 + seed)))
		d, tup, zSet := randomSuggestInstance(rng)

		sug := d.Suggest(tup, zSet)
		for _, p := range sug.S {
			if zSet.Has(p) {
				t.Fatalf("seed %d: suggestion overlaps Z at %d", seed, p)
			}
		}
		if !d.IsSuggestion(tup, zSet, sug.S) {
			t.Fatalf("seed %d: Suggest output fails IsSuggestion", seed)
		}
		// Minimality: removing any single attribute breaks coverage.
		for i := range sug.S {
			trimmed := append(append([]int(nil), sug.S[:i]...), sug.S[i+1:]...)
			if d.IsSuggestion(tup, zSet, trimmed) {
				t.Fatalf("seed %d: suggestion %v not minimal (attr %d removable)",
					seed, sug.S, sug.S[i])
			}
		}
	}
}

// TestApplicableRulesInvariantsProperty: every refined rule has an
// unvalidated rhs and a tuple-compatible pattern on Z.
func TestApplicableRulesInvariantsProperty(t *testing.T) {
	for seed := 0; seed < 200; seed++ {
		rng := rand.New(rand.NewSource(int64(4_000_000 + seed)))
		d, tup, zSet := randomSuggestInstance(rng)
		refined := d.ApplicableRules(tup, zSet)
		for _, ru := range refined.Rules() {
			if zSet.Has(ru.RHS()) {
				t.Fatalf("seed %d: refined rule %s writes a validated attribute", seed, ru.Name())
			}
			tp := ru.Pattern()
			for i := 0; i < tp.Len(); i++ {
				pos, cell := tp.CellAt(i)
				if zSet.Has(pos) && !cell.Matches(tup[pos]) {
					t.Fatalf("seed %d: refined rule %s pattern rejects the validated tuple", seed, ru.Name())
				}
			}
		}
	}
}
