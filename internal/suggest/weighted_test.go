package suggest_test

import (
	"testing"

	"repro/internal/master"
	"repro/internal/relation"
	"repro/internal/suggest"
)

// Weighted rule sets break Suggest's gain ties by confidence mass. Two
// mutually-determining attributes (p → q and q → p) tie on closure gain
// — either alone covers both — so the suggestion hinges entirely on the
// tie-break: unweighted picks the first index (p), weighted picks the
// attribute whose dependent rule carries more mined confidence (q).
func weightedDeriver(t *testing.T, dsl string) *suggest.Deriver {
	t.Helper()
	r := relation.StringSchema("R", "p", "q")
	rm := relation.StringSchema("Rm", "p", "q")
	sigma, err := parseRules(r, rm, dsl)
	if err != nil {
		t.Fatal(err)
	}
	masterRel := relation.NewRelation(rm)
	masterRel.MustAppend(
		relation.Tuple{relation.String("p1"), relation.String("q1")},
		relation.Tuple{relation.String("p2"), relation.String("q2")},
	)
	dm, err := master.NewForRules(masterRel, sigma)
	if err != nil {
		t.Fatal(err)
	}
	return suggest.NewDeriver(sigma, dm)
}

func TestSuggestWeightedTieBreak(t *testing.T) {
	tup := relation.Tuple{relation.String("p1"), relation.String("q1")}

	// Unweighted: the tie goes to the lower index, p.
	d := weightedDeriver(t, `
rule r1: (p ; p) -> (q ; q)
rule r2: (q ; q) -> (p ; p)
`)
	got := d.Suggest(tup, relation.AttrSet{})
	if len(got.S) != 1 || got.S[0] != 0 {
		t.Fatalf("unweighted suggestion = %v, want [p]", got.S)
	}

	// Weighted: r2 (premise q) carries more confidence than r1 (premise
	// p), so the tie goes to q.
	d = weightedDeriver(t, `
rule r1: (p ; p) -> (q ; q) weight 0.5
rule r2: (q ; q) -> (p ; p) weight 0.9
`)
	got = d.Suggest(tup, relation.AttrSet{})
	if len(got.S) != 1 || got.S[0] != 1 {
		t.Fatalf("weighted suggestion = %v, want [q]", got.S)
	}
	if !got.Refined.Weighted() {
		t.Fatal("refined set should stay weighted")
	}

	// Flipping the weights flips the pick back to p.
	d = weightedDeriver(t, `
rule r1: (p ; p) -> (q ; q) weight 0.9
rule r2: (q ; q) -> (p ; p) weight 0.5
`)
	got = d.Suggest(tup, relation.AttrSet{})
	if len(got.S) != 1 || got.S[0] != 0 {
		t.Fatalf("weight-flipped suggestion = %v, want [p]", got.S)
	}
}
