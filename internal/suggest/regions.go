package suggest

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/master"
	"repro/internal/relation"
	"repro/internal/rule"
)

// Candidate is a derived certain-region skeleton: the attribute list Z,
// its quality score, and how many sampled master-derived pattern rows were
// verified certain. The tableau is intensional: a concrete value vector v
// over Z belongs to it iff the Theorem-4 check over (Z, v) covers — use
// Deriver.CertainRow to test membership. (Materializing Tc would cost one
// row per master tuple, as in Example 9; the framework never needs that.)
type Candidate struct {
	Z       []int
	ZSet    relation.AttrSet
	Quality float64
	Support int
}

// Deriver derives certain regions and suggestions for a fixed (Σ, Dm).
// Safe for concurrent use after construction.
type Deriver struct {
	sigma   *rule.Set
	dm      *master.Data
	checker *analysis.Checker
	sup     supportMap
	actDom  map[int][]relation.Value
	// sampleCap bounds how many master tuples seed verification rows.
	sampleCap int
}

// NewDeriver precomputes the support map and checker for (Σ, Dm).
func NewDeriver(sigma *rule.Set, dm *master.Data) *Deriver {
	return &Deriver{
		sigma:     sigma,
		dm:        dm,
		checker:   analysis.NewChecker(sigma, dm, analysis.Options{}),
		sup:       computeSupport(sigma, dm),
		actDom:    sigma.ActiveDomain(),
		sampleCap: 64,
	}
}

// Sigma returns Σ.
func (d *Deriver) Sigma() *rule.Set { return d.sigma }

// Master returns Dm.
func (d *Deriver) Master() *master.Data { return d.dm }

// Checker returns the shared §4 checker.
func (d *Deriver) Checker() *analysis.Checker { return d.checker }

// CertainRow reports whether the concrete values vals over z form a
// certain-region pattern row: consistent and covering (Theorem 4).
func (d *Deriver) CertainRow(z []int, vals []relation.Value) bool {
	return d.checker.ConcreteVerdict(z, vals, true).OK
}

// ConsistentRow reports whether vals over z lead to a unique fix.
func (d *Deriver) ConsistentRow(z []int, vals []relation.Value) bool {
	return d.checker.ConcreteVerdict(z, vals, false).OK
}

// CompCRegions derives candidate certain regions ranked by quality
// (descending). Different seeds explore different greedy starting points;
// duplicates (same Z) are merged. The first element is the CRHQ region of
// §6 Exp-1(2); the middle element is CRMQ.
func (d *Deriver) CompCRegions() []Candidate {
	free := d.sigma.FreeAttrs()

	// Seeds: the bare free set, plus free ∪ {A} for every attribute read
	// by some rule (lhs or pattern attribute).
	seedExtras := d.sigma.LHS().Union(d.sigma.PatternAttrs()).Positions()
	seen := map[string]bool{}
	var out []Candidate
	tryZ := func(zSet relation.AttrSet) {
		z := d.growAndMinimize(zSet)
		if z == nil {
			return
		}
		key := relation.NewAttrSet(z...).Key()
		if seen[key] {
			return
		}
		seen[key] = true
		cand := d.score(z)
		if cand.Support > 0 {
			out = append(out, cand)
		}
	}
	tryZ(free.Clone())
	for _, a := range seedExtras {
		s := free.Clone()
		s.Add(a)
		tryZ(s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Quality > out[j].Quality })
	return out
}

// growAndMinimize grows zSet greedily until the structural closure covers
// R (preferring the attribute whose addition enlarges the closure most),
// then reverse-deletes redundant attributes. Returns nil when full
// coverage is unreachable.
func (d *Deriver) growAndMinimize(zSet relation.AttrSet) []int {
	r := d.sigma.Schema()
	arity := r.Arity()
	cur := zSet.Clone()
	free := d.sigma.FreeAttrs()

	for structuralClosure(d.sigma, d.sup, cur).Len() < arity {
		bestAttr, bestGain := -1, -1
		for a := 0; a < arity; a++ {
			if cur.Has(a) {
				continue
			}
			trial := cur.Clone()
			trial.Add(a)
			gain := structuralClosure(d.sigma, d.sup, trial).Len()
			if gain > bestGain {
				bestGain, bestAttr = gain, a
			}
		}
		if bestAttr < 0 {
			return nil
		}
		before := structuralClosure(d.sigma, d.sup, cur).Len()
		cur.Add(bestAttr)
		if bestGain <= before {
			// No attribute makes progress: coverage unreachable.
			return nil
		}
	}

	// Reverse-delete: drop attributes (never free ones) whose removal
	// keeps the closure complete.
	for _, a := range cur.Positions() {
		if free.Has(a) {
			continue
		}
		trial := cur.Clone()
		trial.Remove(a)
		if structuralClosure(d.sigma, d.sup, trial).Len() == arity {
			cur = trial
		}
	}
	return cur.Positions()
}

// score verifies sampled master-derived rows for Z and computes the
// quality: primarily fewer user-validated attributes (more coverage by
// rules), secondarily the fraction of sampled rows that verified certain.
func (d *Deriver) score(z []int) Candidate {
	r := d.sigma.Schema()
	support, samples := 0, 0
	for _, vals := range d.sampleRows(z) {
		samples++
		if d.CertainRow(z, vals) {
			support++
		}
	}
	frac := 0.0
	if samples > 0 {
		frac = float64(support) / float64(samples)
	}
	quality := float64(r.Arity()-len(z)) + frac
	return Candidate{Z: z, ZSet: relation.NewAttrSet(z...), Quality: quality, Support: support}
}

// sampleRows builds candidate pattern rows for Z from master tuples: for
// each sampled tm, each Z attribute takes tm's λϕ-paired value when it is
// an lhs attribute, a pattern constant when only patterns mention it, and
// a placeholder otherwise. Multiple choices (e.g. type ∈ {1, 2}) multiply
// within a small bound.
func (d *Deriver) sampleRows(z []int) [][]relation.Value {
	n := d.dm.Len()
	if n == 0 {
		return nil
	}
	step := 1
	if n > d.sampleCap {
		step = n / d.sampleCap
	}
	var rows [][]relation.Value
	for id := 0; id < n; id += step {
		tm := d.dm.Tuple(id)
		choices := make([][]relation.Value, len(z))
		for i, a := range z {
			choices[i] = d.attrChoices(a, tm)
		}
		rows = appendProduct(rows, choices, 8)
	}
	return rows
}

// attrChoices lists the plausible validated values of attribute a given
// master tuple tm.
func (d *Deriver) attrChoices(a int, tm relation.Tuple) []relation.Value {
	var out []relation.Value
	add := func(v relation.Value) {
		for _, w := range out {
			if w.Equal(v) {
				return
			}
		}
		out = append(out, v)
	}
	for _, ru := range d.sigma.Rules() {
		if mp, ok := ru.MasterPosFor(a); ok {
			add(tm[mp])
		}
	}
	if vs, ok := d.actDom[a]; ok {
		for _, v := range vs {
			add(v)
		}
	}
	if len(out) == 0 {
		// Attribute outside Σ (like `item`): its value is irrelevant to
		// rule firing; any placeholder works.
		add(relation.String("*"))
	}
	return out
}

// appendProduct appends the cartesian product of choices to rows, bounded
// per master tuple to avoid blowups from wide pattern domains.
func appendProduct(rows [][]relation.Value, choices [][]relation.Value, bound int) [][]relation.Value {
	total := 1
	for _, c := range choices {
		total *= len(c)
		if total > bound {
			total = bound
			break
		}
	}
	vec := make([]relation.Value, len(choices))
	count := 0
	var walk func(i int)
	walk = func(i int) {
		if count >= bound {
			return
		}
		if i == len(choices) {
			rows = append(rows, append([]relation.Value(nil), vec...))
			count++
			return
		}
		for _, v := range choices[i] {
			vec[i] = v
			walk(i + 1)
		}
	}
	walk(0)
	return rows
}

// GRegion is the greedy baseline of §6 Exp-1(1): "at each stage, choose
// an attribute which may fix the largest number of uncovered attributes".
// It reasons one step at a time — no cascade closure, no reverse-delete —
// so it picks intermediate attributes a cascade would have covered for
// free, ending with a larger Z than CompCRegion (the paper's table:
// 4 vs 2 on HOSP, 9 vs 5 on DBLP).
func (d *Deriver) GRegion() Candidate {
	arity := d.sigma.Schema().Arity()
	var cur relation.AttrSet

	for {
		covered := directCover(d.sigma, d.sup, cur)
		if covered.Len() >= arity {
			break
		}
		// Greedy step: the attribute enabling the most one-step fixes.
		bestAttr, bestGain := -1, 0
		for a := 0; a < arity; a++ {
			if cur.Has(a) {
				continue
			}
			trial := cur.Clone()
			trial.Add(a)
			gain := directCover(d.sigma, d.sup, trial).Len() - covered.Len()
			if !covered.Has(a) {
				gain-- // do not count the attribute covering itself
			}
			if gain > bestGain {
				bestGain, bestAttr = gain, a
			}
		}
		if bestAttr >= 0 {
			cur.Add(bestAttr)
			continue
		}
		// No attribute fixes anything by itself: add the uncovered
		// attribute occurring in the most premises of rules whose rhs is
		// still uncovered (a multi-attribute premise needs several stages
		// to assemble); free attributes come last, one per stage.
		cur.Add(d.gRegionFallback(covered, cur))
	}
	return d.score(cur.Positions())
}

// gRegionFallback picks the next attribute when no single addition fires
// a rule.
func (d *Deriver) gRegionFallback(covered, cur relation.AttrSet) int {
	arity := d.sigma.Schema().Arity()
	counts := make([]int, arity)
	for i, ru := range d.sigma.Rules() {
		if !d.sup[i] || covered.Has(ru.RHS()) {
			continue
		}
		for _, p := range ru.PremiseSet().Positions() {
			if !cur.Has(p) {
				counts[p]++
			}
		}
	}
	best, bestCount := -1, 0
	for a := 0; a < arity; a++ {
		if !cur.Has(a) && counts[a] > bestCount {
			best, bestCount = a, counts[a]
		}
	}
	if best >= 0 {
		return best
	}
	for a := 0; a < arity; a++ {
		if !covered.Has(a) && !cur.Has(a) {
			return a
		}
	}
	// Unreachable: the loop only calls this while something is uncovered.
	return 0
}
