package suggest

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/master"
	"repro/internal/relation"
	"repro/internal/rule"
)

// Candidate is a derived certain-region skeleton: the attribute list Z,
// its quality score, and how many sampled master-derived pattern rows were
// verified certain. The tableau is intensional: a concrete value vector v
// over Z belongs to it iff the Theorem-4 check over (Z, v) covers — use
// Deriver.CertainRow to test membership. (Materializing Tc would cost one
// row per master tuple, as in Example 9; the framework never needs that.)
type Candidate struct {
	Z       []int
	ZSet    relation.AttrSet
	Quality float64
	Support int
}

// Deriver derives certain regions and suggestions for (Σ, Dm). Safe for
// concurrent use after construction: the compiled closure program and
// support map are immutable, and all per-call mutable state lives in
// pooled scratch.
//
// A deriver is either STATIC (NewDeriver: bound to one master snapshot
// forever) or VERSIONED (NewDeriverVersioned: bound to a master.Versioned
// handle). A versioned deriver pins the current snapshot at the start of
// every public call — Pin returns the snapshot-bound view explicitly, for
// callers like monitor.Session that need one consistent snapshot across
// several calls. The per-epoch engines (support map, compiled closure
// program, checker) are O(|Σ|) to rebuild and cached per epoch, so
// pinning after an unchanged epoch is a pointer comparison.
type Deriver struct {
	sigma  *rule.Set
	actDom map[int][]relation.Value
	// sampleCap bounds how many master tuples seed verification rows.
	sampleCap int
	pool      *sync.Pool // *derScratch; shared between a handle and its views

	// Snapshot-bound state: the master snapshot, the support map read
	// from its pattern bitmaps, Σ compiled (gated by sup) into the
	// counter-based closure engine, and the §4 checker. Set on static
	// derivers and pinned views; nil on a versioned handle, which pins
	// per call.
	dm      *master.Data
	checker *analysis.Checker
	sup     supportMap
	prog    *rule.Compiled

	// Versioned-handle state.
	ver  *master.Versioned
	view atomic.Pointer[Deriver] // cached pinned view for the current epoch

	// Historical-view cache for PinAt: in the stateless-server pattern
	// every round of a pre-update session is a resume, so non-head views
	// are worth keeping. Bounded by the master ring's retention; entries
	// whose epoch was evicted are dropped so they cannot keep dead
	// snapshots alive.
	histMu    sync.Mutex
	histViews []*Deriver
}

// derScratch bundles the per-call mutable state: the closure engine's
// counters, a reusable compile target for the per-call refined programs,
// and the value-dedup buffers of sampleRows.
type derScratch struct {
	clo    *rule.ClosureScratch
	prog   *rule.Compiled
	choice choiceScratch
}

// NewDeriver precomputes the support map, compiled closure program and
// checker for a static (Σ, Dm): the deriver is bound to this snapshot
// forever (Pin returns the deriver itself).
func NewDeriver(sigma *rule.Set, dm *master.Data) *Deriver {
	d := newHandle(sigma)
	d.pinTo(dm)
	return d
}

// NewDeriverVersioned builds a deriver over a versioned master: every
// public call pins the currently published snapshot, so suggestions and
// region checks always run against one consistent epoch and pick up
// master updates between calls.
func NewDeriverVersioned(sigma *rule.Set, ver *master.Versioned) *Deriver {
	d := newHandle(sigma)
	d.ver = ver
	return d
}

// NewDeriverForRules builds the sharded master data for (Σ, rel) and a
// static deriver over it in one step — the convenience constructor that
// threads master build options (master.WithShards, master.WithBuildWorkers)
// to callers that would otherwise call master.NewForRules themselves.
// The deriver's own per-epoch engines are O(|Σ|) and need no sharding.
func NewDeriverForRules(sigma *rule.Set, rel *relation.Relation, opts ...master.BuildOption) (*Deriver, error) {
	dm, err := master.NewForRules(rel, sigma, opts...)
	if err != nil {
		return nil, err
	}
	return NewDeriver(sigma, dm), nil
}

func newHandle(sigma *rule.Set) *Deriver {
	return &Deriver{
		sigma:     sigma,
		actDom:    sigma.ActiveDomain(),
		sampleCap: 64,
		pool:      &sync.Pool{New: func() any { return &derScratch{clo: rule.NewClosureScratch()} }},
	}
}

// pinTo binds d to one master snapshot, building the per-epoch engines:
// the support map (read from the snapshot's pattern bitmaps, O(|Σ|)), the
// compiled Σ closure program and the §4 checker.
func (d *Deriver) pinTo(dm *master.Data) {
	d.dm = dm
	d.checker = analysis.NewChecker(d.sigma, dm, analysis.Options{})
	d.sup = computeSupport(d.sigma, dm)
	d.prog = d.sigma.Compile(d.sup)
}

// Pin returns a view of the deriver bound to one master snapshot. On a
// static deriver this is the deriver itself; on a versioned deriver it is
// a cached per-epoch view of the currently published snapshot. All public
// methods pin implicitly, so Pin is only needed when several calls must
// observe the same snapshot (a monitor Session pins once at NewSession).
func (d *Deriver) Pin() *Deriver {
	if d.ver == nil {
		return d // static deriver, or already a pinned view
	}
	snap := d.ver.Current()
	if v := d.view.Load(); v != nil && v.dm == snap {
		return v
	}
	v := d.buildView(snap)
	d.view.Store(v)
	return v
}

// PinAt returns a view of the deriver bound to the master snapshot with
// the given epoch — the resume path of a suspended fix session, which
// must re-observe exactly the Dm it was suspended on. On a versioned
// deriver the snapshot is served from the Versioned ring (an error
// matching master.ErrEpochEvicted when no longer retained); a static
// deriver only ever knows its own snapshot's epoch. Views are cached
// per epoch — the head like Pin, historical epochs in a small cache
// bounded by the ring's retention — so repeated resumes of the same
// epoch (every round of a session in a stateless server) pay the
// O(|Σ|) engine rebuild once, not per call.
func (d *Deriver) PinAt(epoch uint64) (*Deriver, error) {
	if d.ver == nil {
		if d.dm.Epoch() == epoch {
			return d, nil
		}
		return nil, fmt.Errorf("suggest: static deriver is bound to epoch %d, not %d: %w",
			d.dm.Epoch(), epoch, master.ErrEpochEvicted)
	}
	snap, err := d.ver.At(epoch)
	if err != nil {
		return nil, err
	}
	if v := d.view.Load(); v != nil && v.dm == snap {
		return v, nil
	}
	if d.ver.Current() == snap {
		v := d.buildView(snap)
		d.view.Store(v) // head view: cache it like Pin would
		return v, nil
	}
	return d.histView(snap), nil
}

// histView serves a non-head pinned view from the historical cache,
// building and inserting it on a miss. Stale entries — epochs the ring
// no longer retains — are pruned on every insert.
func (d *Deriver) histView(snap *master.Data) *Deriver {
	d.histMu.Lock()
	defer d.histMu.Unlock()
	for _, v := range d.histViews {
		if v.dm == snap {
			return v
		}
	}
	v := d.buildView(snap)
	kept := d.histViews[:0]
	for _, old := range d.histViews {
		if s, err := d.ver.At(old.dm.Epoch()); err == nil && s == old.dm {
			kept = append(kept, old)
		}
	}
	d.histViews = append(kept, v)
	if max := d.ver.History(); len(d.histViews) > max {
		d.histViews = append([]*Deriver(nil), d.histViews[len(d.histViews)-max:]...)
	}
	return v
}

// buildView constructs a fresh snapshot-bound view sharing the handle's
// immutable parts and scratch pool.
func (d *Deriver) buildView(snap *master.Data) *Deriver {
	v := &Deriver{sigma: d.sigma, actDom: d.actDom, sampleCap: d.sampleCap, pool: d.pool}
	v.pinTo(snap)
	return v
}

// Fork returns an independent deriver over the same master source — the
// per-worker isolation path of monitor's batch pipeline. A versioned
// deriver forks versioned (workers pick up new epochs between tuples).
func (d *Deriver) Fork() *Deriver {
	if d.ver != nil {
		return NewDeriverVersioned(d.sigma, d.ver)
	}
	return NewDeriver(d.sigma, d.dm)
}

func (d *Deriver) getScratch() *derScratch   { return d.pool.Get().(*derScratch) }
func (d *Deriver) putScratch(sc *derScratch) { d.pool.Put(sc) }

// Sigma returns Σ.
func (d *Deriver) Sigma() *rule.Set { return d.sigma }

// Master returns Dm: the bound snapshot (static deriver or pinned view),
// or the currently published snapshot (versioned deriver).
func (d *Deriver) Master() *master.Data { return d.Pin().dm }

// Epoch returns the epoch of the snapshot Master would return.
func (d *Deriver) Epoch() uint64 { return d.Pin().dm.Epoch() }

// Checker returns the §4 checker for the current snapshot.
func (d *Deriver) Checker() *analysis.Checker { return d.Pin().checker }

// CertainRow reports whether the concrete values vals over z form a
// certain-region pattern row: consistent and covering (Theorem 4).
func (d *Deriver) CertainRow(z []int, vals []relation.Value) bool {
	return d.Pin().checker.ConcreteVerdict(z, vals, true).OK
}

// ConsistentRow reports whether vals over z lead to a unique fix.
func (d *Deriver) ConsistentRow(z []int, vals []relation.Value) bool {
	return d.Pin().checker.ConcreteVerdict(z, vals, false).OK
}

// CompCRegions derives candidate certain regions ranked by quality
// (descending). Different seeds explore different greedy starting points;
// duplicates (same Z) are merged. The first element is the CRHQ region of
// §6 Exp-1(2); the middle element is CRMQ.
func (d *Deriver) CompCRegions() []Candidate {
	d = d.Pin()
	free := d.sigma.FreeAttrs()

	// Seeds: the bare free set, plus free ∪ {A} for every attribute read
	// by some rule (lhs or pattern attribute).
	seedExtras := d.sigma.LHS().Union(d.sigma.PatternAttrs()).Positions()
	seen := map[string]bool{}
	var out []Candidate
	tryZ := func(zSet relation.AttrSet) {
		z := d.growAndMinimize(zSet)
		if z == nil {
			return
		}
		key := relation.NewAttrSet(z...).Key()
		if seen[key] {
			return
		}
		seen[key] = true
		cand := d.score(z)
		if cand.Support > 0 {
			out = append(out, cand)
		}
	}
	tryZ(free.Clone())
	for _, a := range seedExtras {
		s := free.Clone()
		s.Add(a)
		tryZ(s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Quality > out[j].Quality })
	return out
}

// growAndMinimize grows zSet greedily until the structural closure covers
// R (preferring the attribute whose addition enlarges the closure most),
// then reverse-deletes redundant attributes. Returns nil when full
// coverage is unreachable. Runs on the precompiled Σ program: each greedy
// round is one GainAll pass instead of one closure per candidate.
func (d *Deriver) growAndMinimize(zSet relation.AttrSet) []int {
	arity := d.sigma.Schema().Arity()
	cur := zSet.Clone()
	free := d.sigma.FreeAttrs()
	sc := d.getScratch()
	defer d.putScratch(sc)

	for {
		baseLen, gains := d.prog.GainAll(cur, sc.clo)
		if baseLen >= arity {
			break
		}
		bestAttr, bestGain := -1, -1
		for a := 0; a < arity; a++ {
			if cur.Has(a) {
				continue
			}
			if gains[a] > bestGain {
				bestGain, bestAttr = gains[a], a
			}
		}
		if bestAttr < 0 || bestGain <= baseLen {
			// No attribute makes progress: coverage unreachable.
			return nil
		}
		cur.Add(bestAttr)
	}

	// Reverse-delete: drop attributes (never free ones) whose removal
	// keeps the closure complete; each trial is a remove/re-add on cur.
	for _, a := range cur.Positions() {
		if free.Has(a) {
			continue
		}
		cur.Remove(a)
		if d.prog.Closure(cur, sc.clo) != arity {
			cur.Add(a)
		}
	}
	return cur.Positions()
}

// score verifies sampled master-derived rows for Z and computes the
// quality: primarily fewer user-validated attributes (more coverage by
// rules), secondarily the fraction of sampled rows that verified certain.
func (d *Deriver) score(z []int) Candidate {
	r := d.sigma.Schema()
	support, samples := 0, 0
	for _, vals := range d.sampleRows(z) {
		samples++
		if d.CertainRow(z, vals) {
			support++
		}
	}
	frac := 0.0
	if samples > 0 {
		frac = float64(support) / float64(samples)
	}
	quality := float64(r.Arity()-len(z)) + frac
	return Candidate{Z: z, ZSet: relation.NewAttrSet(z...), Quality: quality, Support: support}
}

// sampleRows builds candidate pattern rows for Z from master tuples: for
// each sampled tm, each Z attribute takes tm's λϕ-paired value when it is
// an lhs attribute, a pattern constant when only patterns mention it, and
// a placeholder otherwise. Multiple choices (e.g. type ∈ {1, 2}) multiply
// within a small bound.
func (d *Deriver) sampleRows(z []int) [][]relation.Value {
	n := d.dm.Len()
	if n == 0 {
		return nil
	}
	step := 1
	if n > d.sampleCap {
		step = n / d.sampleCap
	}
	sc := d.getScratch()
	defer d.putScratch(sc)
	choices := make([][]relation.Value, len(z))
	var rows [][]relation.Value
	for id := 0; id < n; id += step {
		tm := d.dm.Tuple(id)
		for i, a := range z {
			choices[i] = d.attrChoicesInto(&sc.choice, i, a, tm)
		}
		rows = appendProduct(rows, choices, 8)
	}
	return rows
}

// choiceScratch is the reusable state of attrChoicesInto: one epoch-stamped
// dense array over interned master-value ids (O(1) dedup), a short linear
// overflow for constants absent from the master symbol table, and per-slot
// output buffers that survive across master tuples within one sampleRows.
type choiceScratch struct {
	epoch  uint32
	stamp  []uint32
	extras []relation.Value
	bufs   [][]relation.Value
}

// attrChoicesInto lists the plausible validated values of attribute a
// given master tuple tm into the slot-th scratch buffer. The returned
// slice aliases the scratch and is valid until slot is reused.
func (d *Deriver) attrChoicesInto(sc *choiceScratch, slot, a int, tm relation.Tuple) []relation.Value {
	for len(sc.bufs) <= slot {
		sc.bufs = append(sc.bufs, nil)
	}
	out := sc.bufs[slot][:0]
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale stamps could collide
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 1
	}
	sc.extras = sc.extras[:0]
	syms := d.dm.Hasher().Symbols()
	add := func(v relation.Value) {
		if id, ok := syms.ID(v); ok {
			for int(id) >= len(sc.stamp) {
				sc.stamp = append(sc.stamp, 0)
			}
			if sc.stamp[id] == sc.epoch {
				return
			}
			sc.stamp[id] = sc.epoch
		} else {
			// Pattern constants never seen in an indexed master column:
			// rare, so a short linear scan suffices.
			for _, w := range sc.extras {
				if w.Equal(v) {
					return
				}
			}
			sc.extras = append(sc.extras, v)
		}
		out = append(out, v)
	}
	for _, ru := range d.sigma.Rules() {
		if mp, ok := ru.MasterPosFor(a); ok {
			add(tm[mp])
		}
	}
	if vs, ok := d.actDom[a]; ok {
		for _, v := range vs {
			add(v)
		}
	}
	if len(out) == 0 {
		// Attribute outside Σ (like `item`): its value is irrelevant to
		// rule firing; any placeholder works.
		add(relation.String("*"))
	}
	sc.bufs[slot] = out
	return out
}

// appendProduct appends the cartesian product of choices to rows, bounded
// per master tuple to avoid blowups from wide pattern domains.
func appendProduct(rows [][]relation.Value, choices [][]relation.Value, bound int) [][]relation.Value {
	total := 1
	for _, c := range choices {
		total *= len(c)
		if total > bound {
			total = bound
			break
		}
	}
	vec := make([]relation.Value, len(choices))
	count := 0
	var walk func(i int)
	walk = func(i int) {
		if count >= bound {
			return
		}
		if i == len(choices) {
			rows = append(rows, append([]relation.Value(nil), vec...))
			count++
			return
		}
		for _, v := range choices[i] {
			vec[i] = v
			walk(i + 1)
		}
	}
	walk(0)
	return rows
}

// GRegion is the greedy baseline of §6 Exp-1(1): "at each stage, choose
// an attribute which may fix the largest number of uncovered attributes".
// It reasons one step at a time — no cascade closure, no reverse-delete —
// so it picks intermediate attributes a cascade would have covered for
// free, ending with a larger Z than CompCRegion (the paper's table:
// 4 vs 2 on HOSP, 9 vs 5 on DBLP).
func (d *Deriver) GRegion() Candidate {
	d = d.Pin()
	arity := d.sigma.Schema().Arity()
	var cur relation.AttrSet

	for {
		covered := directCover(d.sigma, d.sup, cur)
		if covered.Len() >= arity {
			break
		}
		// Greedy step: the attribute enabling the most one-step fixes.
		bestAttr, bestGain := -1, 0
		for a := 0; a < arity; a++ {
			if cur.Has(a) {
				continue
			}
			trial := cur.Clone()
			trial.Add(a)
			gain := directCover(d.sigma, d.sup, trial).Len() - covered.Len()
			if !covered.Has(a) {
				gain-- // do not count the attribute covering itself
			}
			if gain > bestGain {
				bestGain, bestAttr = gain, a
			}
		}
		if bestAttr >= 0 {
			cur.Add(bestAttr)
			continue
		}
		// No attribute fixes anything by itself: add the uncovered
		// attribute occurring in the most premises of rules whose rhs is
		// still uncovered (a multi-attribute premise needs several stages
		// to assemble); free attributes come last, one per stage.
		cur.Add(d.gRegionFallback(covered, cur))
	}
	return d.score(cur.Positions())
}

// gRegionFallback picks the next attribute when no single addition fires
// a rule.
func (d *Deriver) gRegionFallback(covered, cur relation.AttrSet) int {
	arity := d.sigma.Schema().Arity()
	counts := make([]int, arity)
	for i, ru := range d.sigma.Rules() {
		if !d.sup[i] || covered.Has(ru.RHS()) {
			continue
		}
		for _, p := range ru.PremiseSet().Positions() {
			if !cur.Has(p) {
				counts[p]++
			}
		}
	}
	best, bestCount := -1, 0
	for a := 0; a < arity; a++ {
		if !cur.Has(a) && counts[a] > bestCount {
			best, bestCount = a, counts[a]
		}
	}
	if best >= 0 {
		return best
	}
	for a := 0; a < arity; a++ {
		if !covered.Has(a) && !cur.Has(a) {
			return a
		}
	}
	// Unreachable: the loop only calls this while something is uncovered.
	return 0
}
