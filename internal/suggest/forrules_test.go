package suggest_test

import (
	"testing"

	"repro/internal/master"
	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/internal/suggest"
)

// TestNewDeriverForRulesSharded: the one-step constructor builds a
// sharded master and suggests identically to a deriver over the
// unsharded build.
func TestNewDeriverForRulesSharded(t *testing.T) {
	sigma := paperex.Sigma0()
	rel := paperex.MasterRelation()
	d, err := suggest.NewDeriverForRules(sigma, rel, master.WithShards(4), master.WithBuildWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Master().Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	plain := suggest.NewDeriver(sigma, master.MustNewForRules(rel, sigma, master.WithShards(1)))
	r := sigma.Schema()
	t1 := paperex.InputT1()
	for _, z := range [][]int{
		r.MustPosList("zip"),
		r.MustPosList("zip", "phn"),
		r.MustPosList("zip", "AC", "str", "city"),
	} {
		zSet := relation.NewAttrSet(z...)
		a, b := d.Suggest(t1, zSet), plain.Suggest(t1, zSet)
		if len(a.S) != len(b.S) {
			t.Fatalf("z=%v: sharded S=%v, unsharded S=%v", z, a.S, b.S)
		}
		for i := range a.S {
			if a.S[i] != b.S[i] {
				t.Fatalf("z=%v: sharded S=%v, unsharded S=%v", z, a.S, b.S)
			}
		}
	}
}
