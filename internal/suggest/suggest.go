package suggest

import (
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// ApplicableRules computes Σ_t[Z] of §5.2: the rules that can still
// participate in fixing t once t[Z] is validated, each refined into ϕ+ by
// pinning its pattern to t's validated values. A rule ϕ is kept when
//
//	(a) rhs(ϕ) ∉ Z (validated attributes are protected),
//	(b) its pattern cells on Z accept t's values, and
//	(c) some master tuple is compatible: it satisfies the pattern cells on
//	    the λϕ-mapped lhs attributes and agrees with t on λϕ(X ∩ Z).
//
// ϕ+ extends the pattern with X ∩ Z pinned to t's constants (Prop. 20
// shows suggestions may be computed against Σ_t[Z] instead of Σ).
// Condition (c) runs on the master's inverted postings (smallest-first
// posting intersection under the pattern-support bitmap) instead of the
// O(|Dm|) scan per rule; see master.CompatibleExists.
func (d *Deriver) ApplicableRules(t relation.Tuple, zSet relation.AttrSet) *rule.Set {
	d = d.Pin()
	out := rule.MustNewSet(d.sigma.Schema(), d.dm.Schema())
	out.Grow(d.sigma.Len())
	for _, ru := range d.sigma.Rules() {
		if zSet.Has(ru.RHS()) {
			continue // (a)
		}
		if !patternAccepts(ru, t, zSet) {
			continue // (b)
		}
		if !d.dm.CompatibleExists(ru, t, zSet) {
			continue // (c)
		}
		refined := ru.Pattern()
		touched := false
		for _, p := range ru.LHSRef() {
			if zSet.Has(p) {
				refined = refined.WithCell(p, pattern.Eq(t[p]))
				touched = true
			}
		}
		if !touched {
			out.Add(ru) // X ∩ Z = ∅: ϕ+ coincides with ϕ (Example 14's ϕ4, ϕ5)
			continue
		}
		plus, err := ru.WithPattern(refined)
		if err != nil {
			continue // cannot happen: refinement keeps positions valid
		}
		out.Add(plus)
	}
	return out
}

// patternAccepts checks condition (b): tp[Xp ∩ Z] ≈ t[Xp ∩ Z].
func patternAccepts(ru *rule.Rule, t relation.Tuple, zSet relation.AttrSet) bool {
	tp := ru.Pattern()
	for i := 0; i < tp.Len(); i++ {
		pos, cell := tp.CellAt(i)
		if zSet.Has(pos) && !cell.Matches(t[pos]) {
			return false
		}
	}
	return true
}

// Suggestion is the result of procedure Suggest: the attribute set S to
// recommend, with the refined rule set used to justify it.
type Suggestion struct {
	S       []int
	Refined *rule.Set
}

// Suggest implements procedure Suggest of Fig. 6: derive Σ_t[Z], compute a
// (small) attribute set S such that validating t[S] on top of t[Z]
// reaches full structural coverage, and return it. An empty S means the
// closure of Z under the refined rules already covers R. Attributes no
// rule can reach end up in S themselves — the users must assert them
// directly, exactly as the paper's framework expects (Example 8: item has
// to be assured by the users).
//
// The refined set is compiled once into a counter-based closure program;
// each greedy round evaluates every candidate's closure gain in one
// GainAll pass (the base closure plus undone marginal trials) instead of
// one full O(|Σ|²) fixpoint per candidate.
//
// When the refined set is weighted (mined rules carrying confidence
// below 1 — see rule.Rule.Confidence), equal closure gains are broken by
// confidence mass: among tied attributes, prefer the one whose dependent
// rules are most trustworthy, so the fixes riding on the validated
// attribute lean on the best-supported evidence. Unweighted sets (every
// hand-written Σ) keep the original first-index tie-break, byte for
// byte.
func (d *Deriver) Suggest(t relation.Tuple, zSet relation.AttrSet) Suggestion {
	d = d.Pin()
	refined := d.ApplicableRules(t, zSet)
	arity := d.sigma.Schema().Arity()
	sc := d.getScratch()
	defer d.putScratch(sc)
	// Every refined rule passed condition (c), so all are enabled.
	prog := refined.CompileInto(nil, sc.prog)
	sc.prog = prog

	// confMass[a] = Σ confidence over refined rules whose premise
	// contains a: how much mined evidence stands behind validating a.
	// Computed only for weighted sets; nil keeps the unweighted path
	// allocation-free and behaviorally identical.
	var confMass []float64
	if refined.Weighted() {
		confMass = make([]float64, arity)
		for _, ru := range refined.Rules() {
			for _, p := range ru.PremiseSet().Positions() {
				confMass[p] += ru.Confidence()
			}
		}
	}

	cur := zSet.Clone()
	var s relation.AttrSet
	for {
		baseLen, gains := prog.GainAll(cur, sc.clo)
		if baseLen >= arity {
			break
		}
		bestAttr, bestGain := -1, -1
		for a := 0; a < arity; a++ {
			if cur.Has(a) {
				continue
			}
			if gains[a] > bestGain {
				bestGain, bestAttr = gains[a], a
			} else if confMass != nil && gains[a] == bestGain && bestAttr >= 0 && confMass[a] > confMass[bestAttr] {
				bestAttr = a // weighted tie-break: higher confidence mass wins
			}
		}
		if bestAttr < 0 {
			break
		}
		cur.Add(bestAttr)
		s.Add(bestAttr)
		// A bestGain of baseLen+1 means the attribute only covered itself;
		// keep going — remaining unreachable attributes all end up in S.
	}

	// Reverse-delete to keep S minimal (S-minimum is NP-hard, Thm 12 via
	// the Z = ∅ special case; greedy + reverse-delete is the heuristic).
	// cur is Z ∪ S throughout (S is disjoint from Z by construction), so
	// each trial is a remove/re-add instead of a fresh union.
	for _, a := range s.Positions() {
		cur.Remove(a)
		if prog.Closure(cur, sc.clo) == arity {
			s.Remove(a)
		} else {
			cur.Add(a)
		}
	}
	return Suggestion{S: s.Positions(), Refined: refined}
}

// IsSuggestion reports whether validating t[S] on top of t[Z] reaches full
// structural coverage under the refined rules Σ_t[Z].
func (d *Deriver) IsSuggestion(t relation.Tuple, zSet relation.AttrSet, s []int) bool {
	d = d.Pin()
	refined := d.ApplicableRules(t, zSet)
	sc := d.getScratch()
	defer d.putScratch(sc)
	prog := refined.CompileInto(nil, sc.prog)
	sc.prog = prog
	cur := zSet.Clone()
	cur.AddAll(s)
	return prog.Closure(cur, sc.clo) == d.sigma.Schema().Arity()
}

// IsSuggestionFast is the reuse test of Suggest+ (§5.2): it decides
// whether a cached suggestion still covers R using only the precomputed
// per-rule master support — no per-tuple master scans. Checking a cached
// suggestion this way is far cheaper than computing a fresh one (which
// must derive Σ_t[Z] against the master data); optimism about the
// specific tuple's values is safe because the framework re-validates
// through TransFix after the users answer. Runs on the deriver's
// precompiled Σ program: one counter pass per check.
func (d *Deriver) IsSuggestionFast(zSet relation.AttrSet, s []int) bool {
	d = d.Pin()
	sc := d.getScratch()
	defer d.putScratch(sc)
	cur := zSet.Clone()
	cur.AddAll(s)
	return d.prog.Closure(cur, sc.clo) == d.sigma.Schema().Arity()
}
