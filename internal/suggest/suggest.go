package suggest

import (
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// ApplicableRules computes Σ_t[Z] of §5.2: the rules that can still
// participate in fixing t once t[Z] is validated, each refined into ϕ+ by
// pinning its pattern to t's validated values. A rule ϕ is kept when
//
//	(a) rhs(ϕ) ∉ Z (validated attributes are protected),
//	(b) its pattern cells on Z accept t's values, and
//	(c) some master tuple is compatible: it satisfies the pattern cells on
//	    the λϕ-mapped lhs attributes and agrees with t on λϕ(X ∩ Z).
//
// ϕ+ extends the pattern with X ∩ Z pinned to t's constants (Prop. 20
// shows suggestions may be computed against Σ_t[Z] instead of Σ).
func (d *Deriver) ApplicableRules(t relation.Tuple, zSet relation.AttrSet) *rule.Set {
	out := rule.MustNewSet(d.sigma.Schema(), d.dm.Schema())
	for _, ru := range d.sigma.Rules() {
		if zSet.Has(ru.RHS()) {
			continue // (a)
		}
		if !patternAccepts(ru, t, zSet) {
			continue // (b)
		}
		if !d.masterCompatible(ru, t, zSet) {
			continue // (c)
		}
		refined := ru.Pattern()
		touched := false
		for _, p := range ru.LHS() {
			if zSet.Has(p) {
				refined = refined.WithCell(p, pattern.Eq(t[p]))
				touched = true
			}
		}
		if !touched {
			out.Add(ru) // X ∩ Z = ∅: ϕ+ coincides with ϕ (Example 14's ϕ4, ϕ5)
			continue
		}
		plus, err := ru.WithPattern(refined)
		if err != nil {
			continue // cannot happen: refinement keeps positions valid
		}
		out.Add(plus)
	}
	return out
}

// patternAccepts checks condition (b): tp[Xp ∩ Z] ≈ t[Xp ∩ Z].
func patternAccepts(ru *rule.Rule, t relation.Tuple, zSet relation.AttrSet) bool {
	tp := ru.Pattern()
	for i := 0; i < tp.Len(); i++ {
		pos, cell := tp.CellAt(i)
		if zSet.Has(pos) && !cell.Matches(t[pos]) {
			return false
		}
	}
	return true
}

// masterCompatible checks condition (c). When X ⊆ Z it probes the master
// index on the full Xm key (O(1)); for partially validated lhs it scans
// for a tuple agreeing on the validated part and pattern-compatible on
// the rest.
func (d *Deriver) masterCompatible(ru *rule.Rule, t relation.Tuple, zSet relation.AttrSet) bool {
	x, xm := ru.LHSRef(), ru.LHSMRef()
	if zSet.ContainsSet(ru.LHSSet()) {
		// Fully validated lhs: one O(1) index probe on tm[Xm] = t[X].
		for _, id := range d.dm.MatchIDs(ru, t) {
			if d.patternCompatibleMaster(ru, d.dm.Tuple(id)) {
				return true
			}
		}
		return false
	}
	tp := ru.Pattern()
	for _, tm := range d.dm.Relation().Tuples() {
		ok := true
		for i := range x {
			if zSet.Has(x[i]) {
				if !t[x[i]].Equal(tm[xm[i]]) {
					ok = false
					break
				}
			}
			if cell, has := tp.CellFor(x[i]); has && !cell.Matches(tm[xm[i]]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// patternCompatibleMaster checks tm[λϕ(Xp ∩ X)] ≈ tp[Xp ∩ X].
func (d *Deriver) patternCompatibleMaster(ru *rule.Rule, tm relation.Tuple) bool {
	x, xm := ru.LHSRef(), ru.LHSMRef()
	tp := ru.Pattern()
	for i := range x {
		if cell, has := tp.CellFor(x[i]); has && !cell.Matches(tm[xm[i]]) {
			return false
		}
	}
	return true
}

// allSupported marks every rule of a refined set as master-supported:
// ApplicableRules admits a rule only after finding a compatible master
// tuple (condition (c)), so recomputing support would be redundant work.
func allSupported(s *rule.Set) supportMap {
	sup := make(supportMap, s.Len())
	for i := range sup {
		sup[i] = true
	}
	return sup
}

// Suggestion is the result of procedure Suggest: the attribute set S to
// recommend, with the refined rule set used to justify it.
type Suggestion struct {
	S       []int
	Refined *rule.Set
}

// Suggest implements procedure Suggest of Fig. 6: derive Σ_t[Z], compute a
// (small) attribute set S such that validating t[S] on top of t[Z]
// reaches full structural coverage, and return it. An empty S means the
// closure of Z under the refined rules already covers R. Attributes no
// rule can reach end up in S themselves — the users must assert them
// directly, exactly as the paper's framework expects (Example 8: item has
// to be assured by the users).
func (d *Deriver) Suggest(t relation.Tuple, zSet relation.AttrSet) Suggestion {
	refined := d.ApplicableRules(t, zSet)
	sup := allSupported(refined)
	arity := d.sigma.Schema().Arity()

	cur := zSet.Clone()
	var s relation.AttrSet
	for structuralClosure(refined, sup, cur).Len() < arity {
		bestAttr, bestGain := -1, -1
		closNow := structuralClosure(refined, sup, cur).Len()
		for a := 0; a < arity; a++ {
			if cur.Has(a) {
				continue
			}
			trial := cur.Clone()
			trial.Add(a)
			gain := structuralClosure(refined, sup, trial).Len()
			if gain > bestGain {
				bestGain, bestAttr = gain, a
			}
		}
		if bestAttr < 0 {
			break
		}
		cur.Add(bestAttr)
		s.Add(bestAttr)
		if bestGain <= closNow+1 {
			// The attribute only covered itself; keep going — remaining
			// unreachable attributes all end up in S this way.
			continue
		}
	}

	// Reverse-delete to keep S minimal (S-minimum is NP-hard, Thm 12 via
	// the Z = ∅ special case; greedy + reverse-delete is the heuristic).
	for _, a := range s.Positions() {
		trialS := s.Clone()
		trialS.Remove(a)
		trial := zSet.Union(trialS)
		if structuralClosure(refined, sup, trial).Len() == arity {
			s = trialS
		}
	}
	return Suggestion{S: s.Positions(), Refined: refined}
}

// IsSuggestion reports whether validating t[S] on top of t[Z] reaches full
// structural coverage under the refined rules Σ_t[Z].
func (d *Deriver) IsSuggestion(t relation.Tuple, zSet relation.AttrSet, s []int) bool {
	refined := d.ApplicableRules(t, zSet)
	sup := allSupported(refined)
	cur := zSet.Clone()
	cur.AddAll(s)
	return structuralClosure(refined, sup, cur).Len() == d.sigma.Schema().Arity()
}

// IsSuggestionFast is the reuse test of Suggest+ (§5.2): it decides
// whether a cached suggestion still covers R using only the precomputed
// per-rule master support — no per-tuple master scans. Checking a cached
// suggestion this way is far cheaper than computing a fresh one (which
// must derive Σ_t[Z] against the master data); optimism about the
// specific tuple's values is safe because the framework re-validates
// through TransFix after the users answer.
func (d *Deriver) IsSuggestionFast(zSet relation.AttrSet, s []int) bool {
	cur := zSet.Clone()
	cur.AddAll(s)
	return structuralClosure(d.sigma, d.sup, cur).Len() == d.sigma.Schema().Arity()
}
