package suggest_test

import (
	"math/rand"
	"testing"

	"repro/internal/rule"
	"repro/internal/suggest"
)

// These tests pin the tentpole equivalences: the compiled closure engine
// and the postings-based master compatibility must be drop-in replacements
// for the naive implementations — byte-identical Suggest, ApplicableRules
// and CompCRegions outputs on randomized (Σ, Dm).

func sameRuleSets(a, b *rule.Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Rule(i), b.Rule(i)
		if ra.Name() != rb.Name() || ra.String() != rb.String() {
			return false
		}
		if !ra.Pattern().Equal(rb.Pattern()) {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestApplicableRulesCompiledVsNaiveProperty: Σ_t[Z] derived through the
// inverted postings equals the Dm-scan derivation, rule for rule.
func TestApplicableRulesCompiledVsNaiveProperty(t *testing.T) {
	iterations := 400
	if testing.Short() {
		iterations = 60
	}
	for seed := 0; seed < iterations; seed++ {
		rng := rand.New(rand.NewSource(int64(10_000_000 + seed)))
		d, tup, zSet := randomSuggestInstance(rng)
		got := d.ApplicableRules(tup, zSet)
		want := d.ApplicableRulesNaive(tup, zSet)
		if !sameRuleSets(got, want) {
			t.Fatalf("seed %d: refined sets diverge\ncompiled:\n%s\nnaive:\n%s", seed, got, want)
		}
	}
}

// TestSuggestCompiledVsNaiveProperty: procedure Suggest on the compiled
// closure engine returns byte-identical suggestions (S and the refined
// set) to the naive fixpoint path.
func TestSuggestCompiledVsNaiveProperty(t *testing.T) {
	iterations := 400
	if testing.Short() {
		iterations = 60
	}
	for seed := 0; seed < iterations; seed++ {
		rng := rand.New(rand.NewSource(int64(11_000_000 + seed)))
		d, tup, zSet := randomSuggestInstance(rng)
		got := d.Suggest(tup, zSet)
		want := d.SuggestNaive(tup, zSet)
		if !sameInts(got.S, want.S) {
			t.Fatalf("seed %d: S diverges: compiled %v, naive %v", seed, got.S, want.S)
		}
		if !sameRuleSets(got.Refined, want.Refined) {
			t.Fatalf("seed %d: refined sets diverge", seed)
		}
	}
}

// TestCompCRegionsCompiledVsNaiveProperty: region derivation on the
// compiled engine returns the same candidates (Z, quality, support) in
// the same order.
func TestCompCRegionsCompiledVsNaiveProperty(t *testing.T) {
	iterations := 150
	if testing.Short() {
		iterations = 30
	}
	for seed := 0; seed < iterations; seed++ {
		rng := rand.New(rand.NewSource(int64(12_000_000 + seed)))
		d, _, _ := randomSuggestInstance(rng)
		got := d.CompCRegions()
		want := d.CompCRegionsNaive()
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d candidates vs %d", seed, len(got), len(want))
		}
		for i := range got {
			if !sameInts(got[i].Z, want[i].Z) || got[i].Quality != want[i].Quality || got[i].Support != want[i].Support {
				t.Fatalf("seed %d: candidate %d diverges: %+v vs %+v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestIsSuggestionFastMatchesNaiveClosure: the Suggest+ reuse test on the
// precompiled Σ program agrees with the naive structural closure.
func TestIsSuggestionFastMatchesNaiveClosure(t *testing.T) {
	for seed := 0; seed < 200; seed++ {
		rng := rand.New(rand.NewSource(int64(13_000_000 + seed)))
		d, _, zSet := randomSuggestInstance(rng)
		arity := d.Sigma().Schema().Arity()
		s := rng.Perm(arity)[:rng.Intn(arity+1)]
		sup := make([]bool, d.Sigma().Len())
		for i, ru := range d.Sigma().Rules() {
			sup[i] = d.Master().PatternSupported(ru)
		}
		cur := zSet.Clone()
		cur.AddAll(s)
		want := suggest.StructuralClosure(d.Sigma(), sup, cur).Len() == arity
		if got := d.IsSuggestionFast(zSet, s); got != want {
			t.Fatalf("seed %d: IsSuggestionFast=%v, naive=%v", seed, got, want)
		}
	}
}
