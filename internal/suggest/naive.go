package suggest

import (
	"sort"

	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// This file keeps the pre-compilation implementations of the §5 paths as
// reference oracles: they mirror the production methods exactly, minus
// the compiled closure engine and the inverted master postings. The
// property tests assert byte-identical outputs between each pair on
// randomized (Σ, Dm); the compiled-vs-naive benchmarks in bench_test.go
// measure the gap. Do not call these from production code.

// allSupported marks every rule of a refined set as master-supported:
// ApplicableRules admits a rule only after finding a compatible master
// tuple (condition (c)), so recomputing support would be redundant work.
func allSupported(s *rule.Set) supportMap {
	sup := make(supportMap, s.Len())
	for i := range sup {
		sup[i] = true
	}
	return sup
}

// ApplicableRulesNaive is ApplicableRules with condition (c) decided by
// the O(|Dm|) scan instead of the posting intersection.
func (d *Deriver) ApplicableRulesNaive(t relation.Tuple, zSet relation.AttrSet) *rule.Set {
	d = d.Pin()
	out := rule.MustNewSet(d.sigma.Schema(), d.dm.Schema())
	for _, ru := range d.sigma.Rules() {
		if zSet.Has(ru.RHS()) {
			continue // (a)
		}
		if !patternAccepts(ru, t, zSet) {
			continue // (b)
		}
		if !d.masterCompatibleScan(ru, t, zSet) {
			continue // (c)
		}
		refined := ru.Pattern()
		touched := false
		for _, p := range ru.LHSRef() {
			if zSet.Has(p) {
				refined = refined.WithCell(p, pattern.Eq(t[p]))
				touched = true
			}
		}
		if !touched {
			out.Add(ru)
			continue
		}
		plus, err := ru.WithPattern(refined)
		if err != nil {
			continue
		}
		out.Add(plus)
	}
	return out
}

// masterCompatibleScan checks condition (c) the naive way: a full-key
// index probe when X ⊆ Z, otherwise a scan over Dm for a tuple agreeing
// on the validated part and pattern-compatible on the rest. Oracle for
// master.CompatibleExists.
func (d *Deriver) masterCompatibleScan(ru *rule.Rule, t relation.Tuple, zSet relation.AttrSet) bool {
	x, xm := ru.LHSRef(), ru.LHSMRef()
	if zSet.HasAll(x) {
		for _, id := range d.dm.MatchIDs(ru, t) {
			if patternCompatibleMaster(ru, d.dm.Tuple(id)) {
				return true
			}
		}
		return false
	}
	tp := ru.Pattern()
	for _, tm := range d.dm.Relation().Tuples() {
		ok := true
		for i := range x {
			if zSet.Has(x[i]) {
				if !t[x[i]].Equal(tm[xm[i]]) {
					ok = false
					break
				}
			}
			if cell, has := tp.CellFor(x[i]); has && !cell.Matches(tm[xm[i]]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// patternCompatibleMaster checks tm[λϕ(Xp ∩ X)] ≈ tp[Xp ∩ X].
func patternCompatibleMaster(ru *rule.Rule, tm relation.Tuple) bool {
	x, xm := ru.LHSRef(), ru.LHSMRef()
	tp := ru.Pattern()
	for i := range x {
		if cell, has := tp.CellFor(x[i]); has && !cell.Matches(tm[xm[i]]) {
			return false
		}
	}
	return true
}

// SuggestNaive is Suggest running on the naive fixpoint closure: one full
// O(|Σ|²) closure per candidate attribute per greedy round.
func (d *Deriver) SuggestNaive(t relation.Tuple, zSet relation.AttrSet) Suggestion {
	d = d.Pin()
	refined := d.ApplicableRulesNaive(t, zSet)
	sup := allSupported(refined)
	arity := d.sigma.Schema().Arity()

	cur := zSet.Clone()
	var s relation.AttrSet
	for structuralClosure(refined, sup, cur).Len() < arity {
		bestAttr, bestGain := -1, -1
		for a := 0; a < arity; a++ {
			if cur.Has(a) {
				continue
			}
			trial := cur.Clone()
			trial.Add(a)
			gain := structuralClosure(refined, sup, trial).Len()
			if gain > bestGain {
				bestGain, bestAttr = gain, a
			}
		}
		if bestAttr < 0 {
			break
		}
		cur.Add(bestAttr)
		s.Add(bestAttr)
	}

	for _, a := range s.Positions() {
		trialS := s.Clone()
		trialS.Remove(a)
		trial := zSet.Union(trialS)
		if structuralClosure(refined, sup, trial).Len() == arity {
			s = trialS
		}
	}
	return Suggestion{S: s.Positions(), Refined: refined}
}

// CompCRegionsNaive is CompCRegions with region growth running on the
// naive fixpoint closure.
func (d *Deriver) CompCRegionsNaive() []Candidate {
	d = d.Pin()
	free := d.sigma.FreeAttrs()
	seedExtras := d.sigma.LHS().Union(d.sigma.PatternAttrs()).Positions()
	seen := map[string]bool{}
	var out []Candidate
	tryZ := func(zSet relation.AttrSet) {
		z := d.growAndMinimizeNaive(zSet)
		if z == nil {
			return
		}
		key := relation.NewAttrSet(z...).Key()
		if seen[key] {
			return
		}
		seen[key] = true
		cand := d.score(z)
		if cand.Support > 0 {
			out = append(out, cand)
		}
	}
	tryZ(free.Clone())
	for _, a := range seedExtras {
		s := free.Clone()
		s.Add(a)
		tryZ(s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Quality > out[j].Quality })
	return out
}

// growAndMinimizeNaive is growAndMinimize on the naive fixpoint closure.
func (d *Deriver) growAndMinimizeNaive(zSet relation.AttrSet) []int {
	arity := d.sigma.Schema().Arity()
	cur := zSet.Clone()
	free := d.sigma.FreeAttrs()

	for structuralClosure(d.sigma, d.sup, cur).Len() < arity {
		bestAttr, bestGain := -1, -1
		for a := 0; a < arity; a++ {
			if cur.Has(a) {
				continue
			}
			trial := cur.Clone()
			trial.Add(a)
			gain := structuralClosure(d.sigma, d.sup, trial).Len()
			if gain > bestGain {
				bestGain, bestAttr = gain, a
			}
		}
		if bestAttr < 0 {
			return nil
		}
		before := structuralClosure(d.sigma, d.sup, cur).Len()
		cur.Add(bestAttr)
		if bestGain <= before {
			return nil
		}
	}

	for _, a := range cur.Positions() {
		if free.Has(a) {
			continue
		}
		trial := cur.Clone()
		trial.Remove(a)
		if structuralClosure(d.sigma, d.sup, trial).Len() == arity {
			cur = trial
		}
	}
	return cur.Positions()
}
