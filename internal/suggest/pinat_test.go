package suggest_test

import (
	"errors"
	"testing"

	"repro/internal/master"
	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/internal/suggest"
)

// TestDeriverPinAt: a versioned deriver re-pins historical epochs from
// the ring, serves the head through the cached view, and surfaces
// ErrEpochEvicted for evicted epochs; a static deriver only knows its
// own epoch.
func TestDeriverPinAt(t *testing.T) {
	sigma := paperex.Sigma0()
	dm, err := master.NewForRules(paperex.MasterRelation(), sigma)
	if err != nil {
		t.Fatal(err)
	}
	ver := master.NewVersioned(dm)
	d := suggest.NewDeriverVersioned(sigma, ver)

	e0 := ver.Epoch()
	add := relation.StringTuple(
		"Jane", "Doe", "999", "5551234", "070000000",
		"1 Test St", "Tst", "ZZ1 1ZZ", "01/01/70", "F")
	if _, err := ver.Apply([]relation.Tuple{add}, nil); err != nil {
		t.Fatal(err)
	}

	old, err := d.PinAt(e0)
	if err != nil {
		t.Fatalf("PinAt(e0): %v", err)
	}
	if old.Master().Epoch() != e0 || old.Master().Len() != 2 {
		t.Fatalf("PinAt(e0) bound epoch %d |Dm|=%d, want epoch %d |Dm|=2",
			old.Master().Epoch(), old.Master().Len(), e0)
	}
	// Historical views are cached: the engine rebuild happens once per
	// epoch, not once per resume.
	if again, err := d.PinAt(e0); err != nil || again != old {
		t.Fatalf("PinAt(e0) again = %p, %v; want the cached view %p", again, err, old)
	}
	head, err := d.PinAt(ver.Epoch())
	if err != nil {
		t.Fatalf("PinAt(head): %v", err)
	}
	if head.Master() != ver.Current() {
		t.Fatal("PinAt(head) must bind the published head snapshot")
	}
	if again := d.Pin(); again != head {
		t.Fatal("PinAt(head) must populate the cached head view")
	}

	ver.SetHistory(1)
	if _, err := d.PinAt(e0); !errors.Is(err, master.ErrEpochEvicted) {
		t.Fatalf("PinAt(evicted) = %v, want ErrEpochEvicted", err)
	}

	static := suggest.NewDeriver(sigma, dm)
	if got, err := static.PinAt(dm.Epoch()); err != nil || got != static {
		t.Fatalf("static PinAt(own epoch) = %v, %v", got, err)
	}
	if _, err := static.PinAt(dm.Epoch() + 1); !errors.Is(err, master.ErrEpochEvicted) {
		t.Fatalf("static PinAt(other epoch) = %v, want ErrEpochEvicted", err)
	}
}
