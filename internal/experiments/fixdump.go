package experiments

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/relation"
)

// FixedOutputs runs the full monitoring pipeline over a generated
// dataset — every dirty tuple fixed with the simulated user through
// monitor.FixBatch on p.Workers — and returns the repaired relation, in
// input order. Without the BDD cache the pipeline is deterministic: for a
// fixed (Dataset, Seed, MasterSize, Tuples, ...) the output is
// byte-identical regardless of p.Workers and p.Shards. The CI scale
// smoke diffs the CSV of two runs (P=1 vs P=8) at |Dm| = 100k to pin
// exactly that; TestFixOutputShardInvariance pins it at test scale.
//
// With p.UpdateBatches > 0 the master first evolves through that many
// storm batches — durably, through the WAL + checkpoint lineage at
// p.WALDir when set — so the dump also pins that the durability layer
// is invisible to fix semantics.
func FixedOutputs(p Params) (*relation.Relation, error) {
	p = p.WithDefaults()
	ds, err := generate(p)
	if err != nil {
		return nil, err
	}
	dm, err := evolveMaster(ds, p)
	if err != nil {
		return nil, err
	}
	m, err := monitor.New(ds.Sigma, dm, monitor.Config{})
	if err != nil {
		return nil, err
	}
	userFor := func(i int) monitor.User { return monitor.SimulatedUser{Truth: ds.Truths[i]} }
	results, err := m.FixBatch(ds.Inputs, userFor, monitor.BatchOptions{Workers: p.Workers})
	if err != nil {
		return nil, fmt.Errorf("experiments: fix dump: %w", err)
	}
	out := relation.NewRelation(ds.Sigma.Schema())
	for _, res := range results {
		out.MustAppend(res.Tuple)
	}
	return out, nil
}

// evolveMaster applies p.UpdateBatches deterministic storm batches to the
// dataset's master: through the durable lineage at p.WALDir when set
// (log, checkpoint, fsync — the production write path), in memory
// otherwise. The storm is seeded from p.Seed, so the evolved master — and
// every fix against it — is identical either way on a fresh directory.
func evolveMaster(ds *datagen.Dataset, p Params) (*master.Data, error) {
	if p.UpdateBatches <= 0 && p.WALDir == "" {
		return ds.Master, nil
	}
	storm := datagen.UpdateStorm(ds, p.Seed, p.UpdateBatches, 4, 1)
	if p.WALDir == "" {
		dm := ds.Master
		for i, b := range storm {
			next, err := dm.ApplyDelta(b.Adds, b.Deletes)
			if err != nil {
				return nil, fmt.Errorf("experiments: update batch %d: %w", i, err)
			}
			dm = next
		}
		return dm, nil
	}
	dur, err := master.OpenDurable(p.WALDir, func() (*master.Data, error) { return ds.Master, nil },
		ds.Sigma, master.DurableOptions{})
	if err != nil {
		return nil, fmt.Errorf("experiments: open lineage %s: %w", p.WALDir, err)
	}
	for i, b := range storm {
		if _, err := dur.Apply(b.Adds, b.Deletes); err != nil {
			dur.Close()
			return nil, fmt.Errorf("experiments: update batch %d: %w", i, err)
		}
	}
	head := dur.Current()
	if err := dur.Close(); err != nil {
		return nil, fmt.Errorf("experiments: close lineage: %w", err)
	}
	return head, nil
}
