package experiments

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/relation"
)

// FixedOutputs runs the full monitoring pipeline over a generated
// dataset — every dirty tuple fixed with the simulated user through
// monitor.FixBatch on p.Workers — and returns the repaired relation, in
// input order. Without the BDD cache the pipeline is deterministic: for a
// fixed (Dataset, Seed, MasterSize, Tuples, ...) the output is
// byte-identical regardless of p.Workers and p.Shards. The CI scale
// smoke diffs the CSV of two runs (P=1 vs P=8) at |Dm| = 100k to pin
// exactly that; TestFixOutputShardInvariance pins it at test scale.
func FixedOutputs(p Params) (*relation.Relation, error) {
	p = p.WithDefaults()
	ds, err := generate(p)
	if err != nil {
		return nil, err
	}
	m, err := monitor.New(ds.Sigma, ds.Master, monitor.Config{})
	if err != nil {
		return nil, err
	}
	userFor := func(i int) monitor.User { return monitor.SimulatedUser{Truth: ds.Truths[i]} }
	results, err := m.FixBatch(ds.Inputs, userFor, monitor.BatchOptions{Workers: p.Workers})
	if err != nil {
		return nil, fmt.Errorf("experiments: fix dump: %w", err)
	}
	out := relation.NewRelation(ds.Sigma.Schema())
	for _, res := range results {
		out.MustAppend(res.Tuple)
	}
	return out, nil
}
