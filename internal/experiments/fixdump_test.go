package experiments_test

import (
	"bytes"
	"testing"

	"repro/internal/experiments"
)

// TestFixOutputShardInvariance pins the invariant the CI scale smoke
// checks at 100k: the fixed-output CSV is byte-identical across shard
// counts and worker counts (the test-scale version of expdriver
// -experiment fixdump -shards 1 vs -shards 8).
func TestFixOutputShardInvariance(t *testing.T) {
	for _, ds := range []string{"hosp", "dblp"} {
		base := experiments.Params{Dataset: ds, Seed: 7, MasterSize: 400, Tuples: 60, Workers: 1, Shards: 1}
		want, err := experiments.FixedOutputs(base)
		if err != nil {
			t.Fatalf("%s P=1: %v", ds, err)
		}
		var wantCSV bytes.Buffer
		if err := want.WriteCSV(&wantCSV); err != nil {
			t.Fatal(err)
		}
		if want.Len() != 60 {
			t.Fatalf("%s: %d outputs, want 60", ds, want.Len())
		}
		for _, cfg := range []struct{ workers, shards int }{{4, 8}, {2, 3}, {8, 1}} {
			p := base
			p.Workers, p.Shards = cfg.workers, cfg.shards
			got, err := experiments.FixedOutputs(p)
			if err != nil {
				t.Fatalf("%s workers=%d shards=%d: %v", ds, cfg.workers, cfg.shards, err)
			}
			var gotCSV bytes.Buffer
			if err := got.WriteCSV(&gotCSV); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
				t.Fatalf("%s workers=%d shards=%d: fixed output differs from the P=1 sequential run",
					ds, cfg.workers, cfg.shards)
			}
		}
	}
}
