package experiments_test

import (
	"bytes"
	"testing"

	"repro/internal/experiments"
)

// TestFixOutputShardInvariance pins the invariant the CI scale smoke
// checks at 100k: the fixed-output CSV is byte-identical across shard
// counts and worker counts (the test-scale version of expdriver
// -experiment fixdump -shards 1 vs -shards 8).
func TestFixOutputShardInvariance(t *testing.T) {
	for _, ds := range []string{"hosp", "dblp"} {
		base := experiments.Params{Dataset: ds, Seed: 7, MasterSize: 400, Tuples: 60, Workers: 1, Shards: 1}
		want, err := experiments.FixedOutputs(base)
		if err != nil {
			t.Fatalf("%s P=1: %v", ds, err)
		}
		var wantCSV bytes.Buffer
		if err := want.WriteCSV(&wantCSV); err != nil {
			t.Fatal(err)
		}
		if want.Len() != 60 {
			t.Fatalf("%s: %d outputs, want 60", ds, want.Len())
		}
		for _, cfg := range []struct{ workers, shards int }{{4, 8}, {2, 3}, {8, 1}} {
			p := base
			p.Workers, p.Shards = cfg.workers, cfg.shards
			got, err := experiments.FixedOutputs(p)
			if err != nil {
				t.Fatalf("%s workers=%d shards=%d: %v", ds, cfg.workers, cfg.shards, err)
			}
			var gotCSV bytes.Buffer
			if err := got.WriteCSV(&gotCSV); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
				t.Fatalf("%s workers=%d shards=%d: fixed output differs from the P=1 sequential run",
					ds, cfg.workers, cfg.shards)
			}
		}
	}
}

// TestFixOutputWALInvariance pins the durable-lineage counterpart: a
// fixdump over a storm-evolved master is byte-identical whether the
// batches ran in memory or through the WAL + checkpoint lineage (the
// test-scale version of the CI smoke's -wal-dir diff).
func TestFixOutputWALInvariance(t *testing.T) {
	base := experiments.Params{Dataset: "hosp", Seed: 7, MasterSize: 300, Tuples: 40, UpdateBatches: 6}
	want, err := experiments.FixedOutputs(base)
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	if err := want.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	p := base
	p.WALDir = t.TempDir()
	got, err := experiments.FixedOutputs(p)
	if err != nil {
		t.Fatal(err)
	}
	var gotCSV bytes.Buffer
	if err := got.WriteCSV(&gotCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
		t.Fatal("fixed output differs between in-memory and WAL-logged update batches")
	}
	// The lineage the storm left behind is recoverable: reopening the
	// directory alone restores the evolved epoch.
	if _, err := experiments.FixedOutputs(p); err != nil {
		t.Fatalf("second run over the recovered lineage: %v", err)
	}
}
