package experiments

import (
	"fmt"

	"repro/internal/cfd"
	"repro/internal/datagen"
	"repro/internal/increp"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/suggest"
)

// Exp1RegionSizes reproduces the Exp-1(1) table: the number of attributes
// in the certain region found by CompCRegion vs the greedy GRegion
// (paper: hosp 2 vs 4, dblp 5 vs 9).
func Exp1RegionSizes(seed int64, masterSize int) (*Table, error) {
	t := &Table{
		Title:   "Exp-1(1): certain-region size, CompCRegion vs GRegion",
		Columns: []string{"dataset", "CompCRegion", "GRegion"},
	}
	for _, name := range []string{"hosp", "dblp"} {
		ds, err := generate(Params{Dataset: name, Seed: seed, MasterSize: masterSize, Tuples: 1}.WithDefaults())
		if err != nil {
			return nil, err
		}
		d := suggest.NewDeriver(ds.Sigma, ds.Master)
		cands := d.CompCRegions()
		if len(cands) == 0 {
			return nil, fmt.Errorf("experiments: no region for %s", name)
		}
		g := d.GRegion()
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprintf("%d", len(cands[0].Z)),
			fmt.Sprintf("%d", len(g.Z))})
	}
	return t, nil
}

// Exp2InitialSuggestion reproduces the Exp-1(2) table: F-measure when the
// initial suggestion is the highest-quality region (CRHQ) vs the
// median-quality one (CRMQ). Paper: hosp 0.74 vs 0.70, dblp 0.79 vs 0.69.
func Exp2InitialSuggestion(p Params) (*Table, error) {
	p = p.WithDefaults()
	ds, err := generate(p)
	if err != nil {
		return nil, err
	}
	m, err := monitor.New(ds.Sigma, ds.Master, monitor.Config{})
	if err != nil {
		return nil, err
	}
	// The paper picks the median-quality region; our candidate pools are
	// small (a handful of regions vs the paper's larger inventory), so
	// the lowest-ranked candidate plays the below-best role.
	lower := len(m.Regions()) - 1
	hq, err := runMonitor(ds, monitor.Config{InitialRegion: 0}, p.MaxK, p.Workers)
	if err != nil {
		return nil, err
	}
	mq, err := runMonitor(ds, monitor.Config{InitialRegion: lower}, p.MaxK, p.Workers)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Exp-1(2): initial suggestion quality (%s)", p.Dataset),
		Columns: []string{"dataset", "F-measure CRHQ", "F-measure CRMQ"},
		Rows: [][]string{{p.Dataset,
			f2(hq.F1[len(hq.F1)-1]),
			f2(mq.F1[len(mq.F1)-1])}},
	}
	return t, nil
}

// Fig9 reproduces Fig. 9a/9b: tuple-level and attribute-level recall as a
// function of the number of interaction rounds.
func Fig9(p Params) (*Table, error) {
	p = p.WithDefaults()
	ds, err := generate(p)
	if err != nil {
		return nil, err
	}
	stats, err := runMonitor(ds, monitor.Config{}, p.MaxK, p.Workers)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig 9: recall vs #interactions (%s, d%%=%.0f, n%%=%.0f, |Dm|=%d)", p.Dataset, p.DupRate*100, p.NoiseRate*100, p.MasterSize),
		Columns: []string{"k", "recall_t (Fig 9a)", "recall_a (Fig 9b)"},
	}
	for k := 1; k <= p.MaxK; k++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k), f2(stats.TupleRecall[k-1]), f2(stats.AttrRecall[k-1])})
	}
	return t, nil
}

// Fig10Sweep reproduces one panel of Fig. 10: tuple-level recall after
// k = 1..MaxK rounds while one parameter sweeps. which selects the
// swept parameter: "dup" (Fig 10a/d), "master" (10b/e), "noise" (10c/f).
func Fig10Sweep(p Params, which string, values []float64) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{Title: fmt.Sprintf("Fig 10 (%s): recall_t sweeping %s", p.Dataset, which)}
	t.Columns = []string{which}
	for k := 1; k <= p.MaxK; k++ {
		t.Columns = append(t.Columns, fmt.Sprintf("k=%d", k))
	}
	rows, err := parallelMap(len(values), func(i int) ([]string, error) {
		q := applySweep(p, which, values[i])
		ds, err := generate(q)
		if err != nil {
			return nil, err
		}
		stats, err := runMonitor(ds, monitor.Config{}, q.MaxK, q.Workers)
		if err != nil {
			return nil, err
		}
		row := []string{sweepLabel(which, values[i])}
		for k := 1; k <= q.MaxK; k++ {
			row = append(row, f2(stats.TupleRecall[k-1]))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Fig11Sweep reproduces one panel of Fig. 11: attribute-level F-measure
// after k rounds plus the IncRep baseline, while one parameter sweeps.
func Fig11Sweep(p Params, which string, values []float64) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{Title: fmt.Sprintf("Fig 11 (%s): F-measure sweeping %s (IncRep baseline)", p.Dataset, which)}
	t.Columns = []string{which}
	for k := 1; k <= p.MaxK; k++ {
		t.Columns = append(t.Columns, fmt.Sprintf("k=%d", k))
	}
	t.Columns = append(t.Columns, "IncRep")
	rows, err := parallelMap(len(values), func(i int) ([]string, error) {
		q := applySweep(p, which, values[i])
		ds, err := generate(q)
		if err != nil {
			return nil, err
		}
		stats, err := runMonitor(ds, monitor.Config{}, q.MaxK, q.Workers)
		if err != nil {
			return nil, err
		}
		incF1, err := runIncRep(ds)
		if err != nil {
			return nil, err
		}
		row := []string{sweepLabel(which, values[i])}
		for k := 1; k <= q.MaxK; k++ {
			row = append(row, f2(stats.F1[k-1]))
		}
		return append(row, f2(incF1)), nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// runIncRep repairs the dirty inputs with the CFD-based baseline and
// returns its attribute-level F-measure (its precision is not 1: it may
// change correct cells). Attribute weights follow [14]'s confidence
// model: identifier-like attributes (those read by rules — lhs and
// pattern attributes) weigh double, so the repairer prefers overwriting
// derived attributes to perturbing keys.
func runIncRep(ds *datagen.Dataset) (float64, error) {
	cfds, err := cfd.FromRules(ds.Sigma, ds.Master)
	if err != nil {
		return 0, err
	}
	weights := make([]float64, ds.Sigma.Schema().Arity())
	keyAttrs := ds.Sigma.LHS().Union(ds.Sigma.PatternAttrs())
	for i := range weights {
		if keyAttrs.Has(i) {
			weights[i] = 2
		} else {
			weights[i] = 1
		}
	}
	rep := increp.New(cfds, increp.Options{Weights: weights})
	var agg metrics.CellOutcome
	for i := range ds.Inputs {
		repaired := ds.Inputs[i].Clone()
		rep.RepairTuple(repaired)
		agg.Add(metrics.CompareCells(ds.Inputs[i], ds.Truths[i], repaired, nil))
	}
	return agg.F1(), nil
}

// Fig12Master reproduces Fig. 12a/b: average per-round latency varying
// |Dm|, CertainFix vs CertainFix+ (the BDD cache).
func Fig12Master(p Params, masterSizes []int) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title:   fmt.Sprintf("Fig 12a/b (%s): per-round latency vs |Dm|", p.Dataset),
		Columns: []string{"|Dm|", "CertainFix", "CertainFix+", "cache hit rate"},
	}
	for _, sz := range masterSizes {
		q := p
		q.MasterSize = sz
		ds, err := generate(q)
		if err != nil {
			return nil, err
		}
		plain, err := runMonitor(ds, monitor.Config{}, q.MaxK, 1)
		if err != nil {
			return nil, err
		}
		plus, err := runMonitor(ds, monitor.Config{UseBDD: true}, q.MaxK, 1)
		if err != nil {
			return nil, err
		}
		hitRate := 0.0
		if h, ms := plus.CacheHits, plus.CacheMisses; h+ms > 0 {
			hitRate = float64(h) / float64(h+ms)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", sz),
			plain.AvgLatency.String(),
			plus.AvgLatency.String(),
			f2(hitRate),
		})
	}
	return t, nil
}

// Fig12Stream reproduces Fig. 12c/d: average per-round latency varying
// the number of input tuples |D| — CertainFix is flat (tuples are
// independent) while CertainFix+ amortizes suggestions across the stream.
func Fig12Stream(p Params, tupleCounts []int) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title:   fmt.Sprintf("Fig 12c/d (%s): per-round latency vs |D|", p.Dataset),
		Columns: []string{"|D|", "CertainFix", "CertainFix+", "cache hit rate"},
	}
	for _, n := range tupleCounts {
		q := p
		q.Tuples = n
		ds, err := generate(q)
		if err != nil {
			return nil, err
		}
		plain, err := runMonitor(ds, monitor.Config{}, q.MaxK, 1)
		if err != nil {
			return nil, err
		}
		plus, err := runMonitor(ds, monitor.Config{UseBDD: true}, q.MaxK, 1)
		if err != nil {
			return nil, err
		}
		hitRate := 0.0
		if h, ms := plus.CacheHits, plus.CacheMisses; h+ms > 0 {
			hitRate = float64(h) / float64(h+ms)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			plain.AvgLatency.String(),
			plus.AvgLatency.String(),
			f2(hitRate),
		})
	}
	return t, nil
}

func applySweep(p Params, which string, v float64) Params {
	switch which {
	case "dup":
		p.DupRate = v
	case "noise":
		p.NoiseRate = v
	case "master":
		p.MasterSize = int(v)
	}
	return p
}

func sweepLabel(which string, v float64) string {
	if which == "master" {
		return fmt.Sprintf("%d", int(v))
	}
	return fmt.Sprintf("%.0f%%", v*100)
}
