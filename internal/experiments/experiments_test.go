package experiments_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// Small, deterministic parameter sets: the tests assert the qualitative
// shapes the paper reports, which the bench harness then reproduces at
// larger scale.
func tinyParams(dataset string) experiments.Params {
	return experiments.Params{Dataset: dataset, Seed: 1, MasterSize: 400, Tuples: 120}
}

func cell(t *testing.T, tab *experiments.Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tab.Rows[row][col], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestExp1Shapes(t *testing.T) {
	tab, err := experiments.Exp1RegionSizes(1, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// hosp: 2 vs 4 (the paper's exact numbers); dblp: 5 vs larger.
	if tab.Rows[0][1] != "2" || tab.Rows[0][2] != "4" {
		t.Errorf("hosp row = %v, want CompCRegion 2, GRegion 4", tab.Rows[0])
	}
	if tab.Rows[1][1] != "5" {
		t.Errorf("dblp CompCRegion = %v, want 5", tab.Rows[1])
	}
	if cell(t, tab, 1, 2) <= cell(t, tab, 1, 1) {
		t.Errorf("dblp GRegion must exceed CompCRegion: %v", tab.Rows[1])
	}
}

func TestExp2CRHQBeatsCRMQ(t *testing.T) {
	for _, ds := range []string{"hosp", "dblp"} {
		tab, err := experiments.Exp2InitialSuggestion(tinyParams(ds))
		if err != nil {
			t.Fatal(err)
		}
		if hq, mq := cell(t, tab, 0, 1), cell(t, tab, 0, 2); hq < mq {
			t.Errorf("%s: CRHQ F-measure %.2f < CRMQ %.2f", ds, hq, mq)
		}
	}
}

func TestFig9RecallMonotone(t *testing.T) {
	for _, ds := range []string{"hosp", "dblp"} {
		tab, err := experiments.Fig9(tinyParams(ds))
		if err != nil {
			t.Fatal(err)
		}
		var prevT, prevA float64
		for r := range tab.Rows {
			rt, ra := cell(t, tab, r, 1), cell(t, tab, r, 2)
			if rt < prevT || ra < prevA {
				t.Fatalf("%s: recall not monotone at k=%d: %v", ds, r+1, tab.Rows)
			}
			prevT, prevA = rt, ra
		}
		// All tuples fixed by the last round (the simulated user answers
		// every suggestion).
		if last := cell(t, tab, len(tab.Rows)-1, 1); last < 0.95 {
			t.Errorf("%s: final recall_t = %.2f, want ≈ 1", ds, last)
		}
	}
}

func TestFig10DupRateMonotone(t *testing.T) {
	tab, err := experiments.Fig10Sweep(tinyParams("hosp"), "dup", []float64{0.1, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// recall_t at k=1 grows with d% (Fig 10a: "the recall_t is 0.3 when
	// k=1, exactly the same as d%").
	if !(cell(t, tab, 0, 1) < cell(t, tab, 2, 1)) {
		t.Errorf("k=1 recall must grow with d%%: %v", tab.Rows)
	}
	for r := range tab.Rows {
		if k1 := cell(t, tab, r, 1); k1 > cell(t, tab, r, 0)/100+0.25 {
			t.Errorf("k=1 recall %.2f should track d%% %v", k1, tab.Rows[r][0])
		}
	}
}

func TestFig10MasterSweepRuns(t *testing.T) {
	tab, err := experiments.Fig10Sweep(tinyParams("dblp"), "master", []float64{200, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || tab.Rows[0][0] != "200" {
		t.Fatalf("rows = %v", tab.Rows)
	}
}

func TestFig11NoiseCollapseForIncRep(t *testing.T) {
	tab, err := experiments.Fig11Sweep(tinyParams("hosp"), "noise", []float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	incCol := len(tab.Columns) - 1
	lowNoise, highNoise := cell(t, tab, 0, incCol), cell(t, tab, 1, incCol)
	if highNoise >= lowNoise {
		t.Errorf("IncRep F must degrade with noise: %.2f -> %.2f", lowNoise, highNoise)
	}
	// Our method beats IncRep at high noise (the paper's headline claim).
	oursHigh := cell(t, tab, 1, incCol-1)
	if oursHigh <= highNoise {
		t.Errorf("CertainFix (%.2f) must beat IncRep (%.2f) at high noise", oursHigh, highNoise)
	}
	// And our F is noise-insensitive: within a modest band across rows.
	oursLow := cell(t, tab, 0, incCol-1)
	if diff := oursLow - oursHigh; diff > 0.15 || diff < -0.15 {
		t.Errorf("CertainFix F should be noise-insensitive: %.2f vs %.2f", oursLow, oursHigh)
	}
}

func TestFig12CacheEffective(t *testing.T) {
	p := tinyParams("hosp")
	tab, err := experiments.Fig12Stream(p, []int{50, 150})
	if err != nil {
		t.Fatal(err)
	}
	// The hit-rate column grows with the stream and is positive.
	hitCol := len(tab.Columns) - 1
	if cell(t, tab, 1, hitCol) <= 0 {
		t.Errorf("cache hit rate must be positive on a stream: %v", tab.Rows)
	}
	tab, err = experiments.Fig12Master(p, []int{200, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %v", tab.Rows)
	}
}

func TestTableFprint(t *testing.T) {
	tab := &experiments.Table{
		Title:   "demo",
		Columns: []string{"a", "long-header"},
		Rows:    [][]string{{"x", "1"}, {"longer-cell", "2"}},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "longer-cell") {
		t.Fatalf("Fprint output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want title + header + 2 rows, got %d lines", len(lines))
	}
}

func TestUnknownDataset(t *testing.T) {
	_, err := experiments.Fig9(experiments.Params{Dataset: "nope", Seed: 1, MasterSize: 10, Tuples: 1})
	if err == nil {
		t.Fatal("unknown dataset must error")
	}
}
