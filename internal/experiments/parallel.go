package experiments

import (
	"runtime"
	"sync"
)

// parallelMap computes fn over the indexes [0, n) on a bounded worker
// pool, preserving result order. The first error wins and is returned
// after all workers drain. Latency-measuring experiments (Fig 12) must
// NOT use this — concurrent runs would contaminate each other's timings —
// but the accuracy sweeps of Figs 10/11 are embarrassingly parallel.
func parallelMap[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
