package experiments

import "repro/internal/parallel"

// parallelMap computes fn over the indexes [0, n) on a bounded worker
// pool, preserving result order; it delegates to the shared
// internal/parallel helper. Latency-measuring experiments (Fig 12) must
// NOT use this — concurrent runs would contaminate each other's timings —
// but the accuracy sweeps of Figs 10/11 are embarrassingly parallel.
func parallelMap[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return parallel.Map(n, 0, fn)
}
