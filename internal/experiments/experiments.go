// Package experiments drives the evaluation of §6: one function per table
// and figure of the paper, each regenerating the corresponding rows or
// series on the synthetic HOSP/DBLP substrate (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for measured-vs-paper results).
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/monitor"
)

// Params selects a dataset configuration. Zero fields take defaults that
// mirror the paper's defaults scaled to a quick run: d% = 30, n% = 20,
// |Dm| = 10K tuples in the paper, scaled by Scale here.
type Params struct {
	Dataset    string // "hosp" or "dblp"
	Seed       int64
	MasterSize int
	Tuples     int
	DupRate    float64
	NoiseRate  float64
	MaxK       int // interaction rounds to report (hosp: 4, dblp: 3)
	// Workers > 1 fixes tuples through monitor.FixBatch on that many
	// workers. Accuracy sweeps are embarrassingly parallel; the Fig-12
	// latency experiments ignore this and always run sequentially so that
	// concurrent runs cannot contaminate each other's timings.
	Workers int
	// Shards partitions the master indexes into hash shards built in
	// parallel (0 = one per CPU; see master.WithShards). Results are
	// byte-identical for every shard count — TestFixOutputShardInvariance
	// and the CI scale smoke pin this.
	Shards int
	// MasterSnapshot, when non-empty, names a columnar master arena image
	// (datagen.Config.MasterArena): an existing image replaces the master
	// index build, a missing one is saved after building, so repeated runs
	// over the same generated master cold-start by page-in. Fix results
	// are byte-identical either way — the CI scale smoke diffs a rebuilt
	// run against an arena-loaded one to pin exactly that.
	MasterSnapshot string
	// UpdateBatches evolves the generated master through that many
	// deterministic delta batches (datagen.UpdateStorm, seeded from Seed)
	// before fixing — the "master data changes under the monitor"
	// workload. Only FixedOutputs honors it.
	UpdateBatches int
	// WALDir, when non-empty, routes the update batches through the
	// durable master lineage rooted there (master.DurableVersioned):
	// every batch is logged and checkpointed exactly as in production.
	// Fix outputs are byte-identical with or without it for a fresh
	// directory — the CI scale smoke diffs exactly that — since the WAL
	// only adds durability, never changes delta semantics. A directory
	// holding an earlier lineage is recovered first, so the storm then
	// extends that lineage instead of the freshly generated master.
	WALDir string
}

// WithDefaults fills unset fields with the §6 defaults.
func (p Params) WithDefaults() Params {
	if p.Dataset == "" {
		p.Dataset = "hosp"
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.MasterSize == 0 {
		p.MasterSize = 2000
	}
	if p.Tuples == 0 {
		p.Tuples = 500
	}
	if p.DupRate == 0 {
		p.DupRate = 0.30
	}
	if p.NoiseRate == 0 {
		p.NoiseRate = 0.20
	}
	if p.MaxK == 0 {
		if p.Dataset == "dblp" {
			p.MaxK = 3
		} else {
			p.MaxK = 4
		}
	}
	return p
}

// generate builds the dataset for the parameters.
func generate(p Params) (*datagen.Dataset, error) {
	cfg := datagen.Config{
		Seed:        p.Seed,
		MasterSize:  p.MasterSize,
		Tuples:      p.Tuples,
		DupRate:     p.DupRate,
		NoiseRate:   p.NoiseRate,
		Shards:      p.Shards,
		MasterArena: p.MasterSnapshot,
	}
	switch p.Dataset {
	case "hosp":
		return datagen.Hosp(cfg)
	case "dblp":
		return datagen.Dblp(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", p.Dataset)
	}
}

// RunStats aggregates a full monitoring run over a dataset.
type RunStats struct {
	TupleRecall []float64 // recall_t after k = 1..MaxK rounds
	AttrRecall  []float64 // recall_a after k rounds (rule fixes only)
	F1          []float64 // F-measure after k rounds
	AvgLatency  time.Duration
	TotalRounds int
	CacheHits   int
	CacheMisses int
}

// runMonitor fixes every input tuple with the simulated user and scores
// the per-round metrics of §6. workers > 1 routes the run through the
// concurrent batch pipeline; accuracy metrics are unaffected (FixBatch is
// deterministic without the BDD cache), but AvgLatency then reflects
// wall-clock over all workers, so latency experiments must pass 1.
func runMonitor(ds *datagen.Dataset, mcfg monitor.Config, maxK, workers int) (RunStats, error) {
	m, err := monitor.New(ds.Sigma, ds.Master, mcfg)
	if err != nil {
		return RunStats{}, err
	}
	return runWith(m, ds, maxK, workers)
}

func runWith(m *monitor.Monitor, ds *datagen.Dataset, maxK, workers int) (RunStats, error) {
	tuple := make([]metrics.TupleOutcome, maxK)
	cell := make([]metrics.CellOutcome, maxK)
	totalRounds := 0
	score := func(i int, res monitor.Result) {
		totalRounds += res.Rounds
		for k := 1; k <= maxK; k++ {
			state := stateAtRound(res, k)
			tuple[k-1].Add(metrics.CompareTuple(ds.Inputs[i], ds.Truths[i], state.Tuple))
			credited := state.AutoFixed
			cell[k-1].Add(metrics.CompareCells(ds.Inputs[i], ds.Truths[i], state.Tuple, &credited))
		}
	}
	start := time.Now()
	if workers > 1 {
		// Stream-score on completion: the metric accumulators are integer
		// counters, so completion order cannot change the results, and
		// peak memory stays O(workers) instead of O(tuples) snapshots.
		in := make(chan monitor.StreamRequest)
		out := m.FixStream(in, monitor.BatchOptions{Workers: workers})
		go func() {
			for i := range ds.Inputs {
				in <- monitor.StreamRequest{
					ID:    i,
					Tuple: ds.Inputs[i],
					User:  monitor.SimulatedUser{Truth: ds.Truths[i]},
				}
			}
			close(in)
		}()
		// Report the lowest-index failure so error output is reproducible
		// regardless of completion order (matching the sequential branch).
		errID := -1
		var batchErr error
		for res := range out {
			if res.Err != nil {
				if errID < 0 || res.ID < errID {
					errID, batchErr = res.ID, res.Err
				}
				continue
			}
			score(res.ID, res.Result)
		}
		if batchErr != nil {
			return RunStats{}, fmt.Errorf("experiments: fixing tuple %d: %w", errID, batchErr)
		}
	} else {
		// Score-and-discard per tuple: large sweeps must not retain every
		// per-round snapshot simultaneously.
		for i := range ds.Inputs {
			res, err := m.Fix(ds.Inputs[i], monitor.SimulatedUser{Truth: ds.Truths[i]})
			if err != nil {
				return RunStats{}, fmt.Errorf("experiments: fixing tuple %d: %w", i, err)
			}
			score(i, res)
		}
	}
	elapsed := time.Since(start)

	stats := RunStats{TotalRounds: totalRounds}
	if totalRounds > 0 {
		stats.AvgLatency = elapsed / time.Duration(totalRounds)
	}
	for k := 0; k < maxK; k++ {
		stats.TupleRecall = append(stats.TupleRecall, tuple[k].Recall())
		stats.AttrRecall = append(stats.AttrRecall, cell[k].Recall())
		stats.F1 = append(stats.F1, cell[k].F1())
	}
	stats.CacheHits, stats.CacheMisses = m.CacheStats()
	return stats, nil
}

// stateAtRound returns the snapshot after min(k, rounds) rounds.
func stateAtRound(res monitor.Result, k int) monitor.RoundStat {
	if len(res.PerRound) == 0 {
		return monitor.RoundStat{
			Tuple:     res.Tuple,
			AutoFixed: res.AutoFixed,
		}
	}
	if k > len(res.PerRound) {
		k = len(res.PerRound)
	}
	return res.PerRound[k-1]
}

// Table is a printable experiment artifact.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
