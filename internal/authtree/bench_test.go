package authtree

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// benchTree builds an n-tuple tree once per benchmark; proofs are
// generated and verified against tuples spread across it.
func benchTree(b *testing.B, n int) (*Tree, []relation.Tuple) {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	tuples := make([]relation.Tuple, n)
	tr := New()
	for i := range tuples {
		tuples[i] = relation.Tuple{
			relation.String(randWord(rng)),
			relation.Int(int64(i)),
			relation.String(randWord(rng)),
		}
		tr = tr.Insert(tuples[i])
	}
	return tr, tuples
}

func randWord(rng *rand.Rand) string {
	const letters = "abcdefghijklmnop"
	w := make([]byte, 4+rng.Intn(8))
	for i := range w {
		w[i] = letters[rng.Intn(len(letters))]
	}
	return string(w)
}

// BenchmarkProofGen measures Prove on a 10k-tuple tree — the per-witness
// cost a fix response pays when the master is authenticated.
func BenchmarkProofGen(b *testing.B) {
	tr, tuples := benchTree(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.Prove(tuples[i%len(tuples)]); !ok {
			b.Fatal("Prove failed")
		}
	}
}

// BenchmarkProofVerify measures the client side: VerifyInclusion with no
// tree in hand, the cost an untrusting verifier pays per witness.
func BenchmarkProofVerify(b *testing.B) {
	tr, tuples := benchTree(b, 10_000)
	root := tr.Root()
	proofs := make([]*Proof, len(tuples))
	for i, tu := range tuples {
		p, ok := tr.Prove(tu)
		if !ok {
			b.Fatal("Prove failed")
		}
		proofs[i] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(tuples)
		if err := VerifyInclusion(root, tuples[j], proofs[j]); err != nil {
			b.Fatal(err)
		}
	}
}
