package authtree

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/relation"
)

// fuzzFixture is the known-good world every fuzz input attacks: a small
// tree, one committed tuple, its genuine proof and the genuine root.
func fuzzFixture() (Hash, relation.Tuple, *Proof, []byte) {
	tuples := []relation.Tuple{
		{relation.String("x"), relation.Int(1), relation.String("y")},
		{relation.String("y"), relation.Int(2), relation.String("")},
		{relation.Null, relation.Int(3), relation.String("z")},
		{relation.String("x"), relation.Int(1), relation.String("y")}, // duplicate
		{relation.String("w"), relation.Int(7), relation.String("q")},
	}
	tr := New()
	for _, tu := range tuples {
		tr = tr.Insert(tu)
	}
	target := tuples[0]
	p, ok := tr.Prove(target)
	if !ok {
		panic("fuzz fixture: Prove failed")
	}
	raw, err := json.Marshal(p)
	if err != nil {
		panic(err)
	}
	return tr.Root(), target, p, raw
}

// FuzzProofVerify feeds hostile proof bytes and mutated roots to
// VerifyInclusion: it must never panic, and it may only accept when the
// decoded proof is semantically the genuine one under the genuine root —
// anything else accepted would be a forged inclusion.
func FuzzProofVerify(f *testing.F) {
	root, target, genuine, raw := fuzzFixture()
	f.Add(raw, []byte{0})
	f.Add(raw, root[:])
	f.Add([]byte(`{"key":"0","entries":[],"siblings":[]}`), []byte{1, 2, 3})
	f.Add([]byte(`{}`), []byte{})
	f.Add([]byte(`{"key":"18446744073709551615","entries":[{"h":"`+
		(Hash{}).String()+`","n":1}],"siblings":["`+(Hash{}).String()+`"]}`), root[:8])

	f.Fuzz(func(t *testing.T, proofJSON, rootSeed []byte) {
		var p Proof
		if err := json.Unmarshal(proofJSON, &p); err != nil {
			return
		}
		fuzzedRoot := root
		for i, b := range rootSeed {
			if i >= len(fuzzedRoot) {
				break
			}
			fuzzedRoot[i] ^= b
		}
		err := VerifyInclusion(fuzzedRoot, target, &p)
		if err != nil {
			return
		}
		// Accepted: this must be the genuine (root, proof) pair. Any other
		// accepted combination is a break of the commitment.
		if fuzzedRoot != root {
			t.Fatalf("forged root accepted: %v", fuzzedRoot)
		}
		if p.Key != genuine.Key ||
			len(p.Entries) != len(genuine.Entries) ||
			len(p.Siblings) != len(genuine.Siblings) {
			t.Fatalf("forged proof shape accepted: %+v", p)
		}
		for i := range p.Entries {
			if p.Entries[i] != genuine.Entries[i] {
				t.Fatalf("forged entry accepted: %+v", p.Entries[i])
			}
		}
		for i := range p.Siblings {
			if !bytes.Equal(p.Siblings[i][:], genuine.Siblings[i][:]) {
				t.Fatalf("forged sibling accepted: %v", p.Siblings[i])
			}
		}
	})
}
