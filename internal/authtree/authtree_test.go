package authtree

import (
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

var testSchema = relation.MustSchema("Rm",
	relation.Attribute{Name: "a", Type: relation.TypeString},
	relation.Attribute{Name: "b", Type: relation.TypeInt},
	relation.Attribute{Name: "c", Type: relation.TypeString},
)

// randTuple draws from a small domain so duplicate tuples (multiset
// counts > 1) occur naturally.
func randTuple(rng *rand.Rand) relation.Tuple {
	strs := []string{"x", "y", "z", "", "long-ish value"}
	t := relation.Tuple{
		relation.String(strs[rng.Intn(len(strs))]),
		relation.Int(int64(rng.Intn(4))),
		relation.String(strs[rng.Intn(len(strs))]),
	}
	if rng.Intn(8) == 0 {
		t[0] = relation.Null
	}
	return t
}

func mustRel(t *testing.T, tuples []relation.Tuple) *relation.Relation {
	t.Helper()
	rel, err := relation.FromTuples(testSchema, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Root() != (Hash{}) {
		t.Fatalf("empty root = %v, want zero", tr.Root())
	}
	if tr.Len() != 0 {
		t.Fatalf("empty len = %d", tr.Len())
	}
	if _, ok := tr.Prove(randTuple(rand.New(rand.NewSource(1)))); ok {
		t.Fatal("Prove on empty tree succeeded")
	}
	if _, ok := tr.Remove(randTuple(rand.New(rand.NewSource(1)))); ok {
		t.Fatal("Remove on empty tree succeeded")
	}
}

// TestIncrementalVsRebuild is the oracle property: a tree maintained by
// random interleaved Insert/Remove equals a from-scratch Build over the
// surviving multiset after every single operation.
func TestIncrementalVsRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New()
	var live []relation.Tuple
	for step := 0; step < 400; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			var ok bool
			tr, ok = tr.Remove(live[i])
			if !ok {
				t.Fatalf("step %d: Remove of live tuple failed", step)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			tu := randTuple(rng)
			tr = tr.Insert(tu)
			live = append(live, tu)
		}
		if tr.Len() != len(live) {
			t.Fatalf("step %d: Len = %d, want %d", step, tr.Len(), len(live))
		}
		oracle := Build(mustRel(t, append([]relation.Tuple(nil), live...)))
		if tr.Root() != oracle.Root() {
			t.Fatalf("step %d: incremental root %v != rebuild root %v", step, tr.Root(), oracle.Root())
		}
	}
}

func TestInsertionOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tuples := make([]relation.Tuple, 100)
	for i := range tuples {
		tuples[i] = randTuple(rng)
	}
	want := Build(mustRel(t, tuples)).Root()
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]relation.Tuple(nil), tuples...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := Build(mustRel(t, shuffled)).Root(); got != want {
			t.Fatalf("trial %d: shuffled root %v != %v", trial, got, want)
		}
	}
}

func TestRemoveAbsent(t *testing.T) {
	tr := New().Insert(relation.Tuple{relation.String("x"), relation.Int(1), relation.String("y")})
	before := tr.Root()
	absent := relation.Tuple{relation.String("x"), relation.Int(2), relation.String("y")}
	if _, ok := tr.Remove(absent); ok {
		t.Fatal("Remove of absent tuple succeeded")
	}
	if tr.Root() != before {
		t.Fatal("failed Remove mutated the tree")
	}
}

// TestKeyCollision forces two distinct contents onto one trie key (the
// case a real 64-bit FNV collision would produce) and checks the leaf's
// multiset commitment keeps them apart.
func TestKeyCollision(t *testing.T) {
	const key = uint64(0xdeadbeefcafef00d)
	va, vb := Hash{1}, Hash{2}
	tr := New().insertHashed(key, va).insertHashed(key, vb).insertHashed(key, va)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	leaf := tr.root
	if leaf.entries == nil {
		t.Fatal("collided keys did not share a leaf")
	}
	if len(leaf.entries) != 2 || leaf.entries[0].Count != 2 || leaf.entries[1].Count != 1 {
		t.Fatalf("leaf entries = %+v, want counts 2,1 sorted by vhash", leaf.entries)
	}
	// Removing one copy must leave the other provable under the new root.
	root, ok := remove(tr.root, key, va, 0)
	if !ok {
		t.Fatal("remove of committed vhash failed")
	}
	if len(root.entries) != 2 || root.entries[0].Count != 1 {
		t.Fatalf("after remove: entries = %+v", root.entries)
	}
}

// TestDeepSpine drives two keys that differ only in their lowest bit down
// the full 64-level spine, then checks removal collapses it back.
func TestDeepSpine(t *testing.T) {
	ka, kb := uint64(0), uint64(1)
	tr := New().insertHashed(ka, Hash{1}).insertHashed(kb, Hash{2})
	depth := 0
	for n := tr.root; n.entries == nil; n = n.left {
		if bit(ka, depth) == 1 {
			t.Fatalf("test key routes right at depth %d", depth)
		}
		depth++
		if depth > Depth {
			t.Fatal("spine exceeds key width")
		}
	}
	if depth != Depth {
		t.Fatalf("leaf depth = %d, want %d", depth, Depth)
	}
	root, ok := remove(tr.root, kb, Hash{2}, 0)
	if !ok {
		t.Fatal("remove failed")
	}
	if root.entries == nil || root.key != ka {
		t.Fatal("spine did not collapse to the surviving leaf")
	}
	if root.hash != newLeaf(ka, []Entry{{VHash: Hash{1}, Count: 1}}).hash {
		t.Fatal("collapsed leaf hash differs from a fresh leaf")
	}
}

func TestProofRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tuples := make([]relation.Tuple, 200)
	for i := range tuples {
		tuples[i] = randTuple(rng)
	}
	tr := Build(mustRel(t, tuples))
	root := tr.Root()
	for i, tu := range tuples {
		p, ok := tr.Prove(tu)
		if !ok {
			t.Fatalf("tuple %d: Prove failed", i)
		}
		if err := VerifyInclusion(root, tu, p); err != nil {
			t.Fatalf("tuple %d: genuine proof rejected: %v", i, err)
		}
		// The JSON wire form must survive a round trip and still verify.
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var q Proof
		if err := json.Unmarshal(b, &q); err != nil {
			t.Fatal(err)
		}
		if err := VerifyInclusion(root, tu, &q); err != nil {
			t.Fatalf("tuple %d: decoded proof rejected: %v", i, err)
		}
	}
}

func TestProofTamperRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tuples := make([]relation.Tuple, 64)
	for i := range tuples {
		tuples[i] = randTuple(rng)
	}
	tr := Build(mustRel(t, tuples))
	root := tr.Root()
	tu := tuples[17]
	p, ok := tr.Prove(tu)
	if !ok {
		t.Fatal("Prove failed")
	}

	check := func(name string, root Hash, tu relation.Tuple, p *Proof) {
		t.Helper()
		if err := VerifyInclusion(root, tu, p); !errors.Is(err, ErrBadProof) {
			t.Fatalf("%s: err = %v, want ErrBadProof", name, err)
		}
	}

	// Each single mutation of tuple, proof or root must reject.
	tampered := tu.Clone()
	tampered[1] = relation.Int(tu[1].Int64() + 1)
	check("tuple cell", root, tampered, p)

	badRoot := root
	badRoot[0] ^= 1
	check("root bit", badRoot, tu, p)

	if len(p.Siblings) > 0 {
		q := *p
		q.Siblings = append([]Hash(nil), p.Siblings...)
		q.Siblings[0][3] ^= 0x40
		check("sibling hash", root, tu, &q)

		q = *p
		q.Siblings = p.Siblings[:len(p.Siblings)-1]
		check("truncated spine", root, tu, &q)
	}

	q := *p
	q.Key ^= 1
	check("proof key", root, tu, &q)

	q = *p
	q.Entries = append([]Entry(nil), p.Entries...)
	q.Entries[0].Count++
	check("entry count", root, tu, &q)

	q = *p
	q.Entries = nil
	check("no entries", root, tu, &q)

	check("nil proof", root, tu, nil)

	q = *p
	q.Siblings = make([]Hash, Depth+1)
	check("overlong spine", root, tu, &q)
}

func TestHashHexRoundTrip(t *testing.T) {
	h := Hash{0xde, 0xad, 0xbe, 0xef}
	parsed, err := ParseHash(h.String())
	if err != nil || parsed != h {
		t.Fatalf("round trip: %v %v", parsed, err)
	}
	if _, err := ParseHash("zz"); err == nil {
		t.Fatal("ParseHash accepted non-hex")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Fatal("ParseHash accepted short input")
	}
}

// TestCOWSharing: updating a tree must not disturb previously captured
// epochs — the property the snapshot ring depends on.
func TestCOWSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New()
	var roots []Hash
	var trees []*Tree
	var live [][]relation.Tuple
	var cur []relation.Tuple
	for e := 0; e < 20; e++ {
		tu := randTuple(rng)
		tr = tr.Insert(tu)
		cur = append(cur, tu)
		trees = append(trees, tr)
		roots = append(roots, tr.Root())
		live = append(live, append([]relation.Tuple(nil), cur...))
	}
	for e := range trees {
		if trees[e].Root() != roots[e] {
			t.Fatalf("epoch %d root changed after later inserts", e)
		}
		for _, tu := range live[e] {
			p, ok := trees[e].Prove(tu)
			if !ok || VerifyInclusion(roots[e], tu, p) != nil {
				t.Fatalf("epoch %d: retained tree lost a tuple", e)
			}
		}
	}
}
