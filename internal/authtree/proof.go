package authtree

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/relation"
)

// ErrBadProof is the sentinel every proof rejection matches via
// errors.Is: malformed structure, a tuple the proof does not commit, or a
// spine that folds to a different root. Verifiers must treat all three
// identically — a proof either authenticates the tuple under the root or
// it proves nothing.
var ErrBadProof = errors.New("authtree: proof verification failed")

// Proof is an inclusion proof for one tuple: the committed leaf (key plus
// its full entry multiset) and the sibling hashes along the spine from
// the leaf back to the root, root-first — Siblings[d] is the hash of the
// subtree branching off at depth d, so the leaf sits at depth
// len(Siblings). The JSON form (hex hashes, decimal counts) is what fix
// responses and session tokens carry.
type Proof struct {
	Key      uint64  `json:"key,string"`
	Entries  []Entry `json:"entries"`
	Siblings []Hash  `json:"siblings"`
}

// MarshalJSON renders a hash as a 64-char hex string.
func (h Hash) MarshalJSON() ([]byte, error) {
	return json.Marshal(hex.EncodeToString(h[:]))
}

// UnmarshalJSON parses the hex form; anything but exactly 32 bytes fails.
func (h *Hash) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	return h.parse(s)
}

// String renders the hash in hex — the wire form of roots in /v1/root,
// /healthz and fix results.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// ParseHash parses the hex form produced by String.
func ParseHash(s string) (Hash, error) {
	var h Hash
	if err := h.parse(s); err != nil {
		return Hash{}, err
	}
	return h, nil
}

func (h *Hash) parse(s string) error {
	b, err := hex.DecodeString(s)
	if err != nil {
		return fmt.Errorf("authtree: parse hash: %w", err)
	}
	if len(b) != len(h) {
		return fmt.Errorf("authtree: parse hash: got %d bytes, want %d", len(b), len(h))
	}
	copy(h[:], b)
	return nil
}

// MarshalJSON keeps entry counts compact: {"h": hex, "n": count}.
func (e Entry) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		H Hash   `json:"h"`
		N uint64 `json:"n"`
	}{e.VHash, e.Count})
}

// UnmarshalJSON parses the compact entry form.
func (e *Entry) UnmarshalJSON(b []byte) error {
	var w struct {
		H Hash   `json:"h"`
		N uint64 `json:"n"`
	}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	e.VHash, e.Count = w.H, w.N
	return nil
}

// Prove emits an inclusion proof for the tuple, or false when the tree
// does not commit it (wrong content or never inserted).
func (tr *Tree) Prove(t relation.Tuple) (*Proof, bool) {
	if tr == nil || tr.root == nil {
		return nil, false
	}
	key, vh := Key(t), Sum(t)
	var siblings []Hash
	n := tr.root
	for depth := 0; n != nil && n.entries == nil; depth++ {
		if bit(key, depth) == 0 {
			siblings = append(siblings, hashOf(n.right))
			n = n.left
		} else {
			siblings = append(siblings, hashOf(n.left))
			n = n.right
		}
	}
	if n == nil || n.key != key {
		return nil, false
	}
	found := false
	for _, e := range n.entries {
		if e.VHash == vh {
			found = true
			break
		}
	}
	if !found {
		return nil, false
	}
	return &Proof{
		Key:      key,
		Entries:  append([]Entry(nil), n.entries...),
		Siblings: siblings,
	}, true
}

// VerifyInclusion checks that root commits the tuple, given only the
// proof — no tree, no master data, no trust in whoever produced either.
// It recomputes the tuple's key and content hash itself, so a proof can
// never vouch for a tuple other than the one presented; every failure
// matches ErrBadProof.
func VerifyInclusion(root Hash, t relation.Tuple, p *Proof) error {
	if p == nil {
		return fmt.Errorf("%w: no proof", ErrBadProof)
	}
	if len(p.Siblings) > Depth {
		return fmt.Errorf("%w: %d siblings exceeds key width %d", ErrBadProof, len(p.Siblings), Depth)
	}
	if p.Key != Key(t) {
		return fmt.Errorf("%w: proof key does not match tuple", ErrBadProof)
	}
	// The entry list must be canonical — strictly vhash-ascending with
	// positive counts — or two different lists could encode one leaf.
	for i, e := range p.Entries {
		if e.Count == 0 {
			return fmt.Errorf("%w: zero-count entry", ErrBadProof)
		}
		if i > 0 && compareHash(p.Entries[i-1].VHash, e.VHash) >= 0 {
			return fmt.Errorf("%w: entries out of order", ErrBadProof)
		}
	}
	vh := Sum(t)
	found := false
	for _, e := range p.Entries {
		if e.VHash == vh {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("%w: tuple content not in committed leaf", ErrBadProof)
	}
	h := leafHash(p.Key, p.Entries)
	for d := len(p.Siblings) - 1; d >= 0; d-- {
		if bit(p.Key, d) == 0 {
			h = innerHash(h, p.Siblings[d])
		} else {
			h = innerHash(p.Siblings[d], h)
		}
	}
	if h != root {
		return fmt.Errorf("%w: recomputed root does not match", ErrBadProof)
	}
	return nil
}
