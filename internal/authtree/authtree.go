// Package authtree commits a master relation to a single 32-byte root: a
// compact sparse Merkle tree over the content hashes of its tuples, with
// copy-on-write nodes so ApplyDelta can maintain the root incrementally
// per epoch — O(delta · depth) hashing, never a rebuild — exactly the way
// it already maintains postings.
//
// Layout. The tree is a collapsed binary trie over 64-bit tuple keys,
// most-significant bit first. A key is the content-pure FNV chain the
// sharded master already routes on (relation.HashSeed folded with
// relation.HashValue over every cell), so the trie's shape — and therefore
// the root — is a pure function of the tuple multiset: independent of
// insertion order, shard count, tuple ids and the swap-remove renumbering
// ApplyDelta performs. Three node forms keep the trie canonical:
//
//   - empty: zero tuples; its hash is 32 zero bytes (the root of an empty
//     master).
//   - leaf: every tuple whose key lands here. FNV keys are not collision
//     free, so a leaf commits to a sorted multiset of sha256 content
//     hashes: entries (vhash, count), ordered by vhash. Integrity rests on
//     sha256 over the injective canonical tuple encoding; the 64-bit key
//     only places the leaf in the trie.
//   - inner: an internal node whose subtree holds ≥ 2 distinct keys; its
//     children split on the next key bit. Chains of one-child inner nodes
//     are what "collapsed" forbids below a leaf but requires along shared
//     key prefixes, and removal restores the canonical form (an inner node
//     left with a single leaf child becomes that leaf).
//
// Hashing is domain separated: leafHash = H(0x00 ‖ key ‖ n ‖ entries),
// innerHash = H(0x01 ‖ left ‖ right). Nodes are immutable and hashed once
// at construction; an update copies the O(depth) spine and shares every
// untouched subtree with the previous epoch, so retaining a snapshot ring
// of authenticated epochs costs O(delta · depth) nodes per epoch, not a
// tree per epoch.
//
// An inclusion proof for a tuple is its leaf's entry list plus the sibling
// hashes along the spine; Prove emits one and VerifyInclusion checks it
// against a root with no access to the tree — the client-side half of
// "verify a fix without trusting the server".
package authtree

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/relation"
)

// Hash is a 32-byte sha256 commitment (a node hash or a root).
type Hash [32]byte

// Depth is the key width in bits, the maximum trie depth and the maximum
// number of siblings a valid proof can carry.
const Depth = 64

const (
	tagLeaf  = 0x00
	tagInner = 0x01
)

// Key places a tuple in the trie: the same content-pure FNV-1a chain the
// sharded master routes tuples with (shard.go routeHash), so one hashing
// discipline governs both placement and authentication.
func Key(t relation.Tuple) uint64 {
	acc := relation.HashSeed()
	for _, v := range t {
		acc = relation.HashValue(acc, v)
	}
	return acc
}

// Sum is the content commitment of one tuple: sha256 over an injective
// canonical encoding (arity, then each cell kind-tagged with an explicit
// length, so Null / "" / "1" / 1 can never collide the way the display
// encoding lets them).
func Sum(t relation.Tuple) Hash {
	h := sha256.New()
	var buf [10]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(t)))
	h.Write(buf[:4])
	for _, v := range t {
		switch v.Kind() {
		case relation.KindNull:
			buf[0] = 0x00
			h.Write(buf[:1])
		case relation.KindString:
			s := v.Str()
			buf[0] = 0x01
			binary.LittleEndian.PutUint32(buf[1:5], uint32(len(s)))
			h.Write(buf[:5])
			h.Write([]byte(s))
		default:
			buf[0] = 0x02
			binary.LittleEndian.PutUint64(buf[1:9], uint64(v.Int64()))
			h.Write(buf[:9])
		}
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// Entry is one line of a leaf's multiset commitment: a tuple content hash
// and how many identical tuples the master holds.
type Entry struct {
	VHash Hash
	Count uint64
}

// node is an immutable tree node; exactly one of the two forms is
// populated. entries != nil ⇒ leaf (key, entries); otherwise inner
// (left/right, either possibly nil = empty subtree).
type node struct {
	hash    Hash
	key     uint64
	entries []Entry
	left    *node
	right   *node
}

func leafHash(key uint64, entries []Entry) Hash {
	h := sha256.New()
	var buf [13]byte
	buf[0] = tagLeaf
	binary.LittleEndian.PutUint64(buf[1:9], key)
	binary.LittleEndian.PutUint32(buf[9:13], uint32(len(entries)))
	h.Write(buf[:])
	var eb [8]byte
	for _, e := range entries {
		h.Write(e.VHash[:])
		binary.LittleEndian.PutUint64(eb[:], e.Count)
		h.Write(eb[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

func innerHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{tagInner})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

func newLeaf(key uint64, entries []Entry) *node {
	return &node{hash: leafHash(key, entries), key: key, entries: entries}
}

func newInner(left, right *node) *node {
	return &node{hash: innerHash(hashOf(left), hashOf(right)), left: left, right: right}
}

// hashOf treats a nil child as the empty subtree (all-zero hash).
func hashOf(n *node) Hash {
	if n == nil {
		return Hash{}
	}
	return n.hash
}

// bit extracts key bit d, MSB first: bit 0 decides the root's children.
func bit(key uint64, d int) uint64 { return (key >> (Depth - 1 - d)) & 1 }

// Tree is an immutable committed multiset of tuples. The zero Tree (and
// nil) is the empty tree. Updates return new trees sharing all untouched
// nodes; a Tree is safe for concurrent readers once published.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Build commits every tuple of a relation (the from-scratch path used at
// construction, recovery verification, and as the property-test oracle
// for incremental maintenance).
func Build(rel *relation.Relation) *Tree {
	tr := New()
	for i := 0; i < rel.Len(); i++ {
		tr = tr.Insert(rel.Tuple(i))
	}
	return tr
}

// Root returns the 32-byte commitment to the whole multiset.
func (tr *Tree) Root() Hash {
	if tr == nil {
		return Hash{}
	}
	return hashOf(tr.root)
}

// Len returns the number of committed tuples, counting duplicates.
func (tr *Tree) Len() int {
	if tr == nil {
		return 0
	}
	return tr.size
}

// Insert returns a tree additionally committing one tuple. The receiver
// is unchanged.
func (tr *Tree) Insert(t relation.Tuple) *Tree {
	return tr.insertHashed(Key(t), Sum(t))
}

func (tr *Tree) insertHashed(key uint64, vh Hash) *Tree {
	size := 0
	var root *node
	if tr != nil {
		size, root = tr.size, tr.root
	}
	return &Tree{root: insert(root, key, vh, 0), size: size + 1}
}

func insert(n *node, key uint64, vh Hash, depth int) *node {
	if n == nil {
		return newLeaf(key, []Entry{{VHash: vh, Count: 1}})
	}
	if n.entries != nil { // leaf
		if n.key == key {
			return newLeaf(key, addEntry(n.entries, vh))
		}
		// Distinct keys sharing a prefix: descend until they diverge,
		// building the (possibly one-armed) inner spine top-down.
		return split(n, newLeaf(key, []Entry{{VHash: vh, Count: 1}}), depth)
	}
	if bit(key, depth) == 0 {
		return newInner(insert(n.left, key, vh, depth+1), n.right)
	}
	return newInner(n.left, insert(n.right, key, vh, depth+1))
}

// split joins two leaves with distinct keys into the inner spine that
// separates them, starting at depth.
func split(a, b *node, depth int) *node {
	if bit(a.key, depth) != bit(b.key, depth) {
		if bit(a.key, depth) == 0 {
			return newInner(a, b)
		}
		return newInner(b, a)
	}
	child := split(a, b, depth+1)
	if bit(a.key, depth) == 0 {
		return newInner(child, nil)
	}
	return newInner(nil, child)
}

// addEntry returns a copy of entries with vh's count incremented, keeping
// the vhash order that makes the commitment canonical.
func addEntry(entries []Entry, vh Hash) []Entry {
	out := make([]Entry, 0, len(entries)+1)
	inserted := false
	for _, e := range entries {
		if !inserted {
			switch compareHash(vh, e.VHash) {
			case 0:
				out = append(out, Entry{VHash: vh, Count: e.Count + 1})
				inserted = true
				continue
			case -1:
				out = append(out, Entry{VHash: vh, Count: 1})
				inserted = true
			}
		}
		out = append(out, e)
	}
	if !inserted {
		out = append(out, Entry{VHash: vh, Count: 1})
	}
	return out
}

// Remove returns a tree with one instance of the tuple removed, or false
// when the tuple is not committed (which callers treat as a broken
// tree-mirrors-relation invariant). The receiver is unchanged.
func (tr *Tree) Remove(t relation.Tuple) (*Tree, bool) {
	if tr == nil || tr.root == nil {
		return tr, false
	}
	root, ok := remove(tr.root, Key(t), Sum(t), 0)
	if !ok {
		return tr, false
	}
	return &Tree{root: root, size: tr.size - 1}, true
}

func remove(n *node, key uint64, vh Hash, depth int) (*node, bool) {
	if n == nil {
		return nil, false
	}
	if n.entries != nil { // leaf
		if n.key != key {
			return nil, false
		}
		entries, ok := dropEntry(n.entries, vh)
		if !ok {
			return nil, false
		}
		if len(entries) == 0 {
			return nil, true
		}
		return newLeaf(key, entries), true
	}
	if bit(key, depth) == 0 {
		child, ok := remove(n.left, key, vh, depth+1)
		if !ok {
			return nil, false
		}
		return collapse(child, n.right), true
	}
	child, ok := remove(n.right, key, vh, depth+1)
	if !ok {
		return nil, false
	}
	return collapse(n.left, child), true
}

// collapse restores the canonical form after a removal: an inner node
// whose only child is a leaf becomes that leaf (the one-armed spine above
// a lone key disappears); with two live children, or a lone inner child
// (≥ 2 keys below, still a genuine branch point), the node stays.
func collapse(left, right *node) *node {
	if left == nil && right == nil {
		return nil
	}
	if right == nil && left.entries != nil {
		return left
	}
	if left == nil && right.entries != nil {
		return right
	}
	return newInner(left, right)
}

// dropEntry returns a copy of entries with one count of vh removed, or
// false when vh is absent.
func dropEntry(entries []Entry, vh Hash) ([]Entry, bool) {
	for i, e := range entries {
		if e.VHash == vh {
			out := make([]Entry, 0, len(entries))
			out = append(out, entries[:i]...)
			if e.Count > 1 {
				out = append(out, Entry{VHash: vh, Count: e.Count - 1})
			}
			return append(out, entries[i+1:]...), true
		}
	}
	return nil, false
}

func compareHash(a, b Hash) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}
