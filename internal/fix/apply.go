package fix

import (
	"repro/internal/master"
	"repro/internal/relation"
	"repro/internal/rule"
)

// Pair is an applicable (rule, master-tuple) pair.
type Pair struct {
	Rule     *rule.Rule
	MasterID int
}

// RegionApplies reports whether (ϕ, tm) apply to t with respect to a
// validated attribute set zSet (§3): the rule's premise X ∪ Xp must be
// validated, its rhs B must not be (validated attributes are protected),
// t must match the rule's pattern and t[X] = tm[Xm].
func RegionApplies(ru *rule.Rule, tm relation.Tuple, t relation.Tuple, zSet relation.AttrSet) bool {
	if zSet.Has(ru.RHS()) {
		return false
	}
	if !zSet.ContainsSet(ru.PremiseSet()) {
		return false
	}
	return ru.Applies(t, tm)
}

// ApplyStep performs one region-relative application t →((Z,·),ϕ,tm) t' in
// place: t[B] := tm[Bm] and B joins the validated set. It reports whether
// the application was admissible; t and zSet are unchanged otherwise.
func ApplyStep(ru *rule.Rule, tm relation.Tuple, t relation.Tuple, zSet *relation.AttrSet) bool {
	if !RegionApplies(ru, tm, t, *zSet) {
		return false
	}
	t[ru.RHS()] = tm[ru.RHSM()]
	zSet.Add(ru.RHS())
	return true
}

// ApplicablePairs enumerates every (ϕ, tm) pair that applies to t with
// respect to zSet, using the master indexes for the t[X] = tm[Xm] probe.
func ApplicablePairs(sigma *rule.Set, dm *master.Data, t relation.Tuple, zSet relation.AttrSet) []Pair {
	var out []Pair
	for _, ru := range sigma.Rules() {
		if zSet.Has(ru.RHS()) || !zSet.ContainsSet(ru.PremiseSet()) {
			continue
		}
		if !ru.MatchesPattern(t) {
			continue
		}
		for _, id := range dm.MatchIDs(ru, t) {
			out = append(out, Pair{Rule: ru, MasterID: id})
		}
	}
	return out
}

// ApplicableAssignments groups the applicable pairs of t by rhs attribute
// and collects, per attribute, the distinct values the pairs would assign.
// Two distinct values for one attribute is the step-(e) conflict of the
// Theorem-4 checking algorithm.
func ApplicableAssignments(sigma *rule.Set, dm *master.Data, t relation.Tuple, zSet relation.AttrSet) map[int][]relation.Value {
	out := map[int][]relation.Value{}
	for _, p := range ApplicablePairs(sigma, dm, t, zSet) {
		b := p.Rule.RHS()
		v := dm.Tuple(p.MasterID)[p.Rule.RHSM()]
		dup := false
		for _, w := range out[b] {
			if w.Equal(v) {
				dup = true
				break
			}
		}
		if !dup {
			out[b] = append(out[b], v)
		}
	}
	return out
}
