package fix

import (
	"repro/internal/master"
	"repro/internal/relation"
	"repro/internal/rule"
)

// NaiveFix computes the same result as TransFix by repeatedly scanning the
// whole rule set until a fixpoint, without the dependency graph. It exists
// as the ablation baseline for the dependency-graph design choice (§5.1);
// worst-case O(|R|·|Σ|·probe) instead of TransFix's one-pass ordering.
func NaiveFix(sigma *rule.Set, dm *master.Data, t relation.Tuple, zSet *relation.AttrSet) ([]int, error) {
	var fixed []int
	for {
		progressed := false
		for _, ru := range sigma.Rules() {
			if zSet.Has(ru.RHS()) || !zSet.ContainsSet(ru.PremiseSet()) || !ru.MatchesPattern(t) {
				continue
			}
			if len(dm.RHSValues(ru, t)) == 0 {
				continue
			}
			values := certainValues(sigma, dm, t, *zSet, ru.RHS())
			if len(values) > 1 {
				return fixed, &ConflictError{Attr: ru.RHS(), Values: values}
			}
			t[ru.RHS()] = values[0]
			zSet.Add(ru.RHS())
			fixed = append(fixed, ru.RHS())
			progressed = true
		}
		if !progressed {
			return fixed, nil
		}
	}
}
