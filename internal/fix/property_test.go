package fix_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fix"
	"repro/internal/master"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// randomFixInstance builds a small random (Σ, Dm, t, Z) quadruple over a
// tiny domain, mirroring the analysis package's generator.
func randomFixInstance(rng *rand.Rand) (*rule.Set, *master.Data, relation.Tuple, relation.AttrSet) {
	nR := 4 + rng.Intn(3)
	nM := 4 + rng.Intn(3)
	rNames := make([]string, nR)
	for i := range rNames {
		rNames[i] = fmt.Sprintf("A%d", i)
	}
	mNames := make([]string, nM)
	for i := range mNames {
		mNames[i] = fmt.Sprintf("M%d", i)
	}
	r := relation.StringSchema("R", rNames...)
	rm := relation.StringSchema("Rm", mNames...)

	vals := []string{"a", "b"}
	rel := relation.NewRelation(rm)
	for i, n := 0, 2+rng.Intn(3); i < n; i++ {
		tup := make(relation.Tuple, nM)
		for j := range tup {
			tup[j] = relation.String(vals[rng.Intn(len(vals))])
		}
		rel.MustAppend(tup)
	}

	sigma := rule.MustNewSet(r, rm)
	for i, n := 0, 2+rng.Intn(5); i < n; i++ {
		xLen := 1 + rng.Intn(2)
		perm := rng.Perm(nR)
		x := perm[:xLen]
		b := perm[xLen]
		xm := make([]int, xLen)
		for j := range xm {
			xm[j] = rng.Intn(nM)
		}
		var pPos []int
		var pCells []pattern.Cell
		for _, p := range rng.Perm(nR)[:rng.Intn(2)] {
			pPos = append(pPos, p)
			v := relation.String(vals[rng.Intn(len(vals))])
			if rng.Intn(2) == 0 {
				pCells = append(pCells, pattern.Eq(v))
			} else {
				pCells = append(pCells, pattern.Neq(v))
			}
		}
		tp := pattern.MustTuple(pPos, pCells)
		ru, err := rule.New(fmt.Sprintf("r%d", i), r, rm, x, xm, b, rng.Intn(nM), tp)
		if err != nil {
			continue
		}
		sigma.Add(ru)
	}

	t := make(relation.Tuple, nR)
	for i := range t {
		t[i] = relation.String(vals[rng.Intn(len(vals))])
	}
	zSet := relation.NewAttrSet(rng.Perm(nR)[:1+rng.Intn(nR-1)]...)
	return sigma, master.MustNewForRules(rel, sigma), t, zSet
}

// TestTransFixMatchesExploreProperty: whenever the oracle says the fix is
// unique, TransFix reaches exactly that terminal state; when TransFix
// reports a conflict, the oracle must see multiple fixes.
func TestTransFixMatchesExploreProperty(t *testing.T) {
	iterations := 500
	if testing.Short() {
		iterations = 80
	}
	for seed := 0; seed < iterations; seed++ {
		rng := rand.New(rand.NewSource(int64(9_000_000 + seed)))
		sigma, dm, tup, zSet := randomFixInstance(rng)
		g := rule.NewDepGraph(sigma)

		res := fix.Explore(sigma, dm, tup, zSet, 0)
		if res.Truncated {
			continue
		}
		tf := tup.Clone()
		zf := zSet.Clone()
		_, err := fix.TransFix(g, dm, tf, &zf)

		if err != nil {
			if res.Unique() {
				t.Fatalf("seed %d: TransFix conflict but oracle says unique\nΣ:\n%s", seed, sigma)
			}
			continue
		}
		if res.Unique() {
			o := res.Outcomes[0]
			if !tf.Equal(o.Tuple) {
				t.Fatalf("seed %d: TransFix %v != oracle %v\nΣ:\n%s", seed, tf, o.Tuple, sigma)
			}
			if !zf.Equal(o.Covered) {
				t.Fatalf("seed %d: covered %v != oracle %v\nΣ:\n%s",
					seed, zf.Positions(), o.Covered.Positions(), sigma)
			}
		} else {
			// Non-unique: TransFix must still have produced ONE of the
			// reachable outcomes.
			found := false
			for _, o := range res.Outcomes {
				if tf.Equal(o.Tuple) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("seed %d: TransFix result %v is not a reachable outcome\nΣ:\n%s", seed, tf, sigma)
			}
		}
	}
}

// TestNaiveFixMatchesTransFixProperty: the ablation baseline agrees with
// TransFix on random instances.
func TestNaiveFixMatchesTransFixProperty(t *testing.T) {
	iterations := 500
	if testing.Short() {
		iterations = 80
	}
	for seed := 0; seed < iterations; seed++ {
		rng := rand.New(rand.NewSource(int64(5_000_000 + seed)))
		sigma, dm, tup, zSet := randomFixInstance(rng)
		g := rule.NewDepGraph(sigma)

		ta, za := tup.Clone(), zSet.Clone()
		tb, zb := tup.Clone(), zSet.Clone()
		_, errA := fix.TransFix(g, dm, ta, &za)
		_, errB := fix.NaiveFix(sigma, dm, tb, &zb)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("seed %d: error mismatch %v vs %v\nΣ:\n%s", seed, errA, errB, sigma)
		}
		if errA == nil && (!ta.Equal(tb) || !za.Equal(zb)) {
			t.Fatalf("seed %d: divergence\n transfix %v %v\n naive    %v %v\nΣ:\n%s",
				seed, ta, za.Positions(), tb, zb.Positions(), sigma)
		}
	}
}

// TestExploreTerminalStatesAreFixpoints: no applicable pair remains at
// any reported outcome.
func TestExploreTerminalStatesAreFixpoints(t *testing.T) {
	for seed := 0; seed < 200; seed++ {
		rng := rand.New(rand.NewSource(int64(7_000_000 + seed)))
		sigma, dm, tup, zSet := randomFixInstance(rng)
		res := fix.Explore(sigma, dm, tup, zSet, 0)
		if res.Truncated {
			continue
		}
		for _, o := range res.Outcomes {
			if pairs := fix.ApplicablePairs(sigma, dm, o.Tuple, o.Covered); len(pairs) != 0 {
				t.Fatalf("seed %d: outcome %v still has %d applicable pairs", seed, o.Tuple, len(pairs))
			}
			// The base Z values are protected throughout.
			for _, p := range zSet.Positions() {
				if !o.Tuple[p].Equal(tup[p]) {
					t.Fatalf("seed %d: base attribute %d changed", seed, p)
				}
			}
		}
	}
}
