package fix_test

import (
	"testing"

	"repro/internal/fix"
	"repro/internal/master"
	"repro/internal/paperex"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

func setup(t *testing.T) (*rule.Set, *master.Data) {
	t.Helper()
	sigma := paperex.Sigma0()
	dm := master.MustNewForRules(paperex.MasterRelation(), sigma)
	return sigma, dm
}

// TestExample6UniqueFix: t3 w.r.t. (Z_AH, T_AH) has the unique fix t3'
// with str, city, zip taken from s2 (Examples 6 and 8).
func TestExample6UniqueFix(t *testing.T) {
	sigma, dm := setup(t)
	r := sigma.Schema()
	reg := regionAH(t)

	fixed, covered, unique, err := fix.UniqueFix(sigma, dm, reg, paperex.InputT3())
	if err != nil {
		t.Fatal(err)
	}
	if !unique {
		t.Fatal("t3 must have a unique fix w.r.t. (Z_AH, T_AH)")
	}
	if got := fixed[r.MustPos("str")].Str(); got != "20 Baker St." {
		t.Errorf("str = %q, want s2's street", got)
	}
	if got := fixed[r.MustPos("city")].Str(); got != "Lnd" {
		t.Errorf("city = %q, want Lnd", got)
	}
	if got := fixed[r.MustPos("zip")].Str(); got != "NW1 6XE" {
		t.Errorf("zip = %q, want NW1 6XE", got)
	}
	wantCovered := relation.NewAttrSet(r.MustPosList("AC", "phn", "type", "str", "city", "zip")...)
	if !covered.Equal(wantCovered) {
		t.Errorf("covered = %v", covered.Names(r))
	}
	// Unique but not certain: FN, LN, item are not covered (Example 8).
	_, certain, err := fix.IsCertainFix(sigma, dm, reg, paperex.InputT3())
	if err != nil || certain {
		t.Errorf("certain = %v err = %v; want unique-but-not-certain", certain, err)
	}
}

// TestExample8NoUniqueFixAfterAddingZip: extending Z_AH with zip destroys
// uniqueness for t3 — ϕ2/ϕ3 (via s1's zip) and ϕ6/ϕ7 (via s2's phone)
// disagree on str and city.
func TestExample8NoUniqueFixAfterAddingZip(t *testing.T) {
	sigma, dm := setup(t)
	r := sigma.Schema()
	z := r.MustPosList("AC", "phn", "type", "zip")
	row := pattern.MustTuple(
		[]int{r.MustPos("AC"), r.MustPos("type")},
		[]pattern.Cell{pattern.NeqStr("0800"), pattern.EqStr("1")},
	)
	reg := fix.MustRegion(z, pattern.NewTableau(row))

	_, _, unique, err := fix.UniqueFix(sigma, dm, reg, paperex.InputT3())
	if err != nil {
		t.Fatal(err)
	}
	if unique {
		t.Fatal("t3 must not have a unique fix once zip joins Z (Example 8)")
	}
}

// TestExample9CertainFix: (Z_zmi, T_zmi) with Z = (zip, phn, type, item)
// and per-master patterns (s[zip], s[Mphn], 2, _) is a certain region;
// t1's fix covers every attribute.
func TestExample9CertainFix(t *testing.T) {
	sigma, dm := setup(t)
	r := sigma.Schema()
	rm := dm.Schema()
	z := r.MustPosList("zip", "phn", "type", "item")
	tc := pattern.NewTableau()
	for _, tm := range dm.Relation().Tuples() {
		row := pattern.MustTuple(
			[]int{r.MustPos("zip"), r.MustPos("phn"), r.MustPos("type")},
			[]pattern.Cell{
				pattern.Eq(tm[rm.MustPos("zip")]),
				pattern.Eq(tm[rm.MustPos("Mphn")]),
				pattern.EqStr("2"),
			},
		)
		tc.Add(row)
	}
	reg := fix.MustRegion(z, tc)

	t1 := paperex.InputT1()
	if !reg.Marks(t1) {
		t.Fatal("t1 must be marked by (Z_zmi, T_zmi)")
	}
	fixed, certain, err := fix.IsCertainFix(sigma, dm, reg, t1)
	if err != nil {
		t.Fatal(err)
	}
	if !certain {
		t.Fatal("t1 must have a certain fix w.r.t. (Z_zmi, T_zmi) — Example 9")
	}
	// Example 4: AC 020→131, str→51 Elm Row, FN Bob→Robert.
	if fixed[r.MustPos("AC")].Str() != "131" {
		t.Errorf("AC = %v", fixed[r.MustPos("AC")])
	}
	if fixed[r.MustPos("str")].Str() != "51 Elm Row" {
		t.Errorf("str = %v", fixed[r.MustPos("str")])
	}
	if fixed[r.MustPos("FN")].Str() != "Robert" {
		t.Errorf("FN = %v", fixed[r.MustPos("FN")])
	}
	if fixed[r.MustPos("LN")].Str() != "Brady" {
		t.Errorf("LN = %v", fixed[r.MustPos("LN")])
	}
	// city was already correct and stays Edi.
	if fixed[r.MustPos("city")].Str() != "Edi" {
		t.Errorf("city = %v", fixed[r.MustPos("city")])
	}
}

// TestUnmarkedTupleRejected: fixing is only justified for marked tuples.
func TestUnmarkedTupleRejected(t *testing.T) {
	sigma, dm := setup(t)
	reg := regionAH(t)
	if _, _, _, err := fix.UniqueFix(sigma, dm, reg, paperex.InputT4()); err == nil {
		t.Fatal("unmarked tuple must be rejected")
	}
}

// TestExploreNoApplicableRules: a marked tuple nothing applies to is its
// own unique (trivial) fix with covered = Z.
func TestExploreNoApplicableRules(t *testing.T) {
	sigma, dm := setup(t)
	r := sigma.Schema()
	// Region marking t4 on item only; no rule's premise ⊆ {item}.
	z := []int{r.MustPos("item")}
	row := pattern.MustTuple(z, []pattern.Cell{pattern.Any})
	reg := fix.MustRegion(z, pattern.NewTableau(row))

	t4 := paperex.InputT4()
	fixed, covered, unique, err := fix.UniqueFix(sigma, dm, reg, t4)
	if err != nil || !unique {
		t.Fatalf("unique=%v err=%v", unique, err)
	}
	if !fixed.Equal(t4) {
		t.Error("trivial fix must leave the tuple unchanged")
	}
	if covered.Len() != 1 {
		t.Errorf("covered = %v", covered.Positions())
	}
}

// TestExploreDoesNotMutateInput guards the Explore contract.
func TestExploreDoesNotMutateInput(t *testing.T) {
	sigma, dm := setup(t)
	r := sigma.Schema()
	t1 := paperex.InputT1()
	orig := t1.Clone()
	zSet := relation.NewAttrSet(r.MustPosList("zip", "phn", "type", "item")...)
	res := fix.Explore(sigma, dm, t1, zSet, 0)
	if !t1.Equal(orig) {
		t.Fatal("Explore mutated the input tuple")
	}
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	if res.States == 0 {
		t.Error("state counter should be positive")
	}
}

// TestExploreStateCap: with cap 1 the search truncates and reports it.
func TestExploreStateCap(t *testing.T) {
	sigma, dm := setup(t)
	r := sigma.Schema()
	zSet := relation.NewAttrSet(r.MustPosList("zip", "phn", "type")...)
	res := fix.Explore(sigma, dm, paperex.InputT1(), zSet, 1)
	if !res.Truncated {
		t.Fatal("cap=1 must truncate")
	}
	if res.Unique() {
		t.Fatal("truncated result must not claim uniqueness")
	}
}

// TestIdentityApplicationValidates: a rule assigning the value the tuple
// already has still validates the attribute (covered set grows).
func TestIdentityApplicationValidates(t *testing.T) {
	sigma, dm := setup(t)
	r := sigma.Schema()
	// t with correct city already; Z = {zip}: ϕ3 validates city without
	// changing it.
	tup := paperex.InputT2() // city Ldn is wrong; use t1-like fixture instead
	tup[r.MustPos("zip")] = relation.String("EH7 4AH")
	tup[r.MustPos("city")] = relation.String("Edi")
	zSet := relation.NewAttrSet(r.MustPos("zip"))
	res := fix.Explore(sigma, dm, tup, zSet, 0)
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	covered := res.Outcomes[0].Covered
	if !covered.Has(r.MustPos("city")) {
		t.Error("city must be covered even though its value was already correct")
	}
}
