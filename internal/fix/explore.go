package fix

import (
	"fmt"

	"repro/internal/master"
	"repro/internal/relation"
	"repro/internal/rule"
)

// Outcome is one terminal state of the fixing process: the fixed tuple and
// the set Zk of attributes covered (validated) when it terminated.
type Outcome struct {
	Tuple   relation.Tuple
	Covered relation.AttrSet
}

// ExploreResult summarizes the reachable terminal states of the fixing
// process started from one tuple and one validated set.
type ExploreResult struct {
	Outcomes  []Outcome // distinct terminal states, discovery order
	States    int       // number of distinct intermediate states visited
	Truncated bool      // state cap was hit; Outcomes may be incomplete
}

// Unique reports whether exactly one terminal tuple is reachable. (Distinct
// outcomes always differ in their tuples: §3 implies equal terminal tuples
// have equal covered sets, and Explore deduplicates on both.)
func (r ExploreResult) Unique() bool { return len(r.Outcomes) == 1 && !r.Truncated }

// DefaultStateCap bounds the exhaustive search. The underlying decision
// problems are coNP-hard (Thms 1–2), so the oracle is exponential in the
// worst case; realistic rule sets terminate in a handful of states.
const DefaultStateCap = 1 << 17

// Explore exhaustively enumerates every terminal state reachable from
// (t, zSet) by region-relative rule applications, memoizing states. The
// input tuple is not mutated. cap ≤ 0 selects DefaultStateCap.
func Explore(sigma *rule.Set, dm *master.Data, t relation.Tuple, zSet relation.AttrSet, cap int) ExploreResult {
	if cap <= 0 {
		cap = DefaultStateCap
	}
	e := &explorer{
		sigma: sigma, dm: dm, cap: cap,
		seen: map[uint64][]stateEntry{},
	}
	e.dfs(t.Clone(), zSet.Clone())
	return ExploreResult{Outcomes: e.outcomes, States: e.states, Truncated: e.truncated}
}

// stateEntry is one memoized state. A fixing state is fully identified by
// (Z, t[Z]): attributes outside Z always hold their original values, since
// rules only write attributes they validate.
type stateEntry struct {
	t relation.Tuple
	z relation.AttrSet
}

type explorer struct {
	sigma     *rule.Set
	dm        *master.Data
	cap       int
	states    int
	truncated bool
	// seen memoizes visited states keyed by a uint64 FNV-1a hash of
	// (Z, t[Z]) — no string building per state. A hash is not an
	// encoding, so bucket entries are verified against the stored state,
	// mirroring the master-index collision scheme.
	seen     map[uint64][]stateEntry
	outcomes []Outcome
}

// visited reports whether (t, zSet) was already explored, recording it
// when new. The stored entries alias the caller's tuple and set, which
// dfs frames never mutate after the call.
func (e *explorer) visited(t relation.Tuple, zSet relation.AttrSet) bool {
	h := hashState(t, zSet)
	for _, s := range e.seen[h] {
		if sameState(s, t, zSet) {
			return true
		}
	}
	e.seen[h] = append(e.seen[h], stateEntry{t: t, z: zSet})
	return false
}

func hashState(t relation.Tuple, zSet relation.AttrSet) uint64 {
	acc := relation.HashSeed()
	zSet.Range(func(p int) bool {
		acc = relation.HashInt(acc, p)
		acc = relation.HashValue(acc, t[p])
		return true
	})
	return acc
}

func sameState(s stateEntry, t relation.Tuple, zSet relation.AttrSet) bool {
	if !s.z.Equal(zSet) {
		return false
	}
	same := true
	zSet.Range(func(p int) bool {
		same = s.t[p].Equal(t[p])
		return same
	})
	return same
}

func (e *explorer) dfs(t relation.Tuple, zSet relation.AttrSet) {
	if e.truncated {
		return
	}
	if e.visited(t, zSet) {
		return
	}
	e.states++
	if e.states > e.cap {
		e.truncated = true
		return
	}

	pairs := ApplicablePairs(e.sigma, e.dm, t, zSet)
	if len(pairs) == 0 {
		// Terminal; states are memoized above, so each is reached once.
		e.outcomes = append(e.outcomes, Outcome{Tuple: t.Clone(), Covered: zSet.Clone()})
		return
	}

	// Successor states are determined by the (B, value) assignment, not by
	// which rule/master pair produced it; dedupe to curb branching.
	type succ struct {
		b int
		v relation.Value
	}
	tried := map[succ]bool{}
	for _, p := range pairs {
		b := p.Rule.RHS()
		v := e.dm.Tuple(p.MasterID)[p.Rule.RHSM()]
		s := succ{b, v}
		if tried[s] {
			continue
		}
		tried[s] = true
		nt := t.Clone()
		nt[b] = v
		nz := zSet.Clone()
		nz.Add(b)
		e.dfs(nt, nz)
	}
}

// UniqueFix computes the fix of t by (Σ, Dm) w.r.t. region (Z, Tc) via
// exhaustive exploration. It errors when t is not marked by the region
// (fixing an unmarked tuple is not justified, §3). On success it reports
// the terminal tuple, the covered attribute set, and whether the fix is
// unique.
func UniqueFix(sigma *rule.Set, dm *master.Data, reg *Region, t relation.Tuple) (relation.Tuple, relation.AttrSet, bool, error) {
	if !reg.Marks(t) {
		return nil, relation.AttrSet{}, false, fmt.Errorf("fix: tuple %v is not marked by region %v", t, reg.Z())
	}
	res := Explore(sigma, dm, t, reg.ZSet(), 0)
	if res.Truncated {
		return nil, relation.AttrSet{}, false, fmt.Errorf("fix: state space exceeded cap while exploring fixes")
	}
	if !res.Unique() {
		return nil, relation.AttrSet{}, false, nil
	}
	o := res.Outcomes[0]
	return o.Tuple, o.Covered, true, nil
}

// IsCertainFix reports whether t has a certain fix by (Σ, Dm) w.r.t. the
// region: a unique fix whose covered set includes every R attribute (§3).
func IsCertainFix(sigma *rule.Set, dm *master.Data, reg *Region, t relation.Tuple) (relation.Tuple, bool, error) {
	fixed, covered, unique, err := UniqueFix(sigma, dm, reg, t)
	if err != nil || !unique {
		return nil, false, err
	}
	return fixed, covered.Len() == sigma.Schema().Arity(), nil
}
