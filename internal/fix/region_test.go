package fix_test

import (
	"strings"
	"testing"

	"repro/internal/fix"
	"repro/internal/paperex"
	"repro/internal/pattern"
	"repro/internal/relation"
)

// regionAH builds (Z_AH, T_AH) of Example 6: Z = (AC, phn, type),
// Tc = {(!0800, _, 1)}.
func regionAH(t *testing.T) *fix.Region {
	t.Helper()
	r := paperex.SchemaR()
	z := r.MustPosList("AC", "phn", "type")
	row := pattern.MustTuple(
		[]int{r.MustPos("AC"), r.MustPos("type")},
		[]pattern.Cell{pattern.NeqStr("0800"), pattern.EqStr("1")},
	)
	return fix.MustRegion(z, pattern.NewTableau(row))
}

func TestNewRegionValidation(t *testing.T) {
	if _, err := fix.NewRegion([]int{0, 0}, nil); err == nil {
		t.Error("duplicate Z attributes must be rejected")
	}
	row := pattern.MustTuple([]int{5}, []pattern.Cell{pattern.Any})
	if _, err := fix.NewRegion([]int{0, 1}, pattern.NewTableau(row)); err == nil {
		t.Error("tableau outside Z must be rejected")
	}
	reg, err := fix.NewRegion([]int{0, 1}, nil)
	if err != nil || reg.Tableau().Len() != 0 {
		t.Errorf("nil tableau should become empty tableau: %v, %v", reg, err)
	}
}

func TestRegionMarksExample6(t *testing.T) {
	reg := regionAH(t)
	if !reg.Marks(paperex.InputT3()) {
		t.Error("t3 must be marked by (Z_AH, T_AH) — Example 6")
	}
	// t4 has AC = 0800, so the !0800 cell rejects it.
	if reg.Marks(paperex.InputT4()) {
		t.Error("t4 must not be marked (AC = 0800)")
	}
	// t1 has type = 2.
	if reg.Marks(paperex.InputT1()) {
		t.Error("t1 must not be marked (type = 2)")
	}
}

func TestRegionExtendExample7(t *testing.T) {
	// ext(Z_AH, T_AH, ϕ3) adds the rhs attributes; Example 7 extends by
	// str, city, zip one rule at a time.
	r := paperex.SchemaR()
	reg := regionAH(t)
	ext := reg.Extend(r.MustPos("str")).Extend(r.MustPos("city")).Extend(r.MustPos("zip"))
	want := relation.NewAttrSet(r.MustPosList("AC", "phn", "type", "str", "city", "zip")...)
	if !ext.ZSet().Equal(want) {
		t.Fatalf("extended Z = %v", ext.ZSet().Names(r))
	}
	// The extended pattern is (!0800, _, 1, _, _, _): t3 remains marked.
	if !ext.Marks(paperex.InputT3()) {
		t.Error("t3 must stay marked after extension")
	}
	// Extending by an attribute already in Z is the identity.
	if ext.Extend(r.MustPos("zip")) != ext {
		t.Error("Extend must be identity for attributes already in Z")
	}
	// Original region untouched.
	if reg.ZSet().Len() != 3 {
		t.Error("Extend must not mutate the receiver")
	}
}

func TestRegionAccessors(t *testing.T) {
	r := paperex.SchemaR()
	reg := regionAH(t)
	if len(reg.Z()) != 3 || !reg.Has(r.MustPos("AC")) || reg.Has(r.MustPos("zip")) {
		t.Error("Z/Has accessors wrong")
	}
	single := reg.SingleRow(0)
	if single.Tableau().Len() != 1 {
		t.Error("SingleRow must carry exactly one pattern row")
	}
	if !strings.Contains(reg.Format(r), "AC") {
		t.Errorf("Format = %q", reg.Format(r))
	}
	tc := pattern.NewTableau()
	reg2, err := reg.WithTableau(tc)
	if err != nil || reg2.Tableau().Len() != 0 {
		t.Errorf("WithTableau: %v %v", reg2, err)
	}
}
