package fix_test

import (
	"errors"
	"testing"

	"repro/internal/fix"
	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/internal/rule"
)

// TestTransFixExample12 replays Example 12: fixing t1 with Z = {zip}
// validates AC, str and city (city's value is already correct), leaving
// FN/LN/phn/type/item untouched.
func TestTransFixExample12(t *testing.T) {
	sigma, dm := setup(t)
	r := sigma.Schema()
	g := rule.NewDepGraph(sigma)

	t1 := paperex.InputT1()
	zSet := relation.NewAttrSet(r.MustPos("zip"))
	fixedAttrs, err := fix.TransFix(g, dm, t1, &zSet)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NewAttrSet(r.MustPosList("zip", "AC", "str", "city")...)
	if !zSet.Equal(want) {
		t.Fatalf("Z' = %v, want zip+AC+str+city", zSet.Names(r))
	}
	if len(fixedAttrs) != 3 {
		t.Fatalf("fixed %d attributes, want 3 (AC, str, city)", len(fixedAttrs))
	}
	if t1[r.MustPos("AC")].Str() != "131" {
		t.Errorf("AC = %v, want 131", t1[r.MustPos("AC")])
	}
	if t1[r.MustPos("str")].Str() != "51 Elm Row" {
		t.Errorf("str = %v, want 51 Elm Row", t1[r.MustPos("str")])
	}
	if t1[r.MustPos("city")].Str() != "Edi" {
		t.Errorf("city = %v, want Edi", t1[r.MustPos("city")])
	}
	// FN stays Bob: ϕ4 needs phn and type validated.
	if t1[r.MustPos("FN")].Str() != "Bob" {
		t.Errorf("FN = %v, want untouched Bob", t1[r.MustPos("FN")])
	}
}

// TestTransFixCascade: validating (type, AC, phn) on t2 fixes str, city,
// zip from s1 via ϕ6–ϕ8, then the new zip enables nothing further (AC
// already validated) — Example 2's eR3 behaviour.
func TestTransFixCascade(t *testing.T) {
	sigma, dm := setup(t)
	r := sigma.Schema()
	g := rule.NewDepGraph(sigma)

	t2 := paperex.InputT2()
	zSet := relation.NewAttrSet(r.MustPosList("type", "AC", "phn")...)
	if _, err := fix.TransFix(g, dm, t2, &zSet); err != nil {
		t.Fatal(err)
	}
	if t2[r.MustPos("str")].Str() != "51 Elm Row" {
		t.Errorf("str = %v (enrichment of missing value)", t2[r.MustPos("str")])
	}
	if t2[r.MustPos("city")].Str() != "Edi" {
		t.Errorf("city = %v (correction of Ldn)", t2[r.MustPos("city")])
	}
	if t2[r.MustPos("zip")].Str() != "EH7 4AH" {
		t.Errorf("zip = %v (enrichment)", t2[r.MustPos("zip")])
	}
}

// TestTransFixConflictDetected: on t3 with both zip and (AC, phn, type)
// validated, ϕ2/ϕ6 disagree on str — TransFix must report the conflict
// rather than guess (Example 5's scenario).
func TestTransFixConflictDetected(t *testing.T) {
	sigma, dm := setup(t)
	r := sigma.Schema()
	g := rule.NewDepGraph(sigma)

	t3 := paperex.InputT3()
	zSet := relation.NewAttrSet(r.MustPosList("zip", "AC", "phn", "type")...)
	_, err := fix.TransFix(g, dm, t3, &zSet)
	var conflict *fix.ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("want ConflictError, got %v", err)
	}
	if len(conflict.Values) < 2 {
		t.Fatalf("conflict values = %v", conflict.Values)
	}
	if conflict.Error() == "" {
		t.Error("ConflictError must render a message")
	}
	if !errors.Is(err, fix.ErrInconsistent) {
		t.Error("ConflictError must match ErrInconsistent via errors.Is")
	}
}

// TestTransFixAgreesWithNaiveFix cross-checks the dependency-graph
// implementation against the naive fixpoint baseline on all fixtures.
func TestTransFixAgreesWithNaiveFix(t *testing.T) {
	sigma, dm := setup(t)
	r := sigma.Schema()
	g := rule.NewDepGraph(sigma)

	starts := []struct {
		name string
		tup  relation.Tuple
		z    []string
	}{
		{"t1-zip", paperex.InputT1(), []string{"zip"}},
		{"t1-phone", paperex.InputT1(), []string{"phn", "type"}},
		{"t2-phone", paperex.InputT2(), []string{"type", "AC", "phn"}},
		{"t4-all-free", paperex.InputT4(), []string{"item"}},
		{"t1-everything", paperex.InputT1(), []string{"zip", "phn", "type", "item"}},
	}
	for _, s := range starts {
		ta := s.tup.Clone()
		tb := s.tup.Clone()
		za := relation.NewAttrSet(r.MustPosList(s.z...)...)
		zb := za.Clone()
		_, errA := fix.TransFix(g, dm, ta, &za)
		_, errB := fix.NaiveFix(sigma, dm, tb, &zb)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: error mismatch %v vs %v", s.name, errA, errB)
		}
		if errA != nil {
			continue
		}
		if !ta.Equal(tb) {
			t.Errorf("%s: tuples diverge:\n transfix %v\n naive    %v", s.name, ta, tb)
		}
		if !za.Equal(zb) {
			t.Errorf("%s: validated sets diverge: %v vs %v", s.name, za.Names(r), zb.Names(r))
		}
	}
}

// TestTransFixMatchesExploreWhenUnique: when the oracle says the fix is
// unique, TransFix must produce exactly that tuple and covered set.
func TestTransFixMatchesExploreWhenUnique(t *testing.T) {
	sigma, dm := setup(t)
	r := sigma.Schema()
	g := rule.NewDepGraph(sigma)

	t1 := paperex.InputT1()
	zSet := relation.NewAttrSet(r.MustPosList("zip", "phn", "type", "item")...)
	res := fix.Explore(sigma, dm, t1, zSet, 0)
	if !res.Unique() {
		t.Fatal("fixture should have a unique fix")
	}
	tf := t1.Clone()
	zf := zSet.Clone()
	if _, err := fix.TransFix(g, dm, tf, &zf); err != nil {
		t.Fatal(err)
	}
	if !tf.Equal(res.Outcomes[0].Tuple) {
		t.Errorf("TransFix %v != Explore %v", tf, res.Outcomes[0].Tuple)
	}
	if !zf.Equal(res.Outcomes[0].Covered) {
		t.Errorf("covered sets differ: %v vs %v", zf.Names(r), res.Outcomes[0].Covered.Names(r))
	}
}
