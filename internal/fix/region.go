// Package fix implements the dynamic semantics of the paper (§3): regions
// (Z, Tc), region-relative rule application t →((Z,Tc),ϕ,tm) t', region
// extension ext(Z, Tc, ϕ), fix sequences and their terminal states, unique
// and certain fixes, and procedure TransFix of §5.1 (Fig. 5).
//
// The package provides two engines over the same semantics:
//
//   - Explore: an exhaustive, memoized enumeration of every reachable
//     terminal state of the (nondeterministic) fixing process. It is the
//     ground-truth oracle — exponential in the worst case (the problems are
//     coNP-hard, Thm 1/2) but exact, and fast on realistic rule sets.
//   - TransFix: the paper's deterministic O(|Σ|²) fixing procedure used in
//     production by the CertainFix framework, valid once consistency has
//     been established.
package fix

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
	"repro/internal/relation"
)

// Region is a pair (Z, Tc): a list Z of distinct attribute positions of R
// and a pattern tableau Tc over Z. A tuple t is "marked" by the region if
// it matches some pattern tuple of Tc; fixing t is justified only when
// t[Z] is assured correct (validated) and t is marked (§3).
type Region struct {
	z    []int
	zSet relation.AttrSet
	tc   *pattern.Tableau
}

// NewRegion builds a region. Positions must be distinct; every pattern row
// must constrain only attributes inside Z.
func NewRegion(z []int, tc *pattern.Tableau) (*Region, error) {
	zSet := relation.NewAttrSet(z...)
	if zSet.Len() != len(z) {
		return nil, fmt.Errorf("fix: region Z has duplicate attributes: %v", z)
	}
	if tc == nil {
		tc = pattern.NewTableau()
	}
	for _, row := range tc.Rows() {
		for _, p := range row.Positions() {
			if !zSet.Has(p) {
				return nil, fmt.Errorf("fix: region tableau constrains attribute %d outside Z %v", p, z)
			}
		}
	}
	return &Region{z: append([]int(nil), z...), zSet: zSet, tc: tc}, nil
}

// MustRegion is NewRegion that panics on error; for fixtures.
func MustRegion(z []int, tc *pattern.Tableau) *Region {
	r, err := NewRegion(z, tc)
	if err != nil {
		panic(err)
	}
	return r
}

// Z returns the region's attribute list (copy).
func (r *Region) Z() []int { return append([]int(nil), r.z...) }

// ZSet returns the region's attribute set (copy).
func (r *Region) ZSet() relation.AttrSet { return r.zSet.Clone() }

// Tableau returns the region's pattern tableau.
func (r *Region) Tableau() *pattern.Tableau { return r.tc }

// Marks reports whether t matches some pattern tuple of Tc.
func (r *Region) Marks(t relation.Tuple) bool { return r.tc.Marks(t) }

// Has reports whether attribute position p is in Z.
func (r *Region) Has(p int) bool { return r.zSet.Has(p) }

// Extend implements ext(Z, Tc, ϕ) (§3): after applying a rule with rhs B,
// t[B] is validated as a logical consequence, so B joins Z and every
// pattern row is (implicitly) widened with a wildcard on B. Extending by
// an attribute already in Z returns the region unchanged.
func (r *Region) Extend(b int) *Region {
	if r.zSet.Has(b) {
		return r
	}
	nz := append(append([]int(nil), r.z...), b)
	ns := r.zSet.Clone()
	ns.Add(b)
	// Wildcards are implicit in pattern.Tuple (unmentioned attributes are
	// unconstrained), so the tableau itself is reused.
	return &Region{z: nz, zSet: ns, tc: r.tc}
}

// WithTableau returns a region over the same Z with a different tableau.
func (r *Region) WithTableau(tc *pattern.Tableau) (*Region, error) {
	return NewRegion(r.z, tc)
}

// SingleRow builds the region (Z, {tc}) for row i of the tableau; used by
// the checkers, which test pattern rows one at a time (Thm 4 proof).
func (r *Region) SingleRow(i int) *Region {
	return &Region{z: r.z, zSet: r.zSet, tc: pattern.NewTableau(r.tc.Row(i))}
}

// Format renders the region with schema names, e.g. "(zip, AC | 2 rows)".
func (r *Region) Format(schema *relation.Schema) string {
	names := make([]string, len(r.z))
	for i, p := range r.z {
		names[i] = schema.Attr(p).Name
	}
	return fmt.Sprintf("(%s | %d pattern rows)", strings.Join(names, ", "), r.tc.Len())
}
