package fix

import (
	"errors"
	"fmt"

	"repro/internal/master"
	"repro/internal/relation"
	"repro/internal/rule"
)

// ErrInconsistent is the sentinel for "no certain fix exists under the
// asserted values": applicable rule/master pairs disagree, so proceeding
// would mean guessing. Concrete failures carry details in a
// *ConflictError; errors.Is(err, ErrInconsistent) matches both.
var ErrInconsistent = errors.New("fix: no certain fix: applicable rules conflict on asserted values")

// ConflictError reports that two applicable rule/master pairs disagree on
// the value of one attribute — the inconsistency witness of §4. TransFix
// assumes (Σ, Dm) is consistent relative to the working region; when the
// assumption fails it surfaces this error instead of guessing.
type ConflictError struct {
	Attr   int
	Values []relation.Value
}

// Error implements error.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("fix: conflicting certain values %v for attribute %d", e.Values, e.Attr)
}

// Is matches ErrInconsistent, so callers can test the condition with
// errors.Is without naming the concrete type.
func (e *ConflictError) Is(target error) bool { return target == ErrInconsistent }

// Witness records where one fixed attribute's value came from: the rule
// that fired and the master tuple id whose RHSM cell supplied the value.
// One witness per fixed attribute, in application order — together they
// are the fix's provenance, checkable by anyone holding the rules, the
// claimed master tuples and the master commitment root
// (pkg/certainfix.VerifyFix).
type Witness struct {
	// Attr is the tuple position the rule fixed.
	Attr int
	// Rule is the name of the editing rule that fired.
	Rule string
	// MasterID is the id (at the fix's epoch) of a master tuple matching
	// the rule against the tuple's validated premise. Any match works as a
	// witness: TransFix only fixes when every applicable rule/master pair
	// agrees on the value, so every match carries it.
	MasterID int
}

// node processing states for TransFix.
const (
	nodeUnusable = iota // premise not validated, not yet reachable
	nodeInUset          // candidate: reachable but premise incomplete
	nodeInVset          // usable: premise validated, awaiting processing
	nodeDone            // processed; never revisited (premise values frozen)
)

// TransFix is procedure TransFix of §5.1 (Fig. 5). Given a tuple t whose
// attributes zSet are validated, it applies editing rules in dependency
// order, fixing attributes with master values and extending zSet in place.
// It returns the positions it newly validated, in application order.
//
// The dependency graph is computed once per Σ (rule.NewDepGraph) and
// shared across calls. Each rule is processed at most once: premise values
// are frozen once validated, so re-examination can never change the
// outcome. Complexity O(|V|·|Σ|), as analyzed in the paper.
func TransFix(g *rule.DepGraph, dm *master.Data, t relation.Tuple, zSet *relation.AttrSet) ([]int, error) {
	return TransFixTrace(g, dm, t, zSet, nil)
}

// TransFixTrace is TransFix with provenance: when trace is non-nil, one
// Witness is appended per fixed attribute, naming the rule that fired and
// a master tuple that supplied the value. The fix itself is identical —
// the witness is read off the match set TransFix already consults, at no
// extra probing.
func TransFixTrace(g *rule.DepGraph, dm *master.Data, t relation.Tuple, zSet *relation.AttrSet, trace *[]Witness) ([]int, error) {
	sigma := g.Set()
	n := sigma.Len()
	state := make([]int, n)
	var vset []int

	// Lines 1–4: collect rules whose premise X ∪ Xp is already validated.
	for v := 0; v < n; v++ {
		if zSet.ContainsSet(sigma.Rule(v).PremiseSet()) {
			state[v] = nodeInVset
			vset = append(vset, v)
		}
	}

	var fixed []int
	// Lines 5–15: consume vset, upgrading candidates as attributes become
	// validated.
	for len(vset) > 0 {
		v := vset[len(vset)-1]
		vset = vset[:len(vset)-1]
		state[v] = nodeDone
		rv := sigma.Rule(v)

		if !zSet.Has(rv.RHS()) && rv.MatchesPattern(t) && dm.HasMatch(rv, t) {
			values := certainValues(sigma, dm, t, *zSet, rv.RHS())
			if len(values) > 1 {
				return fixed, &ConflictError{Attr: rv.RHS(), Values: values}
			}
			if trace != nil {
				// Any master match of rv witnesses the value: rv is
				// applicable here, so each of its matches contributes its
				// RHSM cell to values — and values has exactly one element.
				ids := dm.MatchIDs(rv, t)
				*trace = append(*trace, Witness{Attr: rv.RHS(), Rule: rv.Name(), MasterID: ids[0]})
			}
			t[rv.RHS()] = values[0]
			zSet.Add(rv.RHS())
			fixed = append(fixed, rv.RHS())
		}

		// Lines 9–15: examine successors of v.
		for _, u := range g.Successors(v) {
			switch state[u] {
			case nodeInUset:
				if zSet.ContainsSet(sigma.Rule(u).PremiseSet()) {
					state[u] = nodeInVset
					vset = append(vset, u)
				}
			case nodeUnusable:
				if zSet.ContainsSet(sigma.Rule(u).PremiseSet()) {
					state[u] = nodeInVset
					vset = append(vset, u)
				} else {
					state[u] = nodeInUset
				}
			}
		}
	}
	return fixed, nil
}

// certainValues collects the distinct values that currently-applicable
// rules (premise validated, pattern matched, master match found) would
// assign to attribute b. More than one value is a consistency violation at
// the current state; TransFix and NaiveFix refuse to pick among them.
// Rules whose premise is not yet validated do not participate — ordering
// conflicts across states are the checkers' concern (§4), not the fixer's.
func certainValues(sigma *rule.Set, dm *master.Data, t relation.Tuple, zSet relation.AttrSet, b int) []relation.Value {
	var values []relation.Value
	for _, ru := range sigma.RulesFixing(b) {
		if !zSet.ContainsSet(ru.PremiseSet()) || !ru.MatchesPattern(t) {
			continue
		}
		for _, v := range dm.RHSValues(ru, t) {
			dup := false
			for _, w := range values {
				if w.Equal(v) {
					dup = true
					break
				}
			}
			if !dup {
				values = append(values, v)
			}
		}
	}
	return values
}
