package cfd

import (
	"fmt"

	"repro/internal/master"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// Set is an indexed collection of CFDs over one schema. CFDs are grouped
// by their lhs signature; within a group, members are hash-indexed on the
// positions that carry constants in every member, so violation detection
// per tuple costs one probe per group instead of a scan over all CFDs
// (master-instantiated sets hold |Σ|·|Dm| constant CFDs).
type Set struct {
	schema *relation.Schema
	cfds   []*CFD
	groups map[string]*group
}

type group struct {
	keyPos  []int            // positions constant in every member
	byKey   map[string][]int // value key -> cfd indexes
	scanIdx []int            // members when keyPos is empty
}

// NewSet builds an indexed set.
func NewSet(schema *relation.Schema, cfds ...*CFD) *Set {
	s := &Set{schema: schema, groups: map[string]*group{}}
	for _, c := range cfds {
		s.Add(c)
	}
	return s
}

// Add inserts a CFD, extending the group indexes.
func (s *Set) Add(c *CFD) {
	idx := len(s.cfds)
	s.cfds = append(s.cfds, c)
	sig := relation.NewAttrSet(c.lhs...).Key() + "→" + itoa(c.rhs)
	g, ok := s.groups[sig]
	if !ok {
		// Key positions: lhs attributes with a constant cell in this CFD;
		// refined to the intersection as members arrive.
		g = &group{keyPos: constPositions(c), byKey: map[string][]int{}}
		s.groups[sig] = g
	} else {
		before := len(g.keyPos)
		g.restrictKeyPos(constPositions(c))
		if len(g.keyPos) != before {
			g.reindex(s.cfds) // key narrowed: rebuild member keys
		}
	}
	g.insert(s.cfds, idx)
}

func constPositions(c *CFD) []int {
	var out []int
	for i := 0; i < c.lhsPat.Len(); i++ {
		pos, cell := c.lhsPat.CellAt(i)
		if cell.Kind == pattern.Const {
			out = append(out, pos)
		}
	}
	return out
}

func (g *group) restrictKeyPos(ps []int) {
	has := relation.NewAttrSet(ps...)
	var keep []int
	for _, p := range g.keyPos {
		if has.Has(p) {
			keep = append(keep, p)
		}
	}
	g.keyPos = keep
}

func (g *group) reindex(all []*CFD) {
	old := g.byKey
	g.byKey = map[string][]int{}
	members := g.scanIdx
	for _, idxs := range old {
		members = append(members, idxs...)
	}
	g.scanIdx = nil
	for _, i := range members {
		g.insert(all, i)
	}
}

func (g *group) insert(all []*CFD, idx int) {
	if len(g.keyPos) == 0 {
		g.scanIdx = append(g.scanIdx, idx)
		return
	}
	c := all[idx]
	vals := make(relation.Tuple, len(g.keyPos))
	for i, p := range g.keyPos {
		cell, _ := c.lhsPat.CellFor(p)
		vals[i] = cell.Val
	}
	k := vals.Key(seq(len(g.keyPos)))
	g.byKey[k] = append(g.byKey[k], idx)
}

// Len returns the number of CFDs.
func (s *Set) Len() int { return len(s.cfds) }

// CFDs returns the backing slice (not a copy).
func (s *Set) CFDs() []*CFD { return s.cfds }

// Schema returns the schema.
func (s *Set) Schema() *relation.Schema { return s.schema }

// ViolationsOf returns the constant CFDs violated by a single tuple,
// using the group indexes.
func (s *Set) ViolationsOf(t relation.Tuple) []*CFD {
	var out []*CFD
	for _, g := range s.groups {
		candidates := g.scanIdx
		if len(g.keyPos) > 0 {
			candidates = g.byKey[t.Key(g.keyPos)]
		}
		for _, i := range candidates {
			if s.cfds[i].ViolatedBy(t) {
				out = append(out, s.cfds[i])
			}
		}
	}
	return out
}

// MatchingConstant returns the constant CFDs whose lhs pattern matches t
// (violated or not) — used by repairs to know the implied rhs values.
func (s *Set) MatchingConstant(t relation.Tuple) []*CFD {
	var out []*CFD
	for _, g := range s.groups {
		candidates := g.scanIdx
		if len(g.keyPos) > 0 {
			candidates = g.byKey[t.Key(g.keyPos)]
		}
		for _, i := range candidates {
			c := s.cfds[i]
			if c.IsConstant() && c.MatchesLHS(t) {
				out = append(out, c)
			}
		}
	}
	return out
}

// FromRules instantiates constant CFDs from editing rules and master
// data: for each rule ((X, Xm) → (B, Bm), tp[Xp]) and each master tuple
// tm compatible with the pattern on the λϕ-mapped attributes, emit
// (X ∪ Xp → B, tp' ‖ tm[Bm]) with tp'[X] = tm[Xm] and tp'[Xp \ X] the
// rule's own cells. This is the constraint view of the rule/master pair —
// what a constraint-based cleaner can see of the same knowledge.
func FromRules(sigma *rule.Set, dm *master.Data) (*Set, error) {
	if !sigma.MasterSchema().Equal(dm.Schema()) {
		return nil, fmt.Errorf("cfd: master schema mismatch")
	}
	r := sigma.Schema()
	out := NewSet(r)
	seen := map[string]bool{}
	for ri, ru := range sigma.Rules() {
		x, xm := ru.LHS(), ru.LHSM()
		tp := ru.Pattern()
		lhsSet := ru.LHSSet().Union(ru.PatternSet())
		lhs := lhsSet.Positions()
		for id := 0; id < dm.Len(); id++ {
			tm := dm.Tuple(id)
			ok := true
			for i := range x {
				if cell, has := tp.CellFor(x[i]); has && !cell.Matches(tm[xm[i]]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			var pos []int
			var cells []pattern.Cell
			for i := range x {
				pos = append(pos, x[i])
				cells = append(cells, pattern.Eq(tm[xm[i]]))
			}
			for i := 0; i < tp.Len(); i++ {
				p, cell := tp.CellAt(i)
				if ru.LHSSet().Has(p) {
					continue // already pinned to the master value
				}
				pos = append(pos, p)
				cells = append(cells, cell)
			}
			lp, err := pattern.NewTuple(pos, cells)
			if err != nil {
				return nil, fmt.Errorf("cfd: rule %s master %d: %w", ru.Name(), id, err)
			}
			rhs := pattern.Eq(tm[ru.RHSM()])
			key := lp.Key() + "⇒" + itoa(ru.RHS()) + ":" + rhs.Val.Encode()
			if seen[key] {
				continue
			}
			seen[key] = true
			c, err := New(fmt.Sprintf("%s#%d", ru.Name(), id), r, lhs, ru.RHS(), lp, rhs)
			if err != nil {
				return nil, fmt.Errorf("cfd: rule %d: %w", ri, err)
			}
			out.Add(c)
		}
	}
	return out, nil
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
