// Package cfd implements conditional functional dependencies — the
// constraint class the paper contrasts editing rules against (§1–2,
// citing Fan et al., TODS 2008) — together with violation detection and
// instantiation of constant CFDs from editing rules and master data. It
// is the substrate of the IncRep repairing baseline (§6 Exp-1(7)).
package cfd

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
	"repro/internal/relation"
)

// CFD is a conditional functional dependency ψ = (X → B, tp) over a
// single schema. The lhs pattern constrains X with constants, negations
// or wildcards; the rhs cell is a constant for a constant CFD (violable
// by a single tuple) or a wildcard for a variable CFD (violable by a pair
// of tuples agreeing on X but not on B).
type CFD struct {
	name    string
	schema  *relation.Schema
	lhs     []int
	rhs     int
	lhsPat  pattern.Tuple
	rhsCell pattern.Cell
}

// New constructs and validates a CFD.
func New(name string, schema *relation.Schema, lhs []int, rhs int, lhsPat pattern.Tuple, rhsCell pattern.Cell) (*CFD, error) {
	lhsSet := relation.NewAttrSet(lhs...)
	if lhsSet.Len() != len(lhs) {
		return nil, fmt.Errorf("cfd %s: duplicate lhs attributes", name)
	}
	if rhs < 0 || rhs >= schema.Arity() {
		return nil, fmt.Errorf("cfd %s: rhs out of range", name)
	}
	if lhsSet.Has(rhs) {
		return nil, fmt.Errorf("cfd %s: rhs occurs in lhs", name)
	}
	for _, p := range lhsPat.Positions() {
		if !lhsSet.Has(p) {
			return nil, fmt.Errorf("cfd %s: pattern constrains non-lhs attribute %d", name, p)
		}
	}
	return &CFD{name: name, schema: schema, lhs: append([]int(nil), lhs...), rhs: rhs, lhsPat: lhsPat, rhsCell: rhsCell}, nil
}

// MustNew is New that panics on error.
func MustNew(name string, schema *relation.Schema, lhs []int, rhs int, lhsPat pattern.Tuple, rhsCell pattern.Cell) *CFD {
	c, err := New(name, schema, lhs, rhs, lhsPat, rhsCell)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the identifier.
func (c *CFD) Name() string { return c.name }

// LHS returns the X positions (copy).
func (c *CFD) LHS() []int { return append([]int(nil), c.lhs...) }

// RHS returns the B position.
func (c *CFD) RHS() int { return c.rhs }

// LHSPattern returns the lhs pattern.
func (c *CFD) LHSPattern() pattern.Tuple { return c.lhsPat }

// RHSCell returns the rhs cell.
func (c *CFD) RHSCell() pattern.Cell { return c.rhsCell }

// IsConstant reports whether the CFD is a constant CFD.
func (c *CFD) IsConstant() bool { return c.rhsCell.Kind == pattern.Const }

// MatchesLHS reports whether t satisfies the lhs pattern.
func (c *CFD) MatchesLHS(t relation.Tuple) bool { return c.lhsPat.Matches(t) }

// ViolatedBy reports whether a single tuple violates a constant CFD:
// the lhs pattern matches but t[B] differs from the rhs constant.
// Variable CFDs are never violated by a single tuple.
func (c *CFD) ViolatedBy(t relation.Tuple) bool {
	if !c.IsConstant() {
		return false
	}
	return c.lhsPat.Matches(t) && !t[c.rhs].Equal(c.rhsCell.Val)
}

// ViolatedByPair reports whether (t1, t2) violate the CFD as a pair: both
// match the lhs pattern, agree on X, and their B values are not both
// compatible with the rhs cell — for a variable CFD, t1[B] ≠ t2[B]; for a
// constant CFD the single-tuple check subsumes this.
func (c *CFD) ViolatedByPair(t1, t2 relation.Tuple) bool {
	if !c.lhsPat.Matches(t1) || !c.lhsPat.Matches(t2) {
		return false
	}
	if !t1.EqualOn(c.lhs, t2) {
		return false
	}
	if c.IsConstant() {
		return !t1[c.rhs].Equal(c.rhsCell.Val) || !t2[c.rhs].Equal(c.rhsCell.Val)
	}
	return !t1[c.rhs].Equal(t2[c.rhs])
}

// String renders the CFD in the conventional (X → B, tp ‖ rhs) form.
func (c *CFD) String() string {
	names := make([]string, len(c.lhs))
	for i, p := range c.lhs {
		names[i] = c.schema.Attr(p).Name
	}
	return fmt.Sprintf("%s: (%s -> %s, %s || %s)",
		c.name, strings.Join(names, ","), c.schema.Attr(c.rhs).Name,
		c.lhsPat.Format(c.schema), c.rhsCell)
}
