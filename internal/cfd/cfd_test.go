package cfd_test

import (
	"strings"
	"testing"

	"repro/internal/cfd"
	"repro/internal/master"
	"repro/internal/paperex"
	"repro/internal/pattern"
	"repro/internal/relation"
)

// acCityCFD is the Example 1 constraint: AC = 020 → city = Ldn.
func acCityCFD(t *testing.T, r *relation.Schema) *cfd.CFD {
	t.Helper()
	lhs := []int{r.MustPos("AC")}
	lp := pattern.MustTuple(lhs, []pattern.Cell{pattern.EqStr("020")})
	return cfd.MustNew("cfd1", r, lhs, r.MustPos("city"), lp, pattern.EqStr("Ldn"))
}

func TestConstantCFDViolation(t *testing.T) {
	r := paperex.SchemaR()
	c := acCityCFD(t, r)
	// t1 has AC = 020 but city = Edi: the Example 1 inconsistency.
	if !c.ViolatedBy(paperex.InputT1()) {
		t.Fatal("t1 must violate (AC=020 → city=Ldn)")
	}
	// t2 has AC = 131: pattern does not apply.
	if c.ViolatedBy(paperex.InputT2()) {
		t.Fatal("t2 must not violate: lhs pattern does not match")
	}
	if !c.IsConstant() {
		t.Fatal("constant CFD misclassified")
	}
	if !strings.Contains(c.String(), "city") {
		t.Errorf("String() = %q", c.String())
	}
}

func TestVariableCFDPairViolation(t *testing.T) {
	r := paperex.SchemaR()
	lhs := []int{r.MustPos("zip")}
	c := cfd.MustNew("v1", r, lhs, r.MustPos("city"), pattern.MustTuple(lhs, []pattern.Cell{pattern.Any}), pattern.Any)
	if c.IsConstant() {
		t.Fatal("variable CFD misclassified")
	}
	t1 := paperex.InputT1() // zip EH7 4AH, city Edi
	t3 := paperex.InputT3() // zip EH7 4AH, city Lnd
	if !c.ViolatedByPair(t1, t3) {
		t.Fatal("equal zips with different cities must violate zip→city")
	}
	if c.ViolatedByPair(t1, t1) {
		t.Fatal("a tuple never pair-violates with itself on equal values")
	}
	if c.ViolatedBy(t1) {
		t.Fatal("variable CFDs have no single-tuple violations")
	}
	t4 := paperex.InputT4()
	if c.ViolatedByPair(t1, t4) {
		t.Fatal("different zips cannot violate")
	}
}

func TestNewCFDValidation(t *testing.T) {
	r := paperex.SchemaR()
	lhs := []int{r.MustPos("AC")}
	lp := pattern.MustTuple(lhs, []pattern.Cell{pattern.Any})
	if _, err := cfd.New("bad", r, []int{0, 0}, 2, pattern.Empty(), pattern.Any); err == nil {
		t.Error("duplicate lhs must be rejected")
	}
	if _, err := cfd.New("bad", r, lhs, r.MustPos("AC"), lp, pattern.Any); err == nil {
		t.Error("rhs in lhs must be rejected")
	}
	if _, err := cfd.New("bad", r, lhs, 99, lp, pattern.Any); err == nil {
		t.Error("rhs out of range must be rejected")
	}
	outside := pattern.MustTuple([]int{r.MustPos("city")}, []pattern.Cell{pattern.Any})
	if _, err := cfd.New("bad", r, lhs, r.MustPos("zip"), outside, pattern.Any); err == nil {
		t.Error("pattern outside lhs must be rejected")
	}
}

func TestFromRulesSigma0(t *testing.T) {
	sigma := paperex.Sigma0()
	dm := master.MustNewForRules(paperex.MasterRelation(), sigma)
	set, err := cfd.FromRules(sigma, dm)
	if err != nil {
		t.Fatal(err)
	}
	// ϕ1–ϕ5 instantiate with both master tuples; ϕ6–ϕ8 with both
	// (AC 131 and 020 both ≠ 0800); ϕ9 with none (no master AC = 0800).
	// 8 rules × 2 masters = 16 constant CFDs.
	if set.Len() != 16 {
		t.Fatalf("instantiated %d CFDs, want 16", set.Len())
	}
	r := sigma.Schema()

	// t1 violates the ϕ1-from-s1 CFD (zip=EH7 4AH → AC=131, t1[AC]=020)
	violated := set.ViolationsOf(paperex.InputT1())
	foundAC := false
	for _, c := range violated {
		if c.RHS() == r.MustPos("AC") {
			foundAC = true
		}
	}
	if !foundAC {
		t.Fatalf("t1 must violate the zip→AC CFD; got %d violations", len(violated))
	}

	// The matching-constant probe sees every CFD whose lhs applies.
	matches := set.MatchingConstant(paperex.InputT1())
	if len(matches) == 0 {
		t.Fatal("t1 must match some instantiated CFDs")
	}
	// t4 matches nothing (no master counterpart).
	if got := set.MatchingConstant(paperex.InputT4()); len(got) != 0 {
		t.Fatalf("t4 matches %d CFDs, want 0", len(got))
	}
}

func TestSetIndexAgreesWithScan(t *testing.T) {
	sigma := paperex.Sigma0()
	dm := master.MustNewForRules(paperex.MasterRelation(), sigma)
	set, err := cfd.FromRules(sigma, dm)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range []relation.Tuple{paperex.InputT1(), paperex.InputT2(), paperex.InputT3(), paperex.InputT4()} {
		indexed := set.ViolationsOf(tup)
		var scanned []*cfd.CFD
		for _, c := range set.CFDs() {
			if c.ViolatedBy(tup) {
				scanned = append(scanned, c)
			}
		}
		if len(indexed) != len(scanned) {
			t.Fatalf("indexed %d vs scanned %d violations for %v", len(indexed), len(scanned), tup)
		}
	}
}
