package monitor_test

import (
	"testing"

	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/paperex"
	"repro/internal/relation"
)

// TestNewForRulesShardedMonitor covers the one-step constructor: a
// sharded master built from the relation, a versioned handle for deltas,
// and fix results identical to the unsharded monitor.
func TestNewForRulesShardedMonitor(t *testing.T) {
	sigma := paperex.Sigma0()
	rel := paperex.MasterRelation()
	m, ver, err := monitor.NewForRules(sigma, rel, monitor.Config{}, master.WithShards(4), master.WithBuildWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := ver.Current().Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	plain, err := monitor.New(sigma, master.MustNewForRules(rel, sigma, master.WithShards(1)), monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	truth := relation.StringTuple(
		"Robert", "Brady", "131", "6884563", "1",
		"51 Elm Row", "Edi", "EH7 4AH", "CD")
	for _, input := range []relation.Tuple{paperex.InputT1(), paperex.InputT2()} {
		a, errA := m.Fix(input, monitor.SimulatedUser{Truth: truth})
		b, errB := plain.Fix(input, monitor.SimulatedUser{Truth: truth})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("error mismatch: sharded %v, unsharded %v", errA, errB)
		}
		if errA != nil {
			continue
		}
		if !a.Tuple.Equal(b.Tuple) || a.Rounds != b.Rounds || a.Completed != b.Completed {
			t.Fatalf("sharded fix %+v differs from unsharded %+v", a, b)
		}
	}

	// The versioned handle publishes deltas the monitor picks up.
	before := ver.Epoch()
	if _, err := ver.Apply([]relation.Tuple{rel.Tuple(0).Clone()}, nil); err != nil {
		t.Fatal(err)
	}
	if ver.Epoch() != before+1 {
		t.Fatalf("epoch %d, want %d", ver.Epoch(), before+1)
	}
}
