package monitor_test

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/paperex"
	"repro/internal/relation"
)

// truthT2 is the ground truth for t2: s1's address block given
// (type, AC, phn), the remainder as entered.
func truthT2() relation.Tuple {
	return relation.StringTuple(
		"Robert", "Brady", "131", "6884563", "1",
		"51 Elm Row", "Edi", "EH7 4AH", "CD")
}

func newVersionedMonitor(t *testing.T, cfg monitor.Config) (*monitor.Monitor, *master.Versioned) {
	t.Helper()
	sigma := paperex.Sigma0()
	ver := master.NewVersioned(master.MustNewForRules(paperex.MasterRelation(), sigma))
	m, err := monitor.NewVersioned(sigma, ver, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, ver
}

// provideTruth answers the session's current suggestion from truth.
func provideTruth(t *testing.T, sess *monitor.Session, truth relation.Tuple) {
	t.Helper()
	attrs := sess.Suggested()
	values := make([]relation.Value, len(attrs))
	for i, p := range attrs {
		values[i] = truth[p]
	}
	if err := sess.Provide(attrs, values); err != nil {
		t.Fatal(err)
	}
}

// finish drives the session to completion with truth and returns the
// result.
func finish(t *testing.T, sess *monitor.Session, truth relation.Tuple) monitor.Result {
	t.Helper()
	for !sess.Done() {
		provideTruth(t, sess, truth)
	}
	return sess.Result()
}

// resultJSON canonicalizes a Result for byte-level comparison (attr sets
// and values marshal canonically regardless of backing layout).
func resultJSON(t *testing.T, r monitor.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSessionStateRoundTrip: a session serialized after round 1 and
// resumed on a *different* monitor over the same (Σ, Dm) finishes with a
// Result byte-identical to the uninterrupted run — for a master-backed
// multi-round fix (t2) and a fresh-entity fix (t4).
func TestSessionStateRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		input relation.Tuple
		truth relation.Tuple
	}{
		{"t2-master-backed", paperex.InputT2(), truthT2()},
		{"t4-fresh-entity", paperex.InputT4(), paperex.InputT4()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m1 := newMonitor(t, monitor.Config{})
			want, err := m1.Fix(c.input, monitor.SimulatedUser{Truth: c.truth})
			if err != nil {
				t.Fatal(err)
			}
			if want.Rounds < 2 {
				t.Fatalf("fixture must need ≥ 2 rounds to exercise suspension, got %d", want.Rounds)
			}

			sess, err := m1.NewSession(c.input)
			if err != nil {
				t.Fatal(err)
			}
			provideTruth(t, sess, c.truth)

			// Suspend: state → JSON → fresh monitor in a "different
			// process" (same rules, same master relation).
			blob, err := json.Marshal(sess.State())
			if err != nil {
				t.Fatal(err)
			}
			var st monitor.SessionState
			if err := json.Unmarshal(blob, &st); err != nil {
				t.Fatal(err)
			}
			m2 := newMonitor(t, monitor.Config{})
			resumed, err := m2.ResumeSession(&st, monitor.ResumeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Rounds() != 1 {
				t.Fatalf("resumed rounds = %d, want 1", resumed.Rounds())
			}
			got := finish(t, resumed, c.truth)
			if resultJSON(t, got) != resultJSON(t, want) {
				t.Fatalf("resumed result differs from uninterrupted run:\n got  %s\n want %s",
					resultJSON(t, got), resultJSON(t, want))
			}
		})
	}
}

// TestSessionResumeRePinsEpoch: a session suspended at epoch e keeps
// observing epoch e after resume even when the master head has moved on
// — the resumed run is byte-identical to an uninterrupted run that saw
// only epoch e.
func TestSessionResumeRePinsEpoch(t *testing.T) {
	m, ver := newVersionedMonitor(t, monitor.Config{})
	input, truth := paperex.InputT2(), truthT2()

	want, err := m.Fix(input, monitor.SimulatedUser{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}

	sess, err := m.NewSession(input)
	if err != nil {
		t.Fatal(err)
	}
	e0 := sess.Epoch()
	provideTruth(t, sess, truth)
	blob, err := json.Marshal(sess.State())
	if err != nil {
		t.Fatal(err)
	}

	// The master moves on underneath the suspended session: every master
	// tuple is deleted, so a session observing the head would behave
	// completely differently.
	if _, err := ver.Apply(nil, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if ver.Current().Len() != 0 {
		t.Fatalf("head |Dm| = %d, want 0", ver.Current().Len())
	}

	var st monitor.SessionState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	resumed, err := m.ResumeSession(&st, monitor.ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Epoch() != e0 {
		t.Fatalf("resumed epoch = %d, want the original %d", resumed.Epoch(), e0)
	}
	got := finish(t, resumed, truth)
	if resultJSON(t, got) != resultJSON(t, want) {
		t.Fatalf("resume under concurrent update diverged:\n got  %s\n want %s",
			resultJSON(t, got), resultJSON(t, want))
	}
}

// TestSessionResumeEvictedEpoch: when the ring no longer retains the
// session's epoch, resume fails with ErrEpochEvicted — and the
// RebaseToHead escape hatch re-pins the head instead.
func TestSessionResumeEvictedEpoch(t *testing.T) {
	m, ver := newVersionedMonitor(t, monitor.Config{})
	ver.SetHistory(1)
	input, truth := paperex.InputT2(), truthT2()

	sess, err := m.NewSession(input)
	if err != nil {
		t.Fatal(err)
	}
	provideTruth(t, sess, truth)
	st := sess.State()

	if _, err := ver.Apply([]relation.Tuple{relation.StringTuple(
		"Jane", "Doe", "999", "5551234", "070000000",
		"1 Test St", "Tst", "ZZ1 1ZZ", "01/01/70", "F")}, nil); err != nil {
		t.Fatal(err)
	}

	if _, err := m.ResumeSession(st, monitor.ResumeOptions{}); !errors.Is(err, master.ErrEpochEvicted) {
		t.Fatalf("resume after eviction = %v, want ErrEpochEvicted", err)
	}

	resumed, err := m.ResumeSession(st, monitor.ResumeOptions{RebaseToHead: true})
	if err != nil {
		t.Fatalf("rebase-to-head resume: %v", err)
	}
	if resumed.Epoch() != ver.Epoch() {
		t.Fatalf("rebased epoch = %d, want head %d", resumed.Epoch(), ver.Epoch())
	}
	res := finish(t, resumed, truth)
	if !res.Completed {
		t.Fatal("rebased session must still complete")
	}
	if !res.Tuple.Equal(truth) {
		t.Fatalf("rebased fix %v != truth %v", res.Tuple, truth)
	}
}

// TestSessionStateAbortAndDone: an aborted session's state round-trips —
// the resumed session is done, incomplete, and rejects further rounds
// with ErrSessionDone.
func TestSessionStateAbortAndDone(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	sess, err := m.NewSession(paperex.InputT1())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Provide(nil, nil); err != nil { // the users decline
		t.Fatal(err)
	}
	if !sess.Done() {
		t.Fatal("abort must finish the session")
	}
	if sess.Result().Completed {
		t.Fatal("abort must not report completion")
	}

	resumed, err := m.ResumeSession(sess.State(), monitor.ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Done() || resumed.Result().Completed {
		t.Fatal("aborted state must resume as done and incomplete")
	}
	err = resumed.Provide([]int{0}, []relation.Value{relation.Null})
	if !errors.Is(err, monitor.ErrSessionDone) {
		t.Fatalf("Provide on resumed done session = %v, want ErrSessionDone", err)
	}
}

// TestSessionMaxRoundsCap: the round cap finishes the session incomplete
// — directly and across a suspend/resume boundary (the cap travels in
// the state).
func TestSessionMaxRoundsCap(t *testing.T) {
	m := newMonitor(t, monitor.Config{MaxRounds: 1})
	sess, err := m.NewSession(paperex.InputT4())
	if err != nil {
		t.Fatal(err)
	}
	provideTruth(t, sess, paperex.InputT4())
	if !sess.Done() {
		t.Fatal("MaxRounds=1 must finish after one round")
	}
	if res := sess.Result(); res.Completed {
		t.Fatal("t4 cannot complete in one round; the cap must cut it off incomplete")
	}

	// The cap is session state, not monitor config: resuming on a
	// monitor with a laxer default keeps the original cap.
	m2, err2 := monitor.New(paperex.Sigma0(),
		master.MustNewForRules(paperex.MasterRelation(), paperex.Sigma0()),
		monitor.Config{MaxRounds: 2})
	if err2 != nil {
		t.Fatal(err2)
	}
	capped, err := m2.NewSession(paperex.InputT4())
	if err != nil {
		t.Fatal(err)
	}
	provideTruth(t, capped, paperex.InputT4())
	st := capped.State()
	if st.MaxRounds != 2 {
		t.Fatalf("state MaxRounds = %d", st.MaxRounds)
	}
	resumed, err := m.ResumeSession(st, monitor.ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	provideTruth(t, resumed, paperex.InputT4())
	if !resumed.Done() || resumed.Rounds() != 2 {
		t.Fatalf("resumed session must honor its own cap: done=%v rounds=%d",
			resumed.Done(), resumed.Rounds())
	}
}

// TestResumeSessionValidation: malformed states are rejected with
// ErrBadState (and ErrArityMismatch where the shape is wrong).
func TestResumeSessionValidation(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	sess, err := m.NewSession(paperex.InputT1())
	if err != nil {
		t.Fatal(err)
	}
	good := sess.State()

	if _, err := m.ResumeSession(nil, monitor.ResumeOptions{}); !errors.Is(err, monitor.ErrBadState) {
		t.Fatalf("nil state = %v", err)
	}

	bad := *good
	bad.Version = 99
	if _, err := m.ResumeSession(&bad, monitor.ResumeOptions{}); !errors.Is(err, monitor.ErrBadState) {
		t.Fatalf("unknown version = %v", err)
	}

	bad = *good
	bad.Tuple = relation.StringTuple("short")
	_, err = m.ResumeSession(&bad, monitor.ResumeOptions{})
	if !errors.Is(err, monitor.ErrBadState) || !errors.Is(err, monitor.ErrArityMismatch) {
		t.Fatalf("short tuple = %v, want ErrBadState and ErrArityMismatch", err)
	}

	bad = *good
	bad.Suggested = []int{99}
	if _, err := m.ResumeSession(&bad, monitor.ResumeOptions{}); !errors.Is(err, monitor.ErrBadState) {
		t.Fatalf("out-of-range suggestion = %v", err)
	}

	bad = *good
	bad.Z = relation.NewAttrSet(64)
	if _, err := m.ResumeSession(&bad, monitor.ResumeOptions{}); !errors.Is(err, monitor.ErrBadState) {
		t.Fatalf("out-of-range z = %v", err)
	}

	bad = *good
	bad.Rounds = -1
	if _, err := m.ResumeSession(&bad, monitor.ResumeOptions{}); !errors.Is(err, monitor.ErrBadState) {
		t.Fatalf("negative rounds = %v", err)
	}
}

// TestSessionTypedErrors: the session sentinels are observable through
// errors.Is on the ordinary entry points.
func TestSessionTypedErrors(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	if _, err := m.NewSession(relation.StringTuple("short")); !errors.Is(err, monitor.ErrArityMismatch) {
		t.Fatalf("NewSession short = %v, want ErrArityMismatch", err)
	}
	sess, err := m.NewSession(paperex.InputT1())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Provide([]int{0, 1}, []relation.Value{relation.Null}); !errors.Is(err, monitor.ErrArityMismatch) {
		t.Fatalf("misaligned Provide = %v, want ErrArityMismatch", err)
	}
	if err := sess.Provide([]int{99}, []relation.Value{relation.Null}); !errors.Is(err, monitor.ErrArityMismatch) {
		t.Fatalf("out-of-range Provide = %v, want ErrArityMismatch", err)
	}
}

// TestProvideFailureLeavesSessionUntouched: a rejected Provide must not
// half-apply assertions — long-lived sessions retry after input errors.
func TestProvideFailureLeavesSessionUntouched(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	sess, err := m.NewSession(paperex.InputT1())
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Tuple()
	err = sess.Provide([]int{0, 99}, []relation.Value{relation.String("phantom"), relation.Null})
	if !errors.Is(err, monitor.ErrArityMismatch) {
		t.Fatalf("err = %v", err)
	}
	if sess.Rounds() != 0 || sess.Validated().Len() != 0 {
		t.Fatalf("failed Provide mutated the session: rounds=%d validated=%v",
			sess.Rounds(), sess.Validated().Positions())
	}
	if !sess.Tuple().Equal(before) {
		t.Fatalf("failed Provide mutated the tuple: %v", sess.Tuple())
	}
	if res := sess.Result(); res.UserValidated.Len() != 0 {
		t.Fatalf("phantom user validation leaked into Result: %v", res.UserValidated.Positions())
	}
}

// TestResumeMissingCapUsesMonitorConfig: a token without a round cap
// falls back to the resuming monitor's configured MaxRounds, not the
// arity default.
func TestResumeMissingCapUsesMonitorConfig(t *testing.T) {
	m := newMonitor(t, monitor.Config{MaxRounds: 1})
	sess, err := m.NewSession(paperex.InputT4())
	if err != nil {
		t.Fatal(err)
	}
	st := sess.State()
	st.MaxRounds = 0 // a hand-built token omitting the field
	resumed, err := m.ResumeSession(st, monitor.ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	provideTruth(t, resumed, paperex.InputT4())
	if !resumed.Done() || resumed.Result().Completed {
		t.Fatalf("configured cap must apply: done=%v rounds=%d", resumed.Done(), resumed.Rounds())
	}
}
