package monitor_test

import (
	"testing"

	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/paperex"
	"repro/internal/relation"
)

// truthT1 is the ground truth for t1: every attribute as the master data
// and the narrative of Examples 2/4 imply.
func truthT1() relation.Tuple {
	return relation.StringTuple(
		"Robert", "Brady", "131", "079172485", "2",
		"51 Elm Row", "Edi", "EH7 4AH", "CD")
}

func newMonitor(t *testing.T, cfg monitor.Config) *monitor.Monitor {
	t.Helper()
	sigma := paperex.Sigma0()
	dm := master.MustNewForRules(paperex.MasterRelation(), sigma)
	m, err := monitor.New(sigma, dm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCertainFixT1OneRound: t1's truth matches master tuple s1, so after
// the users validate the initial region (phn, type, item, zip) every
// other attribute is fixed automatically in a single round.
func TestCertainFixT1OneRound(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	res, err := m.Fix(paperex.InputT1(), monitor.SimulatedUser{Truth: truthT1()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("fix must complete")
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (t1 matches master)", res.Rounds)
	}
	if !res.Tuple.Equal(truthT1()) {
		t.Fatalf("fixed tuple %v != truth %v", res.Tuple, truthT1())
	}
	r := m.Deriver().Sigma().Schema()
	// Rules fixed FN, LN, AC, str, city (5 attrs); users validated 4.
	if res.AutoFixed.Len() != 5 {
		t.Fatalf("auto-fixed %v, want 5 attrs", res.AutoFixed.Names(r))
	}
	if res.UserValidated.Len() != 4 {
		t.Fatalf("user-validated %v, want 4 attrs", res.UserValidated.Names(r))
	}
}

// TestCertainFixNonMasterTuple: a tuple with no master counterpart cannot
// be auto-fixed; the framework walks the users through validating
// everything, never inventing values.
func TestCertainFixNonMasterTuple(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	truth := paperex.InputT4() // t4: nothing applies
	res, err := m.Fix(paperex.InputT4(), monitor.SimulatedUser{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("fix must complete via user validation")
	}
	if !res.Tuple.Equal(truth) {
		t.Fatalf("tuple changed: %v", res.Tuple)
	}
	if res.AutoFixed.Len() != 0 {
		t.Fatalf("no attribute should be auto-fixed, got %v", res.AutoFixed.Positions())
	}
	if res.Rounds < 2 {
		t.Fatalf("rounds = %d; t4 needs extra rounds to validate the rest", res.Rounds)
	}
}

// TestCertainFixDirtyValuesCorrected: t1 with extra injected errors in
// rule-covered attributes is still fully corrected.
func TestCertainFixDirtyValuesCorrected(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	r := m.Deriver().Sigma().Schema()
	dirty := paperex.InputT1()
	dirty[r.MustPos("city")] = relation.String("Glasgow") // extra error
	dirty[r.MustPos("LN")] = relation.String("Bradey")    // typo
	res, err := m.Fix(dirty, monitor.SimulatedUser{Truth: truthT1()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !res.Tuple.Equal(truthT1()) {
		t.Fatalf("completed=%v tuple=%v", res.Completed, res.Tuple)
	}
}

// TestCertainFixPlusMatchesCertainFix: the BDD-cached variant returns the
// same results, and the cache actually hits on a stream of tuples.
func TestCertainFixPlusMatchesCertainFix(t *testing.T) {
	plain := newMonitor(t, monitor.Config{})
	plus := newMonitor(t, monitor.Config{UseBDD: true})

	// t4 needs multiple rounds, so repeated t4s exercise the cache.
	inputs := []relation.Tuple{paperex.InputT1(), paperex.InputT4(), paperex.InputT4(), paperex.InputT4()}
	truths := []relation.Tuple{truthT1(), paperex.InputT4(), paperex.InputT4(), paperex.InputT4()}

	for i := range inputs {
		a, err := plain.Fix(inputs[i], monitor.SimulatedUser{Truth: truths[i]})
		if err != nil {
			t.Fatal(err)
		}
		b, err := plus.Fix(inputs[i], monitor.SimulatedUser{Truth: truths[i]})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Tuple.Equal(b.Tuple) {
			t.Fatalf("tuple %d: CertainFix %v != CertainFix+ %v", i, a.Tuple, b.Tuple)
		}
		if a.Rounds != b.Rounds {
			t.Fatalf("tuple %d: rounds %d != %d", i, a.Rounds, b.Rounds)
		}
	}
	hits, misses := plus.CacheStats()
	if hits == 0 {
		t.Fatalf("BDD cache never hit (hits=%d misses=%d)", hits, misses)
	}
	if h, ms := plain.CacheStats(); h != 0 || ms != 0 {
		t.Fatal("plain monitor must not use a cache")
	}
}

// overAssertingUser validates the suggestion plus extra attributes, the
// "S may not be sug" case of §5.
type overAssertingUser struct {
	truth relation.Tuple
	extra []int
}

func (u overAssertingUser) Assert(_ relation.Tuple, suggested []int) ([]int, []relation.Value) {
	s := append(append([]int(nil), suggested...), u.extra...)
	values := make([]relation.Value, len(s))
	for i, p := range s {
		values[i] = u.truth[p]
	}
	return s, values
}

// TestConflictRoutedToUser: when the users additionally assert t3's AC,
// the validated region becomes (Z_AHZ)-like — zip points at s1 while
// (AC, phn) points at s2, so ϕ2/ϕ3 and ϕ6/ϕ7 disagree on str and city
// (Example 10). The framework must route the disputed attributes to the
// users instead of guessing, and the user-asserted values must survive.
func TestConflictRoutedToUser(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	r := m.Deriver().Sigma().Schema()
	truth := paperex.InputT3() // declare t3's current values the truth
	user := overAssertingUser{truth: truth, extra: []int{r.MustPos("AC")}}
	res, err := m.Fix(paperex.InputT3(), user)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("fix must complete")
	}
	if !res.Tuple.Equal(truth) {
		t.Fatalf("conflicting rules must not overwrite user truth:\n got  %v\n want %v", res.Tuple, truth)
	}
	if res.Rounds < 2 {
		t.Fatalf("rounds = %d; the conflict needs at least one extra round", res.Rounds)
	}
}

// TestMonitorResultSnapshots: per-round stats are recorded monotonically.
func TestMonitorResultSnapshots(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	res, err := m.Fix(paperex.InputT4(), monitor.SimulatedUser{Truth: paperex.InputT4()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRound) != res.Rounds {
		t.Fatalf("per-round stats %d != rounds %d", len(res.PerRound), res.Rounds)
	}
	for i := 1; i < len(res.PerRound); i++ {
		prev, cur := res.PerRound[i-1], res.PerRound[i]
		if !cur.UserValidated.ContainsSet(prev.UserValidated) {
			t.Fatal("user-validated set must grow monotonically")
		}
		if !cur.AutoFixed.ContainsSet(prev.AutoFixed) {
			t.Fatal("auto-fixed set must grow monotonically")
		}
	}
}

// TestMonitorArityCheck: wrong arity is rejected.
func TestMonitorArityCheck(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	if _, err := m.Fix(relation.StringTuple("too", "short"), monitor.SimulatedUser{Truth: truthT1()}); err == nil {
		t.Fatal("want arity error")
	}
}

// TestInitialRegionIndexClamped: an out-of-range region index — too
// large or negative — clamps instead of panicking at the first session.
func TestInitialRegionIndexClamped(t *testing.T) {
	for _, idx := range []int{99, -1} {
		m := newMonitor(t, monitor.Config{InitialRegion: idx})
		res, err := m.Fix(paperex.InputT1(), monitor.SimulatedUser{Truth: truthT1()})
		if err != nil || !res.Completed {
			t.Fatalf("InitialRegion=%d: res=%v err=%v", idx, res, err)
		}
	}
}
