package monitor_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/paperex"
	"repro/internal/relation"
)

// BenchmarkSessionRounds measures the per-round hot path (Provide:
// assertions, consistency check, TransFix cascade, next suggestion,
// dedup merge) by driving multi-round t4 sessions to completion.
func BenchmarkSessionRounds(b *testing.B) {
	sigma := paperex.Sigma0()
	m, err := monitor.New(sigma, master.MustNewForRules(paperex.MasterRelation(), sigma), monitor.Config{})
	if err != nil {
		b.Fatal(err)
	}
	input, truth := paperex.InputT4(), paperex.InputT4()
	user := monitor.SimulatedUser{Truth: truth}

	b.ReportAllocs()
	rounds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Fix(input, user)
		if err != nil {
			b.Fatal(err)
		}
		rounds += res.Rounds
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(rounds)/float64(b.N), "rounds/fix")
	}
}

// TestFixCtxCancellation: FixCtx and FixBatchCtx observe the context at
// round boundaries.
func TestFixCtxCancellation(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.FixCtx(ctx, paperex.InputT1(), monitor.SimulatedUser{Truth: truthT1()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("FixCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	inputs := []relation.Tuple{paperex.InputT1(), paperex.InputT4()}
	_, err := m.FixBatchCtx(ctx, inputs, func(i int) monitor.User {
		return monitor.SimulatedUser{Truth: inputs[i]}
	}, monitor.BatchOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FixBatchCtx on cancelled ctx = %v, want context.Canceled", err)
	}

	// An open context leaves behavior identical to Fix.
	res, err := m.FixCtx(context.Background(), paperex.InputT1(), monitor.SimulatedUser{Truth: truthT1()})
	if err != nil || !res.Completed {
		t.Fatalf("FixCtx(Background) res=%+v err=%v", res, err)
	}
}

// TestFixStreamCtxCancellation: stream workers shut down and close the
// output channel when the context dies, even though the input channel
// stays open.
func TestFixStreamCtxCancellation(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan monitor.StreamRequest) // never closed by the test
	out := m.FixStreamCtx(ctx, in, monitor.BatchOptions{Workers: 2})

	in <- monitor.StreamRequest{ID: 1, Tuple: paperex.InputT1(), User: monitor.SimulatedUser{Truth: truthT1()}}
	first := <-out
	if first.Err != nil || !first.Result.Completed {
		t.Fatalf("first stream result: %+v", first)
	}
	cancel()
	for range out {
		// drain whatever was in flight; the channel must close
	}
}
