package monitor_test

import (
	"testing"

	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/internal/rule"
)

// TestMaxRoundsCap: a tight round cap ends the session incomplete rather
// than looping.
func TestMaxRoundsCap(t *testing.T) {
	m := newMonitor(t, monitor.Config{MaxRounds: 1})
	// t4 needs multiple rounds; with cap 1 it must stop incomplete.
	res, err := m.Fix(paperex.InputT4(), monitor.SimulatedUser{Truth: paperex.InputT4()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	if res.Completed {
		t.Fatal("capped run must not report completion")
	}
}

// TestMonitorDegeneratesWithoutRules: with an empty Σ the only certain
// region is the whole schema — the framework soundly degenerates to
// fully manual validation rather than inventing fixes.
func TestMonitorDegeneratesWithoutRules(t *testing.T) {
	r := relation.StringSchema("R", "A", "B")
	rm := relation.StringSchema("Rm", "Am", "Bm")
	sigma := rule.MustNewSet(r, rm) // empty Σ
	rel := relation.NewRelation(rm)
	rel.MustAppend(relation.StringTuple("x", "y"))
	dm := master.MustNewForRules(rel, sigma)
	m, err := monitor.New(sigma, dm, monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Regions()[0].Z); got != r.Arity() {
		t.Fatalf("degenerate region |Z| = %d, want the full arity %d", got, r.Arity())
	}
	truth := relation.StringTuple("p", "q")
	res, err := m.Fix(relation.StringTuple("bad", "bad"), monitor.SimulatedUser{Truth: truth})
	if err != nil || !res.Completed || !res.Tuple.Equal(truth) {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if res.Rounds != 1 || res.AutoFixed.Len() != 0 {
		t.Fatalf("manual fix should take 1 round with no rule fixes: %+v", res)
	}
}

// TestMonitorRegionsRanked: the candidate list is sorted by quality and
// the greedy region (when distinct) ranks below the best.
func TestMonitorRegionsRanked(t *testing.T) {
	sigma := paperex.Sigma0()
	dm := master.MustNewForRules(paperex.MasterRelation(), sigma)
	m, err := monitor.New(sigma, dm, monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	regions := m.Regions()
	for i := 1; i < len(regions); i++ {
		if regions[i].Quality > regions[i-1].Quality {
			t.Fatal("regions must be sorted by quality descending")
		}
	}
}

// TestUserAssertsOutsideSuggestion: the users may validate attributes the
// framework did not ask about; the extra assertions count and cascade.
func TestUserAssertsOutsideSuggestion(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	r := m.Deriver().Sigma().Schema()
	truth := truthT1()
	user := overAssertingUser{truth: truth, extra: r.MustPosList("FN", "LN")}
	res, err := m.Fix(paperex.InputT1(), user)
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if !res.UserValidated.Has(r.MustPos("FN")) {
		t.Fatal("extra user assertions must be recorded")
	}
	if !res.Tuple.Equal(truth) {
		t.Fatalf("tuple = %v", res.Tuple)
	}
}

// TestMonitorHandlesRegionWithPatternRows: a monitor built over Σ0 still
// fixes tuples that match derived per-master pattern rows (smoke test for
// the intensional-tableau path through ConsistentRow).
func TestMonitorHandlesRegionWithPatternRows(t *testing.T) {
	sigma := paperex.Sigma0()
	dm := master.MustNewForRules(paperex.MasterRelation(), sigma)
	m, err := monitor.New(sigma, dm, monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the deriver's CertainRow agrees with an explicitly built
	// Example-9 row for the best region's Z when it is zip+phn+type+item.
	r := sigma.Schema()
	best := m.Regions()[0]
	want := relation.NewAttrSet(r.MustPosList("zip", "phn", "type", "item")...)
	if !best.ZSet.Equal(want) {
		t.Skipf("best region is %v; pattern-row check targets the Example 9 region", best.ZSet.Names(r))
	}
	// Values aligned with best.Z's own attribute order.
	byName := map[string]relation.Value{
		"zip":  relation.String("EH7 4AH"),
		"phn":  relation.String("079172485"),
		"type": relation.String("2"),
		"item": relation.String("CD"),
	}
	vals := make([]relation.Value, len(best.Z))
	for i, p := range best.Z {
		vals[i] = byName[r.Attr(p).Name]
	}
	if !m.Deriver().CertainRow(best.Z, vals) {
		t.Fatal("Example 9 values must be a certain row of the best region")
	}
}
