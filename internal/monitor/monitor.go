// Package monitor implements the interactive data-monitoring framework of
// §5 (Fig. 2/3): algorithm CertainFix and its optimized variant
// CertainFix+ (Suggest+ with the BDD cache). An input tuple is fixed at
// the point of entry by alternating user assertions (a User implementation
// answers suggestions with asserted-correct attribute values) with
// TransFix cascades, until every attribute is validated — by the users or
// by editing rules and master data.
package monitor

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/authtree"
	"repro/internal/bdd"
	"repro/internal/fix"
	"repro/internal/master"
	"repro/internal/relation"
	"repro/internal/rule"
	"repro/internal/suggest"
)

// User supplies feedback: given the current tuple and a suggested
// attribute set, it returns the attributes it asserts correct together
// with their correct values (aligned slices). Returning a different set
// than suggested is allowed (§5: "S may not necessarily be the same as
// sug"); returning no attributes aborts the fix.
//
// Lifetime contract: the tuple passed to Assert is working scratch owned
// by the session — it is only valid for the duration of the call and is
// reused afterwards (FixBatch/FixStream recycle it for other tuples).
// Implementations that need the values later must copy them (Clone).
type User interface {
	Assert(t relation.Tuple, suggested []int) (s []int, values []relation.Value)
}

// SimulatedUser answers every suggestion with the ground-truth values, the
// protocol of §6 ("user feedback was simulated by providing the correct
// values of the given suggestions").
type SimulatedUser struct {
	Truth relation.Tuple
}

// Assert implements User.
func (u SimulatedUser) Assert(_ relation.Tuple, suggested []int) ([]int, []relation.Value) {
	values := make([]relation.Value, len(suggested))
	for i, p := range suggested {
		values[i] = u.Truth[p]
	}
	return suggested, values
}

// RoundStat snapshots the state after one round of interaction.
type RoundStat struct {
	Suggested     []int            // attributes recommended this round
	UserValidated relation.AttrSet // everything the users asserted so far
	AutoFixed     relation.AttrSet // everything rules fixed so far
	Tuple         relation.Tuple   // tuple state at end of round
}

// Witness is one AutoFixed attribute's provenance: the rule that fired,
// the master tuple that supplied the value, and — when the session's
// snapshot is authenticated — an inclusion proof tying that tuple to the
// snapshot's Merkle root. Together with Result.Root this is everything a
// client needs to re-check the fix without trusting the server
// (pkg/certainfix.VerifyFix).
type Witness struct {
	// Attr is the tuple position the rule fixed.
	Attr int `json:"attr"`
	// Rule is the editing rule's name.
	Rule string `json:"rule"`
	// MasterID is the witnessing master tuple's id at the fix's epoch.
	MasterID int `json:"master_id"`
	// Master is that tuple's content (a copy).
	Master relation.Tuple `json:"master"`
	// Proof is the tuple's inclusion proof under Result.Root; nil when the
	// snapshot is unauthenticated.
	Proof *authtree.Proof `json:"proof,omitempty"`
}

// Result is the outcome of fixing one tuple.
type Result struct {
	Tuple         relation.Tuple // final tuple
	Rounds        int            // user interaction rounds used
	Completed     bool           // every attribute validated
	UserValidated relation.AttrSet
	AutoFixed     relation.AttrSet
	PerRound      []RoundStat

	// Epoch is the master epoch the session was pinned to.
	Epoch uint64
	// Root is the hex Merkle root of that snapshot, empty when it is
	// unauthenticated.
	Root string
	// Provenance holds one Witness per AutoFixed attribute, in the order
	// the rules fired.
	Provenance []Witness
}

// Config tunes the monitor.
type Config struct {
	// InitialRegion selects which precomputed certain region seeds the
	// first suggestion: 0 = highest quality (CRHQ), the Exp-1(2) CRMQ
	// variant passes the median index.
	InitialRegion int
	// UseBDD enables the Suggest+ cache (CertainFix+ of §5.2).
	UseBDD bool
	// BDDMaxNodes bounds the cache (0 = default).
	BDDMaxNodes int
	// MaxRounds caps interaction rounds (0 = arity + 1).
	MaxRounds int
}

// Monitor fixes input tuples for a fixed (Σ, Dm). Safe for concurrent use
// by multiple goroutines (the BDD cache is internally locked).
type Monitor struct {
	deriver *suggest.Deriver
	graph   *rule.DepGraph
	initial []suggest.Candidate
	cache   *bdd.Cache
	cfg     Config
}

// New builds a monitor over a static master snapshot: it precomputes the
// dependency graph, the certain regions (CompCRegion) and, for
// CertainFix+, the BDD cache. These are computed once and reused for
// every input tuple, as the paper prescribes.
func New(sigma *rule.Set, dm *master.Data, cfg Config) (*Monitor, error) {
	return build(suggest.NewDeriver(sigma, dm), sigma, cfg)
}

// NewForRules builds the sharded master data for (Σ, rel) — threading
// master build options such as master.WithShards, the knob batch
// deployments tune alongside BatchOptions.Workers — wraps it in a
// Versioned handle and returns a monitor over it plus the handle for
// publishing master deltas. Shard count never changes fix results; it
// buys parallel builds and shard-local maintenance at large |Dm|.
func NewForRules(sigma *rule.Set, rel *relation.Relation, cfg Config, opts ...master.BuildOption) (*Monitor, *master.Versioned, error) {
	dm, err := master.NewForRules(rel, sigma, opts...)
	if err != nil {
		return nil, nil, err
	}
	ver := master.NewVersioned(dm)
	m, err := NewVersioned(sigma, ver, cfg)
	if err != nil {
		return nil, nil, err
	}
	return m, ver, nil
}

// NewVersioned builds a monitor over versioned master data: each new
// session (one per tuple, including FixBatch/FixStream items) pins the
// master snapshot current at its start, so in-flight sessions keep a
// consistent view while later tuples pick up published updates. The
// certain regions seeding the first suggestion are derived once, from
// the construction-time snapshot: region skeletons depend on Σ's
// structure plus per-rule pattern support, which master corrections
// rarely flip — and every suggestion is re-derived against the session's
// pinned snapshot anyway, so stale seeds cost extra rounds, never
// correctness.
func NewVersioned(sigma *rule.Set, ver *master.Versioned, cfg Config) (*Monitor, error) {
	return build(suggest.NewDeriverVersioned(sigma, ver), sigma, cfg)
}

func build(d *suggest.Deriver, sigma *rule.Set, cfg Config) (*Monitor, error) {
	cands := d.CompCRegions()
	if len(cands) == 0 {
		return nil, fmt.Errorf("monitor: no certain region derivable from (Σ, Dm); every input would need full manual validation")
	}
	// Widen the quality spectrum with the greedy region when it differs:
	// the candidate list then always offers lower-quality alternatives
	// (the CRMQ selection of §6 Exp-1(2)).
	g := d.GRegion()
	distinct := true
	for _, c := range cands {
		if c.ZSet.Equal(g.ZSet) {
			distinct = false
			break
		}
	}
	if distinct && len(g.Z) > 0 {
		cands = append(cands, g)
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].Quality > cands[j].Quality })
	}
	if cfg.InitialRegion >= len(cands) {
		cfg.InitialRegion = len(cands) - 1
	}
	if cfg.InitialRegion < 0 {
		cfg.InitialRegion = 0
	}
	m := &Monitor{
		deriver: d,
		graph:   rule.NewDepGraph(sigma),
		initial: cands,
		cfg:     cfg,
	}
	if cfg.UseBDD {
		m.cache = bdd.NewCache(cfg.BDDMaxNodes)
	}
	return m, nil
}

// Deriver exposes the underlying suggestion engine.
func (m *Monitor) Deriver() *suggest.Deriver { return m.deriver }

// DepGraph exposes the precomputed rule dependency graph.
func (m *Monitor) DepGraph() *rule.DepGraph { return m.graph }

// Regions returns the precomputed certain-region candidates, best first.
func (m *Monitor) Regions() []suggest.Candidate { return m.initial }

// CacheStats reports BDD hits/misses (zero when UseBDD is off).
func (m *Monitor) CacheStats() (hits, misses int) {
	if m.cache == nil {
		return 0, 0
	}
	return m.cache.Stats()
}

// Fix runs algorithm CertainFix (Fig. 3) on one tuple by driving a
// Session with the User callback: each round recommends a suggestion
// (line 4), collects the asserted attributes and values (line 5), checks
// for a unique fix and cascades TransFix (lines 6–7), finishing when Z'
// covers R (lines 8–10). The input tuple is not mutated.
//
// Two consecutive rounds in which TransFix fixes nothing indicate the
// tuple lies outside the master data's reach (a fresh entity); the
// framework then asks for the remainder at once instead of probing one
// candidate key per round. This bounds interactions the way §6 reports
// (≤ 3 rounds for dblp, ≤ 4 for hosp). Conflicting rules are never
// resolved by guessing: the disputed attribute joins the next suggestion.
func (m *Monitor) Fix(input relation.Tuple, user User) (Result, error) {
	return m.FixCtx(context.Background(), input, user)
}

// FixCtx is Fix with cancellation: the context is checked before every
// interaction round, so a deadline or cancellation interrupts the fix
// between rounds (never mid-round — rounds are short and atomic). An
// interrupted fix returns ctx.Err(); to suspend instead of abandon, use
// a Session and serialize its State.
func (m *Monitor) FixCtx(ctx context.Context, input relation.Tuple, user User) (Result, error) {
	sess, err := m.NewSession(input)
	if err != nil {
		return Result{}, err
	}
	return driveSession(ctx, sess, user)
}

// driveSession runs the callback interaction loop over a session — the
// wrapper that makes the callback API a client of the session API.
func driveSession(ctx context.Context, sess *Session, user User) (Result, error) {
	for !sess.Done() {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		attrs, values := user.Assert(sess.t, sess.Suggested())
		if err := sess.Provide(attrs, values); err != nil {
			return Result{}, err
		}
	}
	return sess.Result(), nil
}

// nextSuggestion runs Suggest, or Suggest+ when the BDD cache is enabled,
// against the session's deriver d (shared or per-worker).
func (m *Monitor) nextSuggestion(d *suggest.Deriver, t relation.Tuple, zSet relation.AttrSet, cursor *bdd.Cursor) []int {
	if cursor == nil {
		return d.Suggest(t, zSet).S
	}
	return cursor.Next(
		func(s []int) bool { return allOutside(s, zSet) && d.IsSuggestionFast(zSet, s) },
		func() []int { return d.Suggest(t, zSet).S },
	)
}

// conflictedAttrs finds attributes whose applicable rules currently
// disagree, so they can be routed to the users.
func conflictedAttrs(d *suggest.Deriver, t relation.Tuple, zSet relation.AttrSet) []int {
	assignments := fix.ApplicableAssignments(d.Sigma(), d.Master(), t, zSet)
	var out []int
	for b, vs := range assignments {
		if len(vs) > 1 {
			out = append(out, b)
		}
	}
	return out
}

func allOutside(s []int, zSet relation.AttrSet) bool {
	for _, p := range s {
		if zSet.Has(p) {
			return false
		}
	}
	return true
}
