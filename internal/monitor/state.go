package monitor

// This file implements suspend/resume for fix sessions: SessionState is
// the full, serializable image of a Session's mutable state, and
// ResumeSession rebuilds a live Session from it — possibly in a
// different process, against a different Monitor built over the same
// (Σ, Dm). Together they turn the interactive state machine of §5 into
// the stateless-server pattern: a network frontend can hand the state to
// the client as a token after every round and hold nothing itself.
//
// What is and is not captured:
//
//   - Everything the round loop reads or writes is captured: the working
//     tuple, the three attribute sets (validated / user-asserted /
//     rule-fixed), the pending suggestion, the no-progress and round
//     counters, the round cap, the done flag and the per-round
//     snapshots. A resumed session is therefore step-for-step identical
//     to the uninterrupted one under CertainFix (no BDD cache).
//   - The master snapshot is captured by reference: its epoch. Resume
//     re-pins that epoch through the deriver (Versioned.At), so the
//     resumed rounds observe exactly the Dm the earlier rounds did, even
//     if the master head has moved on. When the epoch has been evicted
//     from the snapshot ring the resume fails with an error matching
//     master.ErrEpochEvicted unless ResumeOptions.RebaseToHead accepts
//     re-pinning the current head instead.
//   - The BDD cursor (CertainFix+) is deliberately NOT captured: it is a
//     position inside one process's shared suggestion cache, meaningless
//     in another process. Resume cold-restarts the traversal at the
//     cache root. This is safe — cached suggestions are revalidated
//     before use, and TransFix re-checks everything — but a resumed
//     CertainFix+ session may spend different rounds than the
//     uninterrupted run, exactly like the batch determinism caveat.

import (
	"errors"
	"fmt"

	"repro/internal/fix"
	"repro/internal/relation"
)

// SessionStateVersion is the format version stamped into serialized
// session states; Resume rejects versions it does not know.
const SessionStateVersion = 1

// ErrBadState reports a session state that fails validation against the
// resuming monitor's schema (wrong arity, out-of-range positions,
// unknown version). Like the other sentinels it is matched with
// errors.Is; the concrete error carries the detail.
var ErrBadState = errors.New("monitor: invalid session state")

// SessionState is the serializable image of a Session. It is a plain
// data struct with a stable JSON encoding — relation.Value cells map to
// native JSON (null / string / integer) and attribute sets to sorted
// position lists — so it can round-trip through any JSON transport and
// be inspected by non-Go clients. It contains no authentication: a
// service exposing states as client-held tokens must sign or MAC them if
// clients are untrusted (the state asserts which attributes are already
// "user validated").
type SessionState struct {
	// Version is SessionStateVersion at serialization time.
	Version int `json:"v"`
	// Epoch is the pinned master snapshot's epoch.
	Epoch uint64 `json:"epoch"`
	// Tuple is the working tuple after the rounds so far.
	Tuple relation.Tuple `json:"tuple"`
	// Z is the set of validated attributes (user ∪ rule-fixed).
	Z relation.AttrSet `json:"z"`
	// User is the subset of Z the users asserted directly.
	User relation.AttrSet `json:"user"`
	// Auto is the subset of Z the rules fixed (TransFix cascades).
	Auto relation.AttrSet `json:"auto"`
	// Suggested is the pending suggestion for the next round.
	Suggested []int `json:"sug"`
	// NoProgress counts consecutive rounds in which TransFix fixed
	// nothing (two trigger the mop-up suggestion).
	NoProgress int `json:"noProgress"`
	// Rounds is the number of interaction rounds consumed.
	Rounds int `json:"rounds"`
	// MaxRounds is the session's round cap.
	MaxRounds int `json:"maxRounds"`
	// Done marks a finished session.
	Done bool `json:"done"`
	// PerRound carries the per-round history feeding Result.PerRound.
	PerRound []roundState `json:"perRound,omitempty"`
	// Witnesses carries the raw fix provenance (one entry per Auto
	// attribute, in firing order). Optional: tokens minted before the
	// field existed resume with empty provenance, nothing else changes —
	// which is why Version stays 1.
	Witnesses []witnessState `json:"witnesses,omitempty"`
}

// roundState is the serialized form of one RoundStat.
type roundState struct {
	Suggested     []int            `json:"sug"`
	UserValidated relation.AttrSet `json:"user"`
	AutoFixed     relation.AttrSet `json:"auto"`
	Tuple         relation.Tuple   `json:"tuple"`
}

// witnessState is the serialized form of one fix.Witness — ids only; the
// master tuple and proof are re-materialized from the pinned snapshot by
// Result, never trusted from a client-held token.
type witnessState struct {
	Attr     int    `json:"attr"`
	Rule     string `json:"rule"`
	MasterID int    `json:"masterId"`
}

// State captures the session's current state for suspension. The
// returned struct shares no mutable storage with the session: the caller
// may serialize it later, after further rounds, and still observe the
// state as of this call.
func (s *Session) State() *SessionState {
	st := &SessionState{
		Version:    SessionStateVersion,
		Epoch:      s.d.Epoch(),
		Tuple:      s.t.Clone(),
		Z:          s.zSet.Clone(),
		User:       s.userSet.Clone(),
		Auto:       s.autoSet.Clone(),
		Suggested:  append([]int(nil), s.sug...),
		NoProgress: s.noProgress,
		Rounds:     s.rounds,
		MaxRounds:  s.maxRounds,
		Done:       s.done,
	}
	if len(s.perRound) > 0 {
		st.PerRound = make([]roundState, len(s.perRound))
		for i, r := range s.perRound {
			// RoundStat's slices and sets are immutable once recorded
			// (Provide always builds fresh ones), so sharing is safe.
			st.PerRound[i] = roundState(r)
		}
	}
	if len(s.witnesses) > 0 {
		st.Witnesses = make([]witnessState, len(s.witnesses))
		for i, w := range s.witnesses {
			st.Witnesses[i] = witnessState(w)
		}
	}
	return st
}

// ResumeOptions tunes ResumeSession.
type ResumeOptions struct {
	// RebaseToHead accepts re-pinning the currently published master
	// snapshot when the state's original epoch has been evicted from the
	// snapshot ring. The resumed rounds then run against newer master
	// data than the earlier rounds did — every remaining suggestion and
	// TransFix cascade is computed against the head snapshot, so the fix
	// stays certain with respect to it, but the session loses the
	// single-epoch guarantee and may suggest or fix differently than the
	// uninterrupted run would have.
	RebaseToHead bool
}

// ResumeSession rebuilds a live Session from a serialized state — the
// other half of Session.State. The monitor must be built over the same
// rules and master lineage; the state's epoch is re-pinned via the
// deriver (an error matching master.ErrEpochEvicted when the ring no
// longer retains it and opt.RebaseToHead is false). Structural
// validation failures match ErrBadState.
func (m *Monitor) ResumeSession(st *SessionState, opt ResumeOptions) (*Session, error) {
	if st == nil {
		return nil, fmt.Errorf("%w: nil state", ErrBadState)
	}
	if st.Version != SessionStateVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadState, st.Version, SessionStateVersion)
	}
	r := m.deriver.Sigma().Schema()
	arity := r.Arity()
	if len(st.Tuple) != arity {
		return nil, fmt.Errorf("%w: tuple arity %d does not match schema %s (%w)",
			ErrBadState, len(st.Tuple), r, ErrArityMismatch)
	}
	for _, set := range []struct {
		name string
		set  relation.AttrSet
	}{{"z", st.Z}, {"user", st.User}, {"auto", st.Auto}} {
		ok := true
		set.set.Range(func(p int) bool { ok = p < arity; return ok })
		if !ok {
			return nil, fmt.Errorf("%w: %s positions exceed arity %d", ErrBadState, set.name, arity)
		}
	}
	for _, p := range st.Suggested {
		if p < 0 || p >= arity {
			return nil, fmt.Errorf("%w: suggested position %d out of range [0, %d)", ErrBadState, p, arity)
		}
	}
	for _, w := range st.Witnesses {
		if w.Attr < 0 || w.Attr >= arity {
			return nil, fmt.Errorf("%w: witness attribute %d out of range [0, %d)", ErrBadState, w.Attr, arity)
		}
		if w.MasterID < 0 {
			return nil, fmt.Errorf("%w: negative witness master id %d", ErrBadState, w.MasterID)
		}
	}
	if st.Rounds < 0 || st.NoProgress < 0 {
		return nil, fmt.Errorf("%w: negative counters", ErrBadState)
	}

	d, err := m.deriver.PinAt(st.Epoch)
	if err != nil {
		if !opt.RebaseToHead {
			return nil, err
		}
		d = m.deriver.Pin()
	}

	// States from hand-built tokens may omit the cap; fall back to the
	// resuming monitor's configuration exactly like initSession does, so
	// a missing field can never exceed the operator-configured limit.
	maxRounds := st.MaxRounds
	if maxRounds <= 0 {
		maxRounds = m.cfg.MaxRounds
	}
	if maxRounds <= 0 {
		maxRounds = arity + 1
	}
	s := &Session{
		m:          m,
		d:          d,
		t:          st.Tuple.Clone(),
		zSet:       st.Z.Clone(),
		userSet:    st.User.Clone(),
		autoSet:    st.Auto.Clone(),
		sug:        append([]int(nil), st.Suggested...),
		noProgress: st.NoProgress,
		rounds:     st.Rounds,
		maxRounds:  maxRounds,
		done:       st.Done,
	}
	if len(st.PerRound) > 0 {
		s.perRound = make([]RoundStat, len(st.PerRound))
		for i, r := range st.PerRound {
			s.perRound[i] = RoundStat(r)
		}
	}
	if len(st.Witnesses) > 0 {
		// Ids must resolve inside the re-pinned snapshot: Result will
		// materialize tuples (and proofs) from them. A token whose ids
		// exceed the snapshot is structurally bad, not evicted.
		dmLen := d.Master().Len()
		s.witnesses = make([]fix.Witness, len(st.Witnesses))
		for i, w := range st.Witnesses {
			if w.MasterID >= dmLen {
				return nil, fmt.Errorf("%w: witness master id %d exceeds master size %d", ErrBadState, w.MasterID, dmLen)
			}
			s.witnesses[i] = fix.Witness(w)
		}
	}
	if m.cache != nil && !s.done {
		s.cursor = m.cache.Cursor() // cold restart; see the file comment
	}
	return s, nil
}
