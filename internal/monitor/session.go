package monitor

import (
	"errors"
	"fmt"

	"repro/internal/bdd"
	"repro/internal/fix"
	"repro/internal/relation"
	"repro/internal/suggest"
)

// Typed sentinels for the session state machine, usable with errors.Is.
var (
	// ErrSessionDone reports a Provide on a finished session.
	ErrSessionDone = errors.New("monitor: session already done")
	// ErrArityMismatch reports tuples, attribute lists or value lists
	// whose shape does not fit the schema.
	ErrArityMismatch = errors.New("monitor: arity mismatch")
)

// Session drives the interactive fixing of a single tuple one round at a
// time — the state machine under algorithm CertainFix, exposed for
// frontends that cannot model the user as a callback (forms, REPLs,
// network services). The flow is:
//
//	sess := m.NewSession(t)
//	for !sess.Done() {
//	    attrs := sess.Suggested()          // ask the user about these
//	    err := sess.Provide(attrs, values) // their asserted values
//	    ...
//	}
//	result := sess.Result()
type Session struct {
	m *Monitor
	// d is the deriver view pinned at session start: one master snapshot
	// (epoch) serves the whole interactive lifetime of the tuple, so a
	// concurrent master update can never make rounds of one session
	// disagree about Dm. New sessions — including the per-tuple sessions
	// of FixBatch/FixStream — pin the then-current epoch.
	d          *suggest.Deriver
	t          relation.Tuple
	zSet       relation.AttrSet
	userSet    relation.AttrSet
	autoSet    relation.AttrSet
	sug        []int
	cursor     *bdd.Cursor
	noProgress int
	rounds     int
	maxRounds  int
	done       bool
	perRound   []RoundStat
	// witnesses is one fix.Witness per autoSet attribute, in firing order
	// — the raw provenance TransFixTrace records. Result materializes the
	// master tuples and (on authenticated snapshots) inclusion proofs.
	witnesses []fix.Witness

	// dedup scratch for the per-round suggestion merge: an epoch-stamped
	// dense array over attribute positions (bounded by arity), reused
	// across rounds and — through the session pool — across tuples, so
	// the merge allocates nothing after warm-up.
	dedupEpoch uint32
	dedupStamp []uint32
}

// NewSession starts a fixing session for one tuple; the input is copied.
func (m *Monitor) NewSession(input relation.Tuple) (*Session, error) {
	s := &Session{}
	if err := m.initSession(s, m.deriver, input); err != nil {
		return nil, err
	}
	return s, nil
}

// initSession (re)initializes s for input using deriver d, reusing s's
// allocated scratch — the tuple buffer and the attr-set words — when
// present. This is the sync.Pool path of FixBatch/FixStream; NewSession
// passes a zero Session. Per-round snapshots are always freshly allocated
// because they escape into Result.
func (m *Monitor) initSession(s *Session, d *suggest.Deriver, input relation.Tuple) error {
	r := d.Sigma().Schema()
	if len(input) != r.Arity() {
		return fmt.Errorf("monitor: tuple arity %d does not match schema %s: %w", len(input), r, ErrArityMismatch)
	}
	maxRounds := m.cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = r.Arity() + 1
	}
	s.m = m
	s.d = d.Pin()
	if cap(s.t) >= len(input) {
		s.t = s.t[:len(input)]
		copy(s.t, input)
	} else {
		s.t = input.Clone()
	}
	s.zSet.Clear()
	s.userSet.Clear()
	s.autoSet.Clear()
	s.sug = m.initial[m.cfg.InitialRegion].Z
	s.cursor = nil
	if m.cache != nil {
		s.cursor = m.cache.Cursor()
	}
	s.noProgress = 0
	s.rounds = 0
	s.maxRounds = maxRounds
	s.done = false
	s.perRound = nil
	s.witnesses = s.witnesses[:0]
	return nil
}

// Suggested returns the attribute positions the users should assert this
// round (copy). Empty once the session is done.
func (s *Session) Suggested() []int {
	if s.done {
		return nil
	}
	return append([]int(nil), s.sug...)
}

// Done reports whether every attribute is validated (or the round cap
// was hit).
func (s *Session) Done() bool { return s.done }

// Completed reports whether every attribute is validated — Result's
// Completed field without the allocation of building a Result.
func (s *Session) Completed() bool {
	return s.zSet.Len() == s.d.Sigma().Schema().Arity()
}

// Rounds returns the interaction rounds consumed so far.
func (s *Session) Rounds() int { return s.rounds }

// Epoch returns the epoch of the master snapshot the session is pinned
// to — the epoch a resumed session will try to re-pin (Versioned.At).
func (s *Session) Epoch() uint64 { return s.d.Epoch() }

// Root returns the hex Merkle root of the pinned snapshot, empty when it
// is unauthenticated — the root Result.Provenance proofs verify against.
func (s *Session) Root() string {
	if root, ok := s.d.Master().AuthRoot(); ok {
		return root.String()
	}
	return ""
}

// Tuple returns the current tuple state (copy).
func (s *Session) Tuple() relation.Tuple { return s.t.Clone() }

// Validated returns the currently validated attribute set (copy).
func (s *Session) Validated() relation.AttrSet { return s.zSet.Clone() }

// Provide runs one round: the users assert t[attrs] = values (aligned
// slices; attrs may differ from Suggested). The session applies the
// assertions, checks consistency, cascades certain fixes (TransFix) and
// prepares the next suggestion.
func (s *Session) Provide(attrs []int, values []relation.Value) error {
	if s.done {
		return ErrSessionDone
	}
	if len(attrs) != len(values) {
		return fmt.Errorf("monitor: %d attributes but %d values: %w", len(attrs), len(values), ErrArityMismatch)
	}
	if len(attrs) == 0 {
		s.done = true // the users declined: stop without completing
		return nil
	}
	r := s.d.Sigma().Schema()
	// Validate every position before mutating anything: a failed Provide
	// must leave the session exactly as it was, so long-lived sessions
	// (and the service tokens derived from them) can retry after an
	// input error without phantom validations.
	for _, p := range attrs {
		if p < 0 || p >= r.Arity() {
			return fmt.Errorf("monitor: attribute position %d out of range [0, %d): %w", p, r.Arity(), ErrArityMismatch)
		}
	}
	for i, p := range attrs {
		s.t[p] = values[i]
		s.zSet.Add(p)
		s.userSet.Add(p)
	}
	s.rounds++

	// Check t[Z'] leads to a unique fix, then cascade; conflicts are
	// routed back to the users rather than guessed.
	var conflicted []int
	if s.d.ConsistentRow(s.zSet.Positions(), s.t.Project(s.zSet.Positions())) {
		fixed, err := fix.TransFixTrace(s.m.graph, s.d.Master(), s.t, &s.zSet, &s.witnesses)
		s.autoSet.AddAll(fixed)
		if len(fixed) == 0 {
			s.noProgress++
		} else {
			s.noProgress = 0
		}
		if err != nil {
			var ce *fix.ConflictError
			if !errors.As(err, &ce) {
				return err
			}
			conflicted = append(conflicted, ce.Attr)
		}
	} else {
		conflicted = conflictedAttrs(s.d, s.t, s.zSet)
	}

	s.perRound = append(s.perRound, RoundStat{
		Suggested:     s.sug,
		UserValidated: s.userSet.Clone(),
		AutoFixed:     s.autoSet.Clone(),
		Tuple:         s.t.Clone(),
	})

	if s.zSet.Len() == r.Arity() || s.rounds >= s.maxRounds {
		s.done = true
		return nil
	}

	// Next suggestion: Suggest / Suggest+, the conflict escalations, and
	// the mop-up rule after two consecutive no-progress rounds (see
	// Monitor's documentation).
	if s.noProgress >= 2 {
		s.sug = nil
	} else {
		// Copy before merging: the cached Suggest+ path returns a slice
		// shared with the BDD cache, which concurrent sessions read —
		// appending or deduping in place would race on its backing array.
		sug := s.m.nextSuggestion(s.d, s.t, s.zSet, s.cursor)
		merged := make([]int, 0, len(sug)+len(conflicted))
		merged = append(merged, sug...)
		merged = append(merged, conflicted...)
		s.sug = s.dedupInts(merged)
	}
	if len(s.sug) == 0 {
		for p := 0; p < r.Arity(); p++ {
			if !s.zSet.Has(p) {
				s.sug = append(s.sug, p)
			}
		}
	}
	return nil
}

// Result summarizes the session so far (or finally, once Done). It reads
// the schema through the pinned deriver s.d — never through the shared
// monitor — so a Result taken from a pooled or resumed session can only
// observe the snapshot the session itself is bound to.
func (s *Session) Result() Result {
	r := s.d.Sigma().Schema()
	res := Result{
		Tuple:         s.t.Clone(),
		Rounds:        s.rounds,
		Completed:     s.zSet.Len() == r.Arity(),
		UserValidated: s.userSet.Clone(),
		AutoFixed:     s.autoSet.Clone(),
		PerRound:      s.perRound,
		Epoch:         s.d.Epoch(),
		Provenance:    s.provenance(),
	}
	if root, ok := s.d.Master().AuthRoot(); ok {
		res.Root = root.String()
	}
	return res
}

// provenance materializes the session's raw witnesses against the pinned
// snapshot: tuple contents always, inclusion proofs when the snapshot is
// authenticated. Ids recorded at fix time are resolved against the same
// snapshot, so they cannot have moved under a later delta.
func (s *Session) provenance() []Witness {
	if len(s.witnesses) == 0 {
		return nil
	}
	dm := s.d.Master()
	out := make([]Witness, len(s.witnesses))
	for i, w := range s.witnesses {
		out[i] = Witness{
			Attr:     w.Attr,
			Rule:     w.Rule,
			MasterID: w.MasterID,
			Master:   dm.Tuple(w.MasterID).Clone(),
		}
		if dm.Authenticated() {
			p, err := dm.ProveTuple(w.MasterID)
			if err != nil {
				// The id came from this snapshot's own match set; failure
				// here is the broken-mirror invariant ProveTuple documents.
				panic(fmt.Sprintf("monitor: witness proof for master id %d: %v", w.MasterID, err))
			}
			out[i].Proof = p
		}
	}
	return out
}

// dedupInts removes duplicate attribute positions from xs in place,
// keeping first occurrences in order. It runs on the session's
// epoch-stamped scratch instead of allocating a map per round.
func (s *Session) dedupInts(xs []int) []int {
	s.dedupEpoch++
	if s.dedupEpoch == 0 { // wrapped: stale stamps could collide
		for i := range s.dedupStamp {
			s.dedupStamp[i] = 0
		}
		s.dedupEpoch = 1
	}
	out := xs[:0]
	for _, x := range xs {
		for x >= len(s.dedupStamp) {
			s.dedupStamp = append(s.dedupStamp, 0)
		}
		if s.dedupStamp[x] != s.dedupEpoch {
			s.dedupStamp[x] = s.dedupEpoch
			out = append(out, x)
		}
	}
	return out
}
