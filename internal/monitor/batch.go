package monitor

import (
	"context"
	"sync"

	"repro/internal/parallel"
	"repro/internal/relation"
	"repro/internal/suggest"
)

// BatchOptions tunes the concurrent fixing pipeline.
type BatchOptions struct {
	// Workers bounds the worker pool; 0 or negative selects GOMAXPROCS.
	Workers int
	// PerWorkerDerivers gives each worker a private suggestion deriver
	// instead of sharing the monitor's. The shared deriver is read-only
	// and safe to share (its closure programs are immutable and per-call
	// state is pooled); private derivers trade O(|Σ|) setup per worker —
	// the support map reads the master's precomputed pattern bitmaps, and
	// compiling the closure program is linear in Σ — for complete
	// isolation (no shared lines touched during probes), which can help
	// on high-core-count machines.
	PerWorkerDerivers bool
}

// sessionPool recycles Session scratch (the working tuple buffer and the
// attr-set words) across batch items. Per-round snapshots escape into
// Result and are never pooled.
var sessionPool = sync.Pool{New: func() any { return &Session{} }}

// fixPooled fixes one tuple on a pool-recycled session. The tuple passed
// to user.Assert aliases the pooled scratch buffer — see the User
// lifetime contract — so it must not be retained past the call. The
// context is observed between rounds, like FixCtx.
func (m *Monitor) fixPooled(ctx context.Context, d *suggest.Deriver, input relation.Tuple, user User) (Result, error) {
	sess := sessionPool.Get().(*Session)
	defer sessionPool.Put(sess)
	if err := m.initSession(sess, d, input); err != nil {
		return Result{}, err
	}
	return driveSession(ctx, sess, user)
}

// FixBatch fixes many input tuples concurrently against the shared
// immutable (Σ, Dm), driving userFor(i) for tuple i. Results are aligned
// with inputs; the first error wins and is returned after all workers
// drain (the internal/parallel contract).
//
// Sessions run on sync.Pool-recycled scratch, so the tuple a User's
// Assert receives is only valid for the duration of that call (see the
// User documentation); Assert implementations must also be safe for
// concurrent use across workers when userFor hands out shared state.
//
// With the default configuration the output is byte-identical to calling
// Fix sequentially over the same inputs: tuples are independent and every
// stage is deterministic. With the BDD cache enabled (CertainFix+) the
// final tuples are still correct certain fixes, but cached suggestions
// depend on the order sessions populate the cache, so round counts and
// per-round snapshots may differ from a sequential run.
func (m *Monitor) FixBatch(inputs []relation.Tuple, userFor func(i int) User, opt BatchOptions) ([]Result, error) {
	return m.FixBatchCtx(context.Background(), inputs, userFor, opt)
}

// FixBatchCtx is FixBatch with cancellation: once ctx is done no further
// tuples are dispatched, in-flight sessions stop at their next round
// boundary, and the call returns ctx.Err() after the pool drains (a job
// error still wins, per the internal/parallel contract).
func (m *Monitor) FixBatchCtx(ctx context.Context, inputs []relation.Tuple, userFor func(i int) User, opt BatchOptions) ([]Result, error) {
	return parallel.MapWorkersCtx(ctx, len(inputs), opt.Workers, func() func(i int) (Result, error) {
		d := m.workerDeriver(opt)
		return func(i int) (Result, error) {
			return m.fixPooled(ctx, d, inputs[i], userFor(i))
		}
	})
}

// workerDeriver returns the deriver a batch worker should use. Forked
// derivers keep the monitor's master source: over versioned master data a
// per-worker deriver still pins a fresh snapshot for each tuple's session.
func (m *Monitor) workerDeriver(opt BatchOptions) *suggest.Deriver {
	if opt.PerWorkerDerivers {
		return m.deriver.Fork()
	}
	return m.deriver
}

// StreamRequest is one unit of work for FixStream.
type StreamRequest struct {
	// ID is a caller-chosen correlation id echoed on the response.
	ID    int
	Tuple relation.Tuple
	User  User
}

// StreamResult is the outcome of one StreamRequest.
type StreamResult struct {
	ID     int
	Result Result
	Err    error
}

// FixStream consumes requests until in is closed and emits one StreamResult
// per request, in completion order (use ID to correlate). The returned
// channel is closed after the last result. This is the entry-point-shaped
// API of the paper's monitoring framework: tuples are fixed as they arrive,
// concurrently, against the shared immutable master. The User lifetime
// contract of FixBatch applies to each request's User.
func (m *Monitor) FixStream(in <-chan StreamRequest, opt BatchOptions) <-chan StreamResult {
	return m.FixStreamCtx(context.Background(), in, opt)
}

// FixStreamCtx is FixStream with cancellation: when ctx is done the
// workers stop consuming requests (whether or not in is ever closed),
// in-flight fixes stop at their next round boundary with ctx.Err() as
// their result error, and the output channel is closed after the
// workers drain. Requests already buffered in the channel but not yet
// picked up are dropped, and delivery of results completing *during*
// the cancellation is best-effort: a consumer still draining the
// channel receives them, one that stopped reading does not (the workers
// must not block forever on an abandoned channel).
func (m *Monitor) FixStreamCtx(ctx context.Context, in <-chan StreamRequest, opt BatchOptions) <-chan StreamResult {
	out := make(chan StreamResult)
	workers := parallel.Clamp(opt.Workers, -1)
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := m.workerDeriver(opt)
			for {
				var req StreamRequest
				var ok bool
				select {
				case <-done:
					return
				case req, ok = <-in:
					if !ok {
						return
					}
				}
				res, err := m.fixPooled(ctx, d, req.Tuple, req.User)
				// Prefer delivery over teardown: the non-blocking send
				// wins when the consumer is already waiting, so a result
				// racing the cancellation still reaches a draining
				// consumer instead of being dropped by a random select.
				select {
				case out <- StreamResult{ID: req.ID, Result: res, Err: err}:
				default:
					select {
					case out <- StreamResult{ID: req.ID, Result: res, Err: err}:
					case <-done:
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}
