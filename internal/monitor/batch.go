package monitor

import (
	"sync"

	"repro/internal/parallel"
	"repro/internal/relation"
	"repro/internal/suggest"
)

// BatchOptions tunes the concurrent fixing pipeline.
type BatchOptions struct {
	// Workers bounds the worker pool; 0 or negative selects GOMAXPROCS.
	Workers int
	// PerWorkerDerivers gives each worker a private suggestion deriver
	// instead of sharing the monitor's. The shared deriver is read-only
	// and safe to share (its closure programs are immutable and per-call
	// state is pooled); private derivers trade O(|Σ|) setup per worker —
	// the support map reads the master's precomputed pattern bitmaps, and
	// compiling the closure program is linear in Σ — for complete
	// isolation (no shared lines touched during probes), which can help
	// on high-core-count machines.
	PerWorkerDerivers bool
}

// sessionPool recycles Session scratch (the working tuple buffer and the
// attr-set words) across batch items. Per-round snapshots escape into
// Result and are never pooled.
var sessionPool = sync.Pool{New: func() any { return &Session{} }}

// fixPooled fixes one tuple on a pool-recycled session. The tuple passed
// to user.Assert aliases the pooled scratch buffer — see the User
// lifetime contract — so it must not be retained past the call.
func (m *Monitor) fixPooled(d *suggest.Deriver, input relation.Tuple, user User) (Result, error) {
	sess := sessionPool.Get().(*Session)
	defer sessionPool.Put(sess)
	if err := m.initSession(sess, d, input); err != nil {
		return Result{}, err
	}
	for !sess.Done() {
		attrs, values := user.Assert(sess.t, sess.Suggested())
		if err := sess.Provide(attrs, values); err != nil {
			return Result{}, err
		}
	}
	return sess.Result(), nil
}

// FixBatch fixes many input tuples concurrently against the shared
// immutable (Σ, Dm), driving userFor(i) for tuple i. Results are aligned
// with inputs; the first error wins and is returned after all workers
// drain (the internal/parallel contract).
//
// Sessions run on sync.Pool-recycled scratch, so the tuple a User's
// Assert receives is only valid for the duration of that call (see the
// User documentation); Assert implementations must also be safe for
// concurrent use across workers when userFor hands out shared state.
//
// With the default configuration the output is byte-identical to calling
// Fix sequentially over the same inputs: tuples are independent and every
// stage is deterministic. With the BDD cache enabled (CertainFix+) the
// final tuples are still correct certain fixes, but cached suggestions
// depend on the order sessions populate the cache, so round counts and
// per-round snapshots may differ from a sequential run.
func (m *Monitor) FixBatch(inputs []relation.Tuple, userFor func(i int) User, opt BatchOptions) ([]Result, error) {
	return parallel.MapWorkers(len(inputs), opt.Workers, func() func(i int) (Result, error) {
		d := m.workerDeriver(opt)
		return func(i int) (Result, error) {
			return m.fixPooled(d, inputs[i], userFor(i))
		}
	})
}

// workerDeriver returns the deriver a batch worker should use. Forked
// derivers keep the monitor's master source: over versioned master data a
// per-worker deriver still pins a fresh snapshot for each tuple's session.
func (m *Monitor) workerDeriver(opt BatchOptions) *suggest.Deriver {
	if opt.PerWorkerDerivers {
		return m.deriver.Fork()
	}
	return m.deriver
}

// StreamRequest is one unit of work for FixStream.
type StreamRequest struct {
	// ID is a caller-chosen correlation id echoed on the response.
	ID    int
	Tuple relation.Tuple
	User  User
}

// StreamResult is the outcome of one StreamRequest.
type StreamResult struct {
	ID     int
	Result Result
	Err    error
}

// FixStream consumes requests until in is closed and emits one StreamResult
// per request, in completion order (use ID to correlate). The returned
// channel is closed after the last result. This is the entry-point-shaped
// API of the paper's monitoring framework: tuples are fixed as they arrive,
// concurrently, against the shared immutable master. The User lifetime
// contract of FixBatch applies to each request's User.
func (m *Monitor) FixStream(in <-chan StreamRequest, opt BatchOptions) <-chan StreamResult {
	out := make(chan StreamResult)
	workers := parallel.Clamp(opt.Workers, -1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := m.workerDeriver(opt)
			for req := range in {
				res, err := m.fixPooled(d, req.Tuple, req.User)
				out <- StreamResult{ID: req.ID, Result: res, Err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}
