package monitor_test

import (
	"testing"

	"repro/internal/monitor"
	"repro/internal/paperex"
	"repro/internal/relation"
)

// TestSessionStepwiseMatchesFix: driving a Session manually produces the
// same outcome as the callback-based Fix.
func TestSessionStepwiseMatchesFix(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	truth := truthT1()

	viaFix, err := m.Fix(paperex.InputT1(), monitor.SimulatedUser{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}

	sess, err := m.NewSession(paperex.InputT1())
	if err != nil {
		t.Fatal(err)
	}
	for !sess.Done() {
		attrs := sess.Suggested()
		values := make([]relation.Value, len(attrs))
		for i, p := range attrs {
			values[i] = truth[p]
		}
		if err := sess.Provide(attrs, values); err != nil {
			t.Fatal(err)
		}
	}
	viaSession := sess.Result()
	if !viaSession.Tuple.Equal(viaFix.Tuple) {
		t.Fatalf("session %v != fix %v", viaSession.Tuple, viaFix.Tuple)
	}
	if viaSession.Rounds != viaFix.Rounds || viaSession.Completed != viaFix.Completed {
		t.Fatalf("rounds/completed mismatch: %+v vs %+v", viaSession, viaFix)
	}
}

// TestSessionValidation: bad inputs are rejected with errors.
func TestSessionValidation(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	if _, err := m.NewSession(relation.StringTuple("short")); err == nil {
		t.Fatal("arity mismatch must error")
	}
	sess, err := m.NewSession(paperex.InputT1())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Provide([]int{0, 1}, []relation.Value{relation.Null}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if err := sess.Provide([]int{99}, []relation.Value{relation.Null}); err == nil {
		t.Fatal("out-of-range attribute must error")
	}
}

// TestSessionDecline: providing no attributes ends the session
// incomplete.
func TestSessionDecline(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	sess, err := m.NewSession(paperex.InputT1())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Provide(nil, nil); err != nil {
		t.Fatal(err)
	}
	if !sess.Done() {
		t.Fatal("declined session must be done")
	}
	if sess.Result().Completed {
		t.Fatal("declined session must not report completion")
	}
	if err := sess.Provide([]int{0}, []relation.Value{relation.Null}); err == nil {
		t.Fatal("providing after done must error")
	}
	if sess.Suggested() != nil {
		t.Fatal("done session suggests nothing")
	}
}

// TestSessionProgressAccessors: intermediate state is observable.
func TestSessionProgressAccessors(t *testing.T) {
	m := newMonitor(t, monitor.Config{})
	r := m.Deriver().Sigma().Schema()
	truth := truthT1()
	sess, err := m.NewSession(paperex.InputT1())
	if err != nil {
		t.Fatal(err)
	}
	attrs := sess.Suggested()
	if len(attrs) == 0 {
		t.Fatal("fresh session must suggest the initial region")
	}
	values := make([]relation.Value, len(attrs))
	for i, p := range attrs {
		values[i] = truth[p]
	}
	if err := sess.Provide(attrs, values); err != nil {
		t.Fatal(err)
	}
	if sess.Rounds() != 1 {
		t.Fatalf("rounds = %d", sess.Rounds())
	}
	if got := sess.Tuple()[r.MustPos("AC")].Str(); got != "131" {
		t.Fatalf("AC after round 1 = %q (TransFix should have fired)", got)
	}
	if !sess.Validated().Has(r.MustPos("AC")) {
		t.Fatal("AC must be validated after the cascade")
	}
	// Tuple() returns a copy.
	sess.Tuple()[0] = relation.Null
	if sess.Tuple()[0].IsNull() {
		t.Fatal("Tuple() must return a copy")
	}
}
