package monitor

import (
	"testing"

	"repro/internal/master"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// versionedFixture: R(A,B,C) with rules (A;MA)->(B;MB) and (A;MA)->(C;MC)
// over a master that initially only knows key "k1". Validating A lets
// TransFix cascade B and C — iff the master has the key.
func versionedFixture(t *testing.T) (*master.Versioned, *Monitor) {
	t.Helper()
	r := relation.StringSchema("R", "A", "B", "C")
	rm := relation.StringSchema("Rm", "MA", "MB", "MC")
	sigma := rule.MustNewSet(r, rm,
		rule.MustNew("fixB", r, rm, []int{0}, []int{0}, 1, 1, pattern.Empty()),
		rule.MustNew("fixC", r, rm, []int{0}, []int{0}, 2, 2, pattern.Empty()),
	)
	rel := relation.NewRelation(rm)
	rel.MustAppend(relation.StringTuple("k1", "b1", "c1"))
	ver := master.NewVersioned(master.MustNewForRules(rel, sigma))
	m, err := NewVersioned(sigma, ver, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return ver, m
}

// TestVersionedMonitorPicksUpDeltas: a fix started after a master update
// uses the new snapshot (the k2 correction turns a fully-manual fix into
// a TransFix cascade), while the behavior before the update matches the
// master's old reach.
func TestVersionedMonitorPicksUpDeltas(t *testing.T) {
	ver, m := versionedFixture(t)
	input := relation.StringTuple("k2", "wrong", "wrong")
	truth := relation.StringTuple("k2", "b2", "c2")

	// Epoch 0: the master does not know k2 — the users assert everything.
	res, err := m.Fix(input, SimulatedUser{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.AutoFixed.Len() != 0 {
		t.Fatalf("epoch 0: completed=%v autofixed=%v, want completed with no auto fixes",
			res.Completed, res.AutoFixed.Positions())
	}
	if !res.Tuple.Equal(truth) {
		t.Fatalf("epoch 0 result %v, want %v", res.Tuple, truth)
	}

	// Publish the correction; the next fix must cascade B and C.
	if _, err := ver.Apply([]relation.Tuple{relation.StringTuple("k2", "b2", "c2")}, nil); err != nil {
		t.Fatal(err)
	}
	res, err = m.Fix(input, SimulatedUser{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.AutoFixed.Len() != 2 {
		t.Fatalf("epoch 1: completed=%v autofixed=%v, want B and C auto-fixed",
			res.Completed, res.AutoFixed.Positions())
	}
	if !res.Tuple.Equal(truth) {
		t.Fatalf("epoch 1 result %v, want %v", res.Tuple, truth)
	}
	if res.UserValidated.Len() != 1 || !res.UserValidated.Has(0) {
		t.Fatalf("epoch 1: users validated %v, want just A", res.UserValidated.Positions())
	}
}

// TestSessionPinsSnapshotAtStart: a session started before a master
// update keeps its pinned snapshot for its whole lifetime — the update
// cannot change the session's master view mid-flight.
func TestSessionPinsSnapshotAtStart(t *testing.T) {
	ver, m := versionedFixture(t)
	input := relation.StringTuple("k2", "wrong", "wrong")

	sess, err := m.NewSession(input)
	if err != nil {
		t.Fatal(err)
	}
	// The update lands between NewSession and the first round.
	if _, err := ver.Apply([]relation.Tuple{relation.StringTuple("k2", "b2", "c2")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sess.Provide([]int{0}, []relation.Value{relation.String("k2")}); err != nil {
		t.Fatal(err)
	}
	if got := sess.Result().AutoFixed.Len(); got != 0 {
		t.Fatalf("pinned session auto-fixed %d attrs from a snapshot published after it started", got)
	}

	// A session started now sees the new epoch.
	sess2, err := m.NewSession(input)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess2.Provide([]int{0}, []relation.Value{relation.String("k2")}); err != nil {
		t.Fatal(err)
	}
	if got := sess2.Result().AutoFixed.Len(); got != 2 {
		t.Fatalf("fresh session auto-fixed %d attrs, want 2", got)
	}
}

// TestVersionedFixBatchPicksUpEpochsBetweenTuples: each batch item pins
// the snapshot current at its session start, so items running after a
// publish see the new master while the batch as a whole never blocks.
func TestVersionedFixBatchPicksUpEpochsBetweenTuples(t *testing.T) {
	ver, m := versionedFixture(t)
	truth := relation.StringTuple("k2", "b2", "c2")

	// Sequential batch (1 worker): tuple 0's user callback publishes the
	// delta, so tuple 0 ran on epoch 0 and tuple 1 must run on epoch 1.
	inputs := []relation.Tuple{
		relation.StringTuple("k2", "wrong", "wrong"),
		relation.StringTuple("k2", "wrong", "wrong"),
	}
	users := []User{
		publishThenAssert{ver: ver, truth: truth, t: t},
		SimulatedUser{Truth: truth},
	}
	results, err := m.FixBatch(inputs, func(i int) User { return users[i] }, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := results[0].AutoFixed.Len(); got != 0 {
		t.Fatalf("tuple 0 (epoch 0 session) auto-fixed %d attrs, want 0", got)
	}
	if got := results[1].AutoFixed.Len(); got != 2 {
		t.Fatalf("tuple 1 (post-publish session) auto-fixed %d attrs, want 2", got)
	}
}

// publishThenAssert publishes a master delta from inside the first user
// round, then answers with the truth.
type publishThenAssert struct {
	ver   *master.Versioned
	truth relation.Tuple
	t     *testing.T
}

func (u publishThenAssert) Assert(_ relation.Tuple, suggested []int) ([]int, []relation.Value) {
	if _, err := u.ver.Apply([]relation.Tuple{u.truth.Clone()}, nil); err != nil {
		u.t.Errorf("publish from user callback: %v", err)
	}
	values := make([]relation.Value, len(suggested))
	for i, p := range suggested {
		values[i] = u.truth[p]
	}
	return suggested, values
}
