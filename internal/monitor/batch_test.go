package monitor_test

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/paperex"
	"repro/internal/relation"
)

func hospDataset(t testing.TB, tuples int) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Hosp(datagen.Config{
		Seed: 1, MasterSize: 300, Tuples: tuples, DupRate: 0.3, NoiseRate: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// resultsEqual compares two fix results field by field, including the
// per-round snapshots — "byte-identical" at the semantic level.
func resultsEqual(a, b monitor.Result) bool {
	if !a.Tuple.Equal(b.Tuple) || a.Rounds != b.Rounds || a.Completed != b.Completed {
		return false
	}
	if !a.UserValidated.Equal(b.UserValidated) || !a.AutoFixed.Equal(b.AutoFixed) {
		return false
	}
	if len(a.PerRound) != len(b.PerRound) {
		return false
	}
	for i := range a.PerRound {
		pa, pb := a.PerRound[i], b.PerRound[i]
		if !pa.Tuple.Equal(pb.Tuple) || !pa.UserValidated.Equal(pb.UserValidated) || !pa.AutoFixed.Equal(pb.AutoFixed) {
			return false
		}
		if len(pa.Suggested) != len(pb.Suggested) {
			return false
		}
		for j := range pa.Suggested {
			if pa.Suggested[j] != pb.Suggested[j] {
				return false
			}
		}
	}
	return true
}

// TestFixBatchDeterministic is the acceptance test of the concurrent
// pipeline: FixBatch with N workers must produce results identical to a
// sequential Fix loop over the same inputs, for every worker count.
func TestFixBatchDeterministic(t *testing.T) {
	ds := hospDataset(t, 60)
	m, err := monitor.New(ds.Sigma, ds.Master, monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}

	want := make([]monitor.Result, len(ds.Inputs))
	for i := range ds.Inputs {
		res, err := m.Fix(ds.Inputs[i], monitor.SimulatedUser{Truth: ds.Truths[i]})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	userFor := func(i int) monitor.User { return monitor.SimulatedUser{Truth: ds.Truths[i]} }
	for _, workers := range []int{1, 2, 4, 7, 16} {
		for _, perWorker := range []bool{false, true} {
			if perWorker && workers > 4 {
				continue // deriver setup cost; the small counts cover the path
			}
			name := fmt.Sprintf("workers=%d,perWorkerDerivers=%v", workers, perWorker)
			got, err := m.FixBatch(ds.Inputs, userFor, monitor.BatchOptions{
				Workers: workers, PerWorkerDerivers: perWorker,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
			}
			for i := range want {
				if !resultsEqual(got[i], want[i]) {
					t.Fatalf("%s: tuple %d diverged from sequential Fix:\n got  %+v\n want %+v",
						name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFixBatchSuggestionCache exercises the CertainFix+ path under the
// worker pool (run with -race to check the shared BDD cache): fixes must
// complete without error and land on the same final tuples as the
// non-cached batch, even though round counts may differ.
func TestFixBatchSuggestionCache(t *testing.T) {
	ds := hospDataset(t, 60)
	plain, err := monitor.New(ds.Sigma, ds.Master, monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	plus, err := monitor.New(ds.Sigma, ds.Master, monitor.Config{UseBDD: true})
	if err != nil {
		t.Fatal(err)
	}
	userFor := func(i int) monitor.User { return monitor.SimulatedUser{Truth: ds.Truths[i]} }
	want, err := plain.FixBatch(ds.Inputs, userFor, monitor.BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plus.FixBatch(ds.Inputs, userFor, monitor.BatchOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !got[i].Completed || !got[i].Tuple.Equal(want[i].Tuple) {
			t.Fatalf("tuple %d: cached batch diverged: completed=%v\n got  %v\n want %v",
				i, got[i].Completed, got[i].Tuple, want[i].Tuple)
		}
	}
	if hits, _ := plus.CacheStats(); hits == 0 {
		t.Fatal("BDD cache never hit under the batch pipeline")
	}
}

// TestFixBatchErrorPropagates: the first per-tuple error aborts the batch
// after all workers drain, mirroring the parallelMap contract.
func TestFixBatchErrorPropagates(t *testing.T) {
	m := paperMonitor(t)
	inputs := []relation.Tuple{
		paperex.InputT1(),
		relation.StringTuple("bad"), // wrong arity → error
		paperex.InputT1(),
	}
	userFor := func(i int) monitor.User {
		return monitor.SimulatedUser{Truth: paperex.InputT1()}
	}
	if _, err := m.FixBatch(inputs, userFor, monitor.BatchOptions{Workers: 3}); err == nil {
		t.Fatal("want arity error from tuple 1")
	}
}

func paperMonitor(t testing.TB) *monitor.Monitor {
	t.Helper()
	sigma := paperex.Sigma0()
	dm := master.MustNewForRules(paperex.MasterRelation(), sigma)
	m, err := monitor.New(sigma, dm, monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFixStream: every request is answered exactly once, correlated by ID,
// and the output channel closes after the last result.
func TestFixStream(t *testing.T) {
	ds := hospDataset(t, 40)
	m, err := monitor.New(ds.Sigma, ds.Master, monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}

	want := make([]monitor.Result, len(ds.Inputs))
	for i := range ds.Inputs {
		res, err := m.Fix(ds.Inputs[i], monitor.SimulatedUser{Truth: ds.Truths[i]})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	in := make(chan monitor.StreamRequest)
	out := m.FixStream(in, monitor.BatchOptions{Workers: 4})
	go func() {
		for i := range ds.Inputs {
			in <- monitor.StreamRequest{
				ID:    i,
				Tuple: ds.Inputs[i],
				User:  monitor.SimulatedUser{Truth: ds.Truths[i]},
			}
		}
		close(in)
	}()

	seen := make([]bool, len(ds.Inputs))
	count := 0
	for res := range out {
		if res.Err != nil {
			t.Fatalf("request %d: %v", res.ID, res.Err)
		}
		if res.ID < 0 || res.ID >= len(seen) || seen[res.ID] {
			t.Fatalf("bad or duplicate stream id %d", res.ID)
		}
		seen[res.ID] = true
		count++
		if !resultsEqual(res.Result, want[res.ID]) {
			t.Fatalf("stream result %d diverged from sequential Fix", res.ID)
		}
	}
	if count != len(ds.Inputs) {
		t.Fatalf("stream answered %d of %d requests", count, len(ds.Inputs))
	}
}

// decliningUser aborts immediately; sessions must terminate, not hang the
// pool.
type decliningUser struct{}

func (decliningUser) Assert(relation.Tuple, []int) ([]int, []relation.Value) { return nil, nil }

func TestFixBatchDecliningUser(t *testing.T) {
	m := paperMonitor(t)
	inputs := []relation.Tuple{paperex.InputT1(), paperex.InputT4()}
	res, err := m.FixBatch(inputs, func(int) monitor.User { return decliningUser{} }, monitor.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Completed {
			t.Fatalf("tuple %d: declined fix must not complete", i)
		}
	}
}
