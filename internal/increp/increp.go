// Package increp reimplements the IncRep baseline the paper compares
// against in §6 Exp-1(7): the cost-based heuristic repairing algorithm of
// Cong et al., "Improving Data Quality: Consistency and Accuracy"
// (VLDB 2007 — reference [14]). Given a dirty relation and a set of
// constant CFDs, IncRep makes each tuple satisfy the constraints by the
// cheapest attribute modifications, where the cost of changing value v to
// v' is w(A) · dist(v, v') (attribute weight times normalized edit
// distance).
//
// Unlike CertainFix, IncRep repairs without certainty: a violation can be
// resolved either by overwriting the rhs attribute with the pattern
// constant or by moving an lhs attribute away from the pattern, whichever
// is cheaper — so it may "fix" the wrong side, which is exactly the
// failure mode the paper's Example 1 describes and Exp-1(7) measures
// (its F-measure collapses as the noise rate grows).
package increp

import (
	"sort"

	"repro/internal/cfd"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/textdist"
)

// Options tunes the repair.
type Options struct {
	// Weights holds per-attribute weights; nil means every attribute
	// weighs 1. Higher weight = more reluctant to change.
	Weights []float64
	// MaxIterations caps the per-tuple repair loop (0 = 2·arity).
	MaxIterations int
	// CandidateCap bounds the alternative values considered when breaking
	// an lhs match (0 = 50).
	CandidateCap int
}

// Repairer repairs tuples against an indexed constant-CFD set.
type Repairer struct {
	cfds *cfd.Set
	opts Options
	// domain holds, per attribute, the candidate repair values observed
	// in the CFD constants (the active domain of the constraints).
	domain map[int][]relation.Value
}

// New builds a repairer, precomputing the per-attribute candidate values.
func New(cfds *cfd.Set, opts Options) *Repairer {
	if opts.CandidateCap <= 0 {
		opts.CandidateCap = 50
	}
	r := &Repairer{cfds: cfds, opts: opts, domain: map[int][]relation.Value{}}
	seen := map[int]map[relation.Value]bool{}
	add := func(p int, v relation.Value) {
		if seen[p] == nil {
			seen[p] = map[relation.Value]bool{}
		}
		if !seen[p][v] && len(r.domain[p]) < opts.CandidateCap {
			seen[p][v] = true
			r.domain[p] = append(r.domain[p], v)
		}
	}
	for _, c := range cfds.CFDs() {
		lp := c.LHSPattern()
		for i := 0; i < lp.Len(); i++ {
			pos, cell := lp.CellAt(i)
			if cell.Kind == pattern.Const {
				add(pos, cell.Val)
			}
		}
		if c.IsConstant() {
			add(c.RHS(), c.RHSCell().Val)
		}
	}
	for p := range r.domain {
		vs := r.domain[p]
		sort.Slice(vs, func(i, j int) bool { return vs[i].Less(vs[j]) })
	}
	return r
}

func (r *Repairer) weight(p int) float64 {
	if r.opts.Weights == nil || p >= len(r.opts.Weights) {
		return 1
	}
	return r.opts.Weights[p]
}

// cost is w(A) · normalized edit distance between the rendered values.
func (r *Repairer) cost(p int, from, to relation.Value) float64 {
	return r.weight(p) * textdist.Normalized(from.Encode(), to.Encode())
}

// RepairTuple makes t satisfy the constant CFDs by cheapest-first
// modifications, in place. Once a cell is repaired it is frozen — it is
// never modified again — which guarantees termination (the device [14]
// uses for the same purpose); CFDs whose every resolution would touch a
// frozen cell are left violated. Returns the positions changed.
func (r *Repairer) RepairTuple(t relation.Tuple) []int {
	maxIter := r.opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 2 * len(t)
	}
	var frozen relation.AttrSet
	var changedSet relation.AttrSet
	skipped := map[*cfd.CFD]bool{}
	for iter := 0; iter < maxIter; iter++ {
		progressed := false
		for _, c := range r.cfds.ViolationsOf(t) {
			if skipped[c] {
				continue
			}
			pos, val, ok := r.cheapestResolution(t, c, frozen)
			if !ok {
				skipped[c] = true
				continue
			}
			t[pos] = val
			frozen.Add(pos)
			changedSet.Add(pos)
			progressed = true
			break // re-detect violations after every change
		}
		if !progressed {
			break
		}
	}
	return changedSet.Positions()
}

// cheapestResolution picks the least-cost modification resolving one
// constant-CFD violation: overwrite the rhs with the pattern constant, or
// move one constant-matched lhs attribute to the nearest other domain
// value so the pattern no longer applies. Frozen positions are excluded.
func (r *Repairer) cheapestResolution(t relation.Tuple, c *cfd.CFD, frozen relation.AttrSet) (int, relation.Value, bool) {
	bestPos, bestVal, bestCost, found := -1, relation.Null, 0.0, false
	consider := func(pos int, val relation.Value) {
		if frozen.Has(pos) {
			return
		}
		cost := r.cost(pos, t[pos], val)
		if !found || cost < bestCost {
			bestPos, bestVal, bestCost, found = pos, val, cost, true
		}
	}
	// Option (a): adopt the rhs constant.
	consider(c.RHS(), c.RHSCell().Val)
	// Option (b): break the lhs match on some constant cell.
	lp := c.LHSPattern()
	for i := 0; i < lp.Len(); i++ {
		pos, cell := lp.CellAt(i)
		if cell.Kind != pattern.Const {
			continue
		}
		for _, v := range r.domain[pos] {
			if v.Equal(cell.Val) {
				continue
			}
			consider(pos, v)
		}
	}
	return bestPos, bestVal, found
}

// RepairRelation repairs every tuple of a relation in place and returns
// the total number of changed cells.
func (r *Repairer) RepairRelation(rel *relation.Relation) int {
	total := 0
	for _, t := range rel.Tuples() {
		total += len(r.RepairTuple(t))
	}
	return total
}
