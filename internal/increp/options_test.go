package increp_test

import (
	"testing"

	"repro/internal/cfd"
	"repro/internal/increp"
	"repro/internal/pattern"
	"repro/internal/relation"
)

// chainCFDs builds two CFDs whose repairs cascade: A=k → B=v1, B=v1 → C=v2.
func chainCFDs(r *relation.Schema) *cfd.Set {
	return cfd.NewSet(r,
		cfd.MustNew("c1", r, []int{0}, 1,
			pattern.MustTuple([]int{0}, []pattern.Cell{pattern.EqStr("k")}),
			pattern.EqStr("v1")),
		cfd.MustNew("c2", r, []int{1}, 2,
			pattern.MustTuple([]int{1}, []pattern.Cell{pattern.EqStr("v1")}),
			pattern.EqStr("v2")),
	)
}

// TestIncRepCascadingRepairs: fixing B triggers the second CFD and fixes
// C in the same repair loop.
func TestIncRepCascadingRepairs(t *testing.T) {
	r := relation.StringSchema("R", "A", "B", "C")
	rep := increp.New(chainCFDs(r), increp.Options{})
	tup := relation.StringTuple("k", "v1x", "wrong")
	changed := rep.RepairTuple(tup)
	if len(changed) != 2 {
		t.Fatalf("changed = %v, want B and C", changed)
	}
	if tup[1].Str() != "v1" || tup[2].Str() != "v2" {
		t.Fatalf("tuple = %v", tup)
	}
}

// TestIncRepMaxIterations: a cap of one stops after a single change.
func TestIncRepMaxIterations(t *testing.T) {
	r := relation.StringSchema("R", "A", "B", "C")
	rep := increp.New(chainCFDs(r), increp.Options{MaxIterations: 1})
	tup := relation.StringTuple("k", "v1x", "wrong")
	changed := rep.RepairTuple(tup)
	if len(changed) != 1 {
		t.Fatalf("changed = %v, want exactly one cell", changed)
	}
}

// TestIncRepFrozenCellsNotRetouched: a repaired cell is never modified
// again even when a later CFD disagrees — the termination device.
func TestIncRepFrozenCellsNotRetouched(t *testing.T) {
	r := relation.StringSchema("R", "A", "B")
	set := cfd.NewSet(r,
		// Two CFDs with the same lhs demanding different B values: the
		// second can never be satisfied after the first repairs B.
		cfd.MustNew("c1", r, []int{0}, 1,
			pattern.MustTuple([]int{0}, []pattern.Cell{pattern.EqStr("k")}),
			pattern.EqStr("x")),
		cfd.MustNew("c2", r, []int{0}, 1,
			pattern.MustTuple([]int{0}, []pattern.Cell{pattern.EqStr("k")}),
			pattern.EqStr("y")),
	)
	rep := increp.New(set, increp.Options{})
	tup := relation.StringTuple("k", "neither")
	changed := rep.RepairTuple(tup)
	// One repair happens; the disagreeing CFD is skipped, B stays frozen.
	if len(changed) != 1 {
		t.Fatalf("changed = %v", changed)
	}
	if got := tup[1].Str(); got != "x" && got != "y" {
		t.Fatalf("B = %q", got)
	}
}

// TestIncRepCandidateCap: the domain for lhs-breaking honours the cap.
func TestIncRepCandidateCap(t *testing.T) {
	r := relation.StringSchema("R", "A", "B")
	var cfds []*cfd.CFD
	for i := 0; i < 30; i++ {
		cfds = append(cfds, cfd.MustNew("c", r, []int{0}, 1,
			pattern.MustTuple([]int{0}, []pattern.Cell{pattern.EqStr(string(rune('a' + i)))}),
			pattern.EqStr("v")))
	}
	// Cap of 2 candidate values per attribute: construction must not
	// panic, repair must still work.
	rep := increp.New(cfd.NewSet(r, cfds...), increp.Options{CandidateCap: 2})
	tup := relation.StringTuple("a", "wrong")
	rep.RepairTuple(tup)
	if tup[1].Str() != "v" && tup[0].Str() == "a" {
		t.Fatalf("violation unresolved: %v", tup)
	}
}
