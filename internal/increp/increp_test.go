package increp_test

import (
	"testing"

	"repro/internal/cfd"
	"repro/internal/increp"
	"repro/internal/master"
	"repro/internal/paperex"
	"repro/internal/pattern"
	"repro/internal/relation"
)

func sigma0CFDs(t *testing.T) *cfd.Set {
	t.Helper()
	sigma := paperex.Sigma0()
	dm := master.MustNewForRules(paperex.MasterRelation(), sigma)
	set, err := cfd.FromRules(sigma, dm)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestIncRepFixesRHSWhenCheap: when the lhs attributes carry higher
// confidence weights (the cost model of [14]), IncRep adopts the rhs
// constant — the desirable case.
func TestIncRepFixesRHSWhenCheap(t *testing.T) {
	r := paperex.SchemaR()
	set := sigma0CFDs(t)
	weights := make([]float64, r.Arity())
	for i := range weights {
		weights[i] = 3 // lhs attributes: expensive to touch
	}
	weights[r.MustPos("city")] = 1
	weights[r.MustPos("str")] = 1
	weights[r.MustPos("zip")] = 1
	rep := increp.New(set, increp.Options{Weights: weights})

	// Everything correct for s1 except city.
	t2 := paperex.InputT2()
	t2[r.MustPos("str")] = relation.String("51 Elm Row")
	t2[r.MustPos("zip")] = relation.String("EH7 4AH")
	changed := rep.RepairTuple(t2)
	if len(changed) == 0 {
		t.Fatal("IncRep must repair t2")
	}
	if t2[r.MustPos("city")].Str() != "Edi" {
		t.Fatalf("city = %v, want Edi", t2[r.MustPos("city")])
	}
}

// TestIncRepMayBreakLHS is the Example 1 phenomenon: for t1, overwriting
// city (Edi→Ldn is 3 edits on a 3-letter value) competes with moving the
// short lhs value AC (020→131); IncRep picks a cheapest resolution with
// no certainty guarantee, so SOME attribute changes — but nothing
// guarantees it picked correctly. The test pins the observable contract:
// the violation is resolved, and exactly one side of the constraint was
// touched.
func TestIncRepMayBreakLHS(t *testing.T) {
	set := sigma0CFDs(t)
	rep := increp.New(set, increp.Options{})

	t1 := paperex.InputT1()
	before := len(set.ViolationsOf(t1))
	changed := rep.RepairTuple(t1)
	after := len(set.ViolationsOf(t1))
	if len(changed) == 0 {
		t.Fatal("t1's inconsistencies require changes")
	}
	if after >= before {
		t.Fatalf("violations did not decrease: %d -> %d", before, after)
	}
}

// TestIncRepWeights: a very heavy rhs weight flips the resolution toward
// breaking the lhs.
func TestIncRepWeights(t *testing.T) {
	r := relation.StringSchema("R", "A", "B")
	lhs := []int{0}
	set := cfd.NewSet(r,
		cfd.MustNew("c1", r, lhs, 1,
			pattern.MustTuple(lhs, []pattern.Cell{pattern.EqStr("k")}),
			pattern.EqStr("good")),
		cfd.MustNew("c2", r, lhs, 1,
			pattern.MustTuple(lhs, []pattern.Cell{pattern.EqStr("kx")}),
			pattern.EqStr("other")),
	)

	// Cheap rhs: repair B.
	cheap := increp.New(set, increp.Options{})
	tup := relation.StringTuple("k", "good?")
	cheap.RepairTuple(tup)
	if tup[1].Str() != "good" {
		t.Fatalf("B = %v, want good", tup[1])
	}

	// Heavy rhs weight: move A off the pattern instead.
	heavy := increp.New(set, increp.Options{Weights: []float64{1, 1000}})
	tup = relation.StringTuple("k", "bad-value")
	heavy.RepairTuple(tup)
	if tup[1].Str() == "good" {
		t.Fatal("heavy rhs weight must prevent the rhs overwrite")
	}
	if tup[0].Str() == "k" {
		t.Fatal("lhs must have moved off the pattern")
	}
	if len(set.ViolationsOf(tup)) != 0 {
		t.Fatal("tuple must end violation-free")
	}
}

// TestIncRepNoViolationsNoChanges: clean tuples are untouched.
func TestIncRepNoViolationsNoChanges(t *testing.T) {
	set := sigma0CFDs(t)
	rep := increp.New(set, increp.Options{})
	t4 := paperex.InputT4() // matches no CFD lhs
	if changed := rep.RepairTuple(t4); len(changed) != 0 {
		t.Fatalf("changed %v on a tuple with no violations", changed)
	}
}

// TestIncRepRelation: whole-relation repair counts changed cells.
func TestIncRepRelation(t *testing.T) {
	set := sigma0CFDs(t)
	rep := increp.New(set, increp.Options{})
	rel := relation.NewRelation(paperex.SchemaR())
	rel.MustAppend(paperex.InputT1(), paperex.InputT2(), paperex.InputT4())
	n := rep.RepairRelation(rel)
	if n == 0 {
		t.Fatal("relation with dirty tuples must see changes")
	}
	// The clean tuple t4 must stay untouched.
	if !rel.Tuple(2).Equal(paperex.InputT4()) {
		t.Fatalf("clean tuple modified: %v", rel.Tuple(2))
	}
}
