package analysis_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/fix"
	"repro/internal/master"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// randomInstance builds a small random (Σ, Dm, region) triple over a tiny
// value domain to force collisions, conflicts and cascades.
func randomInstance(rng *rand.Rand) (*rule.Set, *master.Data, *fix.Region) {
	nR := 4 + rng.Intn(3)
	nM := 4 + rng.Intn(3)
	rNames := make([]string, nR)
	for i := range rNames {
		rNames[i] = fmt.Sprintf("A%d", i)
	}
	mNames := make([]string, nM)
	for i := range mNames {
		mNames[i] = fmt.Sprintf("M%d", i)
	}
	r := relation.StringSchema("R", rNames...)
	rm := relation.StringSchema("Rm", mNames...)

	vals := []string{"a", "b"}
	rel := relation.NewRelation(rm)
	for i, n := 0, 2+rng.Intn(3); i < n; i++ {
		tup := make(relation.Tuple, nM)
		for j := range tup {
			tup[j] = relation.String(vals[rng.Intn(len(vals))])
		}
		rel.MustAppend(tup)
	}

	sigma := rule.MustNewSet(r, rm)
	for i, n := 0, 2+rng.Intn(5); i < n; i++ {
		xLen := 1 + rng.Intn(2)
		perm := rng.Perm(nR)
		x := perm[:xLen]
		b := perm[xLen] // distinct from X by construction
		xm := make([]int, xLen)
		for j := range xm {
			xm[j] = rng.Intn(nM)
		}
		bm := rng.Intn(nM)
		// pattern over 0-2 attributes (any attrs, incl. X members)
		var pPos []int
		var pCells []pattern.Cell
		for _, p := range rng.Perm(nR)[:rng.Intn(3)] {
			pPos = append(pPos, p)
			v := relation.String(vals[rng.Intn(len(vals))])
			switch rng.Intn(3) {
			case 0:
				pCells = append(pCells, pattern.Eq(v))
			case 1:
				pCells = append(pCells, pattern.Neq(v))
			default:
				pCells = append(pCells, pattern.Any)
			}
		}
		tp := pattern.MustTuple(pPos, pCells)
		ru, err := rule.New(fmt.Sprintf("r%d", i), r, rm, x, xm, b, bm, tp)
		if err != nil {
			continue
		}
		if err := sigma.Add(ru); err != nil {
			panic(err)
		}
	}

	// Region: 1-3 Z attributes, 1-2 rows constraining a subset of Z.
	zLen := 1 + rng.Intn(3)
	z := rng.Perm(nR)[:zLen]
	tc := pattern.NewTableau()
	for i, rows := 0, 1+rng.Intn(2); i < rows; i++ {
		var pos []int
		var cells []pattern.Cell
		for _, p := range z {
			if rng.Intn(2) == 0 {
				continue
			}
			pos = append(pos, p)
			v := relation.String(vals[rng.Intn(len(vals))])
			switch rng.Intn(3) {
			case 0:
				cells = append(cells, pattern.Eq(v))
			case 1:
				cells = append(cells, pattern.Neq(v))
			default:
				cells = append(cells, pattern.Any)
			}
		}
		tc.Add(pattern.MustTuple(pos, cells))
	}
	reg := fix.MustRegion(z, tc)
	dm := master.MustNewForRules(rel, sigma)
	return sigma, dm, reg
}

// TestConsistencyCheckerMatchesOracle is the central property test of the
// §4 implementation: on hundreds of random instances, the Thm-4 closure
// checker and the exhaustive fix-space oracle must agree on both the
// consistency and the coverage problems.
func TestConsistencyCheckerMatchesOracle(t *testing.T) {
	iterations := 400
	if testing.Short() {
		iterations = 60
	}
	for seed := 0; seed < iterations; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		sigma, dm, reg := randomInstance(rng)
		c := analysis.NewChecker(sigma, dm, analysis.Options{})

		fast, err := c.Consistent(reg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		slow, err := c.OracleConsistent(reg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fast.OK != slow.OK {
			t.Fatalf("seed %d: consistency mismatch: checker=%v (%s) oracle=%v (%s)\nΣ:\n%s",
				seed, fast.OK, fast.Detail, slow.OK, slow.Detail, sigma)
		}

		fastC, err := c.CertainRegion(reg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		slowC, err := c.OracleCertainRegion(reg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fastC.OK != slowC.OK {
			t.Fatalf("seed %d: coverage mismatch: checker=%v (%s) oracle=%v (%s)\nΣ:\n%s",
				seed, fastC.OK, fastC.Detail, slowC.OK, slowC.Detail, sigma)
		}
	}
}

// TestDirectCheckerMatchesDirectOracle property-tests the Thm-5 SQL-style
// direct-fix checker against literal instantiation. Rules are forced into
// direct form (Xp ⊆ X) by restricting patterns to lhs attributes.
func TestDirectCheckerMatchesDirectOracle(t *testing.T) {
	iterations := 400
	if testing.Short() {
		iterations = 60
	}
	for seed := 0; seed < iterations; seed++ {
		rng := rand.New(rand.NewSource(int64(1_000_000 + seed)))
		sigma, dm, reg := randomDirectInstance(rng)
		c := analysis.NewChecker(sigma, dm, analysis.Options{})

		fast, err := c.DirectConsistent(reg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		slow, err := c.DirectOracleConsistent(reg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fast.OK != slow.OK {
			t.Fatalf("seed %d: direct consistency mismatch: checker=%v (%s) oracle=%v (%s)\nΣ:\n%s",
				seed, fast.OK, fast.Detail, slow.OK, slow.Detail, sigma)
		}

		fastC, err := c.DirectCertainRegion(reg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		slowC, err := c.DirectOracleCertainRegion(reg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fastC.OK != slowC.OK {
			t.Fatalf("seed %d: direct coverage mismatch: checker=%v (%s) oracle=%v (%s)\nΣ:\n%s",
				seed, fastC.OK, fastC.Detail, slowC.OK, slowC.Detail, sigma)
		}
	}
}

// randomDirectInstance is randomInstance with patterns restricted to lhs
// attributes (the direct-fix requirement Xp ⊆ X).
func randomDirectInstance(rng *rand.Rand) (*rule.Set, *master.Data, *fix.Region) {
	nR := 4 + rng.Intn(3)
	nM := 4 + rng.Intn(3)
	rNames := make([]string, nR)
	for i := range rNames {
		rNames[i] = fmt.Sprintf("A%d", i)
	}
	mNames := make([]string, nM)
	for i := range mNames {
		mNames[i] = fmt.Sprintf("M%d", i)
	}
	r := relation.StringSchema("R", rNames...)
	rm := relation.StringSchema("Rm", mNames...)

	vals := []string{"a", "b"}
	rel := relation.NewRelation(rm)
	for i, n := 0, 2+rng.Intn(3); i < n; i++ {
		tup := make(relation.Tuple, nM)
		for j := range tup {
			tup[j] = relation.String(vals[rng.Intn(len(vals))])
		}
		rel.MustAppend(tup)
	}

	sigma := rule.MustNewSet(r, rm)
	for i, n := 0, 2+rng.Intn(5); i < n; i++ {
		xLen := 1 + rng.Intn(2)
		perm := rng.Perm(nR)
		x := perm[:xLen]
		b := perm[xLen]
		xm := make([]int, xLen)
		for j := range xm {
			xm[j] = rng.Intn(nM)
		}
		bm := rng.Intn(nM)
		var pPos []int
		var pCells []pattern.Cell
		for _, p := range x {
			if rng.Intn(2) == 0 {
				continue
			}
			pPos = append(pPos, p)
			v := relation.String(vals[rng.Intn(len(vals))])
			if rng.Intn(2) == 0 {
				pCells = append(pCells, pattern.Eq(v))
			} else {
				pCells = append(pCells, pattern.Neq(v))
			}
		}
		tp := pattern.MustTuple(pPos, pCells)
		ru, err := rule.New(fmt.Sprintf("r%d", i), r, rm, x, xm, b, bm, tp)
		if err != nil {
			continue
		}
		if err := sigma.Add(ru); err != nil {
			panic(err)
		}
	}

	zLen := 1 + rng.Intn(3)
	z := rng.Perm(nR)[:zLen]
	tc := pattern.NewTableau()
	var pos []int
	var cells []pattern.Cell
	for _, p := range z {
		if rng.Intn(2) == 0 {
			continue
		}
		pos = append(pos, p)
		v := relation.String(vals[rng.Intn(len(vals))])
		switch rng.Intn(3) {
		case 0:
			cells = append(cells, pattern.Eq(v))
		case 1:
			cells = append(cells, pattern.Neq(v))
		default:
			cells = append(cells, pattern.Any)
		}
	}
	tc.Add(pattern.MustTuple(pos, cells))
	reg := fix.MustRegion(z, tc)
	dm := master.MustNewForRules(rel, sigma)
	return sigma, dm, reg
}
