package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/fix"
	"repro/internal/master"
	"repro/internal/paperex"
	"repro/internal/pattern"
	"repro/internal/rule"
)

func newChecker(t *testing.T) *analysis.Checker {
	t.Helper()
	sigma := paperex.Sigma0()
	dm := master.MustNewForRules(paperex.MasterRelation(), sigma)
	return analysis.NewChecker(sigma, dm, analysis.Options{})
}

// regionAHZ is (Z_AHZ, T_AHZ) of Examples 8/10: Z = (AC, phn, type, zip),
// pattern (!0800, _, 1, _).
func regionAHZ(sigma *rule.Set) *fix.Region {
	r := sigma.Schema()
	z := r.MustPosList("AC", "phn", "type", "zip")
	row := pattern.MustTuple(
		[]int{r.MustPos("AC"), r.MustPos("type")},
		[]pattern.Cell{pattern.NeqStr("0800"), pattern.EqStr("1")},
	)
	return fix.MustRegion(z, pattern.NewTableau(row))
}

// regionAH is (Z_AH, T_AH) of Example 6.
func regionAH(sigma *rule.Set) *fix.Region {
	r := sigma.Schema()
	z := r.MustPosList("AC", "phn", "type")
	row := pattern.MustTuple(
		[]int{r.MustPos("AC"), r.MustPos("type")},
		[]pattern.Cell{pattern.NeqStr("0800"), pattern.EqStr("1")},
	)
	return fix.MustRegion(z, pattern.NewTableau(row))
}

// regionZmi is the certain region (Z_zmi, T_zmi) of Example 9.
func regionZmi(sigma *rule.Set, dm *master.Data) *fix.Region {
	r := sigma.Schema()
	rm := dm.Schema()
	z := r.MustPosList("zip", "phn", "type", "item")
	tc := pattern.NewTableau()
	for _, tm := range dm.Relation().Tuples() {
		tc.Add(pattern.MustTuple(
			[]int{r.MustPos("zip"), r.MustPos("phn"), r.MustPos("type")},
			[]pattern.Cell{
				pattern.Eq(tm[rm.MustPos("zip")]),
				pattern.Eq(tm[rm.MustPos("Mphn")]),
				pattern.EqStr("2"),
			},
		))
	}
	return fix.MustRegion(z, tc)
}

// TestExample10Inconsistent: (Σ0, Dm) is not consistent relative to
// (Z_AHZ, T_AHZ) — zip and (AC, phn) can point at different master tuples.
func TestExample10Inconsistent(t *testing.T) {
	c := newChecker(t)
	v, err := c.Consistent(regionAHZ(c.Sigma()))
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("(Z_AHZ, T_AHZ) must be inconsistent (Example 10)")
	}
	if v.Detail == "" {
		t.Error("negative verdict must carry a witness detail")
	}
}

// TestExampleAHConsistentButNotCertain: dropping zip restores consistency,
// but the region covers neither FN/LN nor item.
func TestExampleAHConsistentButNotCertain(t *testing.T) {
	c := newChecker(t)
	reg := regionAH(c.Sigma())
	v, err := c.Consistent(reg)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Fatalf("(Z_AH, T_AH) must be consistent: %s", v.Detail)
	}
	v, err = c.CertainRegion(reg)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("(Z_AH, T_AH) must not be a certain region")
	}
	if !strings.Contains(v.Detail, "item") {
		t.Errorf("coverage detail should mention item: %s", v.Detail)
	}
}

// TestExample9CertainRegion: (Z_zmi, T_zmi) is a certain region.
func TestExample9CertainRegion(t *testing.T) {
	c := newChecker(t)
	reg := regionZmi(c.Sigma(), c.Master())
	v, err := c.CertainRegion(reg)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Fatalf("(Z_zmi, T_zmi) must be a certain region: %s", v.Detail)
	}
}

// TestExample9RegionZL: the second certain region of Example 9,
// ZL = (FN, LN, AC, phn, type, item) with per-master patterns
// (f, l, a, h, 1, _).
func TestExample9RegionZL(t *testing.T) {
	c := newChecker(t)
	r := c.Sigma().Schema()
	rm := c.Master().Schema()
	z := r.MustPosList("FN", "LN", "AC", "phn", "type", "item")
	tc := pattern.NewTableau()
	for _, tm := range c.Master().Relation().Tuples() {
		tc.Add(pattern.MustTuple(
			r.MustPosList("FN", "LN", "AC", "phn", "type"),
			[]pattern.Cell{
				pattern.Eq(tm[rm.MustPos("FN")]),
				pattern.Eq(tm[rm.MustPos("LN")]),
				pattern.Eq(tm[rm.MustPos("AC")]),
				pattern.Eq(tm[rm.MustPos("Hphn")]),
				pattern.EqStr("1"),
			},
		))
	}
	reg := fix.MustRegion(z, tc)
	v, err := c.CertainRegion(reg)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Fatalf("(Z_L, T_L) must be a certain region: %s", v.Detail)
	}
}

// TestEmptyTableauVerdicts: an empty tableau is vacuously consistent but
// never a useful certain region.
func TestEmptyTableauVerdicts(t *testing.T) {
	c := newChecker(t)
	r := c.Sigma().Schema()
	reg := fix.MustRegion(r.MustPosList("zip"), pattern.NewTableau())
	v, err := c.Consistent(reg)
	if err != nil || !v.OK {
		t.Fatalf("empty tableau must be consistent: %v %v", v, err)
	}
	v, err = c.CertainRegion(reg)
	if err != nil || v.OK {
		t.Fatalf("empty tableau must not be a certain region: %v %v", v, err)
	}
}

// TestInstantiationCap: a tiny cap makes wildcard rows refuse to expand.
func TestInstantiationCap(t *testing.T) {
	sigma := paperex.Sigma0()
	dm := master.MustNewForRules(paperex.MasterRelation(), sigma)
	c := analysis.NewChecker(sigma, dm, analysis.Options{InstantiationCap: 2})
	if _, err := c.Consistent(regionAHZ(sigma)); err == nil {
		t.Fatal("expected instantiation-cap error")
	}
}

// TestCheckerAgreesWithOracleOnPaperRegions cross-checks the PTIME checker
// against the exhaustive oracle on every fixture region.
func TestCheckerAgreesWithOracleOnPaperRegions(t *testing.T) {
	c := newChecker(t)
	regions := map[string]*fix.Region{
		"AHZ": regionAHZ(c.Sigma()),
		"AH":  regionAH(c.Sigma()),
		"zmi": regionZmi(c.Sigma(), c.Master()),
	}
	for name, reg := range regions {
		fast, err := c.Consistent(reg)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := c.OracleConsistent(reg)
		if err != nil {
			t.Fatal(err)
		}
		if fast.OK != slow.OK {
			t.Errorf("%s: consistency disagrees: fast %v vs oracle %v (%s | %s)",
				name, fast.OK, slow.OK, fast.Detail, slow.Detail)
		}
		fastC, err := c.CertainRegion(reg)
		if err != nil {
			t.Fatal(err)
		}
		slowC, err := c.OracleCertainRegion(reg)
		if err != nil {
			t.Fatal(err)
		}
		if fastC.OK != slowC.OK {
			t.Errorf("%s: coverage disagrees: fast %v vs oracle %v (%s | %s)",
				name, fastC.OK, slowC.OK, fastC.Detail, slowC.Detail)
		}
	}
}
