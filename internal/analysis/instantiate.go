package analysis

import (
	"fmt"
	"sync"

	"repro/internal/fix"
	"repro/internal/pattern"
	"repro/internal/relation"
)

// domains lazily computes the per-attribute active domain: the constants
// that can influence rule applicability on each R attribute. Following the
// Thm 1 proof, behaviours of all other constants are isomorphic to a
// single fresh constant per attribute, so instantiating wildcard/negated
// cells over activeDomain(A) ∪ {fresh(A)} is sound and complete.
type domains struct {
	once  sync.Once
	dom   map[int][]relation.Value
	fresh map[int]relation.Value
}

func (c *Checker) domainFor(p int) ([]relation.Value, relation.Value) {
	c.domains.once.Do(c.computeDomains)
	return c.domains.dom[p], c.domains.fresh[p]
}

func (c *Checker) computeDomains() {
	r := c.sigma.Schema()
	dom := make(map[int][]relation.Value, r.Arity())
	seen := make(map[int]map[relation.Value]bool, r.Arity())
	add := func(p int, v relation.Value) {
		if seen[p] == nil {
			seen[p] = map[relation.Value]bool{}
		}
		if !seen[p][v] {
			seen[p][v] = true
			dom[p] = append(dom[p], v)
		}
	}
	// Pattern constants per attribute.
	for p, vs := range c.sigma.ActiveDomain() {
		for _, v := range vs {
			add(p, v)
		}
	}
	// Master values at positions λϕ-paired with each attribute: these are
	// the only master constants the probe t[X] = tm[Xm] compares against.
	for _, ru := range c.sigma.Rules() {
		x, xm := ru.LHS(), ru.LHSM()
		for i := range x {
			for _, tm := range c.dm.Relation().Tuples() {
				add(x[i], tm[xm[i]])
			}
		}
	}
	// Fresh constants: guaranteed outside the domain.
	fresh := make(map[int]relation.Value, r.Arity())
	for p := 0; p < r.Arity(); p++ {
		fresh[p] = freshValue(r.Attr(p).Type, seen[p])
	}
	c.domains.dom = dom
	c.domains.fresh = fresh
}

func freshValue(t relation.Type, taken map[relation.Value]bool) relation.Value {
	if t == relation.TypeInt {
		var max int64
		for v := range taken {
			if v.Kind() == relation.KindInt && v.Int64() > max {
				max = v.Int64()
			}
		}
		return relation.Int(max + 1_000_003)
	}
	v := relation.String("⊥fresh⊥")
	for taken[v] {
		v = relation.String(v.Str() + "~")
	}
	return v
}

// instantiateRow expands one tableau row into the concrete value vectors
// (aligned with reg.Z()) the concrete checker must examine. Concrete rows
// expand to themselves; wildcard and negated cells range over the active
// domain plus the fresh constant.
func (c *Checker) instantiateRow(reg *fix.Region, row pattern.Tuple) ([][]relation.Value, error) {
	zPos := reg.Z()
	choices := make([][]relation.Value, len(zPos))
	total := 1
	cap := c.opts.instantiationCap()
	for i, p := range zPos {
		cell, _ := row.CellFor(p) // implicit wildcard when unmentioned
		switch cell.Kind {
		case pattern.Const:
			choices[i] = []relation.Value{cell.Val}
		case pattern.Wildcard:
			dom, fresh := c.domainFor(p)
			choices[i] = append(append([]relation.Value(nil), dom...), fresh)
		case pattern.NotConst:
			dom, fresh := c.domainFor(p)
			var keep []relation.Value
			for _, v := range dom {
				if !v.Equal(cell.Val) {
					keep = append(keep, v)
				}
			}
			choices[i] = append(keep, fresh)
		}
		total *= len(choices[i])
		if total > cap {
			return nil, fmt.Errorf("analysis: row expands to more than %d instantiations (attribute %s alone has %d choices); raise Options.InstantiationCap or make the tableau concrete",
				cap, c.sigma.Schema().Attr(p).Name, len(choices[i]))
		}
	}
	out := make([][]relation.Value, 0, total)
	vec := make([]relation.Value, len(zPos))
	var walk func(i int)
	walk = func(i int) {
		if i == len(zPos) {
			out = append(out, append([]relation.Value(nil), vec...))
			return
		}
		for _, v := range choices[i] {
			vec[i] = v
			walk(i + 1)
		}
	}
	walk(0)
	return out, nil
}
