package analysis

import (
	"repro/internal/fix"
	"repro/internal/relation"
)

// OracleConsistent decides consistency by exhaustive exploration of the
// fix space for every instantiation of every tableau row — the definition
// of §3 executed literally. It is the ground truth the PTIME checker is
// property-tested against; exponential, use on small inputs only.
func (c *Checker) OracleConsistent(reg *fix.Region) (Verdict, error) {
	return c.oracleRows(reg, false)
}

// OracleCertainRegion is OracleConsistent extended with the coverage
// condition: every instantiation's unique fix covers all of R.
func (c *Checker) OracleCertainRegion(reg *fix.Region) (Verdict, error) {
	return c.oracleRows(reg, true)
}

func (c *Checker) oracleRows(reg *fix.Region, coverage bool) (Verdict, error) {
	tc := reg.Tableau()
	if coverage && tc.Len() == 0 {
		return failf("empty tableau marks no tuples"), nil
	}
	r := c.sigma.Schema()
	zPos := reg.Z()
	zSet := reg.ZSet()
	for i := 0; i < tc.Len(); i++ {
		insts, err := c.instantiateRow(reg, tc.Row(i))
		if err != nil {
			return Verdict{}, err
		}
		for _, vals := range insts {
			t := relation.NewTuple(r.Arity())
			for j, p := range zPos {
				t[p] = vals[j]
			}
			// Attributes outside Z are unread by the process (premises are
			// always validated); fresh values stand in for "any".
			for p := 0; p < r.Arity(); p++ {
				if !zSet.Has(p) {
					_, f := c.domainFor(p)
					t[p] = f
				}
			}
			res := fix.Explore(c.sigma, c.dm, t, zSet, 0)
			if res.Truncated {
				return Verdict{}, errTruncated
			}
			if len(res.Outcomes) != 1 {
				return failf("row %d instantiation %v has %d distinct fixes", i, vals, len(res.Outcomes)), nil
			}
			if coverage && res.Outcomes[0].Covered.Len() != r.Arity() {
				return failf("row %d instantiation %v covers only %v", i, vals,
					res.Outcomes[0].Covered.Names(r)), nil
			}
		}
	}
	return okVerdict, nil
}

var errTruncated = errorString("analysis: oracle state space exceeded cap")

type errorString string

func (e errorString) Error() string { return string(e) }
