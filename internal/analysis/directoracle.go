package analysis

import (
	"repro/internal/fix"
	"repro/internal/relation"
)

// DirectOracleConsistent decides direct-fix consistency by literal
// instantiation: for every marked-instantiation and every attribute
// outside Z, the applicable rules must agree on the assigned value.
// Ground truth for property-testing DirectConsistent.
func (c *Checker) DirectOracleConsistent(reg *fix.Region) (Verdict, error) {
	return c.directOracle(reg, false)
}

// DirectOracleCertainRegion adds the coverage condition: every attribute
// outside Z receives a value from at least one applicable rule.
func (c *Checker) DirectOracleCertainRegion(reg *fix.Region) (Verdict, error) {
	return c.directOracle(reg, true)
}

func (c *Checker) directOracle(reg *fix.Region, coverage bool) (Verdict, error) {
	rules, err := directRules(c.sigma, reg)
	if err != nil {
		return Verdict{}, err
	}
	r := c.sigma.Schema()
	zPos := reg.Z()
	zSet := reg.ZSet()
	if coverage && reg.Tableau().Len() == 0 {
		return failf("empty tableau marks no tuples"), nil
	}
	for ri := 0; ri < reg.Tableau().Len(); ri++ {
		insts, err := c.instantiateRow(reg, reg.Tableau().Row(ri))
		if err != nil {
			return Verdict{}, err
		}
		for _, vals := range insts {
			t := relation.NewTuple(r.Arity())
			for j, p := range zPos {
				t[p] = vals[j]
			}
			perAttr := map[int][]relation.Value{}
			for _, ru := range rules {
				if !ru.MatchesPattern(t) {
					continue
				}
				for _, v := range c.dm.RHSValues(ru, t) {
					perAttr[ru.RHS()] = appendDistinct(perAttr[ru.RHS()], v)
				}
			}
			for b, vs := range perAttr {
				if len(vs) > 1 {
					return failf("row %d instantiation %v: attribute %s gets %v",
						ri, vals, r.Attr(b).Name, vs), nil
				}
			}
			if coverage {
				for b := 0; b < r.Arity(); b++ {
					if !zSet.Has(b) && len(perAttr[b]) == 0 {
						return failf("row %d instantiation %v: attribute %s uncovered",
							ri, vals, r.Attr(b).Name), nil
					}
				}
			}
		}
	}
	return okVerdict, nil
}
