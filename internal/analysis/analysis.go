// Package analysis implements the static analyses of §4 of the paper for
// editing rules, master data and regions:
//
//   - the consistency problem — does every tuple marked by (Z, Tc) have a
//     unique fix by (Σ, Dm)? (coNP-complete in general, Thm 1)
//   - the coverage problem — is (Z, Tc) a certain region? (Thm 2)
//   - the PTIME special cases: concrete tableaus (Thm 4) and direct fixes
//     (Thm 5)
//   - the Z-validating, Z-counting and Z-minimum problems (Thms 6, 9, 12),
//     solved exactly by bounded search (they are NP-/#P-complete, so the
//     exact solvers are exponential and intended for moderate inputs; the
//     production heuristics live in package suggest)
//
// General (non-concrete) tableaus are decided by instantiating wildcard
// and negated cells over the per-attribute active domain plus one fresh
// constant — the technique used in the Thm 1/Thm 6 proofs — and running
// the concrete checker on every instantiation.
package analysis

import (
	"fmt"

	"repro/internal/fix"
	"repro/internal/master"
	"repro/internal/rule"
)

// Options bounds the checkers. The zero value selects defaults.
type Options struct {
	// InstantiationCap bounds how many concrete instantiations a single
	// pattern row may expand into before the checker refuses (the general
	// problem is coNP-complete; unbounded expansion is exponential).
	InstantiationCap int
}

// DefaultInstantiationCap is used when Options.InstantiationCap is zero.
const DefaultInstantiationCap = 200_000

func (o Options) instantiationCap() int {
	if o.InstantiationCap <= 0 {
		return DefaultInstantiationCap
	}
	return o.InstantiationCap
}

// Verdict is the result of a consistency or coverage check.
type Verdict struct {
	OK bool
	// Detail explains a negative verdict: the conflicting attribute and
	// values for consistency, the uncovered attributes for coverage.
	Detail string
}

// ok is the positive verdict.
var okVerdict = Verdict{OK: true}

// failf builds a negative verdict.
func failf(format string, args ...any) Verdict {
	return Verdict{OK: false, Detail: fmt.Sprintf(format, args...)}
}

// Checker bundles (Σ, Dm) with options; its methods answer the §4 problems
// for regions over Σ's input schema. A Checker is safe for concurrent use.
type Checker struct {
	sigma   *rule.Set
	dm      *master.Data
	opts    Options
	domains domains
}

// NewChecker builds a checker for (Σ, Dm).
func NewChecker(sigma *rule.Set, dm *master.Data, opts Options) *Checker {
	return &Checker{sigma: sigma, dm: dm, opts: opts}
}

// Sigma returns Σ.
func (c *Checker) Sigma() *rule.Set { return c.sigma }

// Master returns Dm.
func (c *Checker) Master() *master.Data { return c.dm }

// Consistent decides whether (Σ, Dm) is consistent relative to (Z, Tc):
// every marked tuple has a unique fix (§4.1). Concrete rows use the PTIME
// algorithm of Thm 4; rows with wildcards or negations are instantiated
// over the active domain.
func (c *Checker) Consistent(reg *fix.Region) (Verdict, error) {
	return c.checkRows(reg, false)
}

// CertainRegion decides whether (Z, Tc) is a certain region for (Σ, Dm):
// every marked tuple has a certain fix (§4.1, the coverage problem).
func (c *Checker) CertainRegion(reg *fix.Region) (Verdict, error) {
	return c.checkRows(reg, true)
}

// checkRows tests each tableau row independently (Thm 4 reduces multi-row
// tableaus to the single-row case).
func (c *Checker) checkRows(reg *fix.Region, coverage bool) (Verdict, error) {
	tc := reg.Tableau()
	if coverage && tc.Len() == 0 {
		// An empty tableau marks no tuples; vacuously consistent but it is
		// not a useful certain region. Treat as not covering.
		return failf("empty tableau marks no tuples"), nil
	}
	for i := 0; i < tc.Len(); i++ {
		rows, err := c.instantiateRow(reg, tc.Row(i))
		if err != nil {
			return Verdict{}, err
		}
		for _, inst := range rows {
			v := c.checkConcrete(reg.Z(), inst, coverage)
			if !v.OK {
				v.Detail = fmt.Sprintf("row %d: %s", i, v.Detail)
				return v, nil
			}
		}
	}
	return okVerdict, nil
}
