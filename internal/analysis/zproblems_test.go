package analysis_test

import (
	"testing"

	"repro/internal/fix"
	"repro/internal/pattern"
	"repro/internal/relation"
)

// TestZValidatingSigma0: (zip, phn, type, item) admits a certain-region
// tableau for (Σ0, Dm) — Example 9 exhibits one — while dropping item
// (which no rule can fix) makes every tableau fail coverage.
func TestZValidatingSigma0(t *testing.T) {
	c := newChecker(t)
	r := c.Sigma().Schema()

	ok, err := c.ZValidating(r.MustPosList("zip", "phn", "type", "item"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Z = (zip, phn, type, item) must validate (Example 9)")
	}

	ok, err = c.ZValidating(r.MustPosList("zip", "phn", "type"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Z without item cannot validate: item is unfixable")
	}
}

func TestZValidatingRejectsDuplicates(t *testing.T) {
	c := newChecker(t)
	r := c.Sigma().Schema()
	z := []int{r.MustPos("zip"), r.MustPos("zip")}
	if _, err := c.ZValidating(z); err == nil {
		t.Fatal("duplicate Z attributes must error")
	}
}

// TestZCountingSigma0: the count is positive for the validating Z and the
// enumeration agrees with ZValidating.
func TestZCountingSigma0(t *testing.T) {
	c := newChecker(t)
	r := c.Sigma().Schema()
	z := r.MustPosList("zip", "phn", "type", "item")
	n, err := c.ZCounting(z)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("ZCounting must be positive for a validating Z")
	}
	rows, err := c.ZEnumerate(z, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("ZEnumerate len %d != ZCounting %d", len(rows), n)
	}
	// Every enumerated row really is a certain region.
	for _, row := range rows {
		reg, err := regionFromRow(z, row)
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.CertainRegion(reg)
		if err != nil || !v.OK {
			t.Fatalf("enumerated row is not certain: %v %v", v, err)
		}
	}
	// Limited enumeration stops early.
	one, err := c.ZEnumerate(z, 1)
	if err != nil || len(one) != 1 {
		t.Fatalf("ZEnumerate limit=1 returned %d rows (%v)", len(one), err)
	}
}

// TestZMinimumSigma0: the free attributes phn, type, item are forced into
// every certain region, and one more attribute (zip) suffices — so the
// minimum is exactly 4.
func TestZMinimumSigma0(t *testing.T) {
	c := newChecker(t)
	r := c.Sigma().Schema()

	if _, ok, err := c.ZMinimum(3); err != nil || ok {
		t.Fatalf("K=3 must fail (free attributes alone cover nothing): ok=%v err=%v", ok, err)
	}
	z, ok, err := c.ZMinimum(4)
	if err != nil || !ok {
		t.Fatalf("K=4 must succeed: ok=%v err=%v", ok, err)
	}
	zSet := relation.NewAttrSet(z...)
	for _, name := range []string{"phn", "type", "item"} {
		if !zSet.Has(r.MustPos(name)) {
			t.Errorf("minimum Z must contain free attribute %s; got %v", name, zSet.Names(r))
		}
	}
	if len(z) != 4 {
		t.Errorf("|Z| = %d, want 4", len(z))
	}
}

// TestZMinimumTooManyFreeAttrs: when the budget is below the number of
// free attributes the answer is immediately negative.
func TestZMinimumTooManyFreeAttrs(t *testing.T) {
	c := newChecker(t)
	if _, ok, err := c.ZMinimum(1); err != nil || ok {
		t.Fatalf("K=1 must fail: ok=%v err=%v", ok, err)
	}
}

func regionFromRow(z []int, row pattern.Tuple) (*fix.Region, error) {
	return fix.NewRegion(z, pattern.NewTableau(row))
}
