package analysis

import (
	"fmt"

	"repro/internal/fix"
	"repro/internal/pattern"
	"repro/internal/relation"
)

// The Z-problems of §4.2, solved exactly. Z-validating is NP-complete
// (Thm 6), Z-counting #P-complete (Thm 9) and Z-minimum NP-complete and
// inapproximable within c·log n (Thms 12, 17), so these exact solvers
// enumerate candidate pattern tuples / attribute subsets and are meant for
// moderate instances (tests, the complexity-reduction fixtures, small rule
// sets). Production region discovery uses the heuristics in package
// suggest, as the paper prescribes after Thm 17.

// candidateCells returns the cell choices for attribute p when searching
// for certain-region pattern tuples, following the normalization before
// Thm 6: attributes not occurring in Σ carry the wildcard; others range
// over the active domain plus one fresh constant (the variable v of the
// paper). Restricting to constant cells mirrors the Thm 6 proof, which
// guesses concrete tuples.
func (c *Checker) candidateCells(p int) []pattern.Cell {
	if !c.sigma.Attrs().Has(p) {
		return []pattern.Cell{pattern.Any}
	}
	dom, fresh := c.domainFor(p)
	cells := make([]pattern.Cell, 0, len(dom)+1)
	for _, v := range dom {
		cells = append(cells, pattern.Eq(v))
	}
	return append(cells, pattern.Eq(fresh))
}

// ZEnumerate enumerates every normalized concrete pattern tuple tc over Z
// such that (Z, {tc}) is a certain region for (Σ, Dm), up to `limit`
// results (limit ≤ 0 means unlimited). This is the common engine behind
// Z-validating and Z-counting.
func (c *Checker) ZEnumerate(z []int, limit int) ([]pattern.Tuple, error) {
	zSet := relation.NewAttrSet(z...)
	if zSet.Len() != len(z) {
		return nil, fmt.Errorf("analysis: Z has duplicate attributes: %v", z)
	}
	// Attributes that no rule can fix must be in Z, otherwise no tableau
	// can make (Z, Tc) certain; prune early.
	free := c.sigma.FreeAttrs()
	for _, p := range free.Positions() {
		if !zSet.Has(p) {
			return nil, nil
		}
	}
	choices := make([][]pattern.Cell, len(z))
	total := 1
	cap := c.opts.instantiationCap()
	for i, p := range z {
		choices[i] = c.candidateCells(p)
		total *= len(choices[i])
		if total > cap {
			return nil, fmt.Errorf("analysis: Z-enumeration exceeds %d candidates; reduce Z or the active domain", cap)
		}
	}
	var out []pattern.Tuple
	cells := make([]pattern.Cell, len(z))
	var walk func(i int) error
	walk = func(i int) error {
		if limit > 0 && len(out) >= limit {
			return nil
		}
		if i == len(z) {
			row := pattern.MustTuple(z, cells)
			reg, err := fix.NewRegion(z, pattern.NewTableau(row))
			if err != nil {
				return err
			}
			v, err := c.CertainRegion(reg)
			if err != nil {
				return err
			}
			if v.OK {
				out = append(out, row)
			}
			return nil
		}
		for _, cell := range choices[i] {
			cells[i] = cell
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return out, nil
}

// ZValidating decides whether some non-empty tableau Tc makes (Z, Tc) a
// certain region for (Σ, Dm) — the Z-validating problem (Thm 6).
func (c *Checker) ZValidating(z []int) (bool, error) {
	rows, err := c.ZEnumerate(z, 1)
	if err != nil {
		return false, err
	}
	return len(rows) > 0, nil
}

// ZCounting counts the distinct normalized pattern tuples tc for which
// (Z, {tc}) is a certain region — the Z-counting problem (Thm 9). Fresh
// constants play the role of the paper's variable v, so all constants
// outside Σ and Dm are counted once.
func (c *Checker) ZCounting(z []int) (int, error) {
	rows, err := c.ZEnumerate(z, 0)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// ZMinimum decides whether a list Z with |Z| ≤ k admits a non-empty
// certain-region tableau — the Z-minimum problem (Thm 12). It returns a
// witness Z when one exists. Attributes never fixed by Σ are forced into
// Z; the search then enumerates subsets of rhs(Σ) by increasing size.
func (c *Checker) ZMinimum(k int) ([]int, bool, error) {
	free := c.sigma.FreeAttrs().Positions()
	if len(free) > k {
		return nil, false, nil
	}
	budget := k - len(free)
	candidates := c.sigma.RHS().Positions()
	for size := 0; size <= budget && size <= len(candidates); size++ {
		var found []int
		var err error
		forEachSubset(candidates, size, func(subset []int) bool {
			z := append(append([]int(nil), free...), subset...)
			ok, e := c.ZValidating(z)
			if e != nil {
				err = e
				return false
			}
			if ok {
				found = z
				return false
			}
			return true
		})
		if err != nil {
			return nil, false, err
		}
		if found != nil {
			return found, true, nil
		}
	}
	return nil, false, nil
}

// forEachSubset calls fn on every size-k subset of items until fn returns
// false.
func forEachSubset(items []int, k int, fn func([]int) bool) {
	subset := make([]int, k)
	var walk func(start, depth int) bool
	walk = func(start, depth int) bool {
		if depth == k {
			return fn(subset)
		}
		for i := start; i <= len(items)-(k-depth); i++ {
			subset[depth] = items[i]
			if !walk(i+1, depth+1) {
				return false
			}
		}
		return true
	}
	walk(0, 0)
}
