package analysis

import (
	"repro/internal/fix"
	"repro/internal/relation"
	"repro/internal/rule"
)

// ConcreteVerdict runs the Theorem-4 check directly on one concrete value
// vector over Z — the entry point used by the region-derivation heuristics
// and the interactive framework, which test specific tuples' validated
// values rather than whole tableaus. With coverage=false it decides
// consistency only; with coverage=true it additionally requires every R
// attribute to be covered.
func (c *Checker) ConcreteVerdict(z []int, vals []relation.Value, coverage bool) Verdict {
	return c.checkConcrete(z, vals, coverage)
}

// checkConcrete is the PTIME consistency/coverage check of Theorem 4 for a
// single fully-instantiated pattern row: Z positions zPos with concrete
// values vals (aligned with zPos).
//
// It runs the canonical closure — every applicable (rule, master) pair is
// applied round by round (steps (c)–(f) of the proof) — detecting
// same-round conflicts directly. It then performs the step-(g) analysis:
// a pair that disagrees with an already-validated attribute B is a genuine
// inconsistency iff the pair could fire in some order before B is
// validated, which is decided by a reachability analysis over the
// validator sets (the dep(·) bookkeeping of the proof, made transitive).
func (c *Checker) checkConcrete(zPos []int, vals []relation.Value, coverage bool) Verdict {
	r := c.sigma.Schema()
	t := relation.NewTuple(r.Arity())
	base := relation.NewAttrSet(zPos...)
	for i, p := range zPos {
		t[p] = vals[i]
	}
	cur := base.Clone()

	// Canonical closure: rounds of simultaneous application.
	for {
		assignments := fix.ApplicableAssignments(c.sigma, c.dm, t, cur)
		if len(assignments) == 0 {
			break
		}
		for b, vs := range assignments {
			if len(vs) > 1 {
				// Step (e): two pairs applicable at the same state assign
				// different values to one attribute.
				return failf("attribute %s gets conflicting values %v",
					r.Attr(b).Name, vs)
			}
		}
		for b, vs := range assignments {
			t[b] = vs[0]
			cur.Add(b)
		}
	}

	// Validator sets: for each derived attribute A, the premise sets of
	// every pair that assigns A its closure value. These are the
	// alternative ways any sequence can validate A.
	validators := map[int][]relation.AttrSet{}
	type lateConflict struct {
		attr    int
		value   relation.Value
		premise relation.AttrSet
	}
	var lates []lateConflict
	for _, ru := range c.sigma.Rules() {
		b := ru.RHS()
		if base.Has(b) || !cur.Has(b) {
			continue // base attributes are protected; unassigned rhs is moot
		}
		if !cur.ContainsSet(ru.PremiseSet()) || !ru.MatchesPattern(t) {
			continue
		}
		for _, v := range c.dm.RHSValues(ru, t) {
			if v.Equal(t[b]) {
				validators[b] = append(validators[b], ru.PremiseSet())
			} else {
				lates = append(lates, lateConflict{attr: b, value: v, premise: ru.PremiseSet()})
			}
		}
	}

	// Step (g): a disagreeing pair is a genuine conflict iff its premise
	// can be validated without first validating the disputed attribute.
	// The reachable set depends only on the disputed attribute, so rules
	// disputing the same attribute share one computation.
	var reachCache map[int]relation.AttrSet
	for _, lc := range lates {
		reachable, ok := reachCache[lc.attr]
		if !ok {
			reachable = validatableWithout(base, validators, lc.attr)
			if reachCache == nil {
				reachCache = make(map[int]relation.AttrSet, 1)
			}
			reachCache[lc.attr] = reachable
		}
		if premiseWithin(lc.premise, base, reachable) {
			return failf("attribute %s has order-dependent values %v and %v",
				r.Attr(lc.attr).Name, t[lc.attr], lc.value)
		}
	}

	if coverage && cur.Len() != r.Arity() {
		var missing []string
		for p := 0; p < r.Arity(); p++ {
			if !cur.Has(p) {
				missing = append(missing, r.Attr(p).Name)
			}
		}
		return failf("attributes not covered: %v", missing)
	}
	return okVerdict
}

// validatableWithout computes the set of attributes that can be validated
// by some derivation whose every step avoids validating `avoid`: an
// attribute joins the set when one of its validator premises lies entirely
// within base ∪ (already-derivable attributes). Each (premise → attribute)
// validator is a pseudo-rule, so the least fixpoint is one counter-based
// closure pass (rule.CompileClosure) instead of the quadratic re-scan;
// validators touching `avoid` are dropped at compile time.
func validatableWithout(base relation.AttrSet, validators map[int][]relation.AttrSet, avoid int) relation.AttrSet {
	maxPos := avoid
	bump := func(p int) {
		if p > maxPos {
			maxPos = p
		}
	}
	base.Range(func(p int) bool { bump(p); return true })
	var prems []relation.AttrSet
	var rhs []int
	for a, list := range validators {
		if a == avoid {
			continue
		}
		for _, prem := range list {
			if prem.Has(avoid) {
				continue
			}
			bump(a)
			prem.Range(func(p int) bool { bump(p); return true })
			prems = append(prems, prem)
			rhs = append(rhs, a)
		}
	}
	prog := rule.CompileClosure(maxPos+1, prems, rhs)
	sc := rule.NewClosureScratch()
	prog.Closure(base, sc)
	var ok relation.AttrSet
	for a := range validators {
		if a != avoid && sc.Has(a) && !base.Has(a) {
			ok.Add(a)
		}
	}
	return ok
}

// premiseWithin reports whether every attribute of the premise is in base
// or in the derivable set.
func premiseWithin(premise, base, derivable relation.AttrSet) bool {
	for _, a := range premise.Positions() {
		if !base.Has(a) && !derivable.Has(a) {
			return false
		}
	}
	return true
}
