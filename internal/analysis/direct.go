package analysis

import (
	"fmt"

	"repro/internal/fix"
	"repro/internal/master"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// Direct-fix checking (Theorem 5). Under the direct-fix semantics of §4,
// (a) every participating rule has Xp ⊆ X and (b) each fixing step uses
// the original region (Z, Tc) without extension. Consistency then reduces
// to the emptiness of the join queries Qϕ1,ϕ2 of the Thm 5 proof, and both
// problems are PTIME: O(|Σ|²·|Dm|²) worst case, implemented here with a
// hash join on the shared lhs attributes.

// directRules returns ΣZ: the rules applicable under the region without
// extension. It errors when such a rule violates Xp ⊆ X, since the
// SQL-style rewrite pushes pattern conditions onto master attributes
// through the (X, Xm) correspondence.
func directRules(sigma *rule.Set, reg *fix.Region) ([]*rule.Rule, error) {
	zSet := reg.ZSet()
	var out []*rule.Rule
	for _, ru := range sigma.Rules() {
		if zSet.Has(ru.RHS()) || !zSet.ContainsSet(ru.LHSSet()) {
			continue
		}
		if !ru.IsDirect() {
			return nil, fmt.Errorf("analysis: rule %s has pattern attributes outside X; the direct-fix checker requires Xp ⊆ X", ru.Name())
		}
		out = append(out, ru)
	}
	return out, nil
}

// qPhi evaluates Qϕ for one rule and one tableau row: the master tuple ids
// whose λϕ-mapped attributes satisfy both the rule's pattern and the row's
// cells. Scanning Dm once per rule, as in the proof.
func qPhi(dm *master.Data, ru *rule.Rule, row pattern.Tuple) []int {
	x, xm := ru.LHS(), ru.LHSM()
	tp := ru.Pattern()
	var out []int
	for id, tm := range dm.Relation().Tuples() {
		ok := true
		for i := range x {
			v := tm[xm[i]]
			if cell, has := tp.CellFor(x[i]); has && !cell.Matches(v) {
				ok = false
				break
			}
			if cell, has := row.CellFor(x[i]); has && !cell.Matches(v) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	return out
}

// DirectConsistent decides the consistency problem under direct-fix
// semantics (Thm 5(I)): for every pair of rules sharing a rhs attribute,
// no two qualifying master tuples agree on the shared lhs attributes while
// assigning different rhs values.
func (c *Checker) DirectConsistent(reg *fix.Region) (Verdict, error) {
	rules, err := directRules(c.sigma, reg)
	if err != nil {
		return Verdict{}, err
	}
	for ri := 0; ri < reg.Tableau().Len(); ri++ {
		row := reg.Tableau().Row(ri)
		qs := make([][]int, len(rules))
		for i, ru := range rules {
			qs[i] = qPhi(c.dm, ru, row)
		}
		for i, r1 := range rules {
			for j := i; j < len(rules); j++ {
				r2 := rules[j]
				if r1.RHS() != r2.RHS() {
					continue
				}
				if v := c.directJoinConflict(r1, qs[i], r2, qs[j], ri); !v.OK {
					return v, nil
				}
			}
		}
	}
	return okVerdict, nil
}

// directJoinConflict implements Qϕ1,ϕ2: join the qualifying master tuples
// of the two rules on the shared input attributes X = X1 ∩ X2 and flag
// pairs that disagree on the assigned value.
func (c *Checker) directJoinConflict(r1 *rule.Rule, q1 []int, r2 *rule.Rule, q2 []int, rowIdx int) Verdict {
	shared := sharedLHS(r1, r2)
	m1, m2 := make([]int, len(shared)), make([]int, len(shared))
	for i, p := range shared {
		m1[i], _ = r1.MasterPosFor(p)
		m2[i], _ = r2.MasterPosFor(p)
	}
	// Hash the first side on shared-key -> set of assigned values.
	byKey := map[string][]relation.Value{}
	for _, id := range q1 {
		tm := c.dm.Tuple(id)
		k := tm.Key(m1)
		byKey[k] = appendDistinct(byKey[k], tm[r1.RHSM()])
	}
	for _, id := range q2 {
		tm := c.dm.Tuple(id)
		k := tm.Key(m2)
		v := tm[r2.RHSM()]
		for _, w := range byKey[k] {
			if !w.Equal(v) {
				return failf("row %d: rules %s and %s assign %v and %v to attribute %s",
					rowIdx, r1.Name(), r2.Name(), w, v, c.sigma.Schema().Attr(r1.RHS()).Name)
			}
		}
	}
	return okVerdict
}

// DirectCertainRegion decides the coverage problem under direct-fix
// semantics (Thm 5(II)): consistency plus, for every attribute B outside
// Z, a rule with rhs B whose lhs is pinned to constants by the row, whose
// pattern accepts those constants, and which finds a master match.
func (c *Checker) DirectCertainRegion(reg *fix.Region) (Verdict, error) {
	v, err := c.DirectConsistent(reg)
	if err != nil || !v.OK {
		return v, err
	}
	rules, _ := directRules(c.sigma, reg)
	r := c.sigma.Schema()
	zSet := reg.ZSet()
	if reg.Tableau().Len() == 0 {
		return failf("empty tableau marks no tuples"), nil
	}
	for ri := 0; ri < reg.Tableau().Len(); ri++ {
		row := reg.Tableau().Row(ri)
		for b := 0; b < r.Arity(); b++ {
			if zSet.Has(b) {
				continue
			}
			if !c.directlyCoverable(rules, row, b) {
				return failf("row %d: attribute %s is not directly coverable", ri, r.Attr(b).Name), nil
			}
		}
	}
	return okVerdict, nil
}

func (c *Checker) directlyCoverable(rules []*rule.Rule, row pattern.Tuple, b int) bool {
	for _, ru := range rules {
		if ru.RHS() != b {
			continue
		}
		// (b) the row pins every lhs attribute to a constant,
		// (c) the pattern accepts those constants,
		x := ru.LHS()
		vals := make([]relation.Value, len(x))
		ok := true
		for i, p := range x {
			cell, has := row.CellFor(p)
			if !has || cell.Kind != pattern.Const {
				ok = false
				break
			}
			vals[i] = cell.Val
			if pc, hasPat := ru.Pattern().CellFor(p); hasPat && !pc.Matches(cell.Val) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// (d) a master tuple matches tm[Xm] = tc[X].
		if len(c.dm.Lookup(ru.LHSM(), vals)) > 0 {
			return true
		}
	}
	return false
}

func sharedLHS(r1, r2 *rule.Rule) []int {
	s2 := r2.LHSSet()
	var out []int
	for _, p := range r1.LHS() {
		if s2.Has(p) {
			out = append(out, p)
		}
	}
	return out
}

func appendDistinct(vs []relation.Value, v relation.Value) []relation.Value {
	for _, w := range vs {
		if w.Equal(v) {
			return vs
		}
	}
	return append(vs, v)
}
