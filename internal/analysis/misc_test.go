package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/fix"
	"repro/internal/master"
	"repro/internal/paperex"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

func TestCheckerAccessors(t *testing.T) {
	c := newChecker(t)
	if c.Sigma() == nil || c.Master() == nil {
		t.Fatal("accessors must expose Σ and Dm")
	}
}

// TestConcreteVerdictDirectEntry: the exported per-row entry point agrees
// with the tableau-level check on the Example 9 row.
func TestConcreteVerdictDirectEntry(t *testing.T) {
	c := newChecker(t)
	r := c.Sigma().Schema()
	z := r.MustPosList("zip", "phn", "type", "item")
	good := []relation.Value{
		relation.String("EH7 4AH"), relation.String("079172485"),
		relation.String("2"), relation.String("CD"),
	}
	if v := c.ConcreteVerdict(z, good, true); !v.OK {
		t.Fatalf("coverage verdict: %s", v.Detail)
	}
	if v := c.ConcreteVerdict(z, good, false); !v.OK {
		t.Fatalf("consistency verdict: %s", v.Detail)
	}
	// An unmatched zip/phone combination is consistent (nothing applies)
	// but covers nothing.
	bad := []relation.Value{
		relation.String("nowhere"), relation.String("000"),
		relation.String("2"), relation.String("CD"),
	}
	if v := c.ConcreteVerdict(z, bad, false); !v.OK {
		t.Fatalf("trivially consistent row rejected: %s", v.Detail)
	}
	if v := c.ConcreteVerdict(z, bad, true); v.OK {
		t.Fatal("uncoverable row must fail the coverage verdict")
	}
}

// TestDirectCheckerRejectsNonDirectRules: the Thm-5 checker refuses rule
// sets whose applicable rules have pattern attributes outside X.
func TestDirectCheckerRejectsNonDirectRules(t *testing.T) {
	sigma := paperex.Sigma0() // ϕ4's pattern reads `type` ∉ X
	dm := master.MustNewForRules(paperex.MasterRelation(), sigma)
	c := analysis.NewChecker(sigma, dm, analysis.Options{})
	r := sigma.Schema()
	z := r.MustPosList("phn") // ϕ4/ϕ5 become applicable (X = phn ⊆ Z)
	row := pattern.MustTuple(z, []pattern.Cell{pattern.Any})
	reg := fix.MustRegion(z, pattern.NewTableau(row))
	_, err := c.DirectConsistent(reg)
	if err == nil || !strings.Contains(err.Error(), "Xp ⊆ X") {
		t.Fatalf("want direct-form error, got %v", err)
	}
}

// TestDirectCheckerWithinRuleConflict: two master tuples with the same
// key but different rhs values violate direct-fix consistency through a
// single rule (the ϕ1 = ϕ2 case of query Qϕ1,ϕ2).
func TestDirectCheckerWithinRuleConflict(t *testing.T) {
	r := relation.StringSchema("R", "K", "V")
	rm := relation.StringSchema("Rm", "K", "V")
	sigma := rule.MustNewSet(r, rm,
		rule.MustNew("kv", r, rm, []int{0}, []int{0}, 1, 1, pattern.Empty()))
	rel := relation.NewRelation(rm)
	rel.MustAppend(
		relation.StringTuple("k", "v1"),
		relation.StringTuple("k", "v2"),
	)
	dm := master.MustNewForRules(rel, sigma)
	c := analysis.NewChecker(sigma, dm, analysis.Options{})
	z := []int{0}
	reg := fix.MustRegion(z, pattern.NewTableau(
		pattern.MustTuple(z, []pattern.Cell{pattern.EqStr("k")})))

	v, err := c.DirectConsistent(reg)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("duplicate master keys with different values must be inconsistent")
	}
	// The general checker agrees.
	gv, err := c.Consistent(reg)
	if err != nil || gv.OK {
		t.Fatalf("general checker disagrees: %v %v", gv, err)
	}
	// And coverage fails a fortiori.
	cv, err := c.DirectCertainRegion(reg)
	if err != nil || cv.OK {
		t.Fatalf("coverage must fail: %v %v", cv, err)
	}
}

// TestZEnumerateLimitsAndDuplicates: guard rails of the exact solvers.
func TestZEnumerateLimitsAndDuplicates(t *testing.T) {
	c := newChecker(t)
	r := c.Sigma().Schema()
	if _, err := c.ZEnumerate([]int{r.MustPos("zip"), r.MustPos("zip")}, 0); err == nil {
		t.Fatal("duplicate Z must error")
	}
	// A Z missing a free attribute prunes to nil immediately.
	rows, err := c.ZEnumerate(r.MustPosList("zip", "phn"), 0)
	if err != nil || rows != nil {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
}
