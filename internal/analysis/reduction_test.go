package analysis_test

// The lower-bound proofs of §4 are constructive reductions. This file
// implements them as executable fixtures: building the instances of the
// Thm 1 (3SAT → consistency), Thm 6 (3SAT → Z-validating), Thm 9
// (#3SAT → Z-counting) and Thm 12 (set cover → Z-minimum) proofs and
// checking that the implemented analyses answer exactly as the proofs
// claim. This both tests the checkers on adversarial shapes (negations,
// cascades, integer domains) and documents the reductions.

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/fix"
	"repro/internal/master"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// literal is a 3SAT literal: variable index (1-based) with sign.
type literal struct {
	v   int
	neg bool
}

// clause3 is a 3-literal clause.
type clause3 [3]literal

// satisfies reports whether assignment (1-based booleans) satisfies c.
func (c clause3) satisfies(assign []bool) bool {
	for _, l := range c[:] {
		if assign[l.v] != l.neg {
			return true
		}
	}
	return false
}

// bruteSatCount counts satisfying assignments of the formula.
func bruteSatCount(m int, clauses []clause3) int {
	count := 0
	for mask := 0; mask < 1<<m; mask++ {
		assign := make([]bool, m+1)
		for v := 1; v <= m; v++ {
			assign[v] = mask>>(v-1)&1 == 1
		}
		ok := true
		for _, c := range clauses {
			if !c.satisfies(assign) {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

// buildTheorem1Instance constructs the consistency instance of the Thm 1
// proof for a 3SAT formula over m variables.
func buildTheorem1Instance(t *testing.T, m int, clauses []clause3) (*analysis.Checker, *fix.Region) {
	t.Helper()
	n := len(clauses)
	attrs := []relation.Attribute{{Name: "A", Type: relation.TypeInt}}
	for v := 1; v <= m; v++ {
		attrs = append(attrs, relation.Attribute{Name: fmt.Sprintf("X%d", v), Type: relation.TypeInt})
	}
	for j := 1; j <= n; j++ {
		attrs = append(attrs, relation.Attribute{Name: fmt.Sprintf("C%d", j), Type: relation.TypeInt})
	}
	attrs = append(attrs,
		relation.Attribute{Name: "V", Type: relation.TypeInt},
		relation.Attribute{Name: "B", Type: relation.TypeInt})
	r := relation.MustSchema("R", attrs...)

	rm := relation.MustSchema("Rm",
		relation.Attribute{Name: "Y0", Type: relation.TypeInt},
		relation.Attribute{Name: "Y1", Type: relation.TypeInt},
		relation.Attribute{Name: "A", Type: relation.TypeInt},
		relation.Attribute{Name: "V", Type: relation.TypeInt},
		relation.Attribute{Name: "B", Type: relation.TypeInt},
	)
	rel := relation.NewRelation(rm)
	rel.MustAppend(
		relation.TupleOf(relation.Int(0), relation.Int(1), relation.Int(1), relation.Int(1), relation.Int(1)),
		relation.TupleOf(relation.Int(0), relation.Int(1), relation.Int(1), relation.Int(1), relation.Int(0)),
		relation.TupleOf(relation.Int(0), relation.Int(1), relation.Int(1), relation.Int(0), relation.Int(1)),
	)

	sigma := rule.MustNewSet(r, rm)
	aR, aM := r.MustPos("A"), rm.MustPos("A")
	// Σj: eight rules per clause enumerating the variable assignments.
	for j, cl := range clauses {
		cPos := r.MustPos(fmt.Sprintf("C%d", j+1))
		xPos := []int{
			r.MustPos(fmt.Sprintf("X%d", cl[0].v)),
			r.MustPos(fmt.Sprintf("X%d", cl[1].v)),
			r.MustPos(fmt.Sprintf("X%d", cl[2].v)),
		}
		for bits := 0; bits < 8; bits++ {
			b1, b2, b3 := bits>>2&1, bits>>1&1, bits&1
			assign := make([]bool, 0, 3)
			assign = append(assign, b1 == 1, b2 == 1, b3 == 1)
			// Yj = Y0 when this assignment makes the clause false.
			clauseTrue := false
			for li, l := range cl[:] {
				if assign[li] != l.neg {
					clauseTrue = true
					break
				}
			}
			ym := rm.MustPos("Y1")
			if !clauseTrue {
				ym = rm.MustPos("Y0")
			}
			tp := pattern.MustTuple(xPos, []pattern.Cell{
				pattern.Eq(relation.Int(int64(b1))),
				pattern.Eq(relation.Int(int64(b2))),
				pattern.Eq(relation.Int(int64(b3))),
			})
			sigma.Add(rule.MustNew(fmt.Sprintf("phi_%d_%d", j+1, bits),
				r, rm, []int{aR}, []int{aM}, cPos, ym, tp))
		}
	}
	// ΣC,V: clause false → V = 0; all clauses true → V = 1.
	for j := 1; j <= n; j++ {
		tp := pattern.MustTuple(
			[]int{r.MustPos(fmt.Sprintf("C%d", j))},
			[]pattern.Cell{pattern.Eq(relation.Int(0))})
		sigma.Add(rule.MustNew(fmt.Sprintf("phiV_%d", j),
			r, rm, []int{aR}, []int{aM}, r.MustPos("V"), rm.MustPos("Y0"), tp))
	}
	allOnePos := make([]int, n)
	allOneCells := make([]pattern.Cell, n)
	for j := 1; j <= n; j++ {
		allOnePos[j-1] = r.MustPos(fmt.Sprintf("C%d", j))
		allOneCells[j-1] = pattern.Eq(relation.Int(1))
	}
	sigma.Add(rule.MustNew("phiV_all", r, rm, []int{aR}, []int{aM},
		r.MustPos("V"), rm.MustPos("Y1"), pattern.MustTuple(allOnePos, allOneCells)))
	// ΣV,B: the conflict gadget.
	sigma.Add(rule.MustNew("phiVB", r, rm,
		[]int{r.MustPos("V")}, []int{rm.MustPos("V")},
		r.MustPos("B"), rm.MustPos("B"), pattern.Empty()))

	// Region: Z = (A, X1..Xm), tc = (1, _, ..., _).
	z := []int{aR}
	for v := 1; v <= m; v++ {
		z = append(z, r.MustPos(fmt.Sprintf("X%d", v)))
	}
	row := pattern.MustTuple([]int{aR}, []pattern.Cell{pattern.Eq(relation.Int(1))})
	reg := fix.MustRegion(z, pattern.NewTableau(row))

	dm := master.MustNewForRules(rel, sigma)
	return analysis.NewChecker(sigma, dm, analysis.Options{}), reg
}

// TestTheorem1Reduction: (Σ, Dm) is consistent relative to (Z, Tc) iff the
// 3SAT formula is unsatisfiable — on satisfiable, unsatisfiable and mixed
// formulas.
func TestTheorem1Reduction(t *testing.T) {
	x := func(v int) literal { return literal{v: v} }
	nx := func(v int) literal { return literal{v: v, neg: true} }

	cases := []struct {
		name    string
		m       int
		clauses []clause3
	}{
		{"satisfiable-single", 3, []clause3{{x(1), x(2), x(3)}}},
		{"satisfiable-two", 3, []clause3{{x(1), x(2), x(3)}, {nx(1), nx(2), nx(3)}}},
		{"unsat-enumeration", 3, []clause3{
			{x(1), x(2), x(3)}, {x(1), x(2), nx(3)}, {x(1), nx(2), x(3)}, {x(1), nx(2), nx(3)},
			{nx(1), x(2), x(3)}, {nx(1), x(2), nx(3)}, {nx(1), nx(2), x(3)}, {nx(1), nx(2), nx(3)},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checker, reg := buildTheorem1Instance(t, tc.m, tc.clauses)
			v, err := checker.Consistent(reg)
			if err != nil {
				t.Fatal(err)
			}
			satisfiable := bruteSatCount(tc.m, tc.clauses) > 0
			if v.OK != !satisfiable {
				t.Fatalf("consistent=%v but satisfiable=%v (%s)", v.OK, satisfiable, v.Detail)
			}
			// Cross-check with the oracle for confidence.
			ov, err := checker.OracleConsistent(reg)
			if err != nil {
				t.Fatal(err)
			}
			if ov.OK != v.OK {
				t.Fatalf("oracle disagrees: %v vs %v", ov.OK, v.OK)
			}
		})
	}
}

// buildTheorem6Instance constructs the Z-validating instance of the Thm 6
// proof.
func buildTheorem6Instance(t *testing.T, m int, clauses []clause3) (*analysis.Checker, []int) {
	t.Helper()
	n := len(clauses)
	var attrs []relation.Attribute
	for v := 1; v <= m; v++ {
		attrs = append(attrs, relation.Attribute{Name: fmt.Sprintf("X%d", v), Type: relation.TypeInt})
	}
	for j := 1; j <= n; j++ {
		attrs = append(attrs, relation.Attribute{Name: fmt.Sprintf("C%d", j), Type: relation.TypeInt})
	}
	attrs = append(attrs, relation.Attribute{Name: "V", Type: relation.TypeInt})
	r := relation.MustSchema("R", attrs...)

	rm := relation.MustSchema("Rm",
		relation.Attribute{Name: "B1", Type: relation.TypeInt},
		relation.Attribute{Name: "B2", Type: relation.TypeInt},
		relation.Attribute{Name: "B3", Type: relation.TypeInt},
		relation.Attribute{Name: "C", Type: relation.TypeInt},
		relation.Attribute{Name: "V1", Type: relation.TypeInt},
		relation.Attribute{Name: "V0", Type: relation.TypeInt},
	)
	rel := relation.NewRelation(rm)
	for bits := 0; bits < 8; bits++ {
		rel.MustAppend(relation.TupleOf(
			relation.Int(int64(bits>>2&1)), relation.Int(int64(bits>>1&1)), relation.Int(int64(bits&1)),
			relation.Int(1), relation.Int(1), relation.Int(0),
		))
	}

	sigma := rule.MustNewSet(r, rm)
	bPos := []int{rm.MustPos("B1"), rm.MustPos("B2"), rm.MustPos("B3")}
	for j, cl := range clauses {
		xPos := []int{
			r.MustPos(fmt.Sprintf("X%d", cl[0].v)),
			r.MustPos(fmt.Sprintf("X%d", cl[1].v)),
			r.MustPos(fmt.Sprintf("X%d", cl[2].v)),
		}
		cPos := r.MustPos(fmt.Sprintf("C%d", j+1))
		sigma.Add(rule.MustNew(fmt.Sprintf("phi_%d_1", j+1), r, rm, xPos, bPos, cPos, rm.MustPos("C"), pattern.Empty()))
		sigma.Add(rule.MustNew(fmt.Sprintf("phi_%d_2", j+1), r, rm, xPos, bPos, r.MustPos("V"), rm.MustPos("V1"), pattern.Empty()))
		// ϕj,3 fires only on the falsifying assignment of the clause.
		falsify := make([]pattern.Cell, 3)
		for li, l := range cl[:] {
			bit := int64(0)
			if l.neg {
				bit = 1
			}
			falsify[li] = pattern.Eq(relation.Int(bit))
		}
		sigma.Add(rule.MustNew(fmt.Sprintf("phi_%d_3", j+1), r, rm, xPos, bPos, r.MustPos("V"), rm.MustPos("V0"),
			pattern.MustTuple(xPos, falsify)))
	}

	z := make([]int, m)
	for v := 1; v <= m; v++ {
		z[v-1] = r.MustPos(fmt.Sprintf("X%d", v))
	}
	dm := master.MustNewForRules(rel, sigma)
	return analysis.NewChecker(sigma, dm, analysis.Options{}), z
}

// TestTheorem6And9Reductions: Z-validating answers satisfiability and
// Z-counting counts satisfying assignments (the parsimonious reduction of
// Thm 9).
func TestTheorem6And9Reductions(t *testing.T) {
	x := func(v int) literal { return literal{v: v} }
	nx := func(v int) literal { return literal{v: v, neg: true} }

	cases := []struct {
		name    string
		m       int
		clauses []clause3
	}{
		{"one-clause", 3, []clause3{{x(1), x(2), x(3)}}},
		{"two-clauses", 3, []clause3{{x(1), x(2), x(3)}, {nx(1), nx(2), x(3)}}},
		{"unsat", 2, []clause3{
			// (x1∨x1∨x2)(x1∨x1∨¬x2)(¬x1∨¬x1∨x2)(¬x1∨¬x1∨¬x2) — uses
			// repeated variables, which the construction forbids (pattern
			// positions must be distinct); use 3 distinct vars instead.
		}},
	}
	// Replace the empty unsat case with a proper 3-variable enumeration.
	cases[2].m = 3
	cases[2].clauses = []clause3{
		{x(1), x(2), x(3)}, {x(1), x(2), nx(3)}, {x(1), nx(2), x(3)}, {x(1), nx(2), nx(3)},
		{nx(1), x(2), x(3)}, {nx(1), x(2), nx(3)}, {nx(1), nx(2), x(3)}, {nx(1), nx(2), nx(3)},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checker, z := buildTheorem6Instance(t, tc.m, tc.clauses)
			want := bruteSatCount(tc.m, tc.clauses)

			ok, err := checker.ZValidating(z)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (want > 0) {
				t.Fatalf("ZValidating=%v but #sat=%d", ok, want)
			}
			got, err := checker.ZCounting(z)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("ZCounting=%d, want %d", got, want)
			}
		})
	}
}

// buildTheorem12Instance constructs the Z-minimum instance of the Thm 12
// proof for a set-cover instance.
func buildTheorem12Instance(t *testing.T, nElems int, subsets [][]int) (*analysis.Checker, int) {
	t.Helper()
	h := len(subsets)
	var attrs []relation.Attribute
	for j := 1; j <= h; j++ {
		attrs = append(attrs, relation.Attribute{Name: fmt.Sprintf("C%d", j), Type: relation.TypeInt})
	}
	for i := 1; i <= nElems; i++ {
		for l := 1; l <= h+1; l++ {
			attrs = append(attrs, relation.Attribute{Name: fmt.Sprintf("X%d_%d", i, l), Type: relation.TypeInt})
		}
	}
	r := relation.MustSchema("R", attrs...)
	rm := relation.MustSchema("Rm",
		relation.Attribute{Name: "B1", Type: relation.TypeInt},
		relation.Attribute{Name: "B2", Type: relation.TypeInt},
	)
	rel := relation.NewRelation(rm)
	rel.MustAppend(relation.TupleOf(relation.Int(1), relation.Int(1)))

	sigma := rule.MustNewSet(r, rm)
	b1, b2 := rm.MustPos("B1"), rm.MustPos("B2")
	for j, subset := range subsets {
		cPos := r.MustPos(fmt.Sprintf("C%d", j+1))
		var allX []int
		for _, xi := range subset {
			for l := 1; l <= h+1; l++ {
				xPos := r.MustPos(fmt.Sprintf("X%d_%d", xi, l))
				allX = append(allX, xPos)
				sigma.Add(rule.MustNew(fmt.Sprintf("phi_%d_%d_%d", j+1, xi, l),
					r, rm, []int{cPos}, []int{b1}, xPos, b2, pattern.Empty()))
			}
		}
		b1s := make([]int, len(allX))
		for i := range b1s {
			b1s[i] = b1
		}
		sigma.Add(rule.MustNew(fmt.Sprintf("phi_%d_cov", j+1),
			r, rm, allX, b1s, cPos, b2, pattern.Empty()))
	}
	dm := master.MustNewForRules(rel, sigma)
	return analysis.NewChecker(sigma, dm, analysis.Options{}), h
}

// TestTheorem12Reduction: Z-minimum with budget K answers whether the set
// cover instance has a cover of size ≤ K.
func TestTheorem12Reduction(t *testing.T) {
	// U = {1,2,3}; S = {C1 = {1,2}, C2 = {2,3}, C3 = {3}}.
	// Minimum cover = {C1, C2} (size 2); no size-1 cover exists.
	checker, _ := buildTheorem12Instance(t, 3, [][]int{{1, 2}, {2, 3}, {3}})

	if _, ok, err := checker.ZMinimum(1); err != nil || ok {
		t.Fatalf("no size-1 cover should exist: ok=%v err=%v", ok, err)
	}
	z, ok, err := checker.ZMinimum(2)
	if err != nil || !ok {
		t.Fatalf("size-2 cover must exist: ok=%v err=%v", ok, err)
	}
	if len(z) > 2 {
		t.Fatalf("witness Z has %d attributes, want ≤ 2", len(z))
	}
}
