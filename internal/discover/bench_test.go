package discover_test

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/discover"
	"repro/internal/relation"
)

// Benchmarks compare the naive row-scan miner (the PR 0 engine, kept as
// the oracle) against the postings engine over the same HOSP masters.
// The postings timings are honest end-to-end costs: they include
// building the postings-indexed snapshot from the bare relation, not
// just the lattice walk. Run with Workers=1 so the single-core speedup
// is the algorithmic one (the CI container has one CPU; parallel
// lattice speedup is documented in DESIGN.md, not gated).

var benchRels = map[int]*relation.Relation{}

func benchRel(b *testing.B, size int) *relation.Relation {
	b.Helper()
	if rel, ok := benchRels[size]; ok {
		return rel
	}
	ds, err := datagen.Hosp(datagen.Config{Seed: 2, MasterSize: size, Tuples: 1})
	if err != nil {
		b.Fatal(err)
	}
	rel := ds.Master.Relation()
	benchRels[size] = rel
	return rel
}

var benchSink []discover.Candidate

func BenchmarkDiscoverNaive(b *testing.B) {
	for _, size := range []int{600, 6000, 60000} {
		b.Run(fmt.Sprintf("dm=%d", size), func(b *testing.B) {
			rel := benchRel(b, size)
			opts := discover.Options{MaxLHS: 2, MinSupport: 8}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink = discover.Dependencies(rel, opts)
			}
		})
	}
}

func BenchmarkDiscoverPostings(b *testing.B) {
	for _, size := range []int{600, 6000, 60000} {
		b.Run(fmt.Sprintf("dm=%d", size), func(b *testing.B) {
			rel := benchRel(b, size)
			opts := discover.Options{MaxLHS: 2, MinSupport: 8, Workers: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink = discover.Mine(rel, opts)
			}
		})
	}
}

func BenchmarkDiscoverWeighted(b *testing.B) {
	b.Run("dm=6000", func(b *testing.B) {
		rel := benchRel(b, 6000)
		opts := discover.Options{MaxLHS: 2, MinSupport: 8, MinConfidence: 0.9, Workers: 1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink = discover.Mine(rel, opts)
		}
	})
}
