package discover

// The naive row-scan miner — the PR 0 algorithm, kept verbatim in spirit
// as the reference oracle the property tests pin the postings engine
// against (the same pattern as the naive probe, closure, and region
// paths of PRs 2–5). Per candidate it rehashes every master tuple into
// string-keyed lhs groups; the postings engine must produce
// reflect.DeepEqual-identical output for every worker and shard count.

import "repro/internal/relation"

// Dependencies mines the functional dependencies Xm → Bm holding in the
// master relation with the naive row-scan engine, minimal in the lhs:
// once X → B holds, no superset of X is reported for the same B. With
// MinConfidence below 1 it mines approximate dependencies, counting
// majority violations per lhs group. Production callers want Mine; this
// is the oracle.
func Dependencies(masterRel *relation.Relation, opts Options) []Candidate {
	opts = opts.withDefaults()
	n := masterRel.Len()
	arity := masterRel.Schema().Arity()
	if n == 0 {
		return nil
	}
	exact := opts.MinConfidence >= 1
	maxViol := maxViolations(n, opts)

	// Distinct-value counts per attribute, for probe-key pruning and for
	// skipping trivial rhs (constant columns are "determined" by
	// anything).
	distinct := make([]int, arity)
	for a := 0; a < arity; a++ {
		seen := map[relation.Value]bool{}
		for _, tm := range masterRel.Tuples() {
			seen[tm[a]] = true
		}
		distinct[a] = len(seen)
	}

	var out []Candidate
	// covered[b] holds the minimal lhs sets already found for rhs b.
	covered := make([][]relation.AttrSet, arity)

	var lhsLists [][]int
	for width := 1; width <= opts.MaxLHS; width++ {
		lhsLists = lhsLists[:0]
		enumerateLists(arity, width, &lhsLists)
		for _, lhs := range lhsLists {
			if !probeWorthy(lhs, distinct, n, opts) {
				continue
			}
			for b := 0; b < arity; b++ {
				if contains(lhs, b) || distinct[b] <= 1 {
					continue
				}
				if subsumed(covered[b], lhs) {
					continue // a subset lhs already determines b
				}
				var support, viol int
				var ok bool
				if exact {
					support, ok = functional(masterRel, lhs, b)
				} else {
					support, viol = measureApprox(masterRel, lhs, b)
					ok = viol <= maxViol
				}
				if ok && support >= opts.MinSupport {
					out = append(out, Candidate{
						LHS: append([]int(nil), lhs...), RHS: b,
						Support: support, Violations: viol,
						Confidence: confidence(n, viol),
					})
					covered[b] = append(covered[b], relation.NewAttrSet(lhs...))
				}
			}
		}
	}
	sortCandidates(out)
	return out
}

// functional checks Xm → Bm exactly over the master tuples, returning the
// number of distinct lhs keys when it holds (early exit on the first
// contradiction — the exact path never pays for violation counting).
func functional(rel *relation.Relation, lhs []int, b int) (int, bool) {
	values := make(map[string]relation.Value, rel.Len())
	for _, tm := range rel.Tuples() {
		key := tm.Key(lhs)
		if prev, ok := values[key]; ok {
			if !prev.Equal(tm[b]) {
				return 0, false
			}
			continue
		}
		values[key] = tm[b]
	}
	return len(values), true
}

// measureApprox measures Xm → Bm approximately: support is the number of
// distinct lhs keys, violations the g3-style count of tuples outside
// their group's rhs majority.
func measureApprox(rel *relation.Relation, lhs []int, b int) (support, viol int) {
	type group struct {
		size   int
		counts map[relation.Value]int
	}
	groups := map[string]*group{}
	for _, tm := range rel.Tuples() {
		key := tm.Key(lhs)
		g := groups[key]
		if g == nil {
			g = &group{counts: map[relation.Value]int{}}
			groups[key] = g
		}
		g.size++
		g.counts[tm[b]]++
	}
	for _, g := range groups {
		maxc := 0
		for _, c := range g.counts {
			if c > maxc {
				maxc = c
			}
		}
		viol += g.size - maxc
	}
	return len(groups), viol
}
