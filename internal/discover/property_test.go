package discover_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/discover"
	"repro/internal/master"
	"repro/internal/relation"
)

// randomMaster generates a relation with planted functional structure: a
// hidden entity id drives some columns (functions of the id agree with
// each other), others are independent draws from small domains, and an
// optional noise rate corrupts cells to unique garbage.
func randomMaster(rng *rand.Rand, noise float64) *relation.Relation {
	arity := 4 + rng.Intn(4)
	n := 150 + rng.Intn(150)
	entities := 10 + rng.Intn(40)
	names := make([]string, arity)
	for a := range names {
		names[a] = fmt.Sprintf("a%d", a)
	}
	rel := relation.NewRelation(relation.StringSchema("Rand", names...))
	// Column modes: derived from the entity id (mod a per-column
	// cardinality, so derived columns determine each other when their
	// cardinality divides evenly) or independent random.
	derived := make([]bool, arity)
	card := make([]int, arity)
	for a := 0; a < arity; a++ {
		derived[a] = rng.Intn(3) > 0
		card[a] = 2 + rng.Intn(entities)
	}
	garbage := 0
	for i := 0; i < n; i++ {
		h := rng.Intn(entities)
		t := make(relation.Tuple, arity)
		for a := 0; a < arity; a++ {
			var v string
			if derived[a] {
				v = fmt.Sprintf("d%d_%d", a, h%card[a])
			} else {
				v = fmt.Sprintf("r%d_%d", a, rng.Intn(card[a]))
			}
			if noise > 0 && rng.Float64() < noise {
				garbage++
				v = fmt.Sprintf("garbage_%d", garbage)
			}
			t[a] = relation.String(v)
		}
		rel.MustAppend(t)
	}
	return rel
}

// The postings miner must be output-identical to the naive oracle for
// every worker count and shard count, on clean and dirty masters, exact
// and weighted. This is the PR 2–5 oracle pattern applied to discovery.
func TestPostingsMinerMatchesNaiveOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, cfg := range []struct {
			name    string
			noise   float64
			minConf float64
		}{
			{"exact", 0, 0},
			{"weighted", 0.04, 0.85},
		} {
			rng := rand.New(rand.NewSource(seed))
			rel := randomMaster(rng, cfg.noise)
			opts := discover.Options{MaxLHS: 2, MinSupport: 4, MinConfidence: cfg.minConf}
			want := discover.Dependencies(rel, opts)
			for _, p := range []int{1, 2, 7, 16} {
				dm := master.New(rel, master.WithShards(p))
				popts := opts
				popts.Workers = p
				got := discover.DependenciesMaster(dm, popts)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d %s P=%d: postings miner diverged from oracle\n got %+v\nwant %+v",
						seed, cfg.name, p, got, want)
				}
			}
			if t.Failed() {
				return
			}
		}
	}
}

// Mine (which builds its own snapshot) must agree with the oracle too.
func TestMineMatchesNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rel := randomMaster(rng, 0.05)
	opts := discover.Options{MaxLHS: 2, MinSupport: 4, MinConfidence: 0.8}
	got := discover.Mine(rel, opts)
	want := discover.Dependencies(rel, opts)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Mine diverged from oracle\n got %+v\nwant %+v", got, want)
	}
}

// noisyFDRelation builds n rows with the exact dependency a0 → a1 and
// then corrupts the a1 cell of the first ceil(rate·n) rows to unique
// garbage. Higher rates corrupt a superset of the rows lower rates do, so
// mined confidence must be monotone non-increasing in the rate.
func noisyFDRelation(n int, rate float64) *relation.Relation {
	rel := relation.NewRelation(relation.StringSchema("FD", "a0", "a1", "a2"))
	corrupt := int(rate * float64(n))
	for i := 0; i < n; i++ {
		key := i % 40
		b := fmt.Sprintf("f%d", key*3)
		if i < corrupt {
			b = fmt.Sprintf("garbage_%d", i)
		}
		rel.MustAppend(relation.Tuple{
			relation.String(fmt.Sprintf("k%d", key)),
			relation.String(b),
			relation.String(fmt.Sprintf("x%d", i%7)),
		})
	}
	return rel
}

func findDep(deps []discover.Candidate, lhs, rhs int) (discover.Candidate, bool) {
	for _, c := range deps {
		if len(c.LHS) == 1 && c.LHS[0] == lhs && c.RHS == rhs {
			return c, true
		}
	}
	return discover.Candidate{}, false
}

// Weighted confidence must decrease monotonically as injected noise
// grows, and equal exactly 1 on the clean relation.
func TestWeightedConfidenceMonotoneInNoise(t *testing.T) {
	const n = 400
	rates := []float64{0, 0.05, 0.1, 0.2}
	prev := 1.1
	for _, rate := range rates {
		rel := noisyFDRelation(n, rate)
		deps := discover.Mine(rel, discover.Options{MaxLHS: 1, MinSupport: 4, MinConfidence: 0.5})
		c, ok := findDep(deps, 0, 1)
		if !ok {
			t.Fatalf("rate %v: dependency a0 → a1 not mined (deps: %+v)", rate, deps)
		}
		if rate == 0 && (c.Confidence != 1 || c.Violations != 0) {
			t.Fatalf("clean relation: confidence %v violations %d, want exactly 1 and 0", c.Confidence, c.Violations)
		}
		if c.Confidence >= prev && rate > 0 {
			t.Fatalf("rate %v: confidence %v not strictly below previous %v", rate, c.Confidence, prev)
		}
		prev = c.Confidence
	}
}
