// Package discover mines editing rules from master data — the problem §7
// of the paper leaves open ("effective algorithms have to be in place for
// discovering editing rules from sample inputs and master data").
//
// The miner searches the master relation for (possibly approximate)
// functional relationships: an attribute list Xm determines Bm in Dm when
// tuples agreeing on Xm (almost) always agree on Bm. Every dependency
// with enough support yields the editing rule ((X, Xm) → (B, Bm), ())
// over an input schema aligned with the master schema — the shape the
// paper's HOSP and DBLP rule sets take. Like CFD discovery the lattice
// search is exponential in the lhs width, so lhs lists are enumerated up
// to a configured width and pruned by support, by probe-worthiness, and
// by the usual minimality/augmentation rules.
//
// Two engines implement the same search:
//
//   - Dependencies is the naive row-scan oracle from PR 0: per candidate
//     it rehashes every master tuple into string-keyed groups. It is kept,
//     like the naive probe and closure paths of PRs 2–5, as the reference
//     the property tests compare against.
//   - Mine / DependenciesMaster run on the sharded inverted-postings
//     layer of internal/master: each column is decoded once into dense
//     interned-value ids (Data.ColumnIDs), lhs support is counted by
//     TANE-style stripped-partition refinement over those ids, and the
//     candidate lattice fans out per level on internal/parallel. Output
//     is deterministic — byte-identical for every worker and shard
//     count — because partitions are ordered by first occurrence in
//     tuple order, never by interning order.
//
// Mining tolerates dirty masters: with MinConfidence below 1 a dependency
// is kept when at most a (1 − MinConfidence) fraction of tuples violate
// it, and the mined rule carries the measured confidence as a weight
// (rule.Rule.Confidence) that Suggest uses to rank competing suggestions.
// Loop closes the circle — mine weighted dependencies, majority-repair
// the cells that violate them, re-mine on the cleaned master — so a
// deployment with no hand-written Σ can bootstrap one from its own data
// (the discover→fix→re-discover loop surfaced as certainfix.Discover and
// `rulemine -loop`).
package discover

import (
	"fmt"
	"sort"

	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// Options tunes the miner.
type Options struct {
	// MaxLHS bounds the lhs width (default 2; 3+ grows combinatorially).
	MaxLHS int
	// MinSupport is the minimum number of distinct lhs keys required for
	// a dependency to count as evidence rather than coincidence
	// (default 8).
	MinSupport int
	// MinDistinctRatio rejects trivial lhs candidates: the lhs must take
	// at least this fraction of distinct values over the master tuples
	// (default 0.05). Near-constant attributes (e.g. type =
	// "inproceedings") make poor probe keys on their own.
	MinDistinctRatio float64
	// MinConfidence is the weighted-mining knob: a dependency is kept
	// when its confidence 1 − violations/|Dm| reaches this threshold,
	// where violations counts the tuples that would have to change for
	// the dependency to hold exactly. The default (and any value ≤ 0)
	// is 1: exact mining, zero violations tolerated — the original
	// behavior. Values below 1 mine from dirty masters and stamp each
	// rule with its measured confidence (rule.Rule.Confidence).
	MinConfidence float64
	// Workers bounds the goroutines the postings miner fans each lattice
	// level out on (≤ 0 selects GOMAXPROCS). Output is identical for
	// every worker count. The naive oracle ignores it.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxLHS <= 0 {
		o.MaxLHS = 2
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 8
	}
	if o.MinDistinctRatio == 0 {
		o.MinDistinctRatio = 0.05
	}
	if o.MinConfidence <= 0 || o.MinConfidence > 1 {
		o.MinConfidence = 1
	}
	return o
}

// Candidate is a mined dependency with its evidence.
type Candidate struct {
	LHS     []int // master attribute positions Xm
	RHS     int   // master attribute position Bm
	Support int   // distinct lhs keys witnessed
	// Violations counts the master tuples that disagree with their lhs
	// group's majority rhs value — the cells that would have to change
	// for the dependency to hold exactly. 0 for exact dependencies.
	Violations int
	// Confidence is 1 − Violations/|Dm|, the weight mined rules carry.
	Confidence float64
}

// confEps absorbs float rounding at the acceptance boundary so that e.g.
// MinConfidence 0.9 keeps a dependency whose confidence is exactly 0.9.
const confEps = 1e-9

func confidence(n, viol int) float64 { return 1 - float64(viol)/float64(n) }

// maxViolations is the largest violation count acceptable under opts:
// viol ≤ maxViolations(n, opts) iff confidence(n, viol) + confEps ≥
// MinConfidence. Both miners share this single acceptance formula.
func maxViolations(n int, opts Options) int {
	return int(float64(n)*(1-opts.MinConfidence) + float64(n)*confEps)
}

// Rules mines editing rules over (r, rm) from the master relation using
// the postings engine. The input schema r must align positionally with rm
// (the §6 datasets use the same attribute list for R and Rm; rules map
// position i to position i). Rules are named "m<N>" in discovery order
// and carry their mined confidence as a weight when it is below 1.
func Rules(r *relation.Schema, masterRel *relation.Relation, opts Options) (*rule.Set, []Candidate, error) {
	rm := masterRel.Schema()
	if r.Arity() != rm.Arity() {
		return nil, nil, fmt.Errorf("discover: input schema %s and master schema %s must align positionally", r, rm)
	}
	cands := Mine(masterRel, opts)
	set, err := rulesFromCandidates(r, rm, cands)
	if err != nil {
		return nil, nil, err
	}
	return set, cands, nil
}

func rulesFromCandidates(r, rm *relation.Schema, cands []Candidate) (*rule.Set, error) {
	out := rule.MustNewSet(r, rm)
	for i, c := range cands {
		ru, err := rule.New(fmt.Sprintf("m%02d", i+1), r, rm, c.LHS, c.LHS, c.RHS, c.RHS, pattern.Empty())
		if err != nil {
			return nil, fmt.Errorf("discover: candidate %d: %w", i, err)
		}
		if c.Confidence < 1 {
			if ru, err = ru.WithConfidence(c.Confidence); err != nil {
				return nil, fmt.Errorf("discover: candidate %d: %w", i, err)
			}
		}
		if err := out.Add(ru); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func sortCandidates(out []Candidate) {
	sort.SliceStable(out, func(i, j int) bool { return out[i].Support > out[j].Support })
}

// probeWorthy rejects lhs lists whose key space is too small to be a
// useful (or credible) probe key.
func probeWorthy(lhs []int, distinct []int, n int, opts Options) bool {
	best := 0
	for _, a := range lhs {
		if distinct[a] > best {
			best = distinct[a]
		}
	}
	return float64(best) >= opts.MinDistinctRatio*float64(n)
}

func subsumed(minimal []relation.AttrSet, lhs []int) bool {
	s := relation.NewAttrSet(lhs...)
	for _, m := range minimal {
		if s.ContainsSet(m) {
			return true
		}
	}
	return false
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// enumerateLists appends every ascending list of the given width over
// [0, arity) to out.
func enumerateLists(arity, width int, out *[][]int) {
	list := make([]int, width)
	var walk func(start, depth int)
	walk = func(start, depth int) {
		if depth == width {
			*out = append(*out, append([]int(nil), list...))
			return
		}
		for a := start; a < arity; a++ {
			list[depth] = a
			walk(a+1, depth+1)
		}
	}
	walk(0, 0)
}
