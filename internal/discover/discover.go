// Package discover mines candidate editing rules from master data — the
// direction §7 of the paper singles out as future work ("effective
// algorithms have to be in place for discovering editing rules from
// sample inputs and master data, along the same lines as discovering
// other data quality rules [12, 26]").
//
// The miner searches for functional relationships inside the master
// relation: an attribute list Xm determines Bm in Dm when no two master
// tuples agree on Xm but differ on Bm. Every such dependency with enough
// support yields the editing rule ((X, Xm) → (B, Bm), ()) over an input
// schema aligned with the master schema — the shape the paper's HOSP and
// DBLP rule sets take. Like CFD discovery, the search is inherently
// exponential in the lhs width, so the miner enumerates lhs lists up to
// a configured width and prunes by support and by the usual
// minimality/augmentation rules.
package discover

import (
	"fmt"
	"sort"

	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// Options tunes the miner.
type Options struct {
	// MaxLHS bounds the lhs width (default 2; 3+ grows combinatorially).
	MaxLHS int
	// MinSupport is the minimum number of distinct lhs keys required for
	// a dependency to count as evidence rather than coincidence
	// (default 8).
	MinSupport int
	// MinDistinctRatio rejects trivial lhs candidates: the lhs must take
	// at least this fraction of distinct values over the master tuples
	// (default 0.05). Near-constant attributes (e.g. type =
	// "inproceedings") make poor probe keys on their own.
	MinDistinctRatio float64
}

func (o Options) withDefaults() Options {
	if o.MaxLHS <= 0 {
		o.MaxLHS = 2
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 8
	}
	if o.MinDistinctRatio == 0 {
		o.MinDistinctRatio = 0.05
	}
	return o
}

// Candidate is a mined dependency with its evidence.
type Candidate struct {
	LHS     []int // master attribute positions Xm
	RHS     int   // master attribute position Bm
	Support int   // distinct lhs keys witnessed
}

// Rules mines editing rules over (r, rm) from the master relation. The
// input schema r must align positionally with rm (the §6 datasets use
// the same attribute list for R and Rm; rules map position i to
// position i). Rules are named "m<N>" in discovery order.
func Rules(r *relation.Schema, masterRel *relation.Relation, opts Options) (*rule.Set, []Candidate, error) {
	rm := masterRel.Schema()
	if r.Arity() != rm.Arity() {
		return nil, nil, fmt.Errorf("discover: input schema %s and master schema %s must align positionally", r, rm)
	}
	cands := Dependencies(masterRel, opts)
	out := rule.MustNewSet(r, rm)
	for i, c := range cands {
		ru, err := rule.New(fmt.Sprintf("m%02d", i+1), r, rm, c.LHS, c.LHS, c.RHS, c.RHS, patternEmpty())
		if err != nil {
			return nil, nil, fmt.Errorf("discover: candidate %d: %w", i, err)
		}
		if err := out.Add(ru); err != nil {
			return nil, nil, err
		}
	}
	return out, cands, nil
}

// Dependencies mines the functional dependencies Xm → Bm holding in the
// master relation, minimal in the lhs: once X → B holds, no superset of
// X is reported for the same B.
func Dependencies(masterRel *relation.Relation, opts Options) []Candidate {
	opts = opts.withDefaults()
	n := masterRel.Len()
	arity := masterRel.Schema().Arity()
	if n == 0 {
		return nil
	}

	// Distinct-value counts per attribute, for probe-key pruning and for
	// skipping trivial rhs (constant columns are "determined" by
	// anything).
	distinct := make([]int, arity)
	for a := 0; a < arity; a++ {
		seen := map[relation.Value]bool{}
		for _, tm := range masterRel.Tuples() {
			seen[tm[a]] = true
		}
		distinct[a] = len(seen)
	}

	var out []Candidate
	// covered[b] holds the minimal lhs sets already found for rhs b.
	covered := make([][]relation.AttrSet, arity)

	var lhsLists [][]int
	for width := 1; width <= opts.MaxLHS; width++ {
		lhsLists = lhsLists[:0]
		enumerateLists(arity, width, &lhsLists)
		for _, lhs := range lhsLists {
			if !probeWorthy(lhs, distinct, n, opts) {
				continue
			}
			for b := 0; b < arity; b++ {
				if contains(lhs, b) || distinct[b] <= 1 {
					continue
				}
				if subsumed(covered[b], lhs) {
					continue // a subset lhs already determines b
				}
				support, ok := functional(masterRel, lhs, b)
				if ok && support >= opts.MinSupport {
					out = append(out, Candidate{LHS: append([]int(nil), lhs...), RHS: b, Support: support})
					covered[b] = append(covered[b], relation.NewAttrSet(lhs...))
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Support > out[j].Support })
	return out
}

// functional checks Xm → Bm over the master tuples, returning the number
// of distinct lhs keys when it holds.
func functional(rel *relation.Relation, lhs []int, b int) (int, bool) {
	values := make(map[string]relation.Value, rel.Len())
	for _, tm := range rel.Tuples() {
		key := tm.Key(lhs)
		if prev, ok := values[key]; ok {
			if !prev.Equal(tm[b]) {
				return 0, false
			}
			continue
		}
		values[key] = tm[b]
	}
	return len(values), true
}

// probeWorthy rejects lhs lists whose key space is too small to be a
// useful (or credible) probe key.
func probeWorthy(lhs []int, distinct []int, n int, opts Options) bool {
	best := 0
	for _, a := range lhs {
		if distinct[a] > best {
			best = distinct[a]
		}
	}
	return float64(best) >= opts.MinDistinctRatio*float64(n)
}

func subsumed(minimal []relation.AttrSet, lhs []int) bool {
	s := relation.NewAttrSet(lhs...)
	for _, m := range minimal {
		if s.ContainsSet(m) {
			return true
		}
	}
	return false
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// enumerateLists appends every ascending list of the given width over
// [0, arity) to out.
func enumerateLists(arity, width int, out *[][]int) {
	list := make([]int, width)
	var walk func(start, depth int)
	walk = func(start, depth int) {
		if depth == width {
			*out = append(*out, append([]int(nil), list...))
			return
		}
		for a := start; a < arity; a++ {
			list[depth] = a
			walk(a+1, depth+1)
		}
	}
	walk(0, 0)
}

func patternEmpty() pattern.Tuple { return pattern.Empty() }
