package discover

// The postings engine: dependency mining on the sharded inverted-postings
// layer of internal/master.
//
// Instead of rehashing every tuple per candidate (the naive oracle's
// O(candidates × n) string-keyed map work), each column is decoded ONCE
// into a dense array of interned value ids (Data.ColumnIDs — the posting
// lists read back sideways), and support counting becomes TANE-style
// stripped-partition refinement over uint32 ids:
//
//   - the partition of a lhs list is the set of tuple-id classes agreeing
//     on that lhs; singleton classes are dropped ("stripped") and only
//     counted, since they can neither split further nor violate anything;
//   - refining by one more column is two passes over each class with an
//     epoch-stamped counting scratch — no maps, no hashing, no clearing;
//   - a dependency's violations are counted class by class (size minus
//     majority count), with early exit once the budget maxViolations
//     allows is exceeded — the exact-mining budget is 0, so the common
//     clean-prefix case stops at the first contradiction like the oracle.
//
// The lattice fans out per level on internal/parallel (per-worker
// scratch, results consumed in enumeration order). Determinism for every
// worker and shard count comes from ordering everything by FIRST
// OCCURRENCE IN TUPLE ORDER: value-id numbering depends on interning
// order (which the parallel master build does not fix), so ids are used
// only for equality, never for ordering. Minimality pruning (covered[b])
// updates at level boundaries only — within one level all lhs sets have
// equal width, so none can subsume another and the oracle's scan-order
// updates are observationally identical.

import (
	"repro/internal/master"
	"repro/internal/parallel"
	"repro/internal/relation"
)

// Mine mines dependencies from the master relation on the postings
// engine: it builds an ephemeral postings-indexed snapshot over the
// relation and delegates to DependenciesMaster. Output is identical to
// Dependencies (the naive oracle) for every Options value.
func Mine(masterRel *relation.Relation, opts Options) []Candidate {
	if masterRel.Len() == 0 {
		return nil
	}
	return DependenciesMaster(minerData(masterRel), opts)
}

// minerData builds a postings-only master snapshot over rel: no rule
// indexes, just every column's posting lists.
func minerData(rel *relation.Relation) *master.Data {
	dm := master.New(rel)
	cols := make([]int, rel.Schema().Arity())
	for i := range cols {
		cols[i] = i
	}
	dm.IndexPostings(cols...)
	return dm
}

// DependenciesMaster mines dependencies from an existing master snapshot
// via its postings layer. Columns without posting lists are indexed first
// (construction-time work — do not call concurrently with probes on a
// snapshot that is missing columns). The result is identical to
// Dependencies over dm's relation.
func DependenciesMaster(dm *master.Data, opts Options) []Candidate {
	opts = opts.withDefaults()
	if dm.Len() == 0 {
		return nil
	}
	cols := make([]int, dm.Schema().Arity())
	for i := range cols {
		cols[i] = i
	}
	dm.IndexPostings(cols...)
	return newMiner(dm).dependencies(opts)
}

// partition is a stripped partition of tuple ids: classes holds the
// agree-groups of size ≥ 2 (each in ascending tuple order, classes
// ordered by first occurrence), rest counts the dropped singletons.
type partition struct {
	classes [][]int32
	rest    int
}

// support is the number of distinct keys: one per class plus the
// singletons.
func (p partition) support() int { return len(p.classes) + p.rest }

// minerScratch is the per-worker epoch-stamped counting table, indexed by
// interned value id. stamp[v] != epoch means count[v] is garbage, so
// clearing between classes is a single epoch bump.
type minerScratch struct {
	epoch uint32
	stamp []uint32
	count []int32
}

func newScratch(nsyms int) *minerScratch {
	return &minerScratch{epoch: 0, stamp: make([]uint32, nsyms), count: make([]int32, nsyms)}
}

func (sc *minerScratch) bump() {
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stamps are ambiguous, reset
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 1
	}
}

// refine splits every class of p by the value ids in col. Two passes per
// class: count members per id, then emit subclasses of size ≥ 2 in
// first-occurrence order (count[v] is flipped to the negative slot index
// on first emission). New singletons move to rest.
func refine(p partition, col []uint32, sc *minerScratch) partition {
	out := partition{rest: p.rest, classes: make([][]int32, 0, len(p.classes))}
	for _, class := range p.classes {
		sc.bump()
		for _, id := range class {
			v := col[id]
			if sc.stamp[v] != sc.epoch {
				sc.stamp[v] = sc.epoch
				sc.count[v] = 0
			}
			sc.count[v]++
		}
		for _, id := range class {
			v := col[id]
			c := sc.count[v]
			if c < 0 { // subclass already has a slot: -slot-1
				out.classes[-c-1] = append(out.classes[-c-1], id)
				continue
			}
			if c == 1 {
				out.rest++
				continue
			}
			slot := len(out.classes)
			sub := make([]int32, 1, c)
			sub[0] = id
			out.classes = append(out.classes, sub)
			sc.count[v] = -int32(slot) - 1
		}
	}
	return out
}

// violations counts, class by class, the members outside the class's rhs
// majority. Returns ok=false (with the running count) as soon as the
// budget is exceeded; a budget of 0 makes this an exact check with early
// exit on the first contradiction.
func violations(p partition, col []uint32, sc *minerScratch, maxViol int) (int, bool) {
	viol := 0
	for _, class := range p.classes {
		sc.bump()
		var maxc int32
		for _, id := range class {
			v := col[id]
			if sc.stamp[v] != sc.epoch {
				sc.stamp[v] = sc.epoch
				sc.count[v] = 0
			}
			sc.count[v]++
			if sc.count[v] > maxc {
				maxc = sc.count[v]
			}
		}
		viol += len(class) - int(maxc)
		if viol > maxViol {
			return viol, false
		}
	}
	return viol, true
}

// miner holds the per-mining-run decoded columns and level-1 partitions.
type miner struct {
	n, arity int
	nsyms    int
	dm       *master.Data
	cols     [][]uint32
	distinct []int
	p1       []partition
}

func newMiner(dm *master.Data) *miner {
	n, arity := dm.Len(), dm.Schema().Arity()
	m := &miner{n: n, arity: arity, nsyms: dm.SymbolCount(), dm: dm}
	m.cols = make([][]uint32, arity)
	for a := 0; a < arity; a++ {
		col, ok := dm.ColumnIDs(a)
		if !ok {
			panic("discover: miner invariant: column has no postings")
		}
		m.cols[a] = col
	}
	// Level-1 partitions refine the universe class [0, n) — giving
	// first-seen-in-tuple-order classes, the determinism anchor.
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	universe := partition{classes: [][]int32{all}}
	sc := newScratch(m.nsyms)
	m.p1 = make([]partition, arity)
	m.distinct = make([]int, arity)
	for a := 0; a < arity; a++ {
		m.p1[a] = refine(universe, m.cols[a], sc)
		m.distinct[a] = m.p1[a].support()
	}
	return m
}

// partitionOf refines the level-1 partition of lhs[0] by the remaining
// lhs columns.
func (m *miner) partitionOf(lhs []int, sc *minerScratch) partition {
	p := m.p1[lhs[0]]
	for _, a := range lhs[1:] {
		p = refine(p, m.cols[a], sc)
	}
	return p
}

// mineLHS evaluates one lattice node: all rhs candidates for the given
// lhs list. covered is read-only during a level (see the package note on
// level-boundary updates).
func (m *miner) mineLHS(lhs []int, covered [][]relation.AttrSet, maxViol int, opts Options, sc *minerScratch) []Candidate {
	if !probeWorthy(lhs, m.distinct, m.n, opts) {
		return nil
	}
	p := m.partitionOf(lhs, sc)
	sup := p.support()
	if sup < opts.MinSupport {
		return nil
	}
	var out []Candidate
	for b := 0; b < m.arity; b++ {
		if contains(lhs, b) || m.distinct[b] <= 1 {
			continue
		}
		if subsumed(covered[b], lhs) {
			continue
		}
		viol, ok := violations(p, m.cols[b], sc, maxViol)
		if !ok {
			continue
		}
		out = append(out, Candidate{
			LHS: append([]int(nil), lhs...), RHS: b,
			Support: sup, Violations: viol,
			Confidence: confidence(m.n, viol),
		})
	}
	return out
}

// dependencies runs the level-wise lattice search, fanning each level out
// on internal/parallel and consuming results in enumeration order.
func (m *miner) dependencies(opts Options) []Candidate {
	maxViol := maxViolations(m.n, opts)
	var out []Candidate
	covered := make([][]relation.AttrSet, m.arity)
	var lhsLists [][]int
	for width := 1; width <= opts.MaxLHS; width++ {
		lhsLists = lhsLists[:0]
		enumerateLists(m.arity, width, &lhsLists)
		results, err := parallel.MapWorkers(len(lhsLists), opts.Workers,
			func() func(i int) ([]Candidate, error) {
				sc := newScratch(m.nsyms)
				return func(i int) ([]Candidate, error) {
					return m.mineLHS(lhsLists[i], covered, maxViol, opts, sc), nil
				}
			})
		if err != nil {
			panic(err) // unreachable: mineLHS cannot fail
		}
		for _, cs := range results {
			for _, c := range cs {
				out = append(out, c)
				covered[c.RHS] = append(covered[c.RHS], relation.NewAttrSet(c.LHS...))
			}
		}
	}
	sortCandidates(out)
	return out
}
