package discover_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/discover"
	"repro/internal/relation"
)

// loopFixture builds a relation with the dependencies a0 → a1 and
// a0 → a2 and corrupts ~3% of the a1/a2 cells to unique garbage,
// returning the dirty relation and the pristine original.
func loopFixture(n int, seed int64) (dirty, clean *relation.Relation) {
	clean = relation.NewRelation(relation.StringSchema("Loop", "a0", "a1", "a2", "a3"))
	for i := 0; i < n; i++ {
		key := i % 40
		clean.MustAppend(relation.Tuple{
			relation.String(fmt.Sprintf("k%d", key)),
			relation.String(fmt.Sprintf("b%d", key*2)),
			relation.String(fmt.Sprintf("c%d", key%9)),
			relation.String(fmt.Sprintf("z%d", i%5)),
		})
	}
	dirty = clean.Clone()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for _, col := range []int{1, 2} {
			if rng.Float64() < 0.03 {
				dirty.Tuples()[i][col] = relation.String(fmt.Sprintf("noise_%d_%d", i, col))
			}
		}
	}
	return dirty, clean
}

// The bootstrap loop must repair the injected noise back to the pristine
// cells, report the repairs in its round stats, leave the input relation
// untouched, and end with exact (confidence-1) dependencies.
func TestLoopRepairsInjectedNoise(t *testing.T) {
	dirty, clean := loopFixture(600, 7)
	input := dirty.Clone()
	res, err := discover.Loop(dirty.Schema(), dirty, discover.LoopOptions{
		Options: discover.Options{MaxLHS: 1, MinSupport: 4, MinConfidence: 0.85},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The input must not have been modified.
	for i := 0; i < dirty.Len(); i++ {
		if !dirty.Tuple(i).Equal(input.Tuple(i)) {
			t.Fatalf("Loop modified its input relation at row %d", i)
		}
	}
	// Every corrupted cell must be back to the pristine value.
	for i := 0; i < clean.Len(); i++ {
		if !res.Cleaned.Tuple(i).Equal(clean.Tuple(i)) {
			t.Fatalf("row %d not fully repaired: got %v want %v", i, res.Cleaned.Tuple(i), clean.Tuple(i))
		}
	}
	if len(res.Rounds) == 0 || res.Rounds[0].CellsRepaired == 0 {
		t.Fatalf("round stats should record repairs, got %+v", res.Rounds)
	}
	for _, want := range [][2]int{{0, 1}, {0, 2}} {
		c, ok := findDep(res.Deps, want[0], want[1])
		if !ok {
			t.Fatalf("final deps missing a%d → a%d: %+v", want[0], want[1], res.Deps)
		}
		if c.Confidence != 1 || c.Violations != 0 {
			t.Fatalf("a%d → a%d after repair: confidence %v violations %d, want exact",
				want[0], want[1], c.Confidence, c.Violations)
		}
	}
	if res.Rules.Len() != len(res.Deps) {
		t.Fatalf("rules/deps mismatch: %d vs %d", res.Rules.Len(), len(res.Deps))
	}
}

// Loop output must be deterministic across worker counts.
func TestLoopDeterministicAcrossWorkers(t *testing.T) {
	dirty, _ := loopFixture(400, 11)
	var base *discover.LoopResult
	for _, workers := range []int{1, 2, 7} {
		res, err := discover.Loop(dirty.Schema(), dirty, discover.LoopOptions{
			Options: discover.Options{MaxLHS: 2, MinSupport: 4, MinConfidence: 0.85, Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(res.Deps, base.Deps) {
			t.Fatalf("workers=%d: deps diverged", workers)
		}
		if !reflect.DeepEqual(res.Rounds, base.Rounds) {
			t.Fatalf("workers=%d: rounds diverged", workers)
		}
		for i := 0; i < res.Cleaned.Len(); i++ {
			if !res.Cleaned.Tuple(i).Equal(base.Cleaned.Tuple(i)) {
				t.Fatalf("workers=%d: cleaned relation diverged at row %d", workers, i)
			}
		}
	}
}

func TestLoopEmptyMaster(t *testing.T) {
	rel := relation.NewRelation(relation.StringSchema("E", "a", "b"))
	res, err := discover.Loop(rel.Schema(), rel, discover.LoopOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.Len() != 0 || len(res.Deps) != 0 || len(res.Rounds) != 0 {
		t.Fatalf("empty master should mine nothing: %+v", res)
	}
}

func TestLoopSchemaMismatch(t *testing.T) {
	rel := relation.NewRelation(relation.StringSchema("A", "a", "b"))
	other := relation.StringSchema("B", "x")
	if _, err := discover.Loop(other, rel, discover.LoopOptions{}); err == nil {
		t.Fatal("want schema mismatch error")
	}
}
