package discover

// The discover→fix→re-discover bootstrap loop. A deployment with master
// data but no hand-written Σ mines weighted dependencies from the dirty
// master, majority-repairs the cells that violate them (certainty-first:
// only cells whose lhs group has an overwhelming rhs majority move, and
// cells two dependencies disagree about are left alone), then re-mines on
// the cleaned master — each round the evidence gets cleaner, confidences
// rise, and the loop stops at a fixpoint (no cell repaired) or after
// MaxRounds. The final mined Σ carries per-rule confidence weights that
// Suggest uses to rank competing suggestions.

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/rule"
)

// LoopOptions tunes the bootstrap loop. The embedded Options tune each
// round's mining; MinConfidence defaults to 0.9 here (mining from dirty
// data is the loop's whole point), not the exact-mining 1.
type LoopOptions struct {
	Options
	// MaxRounds bounds the mine→repair rounds (default 3). One extra
	// mining pass always runs after the last repair so the returned
	// dependencies reflect the cleaned master.
	MaxRounds int
	// RepairMajority is the fraction of an lhs group that must already
	// agree on the rhs value before the disagreeing minority cells are
	// rewritten to it (default 0.8). Below it the group is considered
	// genuinely ambiguous and left untouched.
	RepairMajority float64
}

func (o LoopOptions) withDefaults() LoopOptions {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 3
	}
	if o.RepairMajority <= 0 || o.RepairMajority > 1 {
		o.RepairMajority = 0.8
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = 0.9
	}
	o.Options = o.Options.withDefaults()
	return o
}

// RoundStats records one mine→repair round.
type RoundStats struct {
	Round          int     // 1-based
	Deps           int     // dependencies mined this round
	CellsRepaired  int     // master cells rewritten to their group majority
	MeanConfidence float64 // mean confidence of this round's dependencies
}

// LoopResult is the outcome of the bootstrap loop.
type LoopResult struct {
	// Rules is the mined Σ over the cleaned master, named "m<N>" in
	// discovery order, each carrying its measured confidence weight.
	Rules *rule.Set
	// Deps are the final dependencies behind Rules.
	Deps []Candidate
	// Cleaned is the repaired copy of the input master relation (the
	// input itself is never modified).
	Cleaned *relation.Relation
	// Rounds records each mine→repair round in order.
	Rounds []RoundStats
}

// Loop runs the self-bootstrapping discovery loop over (r, masterRel):
// mine weighted dependencies, majority-repair violating cells, re-mine,
// until a fixpoint or MaxRounds. Deterministic for every worker and
// shard count, like the miner itself.
func Loop(r *relation.Schema, masterRel *relation.Relation, opts LoopOptions) (*LoopResult, error) {
	rm := masterRel.Schema()
	if r.Arity() != rm.Arity() {
		return nil, fmt.Errorf("discover: input schema %s and master schema %s must align positionally", r, rm)
	}
	opts = opts.withDefaults()
	res := &LoopResult{Cleaned: masterRel.Clone()}
	if masterRel.Len() == 0 {
		set, err := rulesFromCandidates(r, rm, nil)
		if err != nil {
			return nil, err
		}
		res.Rules = set
		return res, nil
	}
	for round := 1; ; round++ {
		m := newMiner(minerData(res.Cleaned))
		res.Deps = m.dependencies(opts.Options)
		if round > opts.MaxRounds {
			break // final re-mine after the last permitted repair
		}
		repaired := m.repair(res.Cleaned, res.Deps, opts)
		res.Rounds = append(res.Rounds, RoundStats{
			Round: round, Deps: len(res.Deps),
			CellsRepaired:  repaired,
			MeanConfidence: meanConfidence(res.Deps),
		})
		if repaired == 0 {
			break // fixpoint: Deps already reflect the final relation
		}
	}
	set, err := rulesFromCandidates(r, rm, res.Deps)
	if err != nil {
		return nil, err
	}
	res.Rules = set
	return res, nil
}

func meanConfidence(deps []Candidate) float64 {
	if len(deps) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range deps {
		sum += c.Confidence
	}
	return sum / float64(len(deps))
}

// repair rewrites, for every mined dependency with violations, the
// minority rhs cells of each lhs group to the group's majority value —
// but only when the majority is overwhelming (≥ RepairMajority of the
// group, and at least 2 tuples), and never when two dependencies disagree
// about a cell (the write is dropped, certainty first). All writes are
// planned against the pre-repair snapshot the miner decoded, then applied
// at once; returns the number of cells changed.
func (m *miner) repair(rel *relation.Relation, deps []Candidate, opts LoopOptions) int {
	vals := m.dm.SymbolValues()
	sc := newScratch(m.nsyms)
	type cellKey struct{ row, col int }
	type write struct {
		row, col int
		val      relation.Value
		conflict bool
	}
	planned := map[cellKey]*write{}
	var order []*write
	for _, c := range deps {
		if c.Violations == 0 {
			continue
		}
		p := m.partitionOf(c.LHS, sc)
		colB := m.cols[c.RHS]
		for _, class := range p.classes {
			sc.bump()
			var bestVid uint32
			var bestCnt int32
			for _, id := range class {
				v := colB[id]
				if sc.stamp[v] != sc.epoch {
					sc.stamp[v] = sc.epoch
					sc.count[v] = 0
				}
				sc.count[v]++
				if sc.count[v] > bestCnt {
					bestCnt = sc.count[v]
					bestVid = v
				}
			}
			if int(bestCnt) == len(class) {
				continue // clean group
			}
			if bestCnt < 2 || float64(bestCnt) < opts.RepairMajority*float64(len(class)) {
				continue // no overwhelming majority: genuinely ambiguous
			}
			maj := vals[bestVid]
			for _, id := range class {
				if colB[id] == bestVid {
					continue
				}
				k := cellKey{int(id), c.RHS}
				if w, ok := planned[k]; ok {
					if !w.val.Equal(maj) {
						w.conflict = true
					}
					continue
				}
				w := &write{row: int(id), col: c.RHS, val: maj}
				planned[k] = w
				order = append(order, w)
			}
		}
	}
	fixed := 0
	for _, w := range order {
		if w.conflict {
			continue
		}
		rel.Tuples()[w.row][w.col] = w.val
		fixed++
	}
	return fixed
}
