package discover_test

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/discover"
	"repro/internal/master"
	"repro/internal/relation"
	"repro/internal/suggest"
)

// TestDiscoverRecoversHospStructure: mining the synthetic HOSP master
// must rediscover the functional skeleton the hand-written rules encode:
// zip→ST, phn→zip, id→hName, mCode→mName, (id, mCode)→Score, ...
func TestDiscoverRecoversHospStructure(t *testing.T) {
	ds, err := datagen.Hosp(datagen.Config{Seed: 2, MasterSize: 600, Tuples: 1})
	if err != nil {
		t.Fatal(err)
	}
	rm := ds.Master.Schema()
	_, cands, err := discover.Rules(datagen.HospSchema(), ds.Master.Relation(), discover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no dependencies mined")
	}
	found := func(lhs []string, rhs string) bool {
		lp := rm.MustPosList(lhs...)
		want := relation.NewAttrSet(lp...)
		rp := rm.MustPos(rhs)
		for _, c := range cands {
			if c.RHS == rp && relation.NewAttrSet(c.LHS...).Equal(want) {
				return true
			}
		}
		return false
	}
	for _, dep := range []struct {
		lhs []string
		rhs string
	}{
		{[]string{"zip"}, "ST"},
		{[]string{"phn"}, "zip"},
		{[]string{"id"}, "hName"},
		{[]string{"mCode"}, "mName"},
		{[]string{"provNum"}, "id"},
	} {
		if !found(dep.lhs, dep.rhs) {
			t.Errorf("expected mined dependency %v → %s", dep.lhs, dep.rhs)
		}
	}
	// (id, mCode) → Score holds but neither id nor mCode alone does.
	if !found([]string{"id", "mCode"}, "Score") {
		t.Error("expected (id, mCode) → Score")
	}
	if found([]string{"id"}, "Score") || found([]string{"mCode"}, "Score") {
		t.Error("single-attribute lhs must not determine Score")
	}
}

// TestDiscoverMinimality: once zip→ST is found, (zip, X)→ST supersets are
// suppressed.
func TestDiscoverMinimality(t *testing.T) {
	ds, err := datagen.Hosp(datagen.Config{Seed: 2, MasterSize: 400, Tuples: 1})
	if err != nil {
		t.Fatal(err)
	}
	rm := ds.Master.Schema()
	_, cands, err := discover.Rules(datagen.HospSchema(), ds.Master.Relation(), discover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	zip, st := rm.MustPos("zip"), rm.MustPos("ST")
	for _, c := range cands {
		if c.RHS == st && len(c.LHS) == 2 && relation.NewAttrSet(c.LHS...).Has(zip) {
			t.Errorf("non-minimal lhs %v → ST reported", c.LHS)
		}
	}
}

// TestDiscoveredRulesAreUsable: the mined rule set feeds straight into
// the region-derivation machinery and yields a working certain region.
func TestDiscoveredRulesAreUsable(t *testing.T) {
	ds, err := datagen.Hosp(datagen.Config{Seed: 2, MasterSize: 400, Tuples: 1})
	if err != nil {
		t.Fatal(err)
	}
	sigma, _, err := discover.Rules(datagen.HospSchema(), ds.Master.Relation(), discover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sigma.Len() == 0 {
		t.Fatal("no rules discovered")
	}
	dm := master.MustNewForRules(ds.Master.Relation(), sigma)
	d := suggest.NewDeriver(sigma, dm)
	cands := d.CompCRegions()
	if len(cands) == 0 {
		t.Fatal("mined rules admit no certain region")
	}
	// The mined rule set is at least as powerful as the hand-written one:
	// its best region needs no more user-validated attributes.
	if got := len(cands[0].Z); got > 2 {
		t.Errorf("mined-rule region |Z| = %d, want ≤ 2", got)
	}
}

// TestDiscoverSupportThreshold: raising MinSupport filters low-evidence
// dependencies.
func TestDiscoverSupportThreshold(t *testing.T) {
	rel := relation.NewRelation(relation.StringSchema("Rm", "A", "B"))
	for i := 0; i < 4; i++ {
		b := "x"
		if i >= 2 {
			b = "y"
		}
		rel.MustAppend(relation.StringTuple(string(rune('a'+i)), b))
	}
	low := discover.Dependencies(rel, discover.Options{MinSupport: 2, MinDistinctRatio: 0.01})
	if len(low) == 0 {
		t.Fatal("A→B should be mined at MinSupport 2")
	}
	high := discover.Dependencies(rel, discover.Options{MinSupport: 10, MinDistinctRatio: 0.01})
	if len(high) != 0 {
		t.Fatalf("MinSupport 10 should filter everything, got %v", high)
	}
}

// TestDiscoverRejectsNonFunctional: contradicting rows kill a dependency.
func TestDiscoverRejectsNonFunctional(t *testing.T) {
	rel := relation.NewRelation(relation.StringSchema("Rm", "A", "B"))
	rel.MustAppend(
		relation.StringTuple("k1", "x"),
		relation.StringTuple("k1", "y"), // contradiction
		relation.StringTuple("k2", "x"),
		relation.StringTuple("k3", "x"),
	)
	deps := discover.Dependencies(rel, discover.Options{MinSupport: 2, MinDistinctRatio: 0.01})
	for _, c := range deps {
		if len(c.LHS) == 1 && c.LHS[0] == 0 && c.RHS == 1 {
			t.Fatal("A→B does not hold and must not be mined")
		}
	}
}

// TestDiscoverSchemaMismatch: misaligned schemas are rejected.
func TestDiscoverSchemaMismatch(t *testing.T) {
	rel := relation.NewRelation(relation.StringSchema("Rm", "A", "B"))
	if _, _, err := discover.Rules(relation.StringSchema("R", "A"), rel, discover.Options{}); err == nil {
		t.Fatal("want arity mismatch error")
	}
}

// TestDiscoverEmptyMaster: no tuples, no dependencies, no panic.
func TestDiscoverEmptyMaster(t *testing.T) {
	rel := relation.NewRelation(relation.StringSchema("Rm", "A", "B"))
	if deps := discover.Dependencies(rel, discover.Options{}); deps != nil {
		t.Fatalf("deps = %v", deps)
	}
}
