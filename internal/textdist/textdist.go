// Package textdist provides the string-distance metrics used by the
// IncRep baseline's cost model (Cong et al., VLDB 2007 — reference [14]
// of the paper) and by the dirty-data generator. The repair cost of
// changing value v to v' is dist(v, v') weighted by attribute weight;
// IncRep prefers cheap changes.
package textdist

// Levenshtein returns the edit distance between a and b (unit costs for
// insert, delete, substitute), computed with the two-row dynamic program
// in O(len(a)·len(b)) time and O(min) space.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	// Work on runes so multi-byte text measures sensibly.
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Normalized returns Levenshtein(a, b) divided by the longer length,
// in [0, 1]; 0 for two empty strings.
func Normalized(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	longest := la
	if lb > longest {
		longest = lb
	}
	if longest == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(longest)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
