package textdist

import (
	"testing"
	"testing/quick"
)

func TestLevenshteinKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"Ldn", "Edi", 2},
		{"Bob", "Robert", 4},
		{"same", "same", 0},
		{"Edi", "Edinburgh", 6},
		{"日本語", "日本", 1}, // rune-aware
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinIdentityProperty(t *testing.T) {
	f := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinTriangleProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalized(t *testing.T) {
	if got := Normalized("", ""); got != 0 {
		t.Errorf("Normalized empty = %v", got)
	}
	if got := Normalized("abc", "abc"); got != 0 {
		t.Errorf("Normalized equal = %v", got)
	}
	if got := Normalized("abc", "xyz"); got != 1 {
		t.Errorf("Normalized disjoint = %v", got)
	}
	if got := Normalized("ab", "abcd"); got != 0.5 {
		t.Errorf("Normalized half = %v", got)
	}
}
