package datagen_test

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/suggest"
)

func TestHospRulesParse(t *testing.T) {
	sigma := datagen.HospRules()
	if sigma.Len() != 21 {
		t.Fatalf("hosp rules = %d, want 21 (as in §6)", sigma.Len())
	}
	if sigma.Schema().Arity() != 19 {
		t.Fatalf("hosp arity = %d, want 19", sigma.Schema().Arity())
	}
}

func TestDblpRulesParse(t *testing.T) {
	sigma := datagen.DblpRules()
	if sigma.Len() != 16 {
		t.Fatalf("dblp rules = %d, want 16 (as in §6)", sigma.Len())
	}
	if sigma.Schema().Arity() != 12 {
		t.Fatalf("dblp arity = %d, want 12", sigma.Schema().Arity())
	}
}

func TestHospMasterFunctional(t *testing.T) {
	ds, err := datagen.Hosp(datagen.Config{Seed: 1, MasterSize: 400, Tuples: 1})
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Master.Relation()
	if rel.Len() != 400 {
		t.Fatalf("|Dm| = %d", rel.Len())
	}
	rm := rel.Schema()
	// Master data must be consistent (§2): every rule's (X → B)
	// correspondence is functional inside Dm.
	for _, ru := range ds.Sigma.Rules() {
		seen := map[string]relation.Value{}
		for _, tm := range rel.Tuples() {
			key := tm.Key(ru.LHSM())
			v := tm[ru.RHSM()]
			if prev, ok := seen[key]; ok && !prev.Equal(v) {
				t.Fatalf("rule %s: master violates functionality: key %q maps to %v and %v",
					ru.Name(), key, prev, v)
			}
			seen[key] = v
		}
	}
	_ = rm
}

func TestDblpMasterFunctional(t *testing.T) {
	ds, err := datagen.Dblp(datagen.Config{Seed: 1, MasterSize: 400, Tuples: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ru := range ds.Sigma.Rules() {
		seen := map[string]relation.Value{}
		for _, tm := range ds.Master.Relation().Tuples() {
			key := tm.Key(ru.LHSM())
			v := tm[ru.RHSM()]
			if prev, ok := seen[key]; ok && !prev.Equal(v) {
				t.Fatalf("rule %s: master violates functionality: key %q maps to %v and %v",
					ru.Name(), key, prev, v)
			}
			seen[key] = v
		}
	}
}

// TestHospRegionSizeMatchesPaper: CompCRegion finds a 2-attribute certain
// region for HOSP — the paper's Exp-1(1) table reports exactly 2.
func TestHospRegionSizeMatchesPaper(t *testing.T) {
	ds, err := datagen.Hosp(datagen.Config{Seed: 7, MasterSize: 300, Tuples: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := suggest.NewDeriver(ds.Sigma, ds.Master)
	cands := d.CompCRegions()
	if len(cands) == 0 {
		t.Fatal("no certain region derived for hosp")
	}
	if got := len(cands[0].Z); got != 2 {
		t.Fatalf("hosp CompCRegion |Z| = %d, want 2 (paper's table)", got)
	}
	g := d.GRegion()
	if len(g.Z) <= len(cands[0].Z) {
		t.Fatalf("hosp GRegion |Z| = %d must exceed CompCRegion's %d", len(g.Z), len(cands[0].Z))
	}
}

// TestDblpRegionSizeMatchesPaper: CompCRegion finds a 5-attribute certain
// region for DBLP — the paper's table reports 5 — and GRegion is larger.
func TestDblpRegionSizeMatchesPaper(t *testing.T) {
	ds, err := datagen.Dblp(datagen.Config{Seed: 7, MasterSize: 300, Tuples: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := suggest.NewDeriver(ds.Sigma, ds.Master)
	cands := d.CompCRegions()
	if len(cands) == 0 {
		t.Fatal("no certain region derived for dblp")
	}
	if got := len(cands[0].Z); got != 5 {
		t.Fatalf("dblp CompCRegion |Z| = %d, want 5 (paper's table)", got)
	}
	g := d.GRegion()
	if len(g.Z) <= len(cands[0].Z) {
		t.Fatalf("dblp GRegion |Z| = %d must exceed CompCRegion's %d", len(g.Z), len(cands[0].Z))
	}
}

func TestDirtyGenerationDeterministic(t *testing.T) {
	cfg := datagen.Config{Seed: 42, MasterSize: 200, Tuples: 50, DupRate: 0.3, NoiseRate: 0.2}
	a, err := datagen.Hosp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := datagen.Hosp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Inputs {
		if !a.Inputs[i].Equal(b.Inputs[i]) || !a.Truths[i].Equal(b.Truths[i]) {
			t.Fatalf("generation not deterministic at tuple %d", i)
		}
	}
}

func TestNoiseRateShapesErrors(t *testing.T) {
	low, err := datagen.Hosp(datagen.Config{Seed: 5, MasterSize: 200, Tuples: 200, DupRate: 0.3, NoiseRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	high, err := datagen.Hosp(datagen.Config{Seed: 5, MasterSize: 200, Tuples: 200, DupRate: 0.3, NoiseRate: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if low.ErroneousCells() >= high.ErroneousCells() {
		t.Fatalf("noise must scale errors: low %d, high %d", low.ErroneousCells(), high.ErroneousCells())
	}
	if high.ErroneousTuples() <= low.ErroneousTuples() {
		t.Fatalf("noise must scale erroneous tuples: low %d, high %d", low.ErroneousTuples(), high.ErroneousTuples())
	}
	// Rough calibration: n%=45 over 19 attributes should corrupt nearly
	// every tuple.
	if float64(high.ErroneousTuples()) < 0.9*float64(len(high.Inputs)) {
		t.Fatalf("45%% noise left too many clean tuples: %d/200", high.ErroneousTuples())
	}
}

// TestDupRateControlsMasterMatches: with d% = 1 every truth tuple is a
// master row; with d% = 0 and PartialRate 0 none shares a full key.
func TestDupRateControlsMasterMatches(t *testing.T) {
	all, err := datagen.Dblp(datagen.Config{Seed: 3, MasterSize: 100, Tuples: 40, DupRate: 1, NoiseRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, truth := range all.Truths {
		found := false
		for _, tm := range all.Master.Relation().Tuples() {
			if truth.Equal(tm) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("d%%=1: truth %d not a master row", i)
		}
	}
	none, err := datagen.Dblp(datagen.Config{Seed: 3, MasterSize: 100, Tuples: 40, DupRate: 0, NoiseRate: 0, PartialRate: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i, truth := range none.Truths {
		for _, tm := range none.Master.Relation().Tuples() {
			if truth.Equal(tm) {
				t.Fatalf("d%%=0: truth %d equals a master row", i)
			}
		}
	}
}
