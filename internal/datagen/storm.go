package datagen

import (
	"math/rand"

	"repro/internal/relation"
)

// DeltaBatch is one master-data update of a storm: tuples to append and
// row ids to delete, in the shape master.ApplyDelta consumes.
type DeltaBatch struct {
	Adds    []relation.Tuple
	Deletes []int
}

// UpdateStorm derives a deterministic sequence of delta batches for the
// dataset's master: every batch appends adds clones of master rows with
// one attribute perturbed by the corrupt model ("the master evolves"),
// and deletes up to dels distinct live row ids. Ids are planned against
// the running cardinality under swap-remove semantics, so the batches
// are valid when applied in order starting from the generated master —
// exactly the workload the durability layer logs, and the load the
// crash-recovery experiments replay. Same (dataset, seed) — same storm.
func UpdateStorm(ds *Dataset, seed int64, batches, adds, dels int) []DeltaBatch {
	rng := rand.New(rand.NewSource(seed))
	n := ds.Master.Len()
	out := make([]DeltaBatch, 0, batches)
	for b := 0; b < batches; b++ {
		var batch DeltaBatch
		for a := 0; a < adds; a++ {
			t := ds.Master.Tuple(rng.Intn(ds.Master.Len())).Clone()
			i := rng.Intn(len(t))
			t[i] = Corrupt(rng, t[i], ds.Master.Tuple(rng.Intn(ds.Master.Len()))[i])
			batch.Adds = append(batch.Adds, t)
		}
		seen := make(map[int]bool)
		for d := 0; d < dels && len(seen) < n; d++ {
			id := rng.Intn(n)
			for seen[id] {
				id = (id + 1) % n
			}
			seen[id] = true
			batch.Deletes = append(batch.Deletes, id)
		}
		n += len(batch.Adds) - len(batch.Deletes)
		out = append(out, batch)
	}
	return out
}
