// Package datagen generates the synthetic HOSP and DBLP datasets of the
// paper's evaluation (§6) — master relations with the published schemas
// (19 and 12 attributes) and rule sets (21 and 16 editing rules) — plus
// the dirty-data generator parameterized by duplicate rate d%, noise rate
// n% and master size |Dm|, exactly the three knobs of the experiments.
// All generation is deterministic given a seed.
//
// The paper used the real Hospital Compare and DBLP dumps; this package
// substitutes distribution-compatible synthetic data (DESIGN.md,
// substitution 1): the functional structure the editing rules rely on
// (zip→state, phone→zip, id→hospital fields, author→homepage,
// crossref→venue, ...) is generated exactly, so rule applicability and
// the d%/n%/|Dm| response — the quantities the experiments measure — are
// preserved.
package datagen

import (
	"math/rand"
	"strings"

	"repro/internal/relation"
)

// Corrupt returns a dirtied version of a value: a character-level typo
// (substitution, deletion, insertion or transposition), a truncation to
// the missing value, or a replacement with a foreign value. The mix
// follows common data-entry error models: mostly typos, occasionally a
// blank or a value from another record.
func Corrupt(rng *rand.Rand, v relation.Value, foreign relation.Value) relation.Value {
	switch r := rng.Float64(); {
	case r < 0.10:
		return relation.Null // blanked-out field
	case r < 0.22 && !foreign.IsNull():
		return foreign // wrong record's value pasted in
	default:
		s := v.Encode()
		if s == "" {
			return relation.String(randomWord(rng, 6)) // noise in an empty field
		}
		return relation.String(typo(rng, s))
	}
}

// typo applies 1–2 character-level edits.
func typo(rng *rand.Rand, s string) string {
	edits := 1 + rng.Intn(2)
	out := []rune(s)
	for e := 0; e < edits && len(out) > 0; e++ {
		i := rng.Intn(len(out))
		switch rng.Intn(4) {
		case 0: // substitute
			out[i] = randomRune(rng)
		case 1: // delete
			out = append(out[:i], out[i+1:]...)
		case 2: // insert
			out = append(out[:i], append([]rune{randomRune(rng)}, out[i:]...)...)
		default: // transpose
			if i+1 < len(out) {
				out[i], out[i+1] = out[i+1], out[i]
			} else {
				out[i] = randomRune(rng)
			}
		}
	}
	if len(out) == 0 {
		return string(randomRune(rng))
	}
	return string(out)
}

const typoAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

func randomRune(rng *rand.Rand) rune {
	return rune(typoAlphabet[rng.Intn(len(typoAlphabet))])
}

func randomWord(rng *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(randomRune(rng))
	}
	return b.String()
}
