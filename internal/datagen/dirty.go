package datagen

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/master"
	"repro/internal/relation"
	"repro/internal/rule"
)

// Config parameterizes dirty-data generation, mirroring §6: duplicate
// rate d% (probability an input tuple matches a master tuple — "the
// relevance and completeness of Dm"), noise rate n% (percentage of
// erroneous attributes) and the master cardinality |Dm|.
type Config struct {
	Seed       int64
	MasterSize int     // |Dm|
	Tuples     int     // |D|
	DupRate    float64 // d% in [0, 1]
	NoiseRate  float64 // n% in [0, 1]
	// PartialRate is the fraction of non-duplicate tuples that still
	// share an entity (hospital / measure / author / venue) with the
	// master data, so that some — but not all — of their attributes are
	// fixable. Real joins produce these naturally; they drive the
	// multi-round interactions of Fig. 9. Zero selects the default 0.5;
	// a negative value disables partial matches entirely.
	PartialRate float64
	// Shards partitions the generated master's indexes into hash shards
	// built in parallel (0 = one per CPU; see master.WithShards). Fix
	// results are byte-identical for every shard count.
	Shards int
	// MasterArena, when non-empty, names a columnar master arena image:
	// an existing image is loaded (master.LoadArena) instead of building
	// indexes over the generated master relation, and a missing one is
	// saved after the build so the next run with the same parameters
	// cold-starts by page-in. The image must have been saved for the same
	// (Σ, generation parameters); rule signatures are validated at load.
	MasterArena string
}

func (c Config) withDefaults() Config {
	if c.MasterSize <= 0 {
		c.MasterSize = 1000
	}
	if c.Tuples <= 0 {
		c.Tuples = 100
	}
	if c.PartialRate == 0 {
		c.PartialRate = 0.5
	}
	return c
}

// Dataset bundles everything an experiment needs: the rules, the indexed
// master data, the dirty input tuples and their ground truths.
type Dataset struct {
	Name   string
	Sigma  *rule.Set
	Master *master.Data
	Inputs []relation.Tuple
	Truths []relation.Tuple
}

// ErroneousTuples counts inputs that differ from their truth somewhere.
func (d *Dataset) ErroneousTuples() int {
	n := 0
	for i := range d.Inputs {
		if !d.Inputs[i].Equal(d.Truths[i]) {
			n++
		}
	}
	return n
}

// ErroneousCells counts attribute-level errors across all inputs.
func (d *Dataset) ErroneousCells() int {
	n := 0
	for i := range d.Inputs {
		for j := range d.Inputs[i] {
			if !d.Inputs[i][j].Equal(d.Truths[i][j]) {
				n++
			}
		}
	}
	return n
}

// buildMaster turns the generated master relation into index-backed
// master data, through the configured arena image when one is set: load
// it if it exists, otherwise build from the relation and save it.
func buildMaster(rel *relation.Relation, sigma *rule.Set, cfg Config) (*master.Data, error) {
	if cfg.MasterArena != "" {
		if _, err := os.Stat(cfg.MasterArena); err == nil {
			return master.LoadArena(cfg.MasterArena, sigma)
		}
	}
	dm, err := master.NewForRules(rel, sigma, master.WithShards(cfg.Shards))
	if err != nil {
		return nil, err
	}
	if cfg.MasterArena != "" {
		if err := dm.SaveArenaFile(cfg.MasterArena, sigma); err != nil {
			return nil, fmt.Errorf("save master arena: %w", err)
		}
	}
	return dm, nil
}

// Hosp generates the HOSP dataset.
func Hosp(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sigma := HospRules()
	w := newHospWorld(rng, cfg.MasterSize)

	rel := relation.NewRelation(HospMasterSchema())
	for k := 0; k < cfg.MasterSize; k++ {
		h, m := w.masterPair(k)
		rel.MustAppend(w.row(rel.Schema(), h, m))
	}
	dm, err := buildMaster(rel, sigma, cfg)
	if err != nil {
		return nil, fmt.Errorf("datagen: hosp: %w", err)
	}

	ds := &Dataset{Name: "hosp", Sigma: sigma, Master: dm}
	inSchema := sigma.Schema()
	for i := 0; i < cfg.Tuples; i++ {
		truth := w.truthTuple(inSchema, rng, cfg)
		ds.Truths = append(ds.Truths, truth)
		ds.Inputs = append(ds.Inputs, applyNoise(rng, truth, cfg.NoiseRate, ds.Truths))
	}
	return ds, nil
}

// truthTuple draws a ground-truth HOSP tuple: a master duplicate with
// probability d%, otherwise a partial or fully fresh entity combination.
func (w *hospWorld) truthTuple(schema *relation.Schema, rng *rand.Rand, cfg Config) relation.Tuple {
	switch r := rng.Float64(); {
	case r < cfg.DupRate:
		k := rng.Intn(cfg.MasterSize)
		h, m := w.masterPair(k)
		return w.row(schema, h, m)
	case r < cfg.DupRate+(1-cfg.DupRate)*cfg.PartialRate:
		switch rng.Intn(4) {
		case 0:
			// Known hospital, measure pair absent from the master:
			// hospital fields fixable, Score/sample not.
			h := rng.Intn(w.hospitals)
			m := (h + 1) % w.measures // offset 1 is never a master pair
			return w.row(schema, h, m)
		case 1:
			// Fresh hospital with a known measure: measure fields fixable.
			w.freshHosp++
			h := w.hospitals + w.freshHosp
			m := rng.Intn(w.measures)
			return w.row(schema, h, m)
		default:
			// Re-registered provider: the premises of the id rules (id,
			// provNum) are fresh, but the facility — phone, zip, address,
			// name — is a master hospital. Round one (validating id and a
			// measure attribute) fixes only measure fields; the address
			// cascade phn→zip→{ST, city} and (mCode, ST)→sAvg needs the
			// phone validated in a later round. These tuples drive the
			// rising attribute recall of Fig. 9b.
			h := rng.Intn(w.hospitals)
			m := rng.Intn(w.measures)
			t := w.row(schema, h, m)
			w.freshHosp++
			fresh := w.hospitals + w.freshHosp
			set := func(attr, v string) {
				pos, _ := schema.Pos(attr)
				t[pos] = relation.String(v)
			}
			set("id", fmt.Sprintf("H%07d", perm(fresh, 48271)))
			set("provNum", fmt.Sprintf("P%07d", perm(fresh, 16807)))
			return t
		}
	default:
		// Entirely outside the master data.
		w.freshHosp++
		w.freshMeas++
		h := w.hospitals + w.freshHosp
		m := w.measures + w.freshMeas
		return w.row(schema, h, m)
	}
}

// Dblp generates the DBLP dataset.
func Dblp(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sigma := DblpRules()
	w := newDblpWorld(rng, cfg.MasterSize)

	rel := relation.NewRelation(DblpMasterSchema())
	for p := 0; p < cfg.MasterSize; p++ {
		rel.MustAppend(w.row(rel.Schema(), p))
	}
	dm, err := buildMaster(rel, sigma, cfg)
	if err != nil {
		return nil, fmt.Errorf("datagen: dblp: %w", err)
	}

	ds := &Dataset{Name: "dblp", Sigma: sigma, Master: dm}
	inSchema := sigma.Schema()
	for i := 0; i < cfg.Tuples; i++ {
		truth := w.truthTuple(inSchema, rng, cfg)
		ds.Truths = append(ds.Truths, truth)
		ds.Inputs = append(ds.Inputs, applyNoise(rng, truth, cfg.NoiseRate, ds.Truths))
	}
	return ds, nil
}

// truthTuple draws a ground-truth DBLP tuple.
func (w *dblpWorld) truthTuple(schema *relation.Schema, rng *rand.Rand, cfg Config) relation.Tuple {
	switch r := rng.Float64(); {
	case r < cfg.DupRate:
		return w.row(schema, rng.Intn(w.papers))
	case r < cfg.DupRate+(1-cfg.DupRate)*cfg.PartialRate:
		// A fresh paper (unknown title/pages/venue pairing) by known
		// authors at a known venue: homepages and proceedings fields are
		// fixable through φ1–φ4 and φ6, the φ5/φ7 keys are not in Dm.
		p := w.papers + 1 + rng.Intn(1<<20)
		return w.row(schema, p)
	default:
		// Fresh authors and a fresh venue: nothing is fixable.
		t := w.row(schema, w.papers+1+rng.Intn(1<<20))
		a := w.authors + rng.Intn(1<<20)
		n1, h1 := w.author(a)
		n2, h2 := w.author(a + 1)
		fields := map[string]string{
			"a1": n1, "a2": n2, "hp1": h1, "hp2": h2,
			"btitle":   fmt.Sprintf("Workshop %06d", rng.Intn(1<<20)),
			"crossref": fmt.Sprintf("conf/w%06d", rng.Intn(1<<20)),
		}
		for name, v := range fields {
			pos, _ := schema.Pos(name)
			t[pos] = relation.String(v)
		}
		return t
	}
}

// applyNoise corrupts each attribute independently with probability n%,
// drawing foreign values from previously generated truths (wrong-record
// errors) and character typos from the corrupt model.
func applyNoise(rng *rand.Rand, truth relation.Tuple, noise float64, pool []relation.Tuple) relation.Tuple {
	dirty := truth.Clone()
	for i := range dirty {
		if rng.Float64() >= noise {
			continue
		}
		foreign := relation.Null
		if len(pool) > 0 {
			foreign = pool[rng.Intn(len(pool))][i]
		}
		dirty[i] = Corrupt(rng, dirty[i], foreign)
	}
	return dirty
}
