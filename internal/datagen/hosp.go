package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
	"repro/internal/rule"
)

// The HOSP dataset (§6): the join of the Hospital Compare tables HOSP,
// HOSP_MSR_XWLK and STATE_MSR_AVG, with the paper's 19 attributes. One
// master row is one (hospital, measure) pair carrying the hospital's
// identity and address, the measure's description, the hospital's score
// for the measure, and the state average for the measure.

// hospAttrs is the paper's 19-attribute schema, in the paper's order.
var hospAttrs = []string{
	"zip", "ST", "phn", "mCode", "mName", "sAvg", "hName", "hType",
	"hOwner", "provNum", "city", "emergency", "condition", "Score",
	"sample", "id", "addr1", "addr2", "addr3",
}

// HospSchema returns the input schema R for HOSP.
func HospSchema() *relation.Schema { return relation.StringSchema("hosp", hospAttrs...) }

// HospMasterSchema returns the master schema Rm for HOSP.
func HospMasterSchema() *relation.Schema {
	return relation.StringSchema("hosp_master", hospAttrs...)
}

// HospRulesDSL is the 21-rule set designed for HOSP in §6. The paper
// prints five representative rules (zip→ST, phn→zip, (mCode,ST)→sAvg,
// (id,mCode)→Score, id→hName); the remaining rules complete the same
// functional structure over the joined schema.
const HospRulesDSL = `
# Representative rules printed in the paper (ϕ1–ϕ5).
rule h01: (zip ; zip) -> (ST ; ST) when zip != nil
rule h02: (phn ; phn) -> (zip ; zip) when phn != nil
rule h03: (mCode, ST ; mCode, ST) -> (sAvg ; sAvg)
rule h04: (id, mCode ; id, mCode) -> (Score ; Score)
rule h05: (id ; id) -> (hName ; hName)
# Hospital-level attributes determined by the hospital id.
rule h06: (id ; id) -> (hType ; hType)
rule h07: (id ; id) -> (hOwner ; hOwner)
rule h08: (id ; id) -> (provNum ; provNum)
rule h09: (id ; id) -> (city ; city)
rule h10: (id ; id) -> (emergency ; emergency)
rule h11: (id ; id) -> (addr1 ; addr1)
rule h12: (id ; id) -> (addr2 ; addr2)
rule h13: (id ; id) -> (addr3 ; addr3)
rule h14: (id ; id) -> (phn ; phn)
rule h15: (id ; id) -> (zip ; zip)
# Measure-level attributes determined by the measure code, and back.
rule h16: (mCode ; mCode) -> (mName ; mName)
rule h17: (mCode ; mCode) -> (condition ; condition)
rule h18: (mName ; mName) -> (mCode ; mCode) when mName != nil
# Per-pair sample size, provider-number back-reference, zip-level city.
rule h19: (id, mCode ; id, mCode) -> (sample ; sample)
rule h20: (provNum ; provNum) -> (id ; id) when provNum != nil
rule h21: (zip ; zip) -> (city ; city) when zip != nil
`

// HospRules parses the HOSP rule set.
func HospRules() *rule.Set {
	s, err := rule.ParseRuleSet(HospSchema(), HospMasterSchema(), HospRulesDSL)
	if err != nil {
		panic("datagen: hosp rules: " + err.Error())
	}
	return s
}

// hospWorld holds the entity pools behind a HOSP master relation, so the
// dirty-data generator can fabricate consistent non-master truths.
type hospWorld struct {
	rng       *rand.Rand
	hospitals int
	measures  int
	perHosp   int
	freshHosp int // counter for hospitals outside the master
	freshMeas int
}

const (
	hospMeasures = 40
	hospPerHosp  = 10
)

var (
	hospTypes  = []string{"Acute Care", "Critical Access", "Childrens", "Psychiatric"}
	hospOwners = []string{"Government", "Proprietary", "Voluntary non-profit", "Physician", "Tribal"}
	conditions = []string{"Heart Attack", "Heart Failure", "Pneumonia", "Surgical Care", "Asthma", "Stroke", "Sepsis", "Emergency"}
)

// permPrime scrambles entity numbers into sparse identifier spaces:
// real-world identifiers (provider numbers, zips, phones) are far apart
// in edit distance, unlike sequential counters whose neighbours differ by
// one digit. perm is injective for x < permPrime.
const permPrime = 9999991

func perm(x, mult int) int { return (x*mult + 7) % permPrime }

// hospital-level deterministic fields. Hospitals are identified by an
// integer; everything hangs off it so the master FDs hold by
// construction (master data is consistent, §2).
func (w *hospWorld) hospitalFields(h int) map[string]string {
	state := fmt.Sprintf("S%02d", h%50)
	return map[string]string{
		"id":        fmt.Sprintf("H%07d", perm(h, 48271)),
		"provNum":   fmt.Sprintf("P%07d", perm(h, 16807)),
		"hName":     fmt.Sprintf("General Hospital %d", h),
		"hType":     hospTypes[h%len(hospTypes)],
		"hOwner":    hospOwners[h%len(hospOwners)],
		"zip":       fmt.Sprintf("Z%07d", perm(h, 69621)),
		"city":      fmt.Sprintf("City of %d", h), // city = f(zip): zip is f(h)
		"ST":        state,
		"phn":       fmt.Sprintf("555%07d", perm(h, 39373)),
		"emergency": []string{"Yes", "No"}[h%2],
		"addr1":     fmt.Sprintf("%d Main Street", 100+h%900),
		"addr2":     fmt.Sprintf("Building %d", h%9),
		"addr3":     fmt.Sprintf("County %d", h%97),
	}
}

func (w *hospWorld) measureFields(m int) map[string]string {
	code := (m*2971 + 7) % 9973 // sparse 4-digit measure codes
	return map[string]string{
		"mCode":     fmt.Sprintf("MX-%04d", code),
		"mName":     fmt.Sprintf("Measure %04d: timely care", code),
		"condition": conditions[m%len(conditions)],
	}
}

// pairFields are the per-(hospital, measure) fields; sAvg is functional
// in (mCode, ST).
func (w *hospWorld) pairFields(h, m int) map[string]string {
	state := h % 50
	return map[string]string{
		"Score":  fmt.Sprintf("%d%%", 35+(h*7+m*13)%60),
		"sample": fmt.Sprintf("%d patients", 20+(h*11+m*3)%400),
		"sAvg":   fmt.Sprintf("%d.%d%%", 40+(m*17+state*5)%55, (m+state)%10),
	}
}

// row assembles a full 19-attribute tuple for (hospital h, measure m).
func (w *hospWorld) row(schema *relation.Schema, h, m int) relation.Tuple {
	fields := w.hospitalFields(h)
	for k, v := range w.measureFields(m) {
		fields[k] = v
	}
	for k, v := range w.pairFields(h, m) {
		fields[k] = v
	}
	t := make(relation.Tuple, schema.Arity())
	for i, name := range hospAttrs {
		t[i] = relation.String(fields[name])
	}
	return t
}

// masterPair maps master row index k to its (hospital, measure) pair:
// hospitals carry hospPerHosp consecutive measures each, offset by the
// hospital index so measures spread across the pool.
func (w *hospWorld) masterPair(k int) (h, m int) {
	h = k / w.perHosp
	m = (h + k%w.perHosp*3) % w.measures
	return h, m
}

// hospMasterContains reports whether the (h, m) pair is a master row.
func (w *hospWorld) masterContains(h, m int) bool {
	if h < 0 || h >= w.hospitals {
		return false
	}
	for i := 0; i < w.perHosp; i++ {
		if (h+i*3)%w.measures == m {
			return true
		}
	}
	return false
}

// newHospWorld sizes the pools for the requested master cardinality.
func newHospWorld(rng *rand.Rand, masterSize int) *hospWorld {
	hospitals := (masterSize + hospPerHosp - 1) / hospPerHosp
	if hospitals == 0 {
		hospitals = 1
	}
	return &hospWorld{
		rng:       rng,
		hospitals: hospitals,
		measures:  hospMeasures,
		perHosp:   hospPerHosp,
	}
}
