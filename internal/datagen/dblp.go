package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
	"repro/internal/rule"
)

// The DBLP dataset (§6): inproceedings joined with their proceedings on
// crossref, plus author homepages — the paper's 12 attributes.

// dblpAttrs is the paper's 12-attribute schema, in the paper's order.
var dblpAttrs = []string{
	"ptitle", "a1", "a2", "hp1", "hp2", "btitle",
	"publisher", "isbn", "crossref", "year", "type", "pages",
}

// DblpSchema returns the input schema R for DBLP.
func DblpSchema() *relation.Schema { return relation.StringSchema("dblp", dblpAttrs...) }

// DblpMasterSchema returns the master schema Rm for DBLP.
func DblpMasterSchema() *relation.Schema {
	return relation.StringSchema("dblp_master", dblpAttrs...)
}

// DblpRulesDSL is the paper's 16-rule set for DBLP (§6), written out in
// full: φ1–φ4 link authors to homepages across both author positions,
// φ5 expands over {isbn, publisher, crossref}, φ6 over {btitle, year,
// isbn, publisher} and φ7 over {isbn, publisher, year, btitle, crossref}.
const DblpRulesDSL = `
# φ1–φ4: author ↔ homepage, across both author columns.
rule d01: (a1 ; a1) -> (hp1 ; hp1) when a1 != nil
rule d02: (a2 ; a1) -> (hp2 ; hp1) when a2 != nil
rule d03: (a2 ; a2) -> (hp2 ; hp2) when a2 != nil
rule d04: (a1 ; a2) -> (hp1 ; hp2) when a1 != nil
# φ5: (type, btitle, year) determines the venue fields.
rule d05: (type, btitle, year ; type, btitle, year) -> (isbn ; isbn) when type = "inproceedings"
rule d06: (type, btitle, year ; type, btitle, year) -> (publisher ; publisher) when type = "inproceedings"
rule d07: (type, btitle, year ; type, btitle, year) -> (crossref ; crossref) when type = "inproceedings"
# φ6: (type, crossref) determines the proceedings fields.
rule d08: (type, crossref ; type, crossref) -> (btitle ; btitle) when type = "inproceedings"
rule d09: (type, crossref ; type, crossref) -> (year ; year) when type = "inproceedings"
rule d10: (type, crossref ; type, crossref) -> (isbn ; isbn) when type = "inproceedings"
rule d11: (type, crossref ; type, crossref) -> (publisher ; publisher) when type = "inproceedings"
# φ7: the paper key (type, a1, a2, title, pages) determines the venue.
rule d12: (type, a1, a2, ptitle, pages ; type, a1, a2, ptitle, pages) -> (isbn ; isbn) when type = "inproceedings"
rule d13: (type, a1, a2, ptitle, pages ; type, a1, a2, ptitle, pages) -> (publisher ; publisher) when type = "inproceedings"
rule d14: (type, a1, a2, ptitle, pages ; type, a1, a2, ptitle, pages) -> (year ; year) when type = "inproceedings"
rule d15: (type, a1, a2, ptitle, pages ; type, a1, a2, ptitle, pages) -> (btitle ; btitle) when type = "inproceedings"
rule d16: (type, a1, a2, ptitle, pages ; type, a1, a2, ptitle, pages) -> (crossref ; crossref) when type = "inproceedings"
`

// DblpRules parses the DBLP rule set.
func DblpRules() *rule.Set {
	s, err := rule.ParseRuleSet(DblpSchema(), DblpMasterSchema(), DblpRulesDSL)
	if err != nil {
		panic("datagen: dblp rules: " + err.Error())
	}
	return s
}

var publishers = []string{
	"Springer", "ACM", "IEEE CS", "Morgan Kaufmann",
	"VLDB Endowment", "AAAI Press", "USENIX", "IOS Press",
}

// dblpWorld holds the entity pools behind a DBLP master relation.
type dblpWorld struct {
	rng     *rand.Rand
	papers  int
	authors int
	venues  int
}

// author i and their homepage; homepages are functional in the author.
// Identifiers are permuted into a sparse space (see datagen/hosp.go).
func (w *dblpWorld) author(i int) (name, hp string) {
	n := (i*48271 + 7) % 9999991
	return fmt.Sprintf("Author %07d", n), fmt.Sprintf("http://pages.example/%07d", n)
}

// venue fields for venue v; (btitle, year) and crossref both identify it.
func (w *dblpWorld) venue(v int) map[string]string {
	year := 1985 + v%38
	series := v % 60
	return map[string]string{
		"btitle":    fmt.Sprintf("Intl. Conference %02d", series),
		"year":      fmt.Sprintf("%d", year),
		"publisher": publishers[series%len(publishers)],
		"isbn":      fmt.Sprintf("978-%02d-%04d-%d", series, year, v%10),
		"crossref":  fmt.Sprintf("conf/c%02d/%d", series, year),
	}
}

// paperAuthors picks the two authors of paper p deterministically; the
// pools overlap so an author appears sometimes first, sometimes second —
// which is what gives rules d02/d04 their support.
func (w *dblpWorld) paperAuthors(p int) (int, int) {
	a1 := (p * 7) % w.authors
	a2 := (p*13 + 1) % w.authors
	if a2 == a1 {
		a2 = (a2 + 1) % w.authors
	}
	return a1, a2
}

// row assembles the master tuple for paper p.
func (w *dblpWorld) row(schema *relation.Schema, p int) relation.Tuple {
	a1, a2 := w.paperAuthors(p)
	n1, h1 := w.author(a1)
	n2, h2 := w.author(a2)
	venue := w.venue(p % w.venues)
	fields := map[string]string{
		"ptitle":    fmt.Sprintf("On the Quality of Record %07d", (p*65497+7)%9999991),
		"a1":        n1,
		"a2":        n2,
		"hp1":       h1,
		"hp2":       h2,
		"type":      "inproceedings",
		"pages":     fmt.Sprintf("%d-%d", 10+p%400, 10+p%400+12),
		"btitle":    venue["btitle"],
		"year":      venue["year"],
		"publisher": venue["publisher"],
		"isbn":      venue["isbn"],
		"crossref":  venue["crossref"],
	}
	t := make(relation.Tuple, schema.Arity())
	for i, name := range dblpAttrs {
		t[i] = relation.String(fields[name])
	}
	return t
}

// venueCount keeps (btitle, year) → venue functional: series (0..59) ×
// years must not collide. venue v and v' share (btitle, year) iff
// v ≡ v' mod lcm(60, 38)... sizing venues below both periods avoids it.
const dblpVenues = 500

func newDblpWorld(rng *rand.Rand, masterSize int) *dblpWorld {
	authors := masterSize/2 + 10
	return &dblpWorld{rng: rng, papers: masterSize, authors: authors, venues: dblpVenues}
}
