package datagen_test

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/fix"
	"repro/internal/monitor"
	"repro/internal/relation"
	"repro/internal/rule"
)

// countRoundsHistogram fixes every tuple and returns rounds → count.
func countRoundsHistogram(t *testing.T, ds *datagen.Dataset) map[int]int {
	t.Helper()
	m, err := monitor.New(ds.Sigma, ds.Master, monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hist := map[int]int{}
	for i := range ds.Inputs {
		res, err := m.Fix(ds.Inputs[i], monitor.SimulatedUser{Truth: ds.Truths[i]})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("tuple %d did not complete", i)
		}
		if !res.Tuple.Equal(ds.Truths[i]) {
			t.Fatalf("tuple %d fixed to %v, truth %v", i, res.Tuple, ds.Truths[i])
		}
		hist[res.Rounds]++
	}
	return hist
}

// TestHospRoundBounds: every hosp tuple completes within 4 rounds (the
// paper's bound) and the framework never miscorrects (checked inside the
// histogram helper: the fixed tuple always equals the truth).
func TestHospRoundBounds(t *testing.T) {
	ds, err := datagen.Hosp(datagen.Config{Seed: 9, MasterSize: 500, Tuples: 150, DupRate: 0.3, NoiseRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	hist := countRoundsHistogram(t, ds)
	for rounds := range hist {
		if rounds > 4 {
			t.Fatalf("hosp tuple needed %d rounds (> 4): %v", rounds, hist)
		}
	}
	if hist[1] == 0 || hist[2] == 0 {
		t.Fatalf("expected both 1-round and 2-round tuples: %v", hist)
	}
}

// TestDblpRoundBounds: every dblp tuple completes within 3 rounds.
func TestDblpRoundBounds(t *testing.T) {
	ds, err := datagen.Dblp(datagen.Config{Seed: 9, MasterSize: 500, Tuples: 150, DupRate: 0.3, NoiseRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	hist := countRoundsHistogram(t, ds)
	for rounds := range hist {
		if rounds > 3 {
			t.Fatalf("dblp tuple needed %d rounds (> 3): %v", rounds, hist)
		}
	}
}

// TestDblpPartialTuplesPartiallyFixable: a dblp partial truth (fresh
// paper, known authors and venue) lets the rules fix homepages via the
// author columns and venue fields via crossref, but not through the φ7
// paper key.
func TestDblpPartialTuplesPartiallyFixable(t *testing.T) {
	ds, err := datagen.Dblp(datagen.Config{Seed: 4, MasterSize: 300, Tuples: 60, DupRate: 0, NoiseRate: 0, PartialRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := ds.Sigma.Schema()
	g := rule.NewDepGraph(ds.Sigma)

	partialFixed := 0
	for _, truth := range ds.Truths {
		// Validate the author and venue-key columns with truth values and
		// see what cascades.
		tup := truth.Clone()
		tup[r.MustPos("hp1")] = relation.Null
		tup[r.MustPos("hp2")] = relation.Null
		zSet := relation.NewAttrSet(r.MustPosList("a1", "a2", "type", "crossref")...)
		fixed, err := fix.TransFix(g, ds.Master, tup, &zSet)
		if err != nil {
			t.Fatal(err)
		}
		if len(fixed) > 0 {
			partialFixed++
			if !tup[r.MustPos("hp1")].Equal(truth[r.MustPos("hp1")]) {
				t.Fatalf("hp1 enrichment wrong: %v vs %v", tup[r.MustPos("hp1")], truth[r.MustPos("hp1")])
			}
		}
	}
	if partialFixed == 0 {
		t.Fatal("partial dblp tuples must be partially fixable")
	}
}

// TestHospPartialTypeC: re-registered providers carry master facility
// data under fresh ids — validating the phone must recover the address
// cascade while the id probes stay dead.
func TestHospPartialTypeC(t *testing.T) {
	ds, err := datagen.Hosp(datagen.Config{Seed: 12, MasterSize: 400, Tuples: 200, DupRate: 0, NoiseRate: 0, PartialRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := ds.Sigma.Schema()
	g := rule.NewDepGraph(ds.Sigma)

	sawTypeC := false
	for _, truth := range ds.Truths {
		// Type-C tuples: id absent from master but phone present.
		if len(ds.Master.Lookup([]int{r.MustPos("id")}, []relation.Value{truth[r.MustPos("id")]})) > 0 {
			continue
		}
		if len(ds.Master.Lookup([]int{r.MustPos("phn")}, []relation.Value{truth[r.MustPos("phn")]})) == 0 {
			continue
		}
		sawTypeC = true
		tup := truth.Clone()
		tup[r.MustPos("ST")] = relation.String("WRONG")
		zSet := relation.NewAttrSet(r.MustPosList("phn")...)
		if _, err := fix.TransFix(g, ds.Master, tup, &zSet); err != nil {
			t.Fatal(err)
		}
		if !tup[r.MustPos("ST")].Equal(truth[r.MustPos("ST")]) {
			t.Fatalf("phn cascade failed to fix ST: %v", tup[r.MustPos("ST")])
		}
	}
	if !sawTypeC {
		t.Fatal("generator produced no type-C partials")
	}
}

// TestCorruptDeterministic: the same rng state yields the same noise.
func TestCorruptDeterministic(t *testing.T) {
	mk := func() relation.Value {
		rng := newRand(77)
		return datagen.Corrupt(rng, relation.String("Hello World"), relation.String("foreign"))
	}
	if !mk().Equal(mk()) {
		t.Fatal("Corrupt must be deterministic for a fixed rng state")
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
