package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{0, 10, runtime.GOMAXPROCS(0)}, // non-positive selects GOMAXPROCS
		{-3, 10, runtime.GOMAXPROCS(0)},
		{4, 10, 4}, // requested count honored
		{8, 3, 3},  // never more workers than jobs
		{8, -1, 8}, // n < 0 means unbounded
		{5, 0, 1},  // never below one
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.workers, c.n); got != c.want {
			t.Errorf("Clamp(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// TestMapDeterministicOrdering: results land at their input index whatever
// the worker count and scheduling, so a parallel map is byte-identical to
// the sequential loop.
func TestMapDeterministicOrdering(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 2, 7, 16} {
		out, err := Map(n, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(50, 4, func(i int) (int, error) {
		if i%10 == 3 {
			return 0, fmt.Errorf("job %d: %w", i, boom)
		}
		return i, nil
	})
	if out != nil || !errors.Is(err, boom) {
		t.Fatalf("Map = (%v, %v), want (nil, boom)", out, err)
	}
}

// TestMapWorkersPerWorkerState: newWorker runs once per worker goroutine,
// each worker gets private state, and every job runs exactly once across
// the pool (which worker takes which job is scheduling-dependent).
func TestMapWorkersPerWorkerState(t *testing.T) {
	const workers = 4
	const jobs = 64
	var mu sync.Mutex
	var states []*int
	_, err := MapWorkers(jobs, workers, func() func(i int) (int, error) {
		private := new(int)
		mu.Lock()
		states = append(states, private)
		mu.Unlock()
		return func(i int) (int, error) {
			*private++ // unsynchronized on purpose: private to this worker
			return i, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != workers {
		t.Fatalf("newWorker ran %d times, want %d", len(states), workers)
	}
	total := 0
	for _, s := range states {
		total += *s
	}
	if total != jobs {
		t.Fatalf("workers processed %d jobs total, want %d", total, jobs)
	}
}

// TestMapPanicPropagation: a panicking job must not kill the process from
// a worker goroutine; it resurfaces on the caller as a *WorkerPanic
// carrying the job index and original value, after the remaining jobs ran.
func TestMapPanicPropagation(t *testing.T) {
	var completed atomic.Int32
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate to the caller")
		}
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *WorkerPanic", r, r)
		}
		if wp.Index != 7 || wp.Value != "kaboom" {
			t.Fatalf("WorkerPanic{Index: %d, Value: %v}, want {7, kaboom}", wp.Index, wp.Value)
		}
		if len(wp.Stack) == 0 {
			t.Fatal("worker stack not captured")
		}
		// Other jobs were not abandoned when the panicking one died.
		if got := completed.Load(); got != 49 {
			t.Fatalf("%d non-panicking jobs completed, want 49", got)
		}
	}()
	Map(50, 4, func(i int) (int, error) {
		if i == 7 {
			panic("kaboom")
		}
		completed.Add(1)
		return i, nil
	})
	t.Fatal("unreachable: Map must re-panic")
}

// TestMapPanicLowestIndexWins: with several panicking jobs the re-raised
// one is deterministic (lowest index), so flaky scheduling cannot flip
// which failure a test or log pins.
func TestMapPanicLowestIndexWins(t *testing.T) {
	defer func() {
		wp, ok := recover().(*WorkerPanic)
		if !ok || wp.Index != 3 {
			t.Fatalf("recovered %+v, want Index 3", wp)
		}
	}()
	Map(40, 8, func(i int) (int, error) {
		if i%9 == 3 { // panics at 3, 12, 21, 30, 39
			panic(i)
		}
		return i, nil
	})
	t.Fatal("unreachable: Map must re-panic")
}

// TestMapWorkersConstructorPanic: a panicking newWorker is reported as
// Index -1 and the pool still drains (no deadlocked feeder).
func TestMapWorkersConstructorPanic(t *testing.T) {
	defer func() {
		wp, ok := recover().(*WorkerPanic)
		if !ok || wp.Index != -1 || wp.Value != "ctor" {
			t.Fatalf("recovered %+v, want {Index: -1, Value: ctor}", wp)
		}
	}()
	MapWorkers(20, 1, func() func(i int) (int, error) {
		panic("ctor")
	})
	t.Fatal("unreachable: MapWorkers must re-panic")
}

func TestMapZeroJobs(t *testing.T) {
	out, err := Map(0, 4, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(0) = (%v, %v)", out, err)
	}
}

// TestMapCtxCancellation: a cancelled context stops dispatch, the call
// returns ctx.Err(), and jobs dispatched after the cancellation never
// ran.
func TestMapCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	_, err := MapCtx(ctx, 1000, 2, func(i int) (int, error) {
		if ran.Add(1) == 4 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}
}

// TestMapCtxJobErrorWins: a job error reported before cancellation takes
// precedence over ctx.Err() after the drain.
func TestMapCtxJobErrorWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	_, err := MapCtx(ctx, 8, 2, func(i int) (int, error) {
		if i == 0 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the job error", err)
	}
}

// TestMapCtxBackground: with a background context MapCtx behaves exactly
// like Map — all jobs run, results aligned.
func TestMapCtxBackground(t *testing.T) {
	out, err := MapCtx(context.Background(), 50, 4, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
