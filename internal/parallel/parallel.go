// Package parallel provides the bounded worker-pool idiom shared by the
// experiment sweeps (internal/experiments), the batch fixing pipeline
// (internal/monitor) and the public batch repair API (pkg/certainfix):
// results aligned with input indexes, the first error winning after all
// workers drain.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// WorkerPanic wraps a panic recovered on a pool worker so it can be
// re-raised on the calling goroutine instead of crashing the process from
// a goroutine the caller never sees. Index is the job that panicked (-1
// when a newWorker constructor panicked), Value the original panic value,
// Stack the worker-side stack at recovery time.
type WorkerPanic struct {
	Index int
	Value any
	Stack []byte
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("parallel: job %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// Clamp bounds a requested worker count: non-positive selects GOMAXPROCS,
// and the result never exceeds n jobs (n < 0 means unbounded) nor drops
// below 1.
func Clamp(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n >= 0 && workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map computes fn over the indexes [0, n) on a bounded worker pool,
// preserving result order. The first error wins and is returned after all
// workers drain.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapWorkers(n, workers, func() func(i int) (T, error) { return fn })
}

// MapCtx is Map with cancellation: once ctx is done, no further jobs are
// dispatched (in-flight jobs finish — fn is responsible for observing ctx
// itself if jobs are long), and after the pool drains ctx's error is
// returned when no job error preceded it.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapWorkersCtx(ctx, n, workers, func() func(i int) (T, error) { return fn })
}

// MapWorkers is Map with per-worker state: newWorker runs once on each
// worker goroutine and returns the job function that worker uses, so
// workers can pin private scratch (e.g. a per-worker deriver) without
// synchronization.
//
// A panic in a job (or in newWorker) is recovered on the worker, the
// remaining jobs still run on the surviving workers, and after the pool
// drains the panic is re-raised on the calling goroutine as a
// *WorkerPanic — deterministically the lowest-index one when several jobs
// panicked. Without the recovery a worker-goroutine panic would kill the
// whole process with a stack the caller cannot defend against.
func MapWorkers[T any](n, workers int, newWorker func() func(i int) (T, error)) ([]T, error) {
	return MapWorkersCtx(context.Background(), n, workers, newWorker)
}

// MapWorkersCtx is MapWorkers with the cancellation semantics of MapCtx.
// Error precedence after the drain: worker panics re-raise first, then
// the first job error, then ctx.Err().
func MapWorkersCtx[T any](ctx context.Context, n, workers int, newWorker func() func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	pans := make([]*WorkerPanic, n)
	var initPanic *WorkerPanic
	var initOnce sync.Once
	workers = Clamp(workers, n)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn, ok := safeNewWorker(newWorker, &initOnce, &initPanic)
			for i := range jobs {
				if !ok {
					continue // constructor panicked: drain so the feeder never blocks
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							pans[i] = &WorkerPanic{Index: i, Value: r, Stack: debug.Stack()}
						}
					}()
					out[i], errs[i] = fn(i)
				}()
			}
		}()
	}
	done := ctx.Done()
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-done:
			break feed // cancelled: stop dispatching, let in-flight jobs finish
		}
	}
	close(jobs)
	wg.Wait()
	if initPanic != nil {
		panic(initPanic)
	}
	for _, p := range pans {
		if p != nil {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// safeNewWorker runs a worker constructor under recovery; ok is false when
// it panicked (the first such panic is recorded).
func safeNewWorker[T any](newWorker func() func(i int) (T, error), once *sync.Once, slot **WorkerPanic) (fn func(i int) (T, error), ok bool) {
	defer func() {
		if r := recover(); r != nil {
			once.Do(func() { *slot = &WorkerPanic{Index: -1, Value: r, Stack: debug.Stack()} })
		}
	}()
	return newWorker(), true
}
