// Package parallel provides the bounded worker-pool idiom shared by the
// experiment sweeps (internal/experiments), the batch fixing pipeline
// (internal/monitor) and the public batch repair API (pkg/certainfix):
// results aligned with input indexes, the first error winning after all
// workers drain.
package parallel

import (
	"runtime"
	"sync"
)

// Clamp bounds a requested worker count: non-positive selects GOMAXPROCS,
// and the result never exceeds n jobs (n < 0 means unbounded) nor drops
// below 1.
func Clamp(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n >= 0 && workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map computes fn over the indexes [0, n) on a bounded worker pool,
// preserving result order. The first error wins and is returned after all
// workers drain.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapWorkers(n, workers, func() func(i int) (T, error) { return fn })
}

// MapWorkers is Map with per-worker state: newWorker runs once on each
// worker goroutine and returns the job function that worker uses, so
// workers can pin private scratch (e.g. a per-worker deriver) without
// synchronization.
func MapWorkers[T any](n, workers int, newWorker func() func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	workers = Clamp(workers, n)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn := newWorker()
			for i := range jobs {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
