package relation

import (
	"testing"
)

func TestSymbolsDenseIDs(t *testing.T) {
	s := NewSymbols()
	a := s.Intern(String("a"))
	b := s.Intern(String("b"))
	n := s.Intern(Null)
	i := s.Intern(Int(7))
	if a != 0 || b != 1 || n != 2 || i != 3 {
		t.Fatalf("ids not dense first-seen: %d %d %d %d", a, b, n, i)
	}
	if got := s.Intern(String("a")); got != a {
		t.Fatalf("re-intern changed id: %d", got)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if id, ok := s.ID(String("b")); !ok || id != b {
		t.Fatalf("ID(b) = %d, %v", id, ok)
	}
	if _, ok := s.ID(String("missing")); ok {
		t.Fatal("ID must miss for uninterned value")
	}
}

func TestSymbolsDistinguishKinds(t *testing.T) {
	// String("1") and Int(1) are different values and must get distinct ids.
	s := NewSymbols()
	a := s.Intern(String("1"))
	b := s.Intern(Int(1))
	if a == b {
		t.Fatal("String(\"1\") and Int(1) interned to the same id")
	}
}

func TestHasherAgreesAcrossTupleAndValues(t *testing.T) {
	s := NewSymbols()
	h := NewHasher(s)
	tup := TupleOf(String("x"), Int(3), Null, String("y"))
	pos := []int{0, 1, 3}
	built := h.HashInterning(tup, pos)

	probe, ok := h.HashTuple(tup, pos)
	if !ok || probe != built {
		t.Fatalf("HashTuple = %x, %v; want %x", probe, ok, built)
	}
	vals, ok2 := h.HashValues([]Value{String("x"), Int(3), String("y")})
	if !ok2 || vals != built {
		t.Fatalf("HashValues = %x, %v; want %x", vals, ok2, built)
	}
}

func TestHasherMissesUninterned(t *testing.T) {
	s := NewSymbols()
	h := NewHasher(s)
	h.HashInterning(TupleOf(String("a")), []int{0})
	if _, ok := h.HashTuple(TupleOf(String("zz")), []int{0}); ok {
		t.Fatal("hash of uninterned value must report a miss")
	}
	if _, ok := h.HashValues([]Value{Int(42)}); ok {
		t.Fatal("HashValues of uninterned value must report a miss")
	}
}

func TestHasherOrderAndKindSensitivity(t *testing.T) {
	s := NewSymbols()
	h := NewHasher(s)
	ab := TupleOf(String("a"), String("b"))
	ba := TupleOf(String("b"), String("a"))
	h.HashInterning(ab, []int{0, 1})
	h.HashInterning(ba, []int{0, 1})
	x, _ := h.HashTuple(ab, []int{0, 1})
	y, _ := h.HashTuple(ba, []int{0, 1})
	if x == y {
		t.Fatal("projection hash must be order-sensitive")
	}

	s1 := TupleOf(String("1"))
	i1 := TupleOf(Int(1))
	h.HashInterning(s1, []int{0})
	h.HashInterning(i1, []int{0})
	sv, _ := h.HashTuple(s1, []int{0})
	iv, _ := h.HashTuple(i1, []int{0})
	if sv == iv {
		t.Fatal("projection hash must be kind-sensitive")
	}
}

func TestHashTupleZeroAlloc(t *testing.T) {
	s := NewSymbols()
	h := NewHasher(s)
	tup := TupleOf(String("edinburgh"), String("EH7 4AH"), Int(44))
	pos := []int{0, 1, 2}
	h.HashInterning(tup, pos)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := h.HashTuple(tup, pos); !ok {
			t.Fatal("must hit")
		}
	})
	if allocs != 0 {
		t.Fatalf("HashTuple allocates %.1f objects per probe; want 0", allocs)
	}
}
