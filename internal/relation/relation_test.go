package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestRelationAppendAndAccess(t *testing.T) {
	s := StringSchema("R", "A", "B")
	r := NewRelation(s)
	if err := r.Append(StringTuple("1", "2"), StringTuple("3", "4")); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Tuple(1)[0].Str() != "3" {
		t.Fatalf("unexpected relation state: %v", r.Tuples())
	}
	if r.Schema() != s {
		t.Fatal("Schema() should return the construction schema")
	}
}

func TestRelationAppendArityCheck(t *testing.T) {
	r := NewRelation(StringSchema("R", "A", "B"))
	if err := r.Append(StringTuple("only-one")); err == nil {
		t.Fatal("want arity error")
	}
}

func TestRelationCloneDeep(t *testing.T) {
	r := NewRelation(StringSchema("R", "A"))
	r.MustAppend(StringTuple("x"))
	c := r.Clone()
	c.Tuple(0)[0] = String("y")
	if r.Tuple(0)[0].Str() != "x" {
		t.Fatal("Clone must deep-copy tuples")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := MustSchema("mix",
		Attribute{Name: "name", Type: TypeString},
		Attribute{Name: "score", Type: TypeInt},
	)
	r := NewRelation(s)
	r.MustAppend(
		TupleOf(String("alpha, with comma"), Int(10)),
		TupleOf(String(`quoted "beta"`), Int(-3)),
		TupleOf(Null, Null),
	)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip length %d != %d", back.Len(), r.Len())
	}
	for i := range r.Tuples() {
		if !back.Tuple(i).Equal(r.Tuple(i)) {
			t.Errorf("row %d: got %v want %v", i, back.Tuple(i), r.Tuple(i))
		}
	}
}

func TestReadCSVHeaderMismatch(t *testing.T) {
	s := StringSchema("R", "A", "B")
	_, err := ReadCSV(s, strings.NewReader("A,C\n1,2\n"))
	if err == nil || !strings.Contains(err.Error(), "header mismatch") {
		t.Fatalf("want header mismatch, got %v", err)
	}
}

func TestReadCSVBadInt(t *testing.T) {
	s := MustSchema("R", Attribute{Name: "N", Type: TypeInt})
	_, err := ReadCSV(s, strings.NewReader("N\nxyz\n"))
	if err == nil {
		t.Fatal("want int decode error")
	}
}
