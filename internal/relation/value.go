// Package relation provides the relational substrate used throughout the
// repository: typed scalar values, schemas, tuples and in-memory relations,
// together with CSV import/export.
//
// The paper ("Towards Certain Fixes with Editing Rules and Master Data",
// Fan et al., VLDB 2010) defines editing rules over a pair of relation
// schemas (R, Rm). This package implements those schemas and their
// instances; every higher layer (patterns, rules, regions, the CertainFix
// framework) builds on it.
package relation

import (
	"fmt"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds. Null represents a missing attribute value
// (e.g. the empty str/zip cells of tuple t2 in Fig. 1a of the paper).
const (
	KindNull Kind = iota
	KindString
	KindInt
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable typed scalar. The zero Value is Null. Value is a
// comparable struct so it can be used directly as a map key, which the
// master-data indexes rely on.
type Value struct {
	kind Kind
	str  string
	num  int64
}

// Null is the missing value.
var Null = Value{}

// String constructs a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int constructs an integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the missing value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.str }

// Int64 returns the integer payload. It is only meaningful for KindInt.
func (v Value) Int64() int64 { return v.num }

// Equal reports whether two values are identical (same kind and payload).
// Null equals only Null.
func (v Value) Equal(w Value) bool { return v == w }

// Less defines a total order over values: Null < String < Int, integers by
// numeric order, strings lexicographically. The order is used for
// deterministic iteration (sorted tableaus, canonical state encodings).
func (v Value) Less(w Value) bool {
	if v.kind != w.kind {
		return v.kind < w.kind
	}
	switch v.kind {
	case KindInt:
		return v.num < w.num
	case KindString:
		return v.str < w.str
	default:
		return false
	}
}

// Compare returns -1, 0 or +1 per the order defined by Less.
func (v Value) Compare(w Value) int {
	if v.Equal(w) {
		return 0
	}
	if v.Less(w) {
		return -1
	}
	return 1
}

// String renders the value for display. Null renders as "⊥".
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "⊥"
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	default:
		return v.str
	}
}

// Encode renders the value in a form that round-trips through Decode and is
// unambiguous across kinds (used for CSV I/O and canonical state keys).
func (v Value) Encode() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	default:
		return v.str
	}
}

// DecodeValue parses an encoded cell into a value of the requested type.
// Empty cells decode to Null. Integer cells must parse in base 10.
func DecodeValue(cell string, t Type) (Value, error) {
	if cell == "" {
		return Null, nil
	}
	switch t {
	case TypeInt:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("relation: decode %q as int: %w", cell, err)
		}
		return Int(n), nil
	case TypeString:
		return String(cell), nil
	default:
		return Null, fmt.Errorf("relation: decode: unknown type %v", t)
	}
}
