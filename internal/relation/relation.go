package relation

import (
	"encoding/csv"
	"fmt"
	"io"
)

// Relation is an in-memory instance of a schema: an ordered bag of tuples.
type Relation struct {
	schema *Schema
	tuples []Tuple
}

// NewRelation creates an empty relation over the schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{schema: schema}
}

// FromTuples wraps an already-built tuple slice into a relation after
// checking arity. The relation takes ownership of the slice; its capacity
// is clipped to its length so a later Append can never write into backing
// storage shared with the caller (or with a sibling snapshot — see the
// copy-on-write master data in internal/master, the primary consumer).
func FromTuples(schema *Schema, tuples []Tuple) (*Relation, error) {
	for _, t := range tuples {
		if len(t) != schema.Arity() {
			return nil, fmt.Errorf("relation: %s expects arity %d, got tuple of arity %d",
				schema.Name(), schema.Arity(), len(t))
		}
	}
	return &Relation{schema: schema, tuples: tuples[:len(tuples):len(tuples)]}, nil
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns the i-th tuple (not a copy).
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Tuples returns the backing tuple slice (not a copy); callers must not
// mutate unless they own the relation.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Append adds tuples after checking arity.
func (r *Relation) Append(ts ...Tuple) error {
	for _, t := range ts {
		if len(t) != r.schema.Arity() {
			return fmt.Errorf("relation: %s expects arity %d, got tuple of arity %d",
				r.schema.Name(), r.schema.Arity(), len(t))
		}
		r.tuples = append(r.tuples, t)
	}
	return nil
}

// MustAppend is Append that panics on arity mismatch; for fixtures.
func (r *Relation) MustAppend(ts ...Tuple) {
	if err := r.Append(ts...); err != nil {
		panic(err)
	}
}

// Clone deep-copies the relation (schema shared, tuples copied).
func (r *Relation) Clone() *Relation {
	c := &Relation{schema: r.schema, tuples: make([]Tuple, len(r.tuples))}
	for i, t := range r.tuples {
		c.tuples[i] = t.Clone()
	}
	return c
}

// WriteCSV writes the relation with a header row of attribute names.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.schema.AttrNames()); err != nil {
		return fmt.Errorf("relation: write csv header: %w", err)
	}
	row := make([]string, r.schema.Arity())
	for _, t := range r.tuples {
		for i, v := range t {
			row[i] = v.Encode()
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("relation: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a relation in the format produced by WriteCSV. The header
// must list exactly the schema's attributes in schema order.
func ReadCSV(schema *Schema, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = schema.Arity()
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv header: %w", err)
	}
	want := schema.AttrNames()
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("relation: csv header mismatch at column %d: got %q, want %q", i, header[i], want[i])
		}
	}
	rel := NewRelation(schema)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read csv row: %w", err)
		}
		t := make(Tuple, schema.Arity())
		for i, cell := range rec {
			v, err := DecodeValue(cell, schema.Attr(i).Type)
			if err != nil {
				return nil, fmt.Errorf("relation: row %d column %s: %w", rel.Len()+1, schema.Attr(i).Name, err)
			}
			t[i] = v
		}
		rel.tuples = append(rel.tuples, t)
	}
	return rel, nil
}
