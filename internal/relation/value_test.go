package relation

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	s := String("Edi")
	if s.Kind() != KindString || s.Str() != "Edi" || s.IsNull() {
		t.Fatalf("String: got kind=%v str=%q null=%v", s.Kind(), s.Str(), s.IsNull())
	}
	i := Int(131)
	if i.Kind() != KindInt || i.Int64() != 131 || i.IsNull() {
		t.Fatalf("Int: got kind=%v num=%d null=%v", i.Kind(), i.Int64(), i.IsNull())
	}
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatalf("Null: got kind=%v", Null.Kind())
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Null, Null, true},
		{String("1"), Int(1), false},
		{String(""), Null, false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueOrderTotal(t *testing.T) {
	vals := []Value{Null, String(""), String("a"), String("b"), Int(-3), Int(0), Int(7)}
	for i, a := range vals {
		for j, b := range vals {
			switch {
			case i == j:
				if a.Compare(b) != 0 {
					t.Errorf("Compare(%v,%v) != 0", a, b)
				}
			case i < j:
				if !a.Less(b) || a.Compare(b) != -1 {
					t.Errorf("want %v < %v", a, b)
				}
			default:
				if a.Less(b) || a.Compare(b) != 1 {
					t.Errorf("want %v > %v", a, b)
				}
			}
		}
	}
}

func TestValueOrderAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		if a == b {
			return x.Compare(y) == 0
		}
		return x.Less(y) != y.Less(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(a, b string) bool {
		x, y := String(a), String(b)
		if a == b {
			return x.Compare(y) == 0
		}
		return x.Less(y) != y.Less(x)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueAsMapKey(t *testing.T) {
	m := map[Value]int{}
	m[String("x")] = 1
	m[Int(5)] = 2
	m[Null] = 3
	if m[String("x")] != 1 || m[Int(5)] != 2 || m[Null] != 3 {
		t.Fatalf("map lookups failed: %v", m)
	}
	if _, ok := m[String("5")]; ok {
		t.Fatal("String(5) must not collide with Int(5)")
	}
}

func TestDecodeValueRoundTrip(t *testing.T) {
	cases := []struct {
		v Value
		t Type
	}{
		{String("hello"), TypeString},
		{Int(42), TypeInt},
		{Int(-9), TypeInt},
		{Null, TypeString},
		{Null, TypeInt},
	}
	for _, c := range cases {
		got, err := DecodeValue(c.v.Encode(), c.t)
		if err != nil {
			t.Fatalf("DecodeValue(%q): %v", c.v.Encode(), err)
		}
		if !got.Equal(c.v) {
			t.Errorf("round trip %v: got %v", c.v, got)
		}
	}
}

func TestDecodeValueErrors(t *testing.T) {
	if _, err := DecodeValue("not-a-number", TypeInt); err == nil {
		t.Fatal("expected error decoding non-numeric int cell")
	}
}

func TestValueStringRendering(t *testing.T) {
	if Null.String() != "⊥" {
		t.Errorf("Null renders as %q", Null.String())
	}
	if Int(12).String() != "12" {
		t.Errorf("Int renders as %q", Int(12).String())
	}
	if String("Ldn").String() != "Ldn" {
		t.Errorf("String renders as %q", String("Ldn").String())
	}
	if KindNull.String() != "null" || KindString.String() != "string" || KindInt.String() != "int" {
		t.Error("Kind.String mismatch")
	}
	if TypeString.String() != "string" || TypeInt.String() != "int" {
		t.Error("Type.String mismatch")
	}
}
