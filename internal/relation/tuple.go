package relation

import (
	"fmt"
	"strings"
)

// Tuple is a flat slice of values positionally aligned with a schema.
// Tuples are mutable by design: the fix semantics of the paper updates
// t[B] := tm[Bm] in place on working copies.
type Tuple []Value

// NewTuple allocates an all-Null tuple of the given arity.
func NewTuple(arity int) Tuple { return make(Tuple, arity) }

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Equal reports componentwise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// EqualOn reports whether t and u agree on the given positions.
func (t Tuple) EqualOn(positions []int, u Tuple) bool {
	for _, p := range positions {
		if !t[p].Equal(u[p]) {
			return false
		}
	}
	return true
}

// Project returns the values of t at the given positions, in order.
func (t Tuple) Project(positions []int) []Value {
	out := make([]Value, len(positions))
	for i, p := range positions {
		out[i] = t[p]
	}
	return out
}

// ProjectMatches reports whether t's projection on aPos equals u's
// projection on bPos; the two position lists must have equal length.
// This is the t[X] = tm[Xm] test at the heart of rule application.
func (t Tuple) ProjectMatches(aPos []int, u Tuple, bPos []int) bool {
	for i := range aPos {
		if !t[aPos[i]].Equal(u[bPos[i]]) {
			return false
		}
	}
	return true
}

// Key encodes the projection of t on positions into a string usable as a
// map key. The encoding separates cells with an unlikely delimiter and
// escapes the delimiter inside cells, so distinct projections get distinct
// keys.
func (t Tuple) Key(positions []int) string {
	var b strings.Builder
	for i, p := range positions {
		if i > 0 {
			b.WriteByte(0x1f) // unit separator
		}
		v := t[p]
		b.WriteByte(byte('0' + v.kind))
		switch v.kind {
		case KindInt:
			fmt.Fprintf(&b, "%d", v.num)
		case KindString:
			if strings.IndexByte(v.str, 0x1f) >= 0 {
				b.WriteString(strings.ReplaceAll(v.str, "\x1f", "\x1f\x1f"))
			} else {
				b.WriteString(v.str)
			}
		}
	}
	return b.String()
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// TupleOf builds a tuple from ordered values.
func TupleOf(values ...Value) Tuple { return Tuple(values) }

// StringTuple builds a tuple of string values; empty strings become Null.
// Convenience for fixtures mirroring the paper's examples (where empty
// cells denote missing values).
func StringTuple(cells ...string) Tuple {
	t := make(Tuple, len(cells))
	for i, c := range cells {
		if c == "" {
			t[i] = Null
		} else {
			t[i] = String(c)
		}
	}
	return t
}
