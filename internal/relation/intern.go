package relation

// This file implements the allocation-free probe substrate: a value-interning
// symbol table assigning every distinct Value a dense uint32 id, and a Hasher
// that folds a tuple projection into a single uint64 FNV-1a key over the
// (kind, id) pairs. The master-data indexes key their buckets on these
// hashes, so the per-probe cost demanded by the paper's TransFix complexity
// analysis (§5.1, "constant time ... by using a hash table") is one hash
// computation plus one map lookup — no string building, no heap allocation.
//
// The string encoding Tuple.Key remains the canonical, collision-free
// encoding for debugging, CSV round-trips and state enumeration; the uint64
// key is a hash, so index buckets must verify candidates against the stored
// tuples (see internal/master).

import "fmt"

// Symbols interns values into dense uint32 ids. Ids are assigned in
// first-seen order starting at 0. Interning is not safe for concurrent use;
// populate the table while building indexes, then only read (ID, Hasher
// probes) from any number of goroutines.
//
// A table is layered to support copy-on-write snapshots (the versioned
// master data of internal/master): Fork derives a writable child whose
// base layer is the parent's (now frozen) content, so the child can
// intern new values while readers of the parent — and of the child's own
// frozen layer — race nothing. Ids stay dense across both layers and a
// value's id never changes between a parent and its descendants, which is
// what keeps hash keys computed against an old snapshot valid in every
// later one.
type Symbols struct {
	// base is the immutable shared layer (nil for a root table). It is
	// never written after the Fork that created it.
	base map[Value]uint32
	// ids is the owned writable layer.
	ids map[Value]uint32
	// flat is the frozen bottom layer built by SymbolsFromValues (nil for
	// map-only tables): ids [0, len(flat.vals)) resolve through an
	// open-addressing probe instead of a Go map. It is immutable and shared
	// by every fork, so a table imported from a columnar arena never pays
	// map construction over the frozen symbols.
	flat *symbolsFlat
}

// symbolsFlat is the frozen layer: id-ordered values plus an open-addressing
// slot table (frozenEmpty marks a free slot) keyed by the process-stable
// HashValue hash, at most half full so probes terminate at an empty slot.
type symbolsFlat struct {
	vals  []Value
	slots []uint32
	mask  uint32
}

// frozenEmpty is the empty-slot sentinel; symbol ids stay below it because
// a table of 1<<32 values could not have been built.
const frozenEmpty = ^uint32(0)

func (f *symbolsFlat) lookup(v Value) (uint32, bool) {
	h := uint32(HashValue(fnvOffset64, v))
	for j := h & f.mask; ; j = (j + 1) & f.mask {
		id := f.slots[j]
		if id == frozenEmpty {
			return 0, false
		}
		if f.vals[id] == v {
			return id, true
		}
	}
}

func (f *symbolsFlat) len() int {
	if f == nil {
		return 0
	}
	return len(f.vals)
}

// NewSymbols creates an empty symbol table.
func NewSymbols() *Symbols {
	return &Symbols{ids: make(map[Value]uint32)}
}

// symbolsFlattenDiv controls overlay compaction in Fork: once the owned
// layer exceeds 1/symbolsFlattenDiv of the base, forking merges the two
// into a fresh base so lookup stays at most two map probes and per-fork
// copying stays bounded.
const symbolsFlattenDiv = 4

// Fork returns a writable child table sharing this table's content as an
// immutable base layer. After forking, the parent must not Intern again
// (its map may now be read concurrently through children); reads remain
// safe on both. Fork cost is O(owned layer), amortized O(1) per interned
// value across a chain of forks.
func (s *Symbols) Fork() *Symbols {
	if s.base == nil {
		// Root (or freshly imported) table: freeze its map as the shared
		// base; the flat layer is immutable and shared as-is.
		return &Symbols{base: s.ids, flat: s.flat, ids: make(map[Value]uint32)}
	}
	if len(s.ids)*symbolsFlattenDiv <= len(s.base)+s.flat.len() {
		child := make(map[Value]uint32, len(s.ids)+4)
		for v, id := range s.ids {
			child[v] = id
		}
		return &Symbols{base: s.base, flat: s.flat, ids: child}
	}
	// Merge the two map layers; the flat layer never merges — probing it
	// costs no more than the map it would become.
	merged := make(map[Value]uint32, len(s.base)+len(s.ids))
	for v, id := range s.base {
		merged[v] = id
	}
	for v, id := range s.ids {
		merged[v] = id
	}
	return &Symbols{base: merged, flat: s.flat, ids: make(map[Value]uint32)}
}

// lookup resolves v across the layers (the layers are disjoint).
func (s *Symbols) lookup(v Value) (uint32, bool) {
	if id, ok := s.ids[v]; ok {
		return id, true
	}
	if s.base != nil {
		if id, ok := s.base[v]; ok {
			return id, true
		}
	}
	if s.flat != nil {
		return s.flat.lookup(v)
	}
	return 0, false
}

// Intern returns v's id, assigning the next dense id on first sight.
func (s *Symbols) Intern(v Value) uint32 {
	if id, ok := s.lookup(v); ok {
		return id
	}
	id := uint32(s.Len())
	s.ids[v] = id
	return id
}

// ID returns v's id; ok is false when v was never interned. Read-only and
// allocation-free: safe for concurrent use once interning is finished.
func (s *Symbols) ID(v Value) (uint32, bool) {
	return s.lookup(v)
}

// Len returns the number of distinct interned values.
func (s *Symbols) Len() int { return len(s.base) + len(s.ids) + s.flat.len() }

// Export returns the interned values in id order (vals[id] is the value
// whose Intern returned id). This is the serialization side of the stable-
// id contract: a table rebuilt with SymbolsFromValues over the exported
// slice assigns every value its original id, so hash keys computed against
// the original table stay valid against the import — what the columnar
// master arena (internal/master) relies on to freeze index buckets keyed
// on interned-id hashes.
func (s *Symbols) Export() []Value {
	vals := make([]Value, s.Len())
	if s.flat != nil {
		copy(vals, s.flat.vals)
	}
	for v, id := range s.base {
		vals[id] = v
	}
	for v, id := range s.ids {
		vals[id] = v
	}
	return vals
}

// SymbolsFromValues builds a table interning vals in order, so vals[i]
// gets id i — the import side of Export. Duplicate values are an error:
// they would silently remap ids and invalidate every hash computed against
// the exported table.
//
// The table is built as a frozen flat layer, not a Go map: inserting a few
// hundred thousand string-bearing struct keys into a map dominated arena
// cold start, while filling an open-addressing uint32 slot array is a
// fraction of that. The slice is retained; callers must not mutate it.
func SymbolsFromValues(vals []Value) (*Symbols, error) {
	nslots := 2
	for nslots < 2*len(vals) {
		nslots <<= 1
	}
	slots := make([]uint32, nslots)
	for i := range slots {
		slots[i] = frozenEmpty
	}
	mask := uint32(nslots - 1)
	for i, v := range vals {
		h := uint32(HashValue(fnvOffset64, v))
		for j := h & mask; ; j = (j + 1) & mask {
			id := slots[j]
			if id == frozenEmpty {
				slots[j] = uint32(i)
				break
			}
			if vals[id] == v {
				return nil, fmt.Errorf("relation: symbol import: value %v duplicated at ids %d and %d", v, id, i)
			}
		}
	}
	return &Symbols{
		ids:  make(map[Value]uint32),
		flat: &symbolsFlat{vals: vals, slots: slots, mask: mask},
	}, nil
}

// FNV-1a constants (64-bit).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Hasher computes uint64 projection keys against a symbol table. The zero
// Hasher is not usable; obtain one with NewHasher. Hasher is a small value
// type — copy it freely.
type Hasher struct {
	syms *Symbols
}

// NewHasher returns a hasher over the symbol table.
func NewHasher(syms *Symbols) Hasher { return Hasher{syms: syms} }

// Symbols returns the underlying symbol table.
func (h Hasher) Symbols() *Symbols { return h.syms }

// hashCell folds one value's (kind, id) pair into the accumulator,
// byte-by-byte in FNV-1a order.
func hashCell(acc uint64, kind Kind, id uint32) uint64 {
	acc ^= uint64(kind)
	acc *= fnvPrime64
	acc ^= uint64(id & 0xff)
	acc *= fnvPrime64
	acc ^= uint64((id >> 8) & 0xff)
	acc *= fnvPrime64
	acc ^= uint64((id >> 16) & 0xff)
	acc *= fnvPrime64
	acc ^= uint64(id >> 24)
	acc *= fnvPrime64
	return acc
}

// HashTuple hashes t's projection on positions without interning. ok is
// false when some projected value was never interned — such a projection
// cannot equal any indexed projection, so callers treat it as a guaranteed
// miss. Allocation-free.
func (h Hasher) HashTuple(t Tuple, positions []int) (uint64, bool) {
	acc := fnvOffset64
	for _, p := range positions {
		v := t[p]
		id, ok := h.syms.lookup(v)
		if !ok {
			return 0, false
		}
		acc = hashCell(acc, v.kind, id)
	}
	return acc, true
}

// HashValues hashes the value vector in order (the probe-side twin of
// HashTuple for callers that already projected). Allocation-free.
func (h Hasher) HashValues(values []Value) (uint64, bool) {
	acc := fnvOffset64
	for _, v := range values {
		id, ok := h.syms.lookup(v)
		if !ok {
			return 0, false
		}
		acc = hashCell(acc, v.kind, id)
	}
	return acc, true
}

// HashInterning hashes t's projection on positions, interning unseen values
// along the way — the index-build-side variant. Not safe for concurrent use.
func (h Hasher) HashInterning(t Tuple, positions []int) uint64 {
	acc := fnvOffset64
	for _, p := range positions {
		v := t[p]
		acc = hashCell(acc, v.kind, h.syms.Intern(v))
	}
	return acc
}

// HashSeed returns the FNV-1a starting accumulator for the standalone
// folding helpers below. They serve hash-keyed memo tables that — like the
// master indexes — verify candidates against stored state, since a uint64
// key is a hash, not an injective encoding.
func HashSeed() uint64 { return fnvOffset64 }

// HashInt folds an integer into the accumulator byte by byte.
func HashInt(acc uint64, n int) uint64 {
	u := uint64(n)
	for i := 0; i < 8; i++ {
		acc ^= u & 0xff
		acc *= fnvPrime64
		u >>= 8
	}
	return acc
}

// HashValue folds a value into the accumulator: its kind, then its payload
// (numeric bytes for ints, the raw bytes for strings). Unlike the
// interning Hasher it needs no symbol table, so it works on arbitrary
// values — e.g. the Explore oracle's visited-state memo.
func HashValue(acc uint64, v Value) uint64 {
	acc ^= uint64(v.kind)
	acc *= fnvPrime64
	switch v.kind {
	case KindInt:
		return HashInt(acc, int(v.num))
	case KindString:
		for i := 0; i < len(v.str); i++ {
			acc ^= uint64(v.str[i])
			acc *= fnvPrime64
		}
	}
	return acc
}
