package relation

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// AttrSet is a set of attribute positions, implemented as a bitset over
// schema positions. Schemas in this system are small (≤ 64 attributes is
// typical; the paper's widest schema has 19), but the implementation
// supports arbitrary arity via a word slice.
type AttrSet struct {
	words []uint64
}

// NewAttrSet builds a set from positions.
func NewAttrSet(positions ...int) AttrSet {
	var s AttrSet
	for _, p := range positions {
		s.Add(p)
	}
	return s
}

// Add inserts position p.
func (s *AttrSet) Add(p int) {
	w := p >> 6
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(p) & 63)
}

// AddAll inserts every position in ps.
func (s *AttrSet) AddAll(ps []int) {
	for _, p := range ps {
		s.Add(p)
	}
}

// Clear removes every member, retaining allocated capacity (scratch reuse
// on hot paths).
func (s *AttrSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Remove deletes position p if present.
func (s *AttrSet) Remove(p int) {
	w := p >> 6
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(p) & 63)
	}
}

// Has reports membership of p.
func (s AttrSet) Has(p int) bool {
	w := p >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(p)&63)) != 0
}

// HasAll reports whether every position in ps is in the set.
func (s AttrSet) HasAll(ps []int) bool {
	for _, p := range ps {
		if !s.Has(p) {
			return false
		}
	}
	return true
}

// HasAny reports whether any position in ps is in the set.
func (s AttrSet) HasAny(ps []int) bool {
	for _, p := range ps {
		if s.Has(p) {
			return true
		}
	}
	return false
}

// Len counts the members.
func (s AttrSet) Len() int {
	n := 0
	for _, w := range s.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Clone returns an independent copy.
func (s AttrSet) Clone() AttrSet {
	return AttrSet{words: append([]uint64(nil), s.words...)}
}

// Union returns s ∪ o without mutating either.
func (s AttrSet) Union(o AttrSet) AttrSet {
	longer, shorter := s.words, o.words
	if len(shorter) > len(longer) {
		longer, shorter = shorter, longer
	}
	out := append([]uint64(nil), longer...)
	for i, w := range shorter {
		out[i] |= w
	}
	return AttrSet{words: out}
}

// Equal reports set equality.
func (s AttrSet) Equal(o AttrSet) bool {
	a, b := s.words, o.words
	if len(a) < len(b) {
		a, b = b, a
	}
	for i := range b {
		if a[i] != b[i] {
			return false
		}
	}
	for i := len(b); i < len(a); i++ {
		if a[i] != 0 {
			return false
		}
	}
	return true
}

// ContainsSet reports o ⊆ s.
func (s AttrSet) ContainsSet(o AttrSet) bool {
	for i, w := range o.words {
		if w == 0 {
			continue
		}
		if i >= len(s.words) || s.words[i]&w != w {
			return false
		}
	}
	return true
}

// Range calls f on every member in ascending order, stopping early when f
// returns false. Allocation-free — the hot-path alternative to Positions.
func (s AttrSet) Range(f func(p int) bool) {
	for wi, w := range s.words {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			if !f(base + trailingZeros(w)) {
				return
			}
		}
	}
}

// Positions returns the members in ascending order.
func (s AttrSet) Positions() []int {
	out := make([]int, 0, s.Len())
	for wi, w := range s.words {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			out = append(out, base+trailingZeros(w))
		}
	}
	return out
}

// Key returns a canonical string for use as a map key.
func (s AttrSet) Key() string {
	ps := s.Positions()
	var b strings.Builder
	for i, p := range ps {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(p))
	}
	return b.String()
}

// Names renders the set as sorted attribute names under the schema.
func (s AttrSet) Names(schema *Schema) []string {
	ps := s.Positions()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = schema.Attr(p).Name
	}
	sort.Strings(out)
	return out
}

func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }
