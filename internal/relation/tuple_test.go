package relation

import (
	"testing"
	"testing/quick"
)

func TestTupleCloneIndependence(t *testing.T) {
	a := StringTuple("x", "y")
	b := a.Clone()
	b[0] = String("z")
	if a[0].Str() != "x" {
		t.Fatal("Clone must not share storage")
	}
}

func TestTupleEqual(t *testing.T) {
	if !StringTuple("a", "b").Equal(StringTuple("a", "b")) {
		t.Error("equal tuples reported unequal")
	}
	if StringTuple("a").Equal(StringTuple("a", "b")) {
		t.Error("different arities reported equal")
	}
	if StringTuple("a", "b").Equal(StringTuple("a", "c")) {
		t.Error("different values reported equal")
	}
}

func TestTupleEqualOnAndProject(t *testing.T) {
	a := StringTuple("p", "q", "r")
	b := StringTuple("p", "x", "r")
	if !a.EqualOn([]int{0, 2}, b) {
		t.Error("EqualOn({0,2}) should hold")
	}
	if a.EqualOn([]int{0, 1}, b) {
		t.Error("EqualOn({0,1}) should fail")
	}
	proj := a.Project([]int{2, 0})
	if len(proj) != 2 || proj[0].Str() != "r" || proj[1].Str() != "p" {
		t.Fatalf("Project = %v", proj)
	}
}

func TestProjectMatches(t *testing.T) {
	t1 := StringTuple("131", "5551234")
	tm := StringTuple("ignored", "131", "5551234")
	if !t1.ProjectMatches([]int{0, 1}, tm, []int{1, 2}) {
		t.Error("ProjectMatches should hold for aligned projections")
	}
	if t1.ProjectMatches([]int{0, 1}, tm, []int{2, 1}) {
		t.Error("ProjectMatches should fail for swapped projections")
	}
}

func TestTupleKeyDistinguishesProjections(t *testing.T) {
	a := TupleOf(String("ab"), String("c"))
	b := TupleOf(String("a"), String("bc"))
	if a.Key([]int{0, 1}) == b.Key([]int{0, 1}) {
		t.Error("keys of (ab,c) and (a,bc) must differ")
	}
	c := TupleOf(Int(1), Null)
	d := TupleOf(String("1"), Null)
	if c.Key([]int{0, 1}) == d.Key([]int{0, 1}) {
		t.Error("keys must be type-aware")
	}
}

func TestTupleKeyProperty(t *testing.T) {
	// Key is injective on string-pair projections.
	f := func(a1, a2, b1, b2 string) bool {
		x := TupleOf(String(a1), String(a2))
		y := TupleOf(String(b1), String(b2))
		same := a1 == b1 && a2 == b2
		return (x.Key([]int{0, 1}) == y.Key([]int{0, 1})) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringTupleNulls(t *testing.T) {
	tu := StringTuple("a", "", "c")
	if !tu[1].IsNull() {
		t.Error("empty cell should become Null")
	}
	if tu.String() != "(a, ⊥, c)" {
		t.Errorf("String() = %q", tu.String())
	}
}

func TestNewTupleAllNull(t *testing.T) {
	tu := NewTuple(3)
	for i, v := range tu {
		if !v.IsNull() {
			t.Errorf("position %d not null", i)
		}
	}
}
