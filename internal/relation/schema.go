package relation

import (
	"fmt"
	"strings"
)

// Type is the declared type of an attribute.
type Type uint8

// Attribute types. TypeString covers free text and codes; TypeInt covers
// numeric attributes (scores, years, truth values in the reduction tests).
const (
	TypeString Type = iota
	TypeInt
)

// String returns a human-readable name for the type.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Attribute is a named, typed column of a schema.
type Attribute struct {
	Name string
	Type Type
}

// Schema is an ordered list of distinct attributes with a relation name.
// Attribute positions are stable; all higher layers refer to attributes by
// position for O(1) access and use the schema to resolve names.
type Schema struct {
	name  string
	attrs []Attribute
	byPos map[string]int
}

// NewSchema builds a schema. Attribute names must be non-empty and
// pairwise distinct.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: schema name must be non-empty")
	}
	s := &Schema{name: name, attrs: append([]Attribute(nil), attrs...), byPos: make(map[string]int, len(attrs))}
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: schema %s: attribute %d has empty name", name, i)
		}
		if _, dup := s.byPos[a.Name]; dup {
			return nil, fmt.Errorf("relation: schema %s: duplicate attribute %q", name, a.Name)
		}
		s.byPos[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for package-level
// fixtures and tests where the schema is a literal.
func MustSchema(name string, attrs ...Attribute) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// StringSchema builds a schema whose attributes are all strings; a common
// case for the paper's HOSP/DBLP schemas.
func StringSchema(name string, attrNames ...string) *Schema {
	attrs := make([]Attribute, len(attrNames))
	for i, n := range attrNames {
		attrs[i] = Attribute{Name: n, Type: TypeString}
	}
	return MustSchema(name, attrs...)
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attr returns the attribute at position i.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Pos resolves an attribute name to its position, with ok=false when the
// attribute does not exist.
func (s *Schema) Pos(name string) (int, bool) {
	i, ok := s.byPos[name]
	return i, ok
}

// MustPos resolves an attribute name, panicking if absent. For fixtures.
func (s *Schema) MustPos(name string) int {
	i, ok := s.byPos[name]
	if !ok {
		panic(fmt.Sprintf("relation: schema %s has no attribute %q", s.name, name))
	}
	return i
}

// PosList resolves a list of attribute names to positions.
func (s *Schema) PosList(names ...string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		p, ok := s.byPos[n]
		if !ok {
			return nil, fmt.Errorf("relation: schema %s has no attribute %q", s.name, n)
		}
		out[i] = p
	}
	return out, nil
}

// MustPosList is PosList that panics on unknown names.
func (s *Schema) MustPosList(names ...string) []int {
	ps, err := s.PosList(names...)
	if err != nil {
		panic(err)
	}
	return ps
}

// AttrNames returns the attribute names in schema order.
func (s *Schema) AttrNames() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// String renders the schema as R(A,B,...).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have the same name and attribute list.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || s.name != o.name || len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}
