package relation

import (
	"strings"
	"testing"
)

func TestNewSchemaValid(t *testing.T) {
	s, err := NewSchema("R",
		Attribute{Name: "AC", Type: TypeString},
		Attribute{Name: "score", Type: TypeInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "R" || s.Arity() != 2 {
		t.Fatalf("unexpected schema: %v", s)
	}
	if s.Attr(0).Name != "AC" || s.Attr(1).Type != TypeInt {
		t.Fatalf("attr mismatch: %+v", s.Attrs())
	}
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema("R",
		Attribute{Name: "A"}, Attribute{Name: "A"},
	)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate error, got %v", err)
	}
}

func TestNewSchemaRejectsEmptyNames(t *testing.T) {
	if _, err := NewSchema("", Attribute{Name: "A"}); err == nil {
		t.Fatal("want error for empty relation name")
	}
	if _, err := NewSchema("R", Attribute{Name: ""}); err == nil {
		t.Fatal("want error for empty attribute name")
	}
}

func TestSchemaPosResolution(t *testing.T) {
	s := StringSchema("R", "fn", "ln", "AC", "phn")
	if p, ok := s.Pos("AC"); !ok || p != 2 {
		t.Fatalf("Pos(AC) = %d,%v", p, ok)
	}
	if _, ok := s.Pos("missing"); ok {
		t.Fatal("Pos(missing) should be absent")
	}
	ps, err := s.PosList("phn", "fn")
	if err != nil || ps[0] != 3 || ps[1] != 0 {
		t.Fatalf("PosList = %v, %v", ps, err)
	}
	if _, err := s.PosList("phn", "nope"); err == nil {
		t.Fatal("PosList should fail on unknown attribute")
	}
}

func TestSchemaMustPosPanics(t *testing.T) {
	s := StringSchema("R", "A")
	defer func() {
		if recover() == nil {
			t.Fatal("MustPos should panic on unknown attribute")
		}
	}()
	s.MustPos("B")
}

func TestSchemaStringAndNames(t *testing.T) {
	s := StringSchema("R", "A", "B")
	if got := s.String(); got != "R(A, B)" {
		t.Fatalf("String() = %q", got)
	}
	names := s.AttrNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("AttrNames = %v", names)
	}
}

func TestSchemaEqual(t *testing.T) {
	a := StringSchema("R", "A", "B")
	b := StringSchema("R", "A", "B")
	c := StringSchema("R", "A", "C")
	d := StringSchema("S", "A", "B")
	if !a.Equal(b) {
		t.Error("identical schemas should be equal")
	}
	if a.Equal(c) || a.Equal(d) || a.Equal(nil) {
		t.Error("different schemas should not be equal")
	}
}
