package relation

// JSON codecs for the wire-facing types. Values map onto native JSON —
// Null ↔ null, String ↔ string, Int ↔ number — so serialized tuples read
// naturally in HTTP payloads and session tokens, and the mapping is
// unambiguous without schema context (unlike Encode, which erases the
// kind and relies on the schema's column type to decode). AttrSets
// serialize as the sorted position list, the canonical form independent
// of the word-slice layout (a pooled set and a freshly built one marshal
// identically even when their backing capacities differ).

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// MarshalJSON renders the value as native JSON: null, a string, or an
// integer number.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case KindNull:
		return []byte("null"), nil
	case KindInt:
		return strconv.AppendInt(nil, v.num, 10), nil
	case KindString:
		return json.Marshal(v.str)
	default:
		return nil, fmt.Errorf("relation: marshal: unknown value kind %v", v.kind)
	}
}

// UnmarshalJSON parses the native JSON mapping of MarshalJSON. Numbers
// must be base-10 integers (floats and exponents are rejected: no Value
// kind can hold them losslessly).
func (v *Value) UnmarshalJSON(b []byte) error {
	s := strings.TrimSpace(string(b))
	switch {
	case s == "null":
		*v = Null
		return nil
	case len(s) > 0 && s[0] == '"':
		var str string
		if err := json.Unmarshal(b, &str); err != nil {
			return fmt.Errorf("relation: unmarshal value: %w", err)
		}
		*v = String(str)
		return nil
	default:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("relation: unmarshal value %q: want null, string or base-10 integer: %w", s, err)
		}
		*v = Int(n)
		return nil
	}
}

// MarshalJSON renders the set as its ascending position list.
func (s AttrSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Positions())
}

// UnmarshalJSON parses a position list (order and duplicates are
// irrelevant; negative positions are rejected). The previous content of
// the set is replaced.
func (s *AttrSet) UnmarshalJSON(b []byte) error {
	var ps []int
	if err := json.Unmarshal(b, &ps); err != nil {
		return fmt.Errorf("relation: unmarshal attrset: %w", err)
	}
	*s = AttrSet{}
	for _, p := range ps {
		if p < 0 {
			return fmt.Errorf("relation: unmarshal attrset: negative position %d", p)
		}
		s.Add(p)
	}
	return nil
}
