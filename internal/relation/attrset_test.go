package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAttrSetBasics(t *testing.T) {
	s := NewAttrSet(1, 3, 70)
	if !s.Has(1) || !s.Has(3) || !s.Has(70) || s.Has(2) || s.Has(64) {
		t.Fatalf("membership wrong: %v", s.Positions())
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Remove(3)
	if s.Has(3) || s.Len() != 2 {
		t.Fatalf("after Remove: %v", s.Positions())
	}
	s.Remove(999) // no-op, must not panic
}

func TestAttrSetHasAllAnyContains(t *testing.T) {
	s := NewAttrSet(0, 2, 4)
	if !s.HasAll([]int{0, 4}) || s.HasAll([]int{0, 1}) {
		t.Error("HasAll wrong")
	}
	if !s.HasAny([]int{1, 2}) || s.HasAny([]int{1, 3}) {
		t.Error("HasAny wrong")
	}
	if !s.ContainsSet(NewAttrSet(0, 2)) || s.ContainsSet(NewAttrSet(0, 3)) {
		t.Error("ContainsSet wrong")
	}
	if !s.ContainsSet(NewAttrSet()) {
		t.Error("every set contains the empty set")
	}
	if !NewAttrSet().ContainsSet(NewAttrSet()) {
		t.Error("empty contains empty")
	}
}

func TestAttrSetUnionAndEqual(t *testing.T) {
	a := NewAttrSet(1, 65)
	b := NewAttrSet(2)
	u := a.Union(b)
	if !u.Equal(NewAttrSet(1, 2, 65)) {
		t.Fatalf("union = %v", u.Positions())
	}
	// union must not mutate operands
	if a.Len() != 2 || b.Len() != 1 {
		t.Fatal("Union mutated an operand")
	}
	// equality ignores trailing zero words
	var c AttrSet
	c.Add(100)
	c.Remove(100)
	if !c.Equal(NewAttrSet()) {
		t.Fatal("set with trailing zero words should equal empty set")
	}
}

func TestAttrSetCloneIndependence(t *testing.T) {
	a := NewAttrSet(5)
	b := a.Clone()
	b.Add(6)
	if a.Has(6) {
		t.Fatal("Clone shares storage")
	}
}

func TestAttrSetPositionsSortedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s AttrSet
		want := map[int]bool{}
		for i := 0; i < 40; i++ {
			p := rng.Intn(200)
			s.Add(p)
			want[p] = true
		}
		ps := s.Positions()
		if len(ps) != len(want) {
			return false
		}
		for i, p := range ps {
			if !want[p] {
				return false
			}
			if i > 0 && ps[i-1] >= p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAttrSetKeyCanonical(t *testing.T) {
	a := NewAttrSet(3, 1, 2)
	b := NewAttrSet(2, 3, 1)
	if a.Key() != b.Key() {
		t.Fatal("Key must be order-independent")
	}
	if a.Key() == NewAttrSet(1, 2).Key() {
		t.Fatal("different sets must have different keys")
	}
}

func TestAttrSetNames(t *testing.T) {
	s := StringSchema("R", "zip", "AC", "city")
	set := NewAttrSet(0, 2)
	names := set.Names(s)
	if len(names) != 2 || names[0] != "city" || names[1] != "zip" {
		t.Fatalf("Names = %v", names)
	}
}
