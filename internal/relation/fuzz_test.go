package relation

import (
	"testing"
)

// FuzzTupleKey attacks the projection-key encoding with arbitrary cell
// content: Key must be injective — two projections share a key iff they
// are cell-wise equal — including across different projection widths and
// across the string/int kind boundary. The seed corpus covers the
// escape-adjacent shapes of TestKeyDelimiterEscaping (0x1f runs, kind-byte
// mimicry); the fuzzer mutates from there.
func FuzzTupleKey(f *testing.F) {
	sep := "\x1f"
	f.Add("a", "b", "a", "b")
	f.Add("a"+sep, "b", "a", sep+"b")
	f.Add(sep, "", "", sep)
	f.Add(sep+sep, "x", sep, sep+"x")
	f.Add("a"+sep+"1b", "c", "a", "1b")
	f.Add("1", "2", "1"+sep+"12", "")
	f.Add("0", "", "1", "")
	f.Fuzz(func(t *testing.T, a, b, c, d string) {
		t1 := TupleOf(String(a), String(b))
		t2 := TupleOf(String(c), String(d))
		all := []int{0, 1}
		k1, k2 := t1.Key(all), t2.Key(all)
		if (k1 == k2) != (a == c && b == d) {
			t.Fatalf("2-cell injectivity broken: (%q,%q) vs (%q,%q): %q vs %q", a, b, c, d, k1, k2)
		}

		// A single cell containing a separator must never collide with the
		// two-cell projection it mimics.
		joined := TupleOf(String(a + sep + b)).Key([]int{0})
		if joined == k1 && b != "" {
			// (a+sep+b) as ONE cell vs (a, b) as two: distinct projections.
			t.Fatalf("cell/boundary confusion: %q encodes like (%q,%q)", a+sep+b, a, b)
		}

		// Kind prefixes keep string digits and ints apart.
		if n := int64(len(a)); TupleOf(Int(n)).Key([]int{0}) == TupleOf(String(a)).Key([]int{0}) {
			t.Fatalf("kind confusion between Int(%d) and String(%q)", n, a)
		}

		// Projection order is significant.
		k21 := t1.Key([]int{1, 0})
		if a != b && k21 == k1 {
			t.Fatalf("order insensitivity: %q for both (0,1) and (1,0) of (%q,%q)", k1, a, b)
		}
	})
}

// FuzzValueEncode pins the CSV/value round-trip the relation loader
// depends on: Encode must decode back to the identical value for both
// attribute types, whatever the payload — with the one documented
// exception that the empty cell is Null's encoding, so String("")
// collapses to Null.
func FuzzValueEncode(f *testing.F) {
	f.Add("plain", int64(0))
	f.Add("", int64(-1))
	f.Add("42", int64(42))        // string payload mimicking an int encoding
	f.Add("\x1f", int64(1<<62))   // escape byte as content
	f.Add("⊥", int64(-(1 << 62))) // null's display form as content
	f.Fuzz(func(t *testing.T, s string, n int64) {
		sv := String(s)
		want := sv
		if s == "" {
			want = Null
		}
		back, err := DecodeValue(sv.Encode(), TypeString)
		if err != nil {
			t.Fatalf("DecodeValue(Encode(%q)) = %v", s, err)
		}
		if !back.Equal(want) {
			t.Fatalf("string round-trip %q -> %v, want %v", s, back, want)
		}

		iv := Int(n)
		back, err = DecodeValue(iv.Encode(), TypeInt)
		if err != nil {
			t.Fatalf("DecodeValue(Encode(%d)) = %v", n, err)
		}
		if !back.Equal(iv) {
			t.Fatalf("int round-trip %d -> %v", n, back)
		}

		for _, ty := range []Type{TypeString, TypeInt} {
			back, err = DecodeValue(Null.Encode(), ty)
			if err != nil || !back.IsNull() {
				t.Fatalf("null round-trip via %v -> %v, %v", ty, back, err)
			}
		}
	})
}
