package relation

import (
	"strings"
	"testing"
)

// TestKeyDelimiterEscaping attacks the string-key encoding with cell values
// containing the 0x1f unit separator, the escape-adjacent shapes most
// likely to produce silent collisions between distinct projections. The
// encoding doubles in-cell separators and prefixes every cell with its kind
// byte, so after any (odd-terminated) separator run the next byte is a kind
// byte, never content — these pairs must all stay distinct.
func TestKeyDelimiterEscaping(t *testing.T) {
	sep := "\x1f"
	pairs := [][2]Tuple{
		// The classic doubling-escape ambiguity: trailing separator in the
		// first cell vs leading separator in the second.
		{TupleOf(String("a"+sep), String("b")), TupleOf(String("a"), String(sep+"b"))},
		// Separator-only cells vs empty-ish neighbours.
		{TupleOf(String(sep), String("")), TupleOf(String(""), String(sep))},
		{TupleOf(String(sep + sep)), TupleOf(String(sep), String(""))},
		// Content mimicking "separator + kind byte" of a following cell.
		{TupleOf(String("a" + sep + "1b")), TupleOf(String("a"), String("1b"))},
		{TupleOf(String("a" + sep + "0")), TupleOf(String("a"), Null)},
		// Doubled content separators vs two separators across a boundary.
		{TupleOf(String("a" + sep + sep + "b")), TupleOf(String("a"+sep), String(sep+"b"))},
		// Kind confusion: digits that look like kind prefixes.
		{TupleOf(String("1")), TupleOf(Int(1))},
		{TupleOf(String("1"), String("2")), TupleOf(String("1" + sep + "12"))},
	}
	all := []int{0, 1}
	one := []int{0}
	for i, pr := range pairs {
		a, b := pr[0], pr[1]
		pa, pb := all, all
		if len(a) == 1 {
			pa = one
		}
		if len(b) == 1 {
			pb = one
		}
		ka, kb := a.Key(pa), b.Key(pb)
		if ka == kb {
			t.Errorf("pair %d: distinct projections collide: %q vs %q -> key %q", i, a, b, ka)
		}
	}
}

// TestKeyRoundTripSeparatorRuns pins the run-length invariant the decode
// argument relies on: content separators always appear doubled, so any
// odd-length 0x1f run contains exactly one cell boundary (at its end).
func TestKeyRoundTripSeparatorRuns(t *testing.T) {
	tup := TupleOf(String("x\x1f"), String("\x1f\x1fy"), String("z"))
	key := tup.Key([]int{0, 1, 2})
	runs := 0
	for i := 0; i < len(key); {
		if key[i] != 0x1f {
			i++
			continue
		}
		j := i
		for j < len(key) && key[j] == 0x1f {
			j++
		}
		if (j-i)%2 == 1 {
			runs++ // odd run = exactly one boundary
		}
		i = j
	}
	if runs != 2 {
		t.Fatalf("expected 2 cell boundaries in %q, found %d odd runs", key, runs)
	}
	if !strings.HasPrefix(key, "1x") {
		t.Fatalf("cells must be kind-prefixed: %q", key)
	}
}
