package relation_test

import (
	"encoding/json"
	"testing"

	"repro/internal/relation"
)

// TestValueJSONRoundTrip: every kind survives marshal → unmarshal, and
// the wire form is native JSON.
func TestValueJSONRoundTrip(t *testing.T) {
	cases := []struct {
		v    relation.Value
		wire string
	}{
		{relation.Null, `null`},
		{relation.String("Edi"), `"Edi"`},
		{relation.String(""), `""`},
		{relation.String("123"), `"123"`}, // string of digits stays a string
		{relation.String("with \"quotes\" and ⊥"), `"with \"quotes\" and ⊥"`},
		{relation.Int(0), `0`},
		{relation.Int(-42), `-42`},
		{relation.Int(1<<62 + 7), `4611686018427387911`},
	}
	for _, c := range cases {
		b, err := json.Marshal(c.v)
		if err != nil {
			t.Fatalf("marshal %v: %v", c.v, err)
		}
		if string(b) != c.wire {
			t.Errorf("marshal %v = %s, want %s", c.v, b, c.wire)
		}
		var got relation.Value
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if !got.Equal(c.v) {
			t.Errorf("round-trip %v → %s → %v", c.v, b, got)
		}
	}
}

// TestValueJSONRejects: floats, exponents and malformed input fail
// loudly instead of silently truncating.
func TestValueJSONRejects(t *testing.T) {
	for _, wire := range []string{`1.5`, `1e3`, `true`, `{}`, `[1]`} {
		var v relation.Value
		if err := json.Unmarshal([]byte(wire), &v); err == nil {
			t.Errorf("unmarshal %s: want error, got %v", wire, v)
		}
	}
}

// TestTupleJSONRoundTrip: tuples (slices of values) round-trip through
// the element codec, mixed kinds included.
func TestTupleJSONRoundTrip(t *testing.T) {
	in := relation.TupleOf(relation.String("Brady"), relation.Null, relation.Int(131))
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `["Brady",null,131]` {
		t.Fatalf("wire form %s", b)
	}
	var out relation.Tuple
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(in) {
		t.Fatalf("round-trip %v → %v", in, out)
	}
}

// TestAttrSetJSONRoundTrip: the wire form is the sorted position list,
// and sets with different backing capacities marshal identically.
func TestAttrSetJSONRoundTrip(t *testing.T) {
	s := relation.NewAttrSet(7, 2, 5)
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `[2,5,7]` {
		t.Fatalf("wire form %s, want [2,5,7]", b)
	}

	// A set that once held a high position keeps a longer word slice
	// after Clear; the canonical wire form must not expose that.
	var wide relation.AttrSet
	wide.Add(200)
	wide.Clear()
	wide.AddAll([]int{2, 5, 7})
	wb, err := json.Marshal(wide)
	if err != nil {
		t.Fatal(err)
	}
	if string(wb) != string(b) {
		t.Fatalf("capacity leaked into wire form: %s vs %s", wb, b)
	}

	var got relation.AttrSet
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("round-trip %v → %v", s.Positions(), got.Positions())
	}

	var empty relation.AttrSet
	eb, _ := json.Marshal(empty)
	if string(eb) != `[]` {
		t.Fatalf("empty set wire form %s", eb)
	}
	var back relation.AttrSet
	if err := json.Unmarshal([]byte(`null`), &back); err != nil {
		t.Fatalf("null must decode to the empty set: %v", err)
	}
	if back.Len() != 0 {
		t.Fatalf("null decoded to %v", back.Positions())
	}

	var neg relation.AttrSet
	if err := json.Unmarshal([]byte(`[-1]`), &neg); err == nil {
		t.Fatal("negative position must be rejected")
	}
}
