package paperex

// Golden checks against the paper's Example 1 tables (Fig. 1a/1b): the
// supplier and master schemas, the master tuples s1/s2, the input tuples
// t1–t4, and the Σ0 rule set of Example 11. Every worked example in the
// repository routes through these fixtures, so a silent drift here would
// invalidate the paper-conformance tests everywhere else.

import (
	"testing"

	"repro/internal/relation"
)

func TestSchemasMatchFig1(t *testing.T) {
	wantR := []string{"FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item"}
	r := SchemaR()
	if r.Arity() != len(wantR) {
		t.Fatalf("R arity = %d, want %d", r.Arity(), len(wantR))
	}
	for i, name := range wantR {
		if r.Attr(i).Name != name {
			t.Fatalf("R attr %d = %q, want %q", i, r.Attr(i).Name, name)
		}
	}
	wantRm := []string{"FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender"}
	rm := SchemaRm()
	if rm.Arity() != len(wantRm) {
		t.Fatalf("Rm arity = %d, want %d", rm.Arity(), len(wantRm))
	}
	for i, name := range wantRm {
		if rm.Attr(i).Name != name {
			t.Fatalf("Rm attr %d = %q, want %q", i, rm.Attr(i).Name, name)
		}
	}
}

// cellsOf renders a tuple back to plain strings (Null as "").
func cellsOf(tup relation.Tuple) []string {
	out := make([]string, len(tup))
	for i, v := range tup {
		if !v.IsNull() {
			out[i] = v.Str()
		}
	}
	return out
}

func assertCells(t *testing.T, label string, tup relation.Tuple, want []string) {
	t.Helper()
	got := cellsOf(tup)
	if len(got) != len(want) {
		t.Fatalf("%s: arity %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s cell %d = %q, want %q (full: %v)", label, i, got[i], want[i], got)
		}
	}
}

func TestMasterTableauMatchesFig1b(t *testing.T) {
	s1, s2 := MasterTuples()
	assertCells(t, "s1", s1, []string{
		"Robert", "Brady", "131", "6884563", "079172485",
		"51 Elm Row", "Edi", "EH7 4AH", "11/11/55", "M"})
	assertCells(t, "s2", s2, []string{
		"Mark", "Smith", "020", "6884563", "075568485",
		"20 Baker St.", "Lnd", "NW1 6XE", "25/12/67", "M"})

	dm := MasterRelation()
	if dm.Len() != 2 {
		t.Fatalf("Dm has %d tuples, want 2", dm.Len())
	}
	if !dm.Tuple(0).Equal(s1) || !dm.Tuple(1).Equal(s2) {
		t.Fatal("MasterRelation must hold s1, s2 in order")
	}
	if !dm.Schema().Equal(SchemaRm()) {
		t.Fatal("MasterRelation must be an Rm instance")
	}
}

func TestInputTuplesMatchFig1a(t *testing.T) {
	assertCells(t, "t1", InputT1(), []string{
		"Bob", "Brady", "020", "079172485", "2",
		"501 Elm St.", "Edi", "EH7 4AH", "CD"})
	assertCells(t, "t2", InputT2(), []string{
		"Robert", "Brady", "131", "6884563", "1",
		"", "Ldn", "", "CD"})
	// t2's empty cells are the paper's missing values, not empty strings.
	t2 := InputT2()
	if !t2[5].IsNull() || !t2[7].IsNull() {
		t.Fatal("t2 str/zip must be Null (missing), not empty strings")
	}
	assertCells(t, "t3", InputT3(), []string{
		"Mary", "Burn", "020", "6884563", "1",
		"49 Elm Row", "Lnd", "EH7 4AH", "CD"})
	assertCells(t, "t4", InputT4(), []string{
		"Joe", "Blake", "0800", "5556666", "1",
		"1 Main St", "NYC", "ZZ9 9ZZ", "TV"})
}

func TestSigma0MatchesExample11(t *testing.T) {
	sigma := Sigma0()
	if sigma.Len() != 9 {
		t.Fatalf("Σ0 has %d rules, want 9", sigma.Len())
	}
	r := SchemaR()
	rm := SchemaRm()
	pos := func(s *relation.Schema, name string) int {
		p, ok := s.Pos(name)
		if !ok {
			t.Fatalf("attribute %q missing", name)
		}
		return p
	}
	// name -> lhs attrs, master lhs attrs, rhs, master rhs
	want := []struct {
		name   string
		x, xm  []string
		b, bm  string
		hasPat bool
	}{
		{"phi1", []string{"zip"}, []string{"zip"}, "AC", "AC", false},
		{"phi2", []string{"zip"}, []string{"zip"}, "str", "str", false},
		{"phi3", []string{"zip"}, []string{"zip"}, "city", "city", false},
		{"phi4", []string{"phn"}, []string{"Mphn"}, "FN", "FN", true},
		{"phi5", []string{"phn"}, []string{"Mphn"}, "LN", "LN", true},
		{"phi6", []string{"AC", "phn"}, []string{"AC", "Hphn"}, "str", "str", true},
		{"phi7", []string{"AC", "phn"}, []string{"AC", "Hphn"}, "city", "city", true},
		{"phi8", []string{"AC", "phn"}, []string{"AC", "Hphn"}, "zip", "zip", true},
		{"phi9", []string{"AC"}, []string{"AC"}, "city", "city", true},
	}
	for i, w := range want {
		ru := sigma.Rule(i)
		if ru.Name() != w.name {
			t.Fatalf("rule %d named %q, want %q", i, ru.Name(), w.name)
		}
		x, xm := ru.LHSRef(), ru.LHSMRef()
		if len(x) != len(w.x) {
			t.Fatalf("%s lhs arity %d, want %d", w.name, len(x), len(w.x))
		}
		for j := range w.x {
			if x[j] != pos(r, w.x[j]) || xm[j] != pos(rm, w.xm[j]) {
				t.Fatalf("%s lhs pair %d = (%d,%d), want (%s,%s)", w.name, j, x[j], xm[j], w.x[j], w.xm[j])
			}
		}
		if ru.RHS() != pos(r, w.b) || ru.RHSM() != pos(rm, w.bm) {
			t.Fatalf("%s rhs = (%d,%d), want (%s,%s)", w.name, ru.RHS(), ru.RHSM(), w.b, w.bm)
		}
		if (ru.Pattern().Len() > 0) != w.hasPat {
			t.Fatalf("%s pattern presence = %v, want %v", w.name, ru.Pattern().Len() > 0, w.hasPat)
		}
	}
}
