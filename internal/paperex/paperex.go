// Package paperex reconstructs the paper's running example (Fig. 1,
// Examples 1–12): the supplier schema R, the master schema Rm, the master
// relation Dm with tuples s1 and s2, the input tuples t1–t4, and the rule
// set Σ0 of Example 11 (nine editing rules ϕ1–ϕ9). Tests across the
// repository validate the implementation against the paper's worked
// examples through this package, and the examples/ programs use it as
// demo data.
package paperex

import (
	"repro/internal/relation"
	"repro/internal/rule"
)

// SchemaR is the input (supplier) schema of Fig. 1a:
// name (FN, LN), phone (AC, phn, type), address (str, city, zip), item.
func SchemaR() *relation.Schema {
	return relation.StringSchema("R",
		"FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item")
}

// SchemaRm is the master schema of Fig. 1b:
// name, home phone, mobile phone, address, date of birth, gender.
func SchemaRm() *relation.Schema {
	return relation.StringSchema("Rm",
		"FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender")
}

// MasterTuples returns the master tuples s1, s2 of Fig. 1b.
func MasterTuples() (s1, s2 relation.Tuple) {
	s1 = relation.StringTuple(
		"Robert", "Brady", "131", "6884563", "079172485",
		"51 Elm Row", "Edi", "EH7 4AH", "11/11/55", "M")
	s2 = relation.StringTuple(
		"Mark", "Smith", "020", "6884563", "075568485",
		"20 Baker St.", "Lnd", "NW1 6XE", "25/12/67", "M")
	return s1, s2
}

// MasterRelation returns Dm = {s1, s2}.
func MasterRelation() *relation.Relation {
	dm := relation.NewRelation(SchemaRm())
	s1, s2 := MasterTuples()
	dm.MustAppend(s1, s2)
	return dm
}

// InputT1 is tuple t1 of Fig. 1a: Bob Brady with an inconsistent pair
// t1[AC] = 020 vs t1[city] = Edi and a matching master zip. The paper
// fixes AC, str via (ϕ1, s1) and standardizes FN via (ϕ4, s1).
func InputT1() relation.Tuple {
	return relation.StringTuple(
		"Bob", "Brady", "020", "079172485", "2",
		"501 Elm St.", "Edi", "EH7 4AH", "CD")
}

// InputT2 is tuple t2: str and zip missing, city inconsistent; fixed and
// enriched from s1 via ϕ6–ϕ8 (eR3 of Example 2) given type, AC, phn.
func InputT2() relation.Tuple {
	return relation.StringTuple(
		"Robert", "Brady", "131", "6884563", "1",
		"", "Ldn", "", "CD")
}

// InputT3 is tuple t3 of Example 5: its zip points at s1 while its
// (AC, phn, type) points at s2, so ϕ3 (via zip) and ϕ7 (via AC, phn)
// suggest conflicting cities — no unique fix once both are enabled.
func InputT3() relation.Tuple {
	return relation.StringTuple(
		"Mary", "Burn", "020", "6884563", "1",
		"49 Elm Row", "Lnd", "EH7 4AH", "CD")
}

// InputT4 is tuple t4 of Example 5: no rule/master pair applies at all.
func InputT4() relation.Tuple {
	return relation.StringTuple(
		"Joe", "Blake", "0800", "5556666", "1",
		"1 Main St", "NYC", "ZZ9 9ZZ", "TV")
}

// RulesDSL is Σ0 of Example 11 in this repository's rule DSL.
const RulesDSL = `
# Σ0: the nine editing rules of Example 11.
rule phi1: (zip ; zip) -> (AC ; AC)
rule phi2: (zip ; zip) -> (str ; str)
rule phi3: (zip ; zip) -> (city ; city)
rule phi4: (phn ; Mphn) -> (FN ; FN) when type = "2"
rule phi5: (phn ; Mphn) -> (LN ; LN) when type = "2"
rule phi6: (AC, phn ; AC, Hphn) -> (str ; str) when type = "1", AC != "0800"
rule phi7: (AC, phn ; AC, Hphn) -> (city ; city) when type = "1", AC != "0800"
rule phi8: (AC, phn ; AC, Hphn) -> (zip ; zip) when type = "1", AC != "0800"
rule phi9: (AC ; AC) -> (city ; city) when AC = "0800"
`

// Sigma0 parses and returns the rule set Σ0 over (SchemaR, SchemaRm).
func Sigma0() *rule.Set {
	s, err := rule.ParseRuleSet(SchemaR(), SchemaRm(), RulesDSL)
	if err != nil {
		panic("paperex: parsing Σ0: " + err.Error())
	}
	return s
}
