// Package rule implements editing rules (eRs) as defined in §2 of the
// paper: ϕ = ((X, Xm) → (B, Bm), tp[Xp]) over a pair of schemas (R, Rm).
// It also provides rule sets Σ, a textual rule DSL with parser, and the
// rule dependency graph of §5.1 used by TransFix.
package rule

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
	"repro/internal/relation"
)

// Rule is an editing rule ((X, Xm) → (B, Bm), tp[Xp]).
//
// X (lhs) and Xm (lhsm) are equal-length lists of attribute positions in R
// and Rm respectively; B (rhs) is an R attribute outside X; Bm (rhsm) is an
// Rm attribute; tp is a pattern tuple over R attributes Xp.
//
// Semantics (§2): ϕ and a master tuple tm apply to t, written
// t →(ϕ,tm) t', iff t ≈ tp, t[X] = tm[Xm]; then t' is t with
// t[B] := tm[Bm].
type Rule struct {
	name   string
	r, rm  *relation.Schema
	x, xm  []int
	b, bm  int
	tp     pattern.Tuple
	xSet   relation.AttrSet
	xpSet  relation.AttrSet
	xxpSet relation.AttrSet // X ∪ Xp, the attributes that must be validated
	// conf is the rule's confidence weight in (0, 1]: the fraction of
	// evidence supporting the rule when it was mined from (possibly
	// dirty) data. Hand-written rules and exact mined dependencies carry
	// 1 — the paper's unweighted semantics; see WithConfidence.
	conf float64
}

// New constructs and validates an editing rule.
func New(name string, r, rm *relation.Schema, x, xm []int, b, bm int, tp pattern.Tuple) (*Rule, error) {
	if r == nil || rm == nil {
		return nil, fmt.Errorf("rule %s: nil schema", name)
	}
	if len(x) != len(xm) {
		return nil, fmt.Errorf("rule %s: |X| = %d but |Xm| = %d", name, len(x), len(xm))
	}
	seen := map[int]bool{}
	for _, p := range x {
		if p < 0 || p >= r.Arity() {
			return nil, fmt.Errorf("rule %s: X position %d out of range for %s", name, p, r.Name())
		}
		if seen[p] {
			return nil, fmt.Errorf("rule %s: duplicate attribute %s in X", name, r.Attr(p).Name)
		}
		seen[p] = true
	}
	for _, p := range xm {
		if p < 0 || p >= rm.Arity() {
			return nil, fmt.Errorf("rule %s: Xm position %d out of range for %s", name, p, rm.Name())
		}
	}
	if b < 0 || b >= r.Arity() {
		return nil, fmt.Errorf("rule %s: B position %d out of range for %s", name, b, r.Name())
	}
	if seen[b] {
		return nil, fmt.Errorf("rule %s: B = %s must not occur in X", name, r.Attr(b).Name)
	}
	if bm < 0 || bm >= rm.Arity() {
		return nil, fmt.Errorf("rule %s: Bm position %d out of range for %s", name, bm, rm.Name())
	}
	for _, p := range tp.Positions() {
		if p >= r.Arity() {
			return nil, fmt.Errorf("rule %s: pattern position %d out of range for %s", name, p, r.Name())
		}
	}
	ru := &Rule{
		name: name, r: r, rm: rm,
		x: append([]int(nil), x...), xm: append([]int(nil), xm...),
		b: b, bm: bm, tp: tp,
		conf: 1,
	}
	ru.xSet = relation.NewAttrSet(x...)
	ru.xpSet = tp.AttrSet()
	ru.xxpSet = ru.xSet.Union(ru.xpSet)
	return ru, nil
}

// MustNew is New that panics on error; for fixtures and generated rules.
func MustNew(name string, r, rm *relation.Schema, x, xm []int, b, bm int, tp pattern.Tuple) *Rule {
	ru, err := New(name, r, rm, x, xm, b, bm, tp)
	if err != nil {
		panic(err)
	}
	return ru
}

// Name returns the rule's identifier (may be empty).
func (ru *Rule) Name() string { return ru.name }

// Schema returns the input schema R.
func (ru *Rule) Schema() *relation.Schema { return ru.r }

// MasterSchema returns the master schema Rm.
func (ru *Rule) MasterSchema() *relation.Schema { return ru.rm }

// LHS returns the positions of X in R (copy).
func (ru *Rule) LHS() []int { return append([]int(nil), ru.x...) }

// LHSM returns the positions of Xm in Rm (copy).
func (ru *Rule) LHSM() []int { return append([]int(nil), ru.xm...) }

// LHSRef returns the internal X position slice without copying. Hot paths
// only (master probes, suggestion loops); callers must not mutate it.
func (ru *Rule) LHSRef() []int { return ru.x }

// LHSMRef returns the internal Xm position slice without copying. Hot paths
// only; callers must not mutate it.
func (ru *Rule) LHSMRef() []int { return ru.xm }

// RHS returns the position of B in R.
func (ru *Rule) RHS() int { return ru.b }

// RHSM returns the position of Bm in Rm.
func (ru *Rule) RHSM() int { return ru.bm }

// Pattern returns the pattern tuple tp[Xp].
func (ru *Rule) Pattern() pattern.Tuple { return ru.tp }

// LHSSet returns X as a set.
func (ru *Rule) LHSSet() relation.AttrSet { return ru.xSet.Clone() }

// PatternSet returns Xp as a set.
func (ru *Rule) PatternSet() relation.AttrSet { return ru.xpSet.Clone() }

// PremiseSet returns X ∪ Xp — the attributes that must be validated before
// the rule may fire against a region.
func (ru *Rule) PremiseSet() relation.AttrSet { return ru.xxpSet.Clone() }

// premise returns the internal premise set without copying (hot paths).
func (ru *Rule) premise() relation.AttrSet { return ru.xxpSet }

// MasterPosFor returns the Rm position paired with R position p in (X, Xm),
// i.e. λϕ of §5.2 on a single attribute; ok=false when p ∉ X.
func (ru *Rule) MasterPosFor(p int) (int, bool) {
	for i, q := range ru.x {
		if q == p {
			return ru.xm[i], true
		}
	}
	return -1, false
}

// IsDirect reports whether Xp ⊆ X, the "direct fix" restriction of §4
// (special case 5) under which consistency and coverage are PTIME (Thm 5).
func (ru *Rule) IsDirect() bool { return ru.xSet.ContainsSet(ru.xpSet) }

// Normalize returns an equivalent rule whose pattern contains no wildcard
// cells (the normal form of §2).
func (ru *Rule) Normalize() *Rule {
	n := ru.tp.Normalize()
	if n.Len() == ru.tp.Len() {
		return ru
	}
	return MustNew(ru.name, ru.r, ru.rm, ru.x, ru.xm, ru.b, ru.bm, n)
}

// WithPattern returns a copy of the rule carrying pattern tp instead; used
// for the refined rules ϕ+ of §5.2. The base rule is already validated and
// its position slices immutable, so only the new pattern is checked and
// the (X, Xm) state is shared — this runs once per kept rule per
// ApplicableRules call, so it must not re-run New's full validation.
func (ru *Rule) WithPattern(tp pattern.Tuple) (*Rule, error) {
	for i := 0; i < tp.Len(); i++ {
		if pos, _ := tp.CellAt(i); pos >= ru.r.Arity() {
			return nil, fmt.Errorf("rule %s+: pattern position %d out of range for %s", ru.name, pos, ru.r.Name())
		}
	}
	out := *ru
	out.name = ru.name + "+"
	out.tp = tp
	out.xpSet = tp.AttrSet()
	out.xxpSet = ru.xSet.Union(out.xpSet)
	return &out, nil
}

// Confidence returns the rule's confidence weight in (0, 1]. 1 means the
// rule is taken as ground truth (hand-written, or mined with zero
// violations); smaller values record how much of the mining evidence the
// rule explains — 1 − violations/|Dm| for a dependency mined from dirty
// master data. Suggest uses these weights to rank otherwise-tied
// suggestions; fix semantics are unaffected.
func (ru *Rule) Confidence() float64 { return ru.conf }

// WithConfidence returns a copy of the rule carrying confidence c
// (0 < c ≤ 1). Like WithPattern this shares the validated (X, Xm) state;
// the rule name is unchanged, so a weighted rule prints and serializes
// under its original identity.
func (ru *Rule) WithConfidence(c float64) (*Rule, error) {
	if !(c > 0 && c <= 1) {
		return nil, fmt.Errorf("rule %s: confidence %v outside (0, 1]", ru.name, c)
	}
	out := *ru
	out.conf = c
	return &out, nil
}

// MatchesPattern reports t ≈ tp for this rule's pattern.
func (ru *Rule) MatchesPattern(t relation.Tuple) bool { return ru.tp.Matches(t) }

// Applies reports whether (ϕ, tm) apply to t: t ≈ tp and t[X] = tm[Xm].
func (ru *Rule) Applies(t, tm relation.Tuple) bool {
	return ru.tp.Matches(t) && t.ProjectMatches(ru.x, tm, ru.xm)
}

// Apply performs t[B] := tm[Bm] in place, assuming Applies holds, and
// returns whether the value actually changed.
func (ru *Rule) Apply(t, tm relation.Tuple) bool {
	v := tm[ru.bm]
	if t[ru.b].Equal(v) {
		return false
	}
	t[ru.b] = v
	return true
}

// String renders the rule in the paper's notation using attribute names.
func (ru *Rule) String() string {
	xn := make([]string, len(ru.x))
	xmn := make([]string, len(ru.xm))
	for i := range ru.x {
		xn[i] = ru.r.Attr(ru.x[i]).Name
		xmn[i] = ru.rm.Attr(ru.xm[i]).Name
	}
	s := fmt.Sprintf("%s: (([%s], [%s]) -> (%s, %s), tp%s)",
		ru.name,
		strings.Join(xn, ", "), strings.Join(xmn, ", "),
		ru.r.Attr(ru.b).Name, ru.rm.Attr(ru.bm).Name,
		ru.tp.Format(ru.r))
	if ru.conf != 1 {
		s += fmt.Sprintf(" weight %.4g", ru.conf)
	}
	return s
}
