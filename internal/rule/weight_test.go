package rule

import (
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/relation"
)

func weightSchemas() (*relation.Schema, *relation.Schema) {
	r := relation.StringSchema("R", "a", "b", "c", "weight")
	rm := relation.StringSchema("Rm", "a", "b", "c", "weight")
	return r, rm
}

func TestConfidenceDefaultsToOne(t *testing.T) {
	r, rm := weightSchemas()
	ru, err := ParseRule(r, rm, `rule t1: (a ; a) -> (b ; b)`)
	if err != nil {
		t.Fatal(err)
	}
	if ru.Confidence() != 1 {
		t.Fatalf("default confidence = %v, want 1", ru.Confidence())
	}
	set := MustNewSet(r, rm, ru)
	if set.Weighted() {
		t.Fatal("set of confidence-1 rules must not report Weighted")
	}
	if strings.Contains(ru.String(), "weight") {
		t.Fatalf("unweighted String must not mention weight: %s", ru)
	}
}

func TestParseWeightClause(t *testing.T) {
	r, rm := weightSchemas()
	ru, err := ParseRule(r, rm, `rule t1: (a ; a) -> (b ; b) weight 0.93`)
	if err != nil {
		t.Fatal(err)
	}
	if ru.Confidence() != 0.93 {
		t.Fatalf("confidence = %v, want 0.93", ru.Confidence())
	}
	if !MustNewSet(r, rm, ru).Weighted() {
		t.Fatal("set with a 0.93-confidence rule must report Weighted")
	}
	if !strings.Contains(ru.String(), "weight 0.93") {
		t.Fatalf("weighted String must carry the weight: %s", ru)
	}

	// Weight composes with a when clause.
	ru, err = ParseRule(r, rm, `rule t2: (a ; a) -> (b ; b) when c = "x" weight 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if ru.Confidence() != 0.5 || ru.Pattern().Len() != 1 {
		t.Fatalf("confidence %v pattern len %d, want 0.5 and 1", ru.Confidence(), ru.Pattern().Len())
	}
}

func TestParseWeightDoesNotEatConditions(t *testing.T) {
	r, rm := weightSchemas()
	// An attribute literally named "weight" used in a condition must not
	// be mistaken for a weight clause.
	ru, err := ParseRule(r, rm, `rule t1: (a ; a) -> (b ; b) when weight = "3"`)
	if err != nil {
		t.Fatal(err)
	}
	if ru.Confidence() != 1 || ru.Pattern().Len() != 1 {
		t.Fatalf("confidence %v pattern len %d, want 1 and 1", ru.Confidence(), ru.Pattern().Len())
	}
}

func TestParseWeightRejectsBadValues(t *testing.T) {
	r, rm := weightSchemas()
	for _, line := range []string{
		`rule t1: (a ; a) -> (b ; b) weight nope`,
		`rule t1: (a ; a) -> (b ; b) weight 0`,
		`rule t1: (a ; a) -> (b ; b) weight 1.5`,
		`rule t1: (a ; a) -> (b ; b) weight -0.2`,
	} {
		if _, err := ParseRule(r, rm, line); err == nil {
			t.Errorf("want error for %q", line)
		}
	}
}

func TestWithConfidence(t *testing.T) {
	r, rm := weightSchemas()
	base := MustNew("t1", r, rm, []int{0}, []int{0}, 1, 1, pattern.Empty())
	w, err := base.WithConfidence(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if base.Confidence() != 1 {
		t.Fatal("WithConfidence must not mutate the receiver")
	}
	if w.Confidence() != 0.7 || w.Name() != "t1" {
		t.Fatalf("got conf %v name %s", w.Confidence(), w.Name())
	}
	for _, bad := range []float64{0, -1, 1.01} {
		if _, err := base.WithConfidence(bad); err == nil {
			t.Errorf("WithConfidence(%v) should fail", bad)
		}
	}
	// Weight survives refinement: WithPattern copies the confidence.
	refined, err := w.WithPattern(w.Pattern())
	if err != nil {
		t.Fatal(err)
	}
	if refined.Confidence() != 0.7 {
		t.Fatalf("WithPattern dropped confidence: %v", refined.Confidence())
	}
}
