package rule

import (
	"fmt"
	"strings"
)

// DepGraph is the dependency graph G(V, E) of a rule set (§5.1): one node
// per rule; an edge (u, v) when Bu ∈ (Xv ∪ Xpv), i.e. applying ϕu may
// enable ϕv. TransFix walks this graph to order rule applications; it is
// computed once per Σ and reused for every input tuple.
type DepGraph struct {
	set *Set
	out [][]int // adjacency: out[u] = nodes v with edge (u, v)
	in  [][]int // reverse adjacency
}

// NewDepGraph computes the dependency graph of Σ.
func NewDepGraph(s *Set) *DepGraph {
	n := s.Len()
	g := &DepGraph{set: s, out: make([][]int, n), in: make([][]int, n)}
	for u := 0; u < n; u++ {
		bu := s.Rule(u).RHS()
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if s.Rule(v).premise().Has(bu) {
				g.out[u] = append(g.out[u], v)
				g.in[v] = append(g.in[v], u)
			}
		}
	}
	return g
}

// Set returns the rule set the graph was built from.
func (g *DepGraph) Set() *Set { return g.set }

// Len returns the number of nodes (rules).
func (g *DepGraph) Len() int { return len(g.out) }

// Successors returns the nodes enabled by applying rule u (copy).
func (g *DepGraph) Successors(u int) []int { return append([]int(nil), g.out[u]...) }

// Predecessors returns the nodes whose application may enable rule v (copy).
func (g *DepGraph) Predecessors(v int) []int { return append([]int(nil), g.in[v]...) }

// HasEdge reports whether (u, v) ∈ E.
func (g *DepGraph) HasEdge(u, v int) bool {
	for _, w := range g.out[u] {
		if w == v {
			return true
		}
	}
	return false
}

// String renders the graph as "u -> v" lines using rule names.
func (g *DepGraph) String() string {
	var b strings.Builder
	for u, succ := range g.out {
		for _, v := range succ {
			fmt.Fprintf(&b, "%s -> %s\n", g.set.Rule(u).Name(), g.set.Rule(v).Name())
		}
	}
	return b.String()
}
