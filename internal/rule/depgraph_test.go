package rule_test

import (
	"strings"
	"testing"

	"repro/internal/paperex"
	"repro/internal/rule"
)

// TestDepGraphFig4 checks the dependency graph of Σ0 against Fig. 4 of the
// paper: applying ϕ1 (fixing AC) enables ϕ6–ϕ9 (which read AC), and
// applying ϕ8 (fixing zip) enables ϕ1–ϕ3 (which read zip). No other rule
// enables anything.
func TestDepGraphFig4(t *testing.T) {
	sigma := paperex.Sigma0()
	g := rule.NewDepGraph(sigma)
	if g.Len() != 9 {
		t.Fatalf("graph has %d nodes", g.Len())
	}
	idx := map[string]int{}
	for i := 0; i < sigma.Len(); i++ {
		idx[sigma.Rule(i).Name()] = i
	}
	wantEdges := map[string][]string{
		"phi1": {"phi6", "phi7", "phi8", "phi9"}, // AC feeds ϕ6–ϕ9
		"phi8": {"phi1", "phi2", "phi3"},         // zip feeds ϕ1–ϕ3
	}
	for u := 0; u < g.Len(); u++ {
		name := sigma.Rule(u).Name()
		var got []string
		for _, v := range g.Successors(u) {
			got = append(got, sigma.Rule(v).Name())
		}
		want := wantEdges[name]
		if len(got) != len(want) {
			t.Errorf("%s: successors %v, want %v", name, got, want)
			continue
		}
		wantSet := map[string]bool{}
		for _, w := range want {
			wantSet[w] = true
		}
		for _, w := range got {
			if !wantSet[w] {
				t.Errorf("%s: unexpected edge to %s", name, w)
			}
		}
	}
	if !g.HasEdge(idx["phi1"], idx["phi9"]) {
		t.Error("HasEdge(ϕ1, ϕ9) should hold")
	}
	if g.HasEdge(idx["phi9"], idx["phi1"]) {
		t.Error("HasEdge(ϕ9, ϕ1) should not hold")
	}
	preds := g.Predecessors(idx["phi1"])
	if len(preds) != 1 || preds[0] != idx["phi8"] {
		t.Errorf("Predecessors(ϕ1) = %v", preds)
	}
	if g.Set() != sigma {
		t.Error("Set() must return the construction set")
	}
	if !strings.Contains(g.String(), "phi1 -> phi6") {
		t.Errorf("String() = %q", g.String())
	}
}

// TestDepGraphNoSelfLoops: a rule whose rhs is in its own premise cannot
// exist (B ∉ X is enforced), but B may appear in the pattern of another
// rule; self-edges are excluded by construction.
func TestDepGraphNoSelfLoops(t *testing.T) {
	g := rule.NewDepGraph(paperex.Sigma0())
	for u := 0; u < g.Len(); u++ {
		if g.HasEdge(u, u) {
			t.Errorf("self loop at node %d", u)
		}
	}
}
