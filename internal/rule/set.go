package rule

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pattern"
	"repro/internal/relation"
)

// Set is a set Σ of editing rules over a shared (R, Rm) schema pair.
type Set struct {
	r, rm *relation.Schema
	rules []*Rule
}

// NewSet builds a rule set, checking every rule shares the schema pair.
func NewSet(r, rm *relation.Schema, rules ...*Rule) (*Set, error) {
	s := &Set{r: r, rm: rm}
	for _, ru := range rules {
		if err := s.Add(ru); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNewSet is NewSet that panics on error.
func MustNewSet(r, rm *relation.Schema, rules ...*Rule) *Set {
	s, err := NewSet(r, rm, rules...)
	if err != nil {
		panic(err)
	}
	return s
}

// Grow reserves capacity for n further rules — callers building refined
// sets per round (ApplicableRules) size once instead of growing the slice
// append by append.
func (s *Set) Grow(n int) {
	if free := cap(s.rules) - len(s.rules); free < n {
		rules := make([]*Rule, len(s.rules), len(s.rules)+n)
		copy(rules, s.rules)
		s.rules = rules
	}
}

// Add appends a rule after checking schema compatibility.
func (s *Set) Add(ru *Rule) error {
	if !ru.Schema().Equal(s.r) || !ru.MasterSchema().Equal(s.rm) {
		return fmt.Errorf("rule %s: schema mismatch with set over (%s, %s)", ru.Name(), s.r.Name(), s.rm.Name())
	}
	s.rules = append(s.rules, ru)
	return nil
}

// Schema returns the input schema R.
func (s *Set) Schema() *relation.Schema { return s.r }

// MasterSchema returns the master schema Rm.
func (s *Set) MasterSchema() *relation.Schema { return s.rm }

// Len returns the number of rules.
func (s *Set) Len() int { return len(s.rules) }

// Rule returns the i-th rule.
func (s *Set) Rule(i int) *Rule { return s.rules[i] }

// Rules returns the backing rule slice (not a copy).
func (s *Set) Rules() []*Rule { return s.rules }

// Weighted reports whether any rule carries a confidence weight below 1.
// Unweighted sets — every hand-written Σ, and exact mined ones — keep the
// paper's original semantics everywhere; weighted behavior (confidence
// tie-breaking in Suggest) switches on only when this is true.
func (s *Set) Weighted() bool {
	for _, ru := range s.rules {
		if ru.conf != 1 {
			return true
		}
	}
	return false
}

// LHS returns lhs(Σ) = ∪ lhs(ϕ) as an attribute set over R.
func (s *Set) LHS() relation.AttrSet {
	var out relation.AttrSet
	for _, ru := range s.rules {
		out.AddAll(ru.x)
	}
	return out
}

// RHS returns rhs(Σ) = ∪ {rhs(ϕ)} as an attribute set over R.
func (s *Set) RHS() relation.AttrSet {
	var out relation.AttrSet
	for _, ru := range s.rules {
		out.Add(ru.b)
	}
	return out
}

// PatternAttrs returns ∪ lhsp(ϕ) over R.
func (s *Set) PatternAttrs() relation.AttrSet {
	var out relation.AttrSet
	for _, ru := range s.rules {
		out = out.Union(ru.xpSet)
	}
	return out
}

// Attrs returns all R attributes mentioned anywhere in Σ (X ∪ Xp ∪ B).
func (s *Set) Attrs() relation.AttrSet {
	out := s.LHS().Union(s.PatternAttrs())
	for _, ru := range s.rules {
		out.Add(ru.b)
	}
	return out
}

// FreeAttrs returns the R attributes not fixable by any rule (R \ rhs(Σ)).
// These must always be user-validated for a certain fix to exist — like
// `item` in Examples 8–9 of the paper.
func (s *Set) FreeAttrs() relation.AttrSet {
	rhs := s.RHS()
	var out relation.AttrSet
	for p := 0; p < s.r.Arity(); p++ {
		if !rhs.Has(p) {
			out.Add(p)
		}
	}
	return out
}

// RulesFixing returns the rules whose rhs is attribute position b.
func (s *Set) RulesFixing(b int) []*Rule {
	var out []*Rule
	for _, ru := range s.rules {
		if ru.b == b {
			out = append(out, ru)
		}
	}
	return out
}

// Normalize returns a set with every rule in normal form.
func (s *Set) Normalize() *Set {
	out := &Set{r: s.r, rm: s.rm, rules: make([]*Rule, len(s.rules))}
	for i, ru := range s.rules {
		out.rules[i] = ru.Normalize()
	}
	return out
}

// IsDirect reports whether every rule satisfies the direct-fix restriction.
func (s *Set) IsDirect() bool {
	for _, ru := range s.rules {
		if !ru.IsDirect() {
			return false
		}
	}
	return true
}

// ActiveDomain collects, per R attribute position, the set of constants
// appearing in Σ's patterns. Together with master-data values this forms
// the active domain used by the instantiation-based checkers (§4 proofs).
func (s *Set) ActiveDomain() map[int][]relation.Value {
	seen := map[int]map[relation.Value]bool{}
	for _, ru := range s.rules {
		tp := ru.tp
		for i := 0; i < tp.Len(); i++ {
			pos, cell := tp.CellAt(i)
			if cell.Kind == pattern.Wildcard { // contributes no constant
				continue
			}
			if seen[pos] == nil {
				seen[pos] = map[relation.Value]bool{}
			}
			seen[pos][cell.Val] = true
		}
	}
	out := make(map[int][]relation.Value, len(seen))
	for pos, vs := range seen {
		for v := range vs {
			out[pos] = append(out[pos], v)
		}
		sortValues(out[pos])
	}
	return out
}

// String renders the rule set one rule per line.
func (s *Set) String() string {
	var b strings.Builder
	for i, ru := range s.rules {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(ru.String())
	}
	return b.String()
}

func sortValues(vs []relation.Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Less(vs[j]) })
}
