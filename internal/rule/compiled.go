package rule

import "repro/internal/relation"

// This file implements the compiled closure engine: a rule set is compiled
// once into the counter-based layout of LINCLOSURE (Beeri & Bernstein's
// linear-time FD closure), replacing the naive O(|Σ|²) fixpoint that
// region derivation and procedure Suggest (§5) would otherwise re-run from
// scratch for every candidate attribute of every greedy round.
//
// Layout: per attribute, the list of compiled rules whose premise (X ∪ Xp)
// contains it; per rule, a remaining-premise counter seeded to |premise|
// and its rhs attribute. Closing a set is then one pass: pop an attribute,
// decrement the counters of the rules whose premise mentions it, and fire
// a rule — push its rhs — when its counter hits zero. O(|Σ| + arity +
// total premise size) per closure instead of O(|Σ|²).
//
// All mutable state lives in ClosureScratch (epoch-stamped membership, the
// counter array, the work stack), so a compiled program is immutable and
// safe for concurrent use with per-caller scratch, and repeated closures
// allocate nothing. GainAll additionally evaluates the closure gain of
// *every* candidate attribute in one pass: the base closure runs once, and
// each candidate propagates only its marginal consequences, which are
// undone in O(work done) via an explicit trial log.

// Compiled is an immutable closure program for a fixed premise/rhs
// structure. Build one with Set.Compile or CompileClosure.
type Compiled struct {
	arity   int
	premLen []int32   // per rule, |premise|
	rhs     []int32   // per rule, rhs attribute
	occ     [][]int32 // per attribute, rules whose premise contains it
	empty   []int32   // rules with an empty premise: fire unconditionally
}

// reset prepares c for compilation at the given arity, truncating (but
// keeping) any storage from a previous compilation.
func (c *Compiled) reset(arity int) {
	c.arity = arity
	c.premLen = c.premLen[:0]
	c.rhs = c.rhs[:0]
	if cap(c.occ) < arity {
		c.occ = make([][]int32, arity)
	} else {
		c.occ = c.occ[:arity]
		for i := range c.occ {
			c.occ[i] = c.occ[i][:0]
		}
	}
	c.empty = c.empty[:0]
}

// addRule appends one (premise → rhs) pair to the program.
func (c *Compiled) addRule(prem relation.AttrSet, rhs int) {
	idx := int32(len(c.premLen))
	n := int32(0)
	prem.Range(func(p int) bool {
		c.occ[p] = append(c.occ[p], idx)
		n++
		return true
	})
	c.premLen = append(c.premLen, n)
	c.rhs = append(c.rhs, int32(rhs))
	if n == 0 {
		c.empty = append(c.empty, idx)
	}
}

// CompileClosure builds a closure program from raw (premise → rhs) pairs —
// the generic entry point, also used by the §4 checker's validator
// reachability. Premise positions and rhs values must lie in [0, arity).
func CompileClosure(arity int, premises []relation.AttrSet, rhs []int) *Compiled {
	c := &Compiled{}
	c.reset(arity)
	for i, prem := range premises {
		c.addRule(prem, rhs[i])
	}
	return c
}

// Compile compiles the set into a closure program. enabled, when non-nil,
// is aligned with Rules() and gates which rules participate (the per-rule
// master-support bit of §5); disabled rules are dropped at compile time so
// closures never touch them.
func (s *Set) Compile(enabled []bool) *Compiled {
	return s.CompileInto(enabled, nil)
}

// CompileInto is Compile reusing c's storage (nil allocates a fresh
// program). Suggest compiles the refined set Σ_t[Z] on every call, so the
// program rides in pooled scratch and steady-state compilation allocates
// only when a posting list outgrows its previous capacity.
func (s *Set) CompileInto(enabled []bool, c *Compiled) *Compiled {
	if c == nil {
		c = &Compiled{}
	}
	c.reset(s.r.Arity())
	for i, ru := range s.rules {
		if enabled != nil && !enabled[i] {
			continue
		}
		c.addRule(ru.xxpSet, ru.b)
	}
	return c
}

// ClosureScratch holds the mutable state of closure computation: reuse one
// per goroutine across any number of Closure/GainAll calls (it grows to
// fit whichever program it is used with). The zero value is not ready;
// obtain one with NewClosureScratch.
type ClosureScratch struct {
	epoch      uint32
	member     []uint32 // member[a] == epoch ⟺ a is in the current closure
	remaining  []int32  // per rule, premise attributes not yet in the closure
	queue      []int32
	trialRules []int32 // decrement log of the current GainAll trial
	trialAttrs []int32 // attributes added by the current GainAll trial
	gains      []int
}

// NewClosureScratch returns an empty scratch.
func NewClosureScratch() *ClosureScratch { return &ClosureScratch{} }

// begin sizes the scratch for c and opens a fresh epoch (invalidating the
// previous closure's membership in O(1)).
func (sc *ClosureScratch) begin(c *Compiled) {
	if len(sc.member) < c.arity {
		sc.member = make([]uint32, c.arity)
		sc.epoch = 0
	}
	if cap(sc.remaining) < len(c.premLen) {
		sc.remaining = make([]int32, len(c.premLen))
	}
	sc.remaining = sc.remaining[:len(c.premLen)]
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale stamps could collide, so reset
		for i := range sc.member {
			sc.member[i] = 0
		}
		sc.epoch = 1
	}
}

// Has reports whether attribute a is in the closure most recently computed
// into sc. After GainAll it reflects the base closure (trials are undone).
func (sc *ClosureScratch) Has(a int) bool {
	return a >= 0 && a < len(sc.member) && sc.member[a] == sc.epoch
}

// Closure computes the closure of base under the program and returns its
// size. Membership is available through sc.Has until the next call.
// Positions outside [0, arity) — legal in callers' AttrSets, impossible in
// premises — count toward the size but cannot fire rules.
func (c *Compiled) Closure(base relation.AttrSet, sc *ClosureScratch) int {
	sc.begin(c)
	copy(sc.remaining, c.premLen)
	size := 0
	q := sc.queue[:0]
	base.Range(func(p int) bool {
		if p >= c.arity {
			size++
			return true
		}
		if sc.member[p] != sc.epoch {
			sc.member[p] = sc.epoch
			size++
			q = append(q, int32(p))
		}
		return true
	})
	for _, r := range c.empty {
		if b := c.rhs[r]; sc.member[b] != sc.epoch {
			sc.member[b] = sc.epoch
			size++
			q = append(q, b)
		}
	}
	for len(q) > 0 {
		a := q[len(q)-1]
		q = q[:len(q)-1]
		for _, r := range c.occ[a] {
			sc.remaining[r]--
			if sc.remaining[r] == 0 {
				if b := c.rhs[r]; sc.member[b] != sc.epoch {
					sc.member[b] = sc.epoch
					size++
					q = append(q, b)
				}
			}
		}
	}
	sc.queue = q[:0]
	return size
}

// GainAll computes |closure(base)| plus, for every attribute a, the size
// of closure(base ∪ {a}) — the greedy step of Suggest and growAndMinimize
// in one compiled pass instead of one full closure per candidate. The
// returned slice aliases sc and is valid until the next use of sc; entries
// for attributes already in the base closure equal the base size (adding
// them changes nothing).
func (c *Compiled) GainAll(base relation.AttrSet, sc *ClosureScratch) (baseLen int, gains []int) {
	baseLen = c.Closure(base, sc)
	if cap(sc.gains) < c.arity {
		sc.gains = make([]int, c.arity)
	}
	gains = sc.gains[:c.arity]
	for a := 0; a < c.arity; a++ {
		if sc.member[a] == sc.epoch {
			gains[a] = baseLen
			continue
		}
		gains[a] = baseLen + c.trial(a, sc)
	}
	return baseLen, gains
}

// trial propagates candidate attribute a from the saturated base closure,
// returns how many attributes that adds, and undoes every counter
// decrement and membership stamp so the next trial starts from the same
// base state. Cost is proportional to the work the candidate causes.
func (c *Compiled) trial(a int, sc *ClosureScratch) int {
	sc.trialAttrs = append(sc.trialAttrs[:0], int32(a))
	sc.trialRules = sc.trialRules[:0]
	sc.member[a] = sc.epoch
	q := append(sc.queue[:0], int32(a))
	for len(q) > 0 {
		x := q[len(q)-1]
		q = q[:len(q)-1]
		for _, r := range c.occ[x] {
			sc.remaining[r]--
			sc.trialRules = append(sc.trialRules, r)
			if sc.remaining[r] == 0 {
				if b := c.rhs[r]; sc.member[b] != sc.epoch {
					sc.member[b] = sc.epoch
					sc.trialAttrs = append(sc.trialAttrs, b)
					q = append(q, b)
				}
			}
		}
	}
	gain := len(sc.trialAttrs)
	for _, r := range sc.trialRules {
		sc.remaining[r]++
	}
	for _, x := range sc.trialAttrs {
		sc.member[x] = 0 // epoch is never 0, so 0 means "not a member"
	}
	sc.queue = q[:0]
	return gain
}
