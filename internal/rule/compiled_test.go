package rule_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// naiveClosure is the O(n²) fixpoint over raw (premise → rhs) pairs — the
// oracle the compiled engine must match exactly.
func naiveClosure(arity int, prems []relation.AttrSet, rhs []int, base relation.AttrSet) relation.AttrSet {
	out := base.Clone()
	for changed := true; changed; {
		changed = false
		for i, prem := range prems {
			if out.Has(rhs[i]) {
				continue
			}
			if out.ContainsSet(prem) {
				out.Add(rhs[i])
				changed = true
			}
		}
	}
	return out
}

func randomProgram(rng *rand.Rand) (arity int, prems []relation.AttrSet, rhs []int) {
	arity = 2 + rng.Intn(9)
	n := rng.Intn(12)
	for i := 0; i < n; i++ {
		var prem relation.AttrSet
		for _, p := range rng.Perm(arity)[:rng.Intn(3)] {
			prem.Add(p)
		}
		prems = append(prems, prem)
		rhs = append(rhs, rng.Intn(arity))
	}
	return arity, prems, rhs
}

// TestCompiledClosureProperty: on random programs and bases, the compiled
// closure size and membership equal the naive fixpoint, with one scratch
// shared across all iterations (exercising epoch reuse and regrowth).
func TestCompiledClosureProperty(t *testing.T) {
	sc := rule.NewClosureScratch()
	for seed := 0; seed < 500; seed++ {
		rng := rand.New(rand.NewSource(int64(5_000_000 + seed)))
		arity, prems, rhs := randomProgram(rng)
		prog := rule.CompileClosure(arity, prems, rhs)
		for trial := 0; trial < 4; trial++ {
			var base relation.AttrSet
			for _, p := range rng.Perm(arity)[:rng.Intn(arity+1)] {
				base.Add(p)
			}
			want := naiveClosure(arity, prems, rhs, base)
			got := prog.Closure(base, sc)
			if got != want.Len() {
				t.Fatalf("seed %d: closure size %d, want %d (base %v)", seed, got, want.Len(), base.Positions())
			}
			for a := 0; a < arity; a++ {
				if sc.Has(a) != want.Has(a) {
					t.Fatalf("seed %d: membership of %d is %v, want %v", seed, a, sc.Has(a), want.Has(a))
				}
			}
		}
	}
}

// TestCompiledGainAllProperty: GainAll's per-candidate sizes equal one
// naive closure per candidate, and the base state survives the trials
// (Has still reflects closure(base) afterwards).
func TestCompiledGainAllProperty(t *testing.T) {
	sc := rule.NewClosureScratch()
	for seed := 0; seed < 500; seed++ {
		rng := rand.New(rand.NewSource(int64(6_000_000 + seed)))
		arity, prems, rhs := randomProgram(rng)
		prog := rule.CompileClosure(arity, prems, rhs)
		var base relation.AttrSet
		for _, p := range rng.Perm(arity)[:rng.Intn(arity+1)] {
			base.Add(p)
		}
		baseWant := naiveClosure(arity, prems, rhs, base)
		baseLen, gains := prog.GainAll(base, sc)
		if baseLen != baseWant.Len() {
			t.Fatalf("seed %d: base size %d, want %d", seed, baseLen, baseWant.Len())
		}
		for a := 0; a < arity; a++ {
			trial := base.Clone()
			trial.Add(a)
			want := naiveClosure(arity, prems, rhs, trial).Len()
			if gains[a] != want {
				t.Fatalf("seed %d: gain of %d is %d, want %d", seed, a, gains[a], want)
			}
		}
		for a := 0; a < arity; a++ {
			if sc.Has(a) != baseWant.Has(a) {
				t.Fatalf("seed %d: post-GainAll membership of %d corrupted", seed, a)
			}
		}
	}
}

// TestSetCompileMatchesRules: compiling a Set gates rules by the enabled
// mask and reads premises as X ∪ Xp.
func TestSetCompileMatchesRules(t *testing.T) {
	r := relation.StringSchema("R", "A", "B", "C", "D")
	rm := relation.StringSchema("Rm", "MA", "MB", "MC", "MD")
	ruAB := rule.MustNew("ab", r, rm, []int{0}, []int{0}, 1, 1, pattern.Empty())
	ruBC := rule.MustNew("bc", r, rm, []int{1}, []int{1}, 2, 2,
		pattern.MustTuple([]int{3}, []pattern.Cell{pattern.EqStr("x")})) // premise B ∪ {D}
	sigma := rule.MustNewSet(r, rm, ruAB, ruBC)
	sc := rule.NewClosureScratch()

	prog := sigma.Compile(nil)
	if got := prog.Closure(relation.NewAttrSet(0), sc); got != 2 { // A → B; C needs D (pattern attr)
		t.Fatalf("closure(A) = %d, want 2", got)
	}
	if got := prog.Closure(relation.NewAttrSet(0, 3), sc); got != 4 {
		t.Fatalf("closure(A,D) = %d, want 4", got)
	}
	prog = sigma.Compile([]bool{true, false})
	if got := prog.Closure(relation.NewAttrSet(0, 3), sc); got != 3 { // bc disabled
		t.Fatalf("closure(A,D) with bc disabled = %d, want 3", got)
	}
}

// TestCompiledScratchSharedAcrossPrograms: one scratch serves programs of
// different sizes back to back (the Suggest path compiles a fresh refined
// program per call but pools scratch).
func TestCompiledScratchSharedAcrossPrograms(t *testing.T) {
	sc := rule.NewClosureScratch()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		arity, prems, rhs := randomProgram(rng)
		prog := rule.CompileClosure(arity, prems, rhs)
		var base relation.AttrSet
		base.Add(rng.Intn(arity))
		want := naiveClosure(arity, prems, rhs, base).Len()
		if got := prog.Closure(base, sc); got != want {
			t.Fatalf("iteration %d (%s): closure %d, want %d", i, fmt.Sprintf("arity=%d", arity), got, want)
		}
	}
}
