package rule_test

import (
	"strings"
	"testing"

	"repro/internal/paperex"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

func twoColSchemas() (*relation.Schema, *relation.Schema) {
	r := relation.StringSchema("R", "A", "B", "C")
	rm := relation.StringSchema("Rm", "Am", "Bm", "Cm")
	return r, rm
}

func TestNewRuleValidation(t *testing.T) {
	r, rm := twoColSchemas()
	cases := []struct {
		name   string
		x, xm  []int
		b, bm  int
		substr string
	}{
		{"len-mismatch", []int{0, 1}, []int{0}, 2, 2, "|X|"},
		{"dup-x", []int{0, 0}, []int{0, 1}, 2, 2, "duplicate"},
		{"b-in-x", []int{0}, []int{0}, 0, 1, "must not occur in X"},
		{"x-range", []int{9}, []int{0}, 2, 2, "out of range"},
		{"xm-range", []int{0}, []int{9}, 2, 2, "out of range"},
		{"b-range", []int{0}, []int{0}, 9, 2, "out of range"},
		{"bm-range", []int{0}, []int{0}, 2, 9, "out of range"},
	}
	for _, c := range cases {
		_, err := rule.New(c.name, r, rm, c.x, c.xm, c.b, c.bm, pattern.Empty())
		if err == nil || !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: want error containing %q, got %v", c.name, c.substr, err)
		}
	}
	if _, err := rule.New("ok", r, rm, []int{0}, []int{1}, 2, 2, pattern.Empty()); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
}

func TestRuleAppliesAndApply(t *testing.T) {
	r, rm := twoColSchemas()
	// ((A ; Am) -> (C ; Cm), tp[B] = "on")
	tp := pattern.MustTuple([]int{1}, []pattern.Cell{pattern.EqStr("on")})
	ru := rule.MustNew("r", r, rm, []int{0}, []int{0}, 2, 2, tp)

	tm := relation.StringTuple("k1", "x", "master-c")
	match := relation.StringTuple("k1", "on", "dirty")
	if !ru.Applies(match, tm) {
		t.Fatal("rule should apply")
	}
	if changed := ru.Apply(match, tm); !changed || match[2].Str() != "master-c" {
		t.Fatalf("Apply: changed=%v tuple=%v", changed, match)
	}
	// idempotent second application
	if changed := ru.Apply(match, tm); changed {
		t.Fatal("second Apply must report no change")
	}

	if ru.Applies(relation.StringTuple("k1", "off", "d"), tm) {
		t.Error("pattern mismatch must block application")
	}
	if ru.Applies(relation.StringTuple("k2", "on", "d"), tm) {
		t.Error("t[X] != tm[Xm] must block application")
	}
}

func TestRuleAccessorsAndSets(t *testing.T) {
	r, rm := twoColSchemas()
	tp := pattern.MustTuple([]int{1}, []pattern.Cell{pattern.EqStr("v")})
	ru := rule.MustNew("r", r, rm, []int{0}, []int{1}, 2, 2, tp)
	if got := ru.LHS(); len(got) != 1 || got[0] != 0 {
		t.Errorf("LHS = %v", got)
	}
	if got := ru.LHSM(); len(got) != 1 || got[0] != 1 {
		t.Errorf("LHSM = %v", got)
	}
	if ru.RHS() != 2 || ru.RHSM() != 2 {
		t.Error("RHS/RHSM wrong")
	}
	if !ru.PremiseSet().Equal(relation.NewAttrSet(0, 1)) {
		t.Errorf("PremiseSet = %v", ru.PremiseSet().Positions())
	}
	if mp, ok := ru.MasterPosFor(0); !ok || mp != 1 {
		t.Errorf("MasterPosFor(0) = %d,%v", mp, ok)
	}
	if _, ok := ru.MasterPosFor(2); ok {
		t.Error("MasterPosFor must fail for non-lhs attribute")
	}
}

func TestRuleIsDirect(t *testing.T) {
	r, rm := twoColSchemas()
	inX := pattern.MustTuple([]int{0}, []pattern.Cell{pattern.EqStr("v")})
	outX := pattern.MustTuple([]int{1}, []pattern.Cell{pattern.EqStr("v")})
	direct := rule.MustNew("d", r, rm, []int{0}, []int{0}, 2, 2, inX)
	indirect := rule.MustNew("i", r, rm, []int{0}, []int{0}, 2, 2, outX)
	if !direct.IsDirect() || indirect.IsDirect() {
		t.Error("IsDirect misclassifies")
	}
}

func TestRuleNormalize(t *testing.T) {
	r, rm := twoColSchemas()
	tp := pattern.MustTuple([]int{0, 1}, []pattern.Cell{pattern.Any, pattern.EqStr("v")})
	ru := rule.MustNew("n", r, rm, []int{2}, []int{2}, 0, 0, tp)
	n := ru.Normalize()
	if n.Pattern().Len() != 1 {
		t.Fatalf("normalized pattern len = %d", n.Pattern().Len())
	}
	// Already-normal rules are returned as-is.
	if n.Normalize() != n {
		t.Error("Normalize of normal rule should be identity")
	}
}

func TestSetAggregates(t *testing.T) {
	sigma := paperex.Sigma0()
	r := sigma.Schema()
	if sigma.Len() != 9 {
		t.Fatalf("Σ0 must have 9 rules, got %d", sigma.Len())
	}
	wantLHS := relation.NewAttrSet(r.MustPos("zip"), r.MustPos("phn"), r.MustPos("AC"))
	if !sigma.LHS().Equal(wantLHS) {
		t.Errorf("lhs(Σ0) = %v", sigma.LHS().Names(r))
	}
	wantRHS := relation.NewAttrSet(
		r.MustPos("AC"), r.MustPos("str"), r.MustPos("city"),
		r.MustPos("FN"), r.MustPos("LN"), r.MustPos("zip"))
	if !sigma.RHS().Equal(wantRHS) {
		t.Errorf("rhs(Σ0) = %v", sigma.RHS().Names(r))
	}
	// item, phn, type are not fixable by Σ0.
	wantFree := relation.NewAttrSet(r.MustPos("item"), r.MustPos("phn"), r.MustPos("type"))
	if !sigma.FreeAttrs().Equal(wantFree) {
		t.Errorf("free attrs = %v", sigma.FreeAttrs().Names(r))
	}
	if got := sigma.RulesFixing(r.MustPos("city")); len(got) != 3 {
		t.Errorf("rules fixing city = %d, want 3 (ϕ3, ϕ7, ϕ9)", len(got))
	}
	if sigma.IsDirect() {
		t.Error("Σ0 is not direct (ϕ4 has pattern attr type ∉ X)")
	}
}

func TestSetActiveDomain(t *testing.T) {
	sigma := paperex.Sigma0()
	r := sigma.Schema()
	ad := sigma.ActiveDomain()
	typeVals := ad[r.MustPos("type")]
	if len(typeVals) != 2 {
		t.Fatalf("type active domain = %v", typeVals)
	}
	acVals := ad[r.MustPos("AC")]
	if len(acVals) != 1 || acVals[0].Str() != "0800" {
		t.Fatalf("AC active domain = %v", acVals)
	}
}

func TestSetAddSchemaMismatch(t *testing.T) {
	r, rm := twoColSchemas()
	other := relation.StringSchema("Other", "Z")
	set := rule.MustNewSet(r, rm)
	bad := rule.MustNew("bad", other, rm, nil, nil, 0, 0, pattern.Empty())
	if err := set.Add(bad); err == nil {
		t.Error("Add must reject rules over a different schema")
	}
}

func TestRuleString(t *testing.T) {
	sigma := paperex.Sigma0()
	s := sigma.Rule(6).String() // phi7
	for _, want := range []string{"phi7", "AC", "phn", "Hphn", "city", "!0800"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if !strings.Contains(sigma.String(), "phi1") || !strings.Contains(sigma.String(), "phi9") {
		t.Error("Set.String must list all rules")
	}
}
