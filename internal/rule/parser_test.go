package rule_test

import (
	"strings"
	"testing"

	"repro/internal/paperex"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

func TestParseSigma0(t *testing.T) {
	r, rm := paperex.SchemaR(), paperex.SchemaRm()
	set, err := rule.ParseRuleSet(r, rm, paperex.RulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 9 {
		t.Fatalf("parsed %d rules, want 9", set.Len())
	}
	// Spot-check ϕ7: ((AC, phn ; AC, Hphn) -> (city ; city), type=1, AC≠0800
	phi7 := set.Rule(6)
	if phi7.Name() != "phi7" {
		t.Fatalf("rule 6 is %s", phi7.Name())
	}
	wantX := []int{r.MustPos("AC"), r.MustPos("phn")}
	gotX := phi7.LHS()
	if len(gotX) != 2 || gotX[0] != wantX[0] || gotX[1] != wantX[1] {
		t.Errorf("ϕ7 X = %v, want %v", gotX, wantX)
	}
	wantXm := []int{rm.MustPos("AC"), rm.MustPos("Hphn")}
	gotXm := phi7.LHSM()
	if gotXm[0] != wantXm[0] || gotXm[1] != wantXm[1] {
		t.Errorf("ϕ7 Xm = %v, want %v", gotXm, wantXm)
	}
	if phi7.RHS() != r.MustPos("city") || phi7.RHSM() != rm.MustPos("city") {
		t.Error("ϕ7 rhs wrong")
	}
	cell, ok := phi7.Pattern().CellFor(r.MustPos("AC"))
	if !ok || cell.Kind != pattern.NotConst || cell.Val.Str() != "0800" {
		t.Errorf("ϕ7 AC pattern cell = %v", cell)
	}
	cell, ok = phi7.Pattern().CellFor(r.MustPos("type"))
	if !ok || cell.Kind != pattern.Const || cell.Val.Str() != "1" {
		t.Errorf("ϕ7 type pattern cell = %v", cell)
	}
}

func TestParseRuleErrors(t *testing.T) {
	r := relation.StringSchema("R", "A", "B")
	rm := relation.StringSchema("Rm", "Am", "Bm")
	cases := []struct {
		line, substr string
	}{
		{`nonsense`, "expected line to start"},
		{`rule : (A ; Am) -> (B ; Bm)`, "empty rule name"},
		{`rule x (A ; Am) -> (B ; Bm)`, "missing ':'"},
		{`rule x: (A ; Am) (B ; Bm)`, "missing '->'"},
		{`rule x: (A, Am) -> (B ; Bm)`, "';'"},
		{`rule x: (Zed ; Am) -> (B ; Bm)`, "no attribute"},
		{`rule x: (A ; Zed) -> (B ; Bm)`, "no attribute"},
		{`rule x: (A ; Am) -> (A, B ; Am, Bm)`, "exactly one"},
		{`rule x: (A, B ; Am) -> (B ; Bm)`, "different lengths"},
		{`rule x: (A ; Am) -> (B ; Bm) when Zed = "1"`, "no attribute"},
		{`rule x: (A ; Am) -> (B ; Bm) when B ~ "1"`, "cannot parse condition"},
		{`rule x: (A ; Am) -> (B ; Bm) when B != _`, "not meaningful"},
		{`rule x: (A ; Am) -> (B ; Bm) when B = bare`, "quote strings"},
		{`rule x: (A ; Am) -> (A ; Bm)`, "must not occur in X"},
	}
	for _, c := range cases {
		_, err := rule.ParseRule(r, rm, c.line)
		if err == nil || !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%q: want error containing %q, got %v", c.line, c.substr, err)
		}
	}
}

func TestParseIntLiteralsAndWildcards(t *testing.T) {
	r := relation.MustSchema("R",
		relation.Attribute{Name: "A", Type: relation.TypeString},
		relation.Attribute{Name: "N", Type: relation.TypeInt},
		relation.Attribute{Name: "B", Type: relation.TypeString},
	)
	rm := relation.StringSchema("Rm", "Am", "Bm")
	ru, err := rule.ParseRule(r, rm, `rule x: (A ; Am) -> (B ; Bm) when N = 42, A = _`)
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := ru.Pattern().CellFor(r.MustPos("N"))
	if !ok || !cell.Val.Equal(relation.Int(42)) {
		t.Errorf("N cell = %v", cell)
	}
	cell, ok = ru.Pattern().CellFor(r.MustPos("A"))
	if !ok || cell.Kind != pattern.Wildcard {
		t.Errorf("A cell = %v", cell)
	}
	// int literal against a string attribute becomes a string constant
	ru2, err := rule.ParseRule(r, rm, `rule y: (A ; Am) -> (B ; Bm) when A = 7`)
	if err != nil {
		t.Fatal(err)
	}
	cell, _ = ru2.Pattern().CellFor(r.MustPos("A"))
	if !cell.Val.Equal(relation.String("7")) {
		t.Errorf("string-typed numeric literal = %v", cell.Val)
	}
	// quoted numeric against int attribute parses as int
	ru3, err := rule.ParseRule(r, rm, `rule z: (A ; Am) -> (B ; Bm) when N = "5"`)
	if err != nil {
		t.Fatal(err)
	}
	cell, _ = ru3.Pattern().CellFor(r.MustPos("N"))
	if !cell.Val.Equal(relation.Int(5)) {
		t.Errorf("int-typed quoted literal = %v", cell.Val)
	}
	// quoted non-numeric against int attribute fails
	if _, err := rule.ParseRule(r, rm, `rule w: (A ; Am) -> (B ; Bm) when N = "xy"`); err == nil {
		t.Error("want error for non-numeric literal on int attribute")
	}
}

func TestParseQuotedCommasAndWhen(t *testing.T) {
	r := relation.StringSchema("R", "A", "B")
	rm := relation.StringSchema("Rm", "Am", "Bm")
	ru, err := rule.ParseRule(r, rm, `rule q: (A ; Am) -> (B ; Bm) when A = "v, when x"`)
	if err != nil {
		t.Fatal(err)
	}
	cell, _ := ru.Pattern().CellFor(0)
	if cell.Val.Str() != "v, when x" {
		t.Errorf("quoted literal = %q", cell.Val.Str())
	}
}

func TestParseRulesReaderCommentsAndErrors(t *testing.T) {
	r := relation.StringSchema("R", "A", "B")
	rm := relation.StringSchema("Rm", "Am", "Bm")
	src := "# comment\n\nrule a: (A ; Am) -> (B ; Bm)\n"
	set, err := rule.ParseRules(r, rm, strings.NewReader(src))
	if err != nil || set.Len() != 1 {
		t.Fatalf("set=%v err=%v", set, err)
	}
	_, err = rule.ParseRules(r, rm, strings.NewReader("rule broken\n"))
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("want line-numbered error, got %v", err)
	}
}
