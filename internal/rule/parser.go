package rule

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/pattern"
	"repro/internal/relation"
)

// The rule DSL. One rule per line (blank lines and '#' comments ignored):
//
//	rule phi3: (AC, phn ; AC, Hphn) -> (zip ; zip) when type = "1", AC != "0800"
//
// Grammar:
//
//	rule <name>: (<X attrs> ; <Xm attrs>) -> (<B> ; <Bm>) [when <cond> {, <cond>}] [weight <float>]
//	cond    := <attr> = <literal> | <attr> != <literal> | <attr> = _
//	literal := "double-quoted string" | integer | nil
//
// Attribute names resolve against R on the left of each ';' / in conditions,
// and against Rm on the right. `<attr> = _` writes an explicit wildcard
// (useful to document intent; it normalizes away). The optional trailing
// `weight` clause sets the rule's confidence in (0, 1] (see
// Rule.Confidence); mined rule files produced by cmd/rulemine carry it.

// ParseRules reads the DSL from rd and returns the rule set over (r, rm).
func ParseRules(r, rm *relation.Schema, rd io.Reader) (*Set, error) {
	set := MustNewSet(r, rm)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ru, err := ParseRule(r, rm, line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := set.Add(ru); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rule: scan: %w", err)
	}
	return set, nil
}

// ParseRuleSet parses the DSL from a string.
func ParseRuleSet(r, rm *relation.Schema, src string) (*Set, error) {
	return ParseRules(r, rm, strings.NewReader(src))
}

// ParseRule parses a single DSL rule line.
func ParseRule(r, rm *relation.Schema, line string) (*Rule, error) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(line), "rule ")
	if !ok {
		return nil, fmt.Errorf("rule: expected line to start with %q: %q", "rule ", line)
	}
	name, rest, ok := strings.Cut(rest, ":")
	if !ok {
		return nil, fmt.Errorf("rule: missing ':' after rule name in %q", line)
	}
	name = strings.TrimSpace(name)
	if name == "" {
		return nil, fmt.Errorf("rule: empty rule name in %q", line)
	}

	rest, conf, hasConf, err := cutWeight(rest)
	if err != nil {
		return nil, fmt.Errorf("rule %s: %w", name, err)
	}
	body, cond, _ := cutTopLevel(rest, " when ")

	lhsPart, rhsPart, ok := strings.Cut(body, "->")
	if !ok {
		return nil, fmt.Errorf("rule %s: missing '->'", name)
	}
	x, xm, err := parseAttrPair(r, rm, lhsPart)
	if err != nil {
		return nil, fmt.Errorf("rule %s: lhs: %w", name, err)
	}
	bs, bms, err := parseAttrPair(r, rm, rhsPart)
	if err != nil {
		return nil, fmt.Errorf("rule %s: rhs: %w", name, err)
	}
	if len(bs) != 1 || len(bms) != 1 {
		return nil, fmt.Errorf("rule %s: rhs must name exactly one attribute per side", name)
	}

	tp := pattern.Empty()
	if strings.TrimSpace(cond) != "" {
		tp, err = parseConditions(r, cond)
		if err != nil {
			return nil, fmt.Errorf("rule %s: %w", name, err)
		}
	}
	ru, err := New(name, r, rm, x, xm, bs[0], bms[0], tp)
	if err != nil {
		return nil, err
	}
	if hasConf {
		return ru.WithConfidence(conf)
	}
	return ru, nil
}

// cutWeight strips a trailing top-level "weight <float>" clause. The cut
// is at the LAST top-level " weight " whose suffix is a bare number — a
// condition on an attribute literally named weight (`when weight = "3"`)
// contains '=' or quotes in the suffix and is left alone.
func cutWeight(s string) (core string, conf float64, found bool, err error) {
	idx := lastTopLevel(s, " weight ")
	if idx < 0 {
		return s, 0, false, nil
	}
	suffix := strings.TrimSpace(s[idx+len(" weight "):])
	if suffix == "" || strings.ContainsAny(suffix, `="`) {
		return s, 0, false, nil
	}
	conf, perr := strconv.ParseFloat(suffix, 64)
	if perr != nil {
		return s, 0, false, fmt.Errorf("bad weight %q", suffix)
	}
	return s[:idx], conf, true, nil
}

// lastTopLevel returns the index of the last occurrence of sep outside
// double quotes, or -1.
func lastTopLevel(s, sep string) int {
	last, inQuote := -1, false
	for i := 0; i+len(sep) <= len(s); i++ {
		if s[i] == '"' {
			inQuote = !inQuote
			continue
		}
		if !inQuote && strings.HasPrefix(s[i:], sep) {
			last = i
		}
	}
	return last
}

// cutTopLevel splits s at the first occurrence of sep that is not inside
// double quotes.
func cutTopLevel(s, sep string) (before, after string, found bool) {
	inQuote := false
	for i := 0; i+len(sep) <= len(s); i++ {
		if s[i] == '"' {
			inQuote = !inQuote
			continue
		}
		if !inQuote && strings.HasPrefix(s[i:], sep) {
			return s[:i], s[i+len(sep):], true
		}
	}
	return s, "", false
}

// parseAttrPair parses "(a, b ; am, bm)" into position lists over (r, rm).
func parseAttrPair(r, rm *relation.Schema, s string) ([]int, []int, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return nil, nil, fmt.Errorf("expected parenthesized pair, got %q", s)
	}
	inner := s[1 : len(s)-1]
	left, right, ok := strings.Cut(inner, ";")
	if !ok {
		return nil, nil, fmt.Errorf("expected ';' separating R and Rm attributes in %q", s)
	}
	x, err := parseAttrList(r, left)
	if err != nil {
		return nil, nil, err
	}
	xm, err := parseAttrList(rm, right)
	if err != nil {
		return nil, nil, err
	}
	if len(x) != len(xm) {
		return nil, nil, fmt.Errorf("attribute lists have different lengths in %q", s)
	}
	return x, xm, nil
}

func parseAttrList(s *relation.Schema, list string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(list, ",") {
		name := strings.TrimSpace(tok)
		if name == "" {
			return nil, fmt.Errorf("empty attribute name in %q", list)
		}
		p, ok := s.Pos(name)
		if !ok {
			return nil, fmt.Errorf("schema %s has no attribute %q", s.Name(), name)
		}
		out = append(out, p)
	}
	return out, nil
}

// parseConditions parses "A = "v", B != "w"" into a pattern tuple over r.
func parseConditions(r *relation.Schema, s string) (pattern.Tuple, error) {
	var positions []int
	var cells []pattern.Cell
	for _, clause := range splitTopLevel(s, ',') {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		var attr, lit string
		var neq bool
		if a, l, ok := strings.Cut(clause, "!="); ok {
			attr, lit, neq = a, l, true
		} else if a, l, ok := strings.Cut(clause, "="); ok {
			attr, lit = a, l
		} else {
			return pattern.Tuple{}, fmt.Errorf("cannot parse condition %q", clause)
		}
		attr = strings.TrimSpace(attr)
		lit = strings.TrimSpace(lit)
		p, ok := r.Pos(attr)
		if !ok {
			return pattern.Tuple{}, fmt.Errorf("schema %s has no attribute %q", r.Name(), attr)
		}
		if lit == "_" {
			if neq {
				return pattern.Tuple{}, fmt.Errorf("condition %q: '!= _' is not meaningful", clause)
			}
			positions = append(positions, p)
			cells = append(cells, pattern.Any)
			continue
		}
		if lit == "nil" {
			// `A != nil` requires a present value (the paper's ϕ[zip] =
			// (nil̄) patterns); `A = nil` requires a missing one.
			positions = append(positions, p)
			if neq {
				cells = append(cells, pattern.Neq(relation.Null))
			} else {
				cells = append(cells, pattern.Eq(relation.Null))
			}
			continue
		}
		v, err := parseLiteral(lit, r.Attr(p).Type)
		if err != nil {
			return pattern.Tuple{}, fmt.Errorf("condition %q: %w", clause, err)
		}
		positions = append(positions, p)
		if neq {
			cells = append(cells, pattern.Neq(v))
		} else {
			cells = append(cells, pattern.Eq(v))
		}
	}
	return pattern.NewTuple(positions, cells)
}

// splitTopLevel splits on sep outside double quotes.
func splitTopLevel(s string, sep byte) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"':
			inQuote = !inQuote
		case s[i] == sep && !inQuote:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func parseLiteral(lit string, t relation.Type) (relation.Value, error) {
	if strings.HasPrefix(lit, `"`) {
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return relation.Null, fmt.Errorf("bad string literal %s: %w", lit, err)
		}
		if t == relation.TypeInt {
			n, err := strconv.ParseInt(unq, 10, 64)
			if err != nil {
				return relation.Null, fmt.Errorf("attribute is int but literal %s is not numeric", lit)
			}
			return relation.Int(n), nil
		}
		return relation.String(unq), nil
	}
	n, err := strconv.ParseInt(lit, 10, 64)
	if err != nil {
		return relation.Null, fmt.Errorf("bad literal %q (quote strings)", lit)
	}
	if t == relation.TypeString {
		return relation.String(lit), nil
	}
	return relation.Int(n), nil
}
