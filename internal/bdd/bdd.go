// Package bdd implements the binary-decision-diagram cache of §5.2
// (Figs. 7–8) that backs Suggest+ / CertainFix+. Nodes hold previously
// computed suggestions; the true branch of a node is taken when its
// suggestion is still valid for the current tuple (and leads to the
// suggestion tried at the next round of interaction), while the false
// branch chains to alternative cached suggestions and, when the chain is
// exhausted, to a freshly computed suggestion that is inserted in place.
//
// Checking whether a cached suggestion still applies is much cheaper than
// computing a new one, which is the entire point: on a stream of similar
// input tuples the cache eliminates nearly all Suggest invocations
// (Fig. 12c/d of the paper).
package bdd

import (
	"sync"
)

// Node is one decision node: a cached suggestion and its two branches.
type Node struct {
	S          []int
	True, Fals *Node
}

// Cache is the shared suggestion store. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	root     *Node
	size     int
	maxNodes int
	hits     int
	misses   int
}

// DefaultMaxNodes bounds the cache; beyond it the diagram is reset (the
// paper compresses its BDD to limit space — a bounded reset keeps the
// same guarantee with less machinery).
const DefaultMaxNodes = 4096

// NewCache builds an empty cache. maxNodes ≤ 0 selects DefaultMaxNodes.
func NewCache(maxNodes int) *Cache {
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	return &Cache{maxNodes: maxNodes}
}

// Stats reports cache hits (suggestions reused) and misses (computed).
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Size reports the number of nodes.
func (c *Cache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Cursor starts a traversal for one input tuple at the root.
func (c *Cache) Cursor() *Cursor {
	return &Cursor{cache: c, slot: &c.root}
}

// Cursor tracks one tuple's position in the diagram across interaction
// rounds.
type Cursor struct {
	cache *Cache
	slot  **Node
}

// Next returns the suggestion for the current round: it follows the false
// chain from the cursor position until a cached suggestion passes check,
// inserting compute()'s result when the chain runs out. The cursor then
// descends to the chosen node's true branch, ready for the next round.
func (cur *Cursor) Next(check func(s []int) bool, compute func() []int) []int {
	c := cur.cache
	c.mu.Lock()
	defer c.mu.Unlock()

	slot := cur.slot
	for *slot != nil {
		n := *slot
		if check(n.S) {
			c.hits++
			cur.slot = &n.True
			return n.S
		}
		slot = &n.Fals
	}
	// Chain exhausted: compute and insert.
	c.misses++
	s := compute()
	if c.size >= c.maxNodes {
		c.root = nil
		c.size = 0
		slot = &c.root
	}
	n := &Node{S: s}
	*slot = n
	c.size++
	cur.slot = &n.True
	return s
}
