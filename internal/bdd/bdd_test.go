package bdd_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/bdd"
)

func TestCursorMissThenHit(t *testing.T) {
	c := bdd.NewCache(0)
	computed := 0
	compute := func() []int { computed++; return []int{1, 2} }
	accept := func(s []int) bool { return true }

	// First tuple: miss, computes.
	cur := c.Cursor()
	s := cur.Next(accept, compute)
	if !reflect.DeepEqual(s, []int{1, 2}) || computed != 1 {
		t.Fatalf("first Next: s=%v computed=%d", s, computed)
	}
	// Second tuple: hit, no compute.
	cur2 := c.Cursor()
	s = cur2.Next(accept, compute)
	if !reflect.DeepEqual(s, []int{1, 2}) || computed != 1 {
		t.Fatalf("second Next: s=%v computed=%d", s, computed)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits %d misses", hits, misses)
	}
}

func TestCursorFalseChain(t *testing.T) {
	c := bdd.NewCache(0)
	// Insert {1} via an always-reject check? No: first insert happens on
	// miss. Build: tuple A accepts only {1}; tuple B rejects {1} and gets
	// {2}; tuple C rejects {1}, accepts {2}.
	curA := c.Cursor()
	curA.Next(func(s []int) bool { return len(s) > 0 && s[0] == 1 }, func() []int { return []int{1} })

	computed := 0
	curB := c.Cursor()
	got := curB.Next(func(s []int) bool { return s[0] == 2 }, func() []int { computed++; return []int{2} })
	if got[0] != 2 || computed != 1 {
		t.Fatalf("tuple B: got %v computed %d", got, computed)
	}

	curC := c.Cursor()
	got = curC.Next(func(s []int) bool { return s[0] == 2 }, func() []int { t.Fatal("must reuse"); return nil })
	if got[0] != 2 {
		t.Fatalf("tuple C: got %v", got)
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d, want 2", c.Size())
	}
}

func TestCursorDescendsTrueBranch(t *testing.T) {
	c := bdd.NewCache(0)
	accept := func(s []int) bool { return true }

	// Tuple A: two rounds, builds root -> true child.
	curA := c.Cursor()
	curA.Next(accept, func() []int { return []int{1} })
	curA.Next(accept, func() []int { return []int{2} })

	// Tuple B follows the same path with zero computes.
	curB := c.Cursor()
	r1 := curB.Next(accept, func() []int { t.Fatal("round 1 must hit"); return nil })
	r2 := curB.Next(accept, func() []int { t.Fatal("round 2 must hit"); return nil })
	if r1[0] != 1 || r2[0] != 2 {
		t.Fatalf("rounds = %v %v", r1, r2)
	}
}

func TestCacheResetAtCapacity(t *testing.T) {
	c := bdd.NewCache(2)
	reject := func(s []int) bool { return false }
	next := 0
	compute := func() []int { next++; return []int{next} }

	c.Cursor().Next(reject, compute) // size 1
	c.Cursor().Next(reject, compute) // walks false chain, size 2
	if c.Size() != 2 {
		t.Fatalf("size = %d", c.Size())
	}
	c.Cursor().Next(reject, compute) // at cap: resets, inserts afresh
	if c.Size() != 1 {
		t.Fatalf("size after reset = %d, want 1", c.Size())
	}
}

func TestCacheConcurrentCursors(t *testing.T) {
	c := bdd.NewCache(0)
	accept := func(s []int) bool { return true }
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := c.Cursor()
			for r := 0; r < 8; r++ {
				s := cur.Next(accept, func() []int { return []int{r} })
				if len(s) != 1 {
					t.Error("bad suggestion shape")
					return
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != 16*8 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 16*8)
	}
}
