package wal_test

// The log-level crash proof: run a fixed append workload through the
// walfault filesystem, cut power at EVERY budget point the workload ever
// spends (each written byte, each fsync, each metadata op) and at every
// spill fraction, then recover the directory with the plain OS
// filesystem and check the log invariant: recovery never errors, the
// surviving records are exactly a contiguous prefix 1..E of the
// workload, every acked (SyncAlways) record survived (E ≥ acked), and
// the log accepts epoch E+1 — the lineage continues. The master-level
// equivalent (probe-for-probe equality of the recovered head) lives in
// internal/master's durable tests.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/wal"
	"repro/internal/wal/walfault"
)

// faultRecord mirrors wal_test.testRecord deterministically without
// access to the internal test package.
func faultRecord(epoch uint64) wal.Record {
	return wal.Record{
		Epoch:   epoch,
		Deletes: []int{int(epoch % 5)},
		Adds: []relation.Tuple{{
			relation.String(fmt.Sprintf("crash-%d", epoch)),
			relation.Int(int64(epoch) * 1_000_003),
			relation.Null,
		}},
	}
}

// runWorkload appends records 1..k through fs, stopping at the first
// error (the simulated power cut), and reports the highest acked epoch.
func runWorkload(fs wal.FS, dir string, k uint64) (acked uint64) {
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways, SegmentBytes: 200, FS: fs})
	if err != nil {
		return 0
	}
	defer l.Close()
	for e := uint64(1); e <= k; e++ {
		if err := l.Append(faultRecord(e)); err != nil {
			return acked
		}
		acked = e
	}
	return acked
}

// recoverAndCheck reopens dir with the real filesystem and verifies the
// log invariant, returning the recovered last epoch.
func recoverAndCheck(t *testing.T, dir string, acked, k uint64, label string) {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatalf("%s: recovery open failed: %v", label, err)
	}
	defer l.Close()
	next := uint64(1)
	if _, err := l.Replay(0, func(r wal.Record) error {
		if r.Epoch != next {
			t.Fatalf("%s: replay epoch %d, want %d", label, r.Epoch, next)
		}
		if want := faultRecord(r.Epoch); !reflect.DeepEqual(r, want) {
			t.Fatalf("%s: epoch %d content mismatch:\n got %+v\nwant %+v", label, r.Epoch, r, want)
		}
		next++
		return nil
	}); err != nil {
		t.Fatalf("%s: replay failed: %v", label, err)
	}
	recovered := next - 1
	if recovered < acked {
		t.Fatalf("%s: acked epoch %d lost, only %d recovered", label, acked, recovered)
	}
	if recovered > k {
		t.Fatalf("%s: recovered %d epochs, workload only wrote %d", label, recovered, k)
	}
	if err := l.Append(faultRecord(recovered + 1)); err != nil {
		t.Fatalf("%s: recovered log rejects next epoch %d: %v", label, recovered+1, err)
	}
}

func TestCrashSweepEveryBudgetPoint(t *testing.T) {
	const k = 8
	// Dry run: count the total budget the workload spends.
	probe := walfault.New(wal.OS, -1, 0, 1)
	if acked := runWorkload(probe, t.TempDir(), k); acked != k {
		t.Fatalf("dry run did not complete: acked %d", acked)
	}
	total := probe.Spent()
	if total < k {
		t.Fatalf("implausible budget total %d", total)
	}

	spills := [][2]int{{0, 1}, {1, 2}, {1, 1}}
	crashes := 0
	for budget := int64(1); budget <= total; budget++ {
		for _, sp := range spills {
			label := fmt.Sprintf("budget=%d spill=%d/%d", budget, sp[0], sp[1])
			dir := t.TempDir()
			fs := walfault.New(wal.OS, budget, sp[0], sp[1])
			acked := runWorkload(fs, dir, k)
			if fs.Crashed() {
				crashes++
			} else if acked != k {
				t.Fatalf("%s: no crash yet workload incomplete (acked %d)", label, acked)
			}
			recoverAndCheck(t, dir, acked, k, label)
		}
	}
	if crashes == 0 {
		t.Fatal("sweep never crashed: the harness is not injecting faults")
	}
	t.Logf("swept %d budget points (%d crashes), workload budget %d", total, crashes, total)
}

// TestCrashSweepUnsyncedLoss pins down the other half of the contract:
// with fsync off, records appended after the last durable point are
// allowed to vanish, but recovery must still produce a clean contiguous
// prefix — never an error, never a gap.
func TestCrashSweepUnsyncedLoss(t *testing.T) {
	const k = 8
	probe := walfault.New(wal.OS, -1, 0, 1)
	dir0 := t.TempDir()
	func() {
		l, err := wal.Open(dir0, wal.Options{Sync: wal.SyncNever, SegmentBytes: 200, FS: probe})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for e := uint64(1); e <= k; e++ {
			if err := l.Append(faultRecord(e)); err != nil {
				t.Fatal(err)
			}
		}
	}()
	total := probe.Spent()

	for budget := int64(1); budget <= total; budget += 3 {
		for _, sp := range [][2]int{{0, 1}, {1, 2}, {1, 1}} {
			dir := t.TempDir()
			fs := walfault.New(wal.OS, budget, sp[0], sp[1])
			func() {
				l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, SegmentBytes: 200, FS: fs})
				if err != nil {
					return
				}
				defer l.Close()
				for e := uint64(1); e <= k; e++ {
					if l.Append(faultRecord(e)) != nil {
						return
					}
				}
			}()
			// Nothing is acked durable under SyncNever: assert only the
			// clean-prefix invariant.
			recoverAndCheck(t, dir, 0, k, fmt.Sprintf("unsynced budget=%d spill=%d/%d", budget, sp[0], sp[1]))
		}
	}
}
