package wal

// The filesystem seam of the WAL. Every byte the log persists — segment
// appends, fsyncs, segment creation and removal, checkpoint temp files —
// flows through the FS interface, so the crash-injection harness
// (walfault) can cut power at any byte or sync without patching the log
// itself. Production code uses OS, the passthrough implementation.

import (
	"io"
	"os"
)

// File is the mutable-file surface the log needs: append writes, explicit
// durability, tail truncation (torn-record repair) and close.
type File interface {
	io.Writer
	// Sync forces everything written so far to stable storage. A record
	// is durable — guaranteed to survive a crash — only after the Sync
	// covering it returns.
	Sync() error
	// Truncate cuts the file to size bytes (tail repair at open).
	Truncate(size int64) error
	Close() error
}

// FS is the directory surface: segment and checkpoint file lifecycle. All
// paths are absolute or relative exactly as the caller passes them; the
// implementation must not rewrite them.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the directory, sorted by filename.
	ReadDir(name string) ([]os.DirEntry, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates the directory and its parents.
	MkdirAll(name string, perm os.FileMode) error
	// SyncDir fsyncs the directory itself, making created, renamed and
	// removed entries durable (a file's own Sync does not cover its
	// directory entry).
	SyncDir(name string) error
}

// OS is the production FS: a passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Rename(oldname, newname string) error       { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error {
	return os.MkdirAll(name, perm)
}

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
