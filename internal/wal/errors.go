package wal

import (
	"errors"
	"fmt"
)

// ErrWALCorrupt is the sentinel matched (errors.Is) by every log decode
// failure that recovery cannot repair on its own: a bad frame in the
// middle of the log (truncating there would silently drop the records
// behind it), an epoch gap or regression between records, and a frame
// whose checksum verifies but whose payload does not decode. A torn or
// corrupt TAIL — the last frames of the last segment, the only place a
// crash can leave one — is NOT an error: Open truncates it and reports
// the repair in Stats.
var ErrWALCorrupt = errors.New("wal: log corrupt")

// CorruptError locates an unrecoverable log corruption: the segment file,
// the byte offset decoding stopped at, and what was found there. It
// matches ErrWALCorrupt through errors.Is.
type CorruptError struct {
	// Path is the segment file being decoded.
	Path string
	// Offset is the byte offset within the segment at which decoding
	// failed (-1 when the failure is not tied to one position, e.g. an
	// epoch gap between segments).
	Offset int64
	// Msg describes the corruption.
	Msg string
}

func (e *CorruptError) Error() string {
	if e.Offset < 0 {
		return fmt.Sprintf("wal: %s: %s", e.Path, e.Msg)
	}
	return fmt.Sprintf("wal: %s at offset %d: %s", e.Path, e.Offset, e.Msg)
}

// Unwrap makes the error match ErrWALCorrupt through errors.Is.
func (e *CorruptError) Unwrap() error { return ErrWALCorrupt }

// ErrTruncated is the sentinel matched (errors.Is) by a Tail or
// ReplayFrom whose caller fell behind TruncateThrough: the epochs it
// still needs were removed because a durable checkpoint covers them.
// Unlike ErrWALCorrupt this is a recoverable condition — catch up from
// the checkpoint, then resume tailing from its epoch.
var ErrTruncated = errors.New("wal: epochs truncated behind checkpoint")

// TruncatedError reports which epochs a shipping reader asked for that
// the log no longer holds. It matches ErrTruncated through errors.Is.
type TruncatedError struct {
	// After is the caller's position: it wanted epochs > After.
	After uint64
	// First is the oldest epoch still in the log, when known (0 when the
	// reader lost a removal race and could not tell).
	First uint64
}

func (e *TruncatedError) Error() string {
	if e.First == 0 {
		return fmt.Sprintf("wal: epochs after %d truncated behind checkpoint", e.After)
	}
	return fmt.Sprintf("wal: epochs %d..%d truncated behind checkpoint (log starts at %d)",
		e.After+1, e.First-1, e.First)
}

// Unwrap makes the error match ErrTruncated through errors.Is.
func (e *TruncatedError) Unwrap() error { return ErrTruncated }
