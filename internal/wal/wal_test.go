package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/relation"
)

// testRecord builds a deterministic record for epoch, with a tuple and
// delete mix seeded by the epoch itself.
func testRecord(epoch uint64) Record {
	rng := rand.New(rand.NewSource(int64(epoch)))
	r := Record{Epoch: epoch}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		r.Deletes = append(r.Deletes, rng.Intn(1000))
	}
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		t := relation.Tuple{
			relation.String(fmt.Sprintf("name-%d-%d", epoch, i)),
			relation.Int(rng.Int63n(1 << 40)),
			relation.Null,
			relation.String(strings.Repeat("x", rng.Intn(24))),
		}
		r.Adds = append(r.Adds, t)
	}
	return r
}

func appendAll(t *testing.T, l *Log, from, to uint64) {
	t.Helper()
	for e := from; e <= to; e++ {
		if err := l.Append(testRecord(e)); err != nil {
			t.Fatalf("append epoch %d: %v", e, err)
		}
	}
}

func replayAll(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var recs []Record
	n, err := l.Replay(after, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay after %d: %v", after, err)
	}
	if n != len(recs) {
		t.Fatalf("replay count %d, callback saw %d", n, len(recs))
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.FirstEpoch != 1 || st.LastEpoch != 40 || st.TornBytes != 0 {
		t.Fatalf("stats after clean reopen: %+v", st)
	}
	recs := replayAll(t, l2, 0)
	if len(recs) != 40 {
		t.Fatalf("replayed %d records, want 40", len(recs))
	}
	for i, got := range recs {
		want := testRecord(uint64(i + 1))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i+1, got, want)
		}
	}
	// Replay from the middle starts exactly at after+1.
	mid := replayAll(t, l2, 25)
	if len(mid) != 15 || mid[0].Epoch != 26 {
		t.Fatalf("partial replay: %d records, first epoch %d", len(mid), mid[0].Epoch)
	}
}

func TestSegmentRollAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 60)
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("tiny SegmentBytes produced only %d segments", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Continue appending after a reopen; the lineage must stay seamless.
	l2, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l2, 61, 80)
	recs := replayAll(t, l2, 0)
	if len(recs) != 80 || recs[79].Epoch != 80 {
		t.Fatalf("replay across reopen: %d records, last %d", len(recs), recs[len(recs)-1].Epoch)
	}
	l2.Close()
}

func TestAppendEpochMustExtend(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// First record may start anywhere (e.g. right after a checkpoint).
	if err := l.Append(testRecord(7)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(9)); err == nil {
		t.Fatal("append with an epoch gap succeeded")
	}
	if err := l.Append(testRecord(7)); err == nil {
		t.Fatal("append with a repeated epoch succeeded")
	}
	if err := l.Append(testRecord(8)); err != nil {
		t.Fatalf("valid next epoch rejected: %v", err)
	}
}

// lastSegment returns the path of the newest segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*"+segmentSuffix))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	return names[len(names)-1]
}

func TestTornTailTruncated(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		"partial header":  func(b []byte) []byte { return append(b, 0x55, 0x66) },
		"partial payload": func(b []byte) []byte { return append(b, 24, 0, 0, 0, 1, 2, 3, 4, 0xAA) },
		"bad checksum": func(b []byte) []byte {
			b[len(b)-1] ^= 0xFF // flip a byte inside the final record's payload
			return b
		},
		"huge length": func(b []byte) []byte {
			return append(b, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, l, 1, 10)
			l.Close()

			seg := lastSegment(t, dir)
			b, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			clean := int64(len(b))
			if err := os.WriteFile(seg, mangle(b), 0o644); err != nil {
				t.Fatal(err)
			}

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open with torn tail must repair, got %v", err)
			}
			defer l2.Close()
			st := l2.Stats()
			if st.TornBytes == 0 {
				t.Fatal("repair not reported in Stats")
			}
			recs := replayAll(t, l2, 0)
			wantLast := uint64(10)
			if name == "bad checksum" {
				wantLast = 9 // the mangled final record is gone
			}
			if len(recs) == 0 || recs[len(recs)-1].Epoch != wantLast {
				t.Fatalf("replay after repair ends at %d records, want last epoch %d", len(recs), wantLast)
			}
			// The file itself must be cut back to the valid prefix.
			if fi, err := os.Stat(seg); err == nil && name != "bad checksum" && fi.Size() != clean {
				t.Fatalf("segment size %d after repair, want %d", fi.Size(), clean)
			}
			// Appending must continue the repaired lineage.
			if err := l2.Append(testRecord(wantLast + 1)); err != nil {
				t.Fatalf("append after repair: %v", err)
			}
		})
	}
}

func TestTornTailWholeSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 30)
	l.Close()

	// Simulate a crash right after the newest segment was created: only
	// a few garbage bytes, no complete record.
	seg := lastSegment(t, dir)
	if err := os.WriteFile(seg, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := os.Stat(seg); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("empty torn segment still on disk (stat err %v)", err)
	}
	recs := replayAll(t, l2, 0)
	last := recs[len(recs)-1].Epoch
	// Everything before the destroyed segment survives, and the log
	// accepts the lost epoch again.
	if err := l2.Append(testRecord(last + 1)); err != nil {
		t.Fatalf("append after segment removal: %v", err)
	}
}

func TestCorruptionInsideLogIsTyped(t *testing.T) {
	corruptFirstSegment := func(t *testing.T, dir string, mangle func([]byte) []byte) {
		t.Helper()
		names, _ := filepath.Glob(filepath.Join(dir, "*"+segmentSuffix))
		if len(names) < 2 {
			t.Fatalf("want ≥2 segments, have %d", len(names))
		}
		b, err := os.ReadFile(names[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(names[0], mangle(b), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("bad frame in sealed segment", func(t *testing.T) {
		dir := t.TempDir()
		l, _ := Open(dir, Options{Sync: SyncNever, SegmentBytes: 256})
		appendAll(t, l, 1, 40)
		l.Close()
		corruptFirstSegment(t, dir, func(b []byte) []byte {
			b[len(b)/2] ^= 0xFF
			return b
		})
		_, err := Open(dir, Options{Sync: SyncNever})
		if !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("want ErrWALCorrupt, got %v", err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.Path == "" {
			t.Fatalf("want *CorruptError with path, got %#v", err)
		}
	})

	t.Run("missing middle segment", func(t *testing.T) {
		dir := t.TempDir()
		l, _ := Open(dir, Options{Sync: SyncNever, SegmentBytes: 256})
		appendAll(t, l, 1, 60)
		l.Close()
		names, _ := filepath.Glob(filepath.Join(dir, "*"+segmentSuffix))
		if len(names) < 3 {
			t.Fatalf("want ≥3 segments, have %d", len(names))
		}
		if err := os.Remove(names[1]); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir, Options{Sync: SyncNever})
		if !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("want ErrWALCorrupt for epoch gap, got %v", err)
		}
	})

	t.Run("replay gap after checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		l, _ := Open(dir, Options{Sync: SyncNever})
		appendAll(t, l, 10, 20)
		defer l.Close()
		// A checkpoint at epoch 5 would need the log to resume at 6; it
		// resumes at 10 — records 6..9 are missing.
		_, err := l.Replay(5, func(Record) error { return nil })
		if !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("want ErrWALCorrupt for replay gap, got %v", err)
		}
	})
}

func TestTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 60)
	before := l.Stats()

	// A checkpoint at epoch 30 retires every segment ending at or before
	// it; records after 30 must all survive.
	if err := l.TruncateThrough(30); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Segments >= before.Segments {
		t.Fatalf("truncate removed nothing: %d → %d segments", before.Segments, after.Segments)
	}
	if after.FirstEpoch > 31 {
		t.Fatalf("truncate removed uncovered records: first epoch now %d", after.FirstEpoch)
	}
	recs := replayAll(t, l, 30)
	if len(recs) != 30 || recs[0].Epoch != 31 || recs[29].Epoch != 60 {
		t.Fatalf("replay after truncate: %d records [%d..%d]", len(recs), recs[0].Epoch, recs[len(recs)-1].Epoch)
	}
	l.Close()

	// The truncated log must reopen cleanly and keep its lineage.
	l2, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	appendAll(t, l2, 61, 70)
	recs = replayAll(t, l2, 30)
	if recs[len(recs)-1].Epoch != 70 {
		t.Fatalf("lineage after truncate+reopen ends at %d", recs[len(recs)-1].Epoch)
	}

	// Truncating everything empties the log; the next append restarts it.
	if err := l2.TruncateThrough(70); err != nil {
		t.Fatal(err)
	}
	st := l2.Stats()
	if st.Segments != 0 || st.FirstEpoch != 0 || st.LastEpoch != 0 {
		t.Fatalf("stats after full truncate: %+v", st)
	}
	if err := l2.Append(testRecord(71)); err != nil {
		t.Fatalf("append into fully truncated log: %v", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		l, err := Open(t.TempDir(), Options{Sync: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		appendAll(t, l, 1, 5)
		if st := l.Stats(); st.SyncedEpoch != 5 {
			t.Fatalf("SyncAlways left SyncedEpoch at %d", st.SyncedEpoch)
		}
	})
	t.Run("interval", func(t *testing.T) {
		l, err := Open(t.TempDir(), Options{Sync: SyncInterval, Interval: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		appendAll(t, l, 1, 5)
		deadline := time.Now().Add(2 * time.Second)
		for l.Stats().SyncedEpoch != 5 {
			if time.Now().After(deadline) {
				t.Fatalf("interval sync never covered epoch 5: %+v", l.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	})
	t.Run("manual", func(t *testing.T) {
		l, err := Open(t.TempDir(), Options{Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		appendAll(t, l, 1, 5)
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.SyncedEpoch != 5 {
			t.Fatalf("explicit Sync left SyncedEpoch at %d", st.SyncedEpoch)
		}
	})
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "batch": SyncAlways, "": SyncAlways,
		"interval": SyncInterval, "Interval": SyncInterval,
		"off": SyncNever, "never": SyncNever, "none": SyncNever,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

func TestRecordEncodeRejectsBadInput(t *testing.T) {
	if _, err := appendRecord(nil, Record{Epoch: 1, Deletes: []int{-1}}); err == nil {
		t.Fatal("negative delete id encoded")
	}
}
