package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the segment scanner and the
// replay decoder: whatever is on disk, Open must either repair the tail
// or fail with a typed *CorruptError — never panic, never allocate
// absurdly — and a successful Open must replay a contiguous epoch
// sequence.
func FuzzWALReplay(f *testing.F) {
	// Seed with real segments of increasing shape, plus mangled variants.
	seed := func(build func(l *Log)) []byte {
		dir := f.TempDir()
		l, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			f.Fatal(err)
		}
		build(l)
		l.Close()
		names, _ := filepath.Glob(filepath.Join(dir, "*"+segmentSuffix))
		if len(names) == 0 {
			return nil
		}
		b, _ := os.ReadFile(names[0])
		return b
	}
	one := seed(func(l *Log) { l.Append(testRecord(1)) })
	three := seed(func(l *Log) { appendAllFuzz(l, 1, 3) })
	f.Add([]byte{})
	f.Add(one)
	f.Add(three)
	f.Add(three[:len(three)-3])           // torn payload
	f.Add(append(three, 9, 9, 9))         // trailing garbage
	f.Add(append([]byte{}, three[8:]...)) // frame header gone

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		// The scanner trusts nothing about the file, including that its
		// name matches the first record; epoch 1 keeps valid seeds valid.
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			var ce *CorruptError
			if !errors.Is(err, ErrWALCorrupt) || !errors.As(err, &ce) {
				t.Fatalf("Open failed with an untyped error: %v", err)
			}
			return
		}
		defer l.Close()
		next := uint64(1)
		if _, err := l.Replay(0, func(r Record) error {
			if r.Epoch != next {
				t.Fatalf("replay epoch %d, want %d", r.Epoch, next)
			}
			next++
			return nil
		}); err != nil && !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("Replay failed with an untyped error: %v", err)
		}
		// Mutate the file BEHIND the open log — shrink it mid-frame — and
		// scan again: the segment no longer matches the sizes Open cached,
		// which must surface as a typed error (or a clean short replay),
		// never a panic on an out-of-bounds slice.
		path := filepath.Join(dir, segmentName(1))
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			cut := int64(len(data)) % fi.Size() // data-derived cut point in [0, size)
			if err := os.Truncate(path, cut); err != nil {
				t.Fatal(err)
			}
			if _, err := l.Replay(0, func(Record) error { return nil }); err != nil &&
				!errors.Is(err, ErrWALCorrupt) {
				t.Fatalf("Replay after shrink failed untyped: %v", err)
			}
			if _, err := l.Tail(0, func(Record) error { return nil }); err != nil &&
				!errors.Is(err, ErrWALCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("Tail after shrink failed untyped: %v", err)
			}
		}
	})
}

func appendAllFuzz(l *Log, from, to uint64) {
	for e := from; e <= to; e++ {
		if err := l.Append(testRecord(e)); err != nil {
			panic(err)
		}
	}
}
