// Package walfault is the crash-injection filesystem behind the WAL
// recovery proofs. It wraps a real wal.FS and models the one thing a
// power cut actually does: everything written since the last fsync may
// or may not be on disk.
//
// Writes do not reach the real file immediately — they buffer in a
// per-file pending slice, the simulated page cache. Sync flushes pending
// to the real file and fsyncs it, which is exactly the durability
// contract the WAL relies on. Every operation consumes budget (one unit
// per written byte, one per sync or metadata op); the operation that
// exhausts the budget "cuts power": a configurable fraction of the
// current file's pending bytes spill to the real file (0 — the cache was
// lost whole; 1 — it happened to flush; 1/2 — a torn write), every
// other file's pending is dropped, and from then on every operation
// fails with ErrCrashed.
//
// Because buffered bytes live in real files once spilled or synced, the
// post-crash disk state IS the real directory: recovery just reopens it
// with the plain wal.OS filesystem, exactly as a restarted process
// would. Running the same workload at every budget in [1, Spent()] and
// every spill fraction therefore proves recovery at every byte and sync
// boundary the workload ever crosses.
package walfault

import (
	"errors"
	"os"
	"sync"

	"repro/internal/wal"
)

// ErrCrashed is returned by every operation after the injected crash
// point. Workloads treat it the way a process treats a power cut: stop.
var ErrCrashed = errors.New("walfault: simulated crash")

// FS is a crash-injecting wal.FS. Create with New; share one FS per
// simulated process lifetime.
type FS struct {
	real wal.FS

	mu       sync.Mutex
	budget   int64 // remaining units; <0 at New means count but never crash
	infinite bool
	spent    int64
	spillNum int // fraction of pending spilled at crash: spillNum/spillDen
	spillDen int
	crashed  bool
	open     []*file
}

// New wraps real with a crash after budget units (bytes written + syncs
// + metadata ops). budget < 0 disables crashing and just counts — run
// the workload once that way, read Spent(), then sweep budgets 1..Spent.
// spillNum/spillDen is the fraction of the crashing file's unsynced
// bytes that happen to survive (0/1, 1/2 and 1/1 cover lost, torn and
// flushed caches).
func New(real wal.FS, budget int64, spillNum, spillDen int) *FS {
	if spillDen <= 0 {
		spillDen = 1
	}
	return &FS{
		real:     real,
		budget:   budget,
		infinite: budget < 0,
		spillNum: spillNum,
		spillDen: spillDen,
	}
}

// Spent reports the units consumed so far.
func (s *FS) Spent() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spent
}

// Crashed reports whether the injected crash point was reached.
func (s *FS) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// spend consumes n units; it reports false when doing so cuts the power.
// Caller holds mu.
func (s *FS) spend(n int64) bool {
	s.spent += n
	if s.infinite {
		return true
	}
	s.budget -= n
	return s.budget >= 0
}

// crashLocked cuts power: spill the crashing file's pending fraction,
// drop everyone else's pending, fail everything from here on.
func (s *FS) crashLocked(f *file) {
	s.crashed = true
	if f != nil && len(f.pending) > 0 {
		n := len(f.pending) * s.spillNum / s.spillDen
		if n > 0 {
			// Best effort, like the disk itself: ignore errors.
			_, _ = f.real.Write(f.pending[:n])
			_ = f.real.Sync()
		}
	}
	for _, o := range s.open {
		o.pending = nil
		_ = o.real.Close()
	}
	s.open = nil
}

func (s *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, ErrCrashed
	}
	rf, err := s.real.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	f := &file{fs: s, real: rf}
	s.open = append(s.open, f)
	return f, nil
}

func (s *FS) ReadFile(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, ErrCrashed
	}
	return s.real.ReadFile(name)
}

func (s *FS) ReadDir(name string) ([]os.DirEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, ErrCrashed
	}
	return s.real.ReadDir(name)
}

// metaOp charges one unit for a metadata operation and runs it only if
// the power stayed on: a crash "before" the op is a crash in which the
// op never happened (the budget point just past it covers the case
// where it did).
func (s *FS) metaOp(op func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if !s.spend(1) {
		s.crashLocked(nil)
		return ErrCrashed
	}
	return op()
}

func (s *FS) Rename(oldname, newname string) error {
	return s.metaOp(func() error { return s.real.Rename(oldname, newname) })
}

func (s *FS) Remove(name string) error {
	return s.metaOp(func() error { return s.real.Remove(name) })
}

func (s *FS) MkdirAll(name string, perm os.FileMode) error {
	return s.metaOp(func() error { return s.real.MkdirAll(name, perm) })
}

func (s *FS) SyncDir(name string) error {
	return s.metaOp(func() error { return s.real.SyncDir(name) })
}

// file buffers writes until Sync, like a page cache the crash can eat.
type file struct {
	fs      *FS
	real    wal.File
	pending []byte
	closed  bool
}

func (f *file) Write(b []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed || f.closed {
		return 0, ErrCrashed
	}
	f.pending = append(f.pending, b...)
	if !f.fs.spend(int64(len(b))) {
		f.fs.crashLocked(f)
		return 0, ErrCrashed
	}
	return len(b), nil
}

func (f *file) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed || f.closed {
		return ErrCrashed
	}
	if !f.fs.spend(1) {
		// Power cut during the fsync itself: the cache is in whatever
		// state the spill fraction says.
		f.fs.crashLocked(f)
		return ErrCrashed
	}
	if len(f.pending) > 0 {
		if _, err := f.real.Write(f.pending); err != nil {
			return err
		}
		f.pending = f.pending[:0]
	}
	return f.real.Sync()
}

func (f *file) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed || f.closed {
		return ErrCrashed
	}
	if !f.fs.spend(1) {
		f.fs.crashLocked(f)
		return ErrCrashed
	}
	if len(f.pending) > 0 {
		// The log never truncates a file it has pending writes on; keep
		// the model honest anyway by flushing first.
		if _, err := f.real.Write(f.pending); err != nil {
			return err
		}
		f.pending = f.pending[:0]
	}
	return f.real.Truncate(size)
}

// Close flushes pending to the real file without fsync — on a clean
// shutdown the OS writes its cache back eventually; only a crash loses
// it.
func (f *file) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if f.fs.crashed {
		return ErrCrashed
	}
	for i, o := range f.fs.open {
		if o == f {
			f.fs.open = append(f.fs.open[:i], f.fs.open[i+1:]...)
			break
		}
	}
	if len(f.pending) > 0 {
		if _, err := f.real.Write(f.pending); err != nil {
			f.real.Close()
			return err
		}
		f.pending = nil
	}
	return f.real.Close()
}
