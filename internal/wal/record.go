package wal

// One log record per ApplyDelta batch. The payload is self-describing —
// cells carry their kind, so decoding needs no schema — and framed as
//
//	u32 payload length | u32 CRC-32C of payload | payload
//
// payload:
//
//	uvarint epoch          the epoch this delta PRODUCES (parent + 1)
//	uvarint len(deletes)   then each delete id as a uvarint
//	uvarint len(adds)      then each added tuple:
//	    uvarint arity, then per cell:
//	        0x00                     null
//	        0x01 uvarint len, bytes  string
//	        0x02 varint              int64
//	[u8 32, 32 bytes]      optional post-apply auth root (authenticated
//	                       lineages only; absent entirely otherwise)
//
// The frame CRC is what tells a torn tail from a valid record; the fixed
// little-endian length prefix is what lets the scanner skip a record
// without decoding it. Everything inside the payload is varint-coded: a
// typical correction batch is a handful of short strings, and the paper's
// update streams are dominated by single-tuple deltas, so frames are tens
// of bytes.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/relation"
)

// Record is one logged master-delta batch: the epoch the delta produces
// and the exact adds/deletes handed to ApplyDelta. Replaying records in
// epoch order over the snapshot the log covers reproduces the lineage
// byte-for-byte (master's delta semantics are deterministic).
type Record struct {
	Epoch   uint64
	Adds    []relation.Tuple
	Deletes []int

	// Root, when non-nil, is the 32-byte authenticated-master root the
	// delta PRODUCES — what AuthRoot() returns after applying this record.
	// Unauthenticated lineages leave it nil and their frames are
	// byte-identical to the pre-root format; decoding a frame written
	// before the field existed also yields nil. Followers compare it
	// against their own post-apply root (follower.go).
	Root []byte
}

const (
	cellNull   = 0x00
	cellString = 0x01
	cellInt    = 0x02

	frameHeaderSize = 8
	rootSize        = 32
	// maxRecordBytes bounds one frame's payload: a length prefix beyond
	// it is treated as corruption (or a torn tail), never as an
	// allocation request.
	maxRecordBytes = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends the framed record to buf and returns it.
func appendRecord(buf []byte, r Record) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header, patched below
	buf = binary.AppendUvarint(buf, r.Epoch)
	buf = binary.AppendUvarint(buf, uint64(len(r.Deletes)))
	for _, id := range r.Deletes {
		if id < 0 {
			return nil, fmt.Errorf("wal: record: negative delete id %d", id)
		}
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Adds)))
	for _, t := range r.Adds {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		for _, v := range t {
			switch v.Kind() {
			case relation.KindNull:
				buf = append(buf, cellNull)
			case relation.KindString:
				buf = append(buf, cellString)
				buf = binary.AppendUvarint(buf, uint64(len(v.Str())))
				buf = append(buf, v.Str()...)
			case relation.KindInt:
				buf = append(buf, cellInt)
				buf = binary.AppendVarint(buf, v.Int64())
			default:
				return nil, fmt.Errorf("wal: record: unknown value kind %v", v.Kind())
			}
		}
	}
	if len(r.Root) != 0 {
		if len(r.Root) != rootSize {
			return nil, fmt.Errorf("wal: record: root is %d bytes, want %d", len(r.Root), rootSize)
		}
		buf = append(buf, rootSize)
		buf = append(buf, r.Root...)
	}
	payload := buf[start+frameHeaderSize:]
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("wal: record: payload %d bytes exceeds limit %d", len(payload), maxRecordBytes)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf, nil
}

// AppendFrame appends r as one wire frame — the exact on-disk framing
// (u32 length | u32 CRC-32C | payload) — to buf and returns it. The
// epoch-shipping wire format is deliberately identical to the segment
// format: the leader can copy validated frames byte-for-byte, and a
// follower verifies each frame with the same checksum the log uses.
func AppendFrame(buf []byte, r Record) ([]byte, error) {
	return appendRecord(buf, r)
}

// ReadFrame reads and verifies one wire frame from r (see AppendFrame).
// It returns io.EOF at a clean frame boundary, io.ErrUnexpectedEOF when
// the stream breaks mid-frame (reconnect and resume), and an error
// matching ErrWALCorrupt when a complete frame fails its checksum or its
// checksum-valid payload does not decode.
func ReadFrame(r io.Reader) (Record, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Record{}, err
	}
	plen := int64(binary.LittleEndian.Uint32(hdr[:]))
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if plen > maxRecordBytes {
		return Record{}, fmt.Errorf("wal: stream frame length %d exceeds limit %d: %w", plen, maxRecordBytes, ErrWALCorrupt)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, err
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return Record{}, fmt.Errorf("wal: stream frame checksum mismatch: %w", ErrWALCorrupt)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, fmt.Errorf("wal: stream frame does not decode (%v): %w", err, ErrWALCorrupt)
	}
	return rec, nil
}

// decodePayload decodes one CRC-verified payload. Failures here mean the
// bytes on disk are exactly what some writer produced yet do not parse —
// an encoder/decoder version skew or a checksum collision — so the caller
// reports them as corruption, never as a torn tail.
func decodePayload(b []byte) (Record, error) {
	d := pdecoder{b: b}
	var r Record
	r.Epoch = d.uvarint("epoch")
	nDel := d.length("delete count")
	if nDel > 0 {
		r.Deletes = make([]int, nDel)
		for i := range r.Deletes {
			id := d.uvarint("delete id")
			if id > math.MaxInt32 {
				d.fail("delete id %d exceeds int32", id)
			}
			r.Deletes[i] = int(id)
		}
	}
	nAdd := d.length("add count")
	if nAdd > 0 {
		r.Adds = make([]relation.Tuple, nAdd)
		for i := range r.Adds {
			arity := d.length("arity")
			t := make(relation.Tuple, arity)
			for c := range t {
				switch kind := d.u8("cell kind"); kind {
				case cellNull:
					t[c] = relation.Null
				case cellString:
					n := d.length("string length")
					t[c] = relation.String(string(d.take(n, "string bytes")))
				case cellInt:
					t[c] = relation.Int(d.varint("int cell"))
				default:
					d.fail("unknown cell kind 0x%02x", kind)
				}
			}
			r.Adds[i] = t
		}
	}
	if d.err == nil && d.off < len(d.b) {
		// Optional trailing section: the auth root. A payload that ends at
		// the adds is a legacy (or unauthenticated) record — Root stays nil.
		if n := d.u8("root length"); int(n) != rootSize {
			d.fail("root length %d, want %d", n, rootSize)
		}
		r.Root = append([]byte(nil), d.take(rootSize, "root bytes")...)
	}
	if d.err == nil && d.off != len(d.b) {
		d.fail("%d trailing bytes after record", len(d.b)-d.off)
	}
	return r, d.err
}

// pdecoder is a sticky-error cursor over one payload (the areader idiom
// of the arena loader, sized down to varint framing).
type pdecoder struct {
	b   []byte
	off int
	err error
}

func (d *pdecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("payload offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

func (d *pdecoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail("truncated %s: need %d bytes, %d remain", what, n, len(d.b)-d.off)
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *pdecoder) u8(what string) uint8 {
	if p := d.take(1, what); p != nil {
		return p[0]
	}
	return 0
}

func (d *pdecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint %s", what)
		return 0
	}
	d.off += n
	return v
}

func (d *pdecoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint %s", what)
		return 0
	}
	d.off += n
	return v
}

// length reads a uvarint that sizes an allocation, bounding it by the
// payload bytes that remain: every element costs at least one byte, so a
// count beyond the remainder is corruption, not a big allocation.
func (d *pdecoder) length(what string) int {
	v := d.uvarint(what)
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)-d.off) {
		d.fail("%s %d exceeds remaining %d bytes", what, v, len(d.b)-d.off)
		return 0
	}
	return int(v)
}
