package wal

import (
	"testing"
	"time"
)

// benchmarkAppend measures one ApplyDelta-sized record per op under the
// given fsync policy. "always" is bound by the device's fsync latency —
// the price of per-batch durability the paper-facing daemon defaults to;
// "interval" and "off" show what amortised and deferred flushing buy.
func benchmarkAppend(b *testing.B, p SyncPolicy) {
	l, err := Open(b.TempDir(), Options{Sync: p, Interval: 10 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := testRecord(1)
	var buf []byte
	if buf, err = appendRecord(nil, rec); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Epoch = uint64(i + 1)
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppendAlways(b *testing.B)   { benchmarkAppend(b, SyncAlways) }
func BenchmarkWALAppendInterval(b *testing.B) { benchmarkAppend(b, SyncInterval) }
func BenchmarkWALAppendOff(b *testing.B)      { benchmarkAppend(b, SyncNever) }

// BenchmarkWALTail measures shipping throughput: one Tail pass over a
// 10k-record log on an open, live Log — the read a follower repeats as
// the leader appends. records/sec here bounds how fast a follower can
// drain a backlog.
func BenchmarkWALTail(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	const recs = 10_000
	var bytes int64
	for e := uint64(1); e <= recs; e++ {
		r := testRecord(e)
		buf, _ := appendRecord(nil, r)
		bytes += int64(len(buf))
		if err := l.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if _, err := l.Tail(0, func(Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != recs {
			b.Fatalf("tailed %d", n)
		}
	}
}

// BenchmarkWALReplay measures decoding throughput of a 10k-record log —
// the WAL half of recovery cost (the arena load is benchmarked in
// internal/master).
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	for e := uint64(1); e <= 10_000; e++ {
		if err := l.Append(testRecord(e)); err != nil {
			b.Fatal(err)
		}
	}
	l.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		if _, err := l.Replay(0, func(Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 10_000 {
			b.Fatalf("replayed %d", n)
		}
		l.Close()
	}
}
