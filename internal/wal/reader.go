package wal

// Reader is the cross-process half of epoch shipping: a read-only view of
// a WAL directory some other process (or an in-process Log) is writing.
// It holds no file handles and no position between calls — every
// ReplayFrom re-lists the directory, so segments rolling or truncating
// under it are ordinary, not errors.
//
// A Reader trusts the bytes it can see: frames that parse and pass their
// CRC are delivered, including bytes the writer has written but not yet
// fsynced (the OS page cache makes them visible to same-machine readers).
// That is the right contract for a warm-standby tailer; a follower that
// must never run ahead of the leader's durability ships over HTTP from
// the leader's in-process watermark instead (certainfixd GET /v1/wal).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Reader tails a WAL directory without writing to it. Methods are safe
// for concurrent use (the Reader itself is stateless).
type Reader struct {
	dir  string
	fsys FS
}

// OpenReader opens a read-only view of the log directory. Only
// Options.FS is honored; the directory must exist (a Reader never
// creates or repairs anything).
func OpenReader(dir string, opts Options) (*Reader, error) {
	opts = opts.withDefaults()
	if _, err := opts.FS.ReadDir(dir); err != nil {
		return nil, fmt.Errorf("wal: open reader %s: %w", dir, err)
	}
	return &Reader{dir: dir, fsys: opts.FS}, nil
}

// ReplayFrom streams every complete record with epoch > after to fn, in
// epoch order, stopping cleanly at the writer's in-flight tail: a torn or
// partial frame at the end of the NEWEST segment is where the writer
// currently is, not corruption. It returns the number of records
// delivered. A *TruncatedError (matching ErrTruncated) means epoch
// after+1 was truncated behind a checkpoint — catch up from the
// checkpoint and resume. A *CorruptError means the log itself is bad
// mid-stream. Call it in a loop to tail: each call picks up where the
// previous position left off.
func (r *Reader) ReplayFrom(after uint64, fn func(Record) error) (int, error) {
	entries, err := r.fsys.ReadDir(r.dir)
	if err != nil {
		return 0, fmt.Errorf("wal: reader %s: %w", r.dir, err)
	}
	type segRef struct {
		path  string
		start uint64
	}
	var segs []segRef
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		start, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			continue // not a segment file
		}
		segs = append(segs, segRef{path: filepath.Join(r.dir, name), start: start})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	replayed := 0
	expect := after + 1
	for i, s := range segs {
		isLast := i == len(segs)-1
		if !isLast && segs[i+1].start <= expect {
			continue // every record here is <= after: skip without reading
		}
		if s.start > expect {
			if replayed == 0 {
				return 0, &TruncatedError{After: after, First: s.start}
			}
			return replayed, &CorruptError{Path: s.path, Offset: -1,
				Msg: fmt.Sprintf("epoch gap: log resumes at %d, reader covered through %d", s.start, expect-1)}
		}
		b, err := r.fsys.ReadFile(s.path)
		if err != nil {
			if errors.Is(err, iofs.ErrNotExist) {
				// Removed between ReadDir and here: truncation won the race,
				// so a checkpoint covers these epochs.
				return replayed, &TruncatedError{After: after, First: 0}
			}
			return replayed, fmt.Errorf("wal: reader %s: %w", s.path, err)
		}
		corrupt := func(off int64, format string, args ...any) error {
			return &CorruptError{Path: s.path, Offset: off, Msg: fmt.Sprintf(format, args...)}
		}
		off := int64(0)
		for off < int64(len(b)) {
			rem := int64(len(b)) - off
			if rem < frameHeaderSize {
				if isLast {
					return replayed, nil // in-flight frame header
				}
				return replayed, corrupt(off, "truncated frame header in sealed segment")
			}
			plen := int64(binary.LittleEndian.Uint32(b[off:]))
			sum := binary.LittleEndian.Uint32(b[off+4:])
			if plen > maxRecordBytes {
				if isLast {
					return replayed, nil // garbage length ⇒ torn tail
				}
				return replayed, corrupt(off, "frame length %d exceeds limit %d", plen, maxRecordBytes)
			}
			if rem-frameHeaderSize < plen {
				if isLast {
					return replayed, nil // in-flight frame body
				}
				return replayed, corrupt(off, "truncated frame in sealed segment")
			}
			payload := b[off+frameHeaderSize : off+frameHeaderSize+plen]
			if crc32.Checksum(payload, crcTable) != sum {
				if isLast {
					return replayed, nil // frame bytes still landing
				}
				return replayed, corrupt(off, "frame checksum mismatch")
			}
			rec, err := decodePayload(payload)
			if err != nil {
				// A CRC-valid payload that does not decode is corruption
				// wherever it sits — bytes this wrong cannot be in flight.
				return replayed, corrupt(off, "checksum-valid record does not decode: %v", err)
			}
			off += frameHeaderSize + plen
			if rec.Epoch <= after {
				continue
			}
			if rec.Epoch != expect {
				if replayed == 0 && rec.Epoch > expect {
					return 0, &TruncatedError{After: after, First: rec.Epoch}
				}
				return replayed, corrupt(off-plen-frameHeaderSize,
					"epoch gap: log resumes at %d, reader covered through %d", rec.Epoch, expect-1)
			}
			if err := fn(rec); err != nil {
				return replayed, err
			}
			expect++
			replayed++
		}
	}
	return replayed, nil
}
