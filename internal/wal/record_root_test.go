package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"
)

// rootedRecord is testRecord plus a deterministic 32-byte root.
func rootedRecord(epoch uint64) Record {
	r := testRecord(epoch)
	root := make([]byte, rootSize)
	for i := range root {
		root[i] = byte(epoch) + byte(i)
	}
	r.Root = root
	return r
}

func TestRecordRootRoundTrip(t *testing.T) {
	for epoch := uint64(1); epoch <= 20; epoch++ {
		want := rootedRecord(epoch)
		frame, err := AppendFrame(nil, want)
		if err != nil {
			t.Fatalf("epoch %d: encode: %v", epoch, err)
		}
		got, err := ReadFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("epoch %d: decode: %v", epoch, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d round-trip mismatch:\n got %+v\nwant %+v", epoch, got, want)
		}
	}
}

// TestRecordLegacyFrameDecodesNilRoot: a rootless record's frame is
// byte-identical to the pre-root format — decoding one yields Root nil,
// so logs written before the field existed replay unchanged.
func TestRecordLegacyFrameDecodesNilRoot(t *testing.T) {
	rootless := testRecord(7)
	plain, err := AppendFrame(nil, rootless)
	if err != nil {
		t.Fatal(err)
	}
	rooted, err := AppendFrame(nil, rootedRecord(7))
	if err != nil {
		t.Fatal(err)
	}
	// The root section is exactly one length byte plus the root: nothing
	// else about the encoding moved.
	if len(rooted)-len(plain) != 1+rootSize {
		t.Fatalf("root section is %d bytes, want %d", len(rooted)-len(plain), 1+rootSize)
	}
	got, err := ReadFrame(bytes.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	if got.Root != nil {
		t.Fatalf("rootless frame decoded with Root %x", got.Root)
	}
	if !reflect.DeepEqual(got, rootless) {
		t.Fatalf("legacy round-trip mismatch:\n got %+v\nwant %+v", got, rootless)
	}
}

func TestRecordRootEncodeRejectsBadLength(t *testing.T) {
	r := testRecord(3)
	r.Root = make([]byte, 16)
	if _, err := AppendFrame(nil, r); err == nil {
		t.Fatal("16-byte root encoded without error")
	}
}

// TestRecordRootTruncatedIsCorrupt: a checksum-valid payload whose root
// section is cut short is corruption, not a legacy record.
func TestRecordRootTruncatedIsCorrupt(t *testing.T) {
	frame, err := AppendFrame(nil, rootedRecord(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, rootSize / 2, rootSize} {
		payload := frame[frameHeaderSize : len(frame)-cut]
		bad := make([]byte, frameHeaderSize+len(payload))
		binary.LittleEndian.PutUint32(bad, uint32(len(payload)))
		binary.LittleEndian.PutUint32(bad[4:], crc32.Checksum(payload, crcTable))
		copy(bad[frameHeaderSize:], payload)
		if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("cut %d: got %v, want ErrWALCorrupt", cut, err)
		}
	}
}
