// Package wal is a segmented, CRC-framed write-ahead log for master-delta
// batches: the durability layer under master.DurableVersioned. Every
// ApplyDelta batch is appended as one epoch-stamped record BEFORE the new
// snapshot head is published, so a process that crashes and restarts can
// reconstruct the exact lineage by loading the last arena checkpoint and
// replaying the log tail.
//
// The log is a directory of segment files named %020d.wal after the epoch
// of their first record. Records never span segments; a segment seals
// when it crosses Options.SegmentBytes and the next record opens a new
// one. Once an arena checkpoint covers an epoch, TruncateThrough removes
// the segments it makes redundant — oldest first, so a crash mid-removal
// always leaves a contiguous epoch suffix.
//
// Durability is governed by Options.Sync:
//
//   - SyncAlways: fsync after every Append — an Append that returned is
//     durable. The per-batch policy of the paper-facing daemon.
//   - SyncInterval: a background goroutine fsyncs every Interval; a crash
//     loses at most the records appended since the last tick.
//   - SyncNever: leave flushing to the OS (benchmarks, bulk loads).
//
// Open validates every frame of every segment eagerly (CRC, length
// bounds, epoch contiguity — the areader discipline of the arena loader).
// The one repairable failure is a torn TAIL: trailing bytes of the LAST
// segment that do not parse as complete, checksum-valid frames are
// exactly what a crash mid-write leaves behind, and Open truncates them
// (reported in Stats, never an error). Every other failure — a bad frame
// in the middle of the log, an epoch gap, a checksum-valid record that
// does not decode — is a typed *CorruptError matching ErrWALCorrupt:
// truncating there would silently drop acknowledged records, so the log
// refuses to guess.
//
// All file I/O flows through the FS seam (fs.go), which is how the
// crash-injection harness (walfault) proves the recovery contract at
// every byte and sync boundary.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every Append (durable once Append returns).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Options.Interval).
	SyncInterval
	// SyncNever never fsyncs explicitly; the OS flushes when it pleases.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the flag spelling of a policy: "always" (or
// "batch"), "interval", "off" (or "never", "none").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "batch", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off", "never", "none":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

const (
	// DefaultSegmentBytes is the roll threshold when Options.SegmentBytes
	// is zero.
	DefaultSegmentBytes = 64 << 20
	// DefaultSyncInterval is the SyncInterval cadence when
	// Options.Interval is zero.
	DefaultSyncInterval = 100 * time.Millisecond

	segmentSuffix = ".wal"
)

// Options configures Open.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// Interval is the SyncInterval cadence (default DefaultSyncInterval).
	Interval time.Duration
	// SegmentBytes rolls the active segment when it would grow past this
	// size (default DefaultSegmentBytes).
	SegmentBytes int64
	// FS overrides the filesystem (default OS). The crash-injection
	// harness threads walfault.FS through here.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = DefaultSyncInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.FS == nil {
		o.FS = OS
	}
	return o
}

// segmentName is the filename of the segment whose first record is epoch.
func segmentName(epoch uint64) string {
	return fmt.Sprintf("%020d%s", epoch, segmentSuffix)
}

// segment is one validated segment file.
type segment struct {
	path  string
	start uint64 // epoch of the first record (== the filename number)
	last  uint64 // epoch of the last record
	size  int64  // bytes after tail repair
}

// Stats is the observable state of a log: served on certainfixd /healthz
// and asserted by the recovery tests.
type Stats struct {
	// Dir is the log directory.
	Dir string
	// Policy is the fsync policy string ("always", "interval", "off").
	Policy string
	// Segments is the number of live segment files (including the active
	// one).
	Segments int
	// Bytes is the total size of the live segments.
	Bytes int64
	// FirstEpoch/LastEpoch bound the records currently in the log (both
	// zero when the log holds no records).
	FirstEpoch, LastEpoch uint64
	// SyncedEpoch is the newest epoch known to be on stable storage.
	SyncedEpoch uint64
	// TornBytes is how many trailing bytes Open truncated from the last
	// segment (0 for a clean open) — the crash-repair breadcrumb.
	TornBytes int64
}

// Log is an open write-ahead log. Every method — Append, Sync,
// TruncateThrough, Replay, Tail, Synced, Stats, Close — is safe for
// concurrent use. Readers never see past the shipping watermark (the
// newest acknowledged epoch, see Synced), so a Tail racing Append
// observes only complete, acknowledged records.
type Log struct {
	dir  string
	opts Options

	mu         sync.Mutex
	sealed     []segment     // ascending start epochs
	active     File          // nil until the first append after open/truncate
	activeAt   segment       // metadata of the active segment
	haveAny    bool          // any record in the log (sealed or active)
	first      uint64        // first epoch in the log (valid when haveAny)
	last       uint64        // last epoch in the log (valid when haveAny)
	synced     uint64        // shipping watermark: newest acknowledged epoch
	syncedSize int64         // bytes of the active segment covered by the watermark
	syncCh     chan struct{} // closed and replaced when the watermark advances
	dirty      bool          // active segment has unsynced writes
	torn       int64         // bytes truncated at Open
	encBuf     []byte
	failed     error // sticky: a failed write leaves a partial frame behind
	closed     bool
	stopSync   chan struct{}
}

// Open validates the log in dir (creating the directory if needed),
// repairs a torn tail, and returns a Log positioned to append. Corruption
// anywhere but the tail fails with a *CorruptError matching ErrWALCorrupt.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		start, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			continue // not a segment file
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), start: start})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	l := &Log{dir: dir, opts: opts, syncCh: make(chan struct{})}
	prevLast := uint64(0)
	havePrev := false
	for i := range segs {
		isLast := i == len(segs)-1
		s, removed, err := l.scanSegment(&segs[i], isLast, havePrev, prevLast)
		if err != nil {
			return nil, err
		}
		if removed {
			continue // empty after tail repair: the file is gone
		}
		l.sealed = append(l.sealed, s)
		if !l.haveAny {
			l.first = s.start
			l.haveAny = true
		}
		l.last = s.last
		prevLast, havePrev = s.last, true
	}
	// Everything that survived validation is on disk; nothing newer exists.
	l.synced = l.last
	if opts.Sync == SyncInterval {
		l.stopSync = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// scanSegment validates every frame of one segment, repairing (or, when
// the repair leaves nothing, removing) a torn tail on the last segment.
func (l *Log) scanSegment(s *segment, isLast, havePrev bool, prevLast uint64) (segment, bool, error) {
	fs := l.opts.FS
	b, err := fs.ReadFile(s.path)
	if err != nil {
		return segment{}, false, fmt.Errorf("wal: open: %w", err)
	}
	corrupt := func(off int64, format string, args ...any) error {
		return &CorruptError{Path: s.path, Offset: off, Msg: fmt.Sprintf(format, args...)}
	}

	off := int64(0)
	validEnd := int64(0)
	expect := s.start
	nrec := 0
	tornAt := int64(-1) // first torn byte, when the tail needs repair
	tornWhy := ""
	for off < int64(len(b)) {
		rem := int64(len(b)) - off
		if rem < frameHeaderSize {
			tornAt, tornWhy = off, fmt.Sprintf("%d trailing bytes, frame header needs %d", rem, frameHeaderSize)
			break
		}
		plen := int64(binary.LittleEndian.Uint32(b[off:]))
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if plen > maxRecordBytes {
			tornAt, tornWhy = off, fmt.Sprintf("frame length %d exceeds limit %d", plen, maxRecordBytes)
			break
		}
		if rem-frameHeaderSize < plen {
			tornAt, tornWhy = off, fmt.Sprintf("frame needs %d payload bytes, %d remain", plen, rem-frameHeaderSize)
			break
		}
		payload := b[off+frameHeaderSize : off+frameHeaderSize+plen]
		if crc32.Checksum(payload, crcTable) != sum {
			tornAt, tornWhy = off, "frame checksum mismatch"
			break
		}
		// The frame is intact on disk: from here on, failures are logic
		// corruption, never a torn write.
		epoch, n := binary.Uvarint(payload)
		if n <= 0 {
			return segment{}, false, corrupt(off, "checksum-valid record with undecodable epoch")
		}
		if epoch != expect {
			return segment{}, false, corrupt(off, "epoch %d where %d was expected", epoch, expect)
		}
		expect++
		nrec++
		off += frameHeaderSize + plen
		validEnd = off
	}

	if tornAt >= 0 && !isLast {
		// A torn frame can only exist where a crash stopped the writer:
		// the end of the newest segment. Anywhere else, truncating would
		// drop the records behind it.
		return segment{}, false, corrupt(tornAt, "bad frame inside a sealed segment (%s)", tornWhy)
	}
	if nrec == 0 {
		if !isLast {
			// The writer seals a segment only after a record lands in it.
			return segment{}, false, corrupt(-1, "segment holds no records")
		}
		// Nothing valid survived — the file is empty (crash between
		// create and first write) or all torn: drop it; the epoch it was
		// going to hold will be re-appended under the same name.
		l.torn += int64(len(b))
		if err := fs.Remove(s.path); err != nil {
			return segment{}, false, fmt.Errorf("wal: repair %s: %w", s.path, err)
		}
		if err := fs.SyncDir(l.dir); err != nil {
			return segment{}, false, fmt.Errorf("wal: repair %s: %w", l.dir, err)
		}
		return segment{}, true, nil
	}
	if tornAt >= 0 {
		l.torn += int64(len(b)) - validEnd
		f, err := fs.OpenFile(s.path, os.O_WRONLY, 0o644)
		if err != nil {
			return segment{}, false, fmt.Errorf("wal: repair %s: %w", s.path, err)
		}
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return segment{}, false, fmt.Errorf("wal: repair %s: %w", s.path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return segment{}, false, fmt.Errorf("wal: repair %s: %w", s.path, err)
		}
		if err := f.Close(); err != nil {
			return segment{}, false, fmt.Errorf("wal: repair %s: %w", s.path, err)
		}
	}
	if nrec == 0 {
		// A sealed zero-record segment cannot be produced by the writer.
		return segment{}, false, corrupt(-1, "segment holds no records")
	}
	if havePrev && s.start != prevLast+1 {
		return segment{}, false, corrupt(-1, "segment starts at epoch %d, previous segment ended at %d", s.start, prevLast)
	}
	s.last = expect - 1
	s.size = validEnd
	return *s, false, nil
}

// Replay streams every record with epoch > after to fn, in epoch order,
// verifying the stream starts at after+1 and stays contiguous (a gap is
// a *CorruptError: recovery must not silently skip acknowledged epochs).
// It returns the number of records replayed. Replay is safe to call at
// any time — concurrently with Append if need be — and reads only up to
// the shipping watermark, so it never observes a half-written frame.
func (l *Log) Replay(after uint64, fn func(Record) error) (int, error) {
	return l.scanFrom(after, true, fn)
}

// Tail streams every acknowledged record with epoch > after to fn, in
// epoch order. It is the shipping read: safe under concurrent Append and
// TruncateThrough, bounded by the watermark (see Synced). When the log no
// longer holds epoch after+1 — TruncateThrough removed it behind a
// checkpoint, possibly racing this call — Tail returns a *TruncatedError
// matching ErrTruncated after delivering what it could: the caller must
// catch up from the checkpoint and resume from its epoch. A log holding
// no records returns (0, nil); the caller disambiguates "up to date" from
// "everything truncated" with the checkpoint epoch it tracks anyway.
func (l *Log) Tail(after uint64, fn func(Record) error) (int, error) {
	return l.scanFrom(after, false, fn)
}

// Synced reports the shipping watermark — the newest epoch Tail may
// deliver — and a channel that is closed the next time the watermark
// advances (or the log closes). Under SyncAlways and SyncNever the
// watermark is the last appended epoch; under SyncInterval it trails
// Append by at most one sync tick. A shipping loop waits on the channel,
// then calls Tail from its last delivered epoch.
func (l *Log) Synced() (uint64, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced, l.syncCh
}

// tailView is an immutable read plan for one segment: scan path up to
// limit bytes, expecting epochs start..last. Taken under l.mu, used
// outside it.
type tailView struct {
	path        string
	start, last uint64
	limit       int64
}

// scanFrom is the shared scanner under Replay (strict) and Tail. It
// snapshots the segment list and watermark under l.mu, then reads files
// without the lock: sealed segments are immutable, and the active segment
// is only ever appended to past our limit. Every frame is bounds-checked
// and CRC-verified before slicing — the file may legitimately differ from
// what Open validated (truncation races, external mutation), and a short
// read must surface as a typed error, never a panic.
func (l *Log) scanFrom(after uint64, strict bool, fn func(Record) error) (int, error) {
	l.mu.Lock()
	segs := make([]tailView, 0, len(l.sealed)+1)
	for _, s := range l.sealed {
		segs = append(segs, tailView{s.path, s.start, s.last, s.size})
	}
	if l.active != nil && l.syncedSize > 0 {
		segs = append(segs, tailView{l.activeAt.path, l.activeAt.start, l.synced, l.syncedSize})
	}
	l.mu.Unlock()

	replayed := 0
	expect := after + 1
	for _, s := range segs {
		if s.last <= after {
			continue // fully covered by the caller's position
		}
		if s.start > expect {
			if !strict && replayed == 0 {
				// The epochs between the caller and the log's first record
				// were truncated behind a checkpoint: recoverable.
				return 0, &TruncatedError{After: after, First: s.start}
			}
			return replayed, &CorruptError{Path: s.path, Offset: -1,
				Msg: fmt.Sprintf("epoch gap: log resumes at %d, caller covered through %d", s.start, expect-1)}
		}
		b, err := l.opts.FS.ReadFile(s.path)
		if err != nil {
			if !strict && errors.Is(err, iofs.ErrNotExist) {
				// Lost a race with TruncateThrough: the segment's epochs are
				// behind a durable checkpoint now. Catch up from there.
				return replayed, &TruncatedError{After: after, First: 0}
			}
			return replayed, fmt.Errorf("wal: replay: %w", err)
		}
		if s.limit < int64(len(b)) {
			b = b[:s.limit] // never read past the watermark
		}
		corrupt := func(off int64, format string, args ...any) error {
			return &CorruptError{Path: s.path, Offset: off, Msg: fmt.Sprintf(format, args...)}
		}
		off := int64(0)
		for off < int64(len(b)) {
			rem := int64(len(b)) - off
			if rem < frameHeaderSize {
				return replayed, corrupt(off, "truncated frame header: %d bytes remain, need %d", rem, frameHeaderSize)
			}
			plen := int64(binary.LittleEndian.Uint32(b[off:]))
			sum := binary.LittleEndian.Uint32(b[off+4:])
			if plen > maxRecordBytes {
				return replayed, corrupt(off, "frame length %d exceeds limit %d", plen, maxRecordBytes)
			}
			if rem-frameHeaderSize < plen {
				return replayed, corrupt(off, "truncated frame: needs %d payload bytes, %d remain", plen, rem-frameHeaderSize)
			}
			payload := b[off+frameHeaderSize : off+frameHeaderSize+plen]
			if crc32.Checksum(payload, crcTable) != sum {
				return replayed, corrupt(off, "frame checksum mismatch")
			}
			rec, err := decodePayload(payload)
			if err != nil {
				return replayed, corrupt(off, "checksum-valid record does not decode: %v", err)
			}
			off += frameHeaderSize + plen
			if rec.Epoch <= after {
				continue
			}
			if rec.Epoch != expect {
				return replayed, corrupt(off-plen-frameHeaderSize,
					"epoch gap: log resumes at %d, caller covered through %d", rec.Epoch, expect-1)
			}
			if err := fn(rec); err != nil {
				return replayed, err
			}
			expect++
			replayed++
		}
	}
	return replayed, nil
}

// Append logs one record. The record's epoch must extend the log by
// exactly one (the first record after a checkpoint may start anywhere).
// Under SyncAlways the record is durable when Append returns; under the
// other policies it is durable after the next Sync covering it.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: append: log closed")
	}
	if l.failed != nil {
		return fmt.Errorf("wal: append after failed write (reopen to recover): %w", l.failed)
	}
	if l.haveAny && r.Epoch != l.last+1 {
		return fmt.Errorf("wal: append epoch %d does not extend log at epoch %d", r.Epoch, l.last)
	}
	buf, err := appendRecord(l.encBuf[:0], r)
	if err != nil {
		return err
	}
	l.encBuf = buf

	if l.active != nil && l.activeAt.size+int64(len(buf)) > l.opts.SegmentBytes && l.activeAt.size > 0 {
		if err := l.sealActiveLocked(); err != nil {
			return err
		}
	}
	if l.active == nil {
		if err := l.openActiveLocked(r.Epoch); err != nil {
			return err
		}
	}
	if _, err := l.active.Write(buf); err != nil {
		l.failed = err
		return fmt.Errorf("wal: append: %w", err)
	}
	l.activeAt.last = r.Epoch
	l.activeAt.size += int64(len(buf))
	if !l.haveAny {
		l.first = r.Epoch
		l.haveAny = true
	}
	l.last = r.Epoch
	l.dirty = true
	switch l.opts.Sync {
	case SyncAlways:
		return l.syncLocked()
	case SyncNever:
		// Durability is delegated to the OS, so the ack point is Append
		// itself: the record joins the shipping watermark immediately.
		l.advanceWatermarkLocked()
	}
	return nil
}

// openActiveLocked creates the segment that will hold epoch as its first
// record, making its directory entry durable before any record lands in
// it (a synced record in an unlinked file would not survive the crash).
func (l *Log) openActiveLocked(epoch uint64) error {
	path := filepath.Join(l.dir, segmentName(epoch))
	f, err := l.opts.FS.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		l.failed = err
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := l.opts.FS.SyncDir(l.dir); err != nil {
		f.Close()
		l.failed = err
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.active = f
	l.activeAt = segment{path: path, start: epoch, last: epoch - 1}
	return nil
}

// sealActiveLocked syncs, closes and retires the active segment.
func (l *Log) sealActiveLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		l.failed = err
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	l.sealed = append(l.sealed, l.activeAt)
	l.active = nil
	l.activeAt = segment{}
	l.syncedSize = 0 // the watermark's byte bound is per active segment
	return nil
}

// Sync forces every appended record to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.failed != nil {
		return fmt.Errorf("wal: sync after failed write: %w", l.failed)
	}
	if l.active == nil || !l.dirty {
		l.advanceWatermarkLocked()
		return nil
	}
	if err := l.active.Sync(); err != nil {
		l.failed = err
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.dirty = false
	l.advanceWatermarkLocked()
	return nil
}

// advanceWatermarkLocked moves the shipping watermark to the current
// append position and wakes Synced waiters when it actually moved.
func (l *Log) advanceWatermarkLocked() {
	size := int64(0)
	if l.active != nil {
		size = l.activeAt.size
	}
	if l.synced == l.last && l.syncedSize == size {
		return
	}
	l.synced = l.last
	l.syncedSize = size
	close(l.syncCh)
	l.syncCh = make(chan struct{})
}

func (l *Log) syncLoop() {
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			// Best effort: a sync failure is sticky and surfaces on the
			// next Append, which is where the caller can act on it.
			_ = l.syncLocked()
			l.mu.Unlock()
		case <-l.stopSync:
			return
		}
	}
}

// TruncateThrough removes every segment whose records are all covered by
// a checkpoint at epoch (the caller guarantees a checkpoint at least that
// new is durable). Segments are removed oldest-first, so a crash mid-way
// always leaves a contiguous epoch suffix behind the checkpoint. The
// active segment is sealed first when the checkpoint covers it entirely.
//
// A Remove or directory-sync failure here is housekeeping, not data loss:
// the error is returned so the caller can count and retry it, but the
// writer is NOT poisoned — Append keeps working, and the next
// TruncateThrough picks up where this one stopped. (Sealing the active
// segment is write-path work and does poison on failure, as every
// sync/close does.)
func (l *Log) TruncateThrough(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: truncate: log closed")
	}
	if l.failed != nil {
		return fmt.Errorf("wal: truncate after failed write: %w", l.failed)
	}
	if l.active != nil && l.activeAt.last <= epoch && l.activeAt.size > 0 {
		if err := l.sealActiveLocked(); err != nil {
			return err
		}
	}
	removed := 0
	var rmErr error
	for _, s := range l.sealed {
		if s.last > epoch {
			break
		}
		if err := l.opts.FS.Remove(s.path); err != nil && !errors.Is(err, iofs.ErrNotExist) {
			rmErr = err // keep the segment listed; a later truncate retries it
			break
		}
		removed++
	}
	if removed > 0 {
		l.sealed = append(l.sealed[:0], l.sealed[removed:]...)
		if err := l.opts.FS.SyncDir(l.dir); err != nil && rmErr == nil {
			rmErr = err
		}
		switch {
		case len(l.sealed) > 0:
			l.first = l.sealed[0].start
		case l.active != nil && l.activeAt.size > 0:
			l.first = l.activeAt.start
		default:
			l.haveAny = l.last > epoch // all records removed ⇒ empty log
			if !l.haveAny {
				l.first, l.last = 0, 0
				l.synced, l.syncedSize = 0, 0
			}
		}
	}
	if rmErr != nil {
		return fmt.Errorf("wal: truncate (retryable, log still appendable): %w", rmErr)
	}
	return nil
}

// Close flushes, syncs and closes the log. Safe to call once; the log is
// unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.stopSync != nil {
		close(l.stopSync)
	}
	var firstErr error
	if l.active != nil {
		if l.failed == nil {
			if err := l.syncLocked(); err != nil {
				firstErr = err
			}
		}
		if err := l.active.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: close: %w", err)
		}
		l.active = nil
	}
	// Wake Synced waiters and leave the channel closed: the watermark will
	// never advance again, so a waiter must not block on a closed log.
	close(l.syncCh)
	return firstErr
}

// Stats reports the log's current shape (see Stats).
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Dir:         l.dir,
		Policy:      l.opts.Sync.String(),
		SyncedEpoch: l.synced,
		TornBytes:   l.torn,
	}
	if l.haveAny {
		st.FirstEpoch, st.LastEpoch = l.first, l.last
	}
	for _, s := range l.sealed {
		st.Segments++
		st.Bytes += s.size
	}
	if l.active != nil {
		st.Segments++
		st.Bytes += l.activeAt.size
	}
	return st
}

// LastEpoch returns the newest epoch in the log (0 when empty).
func (l *Log) LastEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.haveAny {
		return 0
	}
	return l.last
}
