package wal

// The shipping-read contract: Tail/Replay bounded by the watermark and
// safe under concurrent Append/TruncateThrough, truncation typed as
// ErrTruncated, housekeeping failures that must not poison the writer,
// and the cross-process Reader. The two regression tests at the top pin
// the bugs a live tailer flushed out of the PR-7 code: an unbounded
// frame slice (panic on a short read) and a truncate failure bricking
// Append.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestReplayShortReadIsTypedNotPanic pins the bounds-check regression:
// a segment that shrank after Open (external mutation, admin mishap)
// used to panic Replay mid-slice; it must surface as *CorruptError.
func TestReplayShortReadIsTypedNotPanic(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, 1, 10)

	// Cut the segment mid-frame behind the log's back: the cached sizes
	// now promise more bytes than the file holds.
	seg := lastSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	_, err = l.Replay(0, func(Record) error { return nil })
	var ce *CorruptError
	if !errors.Is(err, ErrWALCorrupt) || !errors.As(err, &ce) {
		t.Fatalf("short read must fail as *CorruptError, got %v", err)
	}
	if _, err := l.Tail(0, func(Record) error { return nil }); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("Tail over the short read must fail typed too, got %v", err)
	}
}

// failingRemoveFS injects Remove failures: the disk-janitoring error
// TruncateThrough must survive. (walfault's crash model fails every op
// after the injection point, which is the wrong shape for "the error was
// transient and the writer must keep going" — this wrapper is that
// shape.)
type failingRemoveFS struct {
	FS
	failures atomic.Int32 // remaining Remove calls to fail
}

func (f *failingRemoveFS) Remove(name string) error {
	if f.failures.Add(-1) >= 0 {
		return fmt.Errorf("remove %s: injected EIO", name)
	}
	return f.FS.Remove(name)
}

// TestTruncateFailureDoesNotPoisonAppend pins the writer-poisoning
// regression: a failed segment Remove is housekeeping, not data loss —
// Append must keep working and a later TruncateThrough must retry.
func TestTruncateFailureDoesNotPoisonAppend(t *testing.T) {
	fsys := &failingRemoveFS{FS: OS}
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 256, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, 1, 60)
	segsBefore := l.Stats().Segments

	fsys.failures.Store(1)
	if err := l.TruncateThrough(30); err == nil {
		t.Fatal("truncate with a failing Remove reported success")
	}

	// The writer is alive: appends, syncs and replays all still work.
	appendAll(t, l, 61, 70)
	if err := l.Sync(); err != nil {
		t.Fatalf("sync after failed truncate: %v", err)
	}
	recs := replayAll(t, l, 30)
	if len(recs) != 40 || recs[len(recs)-1].Epoch != 70 {
		t.Fatalf("replay after failed truncate: %d records, last %d", len(recs), recs[len(recs)-1].Epoch)
	}

	// And the truncate is retryable: the next call removes what the
	// failed one could not.
	if err := l.TruncateThrough(30); err != nil {
		t.Fatalf("retried truncate: %v", err)
	}
	if after := l.Stats().Segments; after >= segsBefore {
		t.Fatalf("retried truncate removed nothing: %d → %d segments", segsBefore, after)
	}
	if recs := replayAll(t, l, 30); len(recs) != 40 {
		t.Fatalf("records lost by retried truncate: %d", len(recs))
	}
}

// TestTailWatermark: Tail never delivers records the policy has not
// acknowledged, and Synced's channel signals the advance.
func TestTailWatermark(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, 1, 5)

	// Nothing synced yet: the records exist but are not shippable.
	if n, err := l.Tail(0, func(Record) error { return nil }); err != nil || n != 0 {
		t.Fatalf("Tail before sync delivered %d records (err %v), want 0", n, err)
	}
	epoch, ch := l.Synced()
	if epoch != 0 {
		t.Fatalf("watermark %d before any sync", epoch)
	}
	select {
	case <-ch:
		t.Fatal("sync channel closed before any sync")
	default:
	}

	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("sync channel not closed by the watermark advance")
	}
	if epoch, _ := l.Synced(); epoch != 5 {
		t.Fatalf("watermark %d after sync, want 5", epoch)
	}
	var got []uint64
	if _, err := l.Tail(0, func(r Record) error { got = append(got, r.Epoch); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("Tail after sync: %v", got)
	}
}

// TestTailTruncatedIsTyped: asking for epochs behind a truncation is the
// recoverable ErrTruncated, not corruption.
func TestTailTruncatedIsTyped(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, 1, 60)
	if err := l.TruncateThrough(30); err != nil {
		t.Fatal(err)
	}

	_, err = l.Tail(0, func(Record) error { return nil })
	var te *TruncatedError
	if !errors.Is(err, ErrTruncated) || !errors.As(err, &te) {
		t.Fatalf("Tail behind truncation: want *TruncatedError, got %v", err)
	}
	if te.First == 0 || te.First > 31 {
		t.Fatalf("TruncatedError.First = %d, want the log's first epoch ≤ 31", te.First)
	}
	// Tailing from the surviving range works; so does Tail at the head.
	if n, err := l.Tail(te.First-1, func(Record) error { return nil }); err != nil || n != 60-int(te.First-1) {
		t.Fatalf("Tail from %d: %d records, err %v", te.First-1, n, err)
	}
	if n, err := l.Tail(60, func(Record) error { return nil }); err != nil || n != 0 {
		t.Fatalf("Tail at head: %d records, err %v", n, err)
	}
}

// TestReplayTailConcurrent is the enforced version of the Log's
// concurrency contract: Replay and Tail run against live Append and
// TruncateThrough (run under -race in CI). Each Tail call must deliver a
// contiguous ascending window, truncation must surface only as
// ErrTruncated, and the tailer must reach the final epoch.
func TestReplayTailConcurrent(t *testing.T) {
	const last = 300
	l, err := Open(t.TempDir(), Options{Sync: SyncAlways, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // writer: appends with periodic truncation behind it
		defer wg.Done()
		for e := uint64(1); e <= last; e++ {
			if err := l.Append(testRecord(e)); err != nil {
				t.Errorf("append %d: %v", e, err)
				return
			}
			if e%40 == 0 {
				if err := l.TruncateThrough(e - 30); err != nil {
					t.Errorf("truncate through %d: %v", e-30, err)
					return
				}
			}
		}
	}()
	go func() { // tailer: contiguous windows, typed truncation only
		defer wg.Done()
		pos := uint64(0)
		for pos < last {
			n, err := l.Tail(pos, func(r Record) error {
				if r.Epoch != pos+1 {
					return fmt.Errorf("tail gap: got %d at pos %d", r.Epoch, pos)
				}
				pos++
				return nil
			})
			if err != nil {
				var te *TruncatedError
				if errors.As(err, &te) && te.First > pos {
					pos = te.First - 1 // catch up past the truncation
					continue
				}
				t.Errorf("tail at %d: %v", pos, err)
				return
			}
			if n == 0 {
				epoch, ch := l.Synced()
				if epoch <= pos {
					select {
					case <-ch:
					case <-time.After(5 * time.Second):
						t.Errorf("no watermark advance past %d", pos)
						return
					}
				}
			}
		}
	}()
	go func() { // strict replayer from a position truncation never reaches
		defer wg.Done()
		for {
			top := uint64(0)
			if _, err := l.Replay(last-30, func(r Record) error {
				top = r.Epoch
				return nil
			}); err != nil {
				t.Errorf("concurrent Replay: %v", err)
				return
			}
			if top >= last {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
}

// TestOpenReaderTailsLiveDirectory: the cross-process reader follows a
// directory another Log is actively writing and truncating, delivering
// one contiguous lineage.
func TestOpenReaderTailsLiveDirectory(t *testing.T) {
	const last = 200
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	r, err := OpenReader(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := uint64(1); e <= last; e++ {
			if err := l.Append(testRecord(e)); err != nil {
				t.Errorf("append %d: %v", e, err)
				return
			}
			if e%50 == 0 {
				if err := l.TruncateThrough(e - 40); err != nil {
					t.Errorf("truncate: %v", err)
					return
				}
			}
		}
	}()

	pos := uint64(0)
	deadline := time.Now().Add(10 * time.Second)
	for pos < last {
		if time.Now().After(deadline) {
			t.Fatalf("reader stuck at epoch %d", pos)
		}
		_, err := r.ReplayFrom(pos, func(rec Record) error {
			if rec.Epoch != pos+1 {
				return fmt.Errorf("reader gap: got %d at pos %d", rec.Epoch, pos)
			}
			pos++
			return nil
		})
		if err != nil {
			var te *TruncatedError
			if errors.As(err, &te) && te.First > pos {
				pos = te.First - 1
				continue
			}
			t.Fatalf("reader at %d: %v", pos, err)
		}
	}
	<-done
}

// TestOpenReaderToleratesTornTail: garbage past the last complete frame
// of the newest segment is an in-flight write from the reader's point of
// view — stop cleanly, no error. The same garbage mid-log is corruption.
func TestOpenReaderToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 10)
	l.Close()
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xDE, 0xAD, 0xBE})
	f.Close()

	r, err := OpenReader(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := r.ReplayFrom(0, func(Record) error { return nil })
	if err != nil || n != 10 {
		t.Fatalf("reader over torn tail: %d records, err %v; want 10, nil", n, err)
	}
}

func TestOpenReaderMidLogCorruptionIsTyped(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 40)
	l.Close()
	names, _ := filepath.Glob(filepath.Join(dir, "*"+segmentSuffix))
	if len(names) < 2 {
		t.Fatalf("want ≥2 segments, have %d", len(names))
	}
	b, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(names[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReplayFrom(0, func(Record) error { return nil })
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("mid-log corruption: want ErrWALCorrupt, got %v", err)
	}
}

// TestFrameStreamRoundTrip: the exported wire codec matches the on-disk
// framing byte for byte and rejects a corrupted stream.
func TestFrameStreamRoundTrip(t *testing.T) {
	var buf []byte
	for e := uint64(1); e <= 20; e++ {
		var err error
		buf, err = AppendFrame(buf, testRecord(e))
		if err != nil {
			t.Fatal(err)
		}
	}
	br := &sliceReader{b: buf}
	for e := uint64(1); e <= 20; e++ {
		rec, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", e, err)
		}
		if rec.Epoch != e {
			t.Fatalf("frame %d decoded epoch %d", e, rec.Epoch)
		}
	}
	if _, err := ReadFrame(br); err == nil {
		t.Fatal("read past the last frame succeeded")
	}

	buf[len(buf)-1] ^= 0xFF
	br = &sliceReader{b: buf}
	var lastErr error
	for {
		if _, lastErr = ReadFrame(br); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrWALCorrupt) {
		t.Fatalf("corrupted stream: want ErrWALCorrupt, got %v", lastErr)
	}
}

// sliceReader is an io.Reader over a byte slice that returns short reads
// (1 byte at a time) to exercise ReadFrame's ReadFull handling.
type sliceReader struct {
	b   []byte
	off int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.off >= len(s.b) {
		return 0, io.EOF
	}
	p[0] = s.b[s.off]
	s.off++
	return 1, nil
}
