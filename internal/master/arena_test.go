package master

// Arena round-trip and corruption tests: a saved snapshot must load back
// deep-equal (checkEquiv, the same oracle the delta chain is held to) and
// probe-identical to the original, saving must be deterministic, and a
// corrupt or truncated image must fail with a typed *SnapshotError —
// never a panic and never an out-of-range read.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/relation"
	"repro/internal/rule"
)

func saveArenaBytes(t testing.TB, d *Data, sigma *rule.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.SaveArena(&buf, sigma); err != nil {
		t.Fatalf("SaveArena: %v", err)
	}
	return buf.Bytes()
}

func loadArenaOrFatal(t testing.TB, img []byte, sigma *rule.Set) *Data {
	t.Helper()
	d, err := LoadArenaBytes(img, sigma)
	if err != nil {
		t.Fatalf("LoadArenaBytes: %v", err)
	}
	return d
}

// checkProbesAgree fires random probes at both snapshots and requires
// byte-identical answers across every public lookup path.
func checkProbesAgree(t testing.TB, ctx string, a, b *Data, sigma *rule.Set, vals []string, trials int) {
	t.Helper()
	rng := rand.New(rand.NewSource(9_000_001))
	probe := make(relation.Tuple, sigma.Schema().Arity())
	for trial := 0; trial < trials; trial++ {
		for i := range probe {
			probe[i] = relation.String(vals[rng.Intn(len(vals))])
		}
		zSet := relation.NewAttrSet(rng.Perm(len(probe))[:rng.Intn(len(probe)+1)]...)
		for _, ru := range sigma.Rules() {
			if ga, gb := a.MatchIDs(ru, probe), b.MatchIDs(ru, probe); !eqInts(ga, gb) {
				t.Fatalf("%s: rule %s MatchIDs %v vs %v", ctx, ru.Name(), ga, gb)
			}
			if ga, gb := a.HasMatch(ru, probe), b.HasMatch(ru, probe); ga != gb {
				t.Fatalf("%s: rule %s HasMatch %v vs %v", ctx, ru.Name(), ga, gb)
			}
			va, vb := a.RHSValues(ru, probe), b.RHSValues(ru, probe)
			if len(va) != len(vb) {
				t.Fatalf("%s: rule %s RHSValues %v vs %v", ctx, ru.Name(), va, vb)
			}
			for i := range va {
				if !va[i].Equal(vb[i]) {
					t.Fatalf("%s: rule %s RHSValues %v vs %v", ctx, ru.Name(), va, vb)
				}
			}
			if ga, gb := a.CompatibleExists(ru, probe, zSet), b.CompatibleExists(ru, probe, zSet); ga != gb {
				t.Fatalf("%s: rule %s CompatibleExists %v vs %v (z=%v)", ctx, ru.Name(), ga, gb, zSet.Positions())
			}
			if ga, gb := a.PatternSupported(ru), b.PatternSupported(ru); ga != gb {
				t.Fatalf("%s: rule %s PatternSupported %v vs %v", ctx, ru.Name(), ga, gb)
			}
			xm := ru.LHSMRef()
			vproj := make([]relation.Value, len(xm))
			for i := range xm {
				vproj[i] = probe[i%len(probe)]
			}
			if ga, gb := a.Lookup(xm, vproj), b.Lookup(xm, vproj); !eqInts(ga, gb) {
				t.Fatalf("%s: rule %s Lookup %v vs %v", ctx, ru.Name(), ga, gb)
			}
		}
	}
}

// TestArenaRoundTrip saves randomized (Σ, Dm) instances — some taken a few
// deltas deep first, so overlays are frozen too — and checks the loaded
// snapshot against the rebuild oracle and the original's probe answers.
func TestArenaRoundTrip(t *testing.T) {
	for seed := 0; seed < 40; seed++ {
		rng := rand.New(rand.NewSource(int64(51_000_000 + seed)))
		d, sigma, rm, vals := randomDeltaInstance(rng)
		for step := 0; step < rng.Intn(4); step++ {
			adds, deletes := randomDelta(rng, d.Len(), rm.Arity(), vals)
			next, err := d.ApplyDelta(adds, deletes)
			if err != nil {
				t.Fatalf("seed %d: ApplyDelta: %v", seed, err)
			}
			d = next
		}
		ctx := fmt.Sprintf("seed %d", seed)
		img := saveArenaBytes(t, d, sigma)
		loaded := loadArenaOrFatal(t, img, sigma)
		if loaded.Epoch() != d.Epoch() || loaded.Len() != d.Len() || loaded.Shards() != d.Shards() {
			t.Fatalf("%s: loaded epoch/len/shards %d/%d/%d, want %d/%d/%d", ctx,
				loaded.Epoch(), loaded.Len(), loaded.Shards(), d.Epoch(), d.Len(), d.Shards())
		}
		for i := 0; i < d.Len(); i++ {
			if !loaded.Tuple(i).Equal(d.Tuple(i)) {
				t.Fatalf("%s: tuple %d = %v, want %v", ctx, i, loaded.Tuple(i), d.Tuple(i))
			}
		}
		checkEquiv(t, ctx, loaded, sigma)
		checkProbesAgree(t, ctx, d, loaded, sigma, vals, 16)
		ms := loaded.MemStats()
		if !ms.ArenaBacked || ms.ArenaBytes != int64(len(img)) {
			t.Fatalf("%s: MemStats arena accounting = %+v", ctx, ms)
		}
		if hs := d.MemStats(); hs.ArenaBacked {
			t.Fatalf("%s: heap-built snapshot reports arena backing", ctx)
		}
	}
}

// TestArenaSaveDeterministic pins the byte-level determinism the CI
// equality gates rely on: same snapshot → same image, and an image
// re-saved after loading is identical to itself.
func TestArenaSaveDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(52_000_000))
	d, sigma, _, _ := randomDeltaInstance(rng)
	img1 := saveArenaBytes(t, d, sigma)
	img2 := saveArenaBytes(t, d, sigma)
	if !bytes.Equal(img1, img2) {
		t.Fatal("two saves of the same snapshot differ")
	}
	loaded := loadArenaOrFatal(t, img1, sigma)
	img3 := saveArenaBytes(t, loaded, sigma)
	if !bytes.Equal(img1, img3) {
		t.Fatal("save → load → save is not a fixed point")
	}
}

// TestArenaFileRoundTrip exercises the file path — SaveArenaFile's
// temp+rename and LoadArena's mmap (with its read fallback on platforms
// without one) — on the paper-example master at a few shard counts.
func TestArenaFileRoundTrip(t *testing.T) {
	rel, sigma := benchMasterRelation(500)
	for _, shards := range []int{1, 4} {
		d := MustNewForRules(rel, sigma, WithShards(shards))
		path := filepath.Join(t.TempDir(), "master.arena")
		if err := d.SaveArenaFile(path, sigma); err != nil {
			t.Fatalf("SaveArenaFile: %v", err)
		}
		loaded, err := LoadArena(path, sigma)
		if err != nil {
			t.Fatalf("LoadArena: %v", err)
		}
		ctx := fmt.Sprintf("shards=%d", shards)
		checkEquiv(t, ctx, loaded, sigma)
		// Probe with real projections: every master zip must find its
		// tuple through the loaded index, identically to the heap build.
		ru := sigma.Rules()[0]
		probe := make(relation.Tuple, sigma.Schema().Arity())
		for i := range probe {
			probe[i] = relation.String("x")
		}
		for i := 0; i < rel.Len(); i += 7 {
			probe[7] = rel.Tuple(i)[7]
			if ga, gb := d.MatchIDs(ru, probe), loaded.MatchIDs(ru, probe); !eqInts(ga, gb) {
				t.Fatalf("%s: MatchIDs for zip %v: %v vs %v", ctx, probe[7], ga, gb)
			}
		}
		ms := loaded.MemStats()
		if !ms.ArenaBacked {
			t.Fatalf("%s: loaded snapshot not arena-backed: %+v", ctx, ms)
		}
	}
}

// TestArenaSigmaMismatch: an image saved for one Σ must be refused for a
// different Σ (extra rule, different pattern, different schema) with a
// typed error, not loaded into wrong probe plans.
func TestArenaSigmaMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(53_000_000))
	d, sigma, _, _ := randomDeltaInstance(rng)
	img := saveArenaBytes(t, d, sigma)

	// A Σ with one rule dropped: rule-count mismatch.
	if sigma.Len() > 1 {
		sub := rule.MustNewSet(sigma.Schema(), sigma.MasterSchema(), sigma.Rules()[:sigma.Len()-1]...)
		if _, err := LoadArenaBytes(img, sub); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("fewer rules: got %v, want ErrBadSnapshot", err)
		}
	}

	// A Σ over a different master schema.
	other := relation.StringSchema("Other", "Q1", "Q2", "Q3")
	osig := rule.MustNewSet(sigma.Schema(), other)
	if _, err := LoadArenaBytes(img, osig); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("different schema: got %v, want ErrBadSnapshot", err)
	}
}

// corruptCase is one targeted mutation of a valid image.
type corruptCase struct {
	name string
	mut  func(img []byte)
}

func arenaCorruptionCases(img []byte) []corruptCase {
	secOff := func(i int) int {
		return int(binary.LittleEndian.Uint64(img[hdrSections+8*i:]))
	}
	return []corruptCase{
		{"bad magic", func(b []byte) { b[0] = 'X' }},
		{"bad version", func(b []byte) { binary.LittleEndian.PutUint32(b[hdrVersion:], 99) }},
		{"bad endian marker", func(b []byte) { binary.LittleEndian.PutUint32(b[hdrEndian:], 0x04030201) }},
		{"zero shards", func(b []byte) { binary.LittleEndian.PutUint32(b[hdrNShards:], 0) }},
		{"shard count over limit", func(b []byte) { binary.LittleEndian.PutUint32(b[hdrNShards:], MaxShards+1) }},
		{"wrong shard count", func(b []byte) {
			// One more shard than the tables were written for: the index
			// decoder must fail on counts/bounds, never read past the file.
			n := binary.LittleEndian.Uint32(b[hdrNShards:])
			binary.LittleEndian.PutUint32(b[hdrNShards:], n+1)
		}},
		{"tuple count over int32", func(b []byte) { binary.LittleEndian.PutUint64(b[hdrNTuples:], 1<<33) }},
		{"file size mismatch", func(b []byte) { binary.LittleEndian.PutUint64(b[hdrFileSize:], uint64(len(b)+8)) }},
		{"section offset past EOF", func(b []byte) {
			binary.LittleEndian.PutUint64(b[hdrSections+8*secColumns:], uint64(len(b)+8))
		}},
		{"section offset misaligned", func(b []byte) {
			binary.LittleEndian.PutUint64(b[hdrSections+8*secIndexes:], uint64(secOff(secIndexes)+4))
		}},
		{"section offsets out of order", func(b []byte) {
			binary.LittleEndian.PutUint64(b[hdrSections+8*secSymbols:], uint64(secOff(secColumns)+8))
		}},
		{"column id out of range", func(b []byte) {
			binary.LittleEndian.PutUint32(b[secOff(secColumns):], 0xffffffff)
		}},
		{"bucket table corrupt", func(b []byte) {
			// Stomp the first index's first shard header: slot count loses
			// its power-of-two-ness (or the table its bounds) either way.
			off := secOff(secIndexes)
			nxm := int(binary.LittleEndian.Uint32(b[off:]))
			hdr := off + 4 + 4*nxm
			hdr += (8 - hdr%8) % 8
			binary.LittleEndian.PutUint64(b[hdr:], 3)
		}},
		{"rule bitmap corrupt", func(b []byte) {
			// Flip a word inside the rules section: popcount or the
			// beyond-|Dm| guard must catch it.
			off := secOff(secRules)
			if off+24 <= len(b) {
				b[off+16] ^= 0xff
				b[off+17] ^= 0xff
			}
		}},
	}
}

// TestArenaCorruption runs the targeted mutations plus every truncation
// length and requires a typed failure each time.
func TestArenaCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(54_000_000))
	d, sigma, _, _ := randomDeltaInstance(rng)
	img := saveArenaBytes(t, d, sigma)

	for _, tc := range arenaCorruptionCases(img) {
		t.Run(tc.name, func(t *testing.T) {
			mut := append([]byte(nil), img...)
			tc.mut(mut)
			_, err := LoadArenaBytes(mut, sigma)
			if err == nil {
				t.Fatal("corrupt image loaded without error")
			}
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("error %v does not match ErrBadSnapshot", err)
			}
			var se *SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *SnapshotError", err)
			}
		})
	}

	t.Run("every truncation", func(t *testing.T) {
		for l := 0; l < len(img); l++ {
			if _, err := LoadArenaBytes(img[:l:l], sigma); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("truncation to %d bytes: got %v, want ErrBadSnapshot", l, err)
			}
		}
	})

	t.Run("random byte flips never panic", func(t *testing.T) {
		frng := rand.New(rand.NewSource(55_000_000))
		for trial := 0; trial < 500; trial++ {
			mut := append([]byte(nil), img...)
			for k := 0; k <= frng.Intn(3); k++ {
				mut[frng.Intn(len(mut))] ^= byte(1 + frng.Intn(255))
			}
			d, err := LoadArenaBytes(mut, sigma)
			if err != nil {
				if !errors.Is(err, ErrBadSnapshot) {
					t.Fatalf("trial %d: error %v does not match ErrBadSnapshot", trial, err)
				}
				continue
			}
			// A benign flip (padding, a bucket key) may still load; the
			// loaded snapshot must at least answer probes without panics.
			_ = d.MemStats()
			probe := make(relation.Tuple, sigma.Schema().Arity())
			for i := range probe {
				probe[i] = relation.String("a")
			}
			for _, ru := range sigma.Rules() {
				_ = d.MatchIDs(ru, probe)
				_ = d.RHSValues(ru, probe)
			}
		}
	})
}

// TestArenaUnalignedInput forces the realignment copy: the loader must
// accept an image at an odd address.
func TestArenaUnalignedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(56_000_000))
	d, sigma, _, _ := randomDeltaInstance(rng)
	img := saveArenaBytes(t, d, sigma)
	backing := make([]byte, len(img)+1)
	copy(backing[1:], img)
	loaded, err := LoadArenaBytes(backing[1:], sigma)
	if err != nil {
		t.Fatalf("unaligned load: %v", err)
	}
	checkEquiv(t, "unaligned", loaded, sigma)
}

// TestArenaEmptyMaster: a zero-tuple master round-trips (empty tables,
// zero-word bitmaps).
func TestArenaEmptyMaster(t *testing.T) {
	rel, sigma := benchMasterRelation(0)
	d := MustNewForRules(rel, sigma, WithShards(2))
	img := saveArenaBytes(t, d, sigma)
	loaded := loadArenaOrFatal(t, img, sigma)
	if loaded.Len() != 0 {
		t.Fatalf("loaded %d tuples from empty master", loaded.Len())
	}
	checkEquiv(t, "empty", loaded, sigma)
	next, err := loaded.ApplyDelta([]relation.Tuple{benchMasterTuple(rand.New(rand.NewSource(1)), 0)}, nil)
	if err != nil {
		t.Fatalf("ApplyDelta on empty loaded snapshot: %v", err)
	}
	checkEquiv(t, "empty+add", next, sigma)
}
