package master

// This file implements the save side of the columnar master arena: a
// single flat, versioned, offset-based binary image of one Data snapshot,
// written once and loaded by page-in (arena_load.go) instead of a
// NewForRules rebuild. The format is little-endian throughout, every
// section starts 8-byte aligned, and all variable-size structures are
// reached through the header's offset table — never by scanning — so a
// loader maps the file and views the tables in place.
//
// Layout (see DESIGN.md, "Columnar arena format"):
//
//	header   120 bytes: magic "CFXARENA", version, endian marker,
//	         epoch, |Dm|, shard/arity/symbol/structure counts, file
//	         size, and the 7 section offsets
//	schema   master schema name + typed attribute list (load-time
//	         validation against Σ's master schema)
//	symbols  every distinct cell value: fixed 16-byte records + a string
//	         heap. The first nsyms records are the snapshot's interning
//	         table in id order (the stable-id contract with
//	         relation.Symbols.Export); the rest are extension values —
//	         cells of non-indexed columns, present only so tuples can be
//	         materialized, never entered into the loaded symbol table.
//	columns  per-column vectors of n uint32 value ids (column-major)
//	indexes  per index: its Xm list, then per shard a frozen open-
//	         addressing bucket table (arena_flat.go)
//	postings per posting list: its column, then per-shard tables
//	rules    per rule of Σ, in Σ order: an FNV-1a signature of its
//	         rendering plus its pattern-support bitmap
//	auth     a presence flag plus the snapshot's 32-byte sparse-Merkle
//	         root (authtree). Version-2 addition: version-1 images have
//	         no auth section and load as explicitly unauthenticated;
//	         a version-2 image with the flag set is recomputed-and-
//	         verified against the stored root at load time.
//
// Saving is deterministic: table keys are inserted in ascending order,
// symbols in id order, extension values in row-major cell-scan order —
// the same snapshot always produces the same bytes, which CI exploits to
// diff fix outputs between heap-built and arena-loaded masters.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/relation"
	"repro/internal/rule"
)

const (
	arenaMagic      = "CFXARENA"
	arenaVersion    = 2
	arenaEndianMark = 0x01020304
	arenaHeaderSize = 120
	// Version-1 images (pre-auth): 112-byte header, 6 sections, no root.
	// The loader still accepts them — as explicitly unauthenticated.
	arenaVersionV1    = 1
	arenaHeaderSizeV1 = 112
	numSectionsV1     = 6
)

// Header field offsets. The offset table holds the absolute position of
// each section, in file order.
const (
	hdrMagic    = 0  // 8 bytes
	hdrVersion  = 8  // u32
	hdrEndian   = 12 // u32
	hdrEpoch    = 16 // u64
	hdrNTuples  = 24 // u64
	hdrNShards  = 32 // u32
	hdrArity    = 36 // u32
	hdrNSyms    = 40 // u32
	hdrNIndexes = 44 // u32
	hdrNPosts   = 48 // u32
	hdrNRules   = 52 // u32
	hdrFileSize = 56 // u64
	hdrSections = 64 // 7 × u64 (6 in version 1)
)

// Section indexes into the header offset table.
const (
	secSchema = iota
	secSymbols
	secColumns
	secIndexes
	secPostings
	secRules
	secAuth
	numSections
)

var sectionName = [numSections]string{
	"schema", "symbols", "columns", "indexes", "postings", "rules", "auth",
}

// ruleSig fingerprints a rule by its canonical rendering, binding a saved
// pattern bitmap to the rule it was evaluated for. Load refuses a
// snapshot whose rule list does not match Σ's, signature by signature.
func ruleSig(ru *rule.Rule) uint64 {
	acc := relation.HashSeed()
	s := ru.String()
	for i := 0; i < len(s); i++ {
		acc ^= uint64(s[i])
		acc *= 1099511628211
	}
	return acc
}

// arenaBuilder accumulates the image in memory (the header needs the
// final size and section offsets, so the image is assembled before the
// single Write).
type arenaBuilder struct {
	buf []byte
}

func (b *arenaBuilder) align8() {
	for len(b.buf)%8 != 0 {
		b.buf = append(b.buf, 0)
	}
}

func (b *arenaBuilder) u8(v uint8)   { b.buf = append(b.buf, v) }
func (b *arenaBuilder) u32(v uint32) { b.buf = binary.LittleEndian.AppendUint32(b.buf, v) }
func (b *arenaBuilder) u64(v uint64) { b.buf = binary.LittleEndian.AppendUint64(b.buf, v) }
func (b *arenaBuilder) bytes(p []byte) {
	b.buf = append(b.buf, p...)
}

// section 8-aligns the buffer and records the upcoming section's offset.
func (b *arenaBuilder) section(sec int) {
	b.align8()
	binary.LittleEndian.PutUint64(b.buf[hdrSections+8*sec:], uint64(len(b.buf)))
}

// SaveArena writes the snapshot as a columnar arena image loadable with
// LoadArena. sigma must be the rule set the snapshot was built for
// (NewForRules); its rules' probe plans and pattern bitmaps are frozen
// into the image, and LoadArena will only accept the image against an
// equivalent Σ. The snapshot may be anywhere in a delta chain: the
// serialized tables are the merged (base + overlay) view.
func (d *Data) SaveArena(w io.Writer, sigma *rule.Set) error {
	if !sigma.MasterSchema().Equal(d.rel.Schema()) {
		return fmt.Errorf("master: save arena: snapshot schema %s does not match Σ's master schema %s",
			d.rel.Schema().Name(), sigma.MasterSchema().Name())
	}
	for _, ru := range sigma.Rules() {
		if _, ok := d.plans[ru]; !ok {
			return fmt.Errorf("master: save arena: rule %s has no probe plan in this snapshot (build with NewForRules for the same Σ)", ru.Name())
		}
		if _, ok := d.compat[ru]; !ok {
			return fmt.Errorf("master: save arena: rule %s has no compatibility plan in this snapshot", ru.Name())
		}
	}

	schema := d.rel.Schema()
	n := d.rel.Len()
	arity := schema.Arity()

	b := &arenaBuilder{buf: make([]byte, arenaHeaderSize, arenaHeaderSize+64*n)}

	// Schema: name, then each attribute's name and type.
	b.section(secSchema)
	b.u32(uint32(len(schema.Name())))
	b.bytes([]byte(schema.Name()))
	for i := 0; i < arity; i++ {
		attr := schema.Attr(i)
		b.u32(uint32(len(attr.Name)))
		b.bytes([]byte(attr.Name))
		b.u8(uint8(attr.Type))
	}

	// Assign every distinct cell value an id: interned values keep their
	// symbol-table ids (the stable-id contract the bucket hashes depend
	// on), extension values extend the id space in row-major scan order.
	vals := d.syms.Export()
	nsyms := len(vals)
	ids := make(map[relation.Value]uint32, nsyms)
	for i, v := range vals {
		ids[v] = uint32(i)
	}
	colIDs := make([]uint32, n*arity)
	for i := 0; i < n; i++ {
		t := d.rel.Tuple(i)
		for c := 0; c < arity; c++ {
			id, ok := ids[t[c]]
			if !ok {
				id = uint32(len(vals))
				ids[t[c]] = id
				vals = append(vals, t[c])
			}
			colIDs[c*n+i] = id
		}
	}

	// Symbols: count, fixed records, string heap.
	b.section(secSymbols)
	b.u32(uint32(len(vals)))
	b.align8()
	heapLen := 0
	for _, v := range vals {
		b.u8(uint8(v.Kind()))
		b.u8(0)
		b.u8(0)
		b.u8(0)
		switch v.Kind() {
		case relation.KindString:
			b.u32(uint32(len(v.Str())))
			b.u64(uint64(heapLen))
			heapLen += len(v.Str())
		case relation.KindInt:
			b.u32(0)
			b.u64(uint64(v.Int64()))
		default:
			b.u32(0)
			b.u64(0)
		}
	}
	b.u64(uint64(heapLen))
	for _, v := range vals {
		if v.Kind() == relation.KindString {
			b.bytes([]byte(v.Str()))
		}
	}

	// Columns: arity × n uint32 ids, column-major.
	b.section(secColumns)
	for _, id := range colIDs {
		b.u32(id)
	}

	// Indexes: per registered index, the Xm list then one frozen bucket
	// table per shard.
	b.section(secIndexes)
	for _, idx := range d.indexes {
		b.u32(uint32(len(idx.xm)))
		for _, p := range idx.xm {
			b.u32(uint32(p))
		}
		b.align8()
		for s := range idx.shards {
			writeBucketTable(b, &idx.shards[s])
		}
	}

	// Postings: per posting list, the column then per-shard tables.
	b.section(secPostings)
	for _, ps := range d.postings {
		b.u32(uint32(ps.col))
		b.u32(0)
		for s := range ps.shards {
			writePostingTable(b, &ps.shards[s])
		}
	}

	// Rules: per rule of Σ in Σ order, signature + pattern bitmap.
	b.section(secRules)
	for _, ru := range sigma.Rules() {
		cp := d.compat[ru]
		b.u64(ruleSig(ru))
		b.u32(uint32(cp.patCount))
		b.u32(uint32(len(cp.patBits)))
		for _, w := range cp.patBits {
			b.u64(w)
		}
	}
	b.align8()

	// Auth: presence flag + the snapshot's sparse-Merkle root. Saved even
	// when unauthenticated (flag 0, zero root) so the section table is
	// uniform; the loader rebuilds and verifies the tree only when the
	// flag is set.
	b.section(secAuth)
	if root, ok := d.AuthRoot(); ok {
		b.u32(1)
		b.u32(0)
		b.bytes(root[:])
	} else {
		b.u32(0)
		b.u32(0)
		b.bytes(make([]byte, 32))
	}

	hdr := b.buf[:arenaHeaderSize]
	copy(hdr[hdrMagic:], arenaMagic)
	binary.LittleEndian.PutUint32(hdr[hdrVersion:], arenaVersion)
	binary.LittleEndian.PutUint32(hdr[hdrEndian:], arenaEndianMark)
	binary.LittleEndian.PutUint64(hdr[hdrEpoch:], d.epoch)
	binary.LittleEndian.PutUint64(hdr[hdrNTuples:], uint64(n))
	binary.LittleEndian.PutUint32(hdr[hdrNShards:], uint32(d.nshards))
	binary.LittleEndian.PutUint32(hdr[hdrArity:], uint32(arity))
	binary.LittleEndian.PutUint32(hdr[hdrNSyms:], uint32(nsyms))
	binary.LittleEndian.PutUint32(hdr[hdrNIndexes:], uint32(len(d.indexes)))
	binary.LittleEndian.PutUint32(hdr[hdrNPosts:], uint32(len(d.postings)))
	binary.LittleEndian.PutUint32(hdr[hdrNRules:], uint32(sigma.Len()))
	binary.LittleEndian.PutUint64(hdr[hdrFileSize:], uint64(len(b.buf)))

	_, err := w.Write(b.buf)
	return err
}

// SaveArenaFile writes the arena to path atomically AND durably: temp
// file in the target directory, fsync the file, rename over path, fsync
// the directory. A crash at any point leaves either the old file or the
// complete new one — never a truncated snapshot, and never a rename
// that a power cut can undo.
func (d *Data) SaveArenaFile(path string, sigma *rule.Set) error {
	tmp, err := os.CreateTemp(dirOf(path), ".arena-*")
	if err != nil {
		return fmt.Errorf("master: save arena: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := d.SaveArena(bw, sigma); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("master: save arena: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("master: save arena: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("master: save arena: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("master: save arena: %w", err)
	}
	dir, err := os.Open(dirOf(path))
	if err != nil {
		return fmt.Errorf("master: save arena: %w", err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("master: save arena: %w", err)
	}
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1]
		}
	}
	return "."
}

// writeBucketTable freezes one index shard's merged bucket view into an
// open-addressing table: header (nslots, nkeys, nids), slot array, id
// array. Keys are inserted in ascending order, so the image is a pure
// function of the shard's content.
func writeBucketTable(b *arenaBuilder, l *layered[uint64, int]) {
	type entry struct {
		k   uint64
		ids []int
	}
	var entries []entry
	nids := 0
	l.each(func(k uint64, ids []int) {
		if len(ids) == 0 {
			return // count==0 is the table's empty-slot sentinel
		}
		entries = append(entries, entry{k, ids})
		nids += len(ids)
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].k < entries[j].k })

	nslots := flatSlots(len(entries))
	b.u64(uint64(nslots))
	b.u64(uint64(len(entries)))
	b.u64(uint64(nids))

	slots := make([]uint64, 2*nslots)
	mask := uint64(nslots - 1)
	off := uint64(0)
	for _, e := range entries {
		slot := e.k & mask
		for slots[2*slot+1] != 0 {
			slot = (slot + 1) & mask
		}
		slots[2*slot] = e.k
		slots[2*slot+1] = off<<32 | uint64(len(e.ids))
		off += uint64(len(e.ids))
	}
	for _, w := range slots {
		b.u64(w)
	}
	for _, e := range entries {
		for _, id := range e.ids {
			b.u64(uint64(id))
		}
	}
}

// writePostingTable is writeBucketTable for one posting shard: uint32
// keys, 12-byte slots, int32 ids. The section stays 8-aligned: the header
// is 4 u32s and the slot+id payload is padded back to 8.
func writePostingTable(b *arenaBuilder, l *layered[uint32, int32]) {
	type entry struct {
		k   uint32
		ids []int32
	}
	var entries []entry
	nids := 0
	l.each(func(k uint32, ids []int32) {
		if len(ids) == 0 {
			return // count==0 is the table's empty-slot sentinel
		}
		entries = append(entries, entry{k, ids})
		nids += len(ids)
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].k < entries[j].k })

	nslots := flatSlots(len(entries))
	b.u32(uint32(nslots))
	b.u32(uint32(len(entries)))
	b.u32(uint32(nids))
	b.u32(0)

	slots := make([]uint32, 3*nslots)
	mask := uint32(nslots - 1)
	off := uint32(0)
	for _, e := range entries {
		slot := e.k & mask
		for slots[3*slot+2] != 0 {
			slot = (slot + 1) & mask
		}
		slots[3*slot] = e.k
		slots[3*slot+1] = off
		slots[3*slot+2] = uint32(len(e.ids))
		off += uint32(len(e.ids))
	}
	for _, w := range slots {
		b.u32(w)
	}
	for _, e := range entries {
		for _, id := range e.ids {
			b.u32(uint32(id))
		}
	}
	b.align8()
}
