package master

import "repro/internal/relation"

// MemStats is a snapshot's memory accounting: where the bytes of the
// lookup structures live, split so the heap-vs-arena tradeoff is
// observable in production (certainfixd exposes this on /healthz), not
// just in benchmarks. Counts are logical (entries and ids), byte figures
// are the dominant payloads — map headers, slice headers and allocator
// overhead are not modeled.
type MemStats struct {
	// Epoch and Tuples identify the snapshot.
	Epoch  uint64 `json:"epoch"`
	Tuples int    `json:"tuples"`
	Shards int    `json:"shards"`

	// Symbols is the interning table: distinct values and their string
	// payload bytes.
	Symbols     int   `json:"symbols"`
	SymbolBytes int64 `json:"symbol_bytes"`

	// IndexKeys/IndexIDs count hash-index bucket keys and bucket entries
	// across all indexes and shards; IndexBytes is their payload (16 bytes
	// per key, 8 per id).
	IndexKeys  int   `json:"index_keys"`
	IndexIDs   int   `json:"index_ids"`
	IndexBytes int64 `json:"index_bytes"`

	// PostingKeys/PostingIDs count posting-list keys and entries;
	// PostingBytes is their payload (12 bytes per key, 4 per id).
	PostingKeys  int   `json:"posting_keys"`
	PostingIDs   int   `json:"posting_ids"`
	PostingBytes int64 `json:"posting_bytes"`

	// BitmapBytes is the pattern-support bitmaps across all rules.
	BitmapBytes int64 `json:"bitmap_bytes"`

	// ArenaBacked reports whether the snapshot chain is rooted in a loaded
	// columnar arena; ArenaBytes is the backing image size and ArenaMapped
	// whether it is an mmap (pages shared, evictable) rather than a heap
	// copy. For an arena-backed snapshot the index/posting/bitmap payloads
	// largely live INSIDE the arena bytes, not on the Go heap.
	ArenaBacked bool  `json:"arena_backed"`
	ArenaMapped bool  `json:"arena_mapped"`
	ArenaBytes  int64 `json:"arena_bytes"`

	// Authenticated reports whether the snapshot carries a sparse-Merkle
	// commitment (WithAuth lineages and flag-set arena images); Root is its
	// hex form, empty when unauthenticated — pre-auth arena images load
	// with Authenticated false, explicitly.
	Authenticated bool   `json:"authenticated"`
	Root          string `json:"root,omitempty"`
}

// MemStats walks the snapshot's structures and returns their accounting.
// Cost is O(structures), not O(|Dm|·arity): symbol payloads come from the
// interning table, index and posting sizes from the layered maps' merged
// views. Safe on any snapshot, concurrently with probes.
func (d *Data) MemStats() MemStats {
	ms := MemStats{
		Epoch:  d.epoch,
		Tuples: d.rel.Len(),
		Shards: d.nshards,
	}
	ms.Symbols = d.syms.Len()
	for _, v := range d.syms.Export() {
		if v.Kind() == relation.KindString {
			ms.SymbolBytes += int64(len(v.Str()))
		}
	}
	for _, idx := range d.indexes {
		for s := range idx.shards {
			idx.shards[s].each(func(_ uint64, ids []int) {
				ms.IndexKeys++
				ms.IndexIDs += len(ids)
			})
		}
	}
	ms.IndexBytes = 16*int64(ms.IndexKeys) + 8*int64(ms.IndexIDs)
	for _, ps := range d.postings {
		for s := range ps.shards {
			ps.shards[s].each(func(_ uint32, ids []int32) {
				ms.PostingKeys++
				ms.PostingIDs += len(ids)
			})
		}
	}
	ms.PostingBytes = 12*int64(ms.PostingKeys) + 4*int64(ms.PostingIDs)
	for _, cp := range d.compat {
		ms.BitmapBytes += 8 * int64(len(cp.patBits))
	}
	if d.arena != nil {
		ms.ArenaBacked = true
		ms.ArenaMapped = d.arena.mapped
		ms.ArenaBytes = int64(len(d.arena.data))
	}
	if root, ok := d.AuthRoot(); ok {
		ms.Authenticated = true
		ms.Root = root.String()
	}
	return ms
}
