package master

// The authenticated side of a snapshot: every WithAuth-built Data carries
// a sparse-Merkle commitment (internal/authtree) over its tuple multiset,
// maintained copy-on-write by ApplyDelta the way postings are. The root
// travels with the lineage — arena images persist it (arena.go), the WAL
// ships it per epoch (delta records), followers compare it after every
// apply (follower.go) — and inclusion proofs let a client check that a
// fix really consumed the claimed master tuples with no trust in the
// server (pkg/certainfix.VerifyFix).

import (
	"fmt"

	"repro/internal/authtree"
	"repro/internal/relation"
)

// Authenticated reports whether the snapshot carries a Merkle commitment.
func (d *Data) Authenticated() bool { return d.auth != nil }

// AuthRoot returns the snapshot's 32-byte sparse-Merkle root, with
// ok=false when the snapshot is unauthenticated. The root is a pure
// function of the tuple multiset: identical across shard counts, delta
// orderings, rebuilds and processes.
func (d *Data) AuthRoot() (authtree.Hash, bool) {
	if d.auth == nil {
		return authtree.Hash{}, false
	}
	return d.auth.Root(), true
}

// Authenticate builds the snapshot's Merkle commitment in place — the
// from-scratch path used when a lineage turns authentication on after
// construction (recovered heads recompute-and-verify through the arena
// loader instead). Like Index, this is construction-time mutation: it
// must not race lookups and must not be called on a snapshot that
// already has ApplyDelta-derived children. A no-op when already
// authenticated.
func (d *Data) Authenticate() {
	if d.auth == nil {
		d.auth = authtree.Build(d.rel)
	}
}

// ProveTuple returns an inclusion proof for master tuple id under the
// snapshot's root. Fails on an unauthenticated snapshot or an id out of
// range.
func (d *Data) ProveTuple(id int) (*authtree.Proof, error) {
	if d.auth == nil {
		return nil, fmt.Errorf("master: ProveTuple: snapshot is not authenticated")
	}
	if id < 0 || id >= d.rel.Len() {
		return nil, fmt.Errorf("master: ProveTuple: id %d out of range [0, %d)", id, d.rel.Len())
	}
	p, ok := d.auth.Prove(d.rel.Tuple(id))
	if !ok {
		// The tree mirrors the relation by construction; a miss here means
		// the mirror invariant broke, which no input should be able to do.
		return nil, fmt.Errorf("master: ProveTuple: tuple %d missing from commitment", id)
	}
	return p, nil
}

// authRemove drops one committed tuple during delta planning; a miss is a
// broken tree-mirrors-relation invariant, never a caller error.
func authRemove(tr *authtree.Tree, t relation.Tuple) *authtree.Tree {
	nt, ok := tr.Remove(t)
	if !ok {
		panic("master: auth invariant: deleted tuple missing from commitment")
	}
	return nt
}
