package master

// This file implements the sharded layout and the parallel build pipeline.
//
// A snapshot's index buckets, posting lists — every per-tuple map entry —
// are partitioned into P hash shards. Routing is by TUPLE-KEY hash: the
// full tuple content is folded with the interning-free relation.HashValue
// chain and reduced modulo P, so a tuple's shard is a pure function of its
// cells — identical across snapshots, across a delta chain and its
// rebuild oracle, and across processes (no dependence on interning order
// or map iteration). Tuple ids are NOT sharded: they remain global
// positions in the relation, so probe results are byte-identical for
// every P (the shard property tests pin this against the P=1 oracle).
//
// Sharding buys three things:
//
//  1. Parallel builds. NewForRules fills the P shards concurrently on
//     internal/parallel — the per-shard maps are disjoint, so no locks.
//     Value interning, the one inherently shared step, runs as a
//     parallel distinct-value collection followed by a serial merge over
//     the (much smaller) distinct set.
//  2. Shard-local copy-on-write. ApplyDelta routes each add/delete to its
//     tuple's shard, so delta overlays and flatten-at-1/4 compaction
//     touch 1/P of the structure; large deltas apply shard-parallel.
//  3. Headroom for multi-million-tuple masters: no single monolithic map
//     grows to |Dm| entries, and rebuild cost drops with core count.
//
// Probes fan out: the probe key can match tuples in any shard (routing is
// by full tuple, probing by projection), so MatchIDs/Lookup walk the P
// buckets for the key's hash. The common case — all matches in one shard,
// which includes every single-match probe — returns that shard's bucket
// without copying, keeping the zero-allocation hit path; only a probe
// whose matches straddle shards (duplicate projections in Dm) pays a
// merge. Existence probes (HasMatch, CompatibleExists) early-exit on the
// first matching shard and never merge.

import (
	"runtime"
	"sort"

	"repro/internal/parallel"
	"repro/internal/relation"
	"repro/internal/rule"
)

// MaxShards bounds the shard count; shard indexes must fit the uint8
// routing table the build pipeline uses.
const MaxShards = 256

// BuildOption configures snapshot construction (New / NewForRules).
type BuildOption func(*buildConfig)

type buildConfig struct {
	shards  int
	workers int
	auth    bool
}

// WithShards selects the number of hash shards the snapshot's indexes,
// posting lists and overlays are partitioned into. p <= 0 selects
// DefaultShards (one per CPU); p is clamped to [1, MaxShards]. Every
// shard count produces byte-identical probe results — P=1 degrades to
// the unsharded layout.
func WithShards(p int) BuildOption {
	return func(c *buildConfig) { c.shards = p }
}

// WithBuildWorkers bounds the goroutines NewForRules uses to fill the
// shards; w <= 0 selects GOMAXPROCS. Probe behavior is unaffected.
func WithBuildWorkers(w int) BuildOption {
	return func(c *buildConfig) { c.workers = w }
}

// WithAuth authenticates the snapshot lineage: construction commits the
// relation to a sparse-Merkle root (see internal/authtree) and ApplyDelta
// maintains it copy-on-write alongside the indexes, so every epoch
// carries a 32-byte commitment, tuples gain inclusion proofs, and
// followers can compare roots instead of probe-sweeping for divergence.
// Probe paths are untouched; builds and deltas pay O(n·log n) /
// O(delta·log n) extra hashing, which is why authentication is opt-in.
func WithAuth() BuildOption {
	return func(c *buildConfig) { c.auth = true }
}

// DefaultShards is the shard count used when WithShards is not given:
// runtime.GOMAXPROCS(0), clamped to MaxShards.
func DefaultShards() int {
	return clampShards(runtime.GOMAXPROCS(0))
}

func clampShards(p int) int {
	if p < 1 {
		p = 1
	}
	if p > MaxShards {
		p = MaxShards
	}
	return p
}

func resolveBuildConfig(opts []BuildOption) buildConfig {
	cfg := buildConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards <= 0 {
		cfg.shards = DefaultShards()
	}
	cfg.shards = clampShards(cfg.shards)
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	return cfg
}

// routeHash folds the full tuple into the interning-free uint64 used for
// shard routing.
func routeHash(t relation.Tuple) uint64 {
	acc := relation.HashSeed()
	for _, v := range t {
		acc = relation.HashValue(acc, v)
	}
	return acc
}

// shardOf routes a tuple to its shard. The single-shard layout skips the
// hash entirely (the hot path for default builds on small machines).
func (d *Data) shardOf(t relation.Tuple) int {
	if d.nshards == 1 {
		return 0
	}
	return int(routeHash(t) % uint64(d.nshards))
}

// Shards returns the snapshot's shard count P (stable across ApplyDelta).
func (d *Data) Shards() int { return d.nshards }

// addNeedCol records an Rm position whose values must be interned for the
// registered structures to probe; kept sorted and deduplicated. The slice
// is rebuilt copy-on-write — never mutated in place — because ApplyDelta
// aliases it into derived snapshots: a later Index() on one snapshot must
// not rewrite its siblings' view.
func (d *Data) addNeedCol(col int) {
	i := sort.SearchInts(d.needCols, col)
	if i < len(d.needCols) && d.needCols[i] == col {
		return
	}
	nc := make([]int, len(d.needCols)+1)
	copy(nc, d.needCols[:i])
	nc[i] = col
	copy(nc[i+1:], d.needCols[i:])
	d.needCols = nc
}

// registerIndex finds or creates the (empty) index over xm. Filling is the
// caller's business: Index fills sequentially, NewForRules in parallel.
func (d *Data) registerIndex(xm []int) (idx *index, created bool) {
	if idx := d.findIndex(xm); idx != nil {
		return idx, false
	}
	idx = &index{
		xm:     append([]int(nil), xm...),
		shards: make([]layered[uint64, int], d.nshards),
	}
	for s := range idx.shards {
		idx.shards[s].base = make(map[uint64][]int)
	}
	d.indexes = append(d.indexes, idx)
	for _, p := range xm {
		d.addNeedCol(p)
	}
	return idx, true
}

// registerPostings finds or creates the (empty) posting lists over col.
func (d *Data) registerPostings(col int) (ps *postings, created bool) {
	for _, ps := range d.postings {
		if ps.col == col {
			return ps, false
		}
	}
	ps = &postings{col: col, shards: make([]layered[uint32, int32], d.nshards)}
	for s := range ps.shards {
		ps.shards[s].base = make(map[uint32][]int32)
	}
	d.postings = append(d.postings, ps)
	d.addNeedCol(col)
	return ps, true
}

// registerCompatPlan creates ru's (empty) compatibility plan: posting
// registrations for each Xm column plus a zeroed pattern bitmap.
func (d *Data) registerCompatPlan(ru *rule.Rule) *compatPlan {
	x, xm := ru.LHSRef(), ru.LHSMRef()
	plan := &compatPlan{
		patBits: make([]uint64, (d.rel.Len()+63)/64),
		posts:   make([]*postings, len(x)),
	}
	for i := range x {
		plan.posts[i], _ = d.registerPostings(xm[i])
	}
	return plan
}

// buildParallel fills every registered structure from the relation:
//
//	phase A (range-parallel): validate tuples against the schema, compute
//	  the shard routing table, and collect the distinct values of the
//	  indexed columns per worker;
//	phase A' (serial): intern the merged distinct sets — serial work is
//	  O(distinct values), not O(|Dm| × columns);
//	phase B (shard-parallel): fill each shard's index buckets and posting
//	  lists — disjoint maps, read-only symbol table, no locks;
//	phase C (rule-parallel): evaluate the pattern-support bitmaps.
func (d *Data) buildParallel(sigma *rule.Set, workers int) error {
	n := d.rel.Len()
	if n == 0 {
		return nil
	}
	if workers == 1 && d.nshards == 1 {
		// Single-worker single-shard: the sequential single-pass fill is
		// strictly cheaper (one interning pass, no routing table).
		return d.buildSequential()
	}

	route := make([]uint8, n)
	chunks := workers * 4
	if chunks > n {
		chunks = n
	}
	chunkLen := (n + chunks - 1) / chunks
	distinct, err := parallel.Map(chunks, workers, func(c int) (map[relation.Value]struct{}, error) {
		lo, hi := c*chunkLen, (c+1)*chunkLen
		if hi > n {
			hi = n
		}
		seen := make(map[relation.Value]struct{})
		for i := lo; i < hi; i++ {
			tm := d.rel.Tuple(i)
			if err := validateTuple(d.rel.Schema(), tm); err != nil {
				return nil, &BuildError{Shard: d.shardOf(tm), TupleID: i, Key: tupleKeyContext(tm), Err: err}
			}
			route[i] = uint8(d.shardOf(tm))
			for _, p := range d.needCols {
				seen[tm[p]] = struct{}{}
			}
		}
		return seen, nil
	})
	if err != nil {
		return err
	}
	for _, seen := range distinct {
		for v := range seen {
			d.syms.Intern(v)
		}
	}

	// Group tuple ids by shard (a counting sort: O(n) serial, and the
	// stable fill keeps ids ascending within each shard's slice), so the
	// shard-parallel fill below walks only its own ids instead of
	// scanning the full routing table P times.
	counts := make([]int, d.nshards+1)
	for _, s := range route {
		counts[int(s)+1]++ // int first: s+1 would wrap at shard 255
	}
	for s := 0; s < d.nshards; s++ {
		counts[s+1] += counts[s]
	}
	order := make([]int32, n)
	pos := append([]int(nil), counts[:d.nshards]...)
	for i, s := range route {
		order[pos[s]] = int32(i)
		pos[s]++
	}

	_, err = parallel.Map(d.nshards, workers, func(s int) (struct{}, error) {
		mine := order[counts[s]:counts[s+1]]
		for _, idx := range d.indexes {
			if len(idx.shards[s].base) == 0 {
				idx.shards[s].base = make(map[uint64][]int, len(mine))
			}
		}
		for _, i32 := range mine {
			i := int(i32)
			tm := d.rel.Tuple(i)
			for _, idx := range d.indexes {
				h, ok := d.hasher.HashTuple(tm, idx.xm)
				if !ok {
					panic("master: build invariant: indexed value not interned")
				}
				idx.shards[s].base[h] = append(idx.shards[s].base[h], i)
			}
			for _, ps := range d.postings {
				vid, ok := d.syms.ID(tm[ps.col])
				if !ok {
					panic("master: build invariant: posting value not interned")
				}
				ps.shards[s].base[vid] = append(ps.shards[s].base[vid], int32(i))
			}
		}
		return struct{}{}, nil
	})
	if err != nil {
		return err // unreachable: the shard fill cannot fail
	}

	rules := sigma.Rules()
	_, err = parallel.Map(len(rules), workers, func(r int) (struct{}, error) {
		ru := rules[r]
		plan := d.compat[ru]
		if plan == nil {
			return struct{}{}, nil
		}
		for id := 0; id < n; id++ {
			if patternCompatible(ru, d.rel.Tuple(id)) {
				plan.patBits[id>>6] |= 1 << (uint(id) & 63)
				plan.patCount++
			}
		}
		return struct{}{}, nil
	})
	return err
}

// buildSequential is the single-pass fill used for one-worker one-shard
// builds: the pre-sharding code path, interning as it hashes.
func (d *Data) buildSequential() error {
	for i, tm := range d.rel.Tuples() {
		if err := validateTuple(d.rel.Schema(), tm); err != nil {
			return &BuildError{Shard: 0, TupleID: i, Key: tupleKeyContext(tm), Err: err}
		}
		for _, idx := range d.indexes {
			h := d.hasher.HashInterning(tm, idx.xm)
			idx.shards[0].base[h] = append(idx.shards[0].base[h], i)
		}
		for _, ps := range d.postings {
			vid := d.syms.Intern(tm[ps.col])
			ps.shards[0].base[vid] = append(ps.shards[0].base[vid], int32(i))
		}
	}
	for ru, plan := range d.compat {
		for id, tm := range d.rel.Tuples() {
			if patternCompatible(ru, tm) {
				plan.patBits[id>>6] |= 1 << (uint(id) & 63)
				plan.patCount++
			}
		}
	}
	return nil
}
