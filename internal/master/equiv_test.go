package master

// Test-side equivalence oracle for the versioned master: checkEquiv
// asserts a snapshot reached through a chain of ApplyDelta calls is
// deep-equal — indexes, posting lists, pattern-support bitmaps, probe
// plans — to MustNewForRules run from scratch on the snapshot's
// materialized relation with the same shard count. Interned value ids
// (and therefore raw uint64 bucket keys) are the one representation
// detail allowed to differ: a delta chain interns values in historical
// order, a rebuild in current first-seen order (and a parallel rebuild in
// nondeterministic merge order), so the comparison resolves buckets and
// posting lists through each side's own hasher/symbol table and compares
// the id contents, which is exactly what every probe observes.

import (
	"sort"
	"testing"

	"repro/internal/relation"
	"repro/internal/rule"
)

// shadowApply is the delta semantics contract in its simplest possible
// form, maintained independently from ApplyDelta: deletes descending with
// swap-remove, then adds appended.
func shadowApply(tuples []relation.Tuple, adds []relation.Tuple, deletes []int) []relation.Tuple {
	del := append([]int(nil), deletes...)
	sort.Sort(sort.Reverse(sort.IntSlice(del)))
	out := append([]relation.Tuple(nil), tuples...)
	for _, id := range del {
		last := len(out) - 1
		out[id] = out[last]
		out = out[:last]
	}
	for _, t := range adds {
		out = append(out, t.Clone())
	}
	return out
}

// rebuildOracle materializes got's relation and rebuilds from scratch
// with got's shard count.
func rebuildOracle(t testing.TB, got *Data, sigma *rule.Set) *Data {
	t.Helper()
	rel := relation.NewRelation(got.Relation().Schema())
	for _, tm := range got.Relation().Tuples() {
		rel.MustAppend(tm.Clone())
	}
	want, err := NewForRules(rel, sigma, WithShards(got.nshards))
	if err != nil {
		t.Fatalf("oracle rebuild: %v", err)
	}
	return want
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkEquiv asserts got is deep-equal to a from-scratch rebuild on its
// materialized relation. ctx labels failures (seed / step).
func checkEquiv(t testing.TB, ctx string, got *Data, sigma *rule.Set) {
	t.Helper()
	want := rebuildOracle(t, got, sigma)
	n := got.Len()
	if want.Len() != n {
		t.Fatalf("%s: materialized length %d vs snapshot %d", ctx, want.Len(), n)
	}
	if got.nshards != want.nshards {
		t.Fatalf("%s: snapshot has %d shards, rebuild %d", ctx, got.nshards, want.nshards)
	}

	// Index registry: same Xm lists, same total size, identical bucket
	// contents for every stored tuple's projection — per shard: the
	// tuple-key routing is deterministic, so the rebuild places every id
	// in the same shard the delta chain did.
	if len(got.indexes) != len(want.indexes) {
		t.Fatalf("%s: %d indexes, rebuild has %d", ctx, len(got.indexes), len(want.indexes))
	}
	for _, widx := range want.indexes {
		gidx := got.findIndex(widx.xm)
		if gidx == nil {
			t.Fatalf("%s: no index over %v after deltas", ctx, widx.xm)
		}
		if gs, ws := gidx.size(), widx.size(); gs != ws {
			t.Fatalf("%s: index %v holds %d ids, rebuild %d", ctx, widx.xm, gs, ws)
		}
		for id := 0; id < n; id++ {
			tm := got.Tuple(id)
			s := got.shardOf(tm)
			gh, ok := got.hasher.HashTuple(tm, gidx.xm)
			if !ok {
				t.Fatalf("%s: stored tuple %d not hashable in snapshot index %v", ctx, id, gidx.xm)
			}
			wh, ok := want.hasher.HashTuple(tm, widx.xm)
			if !ok {
				t.Fatalf("%s: stored tuple %d not hashable in rebuilt index %v", ctx, id, widx.xm)
			}
			if gb, wb := gidx.shards[s].get(gh), widx.shards[s].get(wh); !eqInts(gb, wb) {
				t.Fatalf("%s: index %v shard %d bucket for tuple %d = %v, rebuild %v", ctx, widx.xm, s, id, gb, wb)
			}
			// Routing invariant: the id appears in its own shard's bucket
			// and in no other shard's.
			for os := range gidx.shards {
				if os == s {
					continue
				}
				for _, oid := range gidx.shards[os].get(gh) {
					if oid == id {
						t.Fatalf("%s: tuple %d routed to shard %d but found in shard %d", ctx, id, s, os)
					}
				}
			}
		}
	}

	// Posting lists: same columns, same total size, identical id lists
	// per stored value per shard (resolved through each side's own symbol
	// table).
	if len(got.postings) != len(want.postings) {
		t.Fatalf("%s: %d posting columns, rebuild has %d", ctx, len(got.postings), len(want.postings))
	}
	for _, wps := range want.postings {
		var gps *postings
		for _, p := range got.postings {
			if p.col == wps.col {
				gps = p
				break
			}
		}
		if gps == nil {
			t.Fatalf("%s: no postings over column %d after deltas", ctx, wps.col)
		}
		if gs, ws := gps.size(), wps.size(); gs != ws {
			t.Fatalf("%s: postings col %d hold %d ids, rebuild %d", ctx, wps.col, gs, ws)
		}
		for id := 0; id < n; id++ {
			tm := got.Tuple(id)
			s := got.shardOf(tm)
			v := tm[wps.col]
			gid, ok := got.syms.ID(v)
			if !ok {
				t.Fatalf("%s: stored value %v of column %d not interned in snapshot", ctx, v, wps.col)
			}
			wid, ok := want.syms.ID(v)
			if !ok {
				t.Fatalf("%s: stored value %v of column %d not interned in rebuild", ctx, v, wps.col)
			}
			if gl, wl := gps.shards[s].get(gid), wps.shards[s].get(wid); !eqInt32s(gl, wl) {
				t.Fatalf("%s: postings col %d shard %d list for %v = %v, rebuild %v", ctx, wps.col, s, v, gl, wl)
			}
		}
	}

	// Probe and compatibility plans: same rules resolved, identical
	// pattern-support bitmaps and counts.
	for _, ru := range sigma.Rules() {
		if (got.plans[ru] == nil) != (want.plans[ru] == nil) {
			t.Fatalf("%s: rule %s probe plan presence differs", ctx, ru.Name())
		}
		gcp, wcp := got.compat[ru], want.compat[ru]
		if (gcp == nil) != (wcp == nil) {
			t.Fatalf("%s: rule %s compat plan presence differs", ctx, ru.Name())
		}
		if gcp == nil {
			continue
		}
		if gcp.patCount != wcp.patCount {
			t.Fatalf("%s: rule %s patCount %d, rebuild %d", ctx, ru.Name(), gcp.patCount, wcp.patCount)
		}
		if len(gcp.patBits) != len(wcp.patBits) {
			t.Fatalf("%s: rule %s bitmap %d words, rebuild %d", ctx, ru.Name(), len(gcp.patBits), len(wcp.patBits))
		}
		for w := range gcp.patBits {
			if gcp.patBits[w] != wcp.patBits[w] {
				t.Fatalf("%s: rule %s bitmap word %d = %#x, rebuild %#x", ctx, ru.Name(), w, gcp.patBits[w], wcp.patBits[w])
			}
		}
		if len(gcp.posts) != len(wcp.posts) {
			t.Fatalf("%s: rule %s has %d compat postings, rebuild %d", ctx, ru.Name(), len(gcp.posts), len(wcp.posts))
		}
		if got.PatternSupported(ru) != want.PatternSupported(ru) {
			t.Fatalf("%s: rule %s PatternSupported differs", ctx, ru.Name())
		}
	}
}
