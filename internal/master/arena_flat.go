package master

// This file implements the read-only bucket tables a loaded arena plugs
// into the layered maps as their flat layer (see overlay.go): open-
// addressing hash tables whose slot arrays and id arrays are views into
// the arena bytes, decoded without copying. The tables are frozen — the
// save side builds them with a power-of-two slot count at ≤ 1/2 load
// factor and inserts keys in ascending order with linear probing, so the
// layout is deterministic and every lookup terminates at an empty slot.
//
// Index shards (uint64 projection hash → []int) use 16-byte slots: the
// key, then the bucket's span packed as off<<32 | count into the shard's
// id array. Posting shards (uint32 value id → []int32) use 12-byte slots
// (key, off, count as uint32). In both, count == 0 marks an empty slot —
// empty buckets are never stored, so every live bucket has count ≥ 1.

import (
	"math/bits"
	"unsafe"
)

// arenaBuckets is the flat layer of one index shard.
type arenaBuckets struct {
	// slots holds nslots packed (key, off<<32|count) pairs; len = 2·nslots.
	slots []uint64
	mask  uint64
	ids   []int
	nkeys int
}

var _ flatSource[uint64, int] = (*arenaBuckets)(nil)

func (a *arenaBuckets) get(k uint64) []int {
	slot := k & a.mask
	for {
		packed := a.slots[2*slot+1]
		if packed == 0 {
			return nil
		}
		if a.slots[2*slot] == k {
			off := packed >> 32
			return a.ids[off : off+packed&0xffffffff]
		}
		slot = (slot + 1) & a.mask
	}
}

func (a *arenaBuckets) each(fn func(k uint64, ids []int)) {
	for slot := 0; 2*slot < len(a.slots); slot++ {
		packed := a.slots[2*slot+1]
		if packed == 0 {
			continue
		}
		off := packed >> 32
		fn(a.slots[2*slot], a.ids[off:off+packed&0xffffffff])
	}
}

func (a *arenaBuckets) entries() int { return a.nkeys }
func (a *arenaBuckets) idCount() int { return len(a.ids) }

// arenaPostings is the flat layer of one posting-list shard.
type arenaPostings struct {
	// slots holds nslots (key, off, count) triples; len = 3·nslots.
	slots []uint32
	mask  uint32
	ids   []int32
	nkeys int
}

var _ flatSource[uint32, int32] = (*arenaPostings)(nil)

func (a *arenaPostings) get(k uint32) []int32 {
	slot := k & a.mask
	for {
		cnt := a.slots[3*slot+2]
		if cnt == 0 {
			return nil
		}
		if a.slots[3*slot] == k {
			off := a.slots[3*slot+1]
			return a.ids[off : off+cnt]
		}
		slot = (slot + 1) & a.mask
	}
}

func (a *arenaPostings) each(fn func(k uint32, ids []int32)) {
	for slot := 0; 3*slot < len(a.slots); slot++ {
		cnt := a.slots[3*slot+2]
		if cnt == 0 {
			continue
		}
		off := a.slots[3*slot+1]
		fn(a.slots[3*slot], a.ids[off:off+cnt])
	}
}

func (a *arenaPostings) entries() int { return a.nkeys }
func (a *arenaPostings) idCount() int { return len(a.ids) }

// flatSlots returns the slot count for nkeys entries: the smallest power
// of two holding them at ≤ 1/2 load (minimum 2, so the probe loop always
// has an empty slot to terminate on).
func flatSlots(nkeys int) int {
	if nkeys == 0 {
		return 2
	}
	return 1 << bits.Len(uint(2*nkeys-1))
}

// The view helpers reinterpret arena bytes as typed slices without
// copying. Callers guarantee alignment (sections are 8-aligned and the
// loader realigns unaligned backing buffers up front) and length
// divisibility (validated during decode).

func viewU64(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func viewU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func viewI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// viewInt reinterprets 8-byte little-endian ids as []int on 64-bit
// platforms; on 32-bit platforms it materializes a copy (ids were
// validated < ntuples, which fits int32 there).
func viewInt(b []byte) []int {
	if len(b) == 0 {
		return nil
	}
	if unsafe.Sizeof(int(0)) == 8 {
		return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	u := viewU64(b)
	out := make([]int, len(u))
	for i, v := range u {
		out[i] = int(v)
	}
	return out
}

// viewString wraps arena bytes as a string without copying. The string
// aliases the arena: it stays valid exactly as long as the arena mapping
// (which the Data snapshots derived from it keep alive).
func viewString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
