package master

// layered is the two-layer copy-on-write map shared by the hash indexes
// (uint64 projection hash → tuple ids) and the posting lists (interned
// value id → tuple ids): base is the immutable layer shared between
// snapshots, over is this snapshot's delta overlay — a key present in
// over shadows base, including with an empty slice.
type layered[K comparable, ID int | int32] struct {
	base map[K][]ID
	over map[K][]ID
}

// get resolves k's id slice through the overlay.
func (l *layered[K, ID]) get(k K) []ID {
	if l.over != nil {
		if v, ok := l.over[k]; ok {
			return v
		}
	}
	return l.base[k]
}

// set shadows k's slice in this snapshot's overlay. The slice must be
// freshly allocated (slices are shared across snapshots).
func (l *layered[K, ID]) set(k K, v []ID) {
	if l.over == nil {
		l.over = make(map[K][]ID)
	}
	l.over[k] = v
}

// fork derives the next snapshot's view: base shared, overlay copied, or
// the two layers flattened once the overlay has grown past a quarter of
// the base (amortizing compaction cost over the deltas that built it).
func (l *layered[K, ID]) fork() layered[K, ID] {
	if len(l.over) == 0 {
		return layered[K, ID]{base: l.base}
	}
	if len(l.over)*4 <= len(l.base)+16 {
		over := make(map[K][]ID, len(l.over)+4)
		for k, v := range l.over {
			over[k] = v
		}
		return layered[K, ID]{base: l.base, over: over}
	}
	merged := make(map[K][]ID, len(l.base)+len(l.over))
	for k, v := range l.base {
		merged[k] = v
	}
	for k, v := range l.over {
		if len(v) == 0 {
			delete(merged, k)
			continue
		}
		merged[k] = v
	}
	return layered[K, ID]{base: merged}
}

// size returns the total number of ids across all keys (tests, stats).
func (l *layered[K, ID]) size() int {
	n := 0
	for k, v := range l.base {
		if l.over != nil {
			if _, shadowed := l.over[k]; shadowed {
				continue
			}
		}
		n += len(v)
	}
	for _, v := range l.over {
		n += len(v)
	}
	return n
}

// The slice helpers always allocate: the slices are shared across
// snapshots, so in-place mutation would corrupt siblings.

// removeID returns s without id.
func removeID[ID int | int32](s []ID, id ID) []ID {
	out := make([]ID, 0, len(s)-1)
	for _, x := range s {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// renameID returns s with `from` re-inserted as `to` at its ascending
// position (the swap-remove move; `to` must not already be present).
func renameID[ID int | int32](s []ID, from, to ID) []ID {
	out := make([]ID, 0, len(s))
	inserted := false
	for _, x := range s {
		if x == from {
			continue
		}
		if !inserted && x > to {
			out = append(out, to)
			inserted = true
		}
		out = append(out, x)
	}
	if !inserted {
		out = append(out, to)
	}
	return out
}

// appendID returns s with id appended (id must exceed every element, so
// ascending order is preserved).
func appendID[ID int | int32](s []ID, id ID) []ID {
	out := make([]ID, len(s)+1)
	copy(out, s)
	out[len(s)] = id
	return out
}
