package master

// layered is the copy-on-write map shared by the hash indexes (uint64
// projection hash → tuple ids) and the posting lists (interned value id →
// tuple ids). It stacks up to three layers, youngest first:
//
//	over — this snapshot's delta overlay (a key present here shadows the
//	       layers below, including with an empty slice);
//	base — the immutable map layer shared between snapshots;
//	flat — an optional frozen arena table (see arena.go): buckets decoded
//	       in place from a loaded columnar snapshot, shared by every
//	       descendant of the loaded snapshot and never written.
//
// A heap-built snapshot has no flat layer, so its reads cost exactly what
// the two-layer design did. An arena-loaded snapshot starts as a bare
// flat layer; ApplyDelta forks it like any other snapshot, accumulating
// overlays until compaction flattens all three layers into a fresh map
// base (at which point the shard no longer references the arena).
type layered[K comparable, ID int | int32] struct {
	base map[K][]ID
	over map[K][]ID
	flat flatSource[K, ID]
}

// flatSource is a frozen bucket table decoded from an arena: the bottom
// layer of a layered map. Implementations are read-only and safe for
// concurrent use (arenaBuckets and arenaPostings in arena.go).
type flatSource[K comparable, ID int | int32] interface {
	// get resolves k's id slice; nil when absent.
	get(k K) []ID
	// each calls fn for every stored (key, ids) pair, in table order.
	each(fn func(k K, ids []ID))
	// entries returns the number of stored keys.
	entries() int
	// idCount returns the total number of stored ids.
	idCount() int
}

// get resolves k's id slice through the layers.
func (l *layered[K, ID]) get(k K) []ID {
	if l.over != nil {
		if v, ok := l.over[k]; ok {
			return v
		}
	}
	if v, ok := l.base[k]; ok {
		return v
	}
	if l.flat != nil {
		return l.flat.get(k)
	}
	return nil
}

// set shadows k's slice in this snapshot's overlay. The slice must be
// freshly allocated (slices are shared across snapshots).
func (l *layered[K, ID]) set(k K, v []ID) {
	if l.over == nil {
		l.over = make(map[K][]ID)
	}
	l.over[k] = v
}

// baseLen is the key count of the immutable layers (sizing the
// flatten-at-1/4 compaction policy; keys present in both layers are
// counted twice, which only makes compaction marginally earlier).
func (l *layered[K, ID]) baseLen() int {
	n := len(l.base)
	if l.flat != nil {
		n += l.flat.entries()
	}
	return n
}

// fork derives the next snapshot's view: immutable layers shared, overlay
// copied, or all layers flattened once the overlay has grown past a
// quarter of the immutable key count (amortizing compaction cost over the
// deltas that built it). Flattening drops the flat layer — the forked
// shard stops referencing the arena.
func (l *layered[K, ID]) fork() layered[K, ID] {
	if len(l.over) == 0 {
		return layered[K, ID]{base: l.base, flat: l.flat}
	}
	if len(l.over)*4 <= l.baseLen()+16 {
		over := make(map[K][]ID, len(l.over)+4)
		for k, v := range l.over {
			over[k] = v
		}
		return layered[K, ID]{base: l.base, over: over, flat: l.flat}
	}
	merged := make(map[K][]ID, l.baseLen()+len(l.over))
	if l.flat != nil {
		l.flat.each(func(k K, v []ID) { merged[k] = v })
	}
	for k, v := range l.base {
		merged[k] = v
	}
	for k, v := range l.over {
		if len(v) == 0 {
			delete(merged, k)
			continue
		}
		merged[k] = v
	}
	return layered[K, ID]{base: merged}
}

// size returns the total number of ids across all keys (tests, stats).
func (l *layered[K, ID]) size() int {
	n := 0
	if l.flat != nil {
		l.flat.each(func(k K, v []ID) {
			if l.shadowed(k) {
				return
			}
			n += len(v)
		})
	}
	for k, v := range l.base {
		if l.over != nil {
			if _, shadowed := l.over[k]; shadowed {
				continue
			}
		}
		n += len(v)
	}
	for _, v := range l.over {
		n += len(v)
	}
	return n
}

// shadowed reports whether a flat-layer key is hidden by a younger layer.
func (l *layered[K, ID]) shadowed(k K) bool {
	if l.over != nil {
		if _, ok := l.over[k]; ok {
			return true
		}
	}
	_, ok := l.base[k]
	return ok
}

// each calls fn for every live (key, ids) pair resolved through the
// layers, skipping tombstones — the merged view arena serialization and
// compaction iterate. Order is unspecified.
func (l *layered[K, ID]) each(fn func(k K, ids []ID)) {
	if l.flat != nil {
		l.flat.each(func(k K, v []ID) {
			if !l.shadowed(k) {
				fn(k, v)
			}
		})
	}
	for k, v := range l.base {
		if l.over != nil {
			if _, shadowed := l.over[k]; shadowed {
				continue
			}
		}
		fn(k, v)
	}
	for k, v := range l.over {
		if len(v) > 0 {
			fn(k, v)
		}
	}
}

// The slice helpers always allocate: the slices are shared across
// snapshots, so in-place mutation would corrupt siblings.

// removeID returns s without id.
func removeID[ID int | int32](s []ID, id ID) []ID {
	out := make([]ID, 0, len(s)-1)
	for _, x := range s {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// renameID returns s with `from` re-inserted as `to` at its ascending
// position (the swap-remove move; `to` must not already be present).
func renameID[ID int | int32](s []ID, from, to ID) []ID {
	out := make([]ID, 0, len(s))
	inserted := false
	for _, x := range s {
		if x == from {
			continue
		}
		if !inserted && x > to {
			out = append(out, to)
			inserted = true
		}
		out = append(out, x)
	}
	if !inserted {
		out = append(out, to)
	}
	return out
}

// appendID returns s with id appended (id must exceed every element, so
// ascending order is preserved).
func appendID[ID int | int32](s []ID, id ID) []ID {
	out := make([]ID, len(s)+1)
	copy(out, s)
	out[len(s)] = id
	return out
}
