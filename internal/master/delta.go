package master

// This file implements the versioned-master update path: ApplyDelta
// derives the next immutable snapshot from a batch of additions and
// deletions by incrementally maintaining the hash indexes, posting lists
// and pattern-support bitmaps (copy-on-write overlays over the shared
// base layers), and Versioned publishes the current snapshot through an
// atomic pointer so probes never block behind an update.
//
// Delta semantics, mirrored exactly by the rebuild oracle the property
// tests compare against:
//
//  1. deletes name tuple ids in the snapshot the delta is applied to.
//     They are processed in descending id order, each as a swap-remove:
//     the last tuple moves into the deleted slot. Swap-remove keeps
//     maintenance proportional to the delta (only the moved tuple's
//     entries change id) instead of cascading an id shift through every
//     structure.
//  2. adds are then appended in order; added tuples are deep-copied, so
//     callers may reuse their slices.
//
// Cost per delta: O(|Dm|) to copy the tuple-header slice and the per-rule
// bitmaps (a few machine words per tuple, no hashing), plus O(|delta|)
// map and bucket work — against the full rebuild's per-tuple hashing,
// interning and pattern evaluation. The ApplyDelta benchmarks record the
// gap (hundreds of times faster at |Dm| = 60k).

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/rule"
)

// fork derives the next snapshot's view of a compatibility plan: the
// pattern bitmap is copied at the given word count (deltas change |Dm|,
// so the new snapshot may need more words than the old), and the posting
// pointers are remapped to the forked postings.
func (cp *compatPlan) fork(remap map[*postings]*postings, words int) *compatPlan {
	bits := make([]uint64, words)
	copy(bits, cp.patBits)
	posts := make([]*postings, len(cp.posts))
	for i, ps := range cp.posts {
		posts[i] = remap[ps]
	}
	return &compatPlan{patBits: bits, patCount: cp.patCount, posts: posts}
}

// ApplyDelta derives a new snapshot with the deletes applied (swap-remove,
// descending id order) followed by the adds (appended in order). The
// receiver is not modified and stays fully usable; probes running against
// it — or any other snapshot — are never blocked or invalidated.
// Concurrent ApplyDelta calls on the same snapshot must be serialized by
// the caller (use Versioned.Apply).
func (d *Data) ApplyDelta(adds []relation.Tuple, deletes []int) (*Data, error) {
	arity := d.rel.Schema().Arity()
	for _, t := range adds {
		if len(t) != arity {
			return nil, fmt.Errorf("master: delta add of arity %d against schema %s of arity %d",
				len(t), d.rel.Schema().Name(), arity)
		}
	}
	n := d.rel.Len()
	del := append([]int(nil), deletes...)
	sort.Sort(sort.Reverse(sort.IntSlice(del)))
	for i, id := range del {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("master: delta delete id %d out of range [0, %d)", id, n)
		}
		if i > 0 && del[i-1] == id {
			return nil, fmt.Errorf("master: duplicate delta delete id %d", id)
		}
	}

	// maxLen bounds the largest live tuple id during application: deletes
	// run first (ids < n), adds then grow the relation toward final.
	final := n - len(del) + len(adds)
	maxLen := n
	if final > maxLen {
		maxLen = final
	}
	words := (maxLen + 63) / 64

	nd := &Data{
		epoch: d.epoch + 1,
		syms:  d.syms.Fork(),
	}
	nd.hasher = relation.NewHasher(nd.syms)
	remapIdx := make(map[*index]*index, len(d.indexes))
	nd.indexes = make([]*index, len(d.indexes))
	for i, idx := range d.indexes {
		ni := idx.fork()
		nd.indexes[i] = ni
		remapIdx[idx] = ni
	}
	nd.plans = make(map[*rule.Rule]*index, len(d.plans))
	for ru, idx := range d.plans {
		nd.plans[ru] = remapIdx[idx]
	}
	remapPost := make(map[*postings]*postings, len(d.postings))
	nd.postings = make([]*postings, len(d.postings))
	for i, ps := range d.postings {
		np := ps.fork()
		nd.postings[i] = np
		remapPost[ps] = np
	}
	nd.compat = make(map[*rule.Rule]*compatPlan, len(d.compat))
	for ru, cp := range d.compat {
		nd.compat[ru] = cp.fork(remapPost, words)
	}

	tuples := make([]relation.Tuple, n, maxLen)
	copy(tuples, d.rel.Tuples())

	for _, id := range del {
		last := len(tuples) - 1
		nd.unindexTuple(tuples[id], id)
		if last != id {
			nd.renameTuple(tuples[last], last, id)
			tuples[id] = tuples[last]
		}
		tuples[last] = nil
		tuples = tuples[:last]
	}
	for _, t := range adds {
		tc := t.Clone()
		id := len(tuples)
		tuples = append(tuples, tc)
		nd.indexTuple(tc, id)
	}

	// Trim the pattern bitmaps to the final length (net-shrinking deltas
	// leave spare words; all trimmed bits are already zero).
	fwords := (len(tuples) + 63) / 64
	for _, cp := range nd.compat {
		cp.patBits = cp.patBits[:fwords]
	}
	rel, err := relation.FromTuples(d.rel.Schema(), tuples)
	if err != nil {
		return nil, err // unreachable: adds were arity-checked above
	}
	nd.rel = rel
	return nd, nil
}

// unindexTuple removes tuple id's entries from every index, posting list
// and pattern bitmap. t is the stored tuple at id.
func (nd *Data) unindexTuple(t relation.Tuple, id int) {
	for _, idx := range nd.indexes {
		if h, ok := nd.hasher.HashTuple(t, idx.xm); ok {
			idx.set(h, removeID(idx.get(h), id))
		}
	}
	for _, ps := range nd.postings {
		if vid, ok := nd.syms.ID(t[ps.col]); ok {
			ps.set(vid, removeID(ps.get(vid), int32(id)))
		}
	}
	for _, cp := range nd.compat {
		w, m := id>>6, uint64(1)<<(uint(id)&63)
		if cp.patBits[w]&m != 0 {
			cp.patBits[w] &^= m
			cp.patCount--
		}
	}
}

// renameTuple rewrites tuple `from`'s entries to id `to` (the swap-remove
// move of the last tuple into a freed slot; to < from, and to's own
// entries were removed by unindexTuple first). Bucket and posting order
// stays ascending.
func (nd *Data) renameTuple(t relation.Tuple, from, to int) {
	for _, idx := range nd.indexes {
		if h, ok := nd.hasher.HashTuple(t, idx.xm); ok {
			idx.set(h, renameID(idx.get(h), from, to))
		}
	}
	for _, ps := range nd.postings {
		if vid, ok := nd.syms.ID(t[ps.col]); ok {
			ps.set(vid, renameID(ps.get(vid), int32(from), int32(to)))
		}
	}
	for _, cp := range nd.compat {
		wf, mf := from>>6, uint64(1)<<(uint(from)&63)
		if cp.patBits[wf]&mf != 0 {
			cp.patBits[wf] &^= mf
			cp.patBits[to>>6] |= 1 << (uint(to) & 63)
		}
	}
}

// indexTuple adds a freshly appended tuple (id is the current maximum, so
// appending keeps buckets and posting lists ascending), interning any new
// values into the snapshot's owned symbol layer.
func (nd *Data) indexTuple(t relation.Tuple, id int) {
	for _, idx := range nd.indexes {
		h := nd.hasher.HashInterning(t, idx.xm)
		idx.set(h, appendID(idx.get(h), id))
	}
	for _, ps := range nd.postings {
		vid := nd.syms.Intern(t[ps.col])
		ps.set(vid, appendID(ps.get(vid), int32(id)))
	}
	for ru, cp := range nd.compat {
		if patternCompatible(ru, t) {
			cp.patBits[id>>6] |= 1 << (uint(id) & 63)
			cp.patCount++
		}
	}
}

// Versioned is the mutable handle over a chain of master snapshots: it
// serializes writers and publishes each new snapshot with an atomic
// pointer swap. Readers call Current and probe the returned snapshot for
// as long as they need a stable view (a Deriver pins one per Suggest
// call, a monitor Session pins one for its whole interactive lifetime);
// they never block behind a writer and never observe a half-applied
// delta.
//
// Beyond the head, Versioned retains a bounded ring of recent snapshots
// so that suspended work — a serialized fix session resumed minutes
// later, possibly in another process — can re-pin the exact epoch it
// started on via At. Retention is cheap: delta-derived snapshots share
// their base index layers copy-on-write, so a retained epoch costs the
// delta overlays plus two size-linear headers, not a full copy of Dm.
type Versioned struct {
	mu      sync.Mutex
	cur     atomic.Pointer[Data]
	hist    []*Data // ascending epochs; the last element is the head
	histCap int
}

// DefaultHistory is how many snapshots (including the head) a Versioned
// retains for At unless SetHistory overrides it.
const DefaultHistory = 8

// ErrEpochEvicted reports that the requested epoch is no longer retained
// in the snapshot ring. Callers holding a session pinned to that epoch
// must either fail the resume or rebase the session onto the current
// head (monitor.ResumeOptions.RebaseToHead).
var ErrEpochEvicted = errors.New("master: epoch evicted from snapshot history")

// NewVersioned starts a version chain at snapshot d (epoch as built),
// retaining DefaultHistory snapshots for At.
func NewVersioned(d *Data) *Versioned {
	v := &Versioned{histCap: DefaultHistory, hist: []*Data{d}}
	v.cur.Store(d)
	return v
}

// Current returns the latest published snapshot.
func (v *Versioned) Current() *Data { return v.cur.Load() }

// Epoch returns the latest published snapshot's epoch.
func (v *Versioned) Epoch() uint64 { return v.cur.Load().epoch }

// SetHistory bounds the snapshot ring to n entries including the head
// (n < 1 is clamped to 1: the head is always retained), evicting the
// oldest retained epochs immediately if the ring shrank.
func (v *Versioned) SetHistory(n int) {
	if n < 1 {
		n = 1
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.histCap = n
	v.trimLocked()
}

// History returns the current retention bound.
func (v *Versioned) History() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.histCap
}

// At returns the retained snapshot with the given epoch. The head is
// always available; older epochs are served from the ring until evicted,
// after which At fails with an error matching ErrEpochEvicted via
// errors.Is.
func (v *Versioned) At(epoch uint64) (*Data, error) {
	if cur := v.cur.Load(); cur.epoch == epoch {
		return cur, nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := len(v.hist) - 1; i >= 0; i-- {
		if v.hist[i].epoch == epoch {
			return v.hist[i], nil
		}
	}
	head := v.cur.Load().epoch
	return nil, fmt.Errorf("master: epoch %d not retained (head %d, history %d): %w",
		epoch, head, v.histCap, ErrEpochEvicted)
}

// Apply derives a snapshot from the current head via ApplyDelta and
// publishes it. On error nothing is published and the head is unchanged.
func (v *Versioned) Apply(adds []relation.Tuple, deletes []int) (*Data, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	next, err := v.cur.Load().ApplyDelta(adds, deletes)
	if err != nil {
		return nil, err
	}
	v.cur.Store(next)
	v.hist = append(v.hist, next)
	v.trimLocked()
	return next, nil
}

// trimLocked evicts the oldest snapshots beyond histCap; v.mu held.
func (v *Versioned) trimLocked() {
	if drop := len(v.hist) - v.histCap; drop > 0 {
		// Shift instead of re-slicing so evicted snapshots are not kept
		// alive by the backing array.
		copy(v.hist, v.hist[drop:])
		for i := len(v.hist) - drop; i < len(v.hist); i++ {
			v.hist[i] = nil
		}
		v.hist = v.hist[:len(v.hist)-drop]
	}
}
