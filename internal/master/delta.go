package master

// This file implements the versioned-master update path: ApplyDelta
// derives the next immutable snapshot from a batch of additions and
// deletions by incrementally maintaining the hash indexes, posting lists
// and pattern-support bitmaps (copy-on-write overlays over the shared
// base layers), and Versioned publishes the current snapshot through an
// atomic pointer so probes never block behind an update.
//
// Delta semantics, mirrored exactly by the rebuild oracle the property
// tests compare against:
//
//  1. deletes name tuple ids in the snapshot the delta is applied to.
//     They are processed in descending id order, each as a swap-remove:
//     the last tuple moves into the deleted slot. Swap-remove keeps
//     maintenance proportional to the delta (only the moved tuple's
//     entries change id) instead of cascading an id shift through every
//     structure.
//  2. adds are then appended in order; added tuples are deep-copied, so
//     callers may reuse their slices.
//
// Every index and posting mutation routes to the owning tuple's shard
// (shard.go), so a delta's overlays — and the flatten-at-1/4 compaction
// they eventually trigger in fork — stay shard-local. The mutations are
// PLANNED serially (cheap: bitmap bits, interning, op lists) and APPLIED
// per shard; a large delta applies its shards in parallel, since distinct
// shards share no maps.
//
// Cost per delta: O(|Dm|) to copy the tuple-header slice and the per-rule
// bitmaps (a few machine words per tuple, no hashing), plus O(|delta|)
// map and bucket work — against the full rebuild's per-tuple hashing,
// interning and pattern evaluation. The ApplyDelta benchmarks record the
// gap (hundreds of times faster at |Dm| = 60k).

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/relation"
	"repro/internal/rule"
)

// fork derives the next snapshot's view of a compatibility plan: the
// pattern bitmap is copied at the given word count (deltas change |Dm|,
// so the new snapshot may need more words than the old), and the posting
// pointers are remapped to the forked postings.
func (cp *compatPlan) fork(remap map[*postings]*postings, words int) *compatPlan {
	bits := make([]uint64, words)
	copy(bits, cp.patBits)
	posts := make([]*postings, len(cp.posts))
	for i, ps := range cp.posts {
		posts[i] = remap[ps]
	}
	return &compatPlan{patBits: bits, patCount: cp.patCount, posts: posts}
}

// shardOp is one planned index/posting mutation, queued on the owning
// tuple's shard. Bitmap updates and interning happen at planning time
// (they are global and O(1) per op); the map and bucket work — the bulk
// of a delta — runs in applyShardOps.
type shardOp struct {
	kind   uint8
	t      relation.Tuple
	id, to int
}

const (
	opUnindex uint8 = iota
	opRename
	opAppend
)

// parallelDeltaOps is the op count above which shards apply in parallel;
// below it, goroutine fan-out costs more than it saves.
const parallelDeltaOps = 128

// ApplyDelta derives a new snapshot with the deletes applied (swap-remove,
// descending id order) followed by the adds (appended in order). The
// receiver is not modified and stays fully usable; probes running against
// it — or any other snapshot — are never blocked or invalidated.
// Concurrent ApplyDelta calls on the same snapshot must be serialized by
// the caller (use Versioned.Apply). Validation failures are typed
// (*BuildError matching ErrMasterBuild) with the failing tuple's shard
// and key context.
func (d *Data) ApplyDelta(adds []relation.Tuple, deletes []int) (*Data, error) {
	for i, t := range adds {
		if err := validateTuple(d.rel.Schema(), t); err != nil {
			return nil, &BuildError{Shard: d.shardOf(t), TupleID: i, Key: tupleKeyContext(t),
				Err: fmt.Errorf("delta add: %w", err)}
		}
	}
	n := d.rel.Len()
	del := append([]int(nil), deletes...)
	sort.Sort(sort.Reverse(sort.IntSlice(del)))
	for i, id := range del {
		if id < 0 || id >= n {
			// Tuple-independent context (no tuple exists at this id; the
			// wrapped error names it).
			return nil, &BuildError{Shard: -1, TupleID: -1,
				Err: fmt.Errorf("delta delete id %d out of range [0, %d)", id, n)}
		}
		if i > 0 && del[i-1] == id {
			return nil, &BuildError{Shard: d.shardOf(d.rel.Tuple(id)), TupleID: id,
				Key: tupleKeyContext(d.rel.Tuple(id)), Err: fmt.Errorf("duplicate delta delete id %d", id)}
		}
	}

	// maxLen bounds the largest live tuple id during application: deletes
	// run first (ids < n), adds then grow the relation toward final.
	final := n - len(del) + len(adds)
	maxLen := n
	if final > maxLen {
		maxLen = final
	}
	words := (maxLen + 63) / 64

	nd := &Data{
		epoch:   d.epoch + 1,
		nshards: d.nshards,
		// Aliasing is safe: addNeedCol rebuilds the slice copy-on-write,
		// never mutating the shared array in place.
		needCols: d.needCols,
		syms:     d.syms.Fork(),
		arena:    d.arena,
	}
	nd.hasher = relation.NewHasher(nd.syms)
	remapIdx := make(map[*index]*index, len(d.indexes))
	nd.indexes = make([]*index, len(d.indexes))
	for i, idx := range d.indexes {
		ni := idx.fork()
		nd.indexes[i] = ni
		remapIdx[idx] = ni
	}
	nd.plans = make(map[*rule.Rule]*index, len(d.plans))
	for ru, idx := range d.plans {
		nd.plans[ru] = remapIdx[idx]
	}
	remapPost := make(map[*postings]*postings, len(d.postings))
	nd.postings = make([]*postings, len(d.postings))
	for i, ps := range d.postings {
		np := ps.fork()
		nd.postings[i] = np
		remapPost[ps] = np
	}
	nd.compat = make(map[*rule.Rule]*compatPlan, len(d.compat))
	for ru, cp := range d.compat {
		nd.compat[ru] = cp.fork(remapPost, words)
	}

	tuples := make([]relation.Tuple, n, maxLen)
	copy(tuples, d.rel.Tuples())

	// Plan: route every op to its tuple's shard; update bitmaps and
	// intern added values inline (both global, both O(1) per op).
	perShard := make([][]shardOp, nd.nshards)
	enqueue := func(s int, op shardOp) { perShard[s] = append(perShard[s], op) }

	// The Merkle commitment is keyed by tuple CONTENT, so only genuine
	// deletes and adds touch it — the swap-remove renames below shuffle
	// ids, not content, and leave the root alone. O(delta · depth) node
	// copies per epoch, sharing every untouched subtree with the parent.
	nd.auth = d.auth

	for _, id := range del {
		last := len(tuples) - 1
		t := tuples[id]
		enqueue(nd.shardOf(t), shardOp{kind: opUnindex, t: t, id: id})
		nd.unsetBits(id)
		if nd.auth != nil {
			nd.auth = authRemove(nd.auth, t)
		}
		if last != id {
			moved := tuples[last]
			enqueue(nd.shardOf(moved), shardOp{kind: opRename, t: moved, id: last, to: id})
			nd.moveBits(last, id)
			tuples[id] = moved
		}
		tuples[last] = nil
		tuples = tuples[:last]
	}
	for _, t := range adds {
		tc := t.Clone()
		id := len(tuples)
		tuples = append(tuples, tc)
		for _, col := range nd.needCols {
			nd.syms.Intern(tc[col])
		}
		enqueue(nd.shardOf(tc), shardOp{kind: opAppend, t: tc, id: id})
		nd.setBitsFor(tc, id)
		if nd.auth != nil {
			nd.auth = nd.auth.Insert(tc)
		}
	}

	// Apply: per-shard op lists touch disjoint maps, so a large delta
	// fans the shards out across CPUs.
	totalOps := len(del) + len(adds)
	if nd.nshards > 1 && totalOps >= parallelDeltaOps && runtime.GOMAXPROCS(0) > 1 {
		if _, err := parallel.Map(nd.nshards, 0, func(s int) (struct{}, error) {
			nd.applyShardOps(s, perShard[s])
			return struct{}{}, nil
		}); err != nil {
			return nil, err // unreachable: applyShardOps cannot fail
		}
	} else {
		for s, ops := range perShard {
			nd.applyShardOps(s, ops)
		}
	}

	// Trim the pattern bitmaps to the final length (net-shrinking deltas
	// leave spare words; all trimmed bits are already zero).
	fwords := (len(tuples) + 63) / 64
	for _, cp := range nd.compat {
		cp.patBits = cp.patBits[:fwords]
	}
	rel, err := relation.FromTuples(d.rel.Schema(), tuples)
	if err != nil {
		return nil, err // unreachable: adds were validated above
	}
	nd.rel = rel
	return nd, nil
}

// applyShardOps runs one shard's planned mutations in order. Ops touch
// only shard s's layered maps, so distinct shards may run concurrently;
// the symbol table is read-only here (interning happened at plan time).
func (nd *Data) applyShardOps(s int, ops []shardOp) {
	for _, op := range ops {
		switch op.kind {
		case opUnindex:
			for _, idx := range nd.indexes {
				if h, ok := nd.hasher.HashTuple(op.t, idx.xm); ok {
					l := &idx.shards[s]
					l.set(h, removeID(l.get(h), op.id))
				}
			}
			for _, ps := range nd.postings {
				if vid, ok := nd.syms.ID(op.t[ps.col]); ok {
					l := &ps.shards[s]
					l.set(vid, removeID(l.get(vid), int32(op.id)))
				}
			}
		case opRename:
			for _, idx := range nd.indexes {
				if h, ok := nd.hasher.HashTuple(op.t, idx.xm); ok {
					l := &idx.shards[s]
					l.set(h, renameID(l.get(h), op.id, op.to))
				}
			}
			for _, ps := range nd.postings {
				if vid, ok := nd.syms.ID(op.t[ps.col]); ok {
					l := &ps.shards[s]
					l.set(vid, renameID(l.get(vid), int32(op.id), int32(op.to)))
				}
			}
		case opAppend:
			for _, idx := range nd.indexes {
				if h, ok := nd.hasher.HashTuple(op.t, idx.xm); ok {
					l := &idx.shards[s]
					l.set(h, appendID(l.get(h), op.id))
				}
			}
			for _, ps := range nd.postings {
				if vid, ok := nd.syms.ID(op.t[ps.col]); ok {
					l := &ps.shards[s]
					l.set(vid, appendID(l.get(vid), int32(op.id)))
				}
			}
		}
	}
}

// unsetBits clears tuple id's pattern bits (planning-time, serial).
func (nd *Data) unsetBits(id int) {
	w, m := id>>6, uint64(1)<<(uint(id)&63)
	for _, cp := range nd.compat {
		if cp.patBits[w]&m != 0 {
			cp.patBits[w] &^= m
			cp.patCount--
		}
	}
}

// moveBits rewrites tuple `from`'s pattern bits to id `to` (the
// swap-remove move; to's own bits were cleared by unsetBits first).
func (nd *Data) moveBits(from, to int) {
	wf, mf := from>>6, uint64(1)<<(uint(from)&63)
	for _, cp := range nd.compat {
		if cp.patBits[wf]&mf != 0 {
			cp.patBits[wf] &^= mf
			cp.patBits[to>>6] |= 1 << (uint(to) & 63)
		}
	}
}

// setBitsFor evaluates a freshly appended tuple against every rule's
// pattern and sets its bits.
func (nd *Data) setBitsFor(t relation.Tuple, id int) {
	for ru, cp := range nd.compat {
		if patternCompatible(ru, t) {
			cp.patBits[id>>6] |= 1 << (uint(id) & 63)
			cp.patCount++
		}
	}
}

// Versioned is the mutable handle over a chain of master snapshots: it
// serializes writers and publishes each new snapshot with an atomic
// pointer swap. Readers call Current and probe the returned snapshot for
// as long as they need a stable view (a Deriver pins one per Suggest
// call, a monitor Session pins one for its whole interactive lifetime);
// they never block behind a writer and never observe a half-applied
// delta.
//
// Beyond the head, Versioned retains a bounded ring of recent snapshots
// so that suspended work — a serialized fix session resumed minutes
// later, possibly in another process — can re-pin the exact epoch it
// started on via At. Retention is cheap: delta-derived snapshots share
// their base index layers copy-on-write, so a retained epoch costs the
// delta overlays plus two size-linear headers, not a full copy of Dm.
type Versioned struct {
	mu      sync.Mutex
	cur     atomic.Pointer[Data]
	hist    []*Data // ascending epochs; the last element is the head
	histCap int
}

// DefaultHistory is how many snapshots (including the head) a Versioned
// retains for At unless SetHistory overrides it.
const DefaultHistory = 8

// ErrEpochEvicted reports that the requested epoch is no longer retained
// in the snapshot ring. Callers holding a session pinned to that epoch
// must either fail the resume or rebase the session onto the current
// head (monitor.ResumeOptions.RebaseToHead).
var ErrEpochEvicted = errors.New("master: epoch evicted from snapshot history")

// NewVersioned starts a version chain at snapshot d (epoch as built),
// retaining DefaultHistory snapshots for At.
func NewVersioned(d *Data) *Versioned {
	v := &Versioned{histCap: DefaultHistory, hist: []*Data{d}}
	v.cur.Store(d)
	return v
}

// Current returns the latest published snapshot.
func (v *Versioned) Current() *Data { return v.cur.Load() }

// Epoch returns the latest published snapshot's epoch.
func (v *Versioned) Epoch() uint64 { return v.cur.Load().epoch }

// SetHistory bounds the snapshot ring to n entries including the head
// (n < 1 is clamped to 1: the head is always retained), evicting the
// oldest retained epochs immediately if the ring shrank.
func (v *Versioned) SetHistory(n int) {
	if n < 1 {
		n = 1
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.histCap = n
	v.trimLocked()
}

// History returns the current retention bound.
func (v *Versioned) History() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.histCap
}

// At returns the retained snapshot with the given epoch. The head is
// always available; older epochs are served from the ring until evicted,
// after which At fails with an error matching ErrEpochEvicted via
// errors.Is.
func (v *Versioned) At(epoch uint64) (*Data, error) {
	if cur := v.cur.Load(); cur.epoch == epoch {
		return cur, nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := len(v.hist) - 1; i >= 0; i-- {
		if v.hist[i].epoch == epoch {
			return v.hist[i], nil
		}
	}
	head := v.cur.Load().epoch
	return nil, fmt.Errorf("master: epoch %d not retained (head %d, history %d): %w",
		epoch, head, v.histCap, ErrEpochEvicted)
}

// Apply derives a snapshot from the current head via ApplyDelta and
// publishes it. On error nothing is published and the head is unchanged.
func (v *Versioned) Apply(adds []relation.Tuple, deletes []int) (*Data, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	next, err := v.cur.Load().ApplyDelta(adds, deletes)
	if err != nil {
		return nil, err
	}
	v.cur.Store(next)
	v.hist = append(v.hist, next)
	v.trimLocked()
	return next, nil
}

// publishDerived publishes a snapshot already derived from the current
// head via ApplyDelta. It is the seam DurableVersioned needs to make a
// delta durable between derivation and visibility: derive, append the
// record to the WAL, then publish. The snapshot must extend the head by
// exactly one epoch — anything else means a second writer raced past the
// durability layer, which is a programming error, not a runtime state.
func (v *Versioned) publishDerived(next *Data) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if cur := v.cur.Load(); next.epoch != cur.epoch+1 {
		panic(fmt.Sprintf("master: publishDerived epoch %d over head %d", next.epoch, cur.epoch))
	}
	v.cur.Store(next)
	v.hist = append(v.hist, next)
	v.trimLocked()
}

// resetTo replaces the whole chain with a single snapshot, evicting every
// retained epoch. It is the follower's catch-up seam: when the leader
// truncated the WAL epochs a replica still needed, the replica rebases
// onto the leader's checkpoint image and tails from there. Sessions
// pinned to evicted epochs fail with ErrEpochEvicted on resume, exactly
// as they do when the ring outruns them.
func (v *Versioned) resetTo(d *Data) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := range v.hist {
		v.hist[i] = nil
	}
	v.hist = append(v.hist[:0], d)
	v.cur.Store(d)
}

// trimLocked evicts the oldest snapshots beyond histCap; v.mu held.
func (v *Versioned) trimLocked() {
	if drop := len(v.hist) - v.histCap; drop > 0 {
		// Shift instead of re-slicing so evicted snapshots are not kept
		// alive by the backing array.
		copy(v.hist, v.hist[drop:])
		for i := len(v.hist) - drop; i < len(v.hist); i++ {
			v.hist[i] = nil
		}
		v.hist = v.hist[:len(v.hist)-drop]
	}
}
