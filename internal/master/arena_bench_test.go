package master

// Cold-start benchmarks for the arena tentpole (ISSUE 6): process boot as
// a NewForRules rebuild versus loading the saved columnar image, at the
// acceptance scale of |Dm| = 100k (plus a 10k point for trend). The
// acceptance bar is arena ≥ 5x faster at 100k. BenchmarkProbeArena and
// its heap twin pin that the flat bucket tables do not regress the hot
// probe path (bar: within ±30%).

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relation"
	"repro/internal/rule"
)

// BenchmarkColdStartRebuild is today's boot path: a full parallel
// NewForRules over the row-oriented relation.
func BenchmarkColdStartRebuild(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		rel, sigma := benchMasterRelation(n)
		b.Run(fmt.Sprintf("Dm=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewForRules(rel, sigma); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColdStartArena is the boot path this PR adds: open the saved
// image, map it, validate, and materialize the snapshot. File pages are
// warm (saved in the same process), which matches a service restarting on
// the machine that holds its snapshot.
func BenchmarkColdStartArena(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		rel, sigma := benchMasterRelation(n)
		d, err := NewForRules(rel, sigma)
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(b.TempDir(), "master.arena")
		if err := d.SaveArenaFile(path, sigma); err != nil {
			b.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Dm=%d", n), func(b *testing.B) {
			b.SetBytes(fi.Size())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := LoadArena(path, sigma); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchProbe is the shared single-snapshot probe body: indexed MatchIDs
// plus the fully-validated CompatibleExists path against real zip
// projections — the same shape as BenchmarkProbeUnderUpdate minus the
// delta churn, so heap and arena are compared on identical work.
func benchProbe(b *testing.B, d *Data, rel *relation.Relation, arity, n int, ru *rule.Rule) {
	probes := make([]relation.Tuple, 256)
	for i := range probes {
		t := make(relation.Tuple, arity)
		for j := range t {
			t[j] = relation.String("x")
		}
		t[7] = rel.Tuple(i * (n / len(probes)))[7] // a real zip: indexed hit
		probes[i] = t
	}
	zSet := relation.NewAttrSet(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := probes[i%len(probes)]
		if len(d.MatchIDs(ru, t)) == 0 {
			b.Fatal("probe missed: bench fixture broken")
		}
		_ = d.CompatibleExists(ru, t, zSet)
	}
}

// BenchmarkProbeHeap measures the probe loop against a heap-built
// snapshot — the PR-5 baseline shape.
func BenchmarkProbeHeap(b *testing.B) {
	const n = 60_000
	rel, sigma := benchMasterRelation(n)
	d := MustNewForRules(rel, sigma)
	benchProbe(b, d, rel, sigma.Schema().Arity(), n, sigma.Rules()[0])
}

// BenchmarkProbeArena measures the identical loop against the same master
// loaded from its arena image: flat bucket tables, mmap-backed values.
func BenchmarkProbeArena(b *testing.B) {
	const n = 60_000
	rel, sigma := benchMasterRelation(n)
	d := MustNewForRules(rel, sigma)
	path := filepath.Join(b.TempDir(), "master.arena")
	if err := d.SaveArenaFile(path, sigma); err != nil {
		b.Fatal(err)
	}
	loaded, err := LoadArena(path, sigma)
	if err != nil {
		b.Fatal(err)
	}
	benchProbe(b, loaded, rel, sigma.Schema().Arity(), n, sigma.Rules()[0])
}
