package master

// The sharding property: for EVERY shard count P, builds and delta chains
// produce probe results byte-identical to the unsharded (P=1) oracle —
// tuple ids are global and routing is a pure function of tuple content,
// so P is invisible to every caller. These tests sweep P ∈ {1, 2, 7, 16}
// (one, even, prime, and more-shards-than-some-relations) across
// randomized instances, forced hash collisions, and delta chains long
// enough to push shard overlays across the flatten-at-1/4 compaction
// threshold.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

var shardSweep = []int{1, 2, 7, 16}

// randomShardInstance builds a randomized (Rm relation, Σ) pair plus the
// value pool used to generate probes, without building the master yet —
// each shard count builds its own Data over the same relation.
func randomShardInstance(rng *rand.Rand) (*relation.Relation, *rule.Set, []string) {
	nR := 3 + rng.Intn(3)
	nM := 3 + rng.Intn(3)
	rNames := make([]string, nR)
	for i := range rNames {
		rNames[i] = fmt.Sprintf("A%d", i)
	}
	mNames := make([]string, nM)
	for i := range mNames {
		mNames[i] = fmt.Sprintf("M%d", i)
	}
	r := relation.StringSchema("R", rNames...)
	rm := relation.StringSchema("Rm", mNames...)

	// Enough distinct values that tuples spread across 16 shards, skewed
	// so posting lists drift across the adaptive-scan threshold.
	vals := []string{"a", "a", "a", "b", "c", "d", "e", "f"}
	rel := relation.NewRelation(rm)
	for i, n := 0, 2+rng.Intn(24); i < n; i++ {
		rel.MustAppend(randomMasterTuple(rng, nM, vals))
	}

	sigma := rule.MustNewSet(r, rm)
	for i, n := 0, 1+rng.Intn(5); i < n; i++ {
		xLen := 1 + rng.Intn(2)
		perm := rng.Perm(nR)
		x := perm[:xLen]
		b := perm[xLen]
		xm := make([]int, xLen)
		for j := range xm {
			xm[j] = rng.Intn(nM)
		}
		var pPos []int
		var pCells []pattern.Cell
		for _, p := range rng.Perm(nR)[:rng.Intn(3)] {
			pPos = append(pPos, p)
			cell := pattern.Eq(relation.String(vals[rng.Intn(len(vals))]))
			if rng.Intn(3) == 0 {
				cell = pattern.Neq(cell.Val)
			}
			pCells = append(pCells, cell)
		}
		ru, err := rule.New(fmt.Sprintf("r%d", i), r, rm, x, xm, b, rng.Intn(nM), pattern.MustTuple(pPos, pCells))
		if err != nil {
			continue
		}
		sigma.Add(ru)
	}
	return rel, sigma, vals
}

// checkProbeEquality asserts every probe entry point answers byte-
// identically on the sharded snapshot and the P=1 oracle.
func checkProbeEquality(t *testing.T, ctx string, sharded, oracle *Data, sigma *rule.Set, probe relation.Tuple, zSet relation.AttrSet) {
	t.Helper()
	for _, ru := range sigma.Rules() {
		if got, want := sharded.MatchIDs(ru, probe), oracle.MatchIDs(ru, probe); !eqInts(got, want) {
			t.Fatalf("%s: rule %s MatchIDs = %v, oracle %v", ctx, ru.Name(), got, want)
		}
		if got, want := sharded.HasMatch(ru, probe), oracle.HasMatch(ru, probe); got != want {
			t.Fatalf("%s: rule %s HasMatch = %v, oracle %v", ctx, ru.Name(), got, want)
		}
		gotRHS, wantRHS := sharded.RHSValues(ru, probe), oracle.RHSValues(ru, probe)
		if len(gotRHS) != len(wantRHS) {
			t.Fatalf("%s: rule %s RHSValues = %v, oracle %v", ctx, ru.Name(), gotRHS, wantRHS)
		}
		for i := range gotRHS {
			if !gotRHS[i].Equal(wantRHS[i]) {
				t.Fatalf("%s: rule %s RHSValues = %v, oracle %v", ctx, ru.Name(), gotRHS, wantRHS)
			}
		}
		if got, want := sharded.CompatibleExists(ru, probe, zSet), oracle.CompatibleExists(ru, probe, zSet); got != want {
			t.Fatalf("%s: rule %s CompatibleExists = %v, oracle %v (z=%v)", ctx, ru.Name(), got, want, zSet.Positions())
		}
		if got, want := sharded.PatternSupported(ru), oracle.PatternSupported(ru); got != want {
			t.Fatalf("%s: rule %s PatternSupported = %v, oracle %v", ctx, ru.Name(), got, want)
		}
		xm := ru.LHSMRef()
		vals := probe.Project(ru.LHSRef())
		if got, want := sharded.Lookup(xm, vals), oracle.Lookup(xm, vals); !eqInts(got, want) {
			t.Fatalf("%s: rule %s Lookup = %v, oracle %v", ctx, ru.Name(), got, want)
		}
	}
}

// TestShardedBuildMatchesUnshardedOracle: a parallel sharded build answers
// every probe byte-identically to the unsharded sequential build, for
// random probes, stored tuples, and every validated-attr shape.
func TestShardedBuildMatchesUnshardedOracle(t *testing.T) {
	for seed := 0; seed < 120; seed++ {
		rng := rand.New(rand.NewSource(int64(51_000_000 + seed)))
		rel, sigma, vals := randomShardInstance(rng)
		oracle := MustNewForRules(rel, sigma, WithShards(1), WithBuildWorkers(1))
		for _, p := range shardSweep {
			sharded := MustNewForRules(rel, sigma, WithShards(p), WithBuildWorkers(3))
			if sharded.Shards() != p {
				t.Fatalf("seed %d: Shards() = %d, want %d", seed, sharded.Shards(), p)
			}
			probe := make(relation.Tuple, sigma.Schema().Arity())
			for trial := 0; trial < 4; trial++ {
				for i := range probe {
					if rng.Intn(7) == 0 {
						probe[i] = relation.String("zz") // never interned
					} else {
						probe[i] = relation.String(vals[rng.Intn(len(vals))])
					}
				}
				zSet := relation.NewAttrSet(rng.Perm(len(probe))[:rng.Intn(len(probe)+1)]...)
				checkProbeEquality(t, fmt.Sprintf("seed %d P=%d trial %d", seed, p, trial), sharded, oracle, sigma, probe, zSet)
			}
			// Stored tuples probe as guaranteed hits; project them into
			// input-schema shape where arities align.
			if rel.Len() > 0 && sigma.Schema().Arity() == rel.Schema().Arity() {
				tm := rel.Tuple(rng.Intn(rel.Len()))
				zSet := relation.NewAttrSet(rng.Perm(len(tm))[:rng.Intn(len(tm)+1)]...)
				checkProbeEquality(t, fmt.Sprintf("seed %d P=%d stored", seed, p), sharded, oracle, sigma, tm, zSet)
			}
		}
	}
}

// TestShardedDeltaEquivalence drives randomized delta chains at every
// shard count, long enough that shard overlays cross the flatten-at-1/4
// compaction threshold, checking every intermediate snapshot against the
// same-P rebuild oracle (checkEquiv) and the P=1 oracle's probe answers.
func TestShardedDeltaEquivalence(t *testing.T) {
	for _, p := range shardSweep {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			for seed := 0; seed < 12; seed++ {
				rng := rand.New(rand.NewSource(int64(61_000_000 + seed)))
				rel, sigma, vals := randomShardInstance(rng)
				cur := MustNewForRules(rel, sigma, WithShards(p), WithBuildWorkers(2))
				orc := MustNewForRules(rel.Clone(), sigma, WithShards(1), WithBuildWorkers(1))
				probe := make(relation.Tuple, sigma.Schema().Arity())
				// 24 deltas on a ≤ 26-tuple relation: overlays repeatedly
				// exceed a quarter of their shard's base, forcing the
				// compaction path of layered.fork on every shard.
				for step := 0; step < 24; step++ {
					adds, deletes := randomDelta(rng, cur.Len(), rel.Schema().Arity(), vals)
					next, err := cur.ApplyDelta(adds, deletes)
					if err != nil {
						t.Fatalf("seed %d step %d: %v", seed, step, err)
					}
					nextOrc, err := orc.ApplyDelta(adds, deletes)
					if err != nil {
						t.Fatalf("seed %d step %d (oracle): %v", seed, step, err)
					}
					ctx := fmt.Sprintf("seed %d step %d P=%d", seed, step, p)
					checkEquiv(t, ctx, next, sigma)
					for trial := 0; trial < 3; trial++ {
						for i := range probe {
							probe[i] = relation.String(vals[rng.Intn(len(vals))])
						}
						zSet := relation.NewAttrSet(rng.Perm(len(probe))[:rng.Intn(len(probe)+1)]...)
						checkProbeEquality(t, ctx, next, nextOrc, sigma, probe, zSet)
					}
					cur, orc = next, nextOrc
				}
			}
		})
	}
}

// TestShardedForcedCollision injects a foreign tuple id into EVERY
// shard's bucket for a probe's hash — simulating uint64 collisions in the
// sharded layout — and checks the fan-out probe filters them all while
// still merging true matches across shards in ascending-id order.
func TestShardedForcedCollision(t *testing.T) {
	r := relation.StringSchema("R", "K", "V")
	rm := relation.StringSchema("Rm", "K", "V")
	ru := rule.MustNew("kv", r, rm, []int{0}, []int{0}, 1, 1, pattern.Empty())
	sigma := rule.MustNewSet(r, rm, ru)
	rel := relation.NewRelation(rm)
	// Many tuples sharing key "k": full-tuple routing spreads them across
	// shards (the V column differs), so the probe exercises the
	// multi-shard merge.
	for i := 0; i < 12; i++ {
		rel.MustAppend(relation.StringTuple("k", fmt.Sprintf("v%d", i)))
	}
	rel.MustAppend(relation.StringTuple("other", "x")) // id 12: the injected collision
	dm := MustNewForRules(rel, sigma, WithShards(7), WithBuildWorkers(2))

	probe := relation.StringTuple("k", "dirty")
	h, ok := dm.hasher.HashTuple(probe, ru.LHSRef())
	if !ok {
		t.Fatal("probe must hash")
	}
	idx := dm.plans[ru]
	spread := 0
	for s := range idx.shards {
		if len(idx.shards[s].get(h)) > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("fixture broken: key \"k\" occupies %d shards, want >= 2", spread)
	}

	want := make([]int, 12)
	for i := range want {
		want[i] = i
	}
	if got := dm.MatchIDs(ru, probe); !eqInts(got, want) {
		t.Fatalf("pre-collision MatchIDs = %v, want %v", got, want)
	}

	// Inject id 12 (projection "other") into every shard's bucket for h.
	for s := range idx.shards {
		bucket := append([]int(nil), idx.shards[s].get(h)...)
		idx.shards[s].base[h] = append(bucket, 12)
		delete(idx.shards[s].over, h)
	}
	if got := dm.MatchIDs(ru, probe); !eqInts(got, want) {
		t.Fatalf("MatchIDs after injected collisions = %v, want %v", got, want)
	}
	if dm.HasMatch(ru, relation.StringTuple("nope", "")) {
		t.Fatal("foreign key must not match")
	}
	if got := dm.Lookup([]int{0}, []relation.Value{relation.String("k")}); !eqInts(got, want) {
		t.Fatalf("Lookup after injected collisions = %v, want %v", got, want)
	}
}

// TestShardedProbeZeroAllocSingleMatch pins the fan-out guarantee: a
// single-match hit — the overwhelmingly common probe against key-like
// master projections — allocates nothing even when P > 1, as do both
// miss shapes.
func TestShardedProbeZeroAllocSingleMatch(t *testing.T) {
	r := relation.StringSchema("R", "K", "V", "W")
	rm := relation.StringSchema("Rm", "K", "V", "W")
	ru := rule.MustNew("kv", r, rm, []int{0}, []int{0}, 1, 1, pattern.Empty())
	sigma := rule.MustNewSet(r, rm, ru)
	rel := relation.NewRelation(rm)
	for i := 0; i < 64; i++ {
		rel.MustAppend(relation.StringTuple(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i), "w"))
	}
	dm := MustNewForRules(rel, sigma, WithShards(8), WithBuildWorkers(2))

	hit := relation.StringTuple("k17", "dirty", "x")
	missUninterned := relation.StringTuple("nope", "dirty", "x")
	allocs := testing.AllocsPerRun(1000, func() {
		if ids := dm.MatchIDs(ru, hit); len(ids) != 1 {
			t.Fatal("hit must match once")
		}
		if ids := dm.MatchIDs(ru, missUninterned); len(ids) != 0 {
			t.Fatal("miss must not match")
		}
	})
	if allocs != 0 {
		t.Fatalf("sharded single-match probe allocates %.1f objects per run; want 0", allocs)
	}
}

// TestBuildErrorContext pins the typed build-failure contract: schema
// mismatches and bad tuples surface *BuildError matching ErrMasterBuild,
// with the failing tuple's shard, id and key context in the message.
func TestBuildErrorContext(t *testing.T) {
	r := relation.StringSchema("R", "A", "B")
	rm, err := relation.NewSchema("Rm",
		relation.Attribute{Name: "MA", Type: relation.TypeString},
		relation.Attribute{Name: "MB", Type: relation.TypeInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	ru := rule.MustNew("r1", r, rm, []int{0}, []int{0}, 1, 1, pattern.Empty())
	sigma := rule.MustNewSet(r, rm, ru)

	rel := relation.NewRelation(rm)
	rel.MustAppend(relation.Tuple{relation.String("ok"), relation.Int(1)})
	rel.MustAppend(relation.Tuple{relation.String("bad"), relation.String("not-an-int")})
	_, err = NewForRules(rel, sigma, WithShards(4), WithBuildWorkers(2))
	if err == nil {
		t.Fatal("type-violating tuple must fail the build")
	}
	if !errors.Is(err, ErrMasterBuild) {
		t.Fatalf("build failure must match ErrMasterBuild, got %v", err)
	}
	var be *BuildError
	if !errors.As(err, &be) {
		t.Fatalf("build failure must be a *BuildError, got %T", err)
	}
	if be.TupleID != 1 || be.Shard < 0 || be.Shard >= 4 {
		t.Fatalf("BuildError context = tuple %d shard %d, want tuple 1 shard in [0,4)", be.TupleID, be.Shard)
	}
	if !strings.Contains(be.Key, "bad") {
		t.Fatalf("BuildError key %q must carry the tuple's content", be.Key)
	}
	if !strings.Contains(err.Error(), "shard") || !strings.Contains(err.Error(), "key") {
		t.Fatalf("error message %q must name shard and key", err)
	}

	// Schema mismatch: tuple-independent context.
	wrong := relation.NewRelation(relation.StringSchema("Other", "X"))
	_, err = NewForRules(wrong, sigma)
	if !errors.Is(err, ErrMasterBuild) {
		t.Fatalf("schema mismatch must match ErrMasterBuild, got %v", err)
	}

	// Delta validation carries the same context.
	good := relation.NewRelation(rm)
	good.MustAppend(relation.Tuple{relation.String("ok"), relation.Int(1)})
	dm := MustNewForRules(good, sigma, WithShards(2))
	_, err = dm.ApplyDelta([]relation.Tuple{{relation.Int(9), relation.Int(9)}}, nil)
	if !errors.Is(err, ErrMasterBuild) {
		t.Fatalf("delta add type violation must match ErrMasterBuild, got %v", err)
	}
	_, err = dm.ApplyDelta(nil, []int{5})
	if !errors.Is(err, ErrMasterBuild) {
		t.Fatalf("delta delete out of range must match ErrMasterBuild, got %v", err)
	}
}

// TestIndexOnDerivedSnapshotDoesNotCorruptSibling pins the needCols
// copy-on-write contract: registering a new index on a delta-derived
// snapshot must not rewrite the shared needCols view of its ancestors,
// whose later deltas would otherwise skip interning for the lost column
// and silently drop index entries.
func TestIndexOnDerivedSnapshotDoesNotCorruptSibling(t *testing.T) {
	rm := relation.StringSchema("Rm", "MA", "MB", "MC")
	rel := relation.NewRelation(rm)
	rel.MustAppend(relation.StringTuple("a0", "b0", "c0"))
	d0 := New(rel, WithShards(2))
	d0.Index([]int{0})
	d0.Index([]int{2})

	d1, err := d0.ApplyDelta([]relation.Tuple{relation.StringTuple("a1", "b1", "c1")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Registering an index over a new column on the child grows ITS
	// needCols; the parent chain's view must be unchanged.
	d1.Index([]int{1})

	d2, err := d1.ApplyDelta([]relation.Tuple{relation.StringTuple("a2", "b2", "c2")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct {
		xm  []int
		val string
		id  int
	}{{[]int{0}, "a2", 2}, {[]int{1}, "b2", 2}, {[]int{2}, "c2", 2}} {
		ids := d2.Lookup(want.xm, []relation.Value{relation.String(want.val)})
		if len(ids) != 1 || ids[0] != want.id {
			t.Fatalf("child chain Lookup(%v, %s) = %v, want [%d]", want.xm, want.val, ids, want.id)
		}
	}
	// A sibling delta from the ORIGINAL snapshot (pre-child-Index) must
	// still index its added tuples on every column it knows about.
	sib, err := d0.ApplyDelta([]relation.Tuple{relation.StringTuple("a9", "b9", "c9")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ids := sib.Lookup([]int{2}, []relation.Value{relation.String("c9")}); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("sibling Lookup on col 2 = %v, want [1] (needCols corrupted?)", ids)
	}
	if ids := sib.Lookup([]int{0}, []relation.Value{relation.String("a9")}); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("sibling Lookup on col 0 = %v, want [1]", ids)
	}
}
