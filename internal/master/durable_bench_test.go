package master

// Recovery cost at paper scale: open a durable lineage whose checkpoint
// holds a 100k-tuple master and whose WAL retains a 64-delta tail — the
// cold-start price certainfixd pays after a crash or deploy. The arena
// half rides the mmap loader benchmarked in arena_bench_test.go; the
// delta tail adds one ApplyDelta per retained record.

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/wal"
)

func BenchmarkRecovery(b *testing.B) {
	const n = 100_000
	const tail = 64
	rel, sigma := benchMasterRelation(n)
	dir := b.TempDir()
	dv, err := OpenDurable(dir, func() (*Data, error) { return NewForRules(rel, sigma) }, sigma,
		DurableOptions{Sync: wal.SyncNever, CheckpointEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < tail; i++ {
		add := []relation.Tuple{benchMasterTuple(rng, n+i)}
		if _, err := dv.Apply(add, []int{rng.Intn(n)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := dv.Close(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dv, err := OpenDurable(dir, func() (*Data, error) {
			b.Fatal("recovery fell back to a rebuild")
			return nil, nil
		}, sigma, DurableOptions{Sync: wal.SyncNever, CheckpointEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if dv.Epoch() != tail {
			b.Fatalf("recovered epoch %d", dv.Epoch())
		}
		dv.Close()
	}
}
