//go:build !linux && !darwin

package master

import "os"

// mmapArena always declines on platforms without the syscall mmap shim;
// LoadArena falls back to reading the file into memory.
func mmapArena(f *os.File, size int) ([]byte, bool) {
	return nil, false
}

func munmapArena(b []byte) {}
