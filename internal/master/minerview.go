package master

// Miner-facing accessors over the inverted-postings layer.
//
// Rule discovery (internal/discover) counts dependency support by
// refining tuple partitions column by column, which needs each column as
// a dense per-tuple array of value ids. The postings layer already holds
// exactly that information, inverted: per column, value id → ascending
// tuple-id list, split across the snapshot's hash shards. The two
// accessors here let the miner build missing posting lists at
// construction time (IndexPostings, the posting analogue of Index) and
// read a column back in dense id form (ColumnIDs) without touching the
// relation's Value cells again — value comparison during mining becomes
// uint32 comparison, and the decode is O(n) regardless of shard count.

import "repro/internal/relation"

// IndexPostings builds (or reuses) the inverted posting lists for each
// given Rm column. Like Index, this is construction-time API: it interns
// values and grows the postings registry, so it must not run concurrently
// with lookups or on a snapshot that already has derived children. Lists
// built here are maintained incrementally by ApplyDelta like any other
// registered postings.
func (d *Data) IndexPostings(cols ...int) {
	for _, col := range cols {
		ps, created := d.registerPostings(col)
		if !created {
			continue
		}
		for i, tm := range d.rel.Tuples() {
			vid := d.syms.Intern(tm[col])
			s := d.shardOf(tm)
			ps.shards[s].base[vid] = append(ps.shards[s].base[vid], int32(i))
		}
	}
}

// ColumnIDs decodes column col into a dense per-tuple array of interned
// value ids: out[id] is the value id of tuple id's cell, for every tuple
// id in [0, Len()). Two cells hold equal values iff their ids are equal.
// The decode inverts the column's posting lists (ok=false when the column
// has none — call IndexPostings first); the result is identical for every
// shard count, but id NUMBERING depends on interning order, so callers
// must not treat ids as stable across snapshots — only equality within
// one snapshot is meaningful.
func (d *Data) ColumnIDs(col int) ([]uint32, bool) {
	ps := d.findPostings(col)
	if ps == nil {
		return nil, false
	}
	out := make([]uint32, d.rel.Len())
	for s := range ps.shards {
		ps.shards[s].each(func(vid uint32, ids []int32) {
			for _, id := range ids {
				out[id] = vid
			}
		})
	}
	return out, true
}

// SymbolCount returns the number of distinct interned values; every id
// returned by ColumnIDs is < SymbolCount(). Miners size their id-indexed
// scratch tables with this.
func (d *Data) SymbolCount() int { return d.syms.Len() }

// SymbolValues returns the interned values in id order (vals[id] is the
// value behind id), the reverse mapping of ColumnIDs. Allocates a fresh
// slice per call; meant for construction-time consumers like the repair
// step of the discovery loop, not probe paths.
func (d *Data) SymbolValues() []relation.Value { return d.syms.Export() }
