package master_test

import (
	"testing"

	"repro/internal/master"
	"repro/internal/paperex"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

func sigmaAndData(t *testing.T) (*rule.Set, *master.Data) {
	t.Helper()
	sigma := paperex.Sigma0()
	dm, err := master.NewForRules(paperex.MasterRelation(), sigma)
	if err != nil {
		t.Fatal(err)
	}
	return sigma, dm
}

func ruleByName(sigma *rule.Set, name string) *rule.Rule {
	for _, ru := range sigma.Rules() {
		if ru.Name() == name {
			return ru
		}
	}
	return nil
}

func TestNewForRulesSchemaCheck(t *testing.T) {
	sigma := paperex.Sigma0()
	wrong := relation.NewRelation(relation.StringSchema("Other", "X"))
	if _, err := master.NewForRules(wrong, sigma); err == nil {
		t.Fatal("want schema mismatch error")
	}
}

func TestFirstMatchPaperExamples(t *testing.T) {
	sigma, dm := sigmaAndData(t)
	t1 := paperex.InputT1()

	// (ϕ1, s1) applies to t1: t1[zip] = EH7 4AH = s1[zip] (Example 4).
	phi1 := ruleByName(sigma, "phi1")
	tm, id, ok := dm.FirstMatch(phi1, t1)
	if !ok || id != 0 {
		t.Fatalf("FirstMatch(ϕ1, t1) = id %d ok %v, want s1", id, ok)
	}
	if tm[dm.Schema().MustPos("AC")].Str() != "131" {
		t.Error("matched master tuple should be s1 with AC=131")
	}

	// (ϕ4, s1): t1[phn] = 079172485 = s1[Mphn], type = 2.
	phi4 := ruleByName(sigma, "phi4")
	if _, id, ok := dm.FirstMatch(phi4, t1); !ok || id != 0 {
		t.Fatalf("FirstMatch(ϕ4, t1) = id %d ok %v", id, ok)
	}

	// ϕ6 does not apply to t1 (type = 2, pattern needs 1).
	phi6 := ruleByName(sigma, "phi6")
	if dm.AppliesSomeTuple(phi6, t1) {
		t.Error("ϕ6 must not apply to t1")
	}

	// Nothing applies to t4 (Example 5).
	t4 := paperex.InputT4()
	for _, ru := range sigma.Rules() {
		if dm.AppliesSomeTuple(ru, t4) {
			t.Errorf("rule %s unexpectedly applies to t4", ru.Name())
		}
	}
}

func TestLookupIndexedAndScan(t *testing.T) {
	sigma, dm := sigmaAndData(t)
	rm := dm.Schema()
	zipPos := rm.MustPos("zip")

	// indexed path (zip is an Xm of ϕ1–ϕ3)
	ids := dm.Lookup([]int{zipPos}, []relation.Value{relation.String("EH7 4AH")})
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("Lookup zip: %v", ids)
	}

	// unindexed path falls back to scan: DOB is no rule's Xm
	dobPos := rm.MustPos("DOB")
	ids = dm.Lookup([]int{dobPos}, []relation.Value{relation.String("25/12/67")})
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("Lookup DOB (scan): %v", ids)
	}
	ids = dm.Lookup([]int{dobPos}, []relation.Value{relation.String("nope")})
	if len(ids) != 0 {
		t.Fatalf("Lookup miss: %v", ids)
	}
	_ = sigma
}

func TestMatchIDsScanFallbackAgreesWithIndex(t *testing.T) {
	sigma := paperex.Sigma0()
	rel := paperex.MasterRelation()
	indexed := master.MustNewForRules(rel, sigma)
	bare := master.New(rel) // no indexes: scan path

	for _, ru := range sigma.Rules() {
		for _, tup := range []relation.Tuple{paperex.InputT1(), paperex.InputT2(), paperex.InputT3(), paperex.InputT4()} {
			a := indexed.MatchIDs(ru, tup)
			b := bare.MatchIDs(ru, tup)
			if len(a) != len(b) {
				t.Fatalf("rule %s: indexed %v vs scan %v", ru.Name(), a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("rule %s: indexed %v vs scan %v", ru.Name(), a, b)
				}
			}
		}
	}
}

func TestRHSValuesDistinct(t *testing.T) {
	// Master with two tuples sharing the key but different rhs values.
	rm := relation.StringSchema("Rm", "K", "V")
	r := relation.StringSchema("R", "K", "V")
	rel := relation.NewRelation(rm)
	rel.MustAppend(
		relation.StringTuple("k", "v1"),
		relation.StringTuple("k", "v2"),
		relation.StringTuple("k", "v1"),
	)
	ru := rule.MustNew("r", r, rm, []int{0}, []int{0}, 1, 1, mustEmptyPattern())
	sigma := rule.MustNewSet(r, rm, ru)
	dm := master.MustNewForRules(rel, sigma)

	vals := dm.RHSValues(ru, relation.StringTuple("k", "dirty"))
	if len(vals) != 2 || vals[0].Str() != "v1" || vals[1].Str() != "v2" {
		t.Fatalf("RHSValues = %v", vals)
	}
	if got := dm.RHSValues(ru, relation.StringTuple("absent", "x")); got != nil {
		t.Fatalf("RHSValues miss = %v", got)
	}
}

func TestIndexIdempotent(t *testing.T) {
	_, dm := sigmaAndData(t)
	zip := dm.Schema().MustPos("zip")
	dm.Index([]int{zip})
	dm.Index([]int{zip}) // second call reuses
	ids := dm.Lookup([]int{zip}, []relation.Value{relation.String("NW1 6XE")})
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("Lookup after re-Index: %v", ids)
	}
}

func TestAccessors(t *testing.T) {
	_, dm := sigmaAndData(t)
	if dm.Len() != 2 {
		t.Fatalf("Len = %d", dm.Len())
	}
	if dm.Tuple(1)[0].Str() != "Mark" {
		t.Fatalf("Tuple(1) = %v", dm.Tuple(1))
	}
	if dm.Relation().Len() != 2 {
		t.Fatal("Relation() must expose the wrapped relation")
	}
}

func mustEmptyPattern() pattern.Tuple { return pattern.Empty() }
