package master

// The delta-equivalence property: EVERY intermediate snapshot of a
// randomized delta sequence — adds, deletes, mixed batches, including
// sequences that push posting lists across the |Dm|/2 adaptive-scan
// threshold in both directions — is deep-equal to a from-scratch
// NewForRules on the equivalent materialized relation (checkEquiv), and
// its probes agree with the naive Dm scan. Run the package under -race to
// additionally validate the snapshot-isolation contract via the
// concurrent-probe tests below.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// randomDeltaInstance builds a randomized (Σ, Dm) like the postings
// property tests, but returns the pieces needed to keep generating
// tuples: the schemas and the value pool.
func randomDeltaInstance(rng *rand.Rand) (*Data, *rule.Set, *relation.Schema, []string) {
	nR := 3 + rng.Intn(3)
	nM := 3 + rng.Intn(3)
	rNames := make([]string, nR)
	for i := range rNames {
		rNames[i] = fmt.Sprintf("A%d", i)
	}
	mNames := make([]string, nM)
	for i := range mNames {
		mNames[i] = fmt.Sprintf("M%d", i)
	}
	r := relation.StringSchema("R", rNames...)
	rm := relation.StringSchema("Rm", mNames...)

	// A skewed pool: "a" dominates, so posting lists routinely cover more
	// than half of Dm and deltas move them across the adaptive threshold.
	vals := []string{"a", "a", "a", "b", "c", "d"}
	rel := relation.NewRelation(rm)
	for i, n := 0, 2+rng.Intn(10); i < n; i++ {
		rel.MustAppend(randomMasterTuple(rng, nM, vals))
	}

	sigma := rule.MustNewSet(r, rm)
	for i, n := 0, 1+rng.Intn(5); i < n; i++ {
		xLen := 1 + rng.Intn(2)
		perm := rng.Perm(nR)
		x := perm[:xLen]
		b := perm[xLen]
		xm := make([]int, xLen)
		for j := range xm {
			xm[j] = rng.Intn(nM)
		}
		var pPos []int
		var pCells []pattern.Cell
		for _, p := range rng.Perm(nR)[:rng.Intn(3)] {
			pPos = append(pPos, p)
			cell := pattern.Eq(relation.String(vals[rng.Intn(len(vals))]))
			if rng.Intn(3) == 0 {
				cell = pattern.Neq(cell.Val)
			}
			pCells = append(pCells, cell)
		}
		ru, err := rule.New(fmt.Sprintf("r%d", i), r, rm, x, xm, b, rng.Intn(nM), pattern.MustTuple(pPos, pCells))
		if err != nil {
			continue
		}
		sigma.Add(ru)
	}
	return MustNewForRules(rel, sigma), sigma, rm, vals
}

func randomMasterTuple(rng *rand.Rand, arity int, vals []string) relation.Tuple {
	tup := make(relation.Tuple, arity)
	for j := range tup {
		tup[j] = relation.String(vals[rng.Intn(len(vals))])
	}
	return tup
}

// randomDelta draws a batch of adds and unique deletes against size n.
func randomDelta(rng *rand.Rand, n, arity int, vals []string) (adds []relation.Tuple, deletes []int) {
	nAdd := rng.Intn(4)
	nDel := rng.Intn(4)
	if nAdd == 0 && nDel == 0 {
		nAdd = 1
	}
	if nDel > n {
		nDel = n
	}
	for i := 0; i < nAdd; i++ {
		adds = append(adds, randomMasterTuple(rng, arity, vals))
	}
	deletes = append(deletes, rng.Perm(n)[:nDel]...)
	return adds, deletes
}

// TestDeltaEquivalenceProperty applies 1000 randomized deltas across many
// randomized (Σ, Dm) instances and checks every intermediate snapshot
// against the rebuild oracle plus the naive-scan probe oracle.
func TestDeltaEquivalenceProperty(t *testing.T) {
	const totalIterations = 1000
	const deltasPerInstance = 10
	iter := 0
	for seed := 0; iter < totalIterations; seed++ {
		rng := rand.New(rand.NewSource(int64(21_000_000 + seed)))
		cur, sigma, rm, vals := randomDeltaInstance(rng)
		shadow := append([]relation.Tuple(nil), cur.Relation().Tuples()...)
		probe := make(relation.Tuple, sigma.Schema().Arity())
		for step := 0; step < deltasPerInstance && iter < totalIterations; step++ {
			adds, deletes := randomDelta(rng, cur.Len(), rm.Arity(), vals)
			next, err := cur.ApplyDelta(adds, deletes)
			if err != nil {
				t.Fatalf("seed %d step %d: ApplyDelta: %v", seed, step, err)
			}
			iter++
			ctx := fmt.Sprintf("seed %d step %d", seed, step)

			// The materialized relation follows the contract semantics.
			shadow = shadowApply(shadow, adds, deletes)
			if next.Len() != len(shadow) {
				t.Fatalf("%s: snapshot length %d, shadow %d", ctx, next.Len(), len(shadow))
			}
			for i, tm := range shadow {
				if !next.Tuple(i).Equal(tm) {
					t.Fatalf("%s: tuple %d = %v, shadow %v", ctx, i, next.Tuple(i), tm)
				}
			}

			// Structural deep-equality against the from-scratch rebuild.
			checkEquiv(t, ctx, next, sigma)

			// Probe-level agreement with the naive scan on random tuples,
			// exercising both postings-intersection and adaptive-scan
			// paths as lists drift across the |Dm|/2 threshold.
			for trial := 0; trial < 3; trial++ {
				for i := range probe {
					probe[i] = relation.String(vals[rng.Intn(len(vals))])
				}
				zSet := relation.NewAttrSet(rng.Perm(len(probe))[:rng.Intn(len(probe)+1)]...)
				for _, ru := range sigma.Rules() {
					if got, want := next.CompatibleExists(ru, probe, zSet), next.compatibleScan(ru, probe, zSet); got != want {
						t.Fatalf("%s: rule %s CompatibleExists=%v scan=%v (z=%v)", ctx, ru.Name(), got, want, zSet.Positions())
					}
				}
			}
			cur = next
		}
	}
}

// TestDeltaThresholdCrossing drives one posting list across the |Dm|/2
// adaptive-scan threshold in both directions through deltas alone and
// pins the fallback policy on every side.
func TestDeltaThresholdCrossing(t *testing.T) {
	r := relation.StringSchema("R", "A", "B", "C")
	rm := relation.StringSchema("Rm", "MA", "MB", "MC")
	// lhs (A, B): Z = {A} partially validates, probing A's posting list.
	ru := rule.MustNew("deg", r, rm, []int{0, 1}, []int{0, 1}, 2, 2, pattern.Empty())
	sigma := rule.MustNewSet(r, rm, ru)
	rel := relation.NewRelation(rm)
	for i := 0; i < 4; i++ {
		rel.MustAppend(relation.StringTuple("same", fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i)))
	}
	for i := 0; i < 12; i++ {
		rel.MustAppend(relation.StringTuple(fmt.Sprintf("u%d", i), fmt.Sprintf("ub%d", i), fmt.Sprintf("uc%d", i)))
	}
	cur := MustNewForRules(rel, sigma)

	tup := relation.StringTuple("same", "b1", "x")
	zSet := relation.NewAttrSet(0)
	if _, scanned := cur.compatible(ru, tup, zSet); scanned {
		t.Fatal("4/16 list must use the postings path")
	}

	// Grow "same" to 12/16: now ≥ |Dm|/2, the adaptive policy must scan.
	var adds []relation.Tuple
	for i := 4; i < 12; i++ {
		adds = append(adds, relation.StringTuple("same", fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i)))
	}
	grown, err := cur.ApplyDelta(adds, []int{4, 5, 6, 7, 8, 9, 10, 11})
	if err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, "grown", grown, sigma)
	found, scanned := grown.compatible(ru, tup, zSet)
	if !scanned || !found {
		t.Fatalf("12/16 list: found=%v scanned=%v, want true/true", found, scanned)
	}

	// Shrink back below the threshold through deletes alone: grown holds
	// "same" at ids {0..3, 8..15} (the swap-removes moved u8..u11 into
	// slots 4..7); dropping ten of them leaves 2/6 — selective again.
	shrunk, err := grown.ApplyDelta(nil, []int{0, 1, 2, 3, 8, 9, 10, 11, 12, 13})
	if err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, "shrunk", shrunk, sigma)
	found, scanned = shrunk.compatible(ru, tup, zSet)
	if scanned {
		t.Fatal("shrunken list must return to the postings path")
	}
	if found != shrunk.compatibleScan(ru, tup, zSet) {
		t.Fatal("postings answer disagrees with the scan after shrink")
	}
}

// TestSnapshotIsolationUnderConcurrentProbes hammers pinned snapshots
// from probe goroutines while the main goroutine publishes deltas through
// a Versioned handle. Under -race this validates the isolation contract:
// probes never synchronize with ApplyDelta and never observe torn state;
// the test itself validates pinned answers stay byte-stable across
// publishes.
func TestSnapshotIsolationUnderConcurrentProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(31_000_000))
	cur, sigma, rm, vals := randomDeltaInstance(rng)
	// Ensure a healthy starting size.
	var seedAdds []relation.Tuple
	for i := 0; i < 24; i++ {
		seedAdds = append(seedAdds, randomMasterTuple(rng, rm.Arity(), vals))
	}
	start, err := cur.ApplyDelta(seedAdds, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVersioned(start)

	const probers = 4
	const rounds = 200
	var wg sync.WaitGroup
	errc := make(chan error, probers)
	for w := 0; w < probers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prng := rand.New(rand.NewSource(int64(41_000_000 + w)))
			probe := make(relation.Tuple, sigma.Schema().Arity())
			for r := 0; r < rounds; r++ {
				snap := v.Current() // pin
				for i := range probe {
					probe[i] = relation.String(vals[prng.Intn(len(vals))])
				}
				zSet := relation.NewAttrSet(prng.Perm(len(probe))[:prng.Intn(len(probe)+1)]...)
				for _, ru := range sigma.Rules() {
					// Two reads of everything against the same pinned
					// snapshot must agree even while deltas publish.
					ids1 := append([]int(nil), snap.MatchIDs(ru, probe)...)
					ce1 := snap.CompatibleExists(ru, probe, zSet)
					rv1 := snap.RHSValues(ru, probe)
					ids2 := snap.MatchIDs(ru, probe)
					ce2 := snap.CompatibleExists(ru, probe, zSet)
					rv2 := snap.RHSValues(ru, probe)
					if !eqInts(ids1, ids2) || ce1 != ce2 || len(rv1) != len(rv2) {
						errc <- fmt.Errorf("worker %d round %d rule %s: pinned snapshot answers drifted", w, r, ru.Name())
						return
					}
				}
			}
		}(w)
	}

	for i := 0; i < 60; i++ {
		adds, deletes := randomDelta(rng, v.Current().Len(), rm.Arity(), vals)
		if _, err := v.Apply(adds, deletes); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	checkEquiv(t, "final head", v.Current(), sigma)
}
