package master_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/master"
	"repro/internal/paperex"
	"repro/internal/relation"
)

func newPaperVersioned(t *testing.T) *master.Versioned {
	t.Helper()
	dm, err := master.NewForRules(paperex.MasterRelation(), paperex.Sigma0())
	if err != nil {
		t.Fatal(err)
	}
	return master.NewVersioned(dm)
}

func addTuple(i int) relation.Tuple {
	return relation.StringTuple(
		"FN", "LN", "999", fmt.Sprintf("555%04d", i), "070000000",
		"1 Test St", "Tst", "ZZ1 1ZZ", "01/01/70", "F")
}

// TestVersionedAt: the head and recent epochs are retrievable; epochs
// beyond the retention bound fail with ErrEpochEvicted.
func TestVersionedAt(t *testing.T) {
	v := newPaperVersioned(t)
	base := v.Current()

	if got, err := v.At(base.Epoch()); err != nil || got != base {
		t.Fatalf("At(head) = %v, %v; want the base snapshot", got, err)
	}

	var snaps []*master.Data
	snaps = append(snaps, base)
	for i := 0; i < 3; i++ {
		next, err := v.Apply([]relation.Tuple{addTuple(i)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, next)
	}
	for _, want := range snaps {
		got, err := v.At(want.Epoch())
		if err != nil {
			t.Fatalf("At(%d): %v", want.Epoch(), err)
		}
		if got != want {
			t.Fatalf("At(%d) returned epoch %d", want.Epoch(), got.Epoch())
		}
	}
	if _, err := v.At(999); !errors.Is(err, master.ErrEpochEvicted) {
		t.Fatalf("At(unknown) = %v, want ErrEpochEvicted", err)
	}
}

// TestVersionedEviction: the ring is bounded; old epochs are evicted in
// publication order, and SetHistory shrinks retention immediately.
func TestVersionedEviction(t *testing.T) {
	v := newPaperVersioned(t)
	v.SetHistory(2)
	if v.History() != 2 {
		t.Fatalf("History() = %d", v.History())
	}
	e0 := v.Epoch()
	for i := 0; i < 2; i++ {
		if _, err := v.Apply([]relation.Tuple{addTuple(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Ring holds epochs e0+1, e0+2; e0 is evicted.
	if _, err := v.At(e0); !errors.Is(err, master.ErrEpochEvicted) {
		t.Fatalf("At(evicted e0) = %v, want ErrEpochEvicted", err)
	}
	if _, err := v.At(e0 + 1); err != nil {
		t.Fatalf("At(e0+1): %v", err)
	}
	if _, err := v.At(e0 + 2); err != nil {
		t.Fatalf("At(head): %v", err)
	}

	// Shrinking to 1 keeps only the head, even without a new publish.
	v.SetHistory(1)
	if _, err := v.At(e0 + 1); !errors.Is(err, master.ErrEpochEvicted) {
		t.Fatalf("At after SetHistory(1) = %v, want ErrEpochEvicted", err)
	}
	if _, err := v.At(v.Epoch()); err != nil {
		t.Fatalf("head must always be retained: %v", err)
	}

	// The head survives any clamp, including nonsense bounds.
	v.SetHistory(0)
	if v.History() != 1 {
		t.Fatalf("History after SetHistory(0) = %d, want 1", v.History())
	}
	if _, err := v.At(v.Epoch()); err != nil {
		t.Fatalf("head after clamp: %v", err)
	}
}

// TestVersionedRetainedSnapshotUsable: a historical snapshot keeps
// answering probes with its own view of Dm after later deltas.
func TestVersionedRetainedSnapshotUsable(t *testing.T) {
	v := newPaperVersioned(t)
	old := v.Current()
	oldLen := old.Len()
	if _, err := v.Apply(nil, []int{0}); err != nil { // delete s1 at the head
		t.Fatal(err)
	}
	got, err := v.At(old.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != oldLen {
		t.Fatalf("retained snapshot |Dm| = %d, want %d", got.Len(), oldLen)
	}
	if v.Current().Len() != oldLen-1 {
		t.Fatalf("head |Dm| = %d, want %d", v.Current().Len(), oldLen-1)
	}
}
