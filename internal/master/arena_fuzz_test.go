package master

// FuzzLoadArena throws arbitrary bytes at the arena decoder (ISSUE 6
// satellite): whatever the input, LoadArenaBytes must either fail with an
// error matching ErrBadSnapshot or return a snapshot that is safe to
// probe and derive from — never panic, never index out of range, never
// read past the input. The seed corpus covers the empty input, a valid
// image, a truncated image, and header-level corruptions; the fuzzer
// mutates from there into the table decoders.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// fuzzArenaSigma is the fixed (Σ, Dm) the fuzz inputs are decoded
// against, mirroring FuzzApplyDelta's instance.
func fuzzArenaSigma() (*rule.Set, *Data) {
	r := relation.StringSchema("R", "A", "B", "C")
	rm := relation.StringSchema("Rm", "MA", "MB", "MC")
	ru1 := rule.MustNew("kv", r, rm, []int{0}, []int{0}, 1, 1, pattern.Empty())
	ru2 := rule.MustNew("pair", r, rm, []int{0, 1}, []int{0, 1}, 2, 2,
		pattern.MustTuple([]int{2}, []pattern.Cell{pattern.Neq(relation.String("x"))}))
	sigma := rule.MustNewSet(r, rm, ru1, ru2)
	rel := relation.NewRelation(rm)
	pool := []string{"a", "b", "c", "x"}
	for i := 0; i < 8; i++ {
		rel.MustAppend(relation.StringTuple(pool[i%4], pool[(i/2)%4], pool[(i/3)%4]))
	}
	return sigma, MustNewForRules(rel, sigma, WithShards(2))
}

func FuzzLoadArena(f *testing.F) {
	sigma, d := fuzzArenaSigma()
	var buf bytes.Buffer
	if err := d.SaveArena(&buf, sigma); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:arenaHeaderSize])
	truncHdr := append([]byte(nil), valid[:arenaHeaderSize-1]...)
	f.Add(truncHdr)
	badShards := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badShards[hdrNShards:], MaxShards+7)
	f.Add(badShards)
	badOffset := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(badOffset[hdrSections+8*secColumns:], uint64(len(valid)*2))
	f.Add(badOffset)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		loaded, err := LoadArenaBytes(data, sigma)
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("error %v does not match ErrBadSnapshot", err)
			}
			var se *SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *SnapshotError", err)
			}
			return
		}
		// The image decoded: everything reachable from it must be safe.
		// (A mutated image can still be VALID — e.g. flips confined to
		// padding or unreferenced bucket keys.)
		_ = loaded.MemStats()
		probe := relation.StringTuple("a", "b", "c")
		for _, ru := range sigma.Rules() {
			_ = loaded.MatchIDs(ru, probe)
			_ = loaded.RHSValues(ru, probe)
			_ = loaded.HasMatch(ru, probe)
			_ = loaded.CompatibleExists(ru, probe, relation.NewAttrSet(0))
			_ = loaded.PatternSupported(ru)
		}
		next, derr := loaded.ApplyDelta([]relation.Tuple{relation.StringTuple("q", "r", "s")}, nil)
		if derr != nil {
			t.Fatalf("ApplyDelta on loaded snapshot: %v", derr)
		}
		_ = next.MemStats()
	})
}
