package master

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

func randomCompatInstance(rng *rand.Rand) (*Data, *rule.Set, relation.Tuple, relation.AttrSet) {
	nR := 3 + rng.Intn(4)
	nM := 3 + rng.Intn(4)
	rNames := make([]string, nR)
	for i := range rNames {
		rNames[i] = fmt.Sprintf("A%d", i)
	}
	mNames := make([]string, nM)
	for i := range mNames {
		mNames[i] = fmt.Sprintf("M%d", i)
	}
	r := relation.StringSchema("R", rNames...)
	rm := relation.StringSchema("Rm", mNames...)

	vals := []string{"a", "b", "c"}
	rel := relation.NewRelation(rm)
	for i, n := 0, 1+rng.Intn(8); i < n; i++ {
		tup := make(relation.Tuple, nM)
		for j := range tup {
			tup[j] = relation.String(vals[rng.Intn(len(vals))])
		}
		rel.MustAppend(tup)
	}

	sigma := rule.MustNewSet(r, rm)
	for i, n := 0, 1+rng.Intn(5); i < n; i++ {
		xLen := 1 + rng.Intn(2)
		perm := rng.Perm(nR)
		x := perm[:xLen]
		b := perm[xLen]
		xm := make([]int, xLen)
		for j := range xm {
			xm[j] = rng.Intn(nM)
		}
		var pPos []int
		var pCells []pattern.Cell
		for _, p := range rng.Perm(nR)[:rng.Intn(3)] {
			pPos = append(pPos, p)
			cell := pattern.Eq(relation.String(vals[rng.Intn(len(vals))]))
			if rng.Intn(3) == 0 {
				cell = pattern.Neq(cell.Val)
			}
			pCells = append(pCells, cell)
		}
		ru, err := rule.New(fmt.Sprintf("r%d", i), r, rm, x, xm, b, rng.Intn(nM), pattern.MustTuple(pPos, pCells))
		if err != nil {
			continue
		}
		sigma.Add(ru)
	}

	t := make(relation.Tuple, nR)
	for i := range t {
		if rng.Intn(6) == 0 {
			t[i] = relation.String("zz") // never in the master: exercises the uninterned miss
		} else {
			t[i] = relation.String(vals[rng.Intn(len(vals))])
		}
	}
	zSet := relation.NewAttrSet(rng.Perm(nR)[:rng.Intn(nR+1)]...)
	return MustNewForRules(rel, sigma), sigma, t, zSet
}

// TestCompatibleExistsProperty: on randomized (Σ, Dm, t, Z) the
// postings-based compatibility test agrees with the naive Dm scan for
// every rule, across full, partial and empty validated lhs shapes.
func TestCompatibleExistsProperty(t *testing.T) {
	for seed := 0; seed < 600; seed++ {
		rng := rand.New(rand.NewSource(int64(7_000_000 + seed)))
		d, sigma, tup, zSet := randomCompatInstance(rng)
		for _, ru := range sigma.Rules() {
			got := d.CompatibleExists(ru, tup, zSet)
			want := d.compatibleScan(ru, tup, zSet)
			if got != want {
				t.Fatalf("seed %d rule %s: CompatibleExists=%v, scan=%v (z=%v)",
					seed, ru.Name(), got, want, zSet.Positions())
			}
		}
	}
}

// TestPatternSupportedProperty: the precomputed pattern-support bit agrees
// with the naive per-rule Dm scan.
func TestPatternSupportedProperty(t *testing.T) {
	for seed := 0; seed < 300; seed++ {
		rng := rand.New(rand.NewSource(int64(8_000_000 + seed)))
		d, sigma, _, _ := randomCompatInstance(rng)
		for _, ru := range sigma.Rules() {
			got := d.PatternSupported(ru)
			want := false
			for _, tm := range d.Relation().Tuples() {
				if patternCompatible(ru, tm) {
					want = true
					break
				}
			}
			if got != want {
				t.Fatalf("seed %d rule %s: PatternSupported=%v, scan=%v", seed, ru.Name(), got, want)
			}
		}
	}
}

// TestCompatibleDegeneratePostings forces the degenerate-postings shape —
// every master tuple shares one value in the probed column, so the best
// posting list covers all of Dm — and checks the adaptive policy falls
// back to the scan and still answers correctly.
func TestCompatibleDegeneratePostings(t *testing.T) {
	r := relation.StringSchema("R", "A", "B", "C")
	rm := relation.StringSchema("Rm", "MA", "MB", "MC")
	rel := relation.NewRelation(rm)
	for i := 0; i < 16; i++ {
		rel.MustAppend(relation.Tuple{
			relation.String("same"), // degenerate column: one distinct value
			relation.String(fmt.Sprintf("b%d", i)),
			relation.String(fmt.Sprintf("c%d", i)),
		})
	}
	// lhs (A, B) so Z = {A} partially validates; A's posting list is all of Dm.
	ru := rule.MustNew("deg", r, rm, []int{0, 1}, []int{0, 1}, 2, 2, pattern.Empty())
	sigma := rule.MustNewSet(r, rm, ru)
	d := MustNewForRules(rel, sigma)

	tup := relation.Tuple{relation.String("same"), relation.String("b3"), relation.String("x")}
	zSet := relation.NewAttrSet(0)

	found, scanned := d.compatible(ru, tup, zSet)
	if !scanned {
		t.Fatal("degenerate postings must fall back to the scan")
	}
	if !found || found != d.compatibleScan(ru, tup, zSet) {
		t.Fatalf("fallback answer %v disagrees with the scan", found)
	}

	// A selective probe on B (posting list of length 1) must NOT scan.
	zSet = relation.NewAttrSet(1)
	found, scanned = d.compatible(ru, tup, zSet)
	if scanned {
		t.Fatal("selective postings must not fall back to the scan")
	}
	if !found {
		t.Fatal("selective probe must find the matching master tuple")
	}

	// A miss on a never-interned value short-circuits without scanning.
	tup[1] = relation.String("nope")
	found, scanned = d.compatible(ru, tup, zSet)
	if found || scanned {
		t.Fatalf("uninterned probe: found=%v scanned=%v, want false/false", found, scanned)
	}
}

// TestCompatibleExistsUnplannedRule: a rule the master was not built for
// (the refined ϕ+ shape) takes the scan fallback and stays correct.
func TestCompatibleExistsUnplannedRule(t *testing.T) {
	for seed := 0; seed < 100; seed++ {
		rng := rand.New(rand.NewSource(int64(9_000_000 + seed)))
		d, sigma, tup, zSet := randomCompatInstance(rng)
		for _, ru := range sigma.Rules() {
			plus, err := ru.WithPattern(ru.Pattern().WithCell(0, pattern.Eq(tup[0])))
			if err != nil {
				continue
			}
			got := d.CompatibleExists(plus, tup, zSet)
			want := d.compatibleScan(plus, tup, zSet)
			if got != want {
				t.Fatalf("seed %d rule %s+: got %v, want %v", seed, ru.Name(), got, want)
			}
		}
	}
}
