// Package master wraps a master relation Dm with hash indexes keyed on the
// Xm attribute lists of a rule set. The paper's complexity analysis of
// TransFix (§5.1) assumes "constant time to check whether there exists a
// master tuple that is applicable to t with an eR, by using a hash table
// that stores tm[Xm] as a key" — this package provides exactly that.
//
// Master data is assumed consistent and complete (§2, citing [31]); this
// package treats it as immutable after construction, which also makes all
// lookups safe for concurrent use.
package master

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relation"
	"repro/internal/rule"
)

// Data is an immutable master relation plus lookup indexes.
type Data struct {
	rel     *relation.Relation
	indexes map[string]map[string][]int // posKey(Xm) -> valueKey -> tuple ids
}

// New wraps a master relation. Indexes are added with Index or IndexFor.
func New(rel *relation.Relation) *Data {
	return &Data{rel: rel, indexes: map[string]map[string][]int{}}
}

// NewForRules wraps a master relation and eagerly builds one index per
// distinct Xm list in Σ.
func NewForRules(rel *relation.Relation, sigma *rule.Set) (*Data, error) {
	if !sigma.MasterSchema().Equal(rel.Schema()) {
		return nil, fmt.Errorf("master: relation schema %s does not match Σ's master schema %s",
			rel.Schema().Name(), sigma.MasterSchema().Name())
	}
	d := New(rel)
	for _, ru := range sigma.Rules() {
		d.Index(ru.LHSM())
	}
	return d, nil
}

// MustNewForRules is NewForRules that panics on error.
func MustNewForRules(rel *relation.Relation, sigma *rule.Set) *Data {
	d, err := NewForRules(rel, sigma)
	if err != nil {
		panic(err)
	}
	return d
}

// Relation returns the wrapped master relation.
func (d *Data) Relation() *relation.Relation { return d.rel }

// Schema returns the master schema Rm.
func (d *Data) Schema() *relation.Schema { return d.rel.Schema() }

// Len returns |Dm|.
func (d *Data) Len() int { return d.rel.Len() }

// Tuple returns master tuple i.
func (d *Data) Tuple(i int) relation.Tuple { return d.rel.Tuple(i) }

// Index builds (or reuses) a hash index over the Rm positions xm.
// Not safe to call concurrently with lookups; build indexes up front.
func (d *Data) Index(xm []int) {
	pk := posKey(xm)
	if _, ok := d.indexes[pk]; ok {
		return
	}
	idx := make(map[string][]int, d.rel.Len())
	for i, tm := range d.rel.Tuples() {
		k := tm.Key(xm)
		idx[k] = append(idx[k], i)
	}
	d.indexes[pk] = idx
}

// Lookup returns the ids of master tuples tm with tm[xm] equal to the
// projection values[i] (aligned with xm). It uses a prebuilt index when
// available and falls back to a scan otherwise.
func (d *Data) Lookup(xm []int, values []relation.Value) []int {
	key := relation.Tuple(values).Key(seq(len(values)))
	if idx, ok := d.indexes[posKey(xm)]; ok {
		return idx[key]
	}
	var out []int
	for i, tm := range d.rel.Tuples() {
		if tm.Key(xm) == key {
			out = append(out, i)
		}
	}
	return out
}

// MatchIDs returns the ids of master tuples tm with t[X] = tm[Xm] for the
// rule's (X, Xm) correspondence. It does not test the rule's pattern
// (patterns constrain t, not tm).
func (d *Data) MatchIDs(ru *rule.Rule, t relation.Tuple) []int {
	xm := ru.LHSM()
	key := t.Key(ru.LHS())
	if idx, ok := d.indexes[posKey(xm)]; ok {
		return idx[key]
	}
	x := ru.LHS()
	var out []int
	for i, tm := range d.rel.Tuples() {
		if t.ProjectMatches(x, tm, xm) {
			out = append(out, i)
		}
	}
	return out
}

// FirstMatch returns the first master tuple applicable with ru to t
// (pattern checked), with ok=false if none exists.
func (d *Data) FirstMatch(ru *rule.Rule, t relation.Tuple) (relation.Tuple, int, bool) {
	if !ru.MatchesPattern(t) {
		return nil, -1, false
	}
	ids := d.MatchIDs(ru, t)
	if len(ids) == 0 {
		return nil, -1, false
	}
	return d.rel.Tuple(ids[0]), ids[0], true
}

// AppliesSomeTuple reports whether any (ru, tm) pair applies to t.
func (d *Data) AppliesSomeTuple(ru *rule.Rule, t relation.Tuple) bool {
	_, _, ok := d.FirstMatch(ru, t)
	return ok
}

// RHSValues returns the distinct values tm[Bm] over all master tuples
// applicable with ru to t, in first-seen order. Multiple distinct values
// indicate a same-rule conflict (two master tuples disagree on the fix).
func (d *Data) RHSValues(ru *rule.Rule, t relation.Tuple) []relation.Value {
	if !ru.MatchesPattern(t) {
		return nil
	}
	ids := d.MatchIDs(ru, t)
	var out []relation.Value
	seen := map[relation.Value]bool{}
	for _, id := range ids {
		v := d.rel.Tuple(id)[ru.RHSM()]
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func posKey(ps []int) string {
	var b strings.Builder
	for i, p := range ps {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(p))
	}
	return b.String()
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
