// Package master wraps a master relation Dm with hash indexes keyed on the
// Xm attribute lists of a rule set. The paper's complexity analysis of
// TransFix (§5.1) assumes "constant time to check whether there exists a
// master tuple that is applicable to t with an eR, by using a hash table
// that stores tm[Xm] as a key" — this package provides exactly that.
//
// The indexes are keyed on uint64 FNV-1a hashes of interned values
// (relation.Symbols / relation.Hasher), so the hot probe path — MatchIDs,
// Lookup, RHSValues on an indexed Xm — performs zero heap allocations: one
// hash fold, one map lookup, one bucket walk verifying candidates against
// the stored tuples (hash equality alone does not prove projection
// equality). Per-rule probe plans are resolved once at NewForRules time, so
// a probe does not rebuild position lists or registry keys.
//
// Beyond the full-key indexes, NewForRules builds the inverted-postings
// layer of postings.go: per-column posting lists and per-rule
// pattern-support bitmaps serving the partially-validated-lhs
// compatibility test and the rule-support precomputation of §5 without
// scanning Dm.
//
// The paper assumes master data is consistent, complete and static (§2,
// citing [31]). A production service cannot stop the world to re-run
// NewForRules whenever the master relation gains a correction, so this
// package versions Dm instead of freezing it: a *Data is an immutable,
// epoch-stamped SNAPSHOT, and ApplyDelta derives the next snapshot by
// copy-on-write — indexes, posting lists and pattern-support bitmaps are
// maintained incrementally (shared base layers plus small per-snapshot
// overlays) rather than rebuilt. The Versioned handle publishes the
// current snapshot through an atomic pointer.
//
// Concurrency contract:
//
//   - A snapshot never changes once built. All lookups (MatchIDs, Lookup,
//     RHSValues, CompatibleExists, PatternSupported, ...) on a snapshot
//     are safe from any number of goroutines, concurrently with ApplyDelta
//     deriving new snapshots — readers pin a snapshot and can never
//     observe torn or partially-applied state.
//   - ApplyDelta calls on the same snapshot must be serialized by the
//     caller; Versioned.Apply does this and is the recommended mutation
//     path.
//   - Index (building an extra index in place) is the one construction-
//     time mutation: it must not race lookups and must not be called on a
//     snapshot that already has ApplyDelta-derived children.
//
// Deletion uses swap-remove semantics: deleting tuple i moves the last
// tuple into slot i. This keeps incremental maintenance O(delta) instead
// of O(|Dm|) (no id renumbering cascades); the property tests pin that
// every snapshot is equivalent to NewForRules on the materialized
// relation under exactly these semantics.
package master

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/rule"
)

// index is one hash index over an Xm position list: bucket ids keyed on
// the uint64 projection hash through the copy-on-write layered map (see
// overlay.go). Buckets hold ascending tuple ids, so probe results are
// deterministic.
type index struct {
	xm []int
	layered[uint64, int]
}

// fork derives the next snapshot's view of the index.
func (idx *index) fork() *index {
	return &index{xm: idx.xm, layered: idx.layered.fork()}
}

// Data is one immutable snapshot of the master relation plus its lookup
// indexes, stamped with the epoch it was published at (NewForRules/New
// build epoch 0; each ApplyDelta increments).
type Data struct {
	epoch  uint64
	rel    *relation.Relation
	syms   *relation.Symbols
	hasher relation.Hasher
	// indexes is the dense registry of built indexes, replacing the old
	// string-keyed posKey map; with a handful of distinct Xm lists per Σ a
	// linear scan comparing position slices beats string building.
	indexes []*index
	// plans maps each rule of the Σ the data was built for to its index —
	// the per-rule probe plan, resolved once so MatchIDs is a single hash +
	// bucket walk. Refined rules (ϕ+ of §5.2) are not in the map and fall
	// back to the registry scan, which is still allocation-free.
	plans map[*rule.Rule]*index
	// postings and compat are the inverted-postings layer (see postings.go):
	// per-column value → tuple-id lists and per-rule compatibility plans
	// serving the partial-lhs and pattern-support paths of §5.
	postings []*postings
	compat   map[*rule.Rule]*compatPlan
}

// New wraps a master relation. Indexes are added with Index or NewForRules.
func New(rel *relation.Relation) *Data {
	syms := relation.NewSymbols()
	return &Data{
		rel:    rel,
		syms:   syms,
		hasher: relation.NewHasher(syms),
		plans:  map[*rule.Rule]*index{},
		compat: map[*rule.Rule]*compatPlan{},
	}
}

// NewForRules wraps a master relation, eagerly builds one index per
// distinct Xm list in Σ, one posting list per distinct Xm column, and
// resolves each rule's probe and compatibility plans.
func NewForRules(rel *relation.Relation, sigma *rule.Set) (*Data, error) {
	if !sigma.MasterSchema().Equal(rel.Schema()) {
		return nil, fmt.Errorf("master: relation schema %s does not match Σ's master schema %s",
			rel.Schema().Name(), sigma.MasterSchema().Name())
	}
	d := New(rel)
	for _, ru := range sigma.Rules() {
		d.plans[ru] = d.buildIndex(ru.LHSMRef())
		d.compat[ru] = d.buildCompatPlan(ru)
	}
	return d, nil
}

// MustNewForRules is NewForRules that panics on error.
func MustNewForRules(rel *relation.Relation, sigma *rule.Set) *Data {
	d, err := NewForRules(rel, sigma)
	if err != nil {
		panic(err)
	}
	return d
}

// Relation returns the wrapped master relation.
func (d *Data) Relation() *relation.Relation { return d.rel }

// Schema returns the master schema Rm.
func (d *Data) Schema() *relation.Schema { return d.rel.Schema() }

// Len returns |Dm|.
func (d *Data) Len() int { return d.rel.Len() }

// Epoch returns the snapshot's version stamp: 0 for a freshly built Data,
// parent+1 for each ApplyDelta derivation.
func (d *Data) Epoch() uint64 { return d.epoch }

// Tuple returns master tuple i.
func (d *Data) Tuple(i int) relation.Tuple { return d.rel.Tuple(i) }

// Hasher returns the shared projection hasher (read-only after indexing).
func (d *Data) Hasher() relation.Hasher { return d.hasher }

// Index builds (or reuses) a hash index over the Rm positions xm.
// Not safe to call concurrently with lookups; build indexes up front.
func (d *Data) Index(xm []int) { d.buildIndex(xm) }

// buildIndex returns the index over xm, building and registering it on
// first request. The position list is copied, so callers may pass shared
// slices.
func (d *Data) buildIndex(xm []int) *index {
	if idx := d.findIndex(xm); idx != nil {
		return idx
	}
	idx := &index{
		xm:      append([]int(nil), xm...),
		layered: layered[uint64, int]{base: make(map[uint64][]int, d.rel.Len())},
	}
	for i, tm := range d.rel.Tuples() {
		h := d.hasher.HashInterning(tm, xm)
		idx.base[h] = append(idx.base[h], i)
	}
	d.indexes = append(d.indexes, idx)
	return idx
}

// findIndex locates a registered index by position list; nil when absent.
// Allocation-free.
func (d *Data) findIndex(xm []int) *index {
	for _, idx := range d.indexes {
		if eqPos(idx.xm, xm) {
			return idx
		}
	}
	return nil
}

func eqPos(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// probe walks the bucket for t's projection hash on x, verifying every
// candidate against the stored tuple (collision check). In the common
// all-match case the shared bucket slice is returned without copying; a
// filtered slice is allocated only when a hash collision is actually
// observed.
func (d *Data) probe(idx *index, t relation.Tuple, x []int) []int {
	h, ok := d.hasher.HashTuple(t, x)
	if !ok {
		return nil // some probe value never occurs in the indexed columns
	}
	bucket := idx.get(h)
	for i, id := range bucket {
		if !t.ProjectMatches(x, d.rel.Tuple(id), idx.xm) {
			return filterBucket(bucket, i, func(id int) bool {
				return t.ProjectMatches(x, d.rel.Tuple(id), idx.xm)
			})
		}
	}
	return bucket
}

// filterBucket handles the cold collision path shared by probe and Lookup:
// bucket[:i] is the already-verified prefix, and match re-verifies the
// remainder (skipping the known mismatch at i).
func filterBucket(bucket []int, i int, match func(id int) bool) []int {
	out := append([]int(nil), bucket[:i]...)
	for _, id := range bucket[i+1:] {
		if match(id) {
			out = append(out, id)
		}
	}
	return out
}

// Lookup returns the ids of master tuples tm with tm[xm] equal to the
// projection values[i] (aligned with xm). It uses a prebuilt index when
// available and falls back to a scan otherwise.
func (d *Data) Lookup(xm []int, values []relation.Value) []int {
	if len(values) != len(xm) {
		return nil // arity mismatch can never match (and must not panic)
	}
	if idx := d.findIndex(xm); idx != nil {
		h, ok := d.hasher.HashValues(values)
		if !ok {
			return nil
		}
		bucket := idx.get(h)
		for i, id := range bucket {
			if !valuesMatch(values, d.rel.Tuple(id), idx.xm) {
				return filterBucket(bucket, i, func(id int) bool {
					return valuesMatch(values, d.rel.Tuple(id), idx.xm)
				})
			}
		}
		return bucket
	}
	var out []int
	for i, tm := range d.rel.Tuples() {
		if valuesMatch(values, tm, xm) {
			out = append(out, i)
		}
	}
	return out
}

func valuesMatch(values []relation.Value, tm relation.Tuple, xm []int) bool {
	for i, p := range xm {
		if !values[i].Equal(tm[p]) {
			return false
		}
	}
	return true
}

// MatchIDs returns the ids of master tuples tm with t[X] = tm[Xm] for the
// rule's (X, Xm) correspondence. It does not test the rule's pattern
// (patterns constrain t, not tm). Indexed probes are allocation-free; the
// returned slice may alias internal index state — treat it as read-only.
func (d *Data) MatchIDs(ru *rule.Rule, t relation.Tuple) []int {
	x := ru.LHSRef()
	if idx, ok := d.plans[ru]; ok {
		return d.probe(idx, t, x)
	}
	xm := ru.LHSMRef()
	if idx := d.findIndex(xm); idx != nil {
		return d.probe(idx, t, x)
	}
	var out []int
	for i, tm := range d.rel.Tuples() {
		if t.ProjectMatches(x, tm, xm) {
			out = append(out, i)
		}
	}
	return out
}

// HasMatch reports whether some master tuple matches t on the rule's
// (X, Xm) correspondence. Indexed probes reuse the (allocation-free)
// bucket walk; the unindexed fallback returns at the first matching tuple
// instead of materializing the full id list.
func (d *Data) HasMatch(ru *rule.Rule, t relation.Tuple) bool {
	x := ru.LHSRef()
	if idx, ok := d.plans[ru]; ok {
		return len(d.probe(idx, t, x)) > 0
	}
	xm := ru.LHSMRef()
	if idx := d.findIndex(xm); idx != nil {
		return len(d.probe(idx, t, x)) > 0
	}
	for _, tm := range d.rel.Tuples() {
		if t.ProjectMatches(x, tm, xm) {
			return true
		}
	}
	return false
}

// FirstMatch returns the first master tuple applicable with ru to t
// (pattern checked), with ok=false if none exists.
func (d *Data) FirstMatch(ru *rule.Rule, t relation.Tuple) (relation.Tuple, int, bool) {
	if !ru.MatchesPattern(t) {
		return nil, -1, false
	}
	ids := d.MatchIDs(ru, t)
	if len(ids) == 0 {
		return nil, -1, false
	}
	return d.rel.Tuple(ids[0]), ids[0], true
}

// AppliesSomeTuple reports whether any (ru, tm) pair applies to t.
func (d *Data) AppliesSomeTuple(ru *rule.Rule, t relation.Tuple) bool {
	_, _, ok := d.FirstMatch(ru, t)
	return ok
}

// RHSValues returns the distinct values tm[Bm] over all master tuples
// applicable with ru to t, in first-seen order. Multiple distinct values
// indicate a same-rule conflict (two master tuples disagree on the fix).
// The common no-match and single-match cases skip the dedup machinery
// entirely; multi-match dedup is a linear scan over the (small) result.
func (d *Data) RHSValues(ru *rule.Rule, t relation.Tuple) []relation.Value {
	if !ru.MatchesPattern(t) {
		return nil
	}
	ids := d.MatchIDs(ru, t)
	if len(ids) == 0 {
		return nil
	}
	bm := ru.RHSM()
	if len(ids) == 1 {
		return []relation.Value{d.rel.Tuple(ids[0])[bm]}
	}
	out := make([]relation.Value, 0, 2)
	for _, id := range ids {
		v := d.rel.Tuple(id)[bm]
		dup := false
		for _, w := range out {
			if w.Equal(v) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}
