// Package master wraps a master relation Dm with hash indexes keyed on the
// Xm attribute lists of a rule set. The paper's complexity analysis of
// TransFix (§5.1) assumes "constant time to check whether there exists a
// master tuple that is applicable to t with an eR, by using a hash table
// that stores tm[Xm] as a key" — this package provides exactly that.
//
// The indexes are keyed on uint64 FNV-1a hashes of interned values
// (relation.Symbols / relation.Hasher), so the hot probe path — MatchIDs,
// Lookup, RHSValues on an indexed Xm — performs zero heap allocations: one
// hash fold, one map lookup per shard, one bucket walk verifying
// candidates against the stored tuples (hash equality alone does not
// prove projection equality). Per-rule probe plans are resolved once at
// NewForRules time, so a probe does not rebuild position lists or
// registry keys.
//
// Beyond the full-key indexes, NewForRules builds the inverted-postings
// layer of postings.go: per-column posting lists and per-rule
// pattern-support bitmaps serving the partially-validated-lhs
// compatibility test and the rule-support precomputation of §5 without
// scanning Dm.
//
// To reach multi-million-tuple masters, every per-tuple structure is
// partitioned into P hash shards (see shard.go): tuples route to shards
// by an interning-free hash of their full content, NewForRules fills the
// shards in parallel, ApplyDelta routes maintenance to the owning shard,
// and probes fan out with early exit. Tuple ids stay global, so probe
// results are byte-identical for every P. Configure with WithShards /
// WithBuildWorkers; the default is one shard per CPU.
//
// The paper assumes master data is consistent, complete and static (§2,
// citing [31]). A production service cannot stop the world to re-run
// NewForRules whenever the master relation gains a correction, so this
// package versions Dm instead of freezing it: a *Data is an immutable,
// epoch-stamped SNAPSHOT, and ApplyDelta derives the next snapshot by
// copy-on-write — indexes, posting lists and pattern-support bitmaps are
// maintained incrementally (shared base layers plus small per-snapshot,
// per-shard overlays) rather than rebuilt. The Versioned handle publishes
// the current snapshot through an atomic pointer.
//
// Concurrency contract:
//
//   - A snapshot never changes once built. All lookups (MatchIDs, Lookup,
//     RHSValues, CompatibleExists, PatternSupported, ...) on a snapshot
//     are safe from any number of goroutines, concurrently with ApplyDelta
//     deriving new snapshots — readers pin a snapshot and can never
//     observe torn or partially-applied state.
//   - ApplyDelta calls on the same snapshot must be serialized by the
//     caller; Versioned.Apply does this and is the recommended mutation
//     path.
//   - Index (building an extra index in place) is the one construction-
//     time mutation: it must not race lookups and must not be called on a
//     snapshot that already has ApplyDelta-derived children.
//
// Deletion uses swap-remove semantics: deleting tuple i moves the last
// tuple into slot i. This keeps incremental maintenance O(delta) instead
// of O(|Dm|) (no id renumbering cascades); the property tests pin that
// every snapshot is equivalent to NewForRules on the materialized
// relation under exactly these semantics.
package master

import (
	"fmt"
	"sort"

	"repro/internal/authtree"
	"repro/internal/relation"
	"repro/internal/rule"
)

// index is one hash index over an Xm position list: bucket ids keyed on
// the uint64 projection hash, partitioned into one copy-on-write layered
// map per shard (see overlay.go, shard.go). Buckets hold ascending tuple
// ids, so probe results are deterministic.
type index struct {
	xm     []int
	shards []layered[uint64, int]
}

// fork derives the next snapshot's view of the index: every shard layer
// forks independently, so overlay growth and compaction stay shard-local.
func (idx *index) fork() *index {
	ni := &index{xm: idx.xm, shards: make([]layered[uint64, int], len(idx.shards))}
	for s := range idx.shards {
		ni.shards[s] = idx.shards[s].fork()
	}
	return ni
}

// size returns the total number of ids across all shards (tests, stats).
func (idx *index) size() int {
	n := 0
	for s := range idx.shards {
		n += idx.shards[s].size()
	}
	return n
}

// Data is one immutable snapshot of the master relation plus its lookup
// indexes, stamped with the epoch it was published at (NewForRules/New
// build epoch 0; each ApplyDelta increments).
type Data struct {
	epoch   uint64
	nshards int
	rel     *relation.Relation
	syms    *relation.Symbols
	hasher  relation.Hasher
	// indexes is the dense registry of built indexes; with a handful of
	// distinct Xm lists per Σ a linear scan comparing position slices
	// beats string building.
	indexes []*index
	// plans maps each rule of the Σ the data was built for to its index —
	// the per-rule probe plan, resolved once so MatchIDs is a single hash +
	// bucket walk. Refined rules (ϕ+ of §5.2) are not in the map and fall
	// back to the registry scan, which is still allocation-free.
	plans map[*rule.Rule]*index
	// postings and compat are the inverted-postings layer (see postings.go):
	// per-column value → tuple-id lists and per-rule compatibility plans
	// serving the partial-lhs and pattern-support paths of §5.
	postings []*postings
	compat   map[*rule.Rule]*compatPlan
	// needCols are the Rm positions whose values the registered structures
	// require interned (sorted); ApplyDelta interns added tuples' cells on
	// exactly these columns.
	needCols []int
	// arena pins the backing bytes of an arena-loaded snapshot (nil for
	// heap-built ones). Propagated through ApplyDelta derivations: tuple
	// cells and flat index layers alias the bytes for the snapshot chain's
	// whole lifetime. See arena.go / arena_load.go.
	arena *arenaRef
	// auth is the snapshot's sparse-Merkle commitment over the tuple
	// multiset (nil = unauthenticated, the default). Built by WithAuth /
	// Authenticate and maintained copy-on-write by ApplyDelta; see auth.go.
	auth *authtree.Tree
}

// New wraps a master relation. Indexes are added with Index or NewForRules.
func New(rel *relation.Relation, opts ...BuildOption) *Data {
	cfg := resolveBuildConfig(opts)
	d := newData(rel, cfg.shards)
	if cfg.auth {
		d.auth = authtree.Build(rel)
	}
	return d
}

func newData(rel *relation.Relation, shards int) *Data {
	syms := relation.NewSymbols()
	return &Data{
		nshards: shards,
		rel:     rel,
		syms:    syms,
		hasher:  relation.NewHasher(syms),
		plans:   map[*rule.Rule]*index{},
		compat:  map[*rule.Rule]*compatPlan{},
	}
}

// NewForRules wraps a master relation, eagerly builds one index per
// distinct Xm list in Σ, one posting list per distinct Xm column, and
// resolves each rule's probe and compatibility plans. The structures are
// partitioned into WithShards shards and filled in parallel on
// WithBuildWorkers goroutines (both default to one per CPU). Failures —
// schema mismatch, a tuple violating the schema's declared types — are
// typed: errors.Is(err, ErrMasterBuild), with a *BuildError carrying the
// failing tuple's shard and key context.
func NewForRules(rel *relation.Relation, sigma *rule.Set, opts ...BuildOption) (*Data, error) {
	cfg := resolveBuildConfig(opts)
	if !sigma.MasterSchema().Equal(rel.Schema()) {
		return nil, &BuildError{Shard: -1, TupleID: -1, Err: fmt.Errorf(
			"relation schema %s does not match Σ's master schema %s",
			rel.Schema().Name(), sigma.MasterSchema().Name())}
	}
	d := newData(rel, cfg.shards)
	for _, ru := range sigma.Rules() {
		idx, _ := d.registerIndex(ru.LHSMRef())
		d.plans[ru] = idx
		d.compat[ru] = d.registerCompatPlan(ru)
	}
	if err := d.buildParallel(sigma, cfg.workers); err != nil {
		return nil, err
	}
	if cfg.auth {
		d.auth = authtree.Build(rel)
	}
	return d, nil
}

// MustNewForRules is NewForRules that panics on error.
func MustNewForRules(rel *relation.Relation, sigma *rule.Set, opts ...BuildOption) *Data {
	d, err := NewForRules(rel, sigma, opts...)
	if err != nil {
		panic(err)
	}
	return d
}

// Relation returns the wrapped master relation.
func (d *Data) Relation() *relation.Relation { return d.rel }

// Schema returns the master schema Rm.
func (d *Data) Schema() *relation.Schema { return d.rel.Schema() }

// Len returns |Dm|.
func (d *Data) Len() int { return d.rel.Len() }

// Epoch returns the snapshot's version stamp: 0 for a freshly built Data,
// parent+1 for each ApplyDelta derivation.
func (d *Data) Epoch() uint64 { return d.epoch }

// Tuple returns master tuple i.
func (d *Data) Tuple(i int) relation.Tuple { return d.rel.Tuple(i) }

// Hasher returns the shared projection hasher (read-only after indexing).
func (d *Data) Hasher() relation.Hasher { return d.hasher }

// Index builds (or reuses) a hash index over the Rm positions xm.
// Not safe to call concurrently with lookups; build indexes up front.
func (d *Data) Index(xm []int) { d.buildIndex(xm) }

// buildIndex returns the index over xm, building and registering it on
// first request (the sequential fill path used outside NewForRules). The
// position list is copied, so callers may pass shared slices.
func (d *Data) buildIndex(xm []int) *index {
	idx, created := d.registerIndex(xm)
	if !created {
		return idx
	}
	for i, tm := range d.rel.Tuples() {
		h := d.hasher.HashInterning(tm, xm)
		s := d.shardOf(tm)
		idx.shards[s].base[h] = append(idx.shards[s].base[h], i)
	}
	return idx
}

// findIndex locates a registered index by position list; nil when absent.
// Allocation-free.
func (d *Data) findIndex(xm []int) *index {
	for _, idx := range d.indexes {
		if eqPos(idx.xm, xm) {
			return idx
		}
	}
	return nil
}

func eqPos(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// probe walks the buckets for t's projection hash on x across all shards,
// verifying every candidate against the stored tuple (collision check).
// The common case — every match in one shard, which includes all
// single-match probes — returns that shard's bucket slice without
// copying; a merged slice is allocated only when matches straddle shards
// (duplicate projections in Dm) or a hash collision is actually observed.
func (d *Data) probe(idx *index, t relation.Tuple, x []int) []int {
	h, ok := d.hasher.HashTuple(t, x)
	if !ok {
		return nil // some probe value never occurs in the indexed columns
	}
	if d.nshards == 1 {
		bucket := idx.shards[0].get(h)
		for i, id := range bucket {
			if !t.ProjectMatches(x, d.rel.Tuple(id), idx.xm) {
				return filterBucket(bucket, i, func(id int) bool {
					return t.ProjectMatches(x, d.rel.Tuple(id), idx.xm)
				})
			}
		}
		return bucket
	}
	return fanOutProbe(idx, h, func(id int) bool {
		return t.ProjectMatches(x, d.rel.Tuple(id), idx.xm)
	})
}

// fanOutProbe is the multi-shard probe shared by probe and Lookup: walk
// every shard's bucket for h, verifying candidates with match. The
// common case — all matches in one shard — returns that shard's
// (possibly collision-filtered) bucket without merging; matches
// straddling shards are collected and restored to the global ascending
// order the P=1 layout produces.
func fanOutProbe(idx *index, h uint64, match func(id int) bool) []int {
	var single []int
	hits := 0
	for s := range idx.shards {
		bucket := idx.shards[s].get(h)
		if len(bucket) == 0 {
			continue
		}
		clean := true
		for _, id := range bucket {
			if !match(id) {
				clean = false
				break
			}
		}
		if !clean {
			bucket = filterBucket(bucket, 0, match)
			if len(bucket) == 0 {
				continue
			}
		}
		hits++
		single = bucket
		if hits > 1 {
			break
		}
	}
	if hits <= 1 {
		return single
	}
	var out []int
	for s := range idx.shards {
		for _, id := range idx.shards[s].get(h) {
			if match(id) {
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out
}

// filterBucket handles the cold collision path shared by probe and Lookup:
// bucket[:i] is the already-verified prefix, and match re-verifies the
// remainder (skipping the known mismatch at i).
func filterBucket(bucket []int, i int, match func(id int) bool) []int {
	out := append([]int(nil), bucket[:i]...)
	for _, id := range bucket[i+1:] {
		if match(id) {
			out = append(out, id)
		}
	}
	return out
}

// Lookup returns the ids of master tuples tm with tm[xm] equal to the
// projection values[i] (aligned with xm). It uses a prebuilt index when
// available and falls back to a scan otherwise.
func (d *Data) Lookup(xm []int, values []relation.Value) []int {
	if len(values) != len(xm) {
		return nil // arity mismatch can never match (and must not panic)
	}
	if idx := d.findIndex(xm); idx != nil {
		h, ok := d.hasher.HashValues(values)
		if !ok {
			return nil
		}
		if d.nshards == 1 {
			bucket := idx.shards[0].get(h)
			for i, id := range bucket {
				if !valuesMatch(values, d.rel.Tuple(id), idx.xm) {
					return filterBucket(bucket, i, func(id int) bool {
						return valuesMatch(values, d.rel.Tuple(id), idx.xm)
					})
				}
			}
			return bucket
		}
		return fanOutProbe(idx, h, func(id int) bool {
			return valuesMatch(values, d.rel.Tuple(id), idx.xm)
		})
	}
	var out []int
	for i, tm := range d.rel.Tuples() {
		if valuesMatch(values, tm, xm) {
			out = append(out, i)
		}
	}
	return out
}

func valuesMatch(values []relation.Value, tm relation.Tuple, xm []int) bool {
	for i, p := range xm {
		if !values[i].Equal(tm[p]) {
			return false
		}
	}
	return true
}

// MatchIDs returns the ids of master tuples tm with t[X] = tm[Xm] for the
// rule's (X, Xm) correspondence. It does not test the rule's pattern
// (patterns constrain t, not tm). Indexed probes are allocation-free
// unless the matches straddle shards; the returned slice may alias
// internal index state — treat it as read-only.
func (d *Data) MatchIDs(ru *rule.Rule, t relation.Tuple) []int {
	x := ru.LHSRef()
	if idx, ok := d.plans[ru]; ok {
		return d.probe(idx, t, x)
	}
	xm := ru.LHSMRef()
	if idx := d.findIndex(xm); idx != nil {
		return d.probe(idx, t, x)
	}
	var out []int
	for i, tm := range d.rel.Tuples() {
		if t.ProjectMatches(x, tm, xm) {
			out = append(out, i)
		}
	}
	return out
}

// HasMatch reports whether some master tuple matches t on the rule's
// (X, Xm) correspondence. Indexed probes walk the per-shard buckets with
// early exit (never merging); the unindexed fallback returns at the first
// matching tuple instead of materializing the full id list.
func (d *Data) HasMatch(ru *rule.Rule, t relation.Tuple) bool {
	x := ru.LHSRef()
	idx, ok := d.plans[ru]
	if !ok {
		idx = d.findIndex(ru.LHSMRef())
	}
	if idx != nil {
		h, ok := d.hasher.HashTuple(t, x)
		if !ok {
			return false
		}
		for s := range idx.shards {
			for _, id := range idx.shards[s].get(h) {
				if t.ProjectMatches(x, d.rel.Tuple(id), idx.xm) {
					return true
				}
			}
		}
		return false
	}
	xm := ru.LHSMRef()
	for _, tm := range d.rel.Tuples() {
		if t.ProjectMatches(x, tm, xm) {
			return true
		}
	}
	return false
}

// FirstMatch returns the first master tuple applicable with ru to t
// (pattern checked), with ok=false if none exists.
func (d *Data) FirstMatch(ru *rule.Rule, t relation.Tuple) (relation.Tuple, int, bool) {
	if !ru.MatchesPattern(t) {
		return nil, -1, false
	}
	ids := d.MatchIDs(ru, t)
	if len(ids) == 0 {
		return nil, -1, false
	}
	return d.rel.Tuple(ids[0]), ids[0], true
}

// AppliesSomeTuple reports whether any (ru, tm) pair applies to t.
func (d *Data) AppliesSomeTuple(ru *rule.Rule, t relation.Tuple) bool {
	_, _, ok := d.FirstMatch(ru, t)
	return ok
}

// RHSValues returns the distinct values tm[Bm] over all master tuples
// applicable with ru to t, in first-seen order. Multiple distinct values
// indicate a same-rule conflict (two master tuples disagree on the fix).
// The common no-match and single-match cases skip the dedup machinery
// entirely; multi-match dedup is a linear scan over the (small) result.
func (d *Data) RHSValues(ru *rule.Rule, t relation.Tuple) []relation.Value {
	if !ru.MatchesPattern(t) {
		return nil
	}
	ids := d.MatchIDs(ru, t)
	if len(ids) == 0 {
		return nil
	}
	bm := ru.RHSM()
	if len(ids) == 1 {
		return []relation.Value{d.rel.Tuple(ids[0])[bm]}
	}
	out := make([]relation.Value, 0, 2)
	for _, id := range ids {
		v := d.rel.Tuple(id)[bm]
		dup := false
		for _, w := range out {
			if w.Equal(v) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}
