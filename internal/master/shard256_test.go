package master

import (
	"testing"
)

func TestMaxShardsBuild(t *testing.T) {
	rel, sigma := shardBenchRelation(1000)
	d := MustNewForRules(rel, sigma, WithShards(400), WithBuildWorkers(3)) // clamps to 256
	if d.Shards() != MaxShards {
		t.Fatalf("Shards() = %d, want %d", d.Shards(), MaxShards)
	}
	orc := MustNewForRules(rel, sigma, WithShards(1), WithBuildWorkers(1))
	for i := 0; i < 1000; i += 37 {
		probe := rel.Tuple(i)
		for _, ru := range sigma.Rules() {
			if got, want := d.MatchIDs(ru, probe), orc.MatchIDs(ru, probe); !eqInts(got, want) {
				t.Fatalf("tuple %d rule %s: %v vs %v", i, ru.Name(), got, want)
			}
		}
	}
}
