package master

import (
	"math/rand"
	"testing"

	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// FuzzApplyDelta interprets the fuzz input as a delta program against a
// fixed (Σ, Dm) — each byte encodes one add (value pair drawn from a
// small pool, so posting lists grow skewed) or one delete (id modulo the
// current size), with high bits batching ops into one ApplyDelta call —
// and checks every published snapshot against the from-scratch rebuild
// oracle plus a probe cross-check. The seed corpus covers add-only,
// delete-only, interleaved and churn-heavy programs.
func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})             // adds
	f.Add([]byte{0x80, 0x81, 0x82})                   // deletes
	f.Add([]byte{0x00, 0x80, 0x01, 0x81, 0x02, 0x82}) // interleaved
	f.Add([]byte{0x40, 0xc0, 0x41, 0xc1, 0x42, 0xc2}) // batched mixed
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 64 {
			program = program[:64] // keep the per-input oracle cost bounded
		}
		r := relation.StringSchema("R", "A", "B", "C")
		rm := relation.StringSchema("Rm", "MA", "MB", "MC")
		ru1 := rule.MustNew("kv", r, rm, []int{0}, []int{0}, 1, 1, pattern.Empty())
		ru2 := rule.MustNew("pair", r, rm, []int{0, 1}, []int{0, 1}, 2, 2,
			pattern.MustTuple([]int{2}, []pattern.Cell{pattern.Neq(relation.String("x"))}))
		sigma := rule.MustNewSet(r, rm, ru1, ru2)

		pool := []string{"a", "a", "b", "c"} // skewed: drifts lists across |Dm|/2
		mkTuple := func(b byte) relation.Tuple {
			return relation.StringTuple(pool[int(b)%len(pool)], pool[int(b>>2)%len(pool)], pool[int(b>>4)%len(pool)])
		}

		rel := relation.NewRelation(rm)
		for i := 0; i < 6; i++ {
			rel.MustAppend(mkTuple(byte(i * 37)))
		}
		cur := MustNewForRules(rel, sigma)
		shadow := append([]relation.Tuple(nil), rel.Tuples()...)

		var adds []relation.Tuple
		var deletes []int
		delSeen := map[int]bool{}
		flush := func(step int) {
			if len(adds) == 0 && len(deletes) == 0 {
				return
			}
			next, err := cur.ApplyDelta(adds, deletes)
			if err != nil {
				t.Fatalf("step %d: ApplyDelta(+%d,-%d): %v", step, len(adds), len(deletes), err)
			}
			shadow = shadowApply(shadow, adds, deletes)
			if next.Len() != len(shadow) {
				t.Fatalf("step %d: snapshot length %d, shadow %d", step, next.Len(), len(shadow))
			}
			for i, tm := range shadow {
				if !next.Tuple(i).Equal(tm) {
					t.Fatalf("step %d: tuple %d = %v, shadow %v", step, i, next.Tuple(i), tm)
				}
			}
			checkEquiv(t, "fuzz step", next, sigma)
			cur = next
			adds, deletes = nil, nil
			delSeen = map[int]bool{}
		}

		for step, op := range program {
			if op&0x80 == 0 {
				adds = append(adds, mkTuple(op))
			} else if n := cur.Len() - len(deletes); n > 0 {
				id := int(op&0x3f) % cur.Len()
				if !delSeen[id] && id < cur.Len() {
					delSeen[id] = true
					deletes = append(deletes, id)
				}
			}
			if op&0x40 == 0 { // low bit 6 clear: publish the batch now
				flush(step)
			}
		}
		flush(len(program))

		// Probe cross-check on the final snapshot: postings path vs scan.
		rng := rand.New(rand.NewSource(int64(len(program))))
		probe := make(relation.Tuple, 3)
		for trial := 0; trial < 8; trial++ {
			for i := range probe {
				probe[i] = relation.String(pool[rng.Intn(len(pool))])
			}
			zSet := relation.NewAttrSet(rng.Perm(3)[:rng.Intn(4)]...)
			for _, ru := range sigma.Rules() {
				if got, want := cur.CompatibleExists(ru, probe, zSet), cur.compatibleScan(ru, probe, zSet); got != want {
					t.Fatalf("rule %s: CompatibleExists=%v scan=%v (z=%v)", ru.Name(), got, want, zSet.Positions())
				}
			}
		}
	})
}
