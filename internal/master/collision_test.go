package master

// Internal tests for the uint64-keyed probe path: bucket verification
// against stored tuples, probe-plan resolution, and the zero-allocation
// guarantee. These live inside the package so they can force hash
// collisions that FNV-1a will essentially never produce naturally.

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

func kvData(t *testing.T) (*rule.Set, *rule.Rule, *Data) {
	t.Helper()
	r := relation.StringSchema("R", "K", "V", "W")
	rm := relation.StringSchema("Rm", "K", "V", "W")
	ru := rule.MustNew("kv", r, rm, []int{0}, []int{0}, 1, 1, pattern.Empty())
	// kv2 keys on (K, V): its index interns both columns, enabling miss
	// probes whose values are interned but whose combination is absent.
	ru2 := rule.MustNew("kv2", r, rm, []int{0, 1}, []int{0, 1}, 2, 2, pattern.Empty())
	sigma := rule.MustNewSet(r, rm, ru, ru2)
	rel := relation.NewRelation(rm)
	rel.MustAppend(
		relation.StringTuple("k1", "v1", "w1"),
		relation.StringTuple("k2", "v2", "w2"),
		relation.StringTuple("k1", "v1b", "w3"),
	)
	// One shard: these tests inject collisions into raw buckets, which
	// needs a deterministic bucket location. The multi-shard collision
	// path is covered by the shard property tests.
	dm, err := NewForRules(rel, sigma, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	return sigma, ru, dm
}

// TestBucketVerificationFiltersCollisions injects a foreign tuple id into
// the bucket a probe hits — simulating a uint64 hash collision — and
// checks every probe entry point filters it out by verifying the stored
// tuple's projection.
func TestBucketVerificationFiltersCollisions(t *testing.T) {
	_, ru, dm := kvData(t)
	probe := relation.StringTuple("k1", "dirty")

	idx := dm.plans[ru]
	if idx == nil {
		t.Fatal("probe plan must be resolved at NewForRules time")
	}
	h, ok := dm.hasher.HashTuple(probe, ru.LHSRef())
	if !ok {
		t.Fatal("probe must hash")
	}
	// id 1 is the k2 tuple: same bucket now, different projection.
	idx.shards[0].base[h] = append(idx.shards[0].base[h], 1)

	ids := dm.MatchIDs(ru, probe)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("MatchIDs after injected collision = %v, want [0 2]", ids)
	}
	vals := dm.RHSValues(ru, probe)
	if len(vals) != 2 || vals[0].Str() != "v1" || vals[1].Str() != "v1b" {
		t.Fatalf("RHSValues after injected collision = %v", vals)
	}
	lids := dm.Lookup([]int{0}, []relation.Value{relation.String("k1")})
	if len(lids) != 2 || lids[0] != 0 || lids[1] != 2 {
		t.Fatalf("Lookup after injected collision = %v, want [0 2]", lids)
	}

	// A collision at the head of the bucket exercises the filtered path
	// from position 0.
	idx.shards[0].base[h] = append([]int{1}, idx.shards[0].base[h]...)
	ids = dm.MatchIDs(ru, probe)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("MatchIDs with head collision = %v, want [0 2]", ids)
	}
}

// TestRefinedRuleFallsBackToRegistry checks that a refined rule ϕ+ (a new
// *Rule pointer, absent from the probe-plan map) still probes the index via
// the position-list registry rather than scanning.
func TestRefinedRuleFallsBackToRegistry(t *testing.T) {
	_, ru, dm := kvData(t)
	plus, err := ru.WithPattern(pattern.MustTuple([]int{0}, []pattern.Cell{pattern.Neq(relation.Null)}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dm.plans[plus]; ok {
		t.Fatal("refined rule must not be in the plan map")
	}
	if dm.findIndex(plus.LHSMRef()) == nil {
		t.Fatal("registry must resolve the refined rule's Xm")
	}
	ids := dm.MatchIDs(plus, relation.StringTuple("k1", ""))
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("refined-rule MatchIDs = %v, want [0 2]", ids)
	}
}

// TestProbeZeroAlloc pins the tentpole guarantee: an indexed MatchIDs probe
// performs zero heap allocations — hit, uninterned miss (symbol-table
// early exit), and interned-combination miss (full hash + empty bucket).
func TestProbeZeroAlloc(t *testing.T) {
	sigma, ru, dm := kvData(t)
	ru2 := sigma.Rule(1)
	hit := relation.StringTuple("k1", "dirty", "x")
	missUninterned := relation.StringTuple("nope", "dirty", "x")
	// k1 and v2 are both interned, but no master tuple pairs them.
	missInterned := relation.StringTuple("k1", "v2", "x")
	if len(dm.MatchIDs(ru2, missInterned)) != 0 {
		t.Fatal("fixture broken: (k1, v2) must miss")
	}

	allocs := testing.AllocsPerRun(1000, func() {
		if ids := dm.MatchIDs(ru, hit); len(ids) != 2 {
			t.Fatal("hit must match twice")
		}
		if ids := dm.MatchIDs(ru, missUninterned); len(ids) != 0 {
			t.Fatal("uninterned miss must not match")
		}
		if ids := dm.MatchIDs(ru2, missInterned); len(ids) != 0 {
			t.Fatal("interned miss must not match")
		}
	})
	if allocs != 0 {
		t.Fatalf("indexed MatchIDs allocates %.1f objects per probe; want 0", allocs)
	}
}

// TestRHSValuesSingleMatchFastPath covers the satellite optimization: no
// dedup machinery for the 0- and 1-match cases.
func TestRHSValuesSingleMatchFastPath(t *testing.T) {
	_, ru, dm := kvData(t)
	if vals := dm.RHSValues(ru, relation.StringTuple("k2", "x")); len(vals) != 1 || vals[0].Str() != "v2" {
		t.Fatalf("single-match RHSValues = %v", vals)
	}
	if vals := dm.RHSValues(ru, relation.StringTuple("absent", "x")); vals != nil {
		t.Fatalf("no-match RHSValues = %v, want nil", vals)
	}
}
