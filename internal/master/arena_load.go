package master

// This file implements the load side of the columnar arena (arena.go):
// LoadArena maps the file (or falls back to reading it) and assembles a
// fully usable Data snapshot whose index buckets, posting lists and
// pattern bitmaps are views into the raw bytes — no per-tuple hashing, no
// map construction proportional to |Dm|. The only O(|Dm|) work is a
// streaming validation pass plus materializing the tuple headers; string
// payloads stay in the arena (tuple cells alias the mapping zero-copy).
//
// Validation is EAGER: every offset, count, table invariant and id range
// is checked here, so the probe hot path runs with no bounds checks and a
// snapshot that loads without error can never cause an out-of-range
// access later. Hostile input fails with a *SnapshotError (matching
// ErrBadSnapshot) before any allocation larger than the input itself —
// section byte counts are claimed from the file before dependent slices
// are sized, so a small corrupt file cannot demand a huge allocation.
//
// The mapping stays alive for as long as any snapshot derived from it:
// loaded values alias the arena bytes, so the mapping is never unmapped
// (it is dropped only with the process; a service loads one arena per
// master generation, so this is by design, not a leak).

import (
	"fmt"
	"math/bits"
	"os"
	"unsafe"

	"repro/internal/authtree"
	"repro/internal/relation"
	"repro/internal/rule"
)

// arenaRef pins the backing bytes of a loaded snapshot and records how
// they were obtained (for MemStats; the bytes themselves are reachable
// through the index views regardless).
type arenaRef struct {
	data   []byte
	mapped bool
}

// maxArenaTuples bounds |Dm| in a snapshot: posting ids are int32 and
// pattern bitmaps index by int, so ids must fit int32.
const maxArenaTuples = 1<<31 - 1

// areader is a sticky-error cursor over the arena bytes: the first
// failure is recorded with its section and offset, and every later read
// returns zero values, so decode paths need no per-read error plumbing.
type areader struct {
	b   []byte
	off int
	sec string
	err error
}

func (r *areader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = &SnapshotError{Section: r.sec, Offset: r.off, Msg: fmt.Sprintf(format, args...)}
	}
}

// take claims the next n bytes, failing (once) on truncation.
func (r *areader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail("truncated: need %d bytes, %d remain", n, len(r.b)-r.off)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *areader) u8() uint8 {
	if p := r.take(1); p != nil {
		return p[0]
	}
	return 0
}

func (r *areader) u32() uint32 {
	if p := r.take(4); p != nil {
		return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
	}
	return 0
}

func (r *areader) u64() uint64 {
	if p := r.take(8); p != nil {
		return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
			uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
	}
	return 0
}

func (r *areader) align8() { r.take((8 - r.off%8) % 8) }

// count converts a stored u64 count to int under a limit, failing on
// overflow or excess — the guard every allocation and slice bound passes
// through.
func (r *areader) count(v uint64, limit int, what string) int {
	if r.err != nil {
		return 0
	}
	if v > uint64(limit) {
		r.fail("%s %d exceeds limit %d", what, v, limit)
		return 0
	}
	return int(v)
}

// LoadArena loads a snapshot saved with SaveArena, mapping the file into
// memory where the platform supports it and reading it otherwise. sigma
// must be equivalent to the Σ the snapshot was saved for (same master
// schema, same rules in the same order); the loaded snapshot's probe
// plans are bound to sigma's rule pointers. Failures match ErrBadSnapshot
// via errors.Is, with a *SnapshotError locating the corruption.
func LoadArena(path string, sigma *rule.Set) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("master: load arena: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("master: load arena: %w", err)
	}
	size := fi.Size()
	if size > int64(int(^uint(0)>>1)) {
		return nil, &SnapshotError{Section: "header", Offset: -1, Msg: "file too large for address space"}
	}
	b, mapped := mmapArena(f, int(size))
	if b == nil {
		if b, err = os.ReadFile(path); err != nil {
			return nil, fmt.Errorf("master: load arena: %w", err)
		}
	}
	d, err := loadArena(b, sigma, mapped)
	if err != nil && mapped {
		munmapArena(b)
	}
	return d, err
}

// LoadArenaBytes loads a snapshot from an in-memory image (the
// io.ReaderAt/byte-slice portability path, and the fuzz target). The
// loaded snapshot retains b; callers must not mutate it afterwards.
func LoadArenaBytes(b []byte, sigma *rule.Set) (*Data, error) {
	return loadArena(b, sigma, false)
}

func loadArena(b []byte, sigma *rule.Set, mapped bool) (*Data, error) {
	// The flat tables are viewed in place as []uint64/[]uint32, so the
	// backing bytes must be 8-aligned. mmap is page-aligned; a caller
	// slice might not be — realign with one copy.
	if len(b) > 0 && uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		aligned := make([]uint64, (len(b)+7)/8)
		dst := unsafe.Slice((*byte)(unsafe.Pointer(&aligned[0])), len(b))
		copy(dst, b)
		b, mapped = dst, false
	}

	hr := &areader{b: b, sec: "header"}
	if len(b) < arenaHeaderSizeV1 {
		hr.fail("truncated: %d bytes, header needs %d", len(b), arenaHeaderSizeV1)
		return nil, hr.err
	}
	if string(b[hdrMagic:hdrMagic+8]) != arenaMagic {
		hr.off = hdrMagic
		hr.fail("bad magic %q", b[hdrMagic:hdrMagic+8])
		return nil, hr.err
	}
	// Version gates the header shape: v1 images (112-byte header, 6
	// sections, no auth) still load — as explicitly unauthenticated.
	hr.off = hdrVersion
	version := hr.u32()
	if version != arenaVersion && version != arenaVersionV1 {
		hr.off = hdrVersion
		hr.fail("unsupported version %d (want %d or %d)", version, arenaVersionV1, arenaVersion)
		return nil, hr.err
	}
	headerSize, nsec := arenaHeaderSize, numSections
	if version == arenaVersionV1 {
		headerSize, nsec = arenaHeaderSizeV1, numSectionsV1
	}
	if len(b) < headerSize {
		hr.fail("truncated: %d bytes, version-%d header needs %d", len(b), version, headerSize)
		return nil, hr.err
	}
	// Read the endian marker in HOST order: a mismatch means either a
	// corrupt file or a big-endian host, and the in-place views are wrong
	// in both cases.
	if *(*uint32)(unsafe.Pointer(&b[hdrEndian])) != arenaEndianMark {
		hr.off = hdrEndian
		hr.fail("endian marker mismatch (corrupt file or big-endian host)")
		return nil, hr.err
	}
	hr.off = hdrEpoch
	epoch := hr.u64()
	n := hr.count(hr.u64(), maxArenaTuples, "tuple count")
	nshards := hr.count(uint64(hr.u32()), MaxShards, "shard count")
	arity := hr.count(uint64(hr.u32()), 1<<16, "arity")
	nsyms := hr.count(uint64(hr.u32()), len(b)/16, "symbol count")
	nindexes := hr.count(uint64(hr.u32()), 1<<12, "index count")
	nposts := hr.count(uint64(hr.u32()), 1<<16, "posting count")
	nrules := hr.count(uint64(hr.u32()), 1<<20, "rule count")
	if hr.err == nil && nshards < 1 {
		hr.fail("shard count 0")
	}
	if hr.err == nil && arity < 1 {
		hr.fail("arity 0")
	}
	hr.off = hdrFileSize
	if sz := hr.u64(); hr.err == nil && sz != uint64(len(b)) {
		hr.off = hdrFileSize
		hr.fail("header file size %d does not match actual size %d", sz, len(b))
	}
	var secOff [numSections]int
	for i := 0; i < nsec; i++ {
		secOff[i] = hr.count(hr.u64(), len(b), "section offset")
	}
	prev := headerSize
	for i := 0; i < nsec && hr.err == nil; i++ {
		if secOff[i] < prev || secOff[i]%8 != 0 {
			hr.off = hdrSections + 8*i
			hr.fail("section %s offset %d out of order or misaligned", sectionName[i], secOff[i])
		}
		prev = secOff[i]
	}
	if hr.err != nil {
		return nil, hr.err
	}
	if err := checkArenaSchema(b, secOff[secSchema], arity, sigma.MasterSchema()); err != nil {
		return nil, err
	}

	vals, err := decodeArenaSymbols(b, secOff[secSymbols], nsyms)
	if err != nil {
		return nil, err
	}
	syms, symErr := relation.SymbolsFromValues(vals[:nsyms])
	if symErr != nil {
		return nil, &SnapshotError{Section: "symbols", Offset: -1, Msg: symErr.Error()}
	}

	rel, err := decodeArenaColumns(b, secOff[secColumns], n, arity, vals, sigma.MasterSchema())
	if err != nil {
		return nil, err
	}

	d := &Data{
		epoch:   epoch,
		nshards: nshards,
		rel:     rel,
		syms:    syms,
		hasher:  relation.NewHasher(syms),
		plans:   make(map[*rule.Rule]*index, nrules),
		compat:  make(map[*rule.Rule]*compatPlan, nrules),
		arena:   &arenaRef{data: b, mapped: mapped},
	}

	ir := &areader{b: b, off: secOff[secIndexes], sec: "indexes"}
	for i := 0; i < nindexes; i++ {
		idx, err := decodeArenaIndex(ir, nshards, arity, n)
		if err != nil {
			return nil, err
		}
		d.indexes = append(d.indexes, idx)
		for _, p := range idx.xm {
			d.addNeedCol(p)
		}
	}

	pr := &areader{b: b, off: secOff[secPostings], sec: "postings"}
	for i := 0; i < nposts; i++ {
		ps, err := decodeArenaPostings(pr, nshards, arity, n)
		if err != nil {
			return nil, err
		}
		d.postings = append(d.postings, ps)
		d.addNeedCol(ps.col)
	}

	if nrules != sigma.Len() {
		return nil, &SnapshotError{Section: "rules", Offset: -1,
			Msg: fmt.Sprintf("snapshot has %d rules, Σ has %d", nrules, sigma.Len())}
	}
	rr := &areader{b: b, off: secOff[secRules], sec: "rules"}
	for i := 0; i < nrules; i++ {
		ru := sigma.Rule(i)
		cp, err := decodeArenaRule(rr, ru, n)
		if err != nil {
			return nil, err
		}
		xm := ru.LHSMRef()
		idx := d.findIndex(xm)
		if idx == nil {
			return nil, &SnapshotError{Section: "rules", Offset: -1,
				Msg: fmt.Sprintf("rule %s: no index over its Xm in snapshot", ru.Name())}
		}
		for j, col := range xm {
			cp.posts[j] = d.findPostings(col)
			if cp.posts[j] == nil {
				return nil, &SnapshotError{Section: "rules", Offset: -1,
					Msg: fmt.Sprintf("rule %s: no posting list over column %d in snapshot", ru.Name(), col)}
			}
		}
		d.plans[ru] = idx
		d.compat[ru] = cp
	}

	// Auth (version 2 only): when the flag is set, rebuild the Merkle
	// commitment from the decoded relation and verify it against the
	// stored root — a recompute-and-verify, so a tampered image cannot
	// smuggle in either a wrong root or wrong tuples under a right one.
	// Version-1 images, and flag-0 images, load unauthenticated.
	if version == arenaVersion {
		ar := &areader{b: b, off: secOff[secAuth], sec: "auth"}
		flag := ar.u32()
		ar.u32() // padding
		stored := ar.take(32)
		if ar.err != nil {
			return nil, ar.err
		}
		switch flag {
		case 0:
		case 1:
			tree := authtree.Build(rel)
			if root := tree.Root(); string(root[:]) != string(stored) {
				return nil, &SnapshotError{Section: "auth", Offset: secOff[secAuth],
					Msg: fmt.Sprintf("stored root %x does not match recomputed root %s", stored, root)}
			}
			d.auth = tree
		default:
			return nil, &SnapshotError{Section: "auth", Offset: secOff[secAuth],
				Msg: fmt.Sprintf("invalid auth flag %d", flag)}
		}
	}
	return d, nil
}

// findPostings locates the posting list over col; nil when absent.
func (d *Data) findPostings(col int) *postings {
	for _, ps := range d.postings {
		if ps.col == col {
			return ps
		}
	}
	return nil
}

// checkArenaSchema decodes the schema section and compares it with Σ's
// master schema (name, attribute names and types, in order).
func checkArenaSchema(b []byte, off, arity int, want *relation.Schema) error {
	r := &areader{b: b, off: off, sec: "schema"}
	nameLen := r.count(uint64(r.u32()), len(b), "schema name length")
	name := string(r.take(nameLen))
	if r.err == nil && (name != want.Name() || arity != want.Arity()) {
		r.fail("snapshot schema %s/%d does not match Σ's master schema %s/%d",
			name, arity, want.Name(), want.Arity())
	}
	for i := 0; i < arity && r.err == nil; i++ {
		attrLen := r.count(uint64(r.u32()), len(b), "attribute name length")
		attrName := string(r.take(attrLen))
		typ := relation.Type(r.u8())
		if r.err != nil {
			break
		}
		if a := want.Attr(i); attrName != a.Name || typ != a.Type {
			r.fail("attribute %d is %s/%v, Σ's master schema has %s/%v", i, attrName, typ, a.Name, a.Type)
		}
	}
	return r.err
}

// decodeArenaSymbols decodes the value records and string heap into the
// id-ordered value slice; string payloads alias the arena bytes.
func decodeArenaSymbols(b []byte, off, nsyms int) ([]relation.Value, error) {
	r := &areader{b: b, off: off, sec: "symbols"}
	nvals := r.count(uint64(r.u32()), len(b)/16, "value count")
	if r.err == nil && nvals < nsyms {
		r.fail("value count %d smaller than interned symbol count %d", nvals, nsyms)
	}
	r.align8()
	records := r.take(16 * nvals)
	heapLen := r.count(r.u64(), len(b), "string heap length")
	heap := r.take(heapLen)
	if r.err != nil {
		return nil, r.err
	}
	vals := make([]relation.Value, nvals)
	for i := range vals {
		rec := records[16*i : 16*i+16]
		kind := relation.Kind(rec[0])
		strLen := uint32(rec[4]) | uint32(rec[5])<<8 | uint32(rec[6])<<16 | uint32(rec[7])<<24
		payload := uint64(rec[8]) | uint64(rec[9])<<8 | uint64(rec[10])<<16 | uint64(rec[11])<<24 |
			uint64(rec[12])<<32 | uint64(rec[13])<<40 | uint64(rec[14])<<48 | uint64(rec[15])<<56
		switch kind {
		case relation.KindNull:
			if strLen != 0 || payload != 0 {
				r.off = off
				r.fail("value %d: null with non-zero payload", i)
				return nil, r.err
			}
		case relation.KindInt:
			if strLen != 0 {
				r.off = off
				r.fail("value %d: int with string length", i)
				return nil, r.err
			}
			vals[i] = relation.Int(int64(payload))
		case relation.KindString:
			end := payload + uint64(strLen)
			if end > uint64(heapLen) {
				r.off = off
				r.fail("value %d: string span [%d,%d) outside heap of %d bytes", i, payload, end, heapLen)
				return nil, r.err
			}
			vals[i] = relation.String(viewString(heap[payload:end]))
		default:
			r.off = off
			r.fail("value %d: unknown kind %d", i, kind)
			return nil, r.err
		}
	}
	return vals, nil
}

// decodeArenaColumns materializes the tuple headers from the column-major
// id vectors: one flat backing array of n×arity cells, each tuple a
// sub-slice — two allocations total, values shared with the symbol slice.
func decodeArenaColumns(b []byte, off, n, arity int, vals []relation.Value, schema *relation.Schema) (*relation.Relation, error) {
	r := &areader{b: b, off: off, sec: "columns"}
	if n > 0 && arity > (len(b)/4)/n {
		r.fail("column section for %d×%d cells exceeds file size", n, arity)
		return nil, r.err
	}
	raw := r.take(4 * n * arity)
	if r.err != nil {
		return nil, r.err
	}
	cells := viewU32(raw)
	backing := make([]relation.Value, n*arity)
	for c := 0; c < arity; c++ {
		col := cells[c*n : (c+1)*n]
		for i, id := range col {
			if int(id) >= len(vals) {
				r.off = off + 4*(c*n+i)
				r.fail("cell (%d,%d): value id %d out of range %d", i, c, id, len(vals))
				return nil, r.err
			}
			backing[i*arity+c] = vals[id]
		}
	}
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple(backing[i*arity : (i+1)*arity : (i+1)*arity])
	}
	rel, err := relation.FromTuples(schema, tuples)
	if err != nil {
		return nil, &SnapshotError{Section: "columns", Offset: -1, Msg: err.Error()}
	}
	return rel, nil
}

// decodeArenaIndex decodes one index: Xm list, then a frozen bucket table
// per shard, fully validated (power-of-two slots with an empty slot for
// probe termination, spans inside the id array, ids in range and
// ascending per bucket).
func decodeArenaIndex(r *areader, nshards, arity, n int) (*index, error) {
	nxm := r.count(uint64(r.u32()), arity, "index Xm length")
	if r.err == nil && nxm < 1 {
		r.fail("index with empty Xm")
	}
	xm := make([]int, nxm)
	for i := range xm {
		xm[i] = r.count(uint64(r.u32()), arity-1, "index Xm position")
	}
	r.align8()
	idx := &index{xm: xm, shards: make([]layered[uint64, int], nshards)}
	for s := 0; s < nshards; s++ {
		start := r.off
		nslots := r.count(r.u64(), len(r.b)/16, "bucket slot count")
		nkeys := r.count(r.u64(), len(r.b)/16, "bucket key count")
		nids := r.count(r.u64(), len(r.b)/8, "bucket id count")
		if r.err == nil && (nslots < 2 || nslots&(nslots-1) != 0) {
			r.off = start
			r.fail("slot count %d not a power of two ≥ 2", nslots)
		}
		if r.err == nil && nkeys >= nslots {
			r.off = start
			r.fail("key count %d leaves no empty slot in %d", nkeys, nslots)
		}
		slots := viewU64(r.take(16 * nslots))
		idsRaw := r.take(8 * nids)
		if r.err != nil {
			return nil, r.err
		}
		occupied, span := 0, 0
		for slot := 0; slot < nslots; slot++ {
			packed := slots[2*slot+1]
			if packed == 0 {
				continue
			}
			occupied++
			off, cnt := int(packed>>32), int(packed&0xffffffff)
			if cnt < 1 || off < 0 || off > nids-cnt {
				r.off = start
				r.fail("bucket span [%d,%d) outside %d ids", off, off+cnt, nids)
				return nil, r.err
			}
			span += cnt
		}
		if occupied != nkeys || span != nids {
			r.off = start
			r.fail("table holds %d keys/%d ids, header says %d/%d", occupied, span, nkeys, nids)
			return nil, r.err
		}
		ids := viewInt(idsRaw)
		for slot := 0; slot < nslots; slot++ {
			packed := slots[2*slot+1]
			if packed == 0 {
				continue
			}
			off, cnt := int(packed>>32), int(packed&0xffffffff)
			prev := -1
			for _, id := range ids[off : off+cnt] {
				if id < 0 || id >= n || id <= prev {
					r.off = start
					r.fail("bucket id %d out of range %d or not ascending", id, n)
					return nil, r.err
				}
				prev = id
			}
		}
		idx.shards[s].flat = &arenaBuckets{
			slots: slots,
			mask:  uint64(nslots - 1),
			ids:   ids,
			nkeys: nkeys,
		}
	}
	return idx, nil
}

// decodeArenaPostings decodes one posting list: column, then per-shard
// tables (the uint32 twin of decodeArenaIndex).
func decodeArenaPostings(r *areader, nshards, arity, n int) (*postings, error) {
	col := r.count(uint64(r.u32()), arity-1, "posting column")
	r.u32() // padding
	ps := &postings{col: col, shards: make([]layered[uint32, int32], nshards)}
	for s := 0; s < nshards; s++ {
		start := r.off
		nslots := r.count(uint64(r.u32()), len(r.b)/12, "posting slot count")
		nkeys := r.count(uint64(r.u32()), len(r.b)/12, "posting key count")
		nids := r.count(uint64(r.u32()), len(r.b)/4, "posting id count")
		r.u32() // padding
		if r.err == nil && (nslots < 2 || nslots&(nslots-1) != 0) {
			r.off = start
			r.fail("slot count %d not a power of two ≥ 2", nslots)
		}
		if r.err == nil && nkeys >= nslots {
			r.off = start
			r.fail("key count %d leaves no empty slot in %d", nkeys, nslots)
		}
		slots := viewU32(r.take(12 * nslots))
		ids := viewI32(r.take(4 * nids))
		r.align8()
		if r.err != nil {
			return nil, r.err
		}
		occupied, span := 0, 0
		for slot := 0; slot < nslots; slot++ {
			cnt := int(slots[3*slot+2])
			if cnt == 0 {
				continue
			}
			occupied++
			off := int(slots[3*slot+1])
			if off > nids-cnt {
				r.off = start
				r.fail("posting span [%d,%d) outside %d ids", off, off+cnt, nids)
				return nil, r.err
			}
			span += cnt
			prev := int32(-1)
			for _, id := range ids[off : off+cnt] {
				if id < 0 || int(id) >= n || id <= prev {
					r.off = start
					r.fail("posting id %d out of range %d or not ascending", id, n)
					return nil, r.err
				}
				prev = id
			}
		}
		if occupied != nkeys || span != nids {
			r.off = start
			r.fail("table holds %d keys/%d ids, header says %d/%d", occupied, span, nkeys, nids)
			return nil, r.err
		}
		ps.shards[s].flat = &arenaPostings{
			slots: slots,
			mask:  uint32(nslots - 1),
			ids:   ids,
			nkeys: nkeys,
		}
	}
	return ps, nil
}

// decodeArenaRule decodes one rule record and validates it against the
// corresponding rule of Σ: the signature binds the saved bitmap to the
// rule's exact definition, the bitmap's word count must fit |Dm|, bits
// beyond |Dm| must be zero, and the stored support count must equal the
// bitmap's popcount. The posts slice is left for the caller to resolve.
func decodeArenaRule(r *areader, ru *rule.Rule, n int) (*compatPlan, error) {
	start := r.off
	sig := r.u64()
	if r.err == nil && sig != ruleSig(ru) {
		r.off = start
		r.fail("rule %s: signature mismatch (snapshot saved for a different Σ)", ru.Name())
	}
	patCount := r.count(uint64(r.u32()), n, "pattern support count")
	words := (n + 63) / 64
	nwords := r.count(uint64(r.u32()), len(r.b)/8, "bitmap word count")
	if r.err == nil && nwords != words {
		r.off = start
		r.fail("rule %s: bitmap has %d words, |Dm|=%d needs %d", ru.Name(), nwords, n, words)
	}
	patBits := viewU64(r.take(8 * nwords))
	if r.err != nil {
		return nil, r.err
	}
	pop := 0
	for _, w := range patBits {
		pop += bits.OnesCount64(w)
	}
	if tail := n % 64; tail != 0 && words > 0 && patBits[words-1]>>uint(tail) != 0 {
		r.off = start
		r.fail("rule %s: bitmap bits set beyond |Dm|=%d", ru.Name(), n)
		return nil, r.err
	}
	if pop != patCount {
		r.off = start
		r.fail("rule %s: support count %d does not match bitmap popcount %d", ru.Name(), patCount, pop)
		return nil, r.err
	}
	return &compatPlan{
		patBits:  patBits,
		patCount: patCount,
		posts:    make([]*postings, len(ru.LHSMRef())),
	}, nil
}
