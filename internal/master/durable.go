package master

// DurableVersioned puts the snapshot lineage on disk. A plain Versioned
// is process memory: a certainfixd restart silently loses every
// ApplyDelta since boot, and with it the paper's premise that fixes are
// certain relative to a KNOWN master state. DurableVersioned wraps the
// same ring behind a write-ahead log and periodic arena checkpoints:
//
//	Apply     derive the next snapshot (an invalid delta is rejected
//	          before it ever reaches the log), append the delta as one
//	          epoch-stamped WAL record, THEN publish the head. Under
//	          wal.SyncAlways an Apply that returned is durable.
//	OpenDurable
//	          load the newest arena checkpoint (or build the base
//	          snapshot on first open), replay the WAL tail on top of
//	          it, and continue the lineage exactly where the previous
//	          process — cleanly shut down or power-cut — left it.
//
// Every CheckpointEvery deltas the current head is checkpointed: the
// arena is written atomically+durably through the same FS seam as the
// log, and the WAL segments it covers are truncated. A checkpoint
// failure is counted, not fatal — the delta that triggered it is
// already in the log, so durability never regresses; the log just keeps
// more tail than it would like until a checkpoint succeeds.
//
// The recovery contract — the recovered head is probe-for-probe and
// epoch-for-epoch identical to the pre-crash lineage at every possible
// crash point — is proven by the walfault sweep in durable_test.go.

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/relation"
	"repro/internal/rule"
	"repro/internal/wal"
)

// CheckpointFile is the name of the arena checkpoint inside a WAL
// directory.
const CheckpointFile = "checkpoint.arena"

// DefaultCheckpointEvery is the delta threshold between automatic arena
// checkpoints when DurableOptions.CheckpointEvery is zero.
const DefaultCheckpointEvery = 256

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Sync is the WAL fsync policy (default wal.SyncAlways).
	Sync wal.SyncPolicy
	// SyncInterval is the wal.SyncInterval cadence (default
	// wal.DefaultSyncInterval).
	SyncInterval time.Duration
	// SegmentBytes rolls WAL segments (default wal.DefaultSegmentBytes).
	SegmentBytes int64
	// CheckpointEvery is how many deltas accumulate before the head is
	// checkpointed and the covered WAL truncated (default
	// DefaultCheckpointEvery; <0 disables automatic checkpoints).
	CheckpointEvery int
	// History bounds the snapshot ring (default DefaultHistory).
	History int
	// FS overrides the filesystem for the WAL and the checkpoint
	// (default wal.OS); the crash-injection harness hooks in here.
	FS wal.FS
	// Auth authenticates the lineage: the base snapshot gets a Merkle
	// commitment before replay (a no-op when the checkpoint already
	// carries one — those are verified by the arena loader), every Apply
	// stamps its WAL record with the root it produces, and replay checks
	// each recovered epoch against the logged root.
	Auth bool
}

// RecoveryStats describes what OpenDurable found on disk.
type RecoveryStats struct {
	// UsedCheckpoint is true when the base snapshot came from
	// checkpoint.arena rather than the caller's base builder.
	UsedCheckpoint bool
	// BaseEpoch is the epoch of that base snapshot.
	BaseEpoch uint64
	// Replayed is how many WAL records were applied on top of it.
	Replayed int
	// TornBytes is what the WAL open truncated from a torn tail.
	TornBytes int64
}

// DurabilityStats is the observable durability state, served on the
// daemon's /healthz.
type DurabilityStats struct {
	// Epoch is the current head epoch.
	Epoch uint64
	// CheckpointEpoch is the epoch of the newest durable checkpoint.
	CheckpointEpoch uint64
	// SinceCheckpoint is how many deltas the WAL holds past it.
	SinceCheckpoint int
	// CheckpointFailures counts checkpoints whose arena never became
	// durable (durability is unaffected — the WAL retains the tail — but
	// disk usage grows until one succeeds).
	CheckpointFailures int
	// TruncateFailures counts checkpoints whose arena DID land durably
	// but whose WAL truncation failed afterwards: the checkpoint is good,
	// the log just kept segments it no longer needs until the next
	// truncation retries. Reported separately so /healthz never calls a
	// durable checkpoint failed.
	TruncateFailures int
	// WAL is the log's own shape.
	WAL wal.Stats
	// Recovery is what the open found.
	Recovery RecoveryStats
}

// DurableVersioned is a Versioned whose lineage survives the process.
// Writers must go through its Apply; readers may use the embedded
// Versioned (Current, At, sessions) freely.
type DurableVersioned struct {
	ver   *Versioned
	log   *wal.Log
	sigma *rule.Set
	fsys  wal.FS
	dir   string
	every int

	// dmu serializes Apply/Checkpoint/Close (it is never held while
	// ver.mu is wanted by readers — publishes go through ver's own lock).
	dmu        sync.Mutex
	ckptEpoch  uint64
	ckptFails  int
	truncFails int
	recovery   RecoveryStats
	closed     bool
}

// OpenDurable opens (or initialises) the durable lineage rooted at dir.
// When dir holds a checkpoint it is loaded and the WAL tail replayed on
// top; otherwise base() builds the initial snapshot, which is
// checkpointed immediately so the directory is self-contained from the
// first open. Corruption anywhere — checkpoint or log — surfaces as the
// typed errors of the respective layer (*SnapshotError/ErrBadSnapshot,
// *wal.CorruptError/wal.ErrWALCorrupt), never a panic.
func OpenDurable(dir string, base func() (*Data, error), sigma *rule.Set, opts DurableOptions) (*DurableVersioned, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = wal.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("master: open durable %s: %w", dir, err)
	}
	every := opts.CheckpointEvery
	switch {
	case every == 0:
		every = DefaultCheckpointEvery
	case every < 0:
		every = 0 // disabled
	}

	ckptPath := filepath.Join(dir, CheckpointFile)
	var (
		d        *Data
		usedCkpt bool
		err      error
	)
	load := func() (*Data, error) {
		if fsys == wal.OS {
			return LoadArena(ckptPath, sigma) // mmap: shares page cache
		}
		raw, err := fsys.ReadFile(ckptPath)
		if err != nil {
			return nil, err
		}
		return LoadArenaBytes(raw, sigma)
	}
	switch d, err = load(); {
	case err == nil:
		usedCkpt = true
	case errors.Is(err, fs.ErrNotExist):
		d, err = base()
		if err != nil {
			return nil, fmt.Errorf("master: open durable %s: base snapshot: %w", dir, err)
		}
	default:
		return nil, fmt.Errorf("master: open durable %s: %w", dir, err)
	}
	if opts.Auth {
		// Build the commitment before replay so delta application keeps it
		// incrementally from here on. No-op when the checkpoint was saved
		// authenticated — the loader has already verified its root.
		d.Authenticate()
	}

	lg, err := wal.Open(dir, wal.Options{
		Sync:         opts.Sync,
		Interval:     opts.SyncInterval,
		SegmentBytes: opts.SegmentBytes,
		FS:           fsys,
	})
	if err != nil {
		return nil, err
	}

	ver := NewVersioned(d)
	if opts.History > 0 {
		ver.SetHistory(opts.History)
	}
	baseEpoch := d.Epoch()
	replayed, err := lg.Replay(baseEpoch, func(rec wal.Record) error {
		next, aerr := ver.Current().ApplyDelta(rec.Adds, rec.Deletes)
		if aerr != nil {
			return fmt.Errorf("master: replay epoch %d: %w", rec.Epoch, aerr)
		}
		if next.Epoch() != rec.Epoch {
			return fmt.Errorf("master: replay produced epoch %d for record %d", next.Epoch(), rec.Epoch)
		}
		// An authenticated lineage logs the root each delta produces;
		// replay re-derives it incrementally and must land on the same
		// commitment, or the log and the lineage contradict each other.
		if root, ok := next.AuthRoot(); ok && len(rec.Root) == 32 && string(rec.Root) != string(root[:]) {
			return fmt.Errorf("master: replay epoch %d: recovered auth root %s does not match logged root %x", rec.Epoch, root, rec.Root)
		}
		ver.publishDerived(next)
		return nil
	})
	if err != nil {
		lg.Close()
		return nil, err
	}

	dv := &DurableVersioned{
		ver:   ver,
		log:   lg,
		sigma: sigma,
		fsys:  fsys,
		dir:   dir,
		every: every,
		recovery: RecoveryStats{
			UsedCheckpoint: usedCkpt,
			BaseEpoch:      baseEpoch,
			Replayed:       replayed,
			TornBytes:      lg.Stats().TornBytes,
		},
	}
	if usedCkpt {
		dv.ckptEpoch = baseEpoch
	} else {
		// First open of this directory: checkpoint the base snapshot now
		// so recovery never depends on the caller's base() being
		// reproducible (the CSV may move; the checkpoint does not).
		if err := dv.checkpointLocked(ver.Current()); err != nil {
			lg.Close()
			return nil, fmt.Errorf("master: open durable %s: initial checkpoint: %w", dir, err)
		}
	}
	return dv, nil
}

// Versioned exposes the snapshot ring for readers: Current, At, Epoch,
// monitor sessions. Do NOT call its Apply — deltas that bypass the log
// are exactly the data loss this type exists to prevent (and will
// desynchronise the epoch sequence, which Apply detects and refuses).
func (dv *DurableVersioned) Versioned() *Versioned { return dv.ver }

// Current returns the latest published snapshot.
func (dv *DurableVersioned) Current() *Data { return dv.ver.Current() }

// Epoch returns the latest published epoch.
func (dv *DurableVersioned) Epoch() uint64 { return dv.ver.Epoch() }

// At returns the retained snapshot at epoch (see Versioned.At).
func (dv *DurableVersioned) At(epoch uint64) (*Data, error) { return dv.ver.At(epoch) }

// Apply logs the delta and publishes the snapshot it derives, in that
// order: the record is in the WAL (fsynced, under wal.SyncAlways) before
// any reader can observe the new head. On error nothing is published and
// nothing invalid is logged.
func (dv *DurableVersioned) Apply(adds []relation.Tuple, deletes []int) (*Data, error) {
	dv.dmu.Lock()
	defer dv.dmu.Unlock()
	if dv.closed {
		return nil, fmt.Errorf("master: durable lineage closed")
	}
	next, err := dv.ver.Current().ApplyDelta(adds, deletes)
	if err != nil {
		return nil, err
	}
	rec := wal.Record{Epoch: next.Epoch(), Adds: adds, Deletes: deletes}
	if root, ok := next.AuthRoot(); ok {
		// Stamp the record with the root this delta produces: recovery and
		// followers re-derive it and refuse the epoch on a mismatch.
		rec.Root = append([]byte(nil), root[:]...)
	}
	if err := dv.log.Append(rec); err != nil {
		return nil, err
	}
	dv.ver.publishDerived(next)
	if dv.every > 0 && next.Epoch()-dv.ckptEpoch >= uint64(dv.every) {
		// The delta is already durable in the log; a checkpoint failure
		// costs disk, not data. checkpointLocked counts its own failures
		// (split by phase: arena vs truncation).
		_ = dv.checkpointLocked(next)
	}
	return next, nil
}

// Checkpoint forces an arena checkpoint of the current head and
// truncates the WAL it covers.
func (dv *DurableVersioned) Checkpoint() error {
	dv.dmu.Lock()
	defer dv.dmu.Unlock()
	if dv.closed {
		return fmt.Errorf("master: durable lineage closed")
	}
	return dv.checkpointLocked(dv.ver.Current())
}

// checkpointLocked writes head's arena atomically+durably through the FS
// seam, then truncates the WAL through head's epoch. It counts failures
// by phase: a failure before the rename+dirsync completes is a
// CheckpointFailure (no new durable checkpoint exists); a failure after
// it is a TruncateFailure only — the checkpoint IS durable, ckptEpoch
// advances, and only the log housekeeping is behind. Caller holds dv.dmu.
func (dv *DurableVersioned) checkpointLocked(head *Data) error {
	ckptPath := filepath.Join(dv.dir, CheckpointFile)
	tmpPath := ckptPath + ".tmp"
	fail := func(err error) error {
		dv.ckptFails++
		return err
	}
	f, err := dv.fsys.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fail(fmt.Errorf("master: checkpoint: %w", err))
	}
	if err := head.SaveArena(f, dv.sigma); err != nil {
		f.Close()
		dv.fsys.Remove(tmpPath)
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		dv.fsys.Remove(tmpPath)
		return fail(fmt.Errorf("master: checkpoint: %w", err))
	}
	if err := f.Close(); err != nil {
		dv.fsys.Remove(tmpPath)
		return fail(fmt.Errorf("master: checkpoint: %w", err))
	}
	if err := dv.fsys.Rename(tmpPath, ckptPath); err != nil {
		dv.fsys.Remove(tmpPath)
		return fail(fmt.Errorf("master: checkpoint: %w", err))
	}
	if err := dv.fsys.SyncDir(dv.dir); err != nil {
		return fail(fmt.Errorf("master: checkpoint: %w", err))
	}
	dv.ckptEpoch = head.Epoch()
	if err := dv.log.TruncateThrough(head.Epoch()); err != nil {
		dv.truncFails++
		return fmt.Errorf("master: checkpoint durable at epoch %d, wal truncation pending: %w", head.Epoch(), err)
	}
	return nil
}

// Close flushes and closes the WAL. The snapshot ring stays readable;
// further Applies fail.
func (dv *DurableVersioned) Close() error {
	dv.dmu.Lock()
	defer dv.dmu.Unlock()
	if dv.closed {
		return nil
	}
	dv.closed = true
	return dv.log.Close()
}

// Durability reports the current durability state.
func (dv *DurableVersioned) Durability() DurabilityStats {
	dv.dmu.Lock()
	defer dv.dmu.Unlock()
	head := dv.ver.Epoch()
	return DurabilityStats{
		Epoch:              head,
		CheckpointEpoch:    dv.ckptEpoch,
		SinceCheckpoint:    int(head - dv.ckptEpoch),
		CheckpointFailures: dv.ckptFails,
		TruncateFailures:   dv.truncFails,
		WAL:                dv.log.Stats(),
		Recovery:           dv.recovery,
	}
}

// TailWAL streams acknowledged WAL records with epoch > after to fn, in
// epoch order (see wal.Log.Tail) — the leader half of epoch shipping.
// Safe to call concurrently with Apply and Checkpoint.
func (dv *DurableVersioned) TailWAL(after uint64, fn func(wal.Record) error) (int, error) {
	return dv.log.Tail(after, fn)
}

// WALSynced reports the WAL shipping watermark and its advance channel
// (see wal.Log.Synced).
func (dv *DurableVersioned) WALSynced() (uint64, <-chan struct{}) {
	return dv.log.Synced()
}

// CheckpointImage returns the raw bytes of the newest durable arena
// checkpoint together with its epoch: what a follower that fell behind
// the WAL loads to catch up. Taken under dmu so the bytes and the epoch
// always correspond.
func (dv *DurableVersioned) CheckpointImage() ([]byte, uint64, error) {
	dv.dmu.Lock()
	defer dv.dmu.Unlock()
	raw, err := dv.fsys.ReadFile(filepath.Join(dv.dir, CheckpointFile))
	if err != nil {
		return nil, 0, fmt.Errorf("master: checkpoint image: %w", err)
	}
	return raw, dv.ckptEpoch, nil
}
