//go:build linux || darwin

package master

import (
	"os"
	"syscall"
)

// mmapArena maps size bytes of f read-only. A nil slice (any reason:
// empty file, mmap refusal) tells the caller to fall back to reading the
// file into memory — loading must succeed wherever the file is readable.
func mmapArena(f *os.File, size int) ([]byte, bool) {
	if size <= 0 {
		return nil, false
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return b, true
}

// munmapArena releases a mapping obtained from mmapArena (load-error
// paths only: a mapping referenced by a loaded snapshot lives with the
// process, since tuple cells alias it).
func munmapArena(b []byte) {
	_ = syscall.Munmap(b)
}
