package master

// Benchmarks for the sharded layout.
//
// BenchmarkShardedBuild measures NewForRules at P=1 (sequential,
// unsharded layout) against P=GOMAXPROCS (parallel sharded build). The
// speedup target (≥ 4x at |Dm| = 1M) is only observable on a multi-core
// host: the CI container is single-CPU, where GOMAXPROCS=1 makes both
// variants sequential and the benchmark degenerates to measuring routing
// overhead — run locally with MASTER_BENCH_1M=1 on a real machine for
// the headline number. The default sizes keep CI's -benchtime=1x smoke
// cheap.
//
// BenchmarkProbeShards pins graceful degradation: hit latency of the
// indexed probe as P grows at the paper-scale |Dm| = 600 (the acceptance
// bar is "no probe-latency regression at P=1, bounded fan-out cost
// above").

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// shardBenchRelation fabricates a synthetic master with hosp-like value
// cardinalities: a unique key column, two moderate-cardinality foreign
// keys, and dependent attribute columns.
func shardBenchRelation(n int) (*relation.Relation, *rule.Set) {
	r := relation.StringSchema("R", "key", "fk1", "fk2", "c1", "c2", "c3")
	rm := relation.StringSchema("Rm", "key", "fk1", "fk2", "c1", "c2", "c3")
	sigma := rule.MustNewSet(r, rm,
		rule.MustNew("key-c1", r, rm, []int{0}, []int{0}, 3, 3, pattern.Empty()),
		rule.MustNew("fk1-c2", r, rm, []int{1}, []int{1}, 4, 4, pattern.Empty()),
		rule.MustNew("pair-c3", r, rm, []int{1, 2}, []int{1, 2}, 5, 5, pattern.Empty()),
	)
	rel := relation.NewRelation(rm)
	for i := 0; i < n; i++ {
		fk1 := i % (n/40 + 1)
		fk2 := i % 97
		rel.MustAppend(relation.StringTuple(
			fmt.Sprintf("K%08d", i),
			fmt.Sprintf("F%06d", fk1),
			fmt.Sprintf("G%03d", fk2),
			fmt.Sprintf("c1-%d", fk1),
			fmt.Sprintf("c2-%d", fk2),
			fmt.Sprintf("c3-%d", (fk1+fk2)%1000),
		))
	}
	return rel, sigma
}

// BenchmarkShardedBuild measures the parallel sharded NewForRules against
// the P=1 sequential build. Set MASTER_BENCH_1M=1 to add the |Dm| = 1M
// configuration (the ≥ 4x acceptance measurement; needs a multi-core
// host and a few GiB of memory).
func BenchmarkShardedBuild(b *testing.B) {
	sizes := []int{10_000, 100_000}
	if os.Getenv("MASTER_BENCH_1M") != "" {
		sizes = append(sizes, 1_000_000)
	}
	for _, n := range sizes {
		rel, sigma := shardBenchRelation(n)
		for _, cfg := range []struct {
			name    string
			shards  int
			workers int
		}{
			{"P=1", 1, 1},
			{fmt.Sprintf("P=%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0), runtime.GOMAXPROCS(0)},
		} {
			b.Run(fmt.Sprintf("Dm=%d/%s", n, cfg.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d, err := NewForRules(rel, sigma, WithShards(cfg.shards), WithBuildWorkers(cfg.workers))
					if err != nil {
						b.Fatal(err)
					}
					if d.Len() != n {
						b.Fatal("bad build")
					}
				}
			})
		}
	}
}

// BenchmarkProbeShards measures indexed hit latency across shard counts
// at |Dm| = 600: P=1 must match the pre-sharding probe cost, and the
// fan-out cost above it stays a handful of empty map lookups.
func BenchmarkProbeShards(b *testing.B) {
	const n = 600
	rel, sigma := shardBenchRelation(n)
	ru := sigma.Rule(0) // key → c1: unique key, single-match hits
	for _, p := range []int{1, 2, 4, 8} {
		d := MustNewForRules(rel, sigma, WithShards(p), WithBuildWorkers(2))
		probe := rel.Tuple(n / 2).Clone()
		b.Run(fmt.Sprintf("P=%d/hit", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if ids := d.MatchIDs(ru, probe); len(ids) != 1 {
					b.Fatal("probe must match once")
				}
			}
		})
	}
}

// BenchmarkShardedDelta measures ApplyDelta routing at a delta size large
// enough to take the shard-parallel application path.
func BenchmarkShardedDelta(b *testing.B) {
	const n = 60_000
	rel, sigma := shardBenchRelation(n)
	extra, _ := shardBenchRelation(n + 512)
	adds := extra.Tuples()[n:]
	deletes := make([]int, 256)
	for i := range deletes {
		deletes[i] = i * 7
	}
	for _, p := range []int{1, runtime.GOMAXPROCS(0)} {
		d := MustNewForRules(rel, sigma, WithShards(p))
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := d.ApplyDelta(adds, deletes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
