package master

// The arena round-trip property (ISSUE 6): a snapshot chain that passes
// through serialization — Save → Load → ApplyDelta* — deep-equals the
// purely in-memory lineage at every step, under the same rebuild oracle
// (checkEquiv) the delta chain is held to. The chain re-serializes
// mid-way at random, so overlays accumulated ON TOP of a loaded arena
// (flat layer + COW maps) are themselves frozen and re-loaded, and the
// flatten-at-1/4 compaction that drops the flat layer is crossed
// repeatedly (the instances are small, so a few deltas trigger it).

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func TestArenaDeltaEquivalenceProperty(t *testing.T) {
	const totalIterations = 300
	const deltasPerInstance = 8
	iter := 0
	for seed := 0; iter < totalIterations; seed++ {
		rng := rand.New(rand.NewSource(int64(61_000_000 + seed)))
		heap, sigma, rm, vals := randomDeltaInstance(rng)

		// Freeze the build and continue the chain from the loaded arena,
		// with the heap-built lineage advancing in lockstep as the witness.
		loaded := loadArenaOrFatal(t, saveArenaBytes(t, heap, sigma), sigma)

		for step := 0; step < deltasPerInstance && iter < totalIterations; step++ {
			adds, deletes := randomDelta(rng, loaded.Len(), rm.Arity(), vals)
			ctx := fmt.Sprintf("seed %d step %d", seed, step)

			nextLoaded, err := loaded.ApplyDelta(adds, deletes)
			if err != nil {
				t.Fatalf("%s: ApplyDelta on loaded chain: %v", ctx, err)
			}
			nextHeap, err := heap.ApplyDelta(adds, deletes)
			if err != nil {
				t.Fatalf("%s: ApplyDelta on heap chain: %v", ctx, err)
			}
			iter++

			// Same materialized relation, tuple by tuple.
			if nextLoaded.Len() != nextHeap.Len() {
				t.Fatalf("%s: loaded chain has %d tuples, heap chain %d", ctx, nextLoaded.Len(), nextHeap.Len())
			}
			for i := 0; i < nextHeap.Len(); i++ {
				if !nextLoaded.Tuple(i).Equal(nextHeap.Tuple(i)) {
					t.Fatalf("%s: tuple %d = %v, heap chain %v", ctx, i, nextLoaded.Tuple(i), nextHeap.Tuple(i))
				}
			}

			// Deep-equality against the from-scratch rebuild, and probe
			// agreement between the two lineages.
			checkEquiv(t, ctx+" (loaded chain)", nextLoaded, sigma)
			checkProbesAgree(t, ctx, nextHeap, nextLoaded, sigma, vals, 4)

			// The arena backing must survive the derivation.
			if !nextLoaded.MemStats().ArenaBacked {
				t.Fatalf("%s: derived snapshot lost its arena backing", ctx)
			}

			loaded, heap = nextLoaded, nextHeap

			// Occasionally freeze the current state of BOTH chains and
			// compare the images byte for byte — the serialized merged view
			// must not depend on whether the snapshot's base is an arena or
			// heap maps — then continue from the re-loaded snapshot.
			if rng.Intn(3) == 0 {
				imgL := saveArenaBytes(t, loaded, sigma)
				imgH := saveArenaBytes(t, heap, sigma)
				if !bytes.Equal(imgL, imgH) {
					t.Fatalf("%s: re-serialized images differ between loaded and heap chains", ctx)
				}
				loaded = loadArenaOrFatal(t, imgL, sigma)
			}
		}

		// End of instance: a final delta through Versioned, proving the
		// publish path works unchanged over an arena-rooted chain.
		v := NewVersioned(loaded)
		adds := []relation.Tuple{randomMasterTuple(rng, rm.Arity(), vals)}
		if _, err := v.Apply(adds, nil); err != nil {
			t.Fatalf("seed %d: Versioned.Apply over loaded chain: %v", seed, err)
		}
		checkEquiv(t, fmt.Sprintf("seed %d versioned head", seed), v.Current(), sigma)
	}
}
