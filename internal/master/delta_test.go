package master

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/rule"
)

// deltaFixture builds a small 2-column keyed master with one rule
// (A ; MA) -> (B ; MB) and tuples k0..k<n-1>.
func deltaFixture(t *testing.T, n int) (*Data, *rule.Set, *rule.Rule) {
	t.Helper()
	r := relation.StringSchema("R", "A", "B")
	rm := relation.StringSchema("Rm", "MA", "MB")
	ru := rule.MustNew("kv", r, rm, []int{0}, []int{0}, 1, 1, pattern.Empty())
	sigma := rule.MustNewSet(r, rm, ru)
	rel := relation.NewRelation(rm)
	for i := 0; i < n; i++ {
		rel.MustAppend(relation.StringTuple(key(i), val(i)))
	}
	return MustNewForRules(rel, sigma), sigma, ru
}

func key(i int) string { return "k" + string(rune('a'+i%26)) + string(rune('a'+i/26)) }
func val(i int) string { return "v" + string(rune('a'+i%26)) + string(rune('a'+i/26)) }

func probeFor(k string) relation.Tuple {
	return relation.StringTuple(k, "dirty")
}

func TestApplyDeltaEpochAndBasics(t *testing.T) {
	d0, sigma, ru := deltaFixture(t, 4)
	if d0.Epoch() != 0 {
		t.Fatalf("fresh snapshot epoch = %d, want 0", d0.Epoch())
	}

	// Add one tuple: probe finds it only in the new snapshot.
	d1, err := d0.ApplyDelta([]relation.Tuple{relation.StringTuple("new", "nv")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Epoch() != 1 || d0.Epoch() != 0 {
		t.Fatalf("epochs after add: parent %d child %d, want 0 and 1", d0.Epoch(), d1.Epoch())
	}
	if d1.Len() != 5 || d0.Len() != 4 {
		t.Fatalf("lengths after add: parent %d child %d, want 4 and 5", d0.Len(), d1.Len())
	}
	if ids := d1.MatchIDs(ru, probeFor("new")); len(ids) != 1 || ids[0] != 4 {
		t.Fatalf("new tuple probe in child = %v, want [4]", ids)
	}
	if ids := d0.MatchIDs(ru, probeFor("new")); len(ids) != 0 {
		t.Fatalf("new tuple visible in parent: %v", ids)
	}
	checkEquiv(t, "after add", d1, sigma)

	// Swap-remove delete: the last tuple takes the freed id.
	d2, err := d1.ApplyDelta(nil, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 4 {
		t.Fatalf("length after delete = %d, want 4", d2.Len())
	}
	if ids := d2.MatchIDs(ru, probeFor(key(1))); len(ids) != 0 {
		t.Fatalf("deleted tuple still probeable: %v", ids)
	}
	if ids := d2.MatchIDs(ru, probeFor("new")); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("moved tuple probe = %v, want [1] (swap-remove)", ids)
	}
	// The older snapshots are untouched.
	if ids := d1.MatchIDs(ru, probeFor(key(1))); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("parent snapshot changed by child delete: %v", ids)
	}
	checkEquiv(t, "after delete", d2, sigma)

	// Mixed delta including a delete of the last id (no move).
	d3, err := d2.ApplyDelta(
		[]relation.Tuple{relation.StringTuple("x1", "y1"), relation.StringTuple("x2", "y2")},
		[]int{d2.Len() - 1, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Len() != 4 {
		t.Fatalf("length after mixed delta = %d, want 4", d3.Len())
	}
	checkEquiv(t, "after mixed", d3, sigma)
	if vals := d3.RHSValues(ru, probeFor("x2")); len(vals) != 1 || vals[0].Str() != "y2" {
		t.Fatalf("RHSValues for added tuple = %v, want [y2]", vals)
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	d0, _, _ := deltaFixture(t, 3)
	if _, err := d0.ApplyDelta(nil, []int{3}); err == nil {
		t.Fatal("out-of-range delete must error")
	}
	if _, err := d0.ApplyDelta(nil, []int{-1}); err == nil {
		t.Fatal("negative delete must error")
	}
	if _, err := d0.ApplyDelta(nil, []int{1, 1}); err == nil {
		t.Fatal("duplicate delete must error")
	}
	if _, err := d0.ApplyDelta([]relation.Tuple{relation.StringTuple("only-one-cell")}, nil); err == nil {
		t.Fatal("arity-mismatched add must error")
	}
	if d0.Epoch() != 0 || d0.Len() != 3 {
		t.Fatal("failed deltas must leave the snapshot untouched")
	}
}

func TestApplyDeltaDeleteAll(t *testing.T) {
	d0, sigma, ru := deltaFixture(t, 3)
	d1, err := d0.ApplyDelta(nil, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if d1.Len() != 0 {
		t.Fatalf("length after delete-all = %d", d1.Len())
	}
	if d1.HasMatch(ru, probeFor(key(0))) {
		t.Fatal("probe against emptied master must miss")
	}
	if d1.PatternSupported(ru) {
		t.Fatal("pattern support must drop to zero with the last tuple")
	}
	checkEquiv(t, "after delete-all", d1, sigma)

	// The chain continues past empty.
	d2, err := d1.ApplyDelta([]relation.Tuple{relation.StringTuple("z", "zz")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.HasMatch(ru, probeFor("z")) || d2.Epoch() != 2 {
		t.Fatalf("refilled master: HasMatch=%v epoch=%d", d2.HasMatch(ru, probeFor("z")), d2.Epoch())
	}
	checkEquiv(t, "after refill", d2, sigma)
}

func TestApplyDeltaAddedTuplesAreCopied(t *testing.T) {
	d0, _, ru := deltaFixture(t, 2)
	add := relation.StringTuple("mine", "mv")
	d1, err := d0.ApplyDelta([]relation.Tuple{add}, nil)
	if err != nil {
		t.Fatal(err)
	}
	add[0] = relation.String("mutated")
	if !d1.HasMatch(ru, probeFor("mine")) {
		t.Fatal("snapshot must own a copy of added tuples")
	}
	if d1.HasMatch(ru, probeFor("mutated")) {
		t.Fatal("caller mutation leaked into the snapshot")
	}
}

func TestVersionedPublish(t *testing.T) {
	d0, _, ru := deltaFixture(t, 2)
	v := NewVersioned(d0)
	if v.Epoch() != 0 || v.Current() != d0 {
		t.Fatal("fresh Versioned must publish the seed snapshot")
	}
	pinned := v.Current()

	d1, err := v.Apply([]relation.Tuple{relation.StringTuple("w", "wv")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Current() != d1 || v.Epoch() != 1 {
		t.Fatal("Apply must publish the derived snapshot")
	}
	if pinned.HasMatch(ru, probeFor("w")) {
		t.Fatal("pinned snapshot must not see the published delta")
	}
	if !v.Current().HasMatch(ru, probeFor("w")) {
		t.Fatal("published snapshot must see the delta")
	}

	// A failing delta publishes nothing.
	if _, err := v.Apply(nil, []int{99}); err == nil {
		t.Fatal("invalid delta must error")
	}
	if v.Current() != d1 {
		t.Fatal("failed Apply must leave the head unchanged")
	}
}

// TestApplyDeltaRefinedRuleProbes pins that refined rules (ϕ+, not in the
// plan maps) keep probing correctly through the registry on a
// delta-derived snapshot.
func TestApplyDeltaRefinedRuleProbes(t *testing.T) {
	d0, _, ru := deltaFixture(t, 3)
	d1, err := d0.ApplyDelta([]relation.Tuple{relation.StringTuple(key(0), "other")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	plus, err := ru.WithPattern(ru.Pattern().WithCell(1, pattern.Neq(relation.String("zz"))))
	if err != nil {
		t.Fatal(err)
	}
	ids := d1.MatchIDs(plus, probeFor(key(0)))
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 3 {
		t.Fatalf("refined-rule probe on delta snapshot = %v, want [0 3]", ids)
	}
}
