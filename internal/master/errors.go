package master

import (
	"errors"
	"fmt"

	"repro/internal/relation"
)

// ErrMasterBuild is the sentinel matched (errors.Is) by every failure of
// snapshot construction and incremental maintenance: NewForRules schema
// and tuple validation, and ApplyDelta add/delete validation. The
// concrete error is a *BuildError carrying the failing tuple's shard and
// key context; match it with errors.As to render structured diagnostics
// (cmd/expdriver and cmd/certainfixd do).
var ErrMasterBuild = errors.New("master: build failed")

// BuildError reports a master build or delta failure with enough context
// to find the offending tuple in a multi-million-row load: which shard
// the tuple routes to, its id (position in the relation or delta), and a
// bounded rendering of its key. Shard and TupleID are -1 when the
// failure is not tied to one tuple (e.g. a schema mismatch).
type BuildError struct {
	// Shard the failing tuple routes to (-1 when tuple-independent).
	Shard int
	// TupleID is the tuple's position: an id in the relation for build
	// validation, an index into the adds slice or a delete id for deltas
	// (-1 when tuple-independent).
	TupleID int
	// Key is a bounded rendering of the failing tuple's cells ("" when
	// tuple-independent).
	Key string
	// Err is the underlying cause.
	Err error
}

func (e *BuildError) Error() string {
	if e.TupleID < 0 {
		return fmt.Sprintf("master: build: %v", e.Err)
	}
	return fmt.Sprintf("master: build: tuple %d (shard %d, key %s): %v", e.TupleID, e.Shard, e.Key, e.Err)
}

// Unwrap makes the error match both ErrMasterBuild and the underlying
// cause through errors.Is/As.
func (e *BuildError) Unwrap() []error { return []error{ErrMasterBuild, e.Err} }

// ErrBadSnapshot is the sentinel matched (errors.Is) by every arena
// decode failure: truncated files, bad magic or version, out-of-range
// offsets, corrupt tables, and snapshots saved for a different Σ or
// schema. The concrete error is a *SnapshotError locating the corruption.
// The decoder validates eagerly at LoadArena time — a snapshot that loads
// without error is fully bounds-checked, so probes run with no per-access
// validation — and never panics or reads past the file on hostile input
// (FuzzLoadArena pins this).
var ErrBadSnapshot = errors.New("master: bad snapshot")

// SnapshotError reports an arena decode failure with the file section and
// byte offset where decoding stopped.
type SnapshotError struct {
	// Section names the arena section being decoded ("header", "schema",
	// "symbols", "columns", "indexes", "postings", "rules").
	Section string
	// Offset is the absolute byte offset at which decoding failed (-1 when
	// the failure is not tied to one position, e.g. a Σ mismatch).
	Offset int
	// Msg describes the corruption.
	Msg string
}

func (e *SnapshotError) Error() string {
	if e.Offset < 0 {
		return fmt.Sprintf("master: snapshot: %s: %s", e.Section, e.Msg)
	}
	return fmt.Sprintf("master: snapshot: %s at offset %d: %s", e.Section, e.Offset, e.Msg)
}

// Unwrap makes the error match ErrBadSnapshot through errors.Is.
func (e *SnapshotError) Unwrap() error { return ErrBadSnapshot }

// maxKeyContext bounds the tuple-key rendering embedded in errors, so a
// pathological row cannot flood logs.
const maxKeyContext = 128

// tupleKeyContext renders a tuple's full key for error context, truncated
// to maxKeyContext bytes.
func tupleKeyContext(t relation.Tuple) string {
	positions := make([]int, len(t))
	for i := range positions {
		positions[i] = i
	}
	k := t.Key(positions)
	if len(k) > maxKeyContext {
		k = k[:maxKeyContext] + "…"
	}
	return k
}

// validateTuple checks a master tuple against the schema: arity, and each
// cell's dynamic kind against the attribute's declared type (null is
// allowed everywhere — the paper's completeness assumption is the data
// owner's contract, not a structural one).
func validateTuple(schema *relation.Schema, t relation.Tuple) error {
	if len(t) != schema.Arity() {
		return fmt.Errorf("arity %d against schema %s of arity %d", len(t), schema.Name(), schema.Arity())
	}
	for i, v := range t {
		attr := schema.Attr(i)
		switch v.Kind() {
		case relation.KindNull:
		case relation.KindString:
			if attr.Type != relation.TypeString {
				return fmt.Errorf("attribute %s: string value %q against declared type %v", attr.Name, v.Str(), attr.Type)
			}
		case relation.KindInt:
			if attr.Type != relation.TypeInt {
				return fmt.Errorf("attribute %s: int value %d against declared type %v", attr.Name, v.Int64(), attr.Type)
			}
		default:
			return fmt.Errorf("attribute %s: unknown value kind %v", attr.Name, v.Kind())
		}
	}
	return nil
}
