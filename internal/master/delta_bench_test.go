package master

// Benchmarks for the versioned-master tentpole: ApplyDelta of a one-tuple
// correction vs a full NewForRules rebuild at |Dm| ∈ {600, 6k, 60k}
// (recorded in BENCH_*.json; the acceptance bar is ≥50x at 60k), plus
// probe throughput while deltas publish concurrently.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/internal/rule"
)

// benchMasterRelation synthesizes n master tuples over the paper's Rm
// with realistic cardinalities: shared name/city pools, mostly-unique
// phones and zips.
func benchMasterRelation(n int) (*relation.Relation, *rule.Set) {
	rng := rand.New(rand.NewSource(42))
	sigma := paperex.Sigma0()
	rel := relation.NewRelation(paperex.SchemaRm())
	for i := 0; i < n; i++ {
		rel.MustAppend(benchMasterTuple(rng, i))
	}
	return rel, sigma
}

func benchMasterTuple(rng *rand.Rand, i int) relation.Tuple {
	return relation.StringTuple(
		fmt.Sprintf("FN%d", rng.Intn(200)),
		fmt.Sprintf("LN%d", rng.Intn(500)),
		fmt.Sprintf("%03d", rng.Intn(900)),
		fmt.Sprintf("7%06d", i),
		fmt.Sprintf("07%07d", i),
		fmt.Sprintf("%d Bench St.", i),
		fmt.Sprintf("City%d", rng.Intn(80)),
		fmt.Sprintf("Z%05d", i),
		fmt.Sprintf("%02d/%02d/%02d", 1+rng.Intn(28), 1+rng.Intn(12), rng.Intn(100)),
		[]string{"M", "F"}[rng.Intn(2)],
	)
}

// BenchmarkApplyDelta measures the incremental path: one-tuple add+delete
// published as a single delta against a snapshot of each size.
func BenchmarkApplyDelta(b *testing.B) {
	for _, n := range []int{600, 6_000, 60_000} {
		rel, sigma := benchMasterRelation(n)
		d0 := MustNewForRules(rel, sigma)
		rng := rand.New(rand.NewSource(7))
		add := []relation.Tuple{benchMasterTuple(rng, n+1)}
		del := []int{n / 2}
		b.Run(fmt.Sprintf("Dm=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := d0.ApplyDelta(add, del); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRebuild is the stop-the-world alternative ApplyDelta replaces:
// a full NewForRules over the same relation sizes.
func BenchmarkRebuild(b *testing.B) {
	for _, n := range []int{600, 6_000, 60_000} {
		rel, sigma := benchMasterRelation(n)
		b.Run(fmt.Sprintf("Dm=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewForRules(rel, sigma); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProbeUnderUpdate measures probe throughput (MatchIDs +
// CompatibleExists against the currently published snapshot) while a
// background goroutine continuously publishes one-tuple deltas — the
// serving-layer steady state the snapshot design exists for.
func BenchmarkProbeUnderUpdate(b *testing.B) {
	const n = 6_000
	rel, sigma := benchMasterRelation(n)
	v := NewVersioned(MustNewForRules(rel, sigma))
	ru := sigma.Rules()[0] // phi1: (zip ; zip) -> (AC ; AC)
	probes := make([]relation.Tuple, 256)
	for i := range probes {
		t := make(relation.Tuple, sigma.Schema().Arity())
		for j := range t {
			t[j] = relation.String("x")
		}
		t[7] = rel.Tuple(i * (n / len(probes)))[7] // a real zip: indexed hit
		probes[i] = t
	}
	zSet := relation.NewAttrSet(7)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(11))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			add := []relation.Tuple{benchMasterTuple(rng, n+i)}
			if _, err := v.Apply(add, []int{rng.Intn(v.Current().Len())}); err != nil {
				b.Error(err)
				return
			}
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			snap := v.Current()
			t := probes[i%len(probes)]
			if len(snap.MatchIDs(ru, t)) == 0 {
				// The probed zip may have been deleted by churn; that is
				// fine — the probe still exercised the full path.
				_ = snap.CompatibleExists(ru, t, zSet)
			} else {
				_ = snap.CompatibleExists(ru, t, zSet)
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}
