package master

// The durability proof for DurableVersioned. The walfault filesystem
// cuts power at swept budget points (written bytes, fsyncs, metadata
// ops) and spill fractions while a randomized delta workload runs; after
// each cut, OpenDurable on the surviving directory must reproduce the
// pre-crash lineage exactly: the recovered head is the in-memory
// expected state at some epoch E with acked ≤ E ≤ applied (SyncAlways
// acks are never lost), checkEquiv proves it probe-for-probe equal to a
// from-scratch rebuild, and applying the remaining deltas lands on the
// same final state the uninterrupted run reaches. Non-crash behaviours —
// clean reopen, checkpoint truncation, ring eviction after recovery,
// typed corruption errors — are pinned by the tests that follow.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relation"
	"repro/internal/rule"
	"repro/internal/wal"
	"repro/internal/wal/walfault"
)

// durableWorkload is one deterministic delta sequence over a randomized
// (Σ, Dm) instance, with the expected tuple state after every epoch.
type durableWorkload struct {
	base   *Data
	sigma  *rule.Set
	deltas []struct {
		adds    []relation.Tuple
		deletes []int
	}
	// expected[i] is the tuple state after applying i deltas (expected[0]
	// is the base state); epoch of expected[i] is base.Epoch()+i.
	expected [][]relation.Tuple
}

func newDurableWorkload(seed int64, nDeltas int) *durableWorkload {
	rng := rand.New(rand.NewSource(seed))
	d0, sigma, rm, vals := randomDeltaInstance(rng)
	w := &durableWorkload{base: d0, sigma: sigma}
	state := append([]relation.Tuple(nil), d0.Relation().Tuples()...)
	w.expected = append(w.expected, state)
	for i := 0; i < nDeltas; i++ {
		adds, deletes := randomDelta(rng, len(state), rm.Arity(), vals)
		w.deltas = append(w.deltas, struct {
			adds    []relation.Tuple
			deletes []int
		}{adds, deletes})
		state = shadowApply(state, adds, deletes)
		w.expected = append(w.expected, state)
	}
	return w
}

func (w *durableWorkload) opts(fs wal.FS) DurableOptions {
	return DurableOptions{
		Sync:            wal.SyncAlways,
		SegmentBytes:    256, // force rolls inside the workload
		CheckpointEvery: 2,   // force checkpoints + truncation inside it
		FS:              fs,
	}
}

// run applies every delta through a DurableVersioned in dir, stopping at
// the first error (the simulated power cut). It reports the highest
// epoch whose Apply returned success.
func (w *durableWorkload) run(fs wal.FS, dir string) (acked uint64) {
	dv, err := OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma, w.opts(fs))
	if err != nil {
		return 0
	}
	defer dv.Close()
	acked = w.base.Epoch()
	for _, d := range w.deltas {
		next, err := dv.Apply(d.adds, d.deletes)
		if err != nil {
			return acked
		}
		acked = next.Epoch()
	}
	return acked
}

// checkState asserts d's tuples are exactly want, in order.
func checkState(t *testing.T, ctx string, d *Data, want []relation.Tuple) {
	t.Helper()
	got := d.Relation().Tuples()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: tuple %d arity mismatch", ctx, i)
		}
		for c := range got[i] {
			if !got[i][c].Equal(want[i][c]) {
				t.Fatalf("%s: tuple %d cell %d: got %v want %v", ctx, i, c, got[i][c], want[i][c])
			}
		}
	}
}

// recoverAndProve reopens dir with the real filesystem and drives the
// full oracle: epoch bounds, tuple-exact state, rebuild equivalence, and
// completion of the remaining lineage to the expected final state.
func (w *durableWorkload) recoverAndProve(t *testing.T, dir string, acked uint64, label string) {
	t.Helper()
	dv, err := OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma, DurableOptions{CheckpointEvery: 2})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer dv.Close()
	e := dv.Epoch()
	base, last := w.base.Epoch(), w.base.Epoch()+uint64(len(w.deltas))
	if e < acked || e > last {
		t.Fatalf("%s: recovered epoch %d outside [acked %d, applied %d]", label, e, acked, last)
	}
	checkState(t, label+": recovered head", dv.Current(), w.expected[e-base])
	checkEquiv(t, label+": recovered head", dv.Current(), w.sigma)

	// The lineage continues: apply what the crash interrupted and land
	// exactly where the uninterrupted run lands.
	for i := e - base; i < uint64(len(w.deltas)); i++ {
		if _, err := dv.Apply(w.deltas[i].adds, w.deltas[i].deletes); err != nil {
			t.Fatalf("%s: continuing lineage at delta %d: %v", label, i, err)
		}
	}
	if dv.Epoch() != last {
		t.Fatalf("%s: continued lineage ends at epoch %d, want %d", label, dv.Epoch(), last)
	}
	checkState(t, label+": final head", dv.Current(), w.expected[len(w.deltas)])
	checkEquiv(t, label+": final head", dv.Current(), w.sigma)
}

func TestDurableCrashRecoveryProperty(t *testing.T) {
	const nDeltas = 6
	for _, seed := range []int64{41_000_001, 41_000_002} {
		w := newDurableWorkload(seed, nDeltas)

		// Dry run: measure the total budget an uninterrupted run spends.
		probe := walfault.New(wal.OS, -1, 0, 1)
		if acked := w.run(probe, t.TempDir()); acked != w.base.Epoch()+nDeltas {
			t.Fatalf("seed %d: dry run incomplete: acked %d", seed, acked)
		}
		total := probe.Spent()

		// Sweep crash points across the whole budget with a stride that
		// is coprime to typical frame/op sizes, at all three spill
		// fractions; always include the first and last point.
		crashes := 0
		points := []int64{1, total}
		for b := int64(3); b < total; b += 17 {
			points = append(points, b)
		}
		for _, budget := range points {
			for _, sp := range [][2]int{{0, 1}, {1, 2}, {1, 1}} {
				label := fmt.Sprintf("seed=%d budget=%d/%d spill=%d/%d", seed, budget, total, sp[0], sp[1])
				dir := t.TempDir()
				fs := walfault.New(wal.OS, budget, sp[0], sp[1])
				acked := w.run(fs, dir)
				if fs.Crashed() {
					crashes++
				} else if acked != w.base.Epoch()+nDeltas {
					t.Fatalf("%s: no crash yet workload incomplete (acked %d)", label, acked)
				}
				w.recoverAndProve(t, dir, acked, label)
			}
		}
		if crashes == 0 {
			t.Fatalf("seed %d: sweep never crashed", seed)
		}
		t.Logf("seed %d: budget %d, %d crash points proven", seed, total, crashes)
	}
}

func TestDurableCleanReopen(t *testing.T) {
	w := newDurableWorkload(41_000_100, 10)
	dir := t.TempDir()
	if acked := w.run(wal.OS, dir); acked != w.base.Epoch()+10 {
		t.Fatalf("workload incomplete: %d", acked)
	}
	dv, err := OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Close()
	if dv.Epoch() != w.base.Epoch()+10 {
		t.Fatalf("reopened at epoch %d", dv.Epoch())
	}
	checkState(t, "clean reopen", dv.Current(), w.expected[10])
	checkEquiv(t, "clean reopen", dv.Current(), w.sigma)
	st := dv.Durability()
	if !st.Recovery.UsedCheckpoint {
		t.Fatal("reopen ignored the checkpoint")
	}
	if st.Recovery.BaseEpoch+uint64(st.Recovery.Replayed) != dv.Epoch() {
		t.Fatalf("recovery accounting off: %+v at epoch %d", st.Recovery, dv.Epoch())
	}
	if st.WAL.TornBytes != 0 {
		t.Fatalf("clean shutdown left a torn tail: %+v", st.WAL)
	}
}

func TestDurableCheckpointTruncatesWAL(t *testing.T) {
	w := newDurableWorkload(41_000_200, 12)
	dir := t.TempDir()
	dv, err := OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma,
		DurableOptions{Sync: wal.SyncAlways, SegmentBytes: 128, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Close()
	for _, d := range w.deltas {
		if _, err := dv.Apply(d.adds, d.deletes); err != nil {
			t.Fatal(err)
		}
	}
	st := dv.Durability()
	if st.CheckpointFailures != 0 {
		t.Fatalf("checkpoints failed: %+v", st)
	}
	if st.CheckpointEpoch < w.base.Epoch()+4 {
		t.Fatalf("no automatic checkpoint happened: %+v", st)
	}
	if st.SinceCheckpoint >= 8 {
		t.Fatalf("WAL retains too much past the checkpoint: %+v", st)
	}
	if st.WAL.FirstEpoch != 0 && st.WAL.FirstEpoch <= w.base.Epoch()+1 {
		t.Fatalf("truncation removed nothing: %+v", st.WAL)
	}

	// An explicit checkpoint empties the retained tail.
	if err := dv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := dv.Durability(); st.SinceCheckpoint != 0 || st.WAL.Segments != 0 {
		t.Fatalf("explicit checkpoint left %+v", st)
	}
}

// TestDurableHistoryRingAfterRecovery pins the ring semantics a restart
// produces: the ring is rebuilt from the checkpoint forward, so epochs
// the replay walked through can be re-pinned (a resumed session finds
// its snapshot), while epochs at or before the checkpoint are evicted
// with ErrEpochEvicted — exactly the signal the monitor's resume path
// maps to a rebase-or-fail decision.
func TestDurableHistoryRingAfterRecovery(t *testing.T) {
	w := newDurableWorkload(41_000_300, 10)
	dir := t.TempDir()
	dv, err := OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma,
		DurableOptions{CheckpointEvery: 4, History: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range w.deltas {
		if _, err := dv.Apply(d.adds, d.deletes); err != nil {
			t.Fatal(err)
		}
	}
	ckpt := dv.Durability().CheckpointEpoch
	if ckpt <= w.base.Epoch() || ckpt >= dv.Epoch() {
		t.Fatalf("want a checkpoint strictly inside the lineage, got %d", ckpt)
	}
	dv.Close()

	dv2, err := OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma,
		DurableOptions{CheckpointEvery: 4, History: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer dv2.Close()
	base := w.base.Epoch()

	// Re-pinning every recovered epoch yields the exact historical state.
	for e := ckpt; e <= dv2.Epoch(); e++ {
		snap, err := dv2.At(e)
		if err != nil {
			t.Fatalf("re-pin recovered epoch %d: %v", e, err)
		}
		checkState(t, fmt.Sprintf("re-pinned epoch %d", e), snap, w.expected[e-base])
	}
	// Epochs before the checkpoint are gone, with the typed signal.
	if _, err := dv2.At(ckpt - 1); !errors.Is(err, ErrEpochEvicted) {
		t.Fatalf("pre-checkpoint epoch: want ErrEpochEvicted, got %v", err)
	}
	// A shallow ring still serves its head after recovery.
	dv2.Versioned().SetHistory(1)
	if _, err := dv2.At(dv2.Epoch()); err != nil {
		t.Fatalf("head must always be pinnable: %v", err)
	}
	if _, err := dv2.At(dv2.Epoch() - 1); !errors.Is(err, ErrEpochEvicted) {
		t.Fatalf("shrunk ring: want ErrEpochEvicted, got %v", err)
	}
}

func TestDurableCorruptionIsTyped(t *testing.T) {
	t.Run("checkpoint", func(t *testing.T) {
		w := newDurableWorkload(41_000_400, 4)
		dir := t.TempDir()
		if acked := w.run(wal.OS, dir); acked != w.base.Epoch()+4 {
			t.Fatalf("workload incomplete: %d", acked)
		}
		path := filepath.Join(dir, CheckpointFile)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xFF
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma, DurableOptions{})
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("want ErrBadSnapshot, got %v", err)
		}
	})
	t.Run("wal", func(t *testing.T) {
		w := newDurableWorkload(41_000_500, 8)
		dir := t.TempDir()
		dv, err := OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma,
			DurableOptions{SegmentBytes: 128, CheckpointEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range w.deltas {
			if _, err := dv.Apply(d.adds, d.deletes); err != nil {
				t.Fatal(err)
			}
		}
		dv.Close()
		segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
		if len(segs) < 2 {
			t.Fatalf("want ≥2 segments, have %d", len(segs))
		}
		b, err := os.ReadFile(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xFF
		if err := os.WriteFile(segs[0], b, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma, DurableOptions{})
		if !errors.Is(err, wal.ErrWALCorrupt) {
			t.Fatalf("want ErrWALCorrupt, got %v", err)
		}
		var ce *wal.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("want *wal.CorruptError, got %#v", err)
		}
	})
}

// TestDurableInvalidDeltaNotLogged: a delta ApplyDelta rejects must leave
// no trace — not in the head, not in the log — and the lineage continues
// as if it never happened, across a restart.
func TestDurableInvalidDeltaNotLogged(t *testing.T) {
	w := newDurableWorkload(41_000_600, 3)
	dir := t.TempDir()
	dv, err := OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dv.Apply(w.deltas[0].adds, w.deltas[0].deletes); err != nil {
		t.Fatal(err)
	}
	mark := dv.Epoch()
	if _, err := dv.Apply(nil, []int{1 << 20}); err == nil {
		t.Fatal("out-of-range delete accepted")
	}
	if _, err := dv.Apply([]relation.Tuple{{relation.String("x")}}, nil); err == nil {
		t.Fatal("arity-mismatched add accepted")
	}
	if dv.Epoch() != mark {
		t.Fatalf("invalid delta moved the head to %d", dv.Epoch())
	}
	if _, err := dv.Apply(w.deltas[1].adds, w.deltas[1].deletes); err != nil {
		t.Fatalf("valid delta after rejections: %v", err)
	}
	dv.Close()

	dv2, err := OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma, DurableOptions{})
	if err != nil {
		t.Fatalf("reopen after rejected deltas: %v", err)
	}
	defer dv2.Close()
	if dv2.Epoch() != mark+1 {
		t.Fatalf("reopened at epoch %d, want %d", dv2.Epoch(), mark+1)
	}
	checkState(t, "after rejections", dv2.Current(), w.expected[2])
	checkEquiv(t, "after rejections", dv2.Current(), w.sigma)
}
