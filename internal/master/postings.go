package master

import (
	"repro/internal/relation"
	"repro/internal/rule"
)

// This file implements the inverted-postings layer: per indexed master
// column, a (interned value id → ascending []tupleID) posting list, plus a
// per-rule pattern-support bitmap of the master tuples satisfying the
// rule's pattern cells on the λϕ-mapped lhs attributes. Both are built
// once at NewForRules.
//
// They serve the two §5 paths the full-key hash indexes cannot: the
// per-rule "does any master tuple support this rule's pattern" test
// (supportMap of region derivation — now a popcount done at build time)
// and condition (c) of the Σ_t[Z] derivation with a *partially* validated
// lhs, which previously scanned all of Dm per rule per round — the term
// that made per-round latency grow linearly in |Dm| (Fig. 12a/b). With
// postings, the partial-lhs test walks the smallest posting list of the
// validated attributes, filtered by the pattern bitmap, and falls back to
// the scan only when the best list is so unselective (≥ half of Dm) that
// scanning is no worse.

// postings is the inverted index over one master column: interned value
// id → ascending tuple ids through the copy-on-write layered map (see
// overlay.go).
type postings struct {
	col int // Rm position
	layered[uint32, int32]
}

// fork derives the next snapshot's view of the posting lists.
func (ps *postings) fork() *postings {
	return &postings{col: ps.col, layered: ps.layered.fork()}
}

// compatPlan is a rule's compiled compatibility plan.
type compatPlan struct {
	patBits  []uint64    // bitmap over tuple ids: pattern cells on λϕ(Xp ∩ X) hold
	patCount int         // popcount of patBits
	posts    []*postings // aligned with the rule's X/Xm lists
}

// buildPostings returns the posting list for column col, building and
// registering it on first request (and interning every value of the
// column, which is what makes ID-based probes against it sound).
func (d *Data) buildPostings(col int) *postings {
	for _, ps := range d.postings {
		if ps.col == col {
			return ps
		}
	}
	ps := &postings{col: col, layered: layered[uint32, int32]{base: make(map[uint32][]int32)}}
	for i, tm := range d.rel.Tuples() {
		id := d.syms.Intern(tm[col])
		ps.base[id] = append(ps.base[id], int32(i))
	}
	d.postings = append(d.postings, ps)
	return ps
}

// buildCompatPlan compiles ru's compatibility plan: postings for each Xm
// column and the pattern-support bitmap.
func (d *Data) buildCompatPlan(ru *rule.Rule) *compatPlan {
	x, xm := ru.LHSRef(), ru.LHSMRef()
	plan := &compatPlan{
		patBits: make([]uint64, (d.rel.Len()+63)/64),
		posts:   make([]*postings, len(x)),
	}
	for i := range x {
		plan.posts[i] = d.buildPostings(xm[i])
	}
	for id, tm := range d.rel.Tuples() {
		if patternCompatible(ru, tm) {
			plan.patBits[id>>6] |= 1 << (uint(id) & 63)
			plan.patCount++
		}
	}
	return plan
}

// patternCompatible reports tm[λϕ(Xp ∩ X)] ≈ tp[Xp ∩ X]: the master-side
// pattern test of §5.2 (patterns constrain t; on master tuples only the
// cells over lhs attributes carry over through λϕ).
func patternCompatible(ru *rule.Rule, tm relation.Tuple) bool {
	x, xm := ru.LHSRef(), ru.LHSMRef()
	tp := ru.Pattern()
	for i := range x {
		if cell, has := tp.CellFor(x[i]); has && !cell.Matches(tm[xm[i]]) {
			return false
		}
	}
	return true
}

// PatternSupported reports whether some master tuple satisfies ru's
// pattern cells on the λϕ-mapped lhs attributes — the per-rule
// master-support bit behind region derivation, precomputed at NewForRules
// (a popcount) with a scan fallback for rules outside the plan map.
func (d *Data) PatternSupported(ru *rule.Rule) bool {
	if plan, ok := d.compat[ru]; ok {
		return plan.patCount > 0
	}
	for _, tm := range d.rel.Tuples() {
		if patternCompatible(ru, tm) {
			return true
		}
	}
	return false
}

// CompatibleExists decides condition (c) of the Σ_t[Z] derivation (§5.2):
// is there a master tuple that agrees with t on the validated lhs
// attributes (t[x] = tm[λϕ(x)] for x ∈ X ∩ Z) and satisfies the rule's
// pattern cells on the λϕ-mapped lhs attributes? A fully validated lhs
// probes the hash index (O(1)); a partially validated one intersects
// posting lists smallest-first under the pattern bitmap, falling back to
// the Dm scan when the postings are degenerate.
func (d *Data) CompatibleExists(ru *rule.Rule, t relation.Tuple, zSet relation.AttrSet) bool {
	found, _ := d.compatible(ru, t, zSet)
	return found
}

// compatible is CompatibleExists plus whether the Dm-scan fallback ran —
// separated so tests can pin the adaptive fallback policy.
func (d *Data) compatible(ru *rule.Rule, t relation.Tuple, zSet relation.AttrSet) (found, scanned bool) {
	x := ru.LHSRef()
	plan := d.compat[ru]
	if zSet.HasAll(x) {
		// Fully validated lhs: one O(1) index probe on tm[Xm] = t[X], each
		// candidate checked against the pattern bitmap.
		for _, id := range d.MatchIDs(ru, t) {
			if plan != nil {
				if plan.patBits[id>>6]&(1<<(uint(id)&63)) != 0 {
					return true, false
				}
			} else if patternCompatible(ru, d.rel.Tuple(id)) {
				return true, false
			}
		}
		return false, false
	}
	if plan == nil {
		return d.compatibleScan(ru, t, zSet), true
	}
	// Partially validated lhs: pick the smallest posting list among the
	// validated attributes.
	var best []int32
	bestLen, constrained := -1, false
	for i, p := range x {
		if !zSet.Has(p) {
			continue
		}
		constrained = true
		id, ok := d.syms.ID(t[p])
		if !ok {
			return false, false // value absent from the master column
		}
		lst := plan.posts[i].get(id)
		if len(lst) == 0 {
			return false, false
		}
		if bestLen < 0 || len(lst) < bestLen {
			best, bestLen = lst, len(lst)
		}
	}
	if !constrained {
		// X ∩ Z = ∅: only the pattern constrains the master side.
		return plan.patCount > 0, false
	}
	if 2*bestLen >= d.rel.Len() {
		// Degenerate postings (the best list covers at least half of Dm):
		// a scan costs the same and avoids the per-id indirection.
		return d.compatibleScan(ru, t, zSet), true
	}
	xm := ru.LHSMRef()
	for _, id := range best {
		if plan.patBits[id>>6]&(1<<(uint(id)&63)) == 0 {
			continue
		}
		tm := d.rel.Tuple(int(id))
		ok := true
		for i, p := range x {
			if zSet.Has(p) && !t[p].Equal(tm[xm[i]]) {
				ok = false
				break
			}
		}
		if ok {
			return true, false
		}
	}
	return false, false
}

// compatibleScan is the naive O(|Dm|) fallback (and the reference the
// postings path is property-tested against in internal/suggest).
func (d *Data) compatibleScan(ru *rule.Rule, t relation.Tuple, zSet relation.AttrSet) bool {
	x, xm := ru.LHSRef(), ru.LHSMRef()
	tp := ru.Pattern()
	for _, tm := range d.rel.Tuples() {
		ok := true
		for i := range x {
			if zSet.Has(x[i]) && !t[x[i]].Equal(tm[xm[i]]) {
				ok = false
				break
			}
			if cell, has := tp.CellFor(x[i]); has && !cell.Matches(tm[xm[i]]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
