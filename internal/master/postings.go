package master

import (
	"repro/internal/relation"
	"repro/internal/rule"
)

// This file implements the inverted-postings layer: per indexed master
// column, a (interned value id → ascending []tupleID) posting list, plus a
// per-rule pattern-support bitmap of the master tuples satisfying the
// rule's pattern cells on the λϕ-mapped lhs attributes. Both are built
// once at NewForRules.
//
// They serve the two §5 paths the full-key hash indexes cannot: the
// per-rule "does any master tuple support this rule's pattern" test
// (supportMap of region derivation — now a popcount done at build time)
// and condition (c) of the Σ_t[Z] derivation with a *partially* validated
// lhs, which previously scanned all of Dm per rule per round — the term
// that made per-round latency grow linearly in |Dm| (Fig. 12a/b). With
// postings, the partial-lhs test walks the smallest posting list of the
// validated attributes, filtered by the pattern bitmap, and falls back to
// the scan only when the best lists are so unselective (≥ half of Dm
// summed across shards) that scanning is no worse.
//
// Posting lists are sharded like the hash indexes (see shard.go): each
// shard holds the ids of its own tuples, ascending. The partial-lhs walk
// fans out shard by shard, picking each shard's smallest validated list
// independently (a shard with a locally selective attribute walks that
// one even when another shard's copy is long) and early-exits on the
// first compatible tuple. The pattern bitmap stays GLOBAL — one dense
// id-indexed array per rule, not one per shard: a per-shard copy would
// multiply memory by P for identical information (ids are global), while
// the parallel build fills disjoint id ranges of the single array and
// deltas flip single bits under the writer lock that serializes them
// anyway.

// postings is the inverted index over one master column: interned value
// id → ascending tuple ids, one copy-on-write layered map per shard.
type postings struct {
	col    int // Rm position
	shards []layered[uint32, int32]
}

// fork derives the next snapshot's view of the posting lists.
func (ps *postings) fork() *postings {
	np := &postings{col: ps.col, shards: make([]layered[uint32, int32], len(ps.shards))}
	for s := range ps.shards {
		np.shards[s] = ps.shards[s].fork()
	}
	return np
}

// size returns the total number of ids across all shards (tests, stats).
func (ps *postings) size() int {
	n := 0
	for s := range ps.shards {
		n += ps.shards[s].size()
	}
	return n
}

// compatPlan is a rule's compiled compatibility plan.
type compatPlan struct {
	patBits  []uint64    // bitmap over global tuple ids: pattern cells on λϕ(Xp ∩ X) hold
	patCount int         // popcount of patBits
	posts    []*postings // aligned with the rule's X/Xm lists
}

// patternCompatible reports tm[λϕ(Xp ∩ X)] ≈ tp[Xp ∩ X]: the master-side
// pattern test of §5.2 (patterns constrain t; on master tuples only the
// cells over lhs attributes carry over through λϕ).
func patternCompatible(ru *rule.Rule, tm relation.Tuple) bool {
	x, xm := ru.LHSRef(), ru.LHSMRef()
	tp := ru.Pattern()
	for i := range x {
		if cell, has := tp.CellFor(x[i]); has && !cell.Matches(tm[xm[i]]) {
			return false
		}
	}
	return true
}

// PatternSupported reports whether some master tuple satisfies ru's
// pattern cells on the λϕ-mapped lhs attributes — the per-rule
// master-support bit behind region derivation, precomputed at NewForRules
// (a popcount) with a scan fallback for rules outside the plan map.
func (d *Data) PatternSupported(ru *rule.Rule) bool {
	if plan, ok := d.compat[ru]; ok {
		return plan.patCount > 0
	}
	for _, tm := range d.rel.Tuples() {
		if patternCompatible(ru, tm) {
			return true
		}
	}
	return false
}

// CompatibleExists decides condition (c) of the Σ_t[Z] derivation (§5.2):
// is there a master tuple that agrees with t on the validated lhs
// attributes (t[x] = tm[λϕ(x)] for x ∈ X ∩ Z) and satisfies the rule's
// pattern cells on the λϕ-mapped lhs attributes? A fully validated lhs
// probes the hash index (O(1)); a partially validated one intersects
// posting lists smallest-first per shard under the pattern bitmap,
// falling back to the Dm scan when the postings are degenerate.
func (d *Data) CompatibleExists(ru *rule.Rule, t relation.Tuple, zSet relation.AttrSet) bool {
	found, _ := d.compatible(ru, t, zSet)
	return found
}

// compatible is CompatibleExists plus whether the Dm-scan fallback ran —
// separated so tests can pin the adaptive fallback policy.
func (d *Data) compatible(ru *rule.Rule, t relation.Tuple, zSet relation.AttrSet) (found, scanned bool) {
	x := ru.LHSRef()
	plan := d.compat[ru]
	if zSet.HasAll(x) {
		// Fully validated lhs: one O(1) index probe on tm[Xm] = t[X] per
		// shard with early exit, each candidate checked against the
		// pattern bitmap.
		if plan != nil {
			if idx, ok := d.plans[ru]; ok {
				h, ok := d.hasher.HashTuple(t, x)
				if !ok {
					return false, false
				}
				xm := ru.LHSMRef()
				for s := range idx.shards {
					for _, id := range idx.shards[s].get(h) {
						if plan.patBits[id>>6]&(1<<(uint(id)&63)) != 0 &&
							t.ProjectMatches(x, d.rel.Tuple(id), xm) {
							return true, false
						}
					}
				}
				return false, false
			}
		}
		for _, id := range d.MatchIDs(ru, t) {
			if plan != nil {
				if plan.patBits[id>>6]&(1<<(uint(id)&63)) != 0 {
					return true, false
				}
			} else if patternCompatible(ru, d.rel.Tuple(id)) {
				return true, false
			}
		}
		return false, false
	}
	if plan == nil {
		return d.compatibleScan(ru, t, zSet), true
	}
	// Partially validated lhs. Resolve the validated attributes' interned
	// ids once (stack buffer — |X| is 1-2 in practice): an unresolvable
	// value means no master tuple can agree on it, and X ∩ Z = ∅ means
	// only the pattern constrains the master side.
	var idbuf [16]uint32
	ids := idbuf[:]
	if len(x) > len(idbuf) {
		ids = make([]uint32, len(x))
	}
	constrained := false
	for i, p := range x {
		if !zSet.Has(p) {
			continue
		}
		id, ok := d.syms.ID(t[p])
		if !ok {
			return false, false // value absent from the master column
		}
		ids[i] = id
		constrained = true
	}
	if !constrained {
		return plan.patCount > 0, false
	}
	// Pass 1: per shard, the length of the smallest posting list among
	// the validated attributes (0 when some validated value is absent
	// from that shard — the whole shard is then a guaranteed miss).
	// Summed across shards this is the number of candidates pass 2 will
	// walk; when it reaches half of Dm a scan costs the same and avoids
	// the per-id indirection.
	totalBest := 0
	for s := 0; s < d.nshards; s++ {
		bestLen := -1
		for i, p := range x {
			if !zSet.Has(p) {
				continue
			}
			l := len(plan.posts[i].shards[s].get(ids[i]))
			if l == 0 {
				bestLen = 0
				break
			}
			if bestLen < 0 || l < bestLen {
				bestLen = l
			}
		}
		if bestLen > 0 {
			totalBest += bestLen
		}
	}
	if 2*totalBest >= d.rel.Len() {
		// Degenerate postings (the best lists cover at least half of Dm):
		// a scan costs the same and avoids the per-id indirection.
		return d.compatibleScan(ru, t, zSet), true
	}
	// Pass 2: walk each shard's smallest validated list under the pattern
	// bitmap, early-exiting on the first compatible tuple.
	xm := ru.LHSMRef()
	for s := 0; s < d.nshards; s++ {
		var best []int32
		bestLen := -1
		for i, p := range x {
			if !zSet.Has(p) {
				continue
			}
			lst := plan.posts[i].shards[s].get(ids[i])
			if len(lst) == 0 {
				bestLen = 0
				break
			}
			if bestLen < 0 || len(lst) < bestLen {
				best, bestLen = lst, len(lst)
			}
		}
		if bestLen <= 0 {
			continue
		}
		for _, id := range best {
			if plan.patBits[id>>6]&(1<<(uint(id)&63)) == 0 {
				continue
			}
			tm := d.rel.Tuple(int(id))
			ok := true
			for i, p := range x {
				if zSet.Has(p) && !t[p].Equal(tm[xm[i]]) {
					ok = false
					break
				}
			}
			if ok {
				return true, false
			}
		}
	}
	return false, false
}

// compatibleScan is the naive O(|Dm|) fallback (and the reference the
// postings path is property-tested against in internal/suggest).
func (d *Data) compatibleScan(ru *rule.Rule, t relation.Tuple, zSet relation.AttrSet) bool {
	x, xm := ru.LHSRef(), ru.LHSMRef()
	tp := ru.Pattern()
	for _, tm := range d.rel.Tuples() {
		ok := true
		for i := range x {
			if zSet.Has(x[i]) && !t[x[i]].Equal(tm[xm[i]]) {
				ok = false
				break
			}
			if cell, has := tp.CellFor(x[i]); has && !cell.Matches(tm[xm[i]]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
