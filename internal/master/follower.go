package master

// Follower is the replica half of epoch shipping: it publishes the
// leader's epoch lineage from shipped WAL records, through the same
// guarded path recovery uses — derive via ApplyDelta, check the produced
// epoch against the record's, then publishDerived. Because delta
// application is deterministic, a follower that has applied records
// 1..E holds a head probe-for-probe identical to the leader's at E, so
// session tokens minted on any node resume on any other.
//
// A Follower owns no transport. The shipping loop (pkg/certainfix) feeds
// it records from wherever they come — an HTTP stream, a shared WAL
// directory via wal.OpenReader — and reacts to the two typed conditions:
// ErrReplicaGap (fell behind a truncation: Reset onto the leader's
// checkpoint and keep tailing) and ErrDivergence (the lineages
// contradict each other: stop, a human is needed).

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/wal"
)

// ErrReplicaGap is the sentinel matched by ApplyRecord when the shipped
// record does not connect to the follower's head — epochs in between are
// missing, typically because the leader truncated its WAL behind a
// checkpoint while the follower was down. Recoverable: catch up from the
// leader's checkpoint (Reset), then resume tailing.
var ErrReplicaGap = errors.New("master: follower missing epochs before shipped record")

// ErrDivergence is the sentinel matched by a *DivergenceError: the
// shipped record cannot be a successor of the follower's head. Unlike a
// gap this is not recoverable by catching up — the two lineages disagree
// about the same epoch, so the follower refuses to publish anything
// further.
var ErrDivergence = errors.New("master: follower diverged from leader lineage")

// DivergenceError reports why a shipped record contradicts the
// follower's lineage. It matches ErrDivergence through errors.Is.
type DivergenceError struct {
	// Epoch is the shipped record's epoch.
	Epoch uint64
	// Head is the follower's head epoch at the time.
	Head uint64
	// Msg says what contradicted what.
	Msg string
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("master: follower at epoch %d diverged applying shipped epoch %d: %s", e.Head, e.Epoch, e.Msg)
}

// Unwrap makes the error match ErrDivergence through errors.Is.
func (e *DivergenceError) Unwrap() error { return ErrDivergence }

// Follower publishes a leader's lineage into a Versioned that readers
// (derivers, sessions, the daemon) use exactly like a local one.
// ApplyRecord/Reset are serialized internally; readers are lock-free as
// always.
type Follower struct {
	ver *Versioned

	mu      sync.Mutex
	applied uint64 // records applied since construction or last Reset
}

// NewFollower starts a follower whose lineage begins at base — the
// leader's checkpoint image, or a shared initial snapshot whose epoch
// both sides agree on. The embedded Versioned serves reads immediately.
func NewFollower(base *Data, history int) *Follower {
	f := &Follower{ver: NewVersioned(base)}
	if history > 0 {
		f.ver.SetHistory(history)
	}
	return f
}

// Versioned exposes the snapshot ring for readers. Do NOT call its Apply:
// a follower's lineage is the leader's — local writes would fork it, and
// the next shipped record would be refused as divergence.
func (f *Follower) Versioned() *Versioned { return f.ver }

// Current returns the latest published snapshot.
func (f *Follower) Current() *Data { return f.ver.Current() }

// Epoch returns the latest published epoch — the follower's replication
// position. Lag is the leader's epoch minus this.
func (f *Follower) Epoch() uint64 { return f.ver.Epoch() }

// Applied reports how many records have been applied since construction
// or the last Reset.
func (f *Follower) Applied() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// ApplyRecord applies one shipped WAL record and publishes the snapshot
// it derives.
//
//   - epoch ≤ head: already applied (a reconnect replayed overlap) —
//     skipped silently, (false, nil).
//   - epoch = head+1: applied through ApplyDelta with the produced epoch
//     checked against the record's — (true, nil) on success.
//   - epoch > head+1: the follower missed records — ErrReplicaGap.
//   - the delta does not apply, or produces the wrong epoch: a
//     *DivergenceError matching ErrDivergence; nothing is published.
func (f *Follower) ApplyRecord(rec wal.Record) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	head := f.ver.Epoch()
	switch {
	case rec.Epoch <= head:
		return false, nil
	case rec.Epoch > head+1:
		return false, fmt.Errorf("master: follower at epoch %d shipped epoch %d: %w", head, rec.Epoch, ErrReplicaGap)
	}
	next, err := f.ver.Current().ApplyDelta(rec.Adds, rec.Deletes)
	if err != nil {
		// The leader applied this exact delta successfully; if we cannot,
		// our state is not the leader's state at head.
		return false, &DivergenceError{Epoch: rec.Epoch, Head: head,
			Msg: fmt.Sprintf("delta does not apply: %v", err)}
	}
	if next.Epoch() != rec.Epoch {
		return false, &DivergenceError{Epoch: rec.Epoch, Head: head,
			Msg: fmt.Sprintf("delta produced epoch %d", next.Epoch())}
	}
	// Root audit: an authenticated leader stamps every record with the
	// Merkle root its delta produces. If our incrementally maintained root
	// disagrees, the bytes we applied are not the bytes the leader applied
	// — even though the delta itself went through cleanly — and nothing
	// after this epoch can be trusted. Detected HERE, at the exact epoch
	// the lineages fork, not whenever a probe happens to notice.
	if root, ok := next.AuthRoot(); ok && len(rec.Root) == 32 && string(rec.Root) != string(root[:]) {
		return false, &DivergenceError{Epoch: rec.Epoch, Head: head,
			Msg: fmt.Sprintf("applied root %s does not match leader root %x", root, rec.Root)}
	}
	f.ver.publishDerived(next)
	f.applied++
	return true, nil
}

// Reset rebases the follower onto a new base snapshot — the leader's
// checkpoint image, after an ErrReplicaGap — discarding every retained
// epoch. Sessions pinned to discarded epochs fail their resume with
// ErrEpochEvicted, the same contract the bounded ring already imposes. A
// base older than the current head is refused: catching up must never
// move the published lineage backwards under a reader.
func (f *Follower) Reset(base *Data) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if head := f.ver.Epoch(); base.Epoch() < head {
		return fmt.Errorf("master: follower reset to epoch %d behind head %d refused", base.Epoch(), head)
	}
	f.ver.resetTo(base)
	f.applied = 0
	return nil
}
