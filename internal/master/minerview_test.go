package master_test

import (
	"testing"

	"repro/internal/master"
	"repro/internal/relation"
)

func minerRel() *relation.Relation {
	schema := relation.StringSchema("T", "a", "b", "c")
	rel := relation.NewRelation(schema)
	rows := [][3]string{
		{"x", "1", "p"},
		{"y", "2", "p"},
		{"x", "1", "q"},
		{"z", "2", "p"},
		{"x", "1", "q"},
	}
	for _, r := range rows {
		rel.MustAppend(relation.Tuple{relation.String(r[0]), relation.String(r[1]), relation.String(r[2])})
	}
	return rel
}

func TestColumnIDsRequiresPostings(t *testing.T) {
	dm := master.New(minerRel())
	if _, ok := dm.ColumnIDs(0); ok {
		t.Fatal("ColumnIDs should report missing postings before IndexPostings")
	}
	dm.IndexPostings(0)
	if _, ok := dm.ColumnIDs(0); !ok {
		t.Fatal("ColumnIDs should succeed after IndexPostings")
	}
	if _, ok := dm.ColumnIDs(1); ok {
		t.Fatal("column 1 was never indexed")
	}
}

// ColumnIDs must reproduce the relation's equality structure — ids equal
// iff cell values equal — and agree with SymbolValues, for every shard
// count.
func TestColumnIDsEqualityStructure(t *testing.T) {
	rel := minerRel()
	for _, shards := range []int{1, 2, 7, 16} {
		dm := master.New(rel, master.WithShards(shards))
		dm.IndexPostings(0, 1, 2)
		vals := dm.SymbolValues()
		for col := 0; col < 3; col++ {
			ids, ok := dm.ColumnIDs(col)
			if !ok {
				t.Fatalf("shards=%d col=%d: no postings", shards, col)
			}
			if len(ids) != rel.Len() {
				t.Fatalf("shards=%d col=%d: len %d want %d", shards, col, len(ids), rel.Len())
			}
			for i := 0; i < rel.Len(); i++ {
				if int(ids[i]) >= dm.SymbolCount() {
					t.Fatalf("shards=%d: id %d out of symbol range %d", shards, ids[i], dm.SymbolCount())
				}
				if !vals[ids[i]].Equal(rel.Tuple(i)[col]) {
					t.Fatalf("shards=%d col=%d row=%d: SymbolValues disagrees with cell", shards, col, i)
				}
				for j := i + 1; j < rel.Len(); j++ {
					sameVal := rel.Tuple(i)[col].Equal(rel.Tuple(j)[col])
					sameID := ids[i] == ids[j]
					if sameVal != sameID {
						t.Fatalf("shards=%d col=%d rows %d,%d: value equality %v but id equality %v",
							shards, col, i, j, sameVal, sameID)
					}
				}
			}
		}
	}
}

// Postings built by IndexPostings must survive ApplyDelta like any other
// registered postings: a derived snapshot's ColumnIDs reflect the delta.
func TestIndexPostingsSurviveDelta(t *testing.T) {
	rel := minerRel()
	dm := master.New(rel)
	dm.IndexPostings(0, 1, 2)
	add := relation.Tuple{relation.String("w"), relation.String("3"), relation.String("q")}
	d2, err := dm.ApplyDelta([]relation.Tuple{add}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	ids, ok := d2.ColumnIDs(0)
	if !ok {
		t.Fatal("derived snapshot lost postings")
	}
	if len(ids) != d2.Len() {
		t.Fatalf("len %d want %d", len(ids), d2.Len())
	}
	vals := d2.SymbolValues()
	for i := 0; i < d2.Len(); i++ {
		if !vals[ids[i]].Equal(d2.Tuple(i)[0]) {
			t.Fatalf("row %d: id does not decode to cell after delta", i)
		}
	}
}
