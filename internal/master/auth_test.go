package master

// Authenticated epochs at the master level: the incremental Merkle root
// maintained by ApplyDelta must equal a from-scratch authtree.Build at
// every epoch; arena images round-trip the commitment (and version-1
// images load as explicitly unauthenticated); corrupt auth sections are
// rejected with typed *SnapshotError values; durable replay verifies
// recovered roots against logged roots; and a follower fed one corrupted
// delta detects the root mismatch at exactly that epoch.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/authtree"
	"repro/internal/relation"
	"repro/internal/wal"
)

func mustRoot(t testing.TB, d *Data) authtree.Hash {
	t.Helper()
	root, ok := d.AuthRoot()
	if !ok {
		t.Fatal("snapshot is not authenticated")
	}
	return root
}

func TestWithAuthBuildsCommitment(t *testing.T) {
	d0, sigma, _ := deltaFixture(t, 20)
	if d0.Authenticated() {
		t.Fatal("default build is authenticated")
	}
	if _, ok := d0.AuthRoot(); ok {
		t.Fatal("AuthRoot ok on unauthenticated snapshot")
	}
	if st := d0.MemStats(); st.Authenticated || st.Root != "" {
		t.Fatalf("unauthenticated MemStats reports auth: %+v", st)
	}

	da := MustNewForRules(d0.Relation(), sigma, WithAuth())
	want := authtree.Build(da.Relation()).Root()
	if got := mustRoot(t, da); got != want {
		t.Fatalf("WithAuth root %s, rebuild root %s", got, want)
	}

	// Authenticate is the in-place equivalent, and idempotent.
	d0.Authenticate()
	if got := mustRoot(t, d0); got != want {
		t.Fatalf("Authenticate root %s, rebuild root %s", got, want)
	}
	d0.Authenticate()
	if got := mustRoot(t, d0); got != want {
		t.Fatalf("second Authenticate changed root to %s", got)
	}
	if st := d0.MemStats(); !st.Authenticated || st.Root != want.String() {
		t.Fatalf("authenticated MemStats = %v / %q, want true / %q", st.Authenticated, st.Root, want)
	}

	// Every tuple proves against the root.
	for id := 0; id < da.Len(); id++ {
		p, err := da.ProveTuple(id)
		if err != nil {
			t.Fatalf("ProveTuple(%d): %v", id, err)
		}
		if err := authtree.VerifyInclusion(want, da.Tuple(id), p); err != nil {
			t.Fatalf("proof for tuple %d rejected: %v", id, err)
		}
	}
}

// TestAuthIncrementalRootProperty is the incremental-vs-rebuild oracle
// over randomized delta programs: after every ApplyDelta the maintained
// root must equal authtree.Build over the materialized relation.
func TestAuthIncrementalRootProperty(t *testing.T) {
	const instances = 12
	const steps = 8
	for seed := 0; seed < instances; seed++ {
		rng := rand.New(rand.NewSource(int64(97_000_000 + seed)))
		cur, _, rm, vals := randomDeltaInstance(rng)
		cur.Authenticate()
		for step := 0; step < steps; step++ {
			adds, deletes := randomDelta(rng, cur.Len(), rm.Arity(), vals)
			next, err := cur.ApplyDelta(adds, deletes)
			if err != nil {
				t.Fatalf("seed %d step %d: ApplyDelta: %v", seed, step, err)
			}
			if !next.Authenticated() {
				t.Fatalf("seed %d step %d: delta dropped the commitment", seed, step)
			}
			got := mustRoot(t, next)
			if want := authtree.Build(next.Relation()).Root(); got != want {
				t.Fatalf("seed %d step %d epoch %d: incremental root %s, rebuild root %s",
					seed, step, next.Epoch(), got, want)
			}
			cur = next
		}
		// Spot-check proofs against the final snapshot.
		root := mustRoot(t, cur)
		for id := 0; id < cur.Len() && id < 5; id++ {
			p, err := cur.ProveTuple(id)
			if err != nil {
				t.Fatalf("seed %d: ProveTuple(%d): %v", seed, id, err)
			}
			if err := authtree.VerifyInclusion(root, cur.Tuple(id), p); err != nil {
				t.Fatalf("seed %d: proof for tuple %d rejected: %v", seed, id, err)
			}
		}
	}
}

func TestArenaAuthRoundTrip(t *testing.T) {
	d0, sigma, _ := deltaFixture(t, 33)
	da := MustNewForRules(d0.Relation(), sigma, WithAuth())
	want := mustRoot(t, da)

	ld := loadArenaOrFatal(t, saveArenaBytes(t, da, sigma), sigma)
	if !ld.Authenticated() {
		t.Fatal("authenticated image loaded unauthenticated")
	}
	if got := mustRoot(t, ld); got != want {
		t.Fatalf("loaded root %s, saved root %s", got, want)
	}
	if st := ld.MemStats(); !st.Authenticated || st.Root != want.String() {
		t.Fatalf("loaded MemStats = %v / %q, want true / %q", st.Authenticated, st.Root, want)
	}

	// Unauthenticated snapshots round-trip with the flag off.
	ld2 := loadArenaOrFatal(t, saveArenaBytes(t, d0, sigma), sigma)
	if ld2.Authenticated() {
		t.Fatal("unauthenticated image loaded authenticated")
	}
}

// downConvertV1 rewrites a version-2 arena image as the version-1 format
// that predates the auth section: drop the 7th section-offset slot from
// the header, drop the auth section from the tail, and patch version,
// section offsets (the payload moved down 8 bytes) and file size.
func downConvertV1(t *testing.T, img []byte) []byte {
	t.Helper()
	authOff := int(binary.LittleEndian.Uint64(img[hdrSections+8*secAuth:]))
	out := make([]byte, 0, len(img)-8)
	out = append(out, img[:arenaHeaderSizeV1]...)
	out = append(out, img[arenaHeaderSize:authOff]...)
	binary.LittleEndian.PutUint32(out[hdrVersion:], arenaVersionV1)
	binary.LittleEndian.PutUint64(out[hdrFileSize:], uint64(len(out)))
	for s := 0; s < numSectionsV1; s++ {
		off := binary.LittleEndian.Uint64(out[hdrSections+8*s:])
		binary.LittleEndian.PutUint64(out[hdrSections+8*s:], off-8)
	}
	return out
}

// TestArenaV1ImageLoadsUnauthenticated pins backward compatibility: a
// pre-auth image (synthesized by down-converting a v2 image) loads with
// the same probe behaviour and reports itself unauthenticated.
func TestArenaV1ImageLoadsUnauthenticated(t *testing.T) {
	d0, sigma, _ := deltaFixture(t, 25)
	da := MustNewForRules(d0.Relation(), sigma, WithAuth())
	v1 := downConvertV1(t, saveArenaBytes(t, da, sigma))

	ld := loadArenaOrFatal(t, v1, sigma)
	if ld.Authenticated() {
		t.Fatal("version-1 image loaded authenticated")
	}
	if st := ld.MemStats(); st.Authenticated || st.Root != "" {
		t.Fatalf("version-1 MemStats reports auth: %+v", st)
	}
	if ld.Len() != da.Len() || ld.Epoch() != da.Epoch() {
		t.Fatalf("version-1 image len/epoch %d/%d, want %d/%d", ld.Len(), ld.Epoch(), da.Len(), da.Epoch())
	}
	vals := []string{key(0), val(0), key(7), val(7), key(24), "zz"}
	checkProbesAgree(t, "v1 image", da, ld, sigma, vals, 200)
}

func TestArenaAuthSectionCorruption(t *testing.T) {
	d0, sigma, _ := deltaFixture(t, 18)
	da := MustNewForRules(d0.Relation(), sigma, WithAuth())
	img := saveArenaBytes(t, da, sigma)
	authOff := int(binary.LittleEndian.Uint64(img[hdrSections+8*secAuth:]))

	expectAuthError := func(t *testing.T, img []byte) {
		t.Helper()
		_, err := LoadArenaBytes(img, sigma)
		if err == nil {
			t.Fatal("corrupt auth section loaded")
		}
		var se *SnapshotError
		if !errors.As(err, &se) || !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("error is not a *SnapshotError matching ErrBadSnapshot: %v", err)
		}
		if se.Section != "auth" && se.Section != "header" {
			t.Fatalf("error blames section %q: %v", se.Section, err)
		}
	}

	t.Run("root-bit-flip", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[authOff+8] ^= 0x01 // first byte of the stored root
		expectAuthError(t, bad)
	})
	t.Run("invalid-flag", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		binary.LittleEndian.PutUint32(bad[authOff:], 7)
		expectAuthError(t, bad)
	})
	t.Run("truncated-section", func(t *testing.T) {
		bad := append([]byte(nil), img[:authOff+8]...) // flag+pad survive, root cut
		binary.LittleEndian.PutUint64(bad[hdrFileSize:], uint64(len(bad)))
		expectAuthError(t, bad)
	})
}

// TestDurableAuthRootRecovery proves the root survives the durable
// lineage: a crash-free close and reopen with Auth recovers the same
// root the live lineage last published.
func TestDurableAuthRootRecovery(t *testing.T) {
	w := newDurableWorkload(77_000_001, 6)
	dir := t.TempDir()
	opts := w.opts(wal.OS)
	opts.Auth = true

	dv, err := OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range w.deltas {
		if _, err := dv.Apply(d.adds, d.deletes); err != nil {
			t.Fatal(err)
		}
	}
	want := mustRoot(t, dv.Current())
	wantEpoch := dv.Current().Epoch()
	if err := dv.Close(); err != nil {
		t.Fatal(err)
	}

	dv2, err := OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer dv2.Close()
	head := dv2.Current()
	if head.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", head.Epoch(), wantEpoch)
	}
	if got := mustRoot(t, head); got != want {
		t.Fatalf("recovered root %s, want %s", got, want)
	}
	if want := authtree.Build(head.Relation()).Root(); mustRoot(t, head) != want {
		t.Fatalf("recovered root does not match rebuild root %s", want)
	}
}

// TestDurableReplayRootVerification pins the recompute-and-verify on the
// replay path: a logged record whose Root disagrees with what the delta
// actually produces fails recovery, and a correct Root passes it.
func TestDurableReplayRootVerification(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	d0, sigma, rm, vals := randomDeltaInstance(rng)
	adds, deletes := randomDelta(rng, d0.Len(), rm.Arity(), vals)

	// The root this delta really produces, computed offline.
	dAuth := MustNewForRules(d0.Relation(), sigma, WithAuth())
	next, err := dAuth.ApplyDelta(adds, deletes)
	if err != nil {
		t.Fatal(err)
	}
	trueRoot := mustRoot(t, next)

	writeLog := func(t *testing.T, dir string, root []byte) {
		t.Helper()
		lg, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec := wal.Record{Epoch: d0.Epoch() + 1, Adds: adds, Deletes: deletes, Root: root}
		if err := lg.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := lg.Close(); err != nil {
			t.Fatal(err)
		}
	}
	open := func(dir string) (*DurableVersioned, error) {
		base := MustNewForRules(d0.Relation(), sigma)
		return OpenDurable(dir, func() (*Data, error) { return base, nil }, sigma,
			DurableOptions{Auth: true})
	}

	t.Run("wrong-root-rejected", func(t *testing.T) {
		dir := t.TempDir()
		lie := make([]byte, 32)
		for i := range lie {
			lie[i] = 0xAA
		}
		writeLog(t, dir, lie)
		if _, err := open(dir); err == nil {
			t.Fatal("recovery accepted a record with a lying root")
		} else if !strings.Contains(err.Error(), "does not match logged root") {
			t.Fatalf("unexpected recovery error: %v", err)
		}
	})
	t.Run("correct-root-accepted", func(t *testing.T) {
		dir := t.TempDir()
		writeLog(t, dir, append([]byte(nil), trueRoot[:]...))
		dv, err := open(dir)
		if err != nil {
			t.Fatalf("recovery rejected a truthful root: %v", err)
		}
		defer dv.Close()
		if got := mustRoot(t, dv.Current()); got != trueRoot {
			t.Fatalf("recovered root %s, want %s", got, trueRoot)
		}
	})
}

// TestFollowerDetectsCorruptedDelta is the acceptance scenario: an
// authenticated follower fed a record whose delta was corrupted in
// flight — still a perfectly applicable delta, just not the leader's —
// must fail with a root-mismatch DivergenceError at exactly that epoch,
// publish nothing, and proceed normally once given the real record.
func TestFollowerDetectsCorruptedDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(9_000_009))
	leader, _, rm, vals := randomDeltaInstance(rng)
	leader.Authenticate()

	// The leader's shipped lineage: four records, each with ≥1 add so
	// there is a cell to corrupt, stamped with the produced root.
	const nRecords = 4
	records := make([]wal.Record, 0, nRecords)
	lead := leader
	for i := 0; i < nRecords; i++ {
		adds := []relation.Tuple{randomMasterTuple(rng, rm.Arity(), vals)}
		var deletes []int
		if lead.Len() > 0 {
			deletes = []int{rng.Intn(lead.Len())}
		}
		next, err := lead.ApplyDelta(adds, deletes)
		if err != nil {
			t.Fatal(err)
		}
		root := mustRoot(t, next)
		records = append(records, wal.Record{
			Epoch:   next.Epoch(),
			Adds:    adds,
			Deletes: deletes,
			Root:    append([]byte(nil), root[:]...),
		})
		lead = next
	}

	f := NewFollower(leader, 8)
	for _, rec := range records[:2] {
		if ok, err := f.ApplyRecord(rec); err != nil || !ok {
			t.Fatalf("clean record %d: ok=%v err=%v", rec.Epoch, ok, err)
		}
	}

	// Corrupt record 2's delta but keep the leader's root claim.
	evil := records[2]
	evil.Adds = []relation.Tuple{evil.Adds[0].Clone()}
	evil.Adds[0][0] = relation.String("tampered")
	before := f.Epoch()
	ok, err := f.ApplyRecord(evil)
	if ok || err == nil {
		t.Fatalf("corrupted delta applied: ok=%v err=%v", ok, err)
	}
	var de *DivergenceError
	if !errors.As(err, &de) || !errors.Is(err, ErrDivergence) {
		t.Fatalf("error is not a *DivergenceError matching ErrDivergence: %v", err)
	}
	if de.Epoch != evil.Epoch {
		t.Fatalf("divergence detected at epoch %d, corruption was at %d", de.Epoch, evil.Epoch)
	}
	if !strings.Contains(de.Msg, "does not match leader root") {
		t.Fatalf("divergence is not a root mismatch: %v", de)
	}
	if f.Epoch() != before {
		t.Fatalf("follower advanced %d → %d on a corrupted delta", before, f.Epoch())
	}

	// The genuine records still apply, converging on the leader's root.
	for _, rec := range records[2:] {
		if ok, err := f.ApplyRecord(rec); err != nil || !ok {
			t.Fatalf("record %d after recovery: ok=%v err=%v", rec.Epoch, ok, err)
		}
	}
	if got, want := mustRoot(t, f.Current()), mustRoot(t, lead); got != want {
		t.Fatalf("follower root %s, leader root %s", got, want)
	}
}

// BenchmarkApplyDeltaAuth is BenchmarkApplyDelta with the commitment
// maintained — the incremental O(delta·depth) root update whose overhead
// the perf gate bounds against the unauthenticated baselines.
func BenchmarkApplyDeltaAuth(b *testing.B) {
	for _, n := range []int{600, 6_000, 60_000} {
		rel, sigma := benchMasterRelation(n)
		d0 := MustNewForRules(rel, sigma, WithAuth())
		rng := rand.New(rand.NewSource(7))
		add := []relation.Tuple{benchMasterTuple(rng, n+1)}
		del := []int{n / 2}
		b.Run(fmt.Sprintf("Dm=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := d0.ApplyDelta(add, del); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
