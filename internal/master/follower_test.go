package master

// Follower replication at the master level: the stats split between
// checkpoint and truncation failures, the ApplyRecord guard ladder
// (skip / apply / gap / divergence), and the convergence property —
// a follower tailing a live leader's WAL directory through
// wal.OpenReader, starting mid-storm so the checkpoint catch-up path
// runs, must end probe-for-probe identical to the leader.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/wal"
)

// removeFailFS injects wal.FS Remove failures — the transient
// disk-janitoring error that must surface as TruncateFailures, never as
// CheckpointFailures and never as a poisoned writer.
type removeFailFS struct {
	wal.FS
	failing atomic.Bool
}

func (f *removeFailFS) Remove(name string) error {
	if f.failing.Load() {
		return fmt.Errorf("remove %s: injected EIO", name)
	}
	return f.FS.Remove(name)
}

// TestDurableTruncateFailureStatSplit pins the healthz-lies regression:
// a checkpoint whose arena durably renamed but whose WAL truncation
// failed used to count as a CheckpointFailure. It must count as a
// TruncateFailure, advance CheckpointEpoch, and leave Apply working.
func TestDurableTruncateFailureStatSplit(t *testing.T) {
	w := newDurableWorkload(42_000_007, 8)
	fsys := &removeFailFS{FS: wal.OS}
	dir := t.TempDir()
	dv, err := OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma, w.opts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Close()

	fsys.failing.Store(true)
	for _, d := range w.deltas {
		if _, err := dv.Apply(d.adds, d.deletes); err != nil {
			t.Fatalf("apply with failing truncation: %v", err)
		}
	}
	st := dv.Durability()
	if st.TruncateFailures == 0 {
		t.Fatal("failing Remove produced no TruncateFailures")
	}
	if st.CheckpointFailures != 0 {
		t.Fatalf("durable checkpoints reported as failed: CheckpointFailures %d", st.CheckpointFailures)
	}
	if st.CheckpointEpoch == w.base.Epoch() {
		t.Fatal("CheckpointEpoch never advanced despite durable arenas")
	}
	segsStuck := st.WAL.Segments

	// The failure is transient: once Remove works again, an explicit
	// checkpoint truncates everything the stuck ones could not.
	fsys.failing.Store(false)
	if err := dv.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after Remove recovered: %v", err)
	}
	if st := dv.Durability(); st.WAL.Segments >= segsStuck {
		t.Fatalf("retried truncation removed nothing: %d → %d segments", segsStuck, st.WAL.Segments)
	}

	// And the lineage is intact end to end.
	checkState(t, "head after truncate failures", dv.Current(), w.expected[len(w.deltas)])
	checkEquiv(t, "head after truncate failures", dv.Current(), w.sigma)
}

// TestFollowerApplyRecordGuards pins the guard ladder: duplicates are
// skipped, gaps are ErrReplicaGap, an inapplicable delta is
// ErrDivergence, and Reset refuses to move the lineage backwards.
func TestFollowerApplyRecordGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d0, _, rm, vals := randomDeltaInstance(rng)
	f := NewFollower(d0, 4)
	head := d0.Epoch()

	adds, dels := randomDelta(rng, d0.Len(), rm.Arity(), vals)
	ok, err := f.ApplyRecord(wal.Record{Epoch: head + 1, Adds: adds, Deletes: dels})
	if err != nil || !ok {
		t.Fatalf("apply head+1: ok=%v err=%v", ok, err)
	}
	if f.Epoch() != head+1 || f.Applied() != 1 {
		t.Fatalf("follower at epoch %d applied %d", f.Epoch(), f.Applied())
	}

	// Duplicate (reconnect overlap): skipped, not an error.
	if ok, err := f.ApplyRecord(wal.Record{Epoch: head + 1, Adds: adds, Deletes: dels}); err != nil || ok {
		t.Fatalf("duplicate record: ok=%v err=%v", ok, err)
	}
	// Gap: typed, recoverable.
	if _, err := f.ApplyRecord(wal.Record{Epoch: head + 5}); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("gap record: want ErrReplicaGap, got %v", err)
	}
	// Inapplicable delta at the right epoch: divergence, nothing published.
	before := f.Epoch()
	_, err = f.ApplyRecord(wal.Record{Epoch: before + 1, Deletes: []int{1 << 20}})
	var de *DivergenceError
	if !errors.Is(err, ErrDivergence) || !errors.As(err, &de) {
		t.Fatalf("bad delta: want *DivergenceError, got %v", err)
	}
	if f.Epoch() != before {
		t.Fatalf("divergence published a head: epoch %d → %d", before, f.Epoch())
	}
	// Reset must never rewind under readers.
	if err := f.Reset(d0); err == nil {
		t.Fatal("Reset behind the head succeeded")
	}
}

// TestFollowerConvergenceProperty is the replication half of the
// durability proof: a leader applies a random delta storm to a
// DurableVersioned (checkpointing and truncating aggressively) while a
// follower tails the WAL directory through wal.OpenReader. The follower
// starts after the storm is underway — behind a truncation, so it MUST
// catch up from the leader's checkpoint image — and still converges to a
// head that is tuple-exact and probe-for-probe equivalent.
func TestFollowerConvergenceProperty(t *testing.T) {
	for _, seed := range []int64{43_000_001, 43_000_002, 43_000_003} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const nDeltas = 40
			w := newDurableWorkload(seed, nDeltas)
			dir := t.TempDir()
			dv, err := OpenDurable(dir, func() (*Data, error) { return w.base, nil }, w.sigma, w.opts(wal.OS))
			if err != nil {
				t.Fatal(err)
			}
			defer dv.Close()
			base := w.base.Epoch()
			last := base + nDeltas

			// First half before the follower exists: CheckpointEvery=2 has
			// truncated the early epochs, so the follower cannot tail from
			// its base and must take the checkpoint path.
			for i := 0; i < nDeltas/2; i++ {
				if _, err := dv.Apply(w.deltas[i].adds, w.deltas[i].deletes); err != nil {
					t.Fatal(err)
				}
			}

			f := NewFollower(w.base, 4)
			rd, err := wal.OpenReader(dir, wal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			catchUp := func() {
				raw, epoch, err := dv.CheckpointImage()
				if err != nil {
					t.Fatalf("checkpoint image: %v", err)
				}
				img, err := LoadArenaBytes(raw, w.sigma)
				if err != nil {
					t.Fatalf("load checkpoint image: %v", err)
				}
				if img.Epoch() != epoch {
					t.Fatalf("checkpoint image at epoch %d, leader said %d", img.Epoch(), epoch)
				}
				if err := f.Reset(img); err != nil {
					t.Fatalf("reset onto checkpoint: %v", err)
				}
			}

			// Second half concurrently with the tailer.
			storm := make(chan struct{})
			go func() {
				defer close(storm)
				for i := nDeltas / 2; i < nDeltas; i++ {
					if _, err := dv.Apply(w.deltas[i].adds, w.deltas[i].deletes); err != nil {
						t.Errorf("storm apply %d: %v", i, err)
						return
					}
				}
			}()

			caughtUp := 0
			deadline := time.Now().Add(20 * time.Second)
			for f.Epoch() < last {
				if time.Now().After(deadline) {
					t.Fatalf("follower stuck at epoch %d of %d", f.Epoch(), last)
				}
				n, err := rd.ReplayFrom(f.Epoch(), func(rec wal.Record) error {
					_, aerr := f.ApplyRecord(rec)
					return aerr
				})
				switch {
				case err == nil:
					// The log gave us everything it holds. An empty read
					// while the leader's checkpoint is ahead means the
					// epochs we need were truncated into it — the shipping
					// protocol's catch-up rule (an empty directory cannot
					// say "truncated" on its own).
					if n == 0 {
						if _, ckpt, cerr := dv.CheckpointImage(); cerr == nil && ckpt > f.Epoch() {
							catchUp()
							caughtUp++
						}
					}
				case errors.Is(err, wal.ErrTruncated), errors.Is(err, ErrReplicaGap):
					catchUp()
					caughtUp++
				default:
					t.Fatalf("tail at epoch %d: %v", f.Epoch(), err)
				}
			}
			<-storm
			if caughtUp == 0 {
				t.Fatal("follower never took the checkpoint catch-up path")
			}

			if f.Epoch() != dv.Epoch() {
				t.Fatalf("follower epoch %d, leader %d", f.Epoch(), dv.Epoch())
			}
			checkState(t, "converged follower", f.Current(), w.expected[nDeltas])
			checkEquiv(t, "converged follower", f.Current(), w.sigma)
		})
	}
}

// BenchmarkFollowerApply measures replica apply throughput: one op is a
// 256-record catch-up through ApplyRecord — the rate bound on follower
// lag drain (the shipping decode is benchmarked in internal/wal).
func BenchmarkFollowerApply(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	d0, _, rm, vals := randomDeltaInstance(rng)
	const nRecs = 256
	recs := make([]wal.Record, nRecs)
	state := append([]relation.Tuple(nil), d0.Relation().Tuples()...)
	epoch := d0.Epoch()
	for i := range recs {
		adds, dels := randomDelta(rng, len(state), rm.Arity(), vals)
		epoch++
		recs[i] = wal.Record{Epoch: epoch, Adds: adds, Deletes: dels}
		state = shadowApply(state, adds, dels)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewFollower(d0, 4)
		for _, r := range recs {
			if ok, err := f.ApplyRecord(r); err != nil || !ok {
				b.Fatalf("apply epoch %d: ok=%v err=%v", r.Epoch, ok, err)
			}
		}
	}
}
