package metrics_test

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/relation"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCompareCellsAllCredited(t *testing.T) {
	input := relation.StringTuple("a", "b", "c", "d")
	truth := relation.StringTuple("A", "b", "C", "D")
	// fixer corrected position 0, wrongly changed position 1, corrected 2,
	// missed 3.
	result := relation.StringTuple("A", "x", "C", "d")
	o := metrics.CompareCells(input, truth, result, nil)
	if o.Erroneous != 3 || o.Changed != 3 || o.Corrected != 2 {
		t.Fatalf("outcome = %+v", o)
	}
	if !almost(o.Precision(), 2.0/3) || !almost(o.Recall(), 2.0/3) {
		t.Fatalf("p=%v r=%v", o.Precision(), o.Recall())
	}
	if !almost(o.F1(), 2.0/3) {
		t.Fatalf("f1=%v", o.F1())
	}
}

func TestCompareCellsCreditedSubset(t *testing.T) {
	input := relation.StringTuple("a", "b")
	truth := relation.StringTuple("A", "B")
	result := relation.StringTuple("A", "B")
	credit := relation.NewAttrSet(0) // position 1 was fixed by the user
	o := metrics.CompareCells(input, truth, result, &credit)
	if o.Erroneous != 2 || o.Changed != 1 || o.Corrected != 1 {
		t.Fatalf("outcome = %+v", o)
	}
	if !almost(o.Recall(), 0.5) {
		t.Fatalf("recall = %v (user fixes must not count)", o.Recall())
	}
}

func TestCompareCellsCleanTuple(t *testing.T) {
	tup := relation.StringTuple("a")
	o := metrics.CompareCells(tup, tup, tup, nil)
	if o.Erroneous != 0 || o.Changed != 0 || o.Corrected != 0 {
		t.Fatalf("outcome = %+v", o)
	}
	if o.Precision() != 1 || o.Recall() != 1 {
		t.Fatal("clean tuples score perfect precision/recall")
	}
}

func TestCellOutcomeAdd(t *testing.T) {
	a := metrics.CellOutcome{Erroneous: 1, Changed: 2, Corrected: 1}
	b := metrics.CellOutcome{Erroneous: 3, Changed: 1, Corrected: 1}
	a.Add(b)
	if a.Erroneous != 4 || a.Changed != 3 || a.Corrected != 2 {
		t.Fatalf("sum = %+v", a)
	}
}

func TestF1Zero(t *testing.T) {
	o := metrics.CellOutcome{Erroneous: 5, Changed: 0, Corrected: 0}
	// precision 1 (nothing changed), recall 0 → F1 = 0.
	if got := o.F1(); got != 0 {
		t.Fatalf("F1 = %v", got)
	}
}

func TestCompareTuple(t *testing.T) {
	input := relation.StringTuple("a", "b")
	truth := relation.StringTuple("A", "b")
	fixedRight := relation.StringTuple("A", "b")
	fixedWrong := relation.StringTuple("z", "b")

	o := metrics.CompareTuple(input, truth, fixedRight)
	if o.Erroneous != 1 || o.Corrected != 1 {
		t.Fatalf("right fix: %+v", o)
	}
	o = metrics.CompareTuple(input, truth, fixedWrong)
	if o.Erroneous != 1 || o.Corrected != 0 {
		t.Fatalf("wrong fix: %+v", o)
	}
	o = metrics.CompareTuple(truth, truth, truth)
	if o.Erroneous != 0 || o.Recall() != 1 {
		t.Fatalf("clean: %+v", o)
	}
	var agg metrics.TupleOutcome
	agg.Add(metrics.TupleOutcome{Erroneous: 2, Corrected: 1})
	agg.Add(metrics.TupleOutcome{Erroneous: 2, Corrected: 2})
	if !almost(agg.Recall(), 0.75) {
		t.Fatalf("aggregate recall = %v", agg.Recall())
	}
}
