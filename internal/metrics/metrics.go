// Package metrics implements the evaluation measures of §6 exactly as the
// paper defines them:
//
//	recall_t    = #corrected tuples   / #erroneous tuples
//	recall_a    = #corrected attrs    / #erroneous attrs
//	precision_a = #corrected attrs    / #changed attrs
//	F-measure   = 2·(recall_a·precision_a)/(recall_a+precision_a)
//
// where corrected attributes exclude those fixed by the users (only
// rule-made corrections count toward recall_a).
package metrics

import "repro/internal/relation"

// CellOutcome aggregates attribute-level counts for one or more tuples.
type CellOutcome struct {
	Erroneous int // input cell differed from truth
	Changed   int // credited writer changed the cell away from the input
	Corrected int // changed cell that was erroneous and now equals truth
}

// Add accumulates another outcome.
func (o *CellOutcome) Add(p CellOutcome) {
	o.Erroneous += p.Erroneous
	o.Changed += p.Changed
	o.Corrected += p.Corrected
}

// Precision returns corrected/changed (1 when nothing changed: no wrong
// changes were made).
func (o CellOutcome) Precision() float64 {
	if o.Changed == 0 {
		return 1
	}
	return float64(o.Corrected) / float64(o.Changed)
}

// Recall returns corrected/erroneous (1 when nothing was erroneous).
func (o CellOutcome) Recall() float64 {
	if o.Erroneous == 0 {
		return 1
	}
	return float64(o.Corrected) / float64(o.Erroneous)
}

// F1 returns the harmonic mean of precision and recall.
func (o CellOutcome) F1() float64 {
	p, r := o.Precision(), o.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// CompareCells scores one tuple: input is the dirty tuple, truth the
// ground truth, result the tuple after fixing. credited restricts which
// positions count as Changed/Corrected — pass the rule-fixed attribute
// set to honour the paper's "not counting user fixes" convention, or nil
// to credit every position (the IncRep accounting, which has no user).
func CompareCells(input, truth, result relation.Tuple, credited *relation.AttrSet) CellOutcome {
	var o CellOutcome
	for i := range input {
		err := !input[i].Equal(truth[i])
		if err {
			o.Erroneous++
		}
		if credited != nil && !credited.Has(i) {
			continue
		}
		if !result[i].Equal(input[i]) {
			o.Changed++
			if err && result[i].Equal(truth[i]) {
				o.Corrected++
			}
		}
	}
	return o
}

// TupleOutcome aggregates tuple-level counts.
type TupleOutcome struct {
	Erroneous int // tuples with at least one wrong cell
	Corrected int // erroneous tuples whose result equals the truth
}

// Add accumulates another outcome.
func (o *TupleOutcome) Add(p TupleOutcome) {
	o.Erroneous += p.Erroneous
	o.Corrected += p.Corrected
}

// Recall returns corrected/erroneous tuples (1 when none were erroneous).
func (o TupleOutcome) Recall() float64 {
	if o.Erroneous == 0 {
		return 1
	}
	return float64(o.Corrected) / float64(o.Erroneous)
}

// CompareTuple scores one tuple at the tuple level.
func CompareTuple(input, truth, result relation.Tuple) TupleOutcome {
	var o TupleOutcome
	if !input.Equal(truth) {
		o.Erroneous = 1
		if result.Equal(truth) {
			o.Corrected = 1
		}
	}
	return o
}
