package pattern

import (
	"strings"

	"repro/internal/relation"
)

// Tableau is a pattern tableau Tc: a set of pattern tuples, normally all
// over the same attribute list Z of a region (§3). A data tuple is "marked"
// by a region when it matches at least one pattern tuple.
type Tableau struct {
	rows []Tuple
}

// NewTableau builds a tableau from pattern tuples, deduplicating rows.
func NewTableau(rows ...Tuple) *Tableau {
	t := &Tableau{}
	t.Add(rows...)
	return t
}

// Add appends pattern tuples, skipping duplicates.
func (tb *Tableau) Add(rows ...Tuple) {
	seen := make(map[string]bool, len(tb.rows))
	for _, r := range tb.rows {
		seen[r.Key()] = true
	}
	for _, r := range rows {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			tb.rows = append(tb.rows, r)
		}
	}
}

// Len returns the number of pattern tuples.
func (tb *Tableau) Len() int { return len(tb.rows) }

// Row returns the i-th pattern tuple.
func (tb *Tableau) Row(i int) Tuple { return tb.rows[i] }

// Rows returns the backing row slice (not a copy).
func (tb *Tableau) Rows() []Tuple { return tb.rows }

// Marks reports whether t matches at least one pattern tuple, i.e. t is
// marked by the region carrying this tableau.
func (tb *Tableau) Marks(t relation.Tuple) bool {
	for _, r := range tb.rows {
		if r.Matches(t) {
			return true
		}
	}
	return false
}

// MatchingRows returns the indexes of all pattern tuples matching t.
func (tb *Tableau) MatchingRows(t relation.Tuple) []int {
	var out []int
	for i, r := range tb.rows {
		if r.Matches(t) {
			out = append(out, i)
		}
	}
	return out
}

// IsConcrete reports whether every row is concrete (constants only).
func (tb *Tableau) IsConcrete() bool {
	for _, r := range tb.rows {
		if !r.IsConcrete() {
			return false
		}
	}
	return true
}

// IsPositive reports whether no row contains a negation.
func (tb *Tableau) IsPositive() bool {
	for _, r := range tb.rows {
		if !r.IsPositive() {
			return false
		}
	}
	return true
}

// Clone returns an independent tableau with the same rows.
func (tb *Tableau) Clone() *Tableau {
	return &Tableau{rows: append([]Tuple(nil), tb.rows...)}
}

// Format renders the tableau one row per line using schema names.
func (tb *Tableau) Format(schema *relation.Schema) string {
	var b strings.Builder
	for i, r := range tb.rows {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.Format(schema))
	}
	return b.String()
}
